// Package declnet is a reference implementation of the declarative,
// endpoint-centric cloud tenant networking API proposed in "Rethinking
// Networking Abstractions for Cloud Tenants" (HotOS '21): instead of
// building virtual networks from VPCs, gateways, and appliances, a tenant
// asks for endpoint IPs and service IPs, attaches permit lists and QoS
// intents to them, and lets the provider do the rest.
//
// The five verbs of the paper's Table 2 map to:
//
//	request_eip(vm_id)              -> Tenant.RequestEIP
//	request_sip()                   -> Tenant.RequestSIP
//	bind(eip, sip)                  -> Tenant.Bind
//	set_permit_list(eip, permits)   -> Tenant.SetPermitList / Permit / Revoke
//	set_qos(region, bandwidth)      -> Tenant.SetQoS
//
// plus the extensions the paper sketches: weights on bind, endpoint
// groups, and hot/cold-potato transit profiles.
//
// Everything runs against a deterministic multi-cloud simulation: a world
// graph of providers, regions, backbones, internet transit, exchange
// points, and on-prem sites (package internal/topo), with a flow-level
// max-min fair data plane (package internal/netsim). NewFig1World builds
// the paper's Figure-1 deployment substrate in one call.
package declnet

import (
	"fmt"
	"strings"
	"time"

	"declnet/internal/addr"
	"declnet/internal/core"
	"declnet/internal/intent"
	"declnet/internal/metrics"
	"declnet/internal/obs"
	"declnet/internal/permit"
	"declnet/internal/qos"
	"declnet/internal/slo"
	"declnet/internal/topo"
)

// Re-exported address types: EIP is an endpoint IP (flat, globally
// routable, default-off); SIP is a load-balanced service IP.
type (
	EIP = core.EIP
	SIP = core.SIP
	// IP is a raw IPv4 address.
	IP = addr.IP
	// Prefix is a CIDR prefix used in permit lists.
	Prefix = addr.Prefix
	// NodeID names a compute endpoint (VM/container) in the world graph.
	NodeID = topo.NodeID
)

// Potato profiles, re-exported from the QoS engine.
const (
	HotPotato  = qos.HotPotato
	ColdPotato = qos.ColdPotato
	Dedicated  = qos.Dedicated
)

// ParseIP and ParsePrefix parse dotted-quad and CIDR notation.
func ParseIP(s string) (IP, error)         { return addr.ParseIP(s) }
func ParsePrefix(s string) (Prefix, error) { return addr.ParsePrefix(s) }

// Exact returns the permit entry matching a single endpoint.
func Exact(ip IP) Prefix { return addr.NewPrefix(ip, 32) }

// Anywhere returns the permit entry matching every source (a public
// service's permit list).
func Anywhere() Prefix { return addr.MustParsePrefix("0.0.0.0/0") }

// World is a running multi-cloud simulation with provider control planes.
type World struct {
	Cloud *core.Cloud
	// Fig1 describes the built world when NewFig1World was used.
	Fig1 *topo.Fig1World
}

// NewFig1World builds the paper's Figure-1 substrate — two cloud
// providers with two regions each, an on-prem datacenter, an internet
// exchange with dedicated circuits, and the public internet — and brings
// up a Table-2 control plane for each administrative domain.
// hostsPerZone sets the compute capacity per availability zone.
func NewFig1World(seed int64, hostsPerZone int) (*World, error) {
	if hostsPerZone < 1 {
		hostsPerZone = 2
	}
	w := topo.BuildFig1(hostsPerZone)
	c := core.NewCloud(seed, w.Graph)
	configs := []struct {
		name string
		eip  string
		sip  string
	}{
		{w.CloudA, "100.64.0.0/10", "100.127.0.0/16"},
		{w.CloudB, "104.0.0.0/8", "104.255.0.0/16"},
		{"onprem", "108.0.0.0/8", "108.255.0.0/16"},
	}
	for _, cfg := range configs {
		if _, err := c.AddProvider(cfg.name, core.Config{
			EIPBase: addr.MustParsePrefix(cfg.eip),
			SIPBase: addr.MustParsePrefix(cfg.sip),
		}); err != nil {
			return nil, err
		}
	}
	return &World{Cloud: c, Fig1: w}, nil
}

// Host returns the NodeID of host n (1-based) in the given provider,
// region, and zone — the vm_id handed to RequestEIP.
func (w *World) Host(provider, region, zone string, n int) NodeID {
	return topo.HostID(provider, region, zone, n)
}

// OnPremHost returns the NodeID of host n at the on-prem site.
func (w *World) OnPremHost(n int) NodeID {
	return NodeID(fmt.Sprintf("onprem/hq/host%d", n))
}

// Run advances the simulation until its event queue drains.
func (w *World) Run() { w.Cloud.Eng.Run() }

// RunFor advances the simulation by the given virtual duration.
func (w *World) RunFor(d time.Duration) {
	w.Cloud.Eng.RunUntil(w.Cloud.Eng.Now() + d)
}

// Now returns the current virtual time.
func (w *World) Now() time.Duration { return w.Cloud.Eng.Now() }

// AttachMeter turns on usage metering across all providers; pass a
// *meter.Meter (see internal/meter) or any core.Biller.
func (w *World) AttachMeter(b core.Biller) { w.Cloud.SetBiller(b) }

// FaultPolicy parameterizes the provider's failure reactions (health-check
// cadence, failover thresholds, re-bind backoff, permit-retry window).
type FaultPolicy = core.FaultPolicy

// FaultMonitor is the provider-side failure-reaction loop plus the fault
// injector driving drills; see World.EnableFaults.
type FaultMonitor = core.FaultMonitor

// DefaultFaultPolicy mirrors common cloud health-check settings.
func DefaultFaultPolicy() FaultPolicy { return core.DefaultFaultPolicy() }

// EnableFaults turns on fault injection and the provider health monitor
// that reacts to it (SIP failover, quota degradation, permit retries).
// Idempotent; a zero policy takes the defaults.
func (w *World) EnableFaults(policy FaultPolicy) *FaultMonitor {
	return w.Cloud.EnableFaults(policy)
}

// Faults returns the monitor, or nil before EnableFaults.
func (w *World) Faults() *FaultMonitor { return w.Cloud.Faults() }

// Fail injects an infrastructure failure. kind is "link" (target: link
// pair ID), "node" (target: node ID), or "region" (target:
// "provider/region"). Faults are enabled with the default policy on first
// use. The failure takes effect immediately; the provider reacts as
// virtual time advances.
func (w *World) Fail(kind, target string) error { return w.faultOp(kind, target, true) }

// Heal reverses a failure injected with Fail.
func (w *World) Heal(kind, target string) error { return w.faultOp(kind, target, false) }

func (w *World) faultOp(kind, target string, fail bool) error {
	m := w.Cloud.Faults()
	if m == nil {
		m = w.Cloud.EnableFaults(core.FaultPolicy{})
	}
	inj := m.Inj
	switch kind {
	case "link":
		if fail {
			return inj.FailLink(target)
		}
		return inj.RestoreLink(target)
	case "node":
		if fail {
			return inj.FailNode(topo.NodeID(target))
		}
		return inj.RestoreNode(topo.NodeID(target))
	case "region":
		i := strings.IndexByte(target, '/')
		if i <= 0 || i >= len(target)-1 {
			return fmt.Errorf("declnet: region target %q is not provider/region", target)
		}
		if fail {
			return inj.FailRegion(target[:i], target[i+1:])
		}
		return inj.RestoreRegion(target[:i], target[i+1:])
	default:
		return fmt.Errorf("declnet: unknown fault kind %q (want link, node, or region)", kind)
	}
}

// Explanation is the ordered verdict chain /v1/explain returns; see
// core.Explanation.
type Explanation = core.Explanation

// ExplainStep is one stage of a replayed datapath decision.
type ExplainStep = core.ExplainStep

// EnableObservability attaches a decision tracer and metrics registry to
// every provider (see internal/obs and internal/metrics). Either may be
// nil to enable only one side.
func (w *World) EnableObservability(tr *obs.Tracer, reg *metrics.Registry) {
	w.Cloud.EnableObservability(tr, reg)
}

// EnableSLO attaches (or detaches, with nil) the per-shard latency
// accounting plane: verb histograms, request-scoped spans with a flight
// recorder, declared objectives with burn rates, and the noisy-neighbor
// detector. Breaches land in the decision trace when one is attached.
func (w *World) EnableSLO(p *slo.Plane) { w.Cloud.EnableSLO(p) }

// SLO returns the attached latency plane, nil until EnableSLO.
func (w *World) SLO() *slo.Plane { return w.Cloud.SLO() }

// EnableIntent attaches the durable intent store: every accepted
// mutation from this point is journaled before the verb returns (see
// internal/intent).
func (w *World) EnableIntent(l *intent.Log) { w.Cloud.EnableIntent(l) }

// Intent returns the attached intent store, nil until EnableIntent.
func (w *World) Intent() *intent.Log { return w.Cloud.Intent() }

// RestoreIntent rebuilds the in-memory control plane from a replayed
// declared state — the daemon's restart-recovery path. Call on a fresh
// world over the same topology, before EnableIntent.
func (w *World) RestoreIntent(st *intent.State) error { return w.Cloud.RestoreIntent(st) }

// StateDigest canonically hashes the durable control-plane state, for
// kill-and-restart equivalence checks.
func (w *World) StateDigest() string { return w.Cloud.StateDigest() }

// EnableReconciler builds the desired-state convergence loop (requires
// EnableIntent first).
func (w *World) EnableReconciler(cfg core.ReconcilerConfig) (*core.Reconciler, error) {
	return w.Cloud.EnableReconciler(cfg)
}

// Reconciler returns the convergence loop, nil until EnableReconciler.
func (w *World) Reconciler() *core.Reconciler { return w.Cloud.Reconciler() }

// Tracer returns the decision tracer, nil until EnableObservability.
func (w *World) Tracer() *obs.Tracer { return w.Cloud.Tracer() }

// Registry returns the metrics registry, nil until EnableObservability.
func (w *World) Registry() *metrics.Registry { return w.Cloud.Registry() }

// Tenant returns a handle scoped to one tenant account. Creating the
// handle is free; all state lives provider-side.
func (w *World) Tenant(name string) *Tenant {
	return &Tenant{world: w, name: name}
}

// Tenant is a tenant-scoped view of the Table-2 API across all providers
// in the world — the paper's uniform multi-cloud interface.
type Tenant struct {
	world *World
	name  string
}

// Name returns the tenant account name.
func (t *Tenant) Name() string { return t.name }

func (t *Tenant) provider(name string) (*core.Provider, error) {
	p, ok := t.world.Cloud.Provider(name)
	if !ok {
		return nil, fmt.Errorf("declnet: unknown provider %q", name)
	}
	return p, nil
}

// RequestEIP grants an endpoint IP for a VM (Table 2: request_eip). The
// provider is inferred from the VM's position in the world.
func (t *Tenant) RequestEIP(vm NodeID) (EIP, error) {
	n, ok := t.world.Cloud.G.Node(vm)
	if !ok {
		return 0, fmt.Errorf("declnet: unknown VM %q", vm)
	}
	p, err := t.provider(n.Provider)
	if err != nil {
		return 0, err
	}
	return p.RequestEIP(t.name, vm)
}

// ReleaseEIP returns an endpoint IP and tears down its bindings and
// permit state.
func (t *Tenant) ReleaseEIP(eip EIP) error {
	p, err := t.providerOf(eip)
	if err != nil {
		return err
	}
	return p.ReleaseEIP(t.name, eip)
}

// RequestSIP grants a service IP at the named provider (Table 2:
// request_sip).
func (t *Tenant) RequestSIP(providerName string) (SIP, error) {
	p, err := t.provider(providerName)
	if err != nil {
		return 0, err
	}
	return p.RequestSIP(t.name)
}

// Bind associates an EIP with a SIP with an optional weight (Table 2:
// bind). weight <= 0 means 1.
func (t *Tenant) Bind(eip EIP, sip SIP, weight int) error {
	p, err := t.providerOf(sip)
	if err != nil {
		return err
	}
	return p.Bind(t.name, eip, sip, weight)
}

// Unbind removes an EIP from a SIP with connection draining.
func (t *Tenant) Unbind(eip EIP, sip SIP) error {
	p, err := t.providerOf(sip)
	if err != nil {
		return err
	}
	return p.Unbind(t.name, eip, sip)
}

// SetPermitList replaces the permit list guarding an EIP or SIP (Table 2:
// set_permit_list). Group names expand to their membership.
func (t *Tenant) SetPermitList(target IP, entries []Prefix, groups ...string) error {
	p, err := t.providerOf(target)
	if err != nil {
		return err
	}
	return p.SetPermitList(t.name, target, entries, groups...)
}

// Permit adds one entry to a target's permit list.
func (t *Tenant) Permit(target IP, entry Prefix) error {
	p, err := t.providerOf(target)
	if err != nil {
		return err
	}
	return p.Permit(t.name, target, entry)
}

// Revoke removes one entry from a target's permit list.
func (t *Tenant) Revoke(target IP, entry Prefix) error {
	p, err := t.providerOf(target)
	if err != nil {
		return err
	}
	return p.Revoke(t.name, target, entry)
}

// SetQoS grants regional egress bandwidth in bits/s (Table 2: set_qos).
func (t *Tenant) SetQoS(providerName, region string, bandwidth float64) error {
	p, err := t.provider(providerName)
	if err != nil {
		return err
	}
	return p.SetQoS(t.name, region, bandwidth)
}

// SetVMEgressCap overrides one endpoint's egress bandwidth guarantee in
// bits/s — today's standard per-VM offering, adopted unchanged (§4 QoS).
func (t *Tenant) SetVMEgressCap(eip EIP, bps float64) error {
	p, err := t.providerOf(eip)
	if err != nil {
		return err
	}
	return p.SetVMEgressCap(t.name, eip, bps)
}

// SetPotato selects the tenant's transit profile at a provider
// (extension; §4 QoS).
func (t *Tenant) SetPotato(providerName string, policy qos.PotatoPolicy) error {
	p, err := t.provider(providerName)
	if err != nil {
		return err
	}
	p.SetPotato(t.name, policy)
	return nil
}

// CreateGroup defines a named endpoint group usable in SetPermitList at
// any provider; members may span clouds (extension; §4 Connectivity).
func (t *Tenant) CreateGroup(group string, members ...EIP) error {
	return t.world.Cloud.CreateGroup(t.name, group, members...)
}

// ConnectOpts tunes Connect; see core.ConnectOpts.
type ConnectOpts = core.ConnectOpts

// Conn is a live connection; Close releases its resources.
type Conn = core.Conn

// QoSClass marks whether traffic consumes the regional reservation.
type QoSClass = core.QoSClass

// Traffic classes for the §4-footnote reserved-bandwidth extension.
const (
	Reserved   = core.Reserved
	BestEffort = core.BestEffort
)

// Connect opens a connection from one of the tenant's EIPs to a
// destination EIP or SIP, running the full declarative data path:
// default-off admission, provider-side load balancing, potato-profile
// path selection, and egress enforcement.
func (t *Tenant) Connect(src EIP, dst IP, opts ConnectOpts) (*Conn, error) {
	return t.world.Cloud.Connect(t.name, src, dst, opts)
}

// Transfer moves sizeBytes from src to dst and returns the completion
// time once the simulation is advanced (World.Run).
func (t *Tenant) Transfer(src EIP, dst IP, sizeBytes float64, done func(time.Duration)) (*Conn, error) {
	return t.Connect(src, dst, ConnectOpts{SizeBytes: sizeBytes, OnDone: done})
}

// Probe samples a round trip between one of the tenant's EIPs and a
// destination, reporting the RTT and whether the probe survived loss.
func (t *Tenant) Probe(src EIP, dst IP) (time.Duration, bool, error) {
	return t.world.Cloud.Probe(t.name, src, dst)
}

// ProbeWith is Probe with a caller-owned SLO span threaded through the
// datapath, so per-stage timings land on the caller's request-scoped op
// (the HTTP layer uses this). The caller Ends the op.
func (t *Tenant) ProbeWith(op *slo.Op, src EIP, dst IP) (time.Duration, bool, error) {
	return t.world.Cloud.ProbeWith(op, t.name, src, dst)
}

// Explain replays the datapath decision for a hypothetical flow from one
// of the tenant's EIPs to a destination, returning the ordered verdict
// chain without taking any decision — the declarative answer to
// traceroute plus "why is my security group blocking this" (§6).
func (t *Tenant) Explain(src EIP, dst IP) (*Explanation, error) {
	return t.world.Cloud.Explain(t.name, src, dst)
}

// Register binds a tenant-scoped name to one of the tenant's addresses —
// the §6 extension that abstracts above IP addresses entirely.
func (t *Tenant) Register(name string, target IP) error {
	return t.world.Cloud.RegisterName(t.name, name, target)
}

// Resolve returns the address behind one of the tenant's names.
func (t *Tenant) Resolve(name string) (IP, bool) {
	return t.world.Cloud.ResolveName(t.name, name)
}

// Unregister removes a name binding.
func (t *Tenant) Unregister(name string) bool {
	return t.world.Cloud.UnregisterName(t.name, name)
}

// ConnectName is Connect with the destination given by name.
func (t *Tenant) ConnectName(src EIP, name string, opts ConnectOpts) (*Conn, error) {
	return t.world.Cloud.ConnectName(t.name, src, name, opts)
}

func (t *Tenant) providerOf(ip IP) (*core.Provider, error) {
	p, ok := t.world.Cloud.ProviderOf(ip)
	if !ok {
		return nil, fmt.Errorf("declnet: %s is not a granted address", ip)
	}
	return p, nil
}

// Entry builds a permit entry from a CIDR string, panicking on bad input;
// for tests and example code.
func Entry(cidr string) permit.Entry { return addr.MustParsePrefix(cidr) }
