// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON summary. It exists so the connect fast-path
// numbers land in a diffable artifact (BENCH_connect.json) instead of
// scrolling away in CI logs.
//
// Usage:
//
//	go test -run '^$' -bench 'Connect|ShortestPath' -benchmem . | benchjson -o BENCH_connect.json
//
// Lines that are not benchmark results (goos/goarch/cpu headers, PASS,
// ok) are folded into metadata or ignored. When both Connect/warm and
// Connect/cold are present, the warm/cold speedup is reported as a
// derived metric — that ratio is the path cache's whole value
// proposition, so it gets a first-class field.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Extra carries custom b.ReportMetric units (e.g. "mutations/sec").
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Summary is the whole artifact.
type Summary struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
	// Derived holds cross-benchmark ratios, keyed by a short slug.
	Derived map[string]float64 `json:"derived,omitempty"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	gate := flag.String("gate", "", "acceptance gate 'metric<=bound' checked against derived/extra metrics; violation exits 1")
	flag.Parse()

	s := Summary{Derived: map[string]float64{}}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			s.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			s.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			s.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		r, ok := parseLine(line)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: skipping unparseable line: %s\n", line)
			continue
		}
		s.Results = append(s.Results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(s.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}

	if warm, cold := find(s.Results, "BenchmarkConnect/warm"), find(s.Results, "BenchmarkConnect/cold"); warm != nil && cold != nil && warm.NsPerOp > 0 {
		s.Derived["connect_warm_cold_speedup"] = round2(cold.NsPerOp / warm.NsPerOp)
	}
	// Mutation-plane acceptance ratios (BENCH_mutate.json): how much the
	// 95/5 mixed workload costs over the read-only plane (want <= 2), the
	// mutation rate it sustains (want >= 10k/s), and how much one batched
	// onboarding call beats the per-endpoint loop (want >= 5).
	if ro, mx := find(s.Results, "BenchmarkMutatePlane/readonly"), find(s.Results, "BenchmarkMutatePlane/mixed"); ro != nil && mx != nil && ro.NsPerOp > 0 {
		s.Derived["mutate_mixed_readonly_slowdown"] = round2(mx.NsPerOp / ro.NsPerOp)
		if rate, ok := mx.Extra["mutations/sec"]; ok {
			s.Derived["mutate_mutations_per_sec"] = round2(rate)
		}
	}
	if loop, batch := find(s.Results, "BenchmarkBatchOnboard/loop"), find(s.Results, "BenchmarkBatchOnboard/batch"); loop != nil && batch != nil && batch.NsPerOp > 0 {
		s.Derived["batch_onboard_speedup"] = round2(loop.NsPerOp / batch.NsPerOp)
	}
	// Scale-drill acceptance numbers (BENCH_scale.json): the E13 custom
	// metrics ride along as Extra; promote the ones the regression gate
	// reads so `-gate storm_idle_p99_ratio<=1.5` has a stable key.
	if drill := find(s.Results, "BenchmarkScaleDrill"); drill != nil {
		for unit, key := range map[string]string{
			"connect_p50_us":       "scale_connect_p50_us",
			"connect_p99_us":       "scale_connect_p99_us",
			"permit_lag_p99_us":    "scale_permit_lag_p99_us",
			"bytes/endpoint":       "scale_bytes_per_endpoint",
			"grants/sec":           "scale_grants_per_sec",
			"storm_idle_p99_ratio": "storm_idle_p99_ratio",
		} {
			if v, ok := drill.Extra[unit]; ok {
				s.Derived[key] = round2(v)
			}
		}
	}
	// Reconcile sweep cost (BENCH_reconcile.json): steady-state
	// incremental vs full-scan sweep over the same 10^5 tier. The ratio
	// is the incremental reconciler's acceptance number, gated at <= 0.1
	// (a converged sweep must cost an order of magnitude less than a
	// world walk).
	if full, incr := find(s.Results, "BenchmarkReconcileSweep/full"), find(s.Results, "BenchmarkReconcileSweep/incr"); full != nil && incr != nil && full.NsPerOp > 0 {
		s.Derived["reconcile_full_ms"] = round2(full.NsPerOp / 1e6)
		s.Derived["reconcile_incr_ms"] = round2(incr.NsPerOp / 1e6)
		s.Derived["reconcile_incr_full_ratio"] = round4(incr.NsPerOp / full.NsPerOp)
	}
	if storm := find(s.Results, "BenchmarkReconcileSweep/incr_drift_storm"); storm != nil {
		if v, ok := storm.Extra["storm_cycle_ms"]; ok {
			s.Derived["reconcile_storm_cycle_ms"] = round2(v)
		}
	}
	// SLO instrumentation cost (BENCH_slo.json): the paired
	// bare-vs-instrumented drill delta, gated at <= 5%.
	if ov := find(s.Results, "BenchmarkSLOOverhead"); ov != nil {
		if v, ok := ov.Extra["obs_overhead_pct"]; ok {
			s.Derived["obs_overhead_pct"] = round2(v)
		}
	}
	if len(s.Derived) == 0 {
		s.Derived = nil
	}

	buf, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	// The gate runs after the artifact is written so a violation still
	// leaves the failing numbers on disk for inspection.
	if *gate != "" {
		if err := checkGate(&s, *gate); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
}

// checkGate enforces one 'metric<=bound' acceptance expression against
// the derived metrics (falling back to any result's Extra map).
func checkGate(s *Summary, expr string) error {
	key, bound, ok := strings.Cut(expr, "<=")
	if !ok {
		return fmt.Errorf("gate %q: want 'metric<=bound'", expr)
	}
	key, bound = strings.TrimSpace(key), strings.TrimSpace(bound)
	limit, err := strconv.ParseFloat(bound, 64)
	if err != nil {
		return fmt.Errorf("gate %q: bad bound: %v", expr, err)
	}
	v, found := s.Derived[key]
	if !found {
		for i := range s.Results {
			if ev, ok := s.Results[i].Extra[key]; ok {
				v, found = ev, true
				break
			}
		}
	}
	if !found {
		return fmt.Errorf("gate %q: metric %q not present in results", expr, key)
	}
	if v > limit {
		return fmt.Errorf("gate violated: %s = %g > %g", key, v, limit)
	}
	fmt.Fprintf(os.Stderr, "benchjson: gate ok: %s = %g <= %g\n", key, v, limit)
	return nil
}

// parseLine parses one result line:
//
//	BenchmarkConnect/warm-8   327300   3737 ns/op   768 B/op   21 allocs/op
//
// The -N GOMAXPROCS suffix is stripped so names stay stable across
// machines. Metric pairs after the iteration count are read unit-first.
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Result{}, false
	}
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch f[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			// Custom b.ReportMetric units ride along verbatim.
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[f[i+1]] = v
		}
	}
	return r, true
}

func find(rs []Result, name string) *Result {
	for i := range rs {
		if rs[i].Name == name {
			return &rs[i]
		}
	}
	return nil
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}

// round4 keeps small ratios (e.g. an incremental sweep at 0.3% of the
// full scan) from rounding to zero in the artifact.
func round4(v float64) float64 {
	return float64(int64(v*10000+0.5)) / 10000
}
