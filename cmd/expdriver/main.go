// Command expdriver runs the paper-reproduction experiments (E1–E13 from
// DESIGN.md) and prints their tables.
//
// Usage:
//
//	expdriver                 # run everything, plain text
//	expdriver -run E3,E7      # a subset
//	expdriver -format md      # GitHub markdown (for EXPERIMENTS.md)
//	expdriver -list           # list experiment IDs and titles
//	expdriver -serial         # disable parallel sweep cells
//	expdriver -run E13 -scale-eips 1000000 -scale-tenants 400
//	                          # the full million-endpoint drill tier
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"declnet/internal/exp"
)

func main() {
	run := flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
	format := flag.String("format", "text", "output format: text or md")
	list := flag.Bool("list", false, "list experiments and exit")
	serial := flag.Bool("serial", false, "run sweep cells serially (same tables, one core)")
	scaleEIPs := flag.Int("scale-eips", 0, "E13 drill size in endpoints (0 = default 10^5; `make scale` passes 10^6)")
	scaleTenants := flag.Int("scale-tenants", 0, "E13 drill tenant count (0 = default 200)")
	scaleRegions := flag.Int("scale-regions", 0, "E13 drill region count (0 = default 16)")
	flag.Parse()

	if *serial {
		exp.SetParallel(false)
	}
	if *scaleEIPs > 0 || *scaleTenants > 0 || *scaleRegions > 0 {
		exp.SetScaleTier(*scaleEIPs, *scaleTenants, *scaleRegions)
	}

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []exp.Experiment
	if *run == "all" {
		selected = exp.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, err := exp.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	failed := false
	for _, e := range selected {
		start := time.Now()
		table, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			failed = true
			continue
		}
		switch *format {
		case "md":
			fmt.Println(table.Markdown())
		default:
			fmt.Println(table.Text())
		}
		fmt.Printf("(%s ran in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if failed {
		os.Exit(1)
	}
}
