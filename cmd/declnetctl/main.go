// Command declnetctl is the CLI client for declnetd: the five Table-2
// verbs (plus extensions) from a shell.
//
// Usage:
//
//	declnetctl [-server URL] [-tenant NAME] <command> [args]
//
//	request-eip <vm-node-id>
//	release-eip <eip>
//	request-sip <provider>
//	bind <eip> <sip> [weight]
//	unbind <eip> <sip>
//	permit <target> <entry> [entry...]     # CIDRs or bare IPs
//	qos <provider> <region> <bits-per-sec>
//	potato <provider> hot|cold|dedicated
//	group <name> <eip> [eip...]
//	batch [file]                           # JSON ops from file or stdin
//	transfer <src> <dst> <bytes>
//	probe <src> <dst>
//	fail link|node|region <target> [advance-ms]   # inject a failure
//	heal link|node|region <target> [advance-ms]   # reverse it
//	explain <src> <dst>                    # replay the datapath verdict chain
//	trace [n] [kind]                       # recent decision trace events
//	slo [all]                              # latency/SLO report for -tenant (or all)
//	slo set <spec>                         # declare objectives, e.g. connect_p99=5ms;permit_lag_p99=1ms
//	health                                 # SLO health + noisy-neighbor breaches (exit 1 when degraded)
//	flight [n]                             # last n retained request spans (flight recorder)
//	reconcile [status|sweep]               # convergence counters, or force one sweep
//	snapshot                               # compact the durable intent store
//	metrics                                # Prometheus text exposition
//	status
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
)

func main() {
	args := os.Args[1:]
	server := "http://localhost:8080"
	tenant := "default"
	for len(args) >= 2 {
		switch args[0] {
		case "-server":
			server = args[1]
			args = args[2:]
		case "-tenant":
			tenant = args[1]
			args = args[2:]
		default:
			goto parsed
		}
	}
parsed:
	if len(args) == 0 {
		die("missing command; see -h in source header for usage")
	}
	cmd, rest := args[0], args[1:]
	c := client{server: server, tenant: tenant}
	var err error
	switch cmd {
	case "request-eip":
		err = c.requestEIP(rest)
	case "release-eip":
		err = c.releaseEIP(rest)
	case "request-sip":
		err = c.requestSIP(rest)
	case "bind":
		err = c.bind(rest)
	case "unbind":
		err = c.unbind(rest)
	case "permit":
		err = c.permit(rest)
	case "qos":
		err = c.qos(rest)
	case "potato":
		err = c.potato(rest)
	case "group":
		err = c.group(rest)
	case "batch":
		err = c.batch(rest)
	case "transfer":
		err = c.transfer(rest)
	case "probe":
		err = c.probe(rest)
	case "fail":
		err = c.fault("fail", rest)
	case "heal":
		err = c.fault("heal", rest)
	case "explain":
		err = c.explain(rest)
	case "trace":
		err = c.trace(rest)
	case "slo":
		err = c.slo(rest)
	case "health":
		err = c.health(rest)
	case "flight":
		err = c.flight(rest)
	case "reconcile":
		err = c.reconcile(rest)
	case "snapshot":
		err = c.snapshot(rest)
	case "metrics":
		err = c.metrics(rest)
	case "status":
		err = c.status(rest)
	default:
		die(fmt.Sprintf("unknown command %q", cmd))
	}
	if err != nil {
		die(err.Error())
	}
}

func die(msg string) {
	fmt.Fprintln(os.Stderr, "declnetctl:", msg)
	os.Exit(1)
}

type client struct {
	server string
	tenant string
}

// call POSTs body to path (or GETs when body is nil) and pretty-prints
// the JSON response.
func (c client) call(method, path string, body any) error {
	var rdr io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rdr = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.server+path, rdr)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	var pretty bytes.Buffer
	if json.Indent(&pretty, raw, "", "  ") == nil {
		fmt.Println(pretty.String())
	} else {
		fmt.Println(string(raw))
	}
	if resp.StatusCode >= 400 {
		return fmt.Errorf("server returned %s", resp.Status)
	}
	return nil
}

func need(args []string, n int, usage string) error {
	if len(args) < n {
		return fmt.Errorf("usage: declnetctl %s", usage)
	}
	return nil
}

func (c client) requestEIP(args []string) error {
	if err := need(args, 1, "request-eip <vm-node-id>"); err != nil {
		return err
	}
	return c.call("POST", "/v1/eips", map[string]any{"tenant": c.tenant, "vm": args[0]})
}

func (c client) releaseEIP(args []string) error {
	if err := need(args, 1, "release-eip <eip>"); err != nil {
		return err
	}
	return c.call("POST", "/v1/eips/release", map[string]any{"tenant": c.tenant, "eip": args[0]})
}

func (c client) requestSIP(args []string) error {
	if err := need(args, 1, "request-sip <provider>"); err != nil {
		return err
	}
	return c.call("POST", "/v1/sips", map[string]any{"tenant": c.tenant, "provider": args[0]})
}

func (c client) bind(args []string) error {
	if err := need(args, 2, "bind <eip> <sip> [weight]"); err != nil {
		return err
	}
	weight := 1
	if len(args) >= 3 {
		w, err := strconv.Atoi(args[2])
		if err != nil {
			return fmt.Errorf("bad weight %q", args[2])
		}
		weight = w
	}
	return c.call("POST", "/v1/bind", map[string]any{
		"tenant": c.tenant, "eip": args[0], "sip": args[1], "weight": weight})
}

func (c client) unbind(args []string) error {
	if err := need(args, 2, "unbind <eip> <sip>"); err != nil {
		return err
	}
	return c.call("POST", "/v1/unbind", map[string]any{
		"tenant": c.tenant, "eip": args[0], "sip": args[1]})
}

func (c client) permit(args []string) error {
	if err := need(args, 2, "permit <target> <entry> [entry...]"); err != nil {
		return err
	}
	return c.call("POST", "/v1/permit", map[string]any{
		"tenant": c.tenant, "target": args[0], "entries": args[1:]})
}

func (c client) qos(args []string) error {
	if err := need(args, 3, "qos <provider> <region> <bits-per-sec>"); err != nil {
		return err
	}
	bw, err := strconv.ParseFloat(args[2], 64)
	if err != nil {
		return fmt.Errorf("bad bandwidth %q", args[2])
	}
	return c.call("POST", "/v1/qos", map[string]any{
		"tenant": c.tenant, "provider": args[0], "region": args[1], "bandwidth_bps": bw})
}

func (c client) potato(args []string) error {
	if err := need(args, 2, "potato <provider> hot|cold|dedicated"); err != nil {
		return err
	}
	return c.call("POST", "/v1/potato", map[string]any{
		"tenant": c.tenant, "provider": args[0], "policy": args[1]})
}

func (c client) group(args []string) error {
	if err := need(args, 2, "group <name> <eip> [eip...]"); err != nil {
		return err
	}
	return c.call("POST", "/v1/groups", map[string]any{
		"tenant": c.tenant, "name": args[0], "members": args[1:]})
}

// batch submits many mutations as one /v1/batch request. The input —
// a file argument, or stdin when absent or "-" — is either a JSON array
// of op objects or a {"ops": [...]} wrapper; the tenant comes from
// -tenant. Op shapes match the per-endpoint request bodies, with "$i"
// back-references to earlier grants (see the server's BatchOpRequest).
func (c client) batch(args []string) error {
	var raw []byte
	var err error
	if len(args) >= 1 && args[0] != "-" {
		raw, err = os.ReadFile(args[0])
	} else {
		raw, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		return err
	}
	var ops []json.RawMessage
	if json.Unmarshal(raw, &ops) != nil {
		var wrapped struct {
			Ops []json.RawMessage `json:"ops"`
		}
		if err := json.Unmarshal(raw, &wrapped); err != nil || wrapped.Ops == nil {
			return fmt.Errorf(`batch input must be a JSON array of ops or {"ops": [...]}`)
		}
		ops = wrapped.Ops
	}
	return c.call("POST", "/v1/batch", map[string]any{"tenant": c.tenant, "ops": ops})
}

func (c client) transfer(args []string) error {
	if err := need(args, 3, "transfer <src> <dst> <bytes>"); err != nil {
		return err
	}
	b, err := strconv.ParseFloat(args[2], 64)
	if err != nil {
		return fmt.Errorf("bad byte count %q", args[2])
	}
	return c.call("POST", "/v1/transfer", map[string]any{
		"tenant": c.tenant, "src": args[0], "dst": args[1], "bytes": b})
}

func (c client) probe(args []string) error {
	if err := need(args, 2, "probe <src> <dst>"); err != nil {
		return err
	}
	return c.call("GET", fmt.Sprintf("/v1/probe?tenant=%s&src=%s&dst=%s", c.tenant, args[0], args[1]), nil)
}

// fault drives the operator's drill verbs: an optional trailing
// advance-ms runs the simulation forward so the provider's reaction
// (failover, re-bind) is visible in the returned counters.
func (c client) fault(verb string, args []string) error {
	if err := need(args, 2, verb+" link|node|region <target> [advance-ms]"); err != nil {
		return err
	}
	body := map[string]any{"kind": args[0], "target": args[1]}
	if len(args) >= 3 {
		ms, err := strconv.ParseFloat(args[2], 64)
		if err != nil {
			return fmt.Errorf("bad advance-ms %q", args[2])
		}
		body["advance_ms"] = ms
	}
	return c.call("POST", "/v1/"+verb, body)
}

// explain asks the provider to replay the datapath decision for a
// hypothetical src->dst flow and print the ordered verdict chain.
func (c client) explain(args []string) error {
	if err := need(args, 2, "explain <src> <dst>"); err != nil {
		return err
	}
	q := url.Values{"tenant": {c.tenant}, "src": {args[0]}, "dst": {args[1]}}
	return c.call("GET", "/v1/explain?"+q.Encode(), nil)
}

// trace fetches the tenant's recent decision events, optionally limited
// to the last n and filtered to one event kind.
func (c client) trace(args []string) error {
	q := url.Values{"tenant": {c.tenant}}
	if len(args) >= 1 {
		if _, err := strconv.Atoi(args[0]); err != nil {
			return fmt.Errorf("bad event count %q", args[0])
		}
		q.Set("n", args[0])
	}
	if len(args) >= 2 {
		q.Set("kind", args[1])
	}
	return c.call("GET", "/v1/trace?"+q.Encode(), nil)
}

// slo reports per-shard latency accounting for -tenant ("slo all" drops
// the filter), or declares objectives: "slo set connect_p99=5ms".
func (c client) slo(args []string) error {
	if len(args) >= 1 && args[0] == "set" {
		if err := need(args, 2, "slo set <spec>"); err != nil {
			return err
		}
		return c.call("POST", "/v1/slo", map[string]any{
			"tenant": c.tenant, "objective": args[1]})
	}
	if len(args) >= 1 && args[0] == "all" {
		return c.call("GET", "/v1/slo", nil)
	}
	return c.call("GET", "/v1/slo?tenant="+url.QueryEscape(c.tenant), nil)
}

// health surfaces the burn-rate / noisy-neighbor view; the server answers
// 503 when degraded, so the exit status doubles as a probe.
func (c client) health(args []string) error {
	return c.call("GET", "/v1/health", nil)
}

// flight dumps the last n retained request spans (all when n omitted).
func (c client) flight(args []string) error {
	path := "/v1/debug/flight"
	if len(args) >= 1 {
		if _, err := strconv.Atoi(args[0]); err != nil {
			return fmt.Errorf("bad span count %q", args[0])
		}
		path += "?n=" + args[0]
	}
	return c.call("GET", path, nil)
}

// reconcile shows the desired-state convergence loop's counters, or
// with "sweep" forces one synchronous pass and prints what it repaired.
func (c client) reconcile(args []string) error {
	if len(args) >= 1 {
		switch args[0] {
		case "status":
		case "sweep":
			return c.call("POST", "/v1/reconcile/sweep", nil)
		default:
			return fmt.Errorf("usage: declnetctl reconcile [status|sweep]")
		}
	}
	return c.call("GET", "/v1/reconcile", nil)
}

// snapshot compacts the durable intent store: write a snapshot of the
// declared state and truncate the replay journal.
func (c client) snapshot(args []string) error {
	return c.call("POST", "/v1/snapshot", nil)
}

func (c client) metrics(args []string) error {
	return c.call("GET", "/v1/metrics", nil)
}

func (c client) status(args []string) error {
	return c.call("GET", "/v1/status", nil)
}
