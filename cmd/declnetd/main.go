// Command declnetd serves the declarative tenant-networking control plane
// (the paper's Table-2 API) over HTTP/JSON, backed by a simulated
// Figure-1 multi-cloud world.
//
// Usage:
//
//	declnetd -listen :8080 -seed 1 -hosts 4 -log-level info -debug-addr :6060
//
// Endpoints (all JSON):
//
//	POST /v1/eips          {tenant, vm}                       request_eip
//	POST /v1/eips/release  {tenant, eip}
//	POST /v1/sips          {tenant, provider}                 request_sip
//	POST /v1/bind          {tenant, eip, sip, weight}         bind
//	POST /v1/unbind        {tenant, eip, sip}
//	POST /v1/permit        {tenant, target, entries, groups}  set_permit_list
//	POST /v1/qos           {tenant, provider, region, bandwidth_bps}  set_qos
//	POST /v1/potato        {tenant, provider, policy}
//	POST /v1/groups        {tenant, provider, name, members}
//	POST /v1/batch         {tenant, ops}      many mutations, one epoch bump
//	POST /v1/transfer      {tenant, src, dst, bytes}
//	POST /v1/fail          {kind, target, advance_ms}
//	POST /v1/heal          {kind, target, advance_ms}
//	GET  /v1/probe?tenant=&src=&dst=
//	GET  /v1/explain?tenant=&src=&dst=     replay datapath verdict chain
//	GET  /v1/trace?tenant=&n=&kind=        recent decision trace events
//	POST /v1/slo           {tenant, objective}  declare latency objectives
//	GET  /v1/slo?tenant=                   per-shard latency/SLO report
//	GET  /v1/health                        noisy-neighbor breaches (503 when degraded)
//	GET  /v1/debug/flight?n=               last n retained request spans
//	GET  /v1/metrics                       Prometheus text exposition
//	GET  /v1/status
//	GET  /v1/reconcile                     desired-state convergence counters
//	POST /v1/reconcile/sweep               force one reconciliation sweep
//	POST /v1/snapshot                      compact the durable intent store
//
// With -data-dir set, every accepted mutation is journaled to an
// append-only log before the verb returns (fsync policy via -fsync /
// -fsync-every), snapshots compact the journal every -compact-every
// records, and on boot the daemon replays snapshot + journal tail to
// recover the pre-crash control-plane state. The -seed and -hosts flags
// must match the world the store was created with; the daemon refuses
// to replay a foreign world's journal. A reconciler goroutine per
// (provider, region) then keeps the dataplane converged to the declared
// state (period -reconcile-interval, 0 disables).
//
// With -debug-addr set, a second listener serves net/http/pprof under
// /debug/pprof/ and the expvar JSON dump under /debug/vars (the metrics
// registry is published there as "declnet"). Mutex and block profiling
// are enabled on that listener too (-mutex-profile-fraction,
// -block-profile-rate), so write-lock contention on the mutation plane
// is inspectable at /debug/pprof/mutex and /debug/pprof/block.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"strconv"
	"time"

	"declnet"
	"declnet/internal/api"
	"declnet/internal/core"
	"declnet/internal/intent"
)

func parseLevel(s string) (slog.Level, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(s)); err != nil {
		return 0, fmt.Errorf("bad -log-level %q (want debug, info, warn, or error)", s)
	}
	return lvl, nil
}

func main() {
	listen := flag.String("listen", ":8080", "listen address")
	seed := flag.Int64("seed", 1, "simulation seed")
	hosts := flag.Int("hosts", 4, "hosts per availability zone")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	debugAddr := flag.String("debug-addr", "", "optional address for pprof and expvar debug endpoints")
	mutexFrac := flag.Int("mutex-profile-fraction", 100,
		"with -debug-addr: sample 1/N mutex contention events (0 disables)")
	blockRate := flag.Int("block-profile-rate", 10000,
		"with -debug-addr: sample blocking events >= N ns (0 disables)")
	dataDir := flag.String("data-dir", "",
		"directory for the durable intent store (empty = in-memory only)")
	fsync := flag.String("fsync", "interval",
		"journal durability: none, always, or interval (fsync every -fsync-every records)")
	fsyncEvery := flag.Int("fsync-every", 64,
		"with -fsync interval: fsync the journal every N records")
	compactEvery := flag.Int("compact-every", 4096,
		"snapshot and truncate the journal every N records (0 = only on POST /v1/snapshot)")
	reconcileInterval := flag.Duration("reconcile-interval", time.Second,
		"period of the background desired-state reconciler (0 disables; needs -data-dir)")
	antiEntropyK := flag.Int("anti-entropy-k", 8,
		"incremental reconciliation: sweep dirty targets plus a rotating 1/K anti-entropy slice (0 = full scan every sweep)")
	flag.Parse()

	lvl, err := parseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))

	world, err := declnet.NewFig1World(*seed, *hosts)
	if err != nil {
		logger.Error("building world", "err", err)
		os.Exit(1)
	}

	var store *intent.Log
	if *dataDir != "" {
		policy, err := intent.ParseSyncPolicy(*fsync)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		store, err = intent.Open(*dataDir, intent.Options{
			Sync:         policy,
			SyncEvery:    *fsyncEvery,
			CompactEvery: *compactEvery,
			Meta: map[string]string{
				"seed":  strconv.FormatInt(*seed, 10),
				"hosts": strconv.Itoa(*hosts),
			},
		})
		if err != nil {
			logger.Error("opening intent store", "dir", *dataDir, "err", err)
			os.Exit(1)
		}
		// Refuse to replay a journal recorded against a different world:
		// replay assumes the same topology and allocation order.
		meta := store.Meta()
		if meta["seed"] != strconv.FormatInt(*seed, 10) || meta["hosts"] != strconv.Itoa(*hosts) {
			logger.Error("intent store belongs to a different world",
				"dir", *dataDir,
				"store_seed", meta["seed"], "store_hosts", meta["hosts"],
				"flag_seed", *seed, "flag_hosts", *hosts)
			os.Exit(1)
		}
		if store.Seq() > 0 {
			if err := world.RestoreIntent(store.State()); err != nil {
				logger.Error("replaying intent store", "dir", *dataDir, "err", err)
				os.Exit(1)
			}
			logger.Info("recovered control-plane state from intent store",
				"dir", *dataDir, "seq", store.Seq(), "replayed", store.Stats().ReplayedRecords)
		}
		world.EnableIntent(store)
	}

	srv := api.NewServerWith(world, api.Options{Logger: logger})

	if store != nil {
		world.EnableReconciler(core.ReconcilerConfig{
			Interval:     *reconcileInterval,
			AntiEntropyK: *antiEntropyK,
			Gate:         srv.WorldGate(),
		})
		if *reconcileInterval > 0 {
			world.Reconciler().Start()
			logger.Info("reconciler running", "interval", *reconcileInterval, "anti_entropy_k", *antiEntropyK)
		}
	}

	if *debugAddr != "" {
		// Lock-contention profiles cover the API write lock the mutation
		// plane serializes behind; both are off by default in the runtime
		// and cheap at these sampling rates.
		runtime.SetMutexProfileFraction(*mutexFrac)
		runtime.SetBlockProfileRate(*blockRate)
		// pprof registered itself on DefaultServeMux via import; publish
		// the metrics registry alongside it for /debug/vars.
		expvar.Publish("declnet", expvar.Func(func() any {
			return srv.ExpvarMap()
		}))
		go func() {
			logger.Info("debug listener up", "addr", *debugAddr,
				"pprof", "/debug/pprof/", "expvar", "/debug/vars")
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				logger.Error("debug listener failed", "err", err)
			}
		}()
	}

	logger.Info("declnetd: Table-2 control plane up",
		"listen", *listen,
		"providers", fmt.Sprintf("%s, %s, onprem", world.Fig1.CloudA, world.Fig1.CloudB),
		"seed", *seed, "hosts_per_zone", *hosts, "log_level", lvl.String())
	if err := http.ListenAndServe(*listen, srv); err != nil {
		logger.Error("listener failed", "err", err)
		os.Exit(1)
	}
}
