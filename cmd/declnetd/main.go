// Command declnetd serves the declarative tenant-networking control plane
// (the paper's Table-2 API) over HTTP/JSON, backed by a simulated
// Figure-1 multi-cloud world.
//
// Usage:
//
//	declnetd -listen :8080 -seed 1 -hosts 4
//
// Endpoints (all JSON):
//
//	POST /v1/eips          {tenant, vm}                       request_eip
//	POST /v1/eips/release  {tenant, eip}
//	POST /v1/sips          {tenant, provider}                 request_sip
//	POST /v1/bind          {tenant, eip, sip, weight}         bind
//	POST /v1/unbind        {tenant, eip, sip}
//	POST /v1/permit        {tenant, target, entries, groups}  set_permit_list
//	POST /v1/qos           {tenant, provider, region, bandwidth_bps}  set_qos
//	POST /v1/potato        {tenant, provider, policy}
//	POST /v1/groups        {tenant, provider, name, members}
//	POST /v1/transfer      {tenant, src, dst, bytes}
//	GET  /v1/probe?tenant=&src=&dst=
//	GET  /v1/status
package main

import (
	"flag"
	"log"
	"net/http"

	"declnet"
	"declnet/internal/api"
)

func main() {
	listen := flag.String("listen", ":8080", "listen address")
	seed := flag.Int64("seed", 1, "simulation seed")
	hosts := flag.Int("hosts", 4, "hosts per availability zone")
	flag.Parse()

	world, err := declnet.NewFig1World(*seed, *hosts)
	if err != nil {
		log.Fatalf("building world: %v", err)
	}
	srv := api.NewServer(world)
	log.Printf("declnetd: Table-2 control plane on %s (providers: %s, %s, onprem)",
		*listen, world.Fig1.CloudA, world.Fig1.CloudB)
	log.Fatal(http.ListenAndServe(*listen, srv))
}
