GO ?= go

.PHONY: build test vet race bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The solver and the parallel sweep driver are the concurrency-sensitive
# packages; run them under the race detector.
race:
	$(GO) test -race ./internal/netsim/... ./internal/exp/...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Tier-1 verification plus vet and the race pass.
check: build vet test race
