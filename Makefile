GO ?= go
FUZZTIME ?= 10s
BENCHTIME ?= 1s
# Full-tier drill size for `make scale`; 400 tenants keep each region's
# share of a million EIPs inside its /16.
SCALE_EIPS ?= 1000000
SCALE_TENANTS ?= 400

.PHONY: build test vet race bench benchsmoke benchdiff scale recover-scale soak staticcheck check fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The solver, the parallel sweep driver, the concurrent read plane
# (core caches + API RWMutex), and the lock-free SLO/trace planes are the
# concurrency-sensitive packages; run them under the race detector.
race:
	$(GO) test -race ./internal/netsim/... ./internal/exp/... ./internal/core/... ./internal/api/... ./internal/scale/... ./internal/slo/... ./internal/obs/... ./internal/intent/...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# One-iteration solver benchmark: catches benchmarks that no longer
# compile or crash without paying for a real measurement run.
benchsmoke:
	$(GO) test -run '^$$' -bench MaxMinReshare -benchtime 1x .

# Connect fast-path and mutation-plane benchmarks as diffable JSON
# artifacts. BENCHTIME=1x turns this into a smoke run (CI does); the
# default 1s gives numbers worth committing next to a perf change. The
# mutate artifact concatenates two packages' runs: the mixed read/write
# plane lives in the root package, the /v1/batch onboarding comparison
# in internal/api (it needs the HTTP server, which imports the root).
benchdiff:
	$(GO) test -run '^$$' -bench 'Connect|ShortestPath|PotatoPath' -benchmem -benchtime $(BENCHTIME) . \
		| $(GO) run ./cmd/benchjson -o BENCH_connect.json
	@cat BENCH_connect.json
	{ $(GO) test -run '^$$' -bench 'MutatePlane' -benchmem -benchtime $(BENCHTIME) . ; \
	  $(GO) test -run '^$$' -bench 'BatchOnboard' -benchtime $(BENCHTIME) ./internal/api/ ; } \
		| $(GO) run ./cmd/benchjson -o BENCH_mutate.json
	@cat BENCH_mutate.json
	$(GO) test -run '^$$' -bench 'ScaleDrill' -benchtime 1x ./internal/scale/ \
		| $(GO) run ./cmd/benchjson -o BENCH_scale.json -gate 'storm_idle_p99_ratio<=1.5'
	@cat BENCH_scale.json
	$(GO) test -run '^$$' -bench 'SLOOverhead' -benchtime 1x ./internal/scale/ \
		| $(GO) run ./cmd/benchjson -o BENCH_slo.json -gate 'obs_overhead_pct<=5'
	@cat BENCH_slo.json
	$(GO) test -run '^$$' -bench 'Recovery' -benchtime 1x ./internal/scale/ \
		| $(GO) run ./cmd/benchjson -o BENCH_recover.json -gate 'recover_sec<=3'
	@cat BENCH_recover.json
	$(GO) test -run '^$$' -bench 'ReconcileSweep' -benchtime 1x -timeout 30m ./internal/scale/ \
		| $(GO) run ./cmd/benchjson -o BENCH_reconcile.json -gate 'reconcile_incr_full_ratio<=0.1'
	@cat BENCH_reconcile.json

# The full-tier scale drill: a 10^6-EIP E13 run. The drill is
# self-contained, so one benchmark iteration is the measurement.
scale:
	DECLNET_SCALE_EIPS=$(SCALE_EIPS) DECLNET_SCALE_TENANTS=$(SCALE_TENANTS) \
		$(GO) test -run '^$$' -bench 'ScaleDrill' -benchtime 1x -timeout 30m ./internal/scale/ \
		| $(GO) run ./cmd/benchjson -o BENCH_scale.json -gate 'storm_idle_p99_ratio<=1.5'
	@cat BENCH_scale.json

# Restart recovery at the full 10^6-EIP tier: journal decode and surface
# restore fan out across GOMAXPROCS workers, so this is the tier where
# parallel recovery earns its keep. No gate — the artifact is the
# measurement (the 10^5 CI tier gates recover_sec in benchdiff).
recover-scale:
	DECLNET_RECOVER_EIPS=$(SCALE_EIPS) DECLNET_RECOVER_TENANTS=$(SCALE_TENANTS) \
		$(GO) test -run '^$$' -bench 'Recovery' -benchtime 1x -timeout 60m ./internal/scale/ \
		| $(GO) run ./cmd/benchjson -o BENCH_recover_scale.json
	@cat BENCH_recover_scale.json

# Static analysis beyond vet. The tool is optional locally (CI installs
# it); skip quietly when absent rather than failing the whole check.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Short fuzz pass over the wire-format parsers. Each target gets
# $(FUZZTIME); regression corpus lives under testdata/fuzz/ so plain
# `go test` replays past findings even without this target.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzParseIP$$' -fuzztime $(FUZZTIME) ./internal/addr/
	$(GO) test -run '^$$' -fuzz '^FuzzParsePrefix$$' -fuzztime $(FUZZTIME) ./internal/addr/
	$(GO) test -run '^$$' -fuzz '^FuzzParsePermitEntry$$' -fuzztime $(FUZZTIME) ./internal/api/
	$(GO) test -run '^$$' -fuzz '^FuzzParseConfig$$' -fuzztime $(FUZZTIME) ./internal/scale/
	$(GO) test -run '^$$' -fuzz '^FuzzParseObjective$$' -fuzztime $(FUZZTIME) ./internal/slo/
	$(GO) test -run '^$$' -fuzz '^FuzzJournalDecode$$' -fuzztime $(FUZZTIME) ./internal/intent/

# The E15 chaos soak at full length: hours of virtual time of
# fault/heal and churn with repeated mid-stream crash/restart cycles,
# each recovery checked byte-for-byte against an uncrashed oracle.
# DECLNET_SOAK_ROUNDS scales the run; the default golden (E15) uses the
# short deterministic tier.
soak:
	DECLNET_SOAK_ROUNDS=48 $(GO) test -run TestChaosSoakFull -timeout 60m -v ./internal/exp/

# Tier-1 verification plus vet, static analysis, the race pass, and the
# benchmark smoke test.
check: build vet staticcheck test race benchsmoke
