GO ?= go
FUZZTIME ?= 10s

.PHONY: build test vet race bench check fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The solver and the parallel sweep driver are the concurrency-sensitive
# packages; run them under the race detector.
race:
	$(GO) test -race ./internal/netsim/... ./internal/exp/...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Short fuzz pass over the wire-format parsers. Each target gets
# $(FUZZTIME); regression corpus lives under testdata/fuzz/ so plain
# `go test` replays past findings even without this target.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzParseIP$$' -fuzztime $(FUZZTIME) ./internal/addr/
	$(GO) test -run '^$$' -fuzz '^FuzzParsePrefix$$' -fuzztime $(FUZZTIME) ./internal/addr/
	$(GO) test -run '^$$' -fuzz '^FuzzParsePermitEntry$$' -fuzztime $(FUZZTIME) ./internal/api/

# Tier-1 verification plus vet and the race pass.
check: build vet test race
