package declnet

import (
	"math/rand"
	"testing"

	"declnet/internal/addr"
	"declnet/internal/lb"
	"declnet/internal/permit"
	"declnet/internal/routing"
)

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// SIP balancing algorithm, greylist shedding in front of the permit
// engine, and provider-side address aggregation. Each reports a domain
// quality metric alongside cost so `-bench Ablation` shows what every
// alternative buys.

// BenchmarkAblationLBPolicy compares smooth WRR against
// power-of-two-choices under heterogeneous connection lifetimes, where
// WRR's arrival-order fairness drifts from instantaneous load balance.
func BenchmarkAblationLBPolicy(b *testing.B) {
	run := func(b *testing.B, pick func(*lb.Balancer, func(int) int) (*lb.Backend, error)) {
		bal := lb.New(addr.MustParseIP("104.255.0.1"))
		for i := 0; i < 16; i++ {
			bal.Bind(addr.MustParseIP("104.0.0.1")+addr.IP(i), 1)
		}
		rng := rand.New(rand.NewSource(1))
		rnd := func(n int) int { return rng.Intn(n) }
		// Churning connection pool: long-lived and short-lived mixed.
		var pool []*lb.Backend
		maxImbalance := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			be, err := pick(bal, rnd)
			if err != nil {
				b.Fatal(err)
			}
			pool = append(pool, be)
			// Short-lived connections release quickly; every 10th lives on.
			if len(pool) > 64 {
				idx := rng.Intn(len(pool))
				bal.Release(pool[idx])
				pool = append(pool[:idx], pool[idx+1:]...)
			}
			if i%64 == 0 {
				min, max := 1<<30, 0
				for _, backend := range bal.Backends() {
					if a := backend.Active(); a < min {
						min = a
					} else if a > max {
						max = a
					}
				}
				if max-min > maxImbalance {
					maxImbalance = max - min
				}
			}
		}
		b.ReportMetric(float64(maxImbalance), "max-imbalance")
	}
	b.Run("smooth-wrr", func(b *testing.B) {
		run(b, func(bal *lb.Balancer, _ func(int) int) (*lb.Backend, error) {
			return bal.Pick()
		})
	})
	b.Run("p2c", func(b *testing.B) {
		run(b, func(bal *lb.Balancer, rnd func(int) int) (*lb.Backend, error) {
			return bal.PickP2C(rnd)
		})
	})
}

// BenchmarkAblationShield measures admission cost under a volumetric
// attack with and without greylist shedding in front of the permit
// engine.
func BenchmarkAblationShield(b *testing.B) {
	setup := func() (*permit.Engine, addr.IP) {
		e := permit.NewEngine()
		dst := addr.MustParseIP("104.0.0.1")
		e.Permit(dst, addr.NewPrefix(addr.MustParseIP("100.64.0.1"), 32))
		return e, dst
	}
	// 256 attacking sources cycling; 1 legitimate.
	attacker := func(i int) addr.IP {
		return addr.MustParseIP("203.0.113.0") + addr.IP(i%256)
	}
	b.Run("engine-only", func(b *testing.B) {
		e, dst := setup()
		for i := 0; i < b.N; i++ {
			e.Check(attacker(i), dst)
		}
	})
	b.Run("with-shield", func(b *testing.B) {
		e, dst := setup()
		s := permit.NewShield(e, 10)
		for i := 0; i < b.N; i++ {
			s.Check(attacker(i), dst)
		}
		b.ReportMetric(float64(s.GreylistSize()), "greylisted")
	})
}

// BenchmarkAblationAggregation measures the provider-side aggregation
// pass on 10k dense /32s and reports the compaction it buys — the E3
// design choice in isolation.
func BenchmarkAblationAggregation(b *testing.B) {
	const n = 10000
	routes := make([]routing.Route, 0, n)
	pool := addr.NewHostPool(addr.MustParsePrefix("104.0.0.0/16"), 0)
	for i := 0; i < n; i++ {
		ip, err := pool.Allocate()
		if err != nil {
			b.Fatal(err)
		}
		zone := "zone-a"
		if i >= n/2 {
			zone = "zone-b"
		}
		routes = append(routes, routing.Route{
			Prefix: addr.NewPrefix(ip, 32),
			Hop:    routing.NextHop{ID: zone},
		})
	}
	var out []routing.Route
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = routing.Aggregate(routes)
	}
	b.ReportMetric(float64(n)/float64(len(out)), "compaction-x")
}
