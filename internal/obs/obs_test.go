package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRingBounds(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(Event{Tenant: "acme", Kind: PermitAllow, Detail: fmt.Sprintf("e%d", i)})
	}
	if got := tr.Len("acme"); got != 4 {
		t.Fatalf("Len = %d, want ring cap 4", got)
	}
	evs := tr.Recent("acme", 0)
	if len(evs) != 4 {
		t.Fatalf("Recent returned %d events, want 4", len(evs))
	}
	// Oldest first, and only the newest four survive.
	for i, ev := range evs {
		want := fmt.Sprintf("e%d", 6+i)
		if ev.Detail != want {
			t.Errorf("event %d detail = %q, want %q", i, ev.Detail, want)
		}
	}
	if evs[0].Seq >= evs[3].Seq {
		t.Errorf("events not in Seq order: %d !< %d", evs[0].Seq, evs[3].Seq)
	}
	if tr.Evicted() != 6 {
		t.Errorf("Evicted = %d, want 6", tr.Evicted())
	}
	if tr.Recorded() != 10 {
		t.Errorf("Recorded = %d, want 10", tr.Recorded())
	}
}

func TestRecentLimit(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 5; i++ {
		tr.Record(Event{Tenant: "acme"})
	}
	if got := len(tr.Recent("acme", 2)); got != 2 {
		t.Fatalf("Recent(2) returned %d events", got)
	}
	if got := len(tr.Recent("nobody", 2)); got != 0 {
		t.Fatalf("Recent for unknown tenant returned %d events", got)
	}
}

func TestPerTenantIsolation(t *testing.T) {
	tr := NewTracer(2)
	for i := 0; i < 10; i++ {
		tr.Record(Event{Tenant: "noisy"})
	}
	tr.Record(Event{Tenant: "quiet", Detail: "only"})
	// The noisy tenant's churn must not evict the quiet tenant's history.
	evs := tr.Recent("quiet", 0)
	if len(evs) != 1 || evs[0].Detail != "only" {
		t.Fatalf("quiet tenant lost its event: %v", evs)
	}
	if got := tr.Tenants(); len(got) != 2 || got[0] != "noisy" || got[1] != "quiet" {
		t.Fatalf("Tenants = %v", got)
	}
}

func TestNilTracerIsNoop(t *testing.T) {
	var tr *Tracer
	if seq := tr.Record(Event{Tenant: "x"}); seq != 0 {
		t.Fatalf("nil tracer returned seq %d", seq)
	}
	if tr.Recent("x", 0) != nil || tr.Len("x") != 0 || tr.Recorded() != 0 || tr.Evicted() != 0 || tr.Tenants() != nil {
		t.Fatal("nil tracer leaked state")
	}
}

// TestTracerConcurrent exercises Record/Recent from many goroutines; run
// under -race (make race / CI) this is the data-race proof for the
// HTTP-handler-vs-simulation sharing in declnetd.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", g%2)
			for i := 0; i < 500; i++ {
				tr.Record(Event{Tenant: tenant, Kind: SIPPick, At: time.Duration(i)})
				if i%50 == 0 {
					tr.Recent(tenant, 10)
				}
			}
		}(g)
	}
	wg.Wait()
	if tr.Recorded() != 4000 {
		t.Fatalf("Recorded = %d, want 4000", tr.Recorded())
	}
}

// TestDrop is the unbounded-growth regression: a workload churning
// short-lived tenants must not leak one ring per tenant, and dropping
// the memoized tenant must not leave Record writing into the orphaned
// ring.
func TestDrop(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 100; i++ {
		tenant := fmt.Sprintf("churn%d", i)
		tr.Record(Event{Tenant: tenant, Detail: "hello"})
		tr.Drop(tenant)
	}
	if got := tr.Tenants(); len(got) != 0 {
		t.Fatalf("churned tenants leaked rings: %v", got)
	}
	// Drop the tenant the lookup memo points at, then Record again: the
	// event must land in a fresh, discoverable ring — not the orphan.
	tr.Record(Event{Tenant: "acme", Detail: "before"})
	tr.Drop("acme")
	if tr.Len("acme") != 0 {
		t.Fatal("Drop left buffered events behind")
	}
	tr.Record(Event{Tenant: "acme", Detail: "after"})
	evs := tr.Recent("acme", 0)
	if len(evs) != 1 || evs[0].Detail != "after" {
		t.Fatalf("post-drop events = %v, want exactly the fresh one", evs)
	}
	// Dropping a tenant that never recorded is a no-op.
	tr.Drop("nobody")
	var nilTr *Tracer
	nilTr.Drop("x")
}

func TestChainAndString(t *testing.T) {
	c := Chain("no-healthy-backend:104.255.0.1", "region-down:cloudB/b-east")
	if c != "no-healthy-backend:104.255.0.1 <- region-down:cloudB/b-east" {
		t.Fatalf("Chain = %q", c)
	}
	ev := Event{Seq: 3, At: time.Second, Tenant: "acme", Kind: PermitDeny,
		Src: "1.2.3.4", Dst: "5.6.7.8", Verdict: "deny", Cause: c}
	s := ev.String()
	for _, want := range []string{"#3", "acme", "permit-deny", "1.2.3.4->5.6.7.8", "region-down"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
