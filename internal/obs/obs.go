// Package obs is the provider-side observability plane: structured
// decision tracing for every datapath and control-plane verdict the
// provider takes on a tenant's behalf. The paper's §6 asks who diagnoses
// problems once VPCs and appliances disappear behind the declarative
// interface — the tenant "lacks visibility", so the provider must supply
// it. This package is the supply side: each permit match or deny, SIP
// backend selection, QoS throttle, path choice, and failover rebind
// records a trace Event with a virtual timestamp and a cause chain, into
// a bounded per-tenant ring buffer the /v1/trace and /v1/explain
// endpoints read back.
//
// A nil *Tracer is valid and records nothing, so instrumented code paths
// pay only a nil check when observability is disabled (the stripped arm
// of experiment E12).
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Kind classifies a trace event.
type Kind string

// The provider-side decision kinds. Every verdict the datapath or the
// failure-reaction loop takes on a tenant's behalf maps to exactly one.
const (
	// PermitAllow / PermitDeny are default-off admission verdicts: which
	// entry matched (and at which propagation epoch), or why nothing did.
	PermitAllow Kind = "permit-allow"
	PermitDeny  Kind = "permit-deny"
	// PermitUpdate is a set_permit_list landing immediately; PermitDefer,
	// PermitApply, and PermitTimeout track the deferred-retry lifecycle
	// of updates targeting unreachable enforcement points.
	PermitUpdate  Kind = "permit-update"
	PermitDefer   Kind = "permit-defer"
	PermitApply   Kind = "permit-apply"
	PermitTimeout Kind = "permit-timeout"
	// SIPPick is a load-balancer backend selection for a service IP.
	SIPPick Kind = "sip-pick"
	// PathSelect is a potato-profile path choice.
	PathSelect Kind = "path-select"
	// QoSThrottle is a flow coming under regional egress enforcement.
	QoSThrottle Kind = "qos-throttle"
	// Failover / Rebind are the health monitor pulling a SIP backend from
	// rotation and restoring it.
	Failover Kind = "failover"
	Rebind   Kind = "rebind"
	// Explain is a tenant-requested decision replay (GET /v1/explain).
	Explain Kind = "explain"
	// SLOBreach is the SLO plane flagging a shard whose windowed p99
	// breached its trailing baseline, with the suspected noisy neighbor
	// in the cause chain.
	SLOBreach Kind = "slo-breach"
	// Reconcile is the desired-state engine repairing dataplane drift,
	// the divergence it closed in the cause chain
	// ("reconcile:permit:10.0.0.3 <- drift:missing-entries").
	Reconcile Kind = "reconcile"
)

// Event is one structured provider-side decision.
type Event struct {
	// Seq is a tracer-global monotonic sequence number; events across
	// tenants interleave in Seq order.
	Seq uint64 `json:"seq"`
	// At is the virtual time of the decision.
	At time.Duration `json:"at_ns"`
	// Tenant is the account the decision concerns.
	Tenant string `json:"tenant"`
	Kind   Kind   `json:"kind"`
	// Src and Dst are the flow endpoints of the decision, when it has
	// them (addresses, or node IDs for infrastructure events).
	Src string `json:"src,omitempty"`
	Dst string `json:"dst,omitempty"`
	// Verdict is the outcome: "ok", "deny", "fail", ...
	Verdict string `json:"verdict"`
	// Detail is a human-readable elaboration (matched entry, epoch,
	// chosen backend, path summary).
	Detail string `json:"detail,omitempty"`
	// Cause is the cause chain for negative verdicts, innermost last,
	// e.g. "no-healthy-backend:104.255.0.1 <- region-down:cloudB/b-east".
	Cause string `json:"cause,omitempty"`
}

// String renders the event for logs.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%v] #%d %s %s %s", e.At, e.Seq, e.Tenant, e.Kind, e.Verdict)
	if e.Src != "" || e.Dst != "" {
		fmt.Fprintf(&b, " %s->%s", e.Src, e.Dst)
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, " (%s)", e.Detail)
	}
	if e.Cause != "" {
		fmt.Fprintf(&b, " cause=%s", e.Cause)
	}
	return b.String()
}

// Chain joins cause links into the canonical cause-chain string,
// outermost effect first: Chain("no-healthy-backend:x", "node-down:y").
func Chain(causes ...string) string { return strings.Join(causes, " <- ") }

// ring is a fixed-capacity overwrite-oldest event buffer.
type ring struct {
	buf  []Event
	next int
	full bool
}

func (r *ring) push(ev Event) (evicted bool) {
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.buf[r.next] = ev
	r.next++
	return r.full
}

// events returns buffered events oldest first.
func (r *ring) events() []Event {
	if !r.full {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

func (r *ring) len() int {
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Tracer records decision events into one bounded ring buffer per tenant,
// so a chatty tenant cannot grow provider memory or evict another
// tenant's history. Safe for concurrent use. The zero value is NOT ready;
// use NewTracer. A nil *Tracer records nothing.
type Tracer struct {
	mu     sync.Mutex
	cap    int
	rings  map[string]*ring
	seq    uint64
	nStamp uint64 // events recorded (not evicted)
	nDrop  uint64 // events overwritten by ring wraparound

	// lastTenant/lastRing memoize the map lookup for the common case of
	// many consecutive events from one tenant (guarded by mu).
	lastTenant string
	lastRing   *ring
}

// DefaultPerTenantCap bounds each tenant's ring when NewTracer is given
// a non-positive capacity.
const DefaultPerTenantCap = 1024

// NewTracer returns a tracer keeping at most perTenantCap events per
// tenant (DefaultPerTenantCap if <= 0).
func NewTracer(perTenantCap int) *Tracer {
	if perTenantCap <= 0 {
		perTenantCap = DefaultPerTenantCap
	}
	return &Tracer{cap: perTenantCap, rings: make(map[string]*ring)}
}

// Record stamps the event with the next sequence number and appends it to
// the tenant's ring, evicting the oldest event when full. Nil-safe: a nil
// tracer records nothing and returns 0.
func (t *Tracer) Record(ev Event) uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	ev.Seq = t.seq
	r := t.lastRing
	if r == nil || t.lastTenant != ev.Tenant {
		var ok bool
		if r, ok = t.rings[ev.Tenant]; !ok {
			r = &ring{buf: make([]Event, t.cap)}
			t.rings[ev.Tenant] = r
		}
		t.lastTenant, t.lastRing = ev.Tenant, r
	}
	if r.push(ev) {
		t.nDrop++
	}
	t.nStamp++
	return ev.Seq
}

// Recent returns up to n of the tenant's most recent events, oldest
// first (all buffered events when n <= 0). Nil-safe.
func (t *Tracer) Recent(tenant string, n int) []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r, ok := t.rings[tenant]
	if !ok {
		return nil
	}
	evs := r.events()
	if n > 0 && len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	return evs
}

// Len reports how many events the tenant's ring currently holds.
func (t *Tracer) Len(tenant string) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r, ok := t.rings[tenant]
	if !ok {
		return 0
	}
	return r.len()
}

// Recorded returns the total events ever recorded; Evicted how many were
// overwritten by ring wraparound. Nil-safe.
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.nStamp
}

// Evicted returns how many events ring wraparound has overwritten.
func (t *Tracer) Evicted() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.nDrop
}

// Drop releases the tenant's ring. Called when a tenant's last address
// is released: without eviction the rings map only ever grows, so a
// workload that churns through short-lived tenants leaks one ring
// (cap × sizeof(Event)) per tenant forever. Events already buffered
// for the tenant are discarded; a later Record for the same tenant
// starts a fresh ring. Nil-safe.
func (t *Tracer) Drop(tenant string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.rings, tenant)
	if t.lastTenant == tenant {
		// Invalidate the lookup memo or the next Record for this tenant
		// would write into the orphaned ring.
		t.lastTenant, t.lastRing = "", nil
	}
}

// Tenants returns the tenants with buffered events, sorted.
func (t *Tracer) Tenants() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.rings))
	for name := range t.rings {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
