package complexity

import (
	"strings"
	"testing"
)

func TestLedgerCounts(t *testing.T) {
	var l Ledger
	l.Resource("vpc")
	l.Resource("vpc")
	l.Resource("subnet")
	l.Param("vpc", 3)
	l.Param("subnet", 2)
	l.Step()
	l.Decision()
	l.Decisions(2)

	if l.Boxes() != 3 {
		t.Fatalf("Boxes = %d, want 3", l.Boxes())
	}
	if l.BoxesOf("vpc") != 2 {
		t.Fatalf("BoxesOf(vpc) = %d, want 2", l.BoxesOf("vpc"))
	}
	if l.Params() != 5 {
		t.Fatalf("Params = %d, want 5", l.Params())
	}
	if l.Steps() != 4 { // 3 resources + 1 explicit step
		t.Fatalf("Steps = %d, want 4", l.Steps())
	}
	if l.DecisionCount() != 3 {
		t.Fatalf("Decisions = %d, want 3", l.DecisionCount())
	}
}

func TestLedgerConceptsSorted(t *testing.T) {
	var l Ledger
	l.Resource("zebra")
	l.Param("alpha", 1)
	got := l.Concepts()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zebra" {
		t.Fatalf("Concepts = %v", got)
	}
	kinds := l.Kinds()
	if len(kinds) != 1 || kinds[0] != "zebra" {
		t.Fatalf("Kinds = %v", kinds)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var l Ledger
	if l.Boxes() != 0 || l.Params() != 0 || l.Steps() != 0 {
		t.Fatal("zero ledger not empty")
	}
	_ = l.Snapshot() // must not panic
}

func TestSnapshotDiff(t *testing.T) {
	var l Ledger
	l.Resource("vpc")
	l.Param("vpc", 4)
	before := l.Snapshot()

	l.Resource("tgw")
	l.Param("tgw", 6)
	l.Param("vpc", 2)
	l.Step()
	l.Decision()

	d := l.Since(before)
	if d.ResourcesChanged != 1 {
		t.Fatalf("ResourcesChanged = %d, want 1", d.ResourcesChanged)
	}
	if d.ParamsChanged != 8 {
		t.Fatalf("ParamsChanged = %d, want 8", d.ParamsChanged)
	}
	if d.StepsTaken != 2 { // tgw resource + explicit step
		t.Fatalf("StepsTaken = %d, want 2", d.StepsTaken)
	}
	if d.DecisionsTaken != 1 {
		t.Fatalf("DecisionsTaken = %d, want 1", d.DecisionsTaken)
	}
}

func TestDiffCountsRemovals(t *testing.T) {
	var l Ledger
	l.Resource("vpc")
	snapshotWithVPC := l.Snapshot()

	var fresh Ledger
	fresh.Resource("tgw")
	d := fresh.Since(snapshotWithVPC)
	// One vpc disappeared, one tgw appeared: both register as change.
	if d.ResourcesChanged != 2 {
		t.Fatalf("ResourcesChanged = %d, want 2", d.ResourcesChanged)
	}
}

func TestString(t *testing.T) {
	var l Ledger
	l.Resource("vpc")
	if s := l.String(); !strings.Contains(s, "boxes=1") {
		t.Fatalf("String = %q", s)
	}
}
