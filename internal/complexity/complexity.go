// Package complexity quantifies the tenant-facing burden the paper argues
// against: how many virtual network "boxes" a deployment needs, how many
// configuration parameters were set, how many provisioning steps and
// decisions were taken, and how much of it has to change when workloads
// move between clouds (§2, §3, and the Fig-1 claim in §5 of the paper).
//
// Both the baseline cloud facades and the declarative control plane write
// to a Ledger as tenants call them; experiments diff and print ledgers.
package complexity

import (
	"fmt"
	"sort"
	"strings"
)

// Ledger accumulates complexity counts. The zero value is ready to use.
type Ledger struct {
	resources map[string]int  // boxes by kind: "vpc", "subnet", "tgw", ...
	params    map[string]int  // parameters set, by resource kind
	steps     int             // provisioning API calls issued
	decisions int             // planning choices (option selection, sizing)
	concepts  map[string]bool // distinct abstraction names the tenant met
}

func (l *Ledger) init() {
	if l.resources == nil {
		l.resources = make(map[string]int)
		l.params = make(map[string]int)
		l.concepts = make(map[string]bool)
	}
}

// Resource records creation of one box of the given kind.
func (l *Ledger) Resource(kind string) {
	l.init()
	l.resources[kind]++
	l.concepts[kind] = true
	l.steps++
}

// Param records setting n configuration parameters on a resource kind.
func (l *Ledger) Param(kind string, n int) {
	l.init()
	l.params[kind] += n
	l.concepts[kind] = true
}

// Step records one provisioning API call that creates no resource
// (attachment, route installation, association, ...).
func (l *Ledger) Step() {
	l.init()
	l.steps++
}

// Decision records one planning choice the tenant had to make.
func (l *Ledger) Decision() {
	l.init()
	l.decisions++
}

// Decisions adds n planning choices at once.
func (l *Ledger) Decisions(n int) {
	l.init()
	l.decisions += n
}

// Boxes returns the total resource count.
func (l *Ledger) Boxes() int {
	var n int
	for _, c := range l.resources {
		n += c
	}
	return n
}

// BoxesOf returns the count of a particular resource kind.
func (l *Ledger) BoxesOf(kind string) int { return l.resources[kind] }

// Params returns the total parameter count.
func (l *Ledger) Params() int {
	var n int
	for _, c := range l.params {
		n += c
	}
	return n
}

// Steps returns the provisioning call count.
func (l *Ledger) Steps() int { return l.steps }

// DecisionCount returns the planning-choice count.
func (l *Ledger) DecisionCount() int { return l.decisions }

// Concepts returns the distinct abstraction kinds encountered, sorted.
func (l *Ledger) Concepts() []string {
	out := make([]string, 0, len(l.concepts))
	for c := range l.concepts {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Kinds returns resource kinds with nonzero counts, sorted.
func (l *Ledger) Kinds() []string {
	out := make([]string, 0, len(l.resources))
	for k := range l.resources {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Snapshot captures the ledger for later diffing.
type Snapshot struct {
	Resources map[string]int
	Params    map[string]int
	Steps     int
	Decisions int
}

// Snapshot returns a copy of the current counts.
func (l *Ledger) Snapshot() Snapshot {
	l.init()
	s := Snapshot{
		Resources: make(map[string]int, len(l.resources)),
		Params:    make(map[string]int, len(l.params)),
		Steps:     l.steps,
		Decisions: l.decisions,
	}
	for k, v := range l.resources {
		s.Resources[k] = v
	}
	for k, v := range l.params {
		s.Params[k] = v
	}
	return s
}

// Diff describes the change between two snapshots — the "how much did the
// tenant have to touch" measure behind the migration experiment (E8).
type Diff struct {
	ResourcesChanged int
	ParamsChanged    int
	StepsTaken       int
	DecisionsTaken   int
}

// Since computes the change from an earlier snapshot to the ledger's
// current state. Counts are absolute deltas, so teardown churn (removing
// boxes) also registers as change.
func (l *Ledger) Since(prev Snapshot) Diff {
	cur := l.Snapshot()
	var d Diff
	seen := make(map[string]bool)
	for k, v := range cur.Resources {
		d.ResourcesChanged += abs(v - prev.Resources[k])
		seen[k] = true
	}
	for k, v := range prev.Resources {
		if !seen[k] {
			d.ResourcesChanged += v
		}
	}
	seen = make(map[string]bool)
	for k, v := range cur.Params {
		d.ParamsChanged += abs(v - prev.Params[k])
		seen[k] = true
	}
	for k, v := range prev.Params {
		if !seen[k] {
			d.ParamsChanged += v
		}
	}
	d.StepsTaken = cur.Steps - prev.Steps
	d.DecisionsTaken = cur.Decisions - prev.Decisions
	return d
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// String summarizes the ledger.
func (l *Ledger) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "boxes=%d params=%d steps=%d decisions=%d concepts=%d",
		l.Boxes(), l.Params(), l.Steps(), l.DecisionCount(), len(l.concepts))
	return b.String()
}
