package cloudapi

import (
	"fmt"

	"declnet/internal/appliance"
	"declnet/internal/gateway"
	"declnet/internal/vnet"
)

// GCP is the gcp-like facade, divergent in its own ways: networks are
// global objects with regional subnetworks, firewall rules are
// network-scoped and select instances by *tag* rather than by group
// attachment, and peering needs a call from each side.
type GCP struct {
	env     *Env
	Project string
	seq     int
	// tagRules accumulates firewall rules per network so tags can be
	// resolved when instances are created later.
	networks map[string]*gcpNetwork
	// halfPeerings tracks one-sided peering requests until the far side
	// calls AddNetworkPeering too.
	halfPeerings map[string]bool
}

type gcpNetwork struct {
	vpc *vnet.VPC
	// tagSGs maps tag -> synthesized security group ID.
	tagSGs map[string]string
}

// NewGCP returns the facade for one project.
func NewGCP(env *Env, project string) *GCP {
	return &GCP{env: env, Project: project, networks: make(map[string]*gcpNetwork)}
}

func (g *GCP) id(kind string) string {
	g.seq++
	return fmt.Sprintf("%s-%s-%04d", kind, g.Project, g.seq)
}

// CreateNetwork provisions a global VPC network. autoCreateSubnetworks
// mirrors GCP's auto mode (charged as a decision either way).
func (g *GCP) CreateNetwork(name string, ipv4Range string, autoCreateSubnetworks bool) (*vnet.VPC, error) {
	p, err := parseCIDR(ipv4Range)
	if err != nil {
		return nil, err
	}
	v := vnet.NewVPC(name, p, g.env.Ledger)
	if err := g.env.Fabric.AddVPC(v); err != nil {
		return nil, err
	}
	g.networks[name] = &gcpNetwork{vpc: v, tagSGs: make(map[string]string)}
	g.env.Ledger.Param("gcp:network", 2) // routing mode, auto-subnet mode
	g.env.Ledger.Decision()
	_ = autoCreateSubnetworks
	return v, nil
}

// CreateSubnetwork carves a regional subnet of a network.
func (g *GCP) CreateSubnetwork(networkName, name, region, ipCidrRange string) error {
	nw, ok := g.networks[networkName]
	if !ok {
		return fmt.Errorf("cloudapi: unknown network %q", networkName)
	}
	p, err := parseCIDR(ipCidrRange)
	if err != nil {
		return err
	}
	if _, err := nw.vpc.AddSubnet(name, p, false); err != nil {
		return err
	}
	g.env.Ledger.Param("gcp:subnetwork", 3) // region, private access, flow logs
	return nil
}

// CreateFirewallRule installs a network-scoped rule selecting instances by
// target tag. The facade synthesizes one security group per tag and adds
// the rule to it; CreateInstance attaches the tag's group.
func (g *GCP) CreateFirewallRule(networkName, name string, targetTag string, rule vnet.SGRule, ingress bool) error {
	nw, ok := g.networks[networkName]
	if !ok {
		return fmt.Errorf("cloudapi: unknown network %q", networkName)
	}
	sgID, ok := nw.tagSGs[targetTag]
	if !ok {
		sgID = "tag:" + targetTag
		if err := nw.vpc.AddSecurityGroup(&vnet.SecurityGroup{ID: sgID}); err != nil {
			return err
		}
		nw.tagSGs[targetTag] = sgID
	}
	sg := nw.vpc.SecurityGroup(sgID)
	if ingress {
		sg.Ingress = append(sg.Ingress, rule)
	} else {
		sg.Egress = append(sg.Egress, rule)
	}
	g.env.Ledger.Param("gcp:firewall-rule", 5) // direction, priority, ranges, tags, allowed
	g.env.Ledger.Step()
	_ = name
	return nil
}

// CreateInstance launches a VM with network tags (which bind the firewall
// rules targeting those tags).
func (g *GCP) CreateInstance(networkName, name, subnetName string, tags ...string) (*vnet.Instance, error) {
	nw, ok := g.networks[networkName]
	if !ok {
		return nil, fmt.Errorf("cloudapi: unknown network %q", networkName)
	}
	groups := make([]string, 0, len(tags))
	for _, tag := range tags {
		sgID, ok := nw.tagSGs[tag]
		if !ok {
			// A tag with no rules behaves as deny-all; synthesize empty.
			sgID = "tag:" + tag
			if err := nw.vpc.AddSecurityGroup(&vnet.SecurityGroup{ID: sgID}); err != nil {
				return nil, err
			}
			nw.tagSGs[tag] = sgID
		}
		groups = append(groups, sgID)
	}
	inst, err := nw.vpc.LaunchInstance(name, subnetName, groups...)
	if err != nil {
		return nil, err
	}
	g.env.Ledger.Param("gcp:instance", 1+len(tags))
	return inst, nil
}

// AddAccessConfig gives an instance an external IP (GCP's one-call flavor).
func (g *GCP) AddAccessConfig(networkName, instName string) error {
	nw, ok := g.networks[networkName]
	if !ok {
		return fmt.Errorf("cloudapi: unknown network %q", networkName)
	}
	if _, err := g.env.Fabric.AssignPublicIP(nw.vpc.ID, instName); err != nil {
		return err
	}
	g.env.Ledger.Param("gcp:access-config", 1)
	return nil
}

// AddDefaultInternetGateway installs the implicit GCP default route and an
// IGW-equivalent (GCP has no IGW object; the facade charges the route).
func (g *GCP) AddDefaultInternetGateway(networkName string) error {
	nw, ok := g.networks[networkName]
	if !ok {
		return fmt.Errorf("cloudapi: unknown network %q", networkName)
	}
	igwID := g.id("default-igw")
	if _, err := g.env.Fabric.CreateIGW(igwID, nw.vpc.ID); err != nil {
		return err
	}
	all, _ := parseCIDR("0.0.0.0/0")
	for name := range nw.vpc.Subnets() {
		if err := nw.vpc.AddRoute(name, all, vnet.Target{Kind: vnet.TIGW, ID: igwID}); err != nil {
			return err
		}
	}
	g.env.Ledger.Param("gcp:route", 2)
	return nil
}

// CreateRoute installs a custom route in a network's subnet (GCP routes
// are network-scoped; the facade applies them to the named subnetwork).
func (g *GCP) CreateRoute(networkName, subnetName, destRange string, target vnet.Target) error {
	nw, ok := g.networks[networkName]
	if !ok {
		return fmt.Errorf("cloudapi: unknown network %q", networkName)
	}
	p, err := parseCIDR(destRange)
	if err != nil {
		return err
	}
	if err := nw.vpc.AddRoute(subnetName, p, target); err != nil {
		return err
	}
	g.env.Ledger.Param("gcp:route", 3) // dest range, next hop, priority
	return nil
}

// AddNetworkPeering peers two networks; GCP needs one call from each side
// and only activates the peering when both exist.
func (g *GCP) AddNetworkPeering(fromNetwork, toNetwork string) error {
	from, ok := g.networks[fromNetwork]
	if !ok {
		return fmt.Errorf("cloudapi: unknown network %q", fromNetwork)
	}
	to, ok := g.networks[toNetwork]
	if !ok {
		return fmt.Errorf("cloudapi: unknown network %q", toNetwork)
	}
	g.env.Ledger.Param("gcp:network-peering", 2)
	id := "gpeer-" + toNetwork + "-" + fromNetwork
	if g.halfPeerings == nil {
		g.halfPeerings = make(map[string]bool)
	}
	if g.halfPeerings[id] {
		if _, err := g.env.Fabric.CreatePeering("gpeer-"+fromNetwork+"-"+toNetwork, from.vpc.ID, to.vpc.ID); err != nil {
			return err
		}
		return nil
	}
	g.halfPeerings["gpeer-"+fromNetwork+"-"+toNetwork] = true
	return nil
}

// CreateCloudRouterVPN provisions a Cloud-Router-fronted VPN to a site in
// one facade call wrapping three GCP objects (router, tunnel, peer),
// charged as such.
func (g *GCP) CreateCloudRouterVPN(networkName, siteID string) (*gateway.VGW, error) {
	nw, ok := g.networks[networkName]
	if !ok {
		return nil, fmt.Errorf("cloudapi: unknown network %q", networkName)
	}
	g.env.Ledger.Resource("gcp:cloud-router")
	g.env.Ledger.Param("gcp:cloud-router", 2) // ASN, advertise mode
	g.env.Ledger.Resource("gcp:vpn-tunnel")
	g.env.Ledger.Param("gcp:vpn-tunnel", 3) // peer IP, shared secret, IKE version
	return g.env.Fabric.CreateVGW(g.id("gvpn"), nw.vpc.ID, siteID)
}

// CreateLoadBalancer provisions a GCP LB flavor.
func (g *GCP) CreateLoadBalancer(typ appliance.LBType) *appliance.LoadBalancer {
	lb := appliance.NewLoadBalancer(g.id("glb"), typ, g.env.Ledger)
	g.env.Ledger.Param("gcp:load-balancer", 3) // forwarding rule, proxy, url map
	return lb
}

// halfPeerings tracks one-sided peering requests until the far side calls.
var _ = (*GCP)(nil)
