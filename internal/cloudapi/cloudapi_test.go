package cloudapi

import (
	"strings"
	"testing"

	"declnet/internal/addr"
	"declnet/internal/gateway"
	"declnet/internal/vnet"
)

func anyPfx() vnet.SGRule {
	p, _ := parseCIDR("0.0.0.0/0")
	return vnet.SGRule{Source: p}
}

func TestAWSBuildAndReach(t *testing.T) {
	env := NewEnv()
	aws := NewAWS(env, "us-east-1")
	v, err := aws.CreateVpc("vpc-a", "10.0.0.0/16", VpcOptions{EnableDNSSupport: true, InstanceTenancy: "default"})
	if err != nil {
		t.Fatal(err)
	}
	if err := aws.CreateSubnet(v, "sn-1", "10.0.1.0/24", "us-east-1a", true); err != nil {
		t.Fatal(err)
	}
	if err := aws.CreateSecurityGroup(v, "web", "web tier"); err != nil {
		t.Fatal(err)
	}
	if err := aws.AuthorizeSecurityGroupIngress(v, "web", anyPfx()); err != nil {
		t.Fatal(err)
	}
	if err := aws.AuthorizeSecurityGroupEgress(v, "web", anyPfx()); err != nil {
		t.Fatal(err)
	}
	i1, err := aws.RunInstance(v, "i-1", "sn-1", "web")
	if err != nil {
		t.Fatal(err)
	}
	i2, err := aws.RunInstance(v, "i-2", "sn-1", "web")
	if err != nil {
		t.Fatal(err)
	}
	verdict := env.Fabric.Evaluate(
		gateway.Source{Kind: gateway.FromInstance, VPCID: "vpc-a", InstanceID: "i-1"},
		vnet.Packet{Src: i1.PrivateIP, Dst: i2.PrivateIP, Proto: vnet.TCP, DstPort: 80})
	if !verdict.Delivered {
		t.Fatalf("intra-VPC delivery via AWS facade failed: %v", verdict)
	}
	if env.Ledger.Boxes() == 0 || env.Ledger.Params() == 0 {
		t.Fatal("AWS facade charged nothing")
	}
	// Provider-flavored concepts recorded.
	found := false
	for _, c := range env.Ledger.Concepts() {
		if strings.HasPrefix(c, "aws:") {
			found = true
		}
	}
	if !found {
		t.Fatal("no aws:-prefixed concepts recorded")
	}
}

func TestAWSPublicPath(t *testing.T) {
	env := NewEnv()
	aws := NewAWS(env, "us-east-1")
	v, _ := aws.CreateVpc("vpc-a", "10.0.0.0/16", VpcOptions{})
	aws.CreateSubnet(v, "sn-1", "10.0.1.0/24", "a", true)
	aws.CreateSecurityGroup(v, "open", "")
	aws.AuthorizeSecurityGroupIngress(v, "open", anyPfx())
	aws.AuthorizeSecurityGroupEgress(v, "open", anyPfx())
	aws.RunInstance(v, "i-1", "sn-1", "open")
	igw := aws.CreateInternetGateway()
	if err := aws.AttachInternetGateway(igw, v); err != nil {
		t.Fatal(err)
	}
	if err := aws.CreateRoute(v, "sn-1", "0.0.0.0/0", vnet.Target{Kind: vnet.TIGW, ID: igw}); err != nil {
		t.Fatal(err)
	}
	alloc := aws.AllocateAddress()
	if err := aws.AssociateAddress(alloc, v, "i-1"); err != nil {
		t.Fatal(err)
	}
	inst, _ := v.Instance("i-1")
	if inst.PublicIP == 0 {
		t.Fatal("no public IP after allocate+associate")
	}
	src, _ := parseCIDR("203.0.113.0/24")
	verdict := env.Fabric.Evaluate(gateway.Source{Kind: gateway.FromInternet},
		vnet.Packet{Src: src.Addr + 7, Dst: inst.PublicIP, Proto: vnet.TCP, DstPort: 443})
	if !verdict.Delivered {
		t.Fatalf("internet delivery failed: %v", verdict)
	}
}

func TestAWSTGWAndVPN(t *testing.T) {
	env := NewEnv()
	aws := NewAWS(env, "us-east-1")
	v, _ := aws.CreateVpc("vpc-a", "10.0.0.0/16", VpcOptions{})
	aws.CreateSubnet(v, "sn-1", "10.0.1.0/24", "a", false)
	site, err := env.Fabric.AddSite("hq", addr.MustParsePrefix("192.168.0.0/16"))
	if err != nil {
		t.Fatal(err)
	}
	_ = site
	tgw, err := aws.CreateTransitGateway(64512)
	if err != nil {
		t.Fatal(err)
	}
	attA, err := aws.CreateTransitGatewayAttachment(tgw, gateway.AttachVPC, "vpc-a")
	if err != nil {
		t.Fatal(err)
	}
	attS, err := aws.CreateTransitGatewayAttachment(tgw, gateway.AttachSite, "hq")
	if err != nil {
		t.Fatal(err)
	}
	if err := aws.EnableTransitGatewayRoutePropagation(tgw); err != nil {
		t.Fatal(err)
	}
	if tgw.RouteCount() != 2 {
		t.Fatalf("TGW routes = %d, want 2", tgw.RouteCount())
	}
	_ = attA
	_ = attS
	// VPN triple-call dance.
	vgwID := aws.CreateVpnGateway()
	aws.CreateCustomerGateway("hq")
	if _, err := aws.CreateVpnConnection(vgwID, v, "hq"); err != nil {
		t.Fatal(err)
	}
}

func TestAzureBuildAndReach(t *testing.T) {
	env := NewEnv()
	az := NewAzure(env, "eastus")
	v, err := az.CreateVirtualNetwork("vnet-a", []string{"10.0.0.0/16"})
	if err != nil {
		t.Fatal(err)
	}
	if err := az.AddSubnet(v, "default", "10.0.1.0/24"); err != nil {
		t.Fatal(err)
	}
	if err := az.CreateNetworkSecurityGroup("nsg-web"); err != nil {
		t.Fatal(err)
	}
	if err := az.AddSecurityRule("nsg-web", 100, "Inbound", vnet.Allow, vnet.TCP, 1, 65535, "0.0.0.0/0"); err != nil {
		t.Fatal(err)
	}
	if err := az.AddSecurityRule("nsg-web", 110, "Outbound", vnet.Allow, vnet.AnyProto, 1, 65535, "0.0.0.0/0"); err != nil {
		t.Fatal(err)
	}
	if err := az.AssociateNSGToSubnet(v, "nsg-web", "default"); err != nil {
		t.Fatal(err)
	}
	if err := az.CreateNSGBackedSecurityGroup(v, "nsg-web"); err != nil {
		t.Fatal(err)
	}
	nic1, err := az.CreateNetworkInterface(v, "default", []string{"nsg-web"}, "")
	if err != nil {
		t.Fatal(err)
	}
	i1, err := az.CreateVM("vm-1", nic1)
	if err != nil {
		t.Fatal(err)
	}
	nic2, _ := az.CreateNetworkInterface(v, "default", []string{"nsg-web"}, "")
	i2, err := az.CreateVM("vm-2", nic2)
	if err != nil {
		t.Fatal(err)
	}
	verdict := env.Fabric.Evaluate(
		gateway.Source{Kind: gateway.FromInstance, VPCID: "vnet-a", InstanceID: "vm-1"},
		vnet.Packet{Src: i1.PrivateIP, Dst: i2.PrivateIP, Proto: vnet.TCP, DstPort: 80})
	if !verdict.Delivered {
		t.Fatalf("Azure intra-VNet delivery failed: %v", verdict)
	}
	if _, err := az.CreateVM("vm-3", "nic-missing"); err == nil {
		t.Fatal("CreateVM with unknown NIC succeeded")
	}
}

func TestAzureNSGPriorityDeny(t *testing.T) {
	env := NewEnv()
	az := NewAzure(env, "eastus")
	v, _ := az.CreateVirtualNetwork("vnet-a", []string{"10.0.0.0/16"})
	az.AddSubnet(v, "default", "10.0.1.0/24")
	az.CreateNetworkSecurityGroup("nsg")
	// Deny SSH at priority 100, allow all at 200 — priority must win.
	az.AddSecurityRule("nsg", 100, "Inbound", vnet.Deny, vnet.TCP, 22, 22, "0.0.0.0/0")
	az.AddSecurityRule("nsg", 200, "Inbound", vnet.Allow, vnet.AnyProto, 1, 65535, "0.0.0.0/0")
	az.AddSecurityRule("nsg", 100, "Outbound", vnet.Allow, vnet.AnyProto, 1, 65535, "0.0.0.0/0")
	az.AssociateNSGToSubnet(v, "nsg", "default")
	az.CreateNSGBackedSecurityGroup(v, "nsg")
	nic, _ := az.CreateNetworkInterface(v, "default", []string{"nsg"}, "")
	vm1, _ := az.CreateVM("vm-1", nic)
	nic2, _ := az.CreateNetworkInterface(v, "default", []string{"nsg"}, "")
	vm2, _ := az.CreateVM("vm-2", nic2)

	ssh := env.Fabric.Evaluate(gateway.Source{Kind: gateway.FromInstance, VPCID: "vnet-a", InstanceID: "vm-1"},
		vnet.Packet{Src: vm1.PrivateIP, Dst: vm2.PrivateIP, Proto: vnet.TCP, DstPort: 22})
	if ssh.Delivered {
		t.Fatal("NSG deny-by-priority did not block SSH")
	}
	web := env.Fabric.Evaluate(gateway.Source{Kind: gateway.FromInstance, VPCID: "vnet-a", InstanceID: "vm-1"},
		vnet.Packet{Src: vm1.PrivateIP, Dst: vm2.PrivateIP, Proto: vnet.TCP, DstPort: 80})
	if !web.Delivered {
		t.Fatalf("NSG allow rule did not pass HTTP: %v", web)
	}
}

func TestGCPBuildAndTagFirewall(t *testing.T) {
	env := NewEnv()
	gcp := NewGCP(env, "proj-1")
	if _, err := gcp.CreateNetwork("net-a", "10.0.0.0/16", false); err != nil {
		t.Fatal(err)
	}
	if err := gcp.CreateSubnetwork("net-a", "sub-east", "us-east1", "10.0.1.0/24"); err != nil {
		t.Fatal(err)
	}
	all, _ := parseCIDR("0.0.0.0/0")
	if err := gcp.CreateFirewallRule("net-a", "allow-http", "web",
		vnet.SGRule{Proto: vnet.TCP, PortFrom: 80, PortTo: 80, Source: all}, true); err != nil {
		t.Fatal(err)
	}
	if err := gcp.CreateFirewallRule("net-a", "allow-egress", "web",
		vnet.SGRule{Source: all}, false); err != nil {
		t.Fatal(err)
	}
	i1, err := gcp.CreateInstance("net-a", "vm-1", "sub-east", "web")
	if err != nil {
		t.Fatal(err)
	}
	i2, err := gcp.CreateInstance("net-a", "vm-2", "sub-east", "web")
	if err != nil {
		t.Fatal(err)
	}
	// Tag-selected rule allows HTTP...
	ok := env.Fabric.Evaluate(gateway.Source{Kind: gateway.FromInstance, VPCID: "net-a", InstanceID: "vm-1"},
		vnet.Packet{Src: i1.PrivateIP, Dst: i2.PrivateIP, Proto: vnet.TCP, DstPort: 80})
	if !ok.Delivered {
		t.Fatalf("GCP tag firewall delivery failed: %v", ok)
	}
	// ...but not SSH.
	bad := env.Fabric.Evaluate(gateway.Source{Kind: gateway.FromInstance, VPCID: "net-a", InstanceID: "vm-1"},
		vnet.Packet{Src: i1.PrivateIP, Dst: i2.PrivateIP, Proto: vnet.TCP, DstPort: 22})
	if bad.Delivered {
		t.Fatal("GCP tag firewall passed SSH")
	}
	// Untagged instance gets deny-all.
	i3, _ := gcp.CreateInstance("net-a", "vm-3", "sub-east", "isolated")
	iso := env.Fabric.Evaluate(gateway.Source{Kind: gateway.FromInstance, VPCID: "net-a", InstanceID: "vm-1"},
		vnet.Packet{Src: i1.PrivateIP, Dst: i3.PrivateIP, Proto: vnet.TCP, DstPort: 80})
	if iso.Delivered {
		t.Fatal("instance with ruleless tag was reachable")
	}
}

func TestGCPPeeringNeedsBothSides(t *testing.T) {
	env := NewEnv()
	gcp := NewGCP(env, "proj-1")
	va, _ := gcp.CreateNetwork("net-a", "10.0.0.0/16", false)
	vb, _ := gcp.CreateNetwork("net-b", "10.1.0.0/16", false)
	gcp.CreateSubnetwork("net-a", "sub", "r", "10.0.1.0/24")
	gcp.CreateSubnetwork("net-b", "sub", "r", "10.1.1.0/24")
	all, _ := parseCIDR("0.0.0.0/0")
	for _, n := range []string{"net-a", "net-b"} {
		gcp.CreateFirewallRule(n, "allow", "any", vnet.SGRule{Source: all}, true)
		gcp.CreateFirewallRule(n, "allow-out", "any", vnet.SGRule{Source: all}, false)
	}
	ia, _ := gcp.CreateInstance("net-a", "vm-a", "sub", "any")
	ib, _ := gcp.CreateInstance("net-b", "vm-b", "sub", "any")
	if err := gcp.AddNetworkPeering("net-a", "net-b"); err != nil {
		t.Fatal(err)
	}
	// One-sided: no peering object yet, so no route possible. Route both
	// subnets at the peering and verify delivery only after both sides.
	if err := gcp.AddNetworkPeering("net-b", "net-a"); err != nil {
		t.Fatal(err)
	}
	p1, _ := parseCIDR("10.1.0.0/16")
	va.AddRoute("sub", p1, vnet.Target{Kind: vnet.TPeering, ID: "gpeer-net-b-net-a"})
	verdict := env.Fabric.Evaluate(gateway.Source{Kind: gateway.FromInstance, VPCID: "net-a", InstanceID: "vm-a"},
		vnet.Packet{Src: ia.PrivateIP, Dst: ib.PrivateIP, Proto: vnet.TCP, DstPort: 80})
	if !verdict.Delivered {
		t.Fatalf("GCP peering delivery failed: %v", verdict)
	}
	_ = vb
}

func TestConceptDivergenceAcrossClouds(t *testing.T) {
	// The same logical deployment on three clouds must surface three
	// disjoint provider vocabularies — the fragmentation measure.
	env := NewEnv()
	aws := NewAWS(env, "r1")
	az := NewAzure(env, "l1")
	gcp := NewGCP(env, "p1")
	va, _ := aws.CreateVpc("aws-vpc", "10.0.0.0/16", VpcOptions{})
	aws.CreateSubnet(va, "s", "10.0.1.0/24", "a", false)
	vz, _ := az.CreateVirtualNetwork("az-vnet", []string{"10.1.0.0/16"})
	az.AddSubnet(vz, "s", "10.1.1.0/24")
	vg, _ := gcp.CreateNetwork("gcp-net", "10.2.0.0/16", false)
	gcp.CreateSubnetwork("gcp-net", "s", "r", "10.2.1.0/24")
	_ = va
	_ = vz
	_ = vg

	var nAWS, nAzure, nGCP int
	for _, c := range env.Ledger.Concepts() {
		switch {
		case strings.HasPrefix(c, "aws:"):
			nAWS++
		case strings.HasPrefix(c, "azure:"):
			nAzure++
		case strings.HasPrefix(c, "gcp:"):
			nGCP++
		}
	}
	if nAWS == 0 || nAzure == 0 || nGCP == 0 {
		t.Fatalf("provider vocabularies missing: aws=%d azure=%d gcp=%d", nAWS, nAzure, nGCP)
	}
}
