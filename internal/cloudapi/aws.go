package cloudapi

import (
	"fmt"

	"declnet/internal/appliance"
	"declnet/internal/gateway"
	"declnet/internal/vnet"
)

// AWS is the aws-like facade: VPC-centric, two-call gateway attachment,
// stateful security groups authorized rule-by-rule, explicit route tables,
// and elastic IPs allocated then associated.
type AWS struct {
	env    *Env
	Region string
	seq    int
}

// NewAWS returns the facade for one region.
func NewAWS(env *Env, region string) *AWS { return &AWS{env: env, Region: region} }

func (a *AWS) id(kind string) string {
	a.seq++
	return fmt.Sprintf("%s-%s-%04d", kind, a.Region, a.seq)
}

// VpcOptions are the knobs CreateVpc demands up front (§2 step 1: "a
// particular choice leads to a separate path down the decision tree").
type VpcOptions struct {
	EnableDNSSupport   bool
	EnableDNSHostnames bool
	InstanceTenancy    string // "default" | "dedicated"
}

// CreateVpc provisions a VPC.
func (a *AWS) CreateVpc(name, cidrBlock string, opts VpcOptions) (*vnet.VPC, error) {
	p, err := parseCIDR(cidrBlock)
	if err != nil {
		return nil, err
	}
	v := vnet.NewVPC(name, p, a.env.Ledger)
	if err := a.env.Fabric.AddVPC(v); err != nil {
		return nil, err
	}
	a.env.Ledger.Param("aws:vpc", 3) // dns support, dns hostnames, tenancy
	a.env.Ledger.Decision()          // IPv4-vs-IPv6 / tenancy decision tree
	return v, nil
}

// CreateSubnet carves a subnet in an availability zone.
func (a *AWS) CreateSubnet(vpc *vnet.VPC, name, cidrBlock, az string, mapPublicIPOnLaunch bool) error {
	p, err := parseCIDR(cidrBlock)
	if err != nil {
		return err
	}
	if _, err := vpc.AddSubnet(name, p, mapPublicIPOnLaunch); err != nil {
		return err
	}
	a.env.Ledger.Param("aws:subnet", 2) // az, map-public-ip
	return nil
}

// CreateInternetGateway provisions a detached IGW; AttachInternetGateway
// must follow (two calls for one box, as in EC2).
func (a *AWS) CreateInternetGateway() string {
	id := a.id("igw")
	a.env.Ledger.Param("aws:internet-gateway", 1)
	return id
}

// AttachInternetGateway binds the IGW to a VPC.
func (a *AWS) AttachInternetGateway(igwID string, vpc *vnet.VPC) error {
	if _, err := a.env.Fabric.CreateIGW(igwID, vpc.ID); err != nil {
		return err
	}
	a.env.Ledger.Step()
	return nil
}

// CreateNatGateway provisions a NAT gateway (which implicitly consumes an
// elastic IP allocation, charged).
func (a *AWS) CreateNatGateway(vpc *vnet.VPC, subnetID string) (*gateway.NATGateway, error) {
	n, err := a.env.Fabric.CreateNAT(a.id("nat"), vpc.ID, subnetID)
	if err != nil {
		return nil, err
	}
	a.env.Ledger.Param("aws:nat-gateway", 2) // connectivity type, allocation id
	return n, nil
}

// CreateRoute installs one route into a subnet's table.
func (a *AWS) CreateRoute(vpc *vnet.VPC, subnetID, destCIDR string, target vnet.Target) error {
	p, err := parseCIDR(destCIDR)
	if err != nil {
		return err
	}
	if err := vpc.AddRoute(subnetID, p, target); err != nil {
		return err
	}
	a.env.Ledger.Param("aws:route", 2)
	return nil
}

// CreateSecurityGroup provisions an empty (deny-all) group;
// AuthorizeSecurityGroupIngress/Egress add rules one call each.
func (a *AWS) CreateSecurityGroup(vpc *vnet.VPC, name, description string) error {
	if err := vpc.AddSecurityGroup(&vnet.SecurityGroup{ID: name}); err != nil {
		return err
	}
	a.env.Ledger.Param("aws:security-group", 1) // description
	_ = description
	return nil
}

// AuthorizeSecurityGroupIngress appends one ingress rule.
func (a *AWS) AuthorizeSecurityGroupIngress(vpc *vnet.VPC, sgName string, rule vnet.SGRule) error {
	return a.authorize(vpc, sgName, rule, true)
}

// AuthorizeSecurityGroupEgress appends one egress rule.
func (a *AWS) AuthorizeSecurityGroupEgress(vpc *vnet.VPC, sgName string, rule vnet.SGRule) error {
	return a.authorize(vpc, sgName, rule, false)
}

func (a *AWS) authorize(vpc *vnet.VPC, sgName string, rule vnet.SGRule, ingress bool) error {
	sg := findSG(vpc, sgName)
	if sg == nil {
		return fmt.Errorf("cloudapi: unknown security group %q", sgName)
	}
	if ingress {
		sg.Ingress = append(sg.Ingress, rule)
	} else {
		sg.Egress = append(sg.Egress, rule)
	}
	a.env.Ledger.Step()
	a.env.Ledger.Param("aws:security-group", 4) // proto, ports, source, direction
	return nil
}

// RunInstance launches a VM in a subnet with security groups.
func (a *AWS) RunInstance(vpc *vnet.VPC, name, subnetID string, securityGroups ...string) (*vnet.Instance, error) {
	inst, err := vpc.LaunchInstance(name, subnetID, securityGroups...)
	if err != nil {
		return nil, err
	}
	a.env.Ledger.Param("aws:instance", 2) // ami-ish, type-ish (networking share)
	return inst, nil
}

// AllocateAddress + AssociateAddress give an instance a public IP in the
// EC2 two-step dance.
func (a *AWS) AllocateAddress() string {
	id := a.id("eipalloc")
	a.env.Ledger.Param("aws:elastic-ip", 1)
	return id
}

// AssociateAddress binds the allocation to an instance.
func (a *AWS) AssociateAddress(allocID string, vpc *vnet.VPC, instanceID string) error {
	if _, err := a.env.Fabric.AssignPublicIP(vpc.ID, instanceID); err != nil {
		return err
	}
	a.env.Ledger.Step()
	_ = allocID
	return nil
}

// CreateTransitGateway provisions a regional TGW.
func (a *AWS) CreateTransitGateway(asn int) (*gateway.TGW, error) {
	t, err := a.env.Fabric.CreateTGW(a.id("tgw"), a.Region)
	if err != nil {
		return nil, err
	}
	a.env.Ledger.Param("aws:transit-gateway", 4) // ASN, default assoc/prop, DNS
	_ = asn
	return t, nil
}

// CreateTransitGatewayAttachment attaches a VPC, site (VPN), or peer TGW.
func (a *AWS) CreateTransitGatewayAttachment(tgw *gateway.TGW, kind gateway.AttachmentKind, refID string) (string, error) {
	id := a.id("tgw-attach")
	if err := a.env.Fabric.AttachToTGW(tgw.ID, id, kind, refID); err != nil {
		return "", err
	}
	a.env.Ledger.Param("aws:tgw-attachment", 2)
	return id, nil
}

// CreateTransitGatewayRoute installs a static TGW route.
func (a *AWS) CreateTransitGatewayRoute(tgw *gateway.TGW, destCIDR, attachmentID string) error {
	p, err := parseCIDR(destCIDR)
	if err != nil {
		return err
	}
	if err := a.env.Fabric.TGWRoute(tgw.ID, p, attachmentID); err != nil {
		return err
	}
	a.env.Ledger.Param("aws:tgw-route", 2)
	return nil
}

// EnableTransitGatewayRoutePropagation turns on propagation from
// attachments.
func (a *AWS) EnableTransitGatewayRoutePropagation(tgw *gateway.TGW) error {
	if err := a.env.Fabric.PropagateTGWRoutes(tgw.ID); err != nil {
		return err
	}
	a.env.Ledger.Step()
	return nil
}

// CreateVpnGateway/CreateCustomerGateway/CreateVpnConnection: three calls
// for one tunnel, as in EC2. The facade exposes the triple as separate
// steps so the step count is honest.
func (a *AWS) CreateVpnGateway() string {
	a.env.Ledger.Param("aws:vpn-gateway", 1) // ASN
	return a.id("vgw")
}

// CreateCustomerGateway registers the on-prem end.
func (a *AWS) CreateCustomerGateway(siteID string) string {
	a.env.Ledger.Param("aws:customer-gateway", 2) // IP, ASN
	_ = siteID
	return a.id("cgw")
}

// CreateVpnConnection ties VGW and CGW together and actually builds the
// fabric object.
func (a *AWS) CreateVpnConnection(vgwID string, vpc *vnet.VPC, siteID string) (*gateway.VGW, error) {
	g, err := a.env.Fabric.CreateVGW(vgwID, vpc.ID, siteID)
	if err != nil {
		return nil, err
	}
	a.env.Ledger.Param("aws:vpn-connection", 4) // static/dynamic, tunnel opts, PSKs
	return g, nil
}

// CreateVpcPeeringConnection requests a peering; AcceptVpcPeeringConnection
// completes it (two calls, two tenants' worth of coordination).
func (a *AWS) CreateVpcPeeringConnection(requester, accepter *vnet.VPC) (string, error) {
	id := a.id("pcx")
	if _, err := a.env.Fabric.CreatePeering(id, requester.ID, accepter.ID); err != nil {
		return "", err
	}
	a.env.Ledger.Param("aws:vpc-peering", 2)
	return id, nil
}

// AcceptVpcPeeringConnection is the accepter-side step.
func (a *AWS) AcceptVpcPeeringConnection(pcxID string) {
	a.env.Ledger.Step()
	_ = pcxID
}

// CreateLoadBalancer provisions one of the four products; the choice is a
// charged decision (the paper's five-level decision tree, §3(2)).
func (a *AWS) CreateLoadBalancer(typ appliance.LBType) *appliance.LoadBalancer {
	lb := appliance.NewLoadBalancer(a.id("lb"), typ, a.env.Ledger)
	a.env.Ledger.Param("aws:load-balancer", 2) // scheme, subnets
	return lb
}

// CreateNetworkFirewall provisions a firewall appliance and steers the
// VPC's ingress through it.
func (a *AWS) CreateNetworkFirewall(vpc *vnet.VPC) (*appliance.Firewall, error) {
	fw := appliance.NewFirewall(a.id("anfw"), a.env.Ledger)
	if err := a.env.Fabric.AttachInspector(vpc.ID, fw); err != nil {
		return nil, err
	}
	a.env.Ledger.Param("aws:network-firewall", 3) // policy, subnets, logging
	return fw, nil
}

// findSG locates a security group by scanning instances' VPC: vnet does
// not export its map, so the facades go through a narrow helper.
func findSG(vpc *vnet.VPC, name string) *vnet.SecurityGroup {
	return vpc.SecurityGroup(name)
}
