package cloudapi

import (
	"fmt"

	"declnet/internal/appliance"
	"declnet/internal/gateway"
	"declnet/internal/vnet"
)

// Azure is the azure-like facade. Its shapes differ from AWS on purpose:
// virtual networks take a *list* of address spaces, security rules live in
// priority-ordered NSGs associated to subnets, public IPs are standalone
// resources wired through NICs, and VPN needs a virtual network gateway
// plus a local network gateway plus a connection object.
type Azure struct {
	env      *Env
	Location string
	seq      int
	// nsgs staged before association, keyed by name.
	nsgs map[string]*stagedNSG
	// stagedNICs holds NICs created but not yet bound to a VM.
	stagedNICs []stagedNIC
	// peerings tracks half-open peering directions (Azure needs one call
	// per side).
	peerings map[string]bool
}

type stagedNSG struct {
	rules []azureRule
}

type azureRule struct {
	priority  int
	direction string // "Inbound" | "Outbound"
	access    vnet.Action
	proto     vnet.Protocol
	portRange [2]int
	prefix    string
}

// NewAzure returns the facade for one location.
func NewAzure(env *Env, location string) *Azure {
	return &Azure{env: env, Location: location, nsgs: make(map[string]*stagedNSG)}
}

func (z *Azure) id(kind string) string {
	z.seq++
	return fmt.Sprintf("%s-%s-%04d", kind, z.Location, z.seq)
}

// CreateVirtualNetwork provisions a VNet. Azure takes multiple address
// spaces; the simulation uses the first and charges for all of them.
func (z *Azure) CreateVirtualNetwork(name string, addressSpaces []string) (*vnet.VPC, error) {
	if len(addressSpaces) == 0 {
		return nil, fmt.Errorf("cloudapi: virtual network needs at least one address space")
	}
	p, err := parseCIDR(addressSpaces[0])
	if err != nil {
		return nil, err
	}
	v := vnet.NewVPC(name, p, z.env.Ledger)
	if err := z.env.Fabric.AddVPC(v); err != nil {
		return nil, err
	}
	z.env.Ledger.Param("azure:virtual-network", 1+len(addressSpaces)) // location + spaces
	z.env.Ledger.Decision()
	return v, nil
}

// AddSubnet carves a subnet (no AZ concept at the subnet level — a real
// divergence from AWS that trips up multi-cloud tooling).
func (z *Azure) AddSubnet(v *vnet.VPC, name, addressPrefix string) error {
	p, err := parseCIDR(addressPrefix)
	if err != nil {
		return err
	}
	if _, err := v.AddSubnet(name, p, false); err != nil {
		return err
	}
	z.env.Ledger.Param("azure:subnet", 1)
	return nil
}

// CreateNetworkSecurityGroup stages an empty NSG.
func (z *Azure) CreateNetworkSecurityGroup(name string) error {
	if _, ok := z.nsgs[name]; ok {
		return fmt.Errorf("cloudapi: duplicate NSG %q", name)
	}
	z.nsgs[name] = &stagedNSG{}
	z.env.Ledger.Resource("azure:network-security-group")
	z.env.Ledger.Param("azure:network-security-group", 1)
	return nil
}

// AddSecurityRule appends a priority-ordered rule to a staged NSG.
// portRange uses [from,to]; direction is "Inbound" or "Outbound".
func (z *Azure) AddSecurityRule(nsgName string, priority int, direction string, access vnet.Action, proto vnet.Protocol, portFrom, portTo int, addressPrefix string) error {
	nsg, ok := z.nsgs[nsgName]
	if !ok {
		return fmt.Errorf("cloudapi: unknown NSG %q", nsgName)
	}
	nsg.rules = append(nsg.rules, azureRule{
		priority: priority, direction: direction, access: access,
		proto: proto, portRange: [2]int{portFrom, portTo}, prefix: addressPrefix,
	})
	z.env.Ledger.Step()
	z.env.Ledger.Param("azure:security-rule", 6) // priority, direction, access, proto, ports, prefix
	return nil
}

// AssociateNSGToSubnet compiles the staged NSG into the subnet's NACL
// (Azure NSGs-on-subnets behave like stateless-ish ordered filters; the
// simulation maps them to the NACL slot) and into a matching stateful
// group for NIC-level semantics.
func (z *Azure) AssociateNSGToSubnet(v *vnet.VPC, nsgName, subnetName string) error {
	nsg, ok := z.nsgs[nsgName]
	if !ok {
		return fmt.Errorf("cloudapi: unknown NSG %q", nsgName)
	}
	acl := &vnet.NACL{ID: nsgName}
	for _, r := range nsg.rules {
		p, err := parseCIDR(r.prefix)
		if err != nil {
			return err
		}
		rule := vnet.NACLRule{Num: r.priority, Action: r.access, Proto: r.proto,
			PortFrom: r.portRange[0], PortTo: r.portRange[1], CIDR: p}
		if r.direction == "Inbound" {
			acl.Ingress = append(acl.Ingress, rule)
		} else {
			acl.Egress = append(acl.Egress, rule)
		}
	}
	if err := v.SetNACL(subnetName, acl); err != nil {
		return err
	}
	z.env.Ledger.Step()
	return nil
}

// CreateNSGBackedSecurityGroup compiles a staged NSG into an instance-level
// stateful group (NIC association flavor).
func (z *Azure) CreateNSGBackedSecurityGroup(v *vnet.VPC, nsgName string) error {
	nsg, ok := z.nsgs[nsgName]
	if !ok {
		return fmt.Errorf("cloudapi: unknown NSG %q", nsgName)
	}
	sg := &vnet.SecurityGroup{ID: nsgName}
	for _, r := range nsg.rules {
		if r.access != vnet.Allow {
			continue // stateful layer keeps only allows; denies live in the NACL mapping
		}
		p, err := parseCIDR(r.prefix)
		if err != nil {
			return err
		}
		rule := vnet.SGRule{Proto: r.proto, PortFrom: r.portRange[0], PortTo: r.portRange[1], Source: p}
		if r.direction == "Inbound" {
			sg.Ingress = append(sg.Ingress, rule)
		} else {
			sg.Egress = append(sg.Egress, rule)
		}
	}
	if err := v.AddSecurityGroup(sg); err != nil {
		return err
	}
	z.env.Ledger.Step()
	return nil
}

// UpdateNSGBackedSecurityGroup recompiles a staged NSG's current rules
// into the already-registered stateful group (Azure rule edits apply in
// place; the facade mirrors that).
func (z *Azure) UpdateNSGBackedSecurityGroup(v *vnet.VPC, nsgName string) error {
	nsg, ok := z.nsgs[nsgName]
	if !ok {
		return fmt.Errorf("cloudapi: unknown NSG %q", nsgName)
	}
	sg := v.SecurityGroup(nsgName)
	if sg == nil {
		return fmt.Errorf("cloudapi: NSG %q not yet compiled into %q", nsgName, v.ID)
	}
	sg.Ingress, sg.Egress = nil, nil
	for _, r := range nsg.rules {
		if r.access != vnet.Allow {
			continue
		}
		p, err := parseCIDR(r.prefix)
		if err != nil {
			return err
		}
		rule := vnet.SGRule{Proto: r.proto, PortFrom: r.portRange[0], PortTo: r.portRange[1], Source: p}
		if r.direction == "Inbound" {
			sg.Ingress = append(sg.Ingress, rule)
		} else {
			sg.Egress = append(sg.Egress, rule)
		}
	}
	z.env.Ledger.Step()
	return nil
}

// CreatePublicIPAddress provisions a standalone public IP resource.
func (z *Azure) CreatePublicIPAddress(sku string) string {
	id := z.id("pip")
	z.env.Ledger.Resource("azure:public-ip")
	z.env.Ledger.Param("azure:public-ip", 2) // sku, allocation method
	_ = sku
	return id
}

// CreateNetworkInterface wires subnet + NSG + optional public IP; the VM
// comes separately. Returns the NIC id to pass to CreateVM.
func (z *Azure) CreateNetworkInterface(v *vnet.VPC, subnetName string, nsgGroups []string, publicIPID string) (string, error) {
	id := z.id("nic")
	z.env.Ledger.Resource("azure:network-interface")
	z.env.Ledger.Param("azure:network-interface", 3) // subnet, nsg, ip-config
	// The NIC is realized at CreateVM time; stash intent in the ID.
	z.stagedNICs = append(z.stagedNICs, stagedNIC{id: id, vpc: v, subnet: subnetName, groups: nsgGroups, pip: publicIPID})
	return id, nil
}

type stagedNIC struct {
	id     string
	vpc    *vnet.VPC
	subnet string
	groups []string
	pip    string
}

// CreateVM launches a VM bound to a previously created NIC.
func (z *Azure) CreateVM(name, nicID string) (*vnet.Instance, error) {
	for i, nic := range z.stagedNICs {
		if nic.id != nicID {
			continue
		}
		inst, err := nic.vpc.LaunchInstance(name, nic.subnet, nic.groups...)
		if err != nil {
			return nil, err
		}
		if nic.pip != "" {
			if _, err := z.env.Fabric.AssignPublicIP(nic.vpc.ID, name); err != nil {
				return nil, err
			}
		}
		z.stagedNICs = append(z.stagedNICs[:i], z.stagedNICs[i+1:]...)
		z.env.Ledger.Param("azure:virtual-machine", 1)
		return inst, nil
	}
	return nil, fmt.Errorf("cloudapi: unknown NIC %q", nicID)
}

// CreateRouteTable + AddUserRoute + AssociateRouteTable mirror Azure UDRs.
func (z *Azure) CreateRouteTable(name string) string {
	z.env.Ledger.Resource("azure:route-table")
	z.env.Ledger.Param("azure:route-table", 1)
	return name
}

// AddUserRoute appends a user-defined route to the staged table and
// immediately applies it to the subnet it will be associated with; Azure
// separates these, so the facade charges two steps across the pair.
func (z *Azure) AddUserRoute(v *vnet.VPC, subnetName, prefix string, target vnet.Target) error {
	p, err := parseCIDR(prefix)
	if err != nil {
		return err
	}
	if err := v.AddRoute(subnetName, p, target); err != nil {
		return err
	}
	z.env.Ledger.Param("azure:route", 3) // name, prefix, next hop type
	return nil
}

// CreateVirtualNetworkGateway provisions the VNet end of a VPN (slow,
// expensive box in real Azure; here it charges accordingly).
func (z *Azure) CreateVirtualNetworkGateway() string {
	z.env.Ledger.Resource("azure:virtual-network-gateway")
	z.env.Ledger.Param("azure:virtual-network-gateway", 4) // sku, vpn type, generation, subnet
	return z.id("vnetgw")
}

// CreateLocalNetworkGateway registers the on-prem end.
func (z *Azure) CreateLocalNetworkGateway(siteID string) string {
	z.env.Ledger.Resource("azure:local-network-gateway")
	z.env.Ledger.Param("azure:local-network-gateway", 2) // address, prefixes
	_ = siteID
	return z.id("localgw")
}

// CreateConnection ties the two gateways into a working tunnel.
func (z *Azure) CreateConnection(vnetGwID string, v *vnet.VPC, siteID string) (*gateway.VGW, error) {
	g, err := z.env.Fabric.CreateVGW(vnetGwID, v.ID, siteID)
	if err != nil {
		return nil, err
	}
	z.env.Ledger.Param("azure:connection", 3) // type, PSK, protocol
	return g, nil
}

// CreateVnetPeering peers two VNets; Azure requires one call per
// direction, so callers invoke this twice (charged each time). The fabric
// object is created on the first call.
func (z *Azure) CreateVnetPeering(from, to *vnet.VPC, allowForwardedTraffic bool) (string, error) {
	id := "peer-" + from.ID + "-" + to.ID
	rev := "peer-" + to.ID + "-" + from.ID
	z.env.Ledger.Param("azure:vnet-peering", 3) // forwarded, gateway transit, access
	if _, ok := z.peerings[rev]; ok {
		z.env.Ledger.Step()
		return rev, nil // second direction completes the existing peering
	}
	if z.peerings == nil {
		z.peerings = make(map[string]bool)
	}
	if _, err := z.env.Fabric.CreatePeering(id, from.ID, to.ID); err != nil {
		return "", err
	}
	z.peerings[id] = true
	_ = allowForwardedTraffic
	return id, nil
}

// peerings tracks half-open peering directions.
var _ = (*Azure)(nil)

// CreateVirtualWANHub provisions a regional hub — the Azure-side analog
// of a transit gateway, with its own vocabulary and knobs.
func (z *Azure) CreateVirtualWANHub(region string) (*gateway.TGW, error) {
	t, err := z.env.Fabric.CreateTGW(z.id("vhub"), region)
	if err != nil {
		return nil, err
	}
	z.env.Ledger.Param("azure:virtual-wan-hub", 3) // address prefix, sku, routing intent
	return t, nil
}

// ConnectVNetToHub attaches a VNet to a hub and propagates its prefix.
func (z *Azure) ConnectVNetToHub(hub *gateway.TGW, v *vnet.VPC) (string, error) {
	id := z.id("hubconn")
	if err := z.env.Fabric.AttachToTGW(hub.ID, id, gateway.AttachVPC, v.ID); err != nil {
		return "", err
	}
	if err := z.env.Fabric.PropagateTGWRoutes(hub.ID); err != nil {
		return "", err
	}
	z.env.Ledger.Param("azure:hub-connection", 2)
	return id, nil
}

// ConnectSiteToHub attaches an on-prem site to a hub over VPN.
func (z *Azure) ConnectSiteToHub(hub *gateway.TGW, siteID string) (string, error) {
	id := z.id("siteconn")
	if err := z.env.Fabric.AttachToTGW(hub.ID, id, gateway.AttachSite, siteID); err != nil {
		return "", err
	}
	if err := z.env.Fabric.PropagateTGWRoutes(hub.ID); err != nil {
		return "", err
	}
	z.env.Ledger.Param("azure:vpn-site", 3)
	return id, nil
}

// HubRoute installs a static route on a hub (needed across hub/TGW
// peerings, which never propagate).
func (z *Azure) HubRoute(hub *gateway.TGW, destCIDR, connectionID string) error {
	p, err := parseCIDR(destCIDR)
	if err != nil {
		return err
	}
	if err := z.env.Fabric.TGWRoute(hub.ID, p, connectionID); err != nil {
		return err
	}
	z.env.Ledger.Param("azure:hub-route", 2)
	return nil
}

// PeerHubs connects a hub to a remote TGW/hub (cross-cloud transit).
func (z *Azure) PeerHubs(hub *gateway.TGW, remote *gateway.TGW) (string, error) {
	id := z.id("hubpeer")
	if err := z.env.Fabric.AttachToTGW(hub.ID, id, gateway.AttachPeer, remote.ID); err != nil {
		return "", err
	}
	z.env.Ledger.Param("azure:hub-peering", 2)
	return id, nil
}

// CreateLoadBalancer provisions an Azure LB/AppGW-equivalent product.
func (z *Azure) CreateLoadBalancer(typ appliance.LBType, sku string) *appliance.LoadBalancer {
	lb := appliance.NewLoadBalancer(z.id("lb"), typ, z.env.Ledger)
	z.env.Ledger.Param("azure:load-balancer", 3) // sku, frontend config, backend pool
	_ = sku
	return lb
}

// CreateAzureFirewall provisions a firewall and steers a VNet through it.
func (z *Azure) CreateAzureFirewall(v *vnet.VPC) (*appliance.Firewall, error) {
	fw := appliance.NewFirewall(z.id("azfw"), z.env.Ledger)
	if err := z.env.Fabric.AttachInspector(v.ID, fw); err != nil {
		return nil, err
	}
	z.env.Ledger.Param("azure:firewall", 3) // policy, subnet, public ip
	return fw, nil
}
