// Package cloudapi provides per-provider SDK facades over the shared
// baseline machinery (vnet, gateway, appliance). The facades are
// deliberately *divergent* — different operation names, different
// parameter shapes, different defaults, different numbers of calls for the
// same outcome — because that fragmentation is precisely the tenant
// experience §2–§3 of the paper describes ("each cloud exposes slightly
// different versions of these low-level abstractions, provisioned and
// configured uniquely").
//
// All three facades build into one shared gateway.Fabric so a multi-cloud
// deployment remains end-to-end evaluable, while each facade charges the
// tenant's complexity ledger using its own provider-prefixed concept
// vocabulary. The ledger's distinct-concept count is therefore a direct
// measure of cross-cloud fragmentation.
package cloudapi

import (
	"fmt"

	"declnet/internal/addr"
	"declnet/internal/complexity"
	"declnet/internal/gateway"
)

// Env is the shared environment the facades build into: one fabric (the
// tenant's whole deployment) and one tenant-visible complexity ledger.
type Env struct {
	Fabric *gateway.Fabric
	Ledger *complexity.Ledger
}

// NewEnv returns a fresh environment.
func NewEnv() *Env {
	var led complexity.Ledger
	return &Env{Fabric: gateway.NewFabric(&led), Ledger: &led}
}

// parseCIDR is a helper shared by the facades.
func parseCIDR(s string) (addr.Prefix, error) {
	p, err := addr.ParsePrefix(s)
	if err != nil {
		return addr.Prefix{}, fmt.Errorf("cloudapi: %w", err)
	}
	return p, nil
}
