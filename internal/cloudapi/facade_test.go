package cloudapi

import (
	"strings"
	"testing"

	"declnet/internal/addr"
	"declnet/internal/appliance"
	"declnet/internal/gateway"
	"declnet/internal/vnet"
)

func TestAzurePublicIPAndInternetPath(t *testing.T) {
	env := NewEnv()
	az := NewAzure(env, "eastus")
	v, _ := az.CreateVirtualNetwork("vnet", []string{"10.0.0.0/16"})
	az.AddSubnet(v, "default", "10.0.1.0/24")
	az.CreateNetworkSecurityGroup("nsg")
	az.AddSecurityRule("nsg", 100, "Inbound", vnet.Allow, vnet.TCP, 443, 443, "0.0.0.0/0")
	az.AddSecurityRule("nsg", 110, "Outbound", vnet.Allow, vnet.AnyProto, 1, 65535, "0.0.0.0/0")
	az.AssociateNSGToSubnet(v, "nsg", "default")
	az.CreateNSGBackedSecurityGroup(v, "nsg")
	pip := az.CreatePublicIPAddress("standard")
	if pip == "" {
		t.Fatal("empty public IP resource id")
	}
	nic, err := az.CreateNetworkInterface(v, "default", []string{"nsg"}, pip)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := az.CreateVM("vm-1", nic)
	if err != nil {
		t.Fatal(err)
	}
	if vm.PublicIP == 0 {
		t.Fatal("VM with public IP config got none")
	}
	// Inbound from the internet needs an IGW + public route — Azure's
	// default outbound model is approximated with an explicit gateway.
	if _, err := env.Fabric.CreateIGW("igw-az", v.ID); err != nil {
		t.Fatal(err)
	}
	rt := az.CreateRouteTable("udr")
	if rt == "" {
		t.Fatal("empty route table id")
	}
	if err := az.AddUserRoute(v, "default", "0.0.0.0/0", vnet.Target{Kind: vnet.TIGW, ID: "igw-az"}); err != nil {
		t.Fatal(err)
	}
	verdict := env.Fabric.Evaluate(gateway.Source{Kind: gateway.FromInternet},
		vnet.Packet{Src: addr.MustParseIP("203.0.113.5"), Dst: vm.PublicIP, Proto: vnet.TCP, DstPort: 443})
	if !verdict.Delivered {
		t.Fatalf("internet -> Azure VM failed: %v", verdict)
	}
}

func TestAzureVPNTriple(t *testing.T) {
	env := NewEnv()
	az := NewAzure(env, "eastus")
	v, _ := az.CreateVirtualNetwork("vnet", []string{"10.0.0.0/16"})
	az.AddSubnet(v, "default", "10.0.1.0/24")
	if _, err := env.Fabric.AddSite("hq", addr.MustParsePrefix("192.168.0.0/16")); err != nil {
		t.Fatal(err)
	}
	gwID := az.CreateVirtualNetworkGateway()
	lgw := az.CreateLocalNetworkGateway("hq")
	if gwID == "" || lgw == "" {
		t.Fatal("gateway ids empty")
	}
	vg, err := az.CreateConnection(gwID, v, "hq")
	if err != nil {
		t.Fatal(err)
	}
	if vg.SiteID != "hq" {
		t.Fatalf("connection site = %q", vg.SiteID)
	}
	// Provider vocabulary recorded.
	found := false
	for _, c := range env.Ledger.Concepts() {
		if c == "azure:virtual-network-gateway" {
			found = true
		}
	}
	if !found {
		t.Fatal("VPN concepts not recorded")
	}
}

func TestAzureVnetPeeringBothDirections(t *testing.T) {
	env := NewEnv()
	az := NewAzure(env, "eastus")
	va, _ := az.CreateVirtualNetwork("vnet-a", []string{"10.0.0.0/16"})
	vb, _ := az.CreateVirtualNetwork("vnet-b", []string{"10.1.0.0/16"})
	id1, err := az.CreateVnetPeering(va, vb, true)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := az.CreateVnetPeering(vb, va, true)
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatalf("second direction returned %q, want completion of %q", id2, id1)
	}
}

func TestAzureLBAndFirewall(t *testing.T) {
	env := NewEnv()
	az := NewAzure(env, "eastus")
	v, _ := az.CreateVirtualNetwork("vnet", []string{"10.0.0.0/16"})
	lb := az.CreateLoadBalancer(appliance.NetworkLB, "standard")
	if lb == nil {
		t.Fatal("nil LB")
	}
	fw, err := az.CreateAzureFirewall(v)
	if err != nil {
		t.Fatal(err)
	}
	if fw.Name() == "" {
		t.Fatal("unnamed firewall")
	}
	if env.Ledger.BoxesOf("load-balancer-network") != 1 || env.Ledger.BoxesOf("firewall") != 1 {
		t.Fatalf("boxes not charged: %s", env.Ledger)
	}
}

func TestAzureHubErrorsAndRoutes(t *testing.T) {
	env := NewEnv()
	az := NewAzure(env, "eastus")
	v, _ := az.CreateVirtualNetwork("vnet", []string{"10.0.0.0/16"})
	az.AddSubnet(v, "s", "10.0.1.0/24")
	hub, err := az.CreateVirtualWANHub("eastus")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := az.ConnectVNetToHub(hub, v)
	if err != nil {
		t.Fatal(err)
	}
	if err := az.HubRoute(hub, "192.168.0.0/16", conn); err != nil {
		t.Fatal(err)
	}
	if err := az.HubRoute(hub, "not-a-cidr", conn); err == nil {
		t.Fatal("bad CIDR accepted")
	}
	if _, err := env.Fabric.AddSite("hq", addr.MustParsePrefix("192.168.0.0/16")); err != nil {
		t.Fatal(err)
	}
	if _, err := az.ConnectSiteToHub(hub, "hq"); err != nil {
		t.Fatal(err)
	}
	hub2, _ := az.CreateVirtualWANHub("westus")
	if _, err := az.PeerHubs(hub, hub2); err != nil {
		t.Fatal(err)
	}
}

func TestAzureValidationErrors(t *testing.T) {
	env := NewEnv()
	az := NewAzure(env, "eastus")
	if _, err := az.CreateVirtualNetwork("v", nil); err == nil {
		t.Fatal("empty address spaces accepted")
	}
	if _, err := az.CreateVirtualNetwork("v", []string{"zzz"}); err == nil {
		t.Fatal("bad address space accepted")
	}
	v, _ := az.CreateVirtualNetwork("vnet", []string{"10.0.0.0/16"})
	if err := az.AddSubnet(v, "s", "zzz"); err == nil {
		t.Fatal("bad subnet accepted")
	}
	if err := az.AddSecurityRule("ghost", 1, "Inbound", vnet.Allow, vnet.TCP, 1, 2, "0.0.0.0/0"); err == nil {
		t.Fatal("rule on unknown NSG accepted")
	}
	if err := az.AssociateNSGToSubnet(v, "ghost", "s"); err == nil {
		t.Fatal("association of unknown NSG accepted")
	}
	if err := az.CreateNSGBackedSecurityGroup(v, "ghost"); err == nil {
		t.Fatal("compile of unknown NSG accepted")
	}
	if err := az.UpdateNSGBackedSecurityGroup(v, "ghost"); err == nil {
		t.Fatal("update of unknown NSG accepted")
	}
	az.CreateNetworkSecurityGroup("nsg")
	if err := az.CreateNetworkSecurityGroup("nsg"); err == nil {
		t.Fatal("duplicate NSG accepted")
	}
	if err := az.UpdateNSGBackedSecurityGroup(v, "nsg"); err == nil {
		t.Fatal("update before compile accepted")
	}
}

func TestGCPVPNAndRoutes(t *testing.T) {
	env := NewEnv()
	gcp := NewGCP(env, "proj")
	v, _ := gcp.CreateNetwork("net", "10.0.0.0/16", false)
	gcp.CreateSubnetwork("net", "sub", "r", "10.0.1.0/24")
	if _, err := env.Fabric.AddSite("hq", addr.MustParsePrefix("192.168.0.0/16")); err != nil {
		t.Fatal(err)
	}
	vg, err := gcp.CreateCloudRouterVPN("net", "hq")
	if err != nil {
		t.Fatal(err)
	}
	if err := gcp.CreateRoute("net", "sub", "192.168.0.0/16", vnet.Target{Kind: vnet.TVGW, ID: vg.ID}); err != nil {
		t.Fatal(err)
	}
	all := addr.MustParsePrefix("0.0.0.0/0")
	gcp.CreateFirewallRule("net", "out", "any", vnet.SGRule{Source: all}, false)
	gcp.CreateFirewallRule("net", "in", "any", vnet.SGRule{Source: all}, true)
	inst, _ := gcp.CreateInstance("net", "vm", "sub", "any")
	verdict := env.Fabric.Evaluate(
		gateway.Source{Kind: gateway.FromInstance, VPCID: v.ID, InstanceID: "vm"},
		vnet.Packet{Src: inst.PrivateIP, Dst: addr.MustParseIP("192.168.1.1"), Proto: vnet.TCP, DstPort: 22})
	if !verdict.Delivered {
		t.Fatalf("GCP -> site over cloud router VPN failed: %v", verdict)
	}
}

func TestGCPAccessConfigAndDefaultIGW(t *testing.T) {
	env := NewEnv()
	gcp := NewGCP(env, "proj")
	_, err := gcp.CreateNetwork("net", "10.0.0.0/16", true)
	if err != nil {
		t.Fatal(err)
	}
	gcp.CreateSubnetwork("net", "sub", "r", "10.0.1.0/24")
	all := addr.MustParsePrefix("0.0.0.0/0")
	gcp.CreateFirewallRule("net", "in", "web", vnet.SGRule{Proto: vnet.TCP, PortFrom: 443, PortTo: 443, Source: all}, true)
	gcp.CreateFirewallRule("net", "out", "web", vnet.SGRule{Source: all}, false)
	inst, _ := gcp.CreateInstance("net", "vm", "sub", "web")
	if err := gcp.AddDefaultInternetGateway("net"); err != nil {
		t.Fatal(err)
	}
	if err := gcp.AddAccessConfig("net", "vm"); err != nil {
		t.Fatal(err)
	}
	if inst.PublicIP == 0 {
		t.Fatal("access config granted no external IP")
	}
	verdict := env.Fabric.Evaluate(gateway.Source{Kind: gateway.FromInternet},
		vnet.Packet{Src: addr.MustParseIP("203.0.113.9"), Dst: inst.PublicIP, Proto: vnet.TCP, DstPort: 443})
	if !verdict.Delivered {
		t.Fatalf("internet -> GCP instance failed: %v", verdict)
	}
	lb := gcp.CreateLoadBalancer(appliance.ApplicationLB)
	if lb == nil {
		t.Fatal("nil GCP LB")
	}
}

func TestGCPValidationErrors(t *testing.T) {
	env := NewEnv()
	gcp := NewGCP(env, "proj")
	if _, err := gcp.CreateNetwork("net", "zzz", false); err == nil {
		t.Fatal("bad range accepted")
	}
	if err := gcp.CreateSubnetwork("ghost", "s", "r", "10.0.0.0/24"); err == nil {
		t.Fatal("subnet on unknown network accepted")
	}
	if err := gcp.CreateFirewallRule("ghost", "n", "t", vnet.SGRule{}, true); err == nil {
		t.Fatal("rule on unknown network accepted")
	}
	if _, err := gcp.CreateInstance("ghost", "vm", "s"); err == nil {
		t.Fatal("instance on unknown network accepted")
	}
	if err := gcp.AddAccessConfig("ghost", "vm"); err == nil {
		t.Fatal("access config on unknown network accepted")
	}
	if err := gcp.AddDefaultInternetGateway("ghost"); err == nil {
		t.Fatal("default IGW on unknown network accepted")
	}
	if err := gcp.AddNetworkPeering("ghost", "also-ghost"); err == nil {
		t.Fatal("peering of unknown networks accepted")
	}
	if err := gcp.CreateRoute("ghost", "s", "10.0.0.0/8", vnet.Target{}); err == nil {
		t.Fatal("route on unknown network accepted")
	}
	if _, err := gcp.CreateCloudRouterVPN("ghost", "hq"); err == nil {
		t.Fatal("VPN on unknown network accepted")
	}
}

func TestAWSLoadBalancerAndFirewall(t *testing.T) {
	env := NewEnv()
	aws := NewAWS(env, "us-east-1")
	v, _ := aws.CreateVpc("vpc", "10.0.0.0/16", VpcOptions{})
	lb := aws.CreateLoadBalancer(appliance.ClassicLB)
	if lb == nil {
		t.Fatal("nil classic LB")
	}
	fw, err := aws.CreateNetworkFirewall(v)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(fw.Name(), "anfw") {
		t.Fatalf("firewall name = %q", fw.Name())
	}
	if env.Ledger.BoxesOf("load-balancer-classic") != 1 {
		t.Fatal("classic LB not charged")
	}
}

func TestAWSValidationErrors(t *testing.T) {
	env := NewEnv()
	aws := NewAWS(env, "r")
	if _, err := aws.CreateVpc("v", "bad", VpcOptions{}); err == nil {
		t.Fatal("bad CIDR accepted")
	}
	v, _ := aws.CreateVpc("v", "10.0.0.0/16", VpcOptions{})
	if err := aws.CreateSubnet(v, "s", "bad", "az", false); err == nil {
		t.Fatal("bad subnet CIDR accepted")
	}
	aws.CreateSubnet(v, "s", "10.0.1.0/24", "az", false)
	if err := aws.CreateRoute(v, "s", "bad", vnet.Target{}); err == nil {
		t.Fatal("bad route CIDR accepted")
	}
	if err := aws.AuthorizeSecurityGroupIngress(v, "ghost", vnet.SGRule{}); err == nil {
		t.Fatal("rule on unknown SG accepted")
	}
	if err := aws.AssociateAddress("alloc", v, "ghost"); err == nil {
		t.Fatal("associate to unknown instance accepted")
	}
	tgw, _ := aws.CreateTransitGateway(64512)
	if err := aws.CreateTransitGatewayRoute(tgw, "bad", "att"); err == nil {
		t.Fatal("bad TGW route CIDR accepted")
	}
	if _, err := aws.CreateTransitGatewayAttachment(tgw, gateway.AttachVPC, "ghost"); err == nil {
		t.Fatal("attachment to unknown VPC accepted")
	}
}
