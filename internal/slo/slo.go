// Package slo is the live SLO plane: shard-aligned latency accounting
// for every Table-2 verb, a continuous permit-propagation-lag sampler,
// request-scoped spans feeding a bounded flight recorder, and declared
// per-tenant objectives with burn-rate evaluation and a noisy-neighbor
// detector.
//
// The paper's bargain — tenants declare intent, the provider owns the
// "how" — only holds if tenants can see, per (tenant, region), whether
// the provider is holding up its end. E13 measures connect latency,
// permit lag, and storm isolation offline in a drill; this package is
// the same three signals measured continuously on the live system, at a
// cost low enough to leave on (gated ≤5% on the drill hot path).
//
// Layout mirrors the core's concurrency design: per-(tenant, region)
// ShardStats live in a 64-way striped table (like addrSpace and the
// admission cache), and each histogram is a fixed-bucket array of
// atomics, so the record path after the stats pointer is resolved is
// lock-free. A nil *Plane is valid everywhere and records nothing, so
// instrumented call sites pay one nil check when the plane is off.
package slo

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"declnet/internal/addr"
)

// Verb classifies which public verb a latency sample came from. Grant
// covers the address lifecycle (request/release of EIPs and SIPs), Bind
// the SIP attach plane (bind/unbind/groups), QoS the bandwidth intents
// (set_qos, set_potato, per-VM caps).
type Verb uint8

const (
	VerbConnect Verb = iota
	VerbProbe
	VerbPermit
	VerbBind
	VerbGrant
	VerbQoS
	VerbBatch
	nVerbs
)

var verbNames = [nVerbs]string{"connect", "probe", "permit", "bind", "grant", "qos", "batch"}

func (v Verb) String() string {
	if int(v) < len(verbNames) {
		return verbNames[v]
	}
	return "unknown"
}

// mutation reports whether the verb mutates control-plane state — the
// signal the noisy-neighbor detector attributes storms by.
func (v Verb) mutation() bool {
	switch v {
	case VerbPermit, VerbBind, VerbGrant, VerbQoS, VerbBatch:
		return true
	}
	return false
}

// Key identifies one (tenant, region) shard, in the same derivation the
// core's ShardKey uses: Region is "provider/region" for addresses inside
// a region block, the bare provider name for the SIP plane, and "" when
// the verb resolved no shard (e.g. a batch).
type Key struct {
	Tenant string `json:"tenant"`
	Region string `json:"region"`
}

func (k Key) String() string { return k.Tenant + "@" + k.Region }

// Histogram geometry: bucket 0 holds [0, 256ns); bucket i holds
// [256ns<<(i-1), 256ns<<i); the last bucket tops out around 34s.
// Power-of-two bounds make the index one bits.Len64.
const (
	histBuckets = 28
	histBase    = 256 // ns; upper bound of bucket 0
)

func bucketOf(d time.Duration) int {
	ns := uint64(d)
	if ns < histBase {
		return 0
	}
	i := bits.Len64(ns) - 8 // histBase == 1<<8
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// bucketUpper returns the inclusive-side upper bound of bucket i, the
// value quantile estimates report (conservative: never under-reports).
func bucketUpper(i int) time.Duration { return time.Duration(histBase << i) }

// bucketLower returns the lower bound of bucket i.
func bucketLower(i int) time.Duration {
	if i == 0 {
		return 0
	}
	return time.Duration(histBase << (i - 1))
}

// Hist is a lock-free fixed-bucket latency histogram. Record is one
// atomic add per field; concurrent Records never block each other.
type Hist struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64 // ns
}

// Record adds one sample.
func (h *Hist) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketOf(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// reset zeroes the histogram (window rotation). Concurrent Records may
// lose or double a straggling sample across the reset boundary; windows
// are statistics, not ledgers.
func (h *Hist) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}

// Snapshot copies the histogram's counters at one (racy but per-field
// atomic) instant.
func (h *Hist) Snapshot() HistSnap {
	var s HistSnap
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Count = h.count.Load()
	s.SumNS = h.sum.Load()
	return s
}

// HistSnap is an immutable histogram snapshot; Merge folds shards
// together, which is exact for bucketed counts (the striped-vs-serial
// oracle property).
type HistSnap struct {
	Counts [histBuckets]uint64
	Count  uint64
	SumNS  int64
}

// Merge adds another snapshot's counts into s.
func (s *HistSnap) Merge(o HistSnap) {
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Count += o.Count
	s.SumNS += o.SumNS
}

// Quantile estimates the q-quantile (0 < q <= 1) as the upper bound of
// the bucket where the cumulative count crosses q*Count; zero when
// empty.
func (s HistSnap) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i := range s.Counts {
		cum += s.Counts[i]
		if cum >= target {
			return bucketUpper(i)
		}
	}
	return bucketUpper(histBuckets - 1)
}

// CountOver counts samples in buckets entirely above d — the burn-rate
// numerator, at bucket resolution (the bucket straddling d is not
// counted, so the estimate is conservative).
func (s HistSnap) CountOver(d time.Duration) uint64 {
	var n uint64
	for i := range s.Counts {
		if bucketLower(i) >= d && s.Counts[i] > 0 {
			n += s.Counts[i]
		}
	}
	return n
}

// Mean returns the average sample, zero when empty.
func (s HistSnap) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNS / int64(s.Count))
}

// ShardStats is one (tenant, region) shard's accounting: cumulative
// per-verb service-time histograms, a cumulative permit-lag histogram,
// and double-buffered window histograms (current/baseline) driving the
// detector. All fields are recorded lock-free.
type ShardStats struct {
	key Key

	verbs [nVerbs]Hist
	lag   Hist

	// Double-buffered windows, indexed by the plane's winIdx: winConn
	// holds connect+probe service time, winLag permit lag, winMut the
	// mutation-op count (the detector's attribution signal).
	winConn [2]Hist
	winLag  [2]Hist
	winMut  [2]atomic.Uint64
}

// planeStripes mirrors core's addrSpace striping so one shard's
// recording never contends with another stripe's.
const planeStripes = 64

type statsStripe struct {
	mu sync.RWMutex
	m  map[Key]*ShardStats
}

// lagStripeCap bounds pending permit-lag samples per stripe; entries
// whose target is never admission-checked would otherwise accumulate.
const lagStripeCap = 256

type lagStripe struct {
	mu sync.Mutex
	m  map[addr.IP]lagSample
}

type lagSample struct {
	at     time.Time
	tenant string
}

// Config parameterizes a Plane; zero values take the defaults below.
type Config struct {
	// SampleEvery head-samples 1-in-N ops for per-stage span detail
	// (default 64; 1 samples everything). Error and slow ops are always
	// retained regardless.
	SampleEvery int
	// HistSampleEvery head-samples 1-in-N ops for service-time
	// accounting: only sampled ops pay the clock reads and histogram
	// records, which is what keeps instrumentation inside the drill's
	// ≤5% overhead budget — exact per-op timing alone costs two clock
	// reads, more than the whole budget on a microsecond-scale verb.
	// Histogram and window counts are in recorded (1-in-N) units;
	// quantiles and burn rates are sampling-neutral. Default 32; tests
	// and drills pin 1 for exact counts. The first op is always sampled.
	HistSampleEvery int
	// LagSampleEvery stamps 1-in-N accepted permit updates for
	// propagation-lag measurement (default 16).
	LagSampleEvery int
	// SlowSpan always retains ops at least this slow (default 1ms).
	SlowSpan time.Duration
	// FlightCap bounds the flight-recorder ring (default 256 records).
	FlightCap int
	// Window is the detector window; rotation happens lazily on the
	// record path (default 10s). Tests and drills set it large and call
	// AdvanceWindow explicitly.
	Window time.Duration
	// BreachFactor flags a shard whose current-window p99 exceeds its
	// trailing baseline by this factor — default 1.5, the E13 storm/idle
	// bound.
	BreachFactor float64
	// MinWindowSamples is the floor below which a window is too thin to
	// judge (default 32, both windows).
	MinWindowSamples int
	// MinStormOps is the least mutation ops a shard must have logged in
	// the current window to be named a suspect (default 64).
	MinStormOps uint64
}

func (c Config) withDefaults() Config {
	if c.SampleEvery <= 0 {
		c.SampleEvery = 64
	}
	if c.HistSampleEvery <= 0 {
		c.HistSampleEvery = 32
	}
	if c.LagSampleEvery <= 0 {
		c.LagSampleEvery = 16
	}
	if c.SlowSpan <= 0 {
		c.SlowSpan = time.Millisecond
	}
	if c.FlightCap <= 0 {
		c.FlightCap = 256
	}
	if c.Window <= 0 {
		c.Window = 10 * time.Second
	}
	if c.BreachFactor <= 0 {
		c.BreachFactor = 1.5
	}
	if c.MinWindowSamples <= 0 {
		c.MinWindowSamples = 32
	}
	if c.MinStormOps == 0 {
		c.MinStormOps = 64
	}
	return c
}

// Plane is the live SLO plane. One Plane serves a whole Cloud; all
// methods are safe for concurrent use, and every method is nil-safe so
// call sites need no enablement branches.
type Plane struct {
	cfg Config

	stripes [planeStripes]statsStripe

	// winIdx selects the current window buffer (0/1); gen counts
	// rotations. rotMu serializes rotation itself.
	winIdx     atomic.Uint32
	gen        atomic.Uint64
	rotMu      sync.Mutex
	lastRotate atomic.Int64 // wall ns of the last rotation

	// opN/lagN drive head sampling: opN counts every Begin and decides
	// both histogram and span sampling, lagN counts permit stamps.
	opN  atomic.Uint64
	lagN atomic.Uint64

	// lagPending holds stamped-but-unresolved permit updates, striped by
	// the target's /16 like the admission cache; lagCount gates the
	// admission-fill fast path to one atomic load when nothing pends.
	lagPending [planeStripes]lagStripe
	lagCount   atomic.Int64

	flight flightRing

	objMu      sync.RWMutex
	objectives map[string]Objective

	// breachMu guards breach de-duplication (one event per victim per
	// window generation) and the onBreach callback pointer.
	breachMu  sync.Mutex
	breachGen map[Key]uint64
	onBreach  func(tenant, detail, cause string)
}

// NewPlane builds a plane; zero Config fields take defaults.
func NewPlane(cfg Config) *Plane {
	p := &Plane{cfg: cfg.withDefaults()}
	for i := range p.stripes {
		p.stripes[i].m = make(map[Key]*ShardStats)
	}
	for i := range p.lagPending {
		p.lagPending[i].m = make(map[addr.IP]lagSample)
	}
	p.flight.init(p.cfg.FlightCap)
	p.objectives = make(map[string]Objective)
	p.breachGen = make(map[Key]uint64)
	p.lastRotate.Store(time.Now().UnixNano())
	return p
}

// Config returns the effective (defaulted) configuration.
func (p *Plane) Config() Config { return p.cfg }

// stripeFor hashes a key onto a stripe (FNV-1a over both fields).
func stripeFor(k Key) int {
	h := uint32(2166136261)
	for i := 0; i < len(k.Tenant); i++ {
		h = (h ^ uint32(k.Tenant[i])) * 16777619
	}
	h = (h ^ '@') * 16777619
	for i := 0; i < len(k.Region); i++ {
		h = (h ^ uint32(k.Region[i])) * 16777619
	}
	return int(h & (planeStripes - 1))
}

// stats returns the shard's stats record, creating it on first use.
func (p *Plane) stats(k Key) *ShardStats {
	s := &p.stripes[stripeFor(k)]
	s.mu.RLock()
	st := s.m[k]
	s.mu.RUnlock()
	if st != nil {
		return st
	}
	s.mu.Lock()
	if st = s.m[k]; st == nil {
		st = &ShardStats{key: k}
		s.m[k] = st
	}
	s.mu.Unlock()
	return st
}

// Observe records one service-time sample directly (no span machinery):
// the path End takes, exposed for tests and out-of-band recording.
func (p *Plane) Observe(v Verb, tenant, region string, d time.Duration) {
	if p == nil {
		return
	}
	p.observe(v, Key{Tenant: tenant, Region: region}, d, time.Now())
}

func (p *Plane) observe(v Verb, k Key, d time.Duration, now time.Time) {
	st := p.stats(k)
	st.verbs[v].Record(d)
	cur := p.winIdx.Load() & 1
	if v == VerbConnect || v == VerbProbe {
		st.winConn[cur].Record(d)
	}
	if v.mutation() {
		st.winMut[cur].Add(1)
	}
	p.maybeRotate(now)
}

// StampPermit marks an accepted permit update against target so the next
// admission-cache fill for that address resolves the propagation lag —
// the E13 metric, measured continuously. Head-sampled at
// cfg.LagSampleEvery, and the sampling decision comes first so a
// sampled-out update pays one atomic add and nothing else (no clock
// read, no shard-key derivation — the resolve side supplies the region).
// Nil-safe.
func (p *Plane) StampPermit(tenant string, target addr.IP) {
	if p == nil {
		return
	}
	if every := uint64(p.cfg.LagSampleEvery); every > 1 && p.lagN.Add(1)%every != 1 {
		return
	}
	s := &p.lagPending[int(uint32(target)>>16)&(planeStripes-1)]
	s.mu.Lock()
	if _, exists := s.m[target]; !exists {
		if len(s.m) >= lagStripeCap {
			s.mu.Unlock()
			return
		}
		p.lagCount.Add(1)
	}
	s.m[target] = lagSample{at: time.Now(), tenant: tenant}
	s.mu.Unlock()
}

// ResolveLag closes a pending permit-lag sample for target, recording
// the elapsed time into the (stamped tenant, region) shard's lag
// histograms. Called from the admission cache's fill path, which owns
// the region derivation — fills are cache misses, so the cost lands on
// a path that is already cold. Gate calls on PendingLagSamples() to
// skip the derivation when nothing is pending. Nil-safe.
func (p *Plane) ResolveLag(target addr.IP, region string) {
	if p == nil || p.lagCount.Load() == 0 {
		return
	}
	s := &p.lagPending[int(uint32(target)>>16)&(planeStripes-1)]
	s.mu.Lock()
	smp, ok := s.m[target]
	if ok {
		delete(s.m, target)
	}
	s.mu.Unlock()
	if !ok {
		return
	}
	p.lagCount.Add(-1)
	d := time.Since(smp.at)
	st := p.stats(Key{Tenant: smp.tenant, Region: region})
	st.lag.Record(d)
	st.winLag[p.winIdx.Load()&1].Record(d)
}

// PendingLagSamples reports stamped-but-unresolved permit updates.
func (p *Plane) PendingLagSamples() int {
	if p == nil {
		return 0
	}
	return int(p.lagCount.Load())
}

// maybeRotate advances the window when cfg.Window has elapsed; one
// atomic load on the hot path. Racing lazy rotations collapse on the
// re-check under rotMu.
func (p *Plane) maybeRotate(now time.Time) {
	if now.UnixNano()-p.lastRotate.Load() < int64(p.cfg.Window) {
		return
	}
	p.rotMu.Lock()
	defer p.rotMu.Unlock()
	if time.Now().UnixNano()-p.lastRotate.Load() < int64(p.cfg.Window) {
		return
	}
	p.rotateLocked()
}

// AdvanceWindow forces a window rotation: the current window becomes
// the trailing baseline and a fresh current window opens. Drills and
// tests drive the detector deterministically with it.
func (p *Plane) AdvanceWindow() {
	if p == nil {
		return
	}
	p.rotMu.Lock()
	defer p.rotMu.Unlock()
	p.rotateLocked()
}

func (p *Plane) rotateLocked() {
	cur := p.winIdx.Load() & 1
	next := 1 - cur
	// The old baseline buffer becomes the fresh current window: clear it
	// first, then flip, so late writers land in a defined buffer.
	for i := range p.stripes {
		s := &p.stripes[i]
		s.mu.RLock()
		for _, st := range s.m {
			st.winConn[next].reset()
			st.winLag[next].reset()
			st.winMut[next].Store(0)
		}
		s.mu.RUnlock()
	}
	p.winIdx.Store(next)
	p.gen.Add(1)
	p.lastRotate.Store(time.Now().UnixNano())
}

// WindowGen returns the rotation count (the detector's de-dup key).
func (p *Plane) WindowGen() uint64 {
	if p == nil {
		return 0
	}
	return p.gen.Load()
}

// DropTenant releases all of a tenant's shard accounting (called when
// the tenant's last granted address is released) and its breach
// bookkeeping. Declared objectives survive, so a re-onboarding tenant
// keeps its targets. Nil-safe.
func (p *Plane) DropTenant(tenant string) {
	if p == nil {
		return
	}
	for i := range p.stripes {
		s := &p.stripes[i]
		s.mu.Lock()
		for k := range s.m {
			if k.Tenant == tenant {
				delete(s.m, k)
			}
		}
		s.mu.Unlock()
	}
	p.breachMu.Lock()
	for k := range p.breachGen {
		if k.Tenant == tenant {
			delete(p.breachGen, k)
		}
	}
	p.breachMu.Unlock()
}

// ShardCount reports how many (tenant, region) shards have recorded.
func (p *Plane) ShardCount() int {
	if p == nil {
		return 0
	}
	n := 0
	for i := range p.stripes {
		s := &p.stripes[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// ShardSnap is one shard's full snapshot: cumulative verb and lag
// histograms plus the current (Win*) and trailing-baseline (Base*)
// windows.
type ShardSnap struct {
	Key     Key
	Verbs   [nVerbs]HistSnap
	Lag     HistSnap
	WinConn HistSnap
	BaseCon HistSnap
	WinLag  HistSnap
	BaseLag HistSnap
	WinMut  uint64
	BaseMut uint64
}

// Snapshot captures every shard, sorted by key for deterministic
// iteration; reports and the detector build on it.
func (p *Plane) Snapshot() []ShardSnap {
	if p == nil {
		return nil
	}
	cur := p.winIdx.Load() & 1
	base := 1 - cur
	var out []ShardSnap
	for i := range p.stripes {
		s := &p.stripes[i]
		s.mu.RLock()
		for _, st := range s.m {
			out = append(out, ShardSnap{
				Key:     st.key,
				Verbs:   snapVerbs(&st.verbs),
				Lag:     st.lag.Snapshot(),
				WinConn: st.winConn[cur].Snapshot(),
				BaseCon: st.winConn[base].Snapshot(),
				WinLag:  st.winLag[cur].Snapshot(),
				BaseLag: st.winLag[base].Snapshot(),
				WinMut:  st.winMut[cur].Load(),
				BaseMut: st.winMut[base].Load(),
			})
		}
		s.mu.RUnlock()
	}
	sortSnaps(out)
	return out
}

func snapVerbs(h *[nVerbs]Hist) [nVerbs]HistSnap {
	var out [nVerbs]HistSnap
	for i := range h {
		out[i] = h[i].Snapshot()
	}
	return out
}

func sortSnaps(s []ShardSnap) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && keyLess(s[j].Key, s[j-1].Key); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func keyLess(a, b Key) bool {
	if a.Tenant != b.Tenant {
		return a.Tenant < b.Tenant
	}
	return a.Region < b.Region
}
