// Declared objectives, burn-rate evaluation, and the noisy-neighbor
// detector.
//
// A tenant registers targets at onboard ("connect p99 under 5ms,
// permit lag p99 under 1ms"); the plane evaluates them over the sliding
// detector windows and reports burn rate — the ratio of the observed
// violation fraction to the objective's error budget (1% for a p99
// target), so 1.0 means the budget is being spent exactly as fast as
// allowed and 10 means ten times too fast.
//
// The detector compares each shard's current-window connect p99 to its
// own trailing baseline window: a shard whose p99 exceeds the baseline
// by cfg.BreachFactor (default the E13 storm/idle bound, 1.5×) is
// breached, and the shard with the dominant mutation count this window
// is named as the suspected noisy neighbor via an obs-style cause
// chain.
package slo

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"declnet/internal/obs"
)

// Objective is one tenant's declared SLO targets; zero fields are
// unset.
type Objective struct {
	// ConnectP99 bounds the tenant's connect/probe service-time p99.
	ConnectP99 time.Duration `json:"connect_p99_ns,omitempty"`
	// PermitLagP99 bounds the permit-propagation-lag p99.
	PermitLagP99 time.Duration `json:"permit_lag_p99_ns,omitempty"`
}

// String renders the objective in ParseObjective's wire format,
// omitting unset fields; the two round-trip exactly (fuzzed).
func (o Objective) String() string {
	var parts []string
	if o.ConnectP99 > 0 {
		parts = append(parts, "connect_p99="+o.ConnectP99.String())
	}
	if o.PermitLagP99 > 0 {
		parts = append(parts, "permit_lag_p99="+o.PermitLagP99.String())
	}
	return strings.Join(parts, ";")
}

// ParseObjective parses "connect_p99=5ms;permit_lag_p99=1ms" — ';'
// separated key=value pairs, Go duration values, unknown keys and
// duplicates rejected. An empty or all-unset spec is an error: an
// objective with no targets guards nothing.
func ParseObjective(s string) (Objective, error) {
	var o Objective
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return Objective{}, fmt.Errorf("slo: %q is not key=value", part)
		}
		k = strings.TrimSpace(k)
		if seen[k] {
			return Objective{}, fmt.Errorf("slo: duplicate key %q", k)
		}
		seen[k] = true
		d, err := time.ParseDuration(strings.TrimSpace(v))
		if err != nil {
			return Objective{}, fmt.Errorf("slo: %s: %w", k, err)
		}
		if d <= 0 {
			return Objective{}, fmt.Errorf("slo: %s must be positive, got %v", k, d)
		}
		switch k {
		case "connect_p99":
			o.ConnectP99 = d
		case "permit_lag_p99":
			o.PermitLagP99 = d
		default:
			return Objective{}, fmt.Errorf("slo: unknown objective key %q", k)
		}
	}
	if o == (Objective{}) {
		return Objective{}, fmt.Errorf("slo: objective %q sets no targets", s)
	}
	return o, nil
}

// SetObjective registers (or replaces) a tenant's targets; nil-safe.
func (p *Plane) SetObjective(tenant string, o Objective) {
	if p == nil {
		return
	}
	p.objMu.Lock()
	p.objectives[tenant] = o
	p.objMu.Unlock()
}

// ObjectiveOf returns a tenant's registered targets.
func (p *Plane) ObjectiveOf(tenant string) (Objective, bool) {
	if p == nil {
		return Objective{}, false
	}
	p.objMu.RLock()
	o, ok := p.objectives[tenant]
	p.objMu.RUnlock()
	return o, ok
}

// OnBreach installs the callback the detector fires once per (victim
// shard, window generation) — the core wires it into the decision
// tracer so breaches land in the victim tenant's trace ring.
func (p *Plane) OnBreach(fn func(tenant, detail, cause string)) {
	if p == nil {
		return
	}
	p.breachMu.Lock()
	p.onBreach = fn
	p.breachMu.Unlock()
}

// budget is the error budget of a p99 target: 1% of requests may miss.
const budget = 0.01

// VerbStats summarizes one verb's cumulative service time in a shard.
type VerbStats struct {
	Verb   string  `json:"verb"`
	Count  uint64  `json:"count"`
	P50US  float64 `json:"p50_us"`
	P99US  float64 `json:"p99_us"`
	MeanUS float64 `json:"mean_us"`
}

// ShardReport is one (tenant, region) shard's accounting as served by
// GET /v1/slo.
type ShardReport struct {
	Shard  string `json:"shard"`
	Tenant string `json:"tenant"`
	Region string `json:"region,omitempty"`

	Verbs []VerbStats `json:"verbs,omitempty"`

	LagCount uint64  `json:"permit_lag_count,omitempty"`
	LagP99US float64 `json:"permit_lag_p99_us,omitempty"`

	// Window* describe the current detector window, Baseline* the
	// trailing one.
	WindowCount     uint64  `json:"window_count"`
	WindowP99US     float64 `json:"window_p99_us"`
	BaselineCount   uint64  `json:"baseline_count"`
	BaselineP99US   float64 `json:"baseline_p99_us"`
	WindowMutations uint64  `json:"window_mutations"`
}

// ObjectiveStatus is a tenant's targets evaluated against observation.
type ObjectiveStatus struct {
	Spec string `json:"spec"`

	ConnectP99TargetUS float64 `json:"connect_p99_target_us,omitempty"`
	ConnectP99US       float64 `json:"connect_p99_us"`
	ConnectBurnRate    float64 `json:"connect_burn_rate"`

	PermitLagP99TargetUS float64 `json:"permit_lag_p99_target_us,omitempty"`
	PermitLagP99US       float64 `json:"permit_lag_p99_us"`
	PermitLagBurnRate    float64 `json:"permit_lag_burn_rate"`

	Met bool `json:"met"`
}

// TenantReport is one tenant's slice of GET /v1/slo.
type TenantReport struct {
	Tenant    string           `json:"tenant"`
	Objective *ObjectiveStatus `json:"objective,omitempty"`
	Shards    []ShardReport    `json:"shards"`
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// Report evaluates the plane for one tenant ("" for all), sorted by
// tenant then shard. Burn rates are computed over the current plus
// baseline windows so a fresh rotation doesn't blank the signal.
func (p *Plane) Report(tenant string) []TenantReport {
	if p == nil {
		return nil
	}
	snaps := p.Snapshot()
	byTenant := make(map[string][]ShardSnap)
	for _, s := range snaps {
		if tenant != "" && s.Key.Tenant != tenant {
			continue
		}
		byTenant[s.Key.Tenant] = append(byTenant[s.Key.Tenant], s)
	}
	// A tenant with a registered objective but no traffic yet still
	// reports (empty shards, unmet burn of zero).
	p.objMu.RLock()
	for t := range p.objectives {
		if tenant != "" && t != tenant {
			continue
		}
		if _, ok := byTenant[t]; !ok {
			byTenant[t] = nil
		}
	}
	p.objMu.RUnlock()
	names := make([]string, 0, len(byTenant))
	for t := range byTenant {
		names = append(names, t)
	}
	sort.Strings(names)
	out := make([]TenantReport, 0, len(names))
	for _, t := range names {
		tr := TenantReport{Tenant: t}
		// Tenant-wide merged views for objective evaluation.
		var connCum, lagCum, connWin, lagWin HistSnap
		for _, s := range byTenant[t] {
			var verbs []VerbStats
			for v := 0; v < int(nVerbs); v++ {
				h := s.Verbs[v]
				if h.Count == 0 {
					continue
				}
				verbs = append(verbs, VerbStats{
					Verb:   Verb(v).String(),
					Count:  h.Count,
					P50US:  us(h.Quantile(0.50)),
					P99US:  us(h.Quantile(0.99)),
					MeanUS: us(h.Mean()),
				})
			}
			tr.Shards = append(tr.Shards, ShardReport{
				Shard:           s.Key.String(),
				Tenant:          s.Key.Tenant,
				Region:          s.Key.Region,
				Verbs:           verbs,
				LagCount:        s.Lag.Count,
				LagP99US:        us(s.Lag.Quantile(0.99)),
				WindowCount:     s.WinConn.Count,
				WindowP99US:     us(s.WinConn.Quantile(0.99)),
				BaselineCount:   s.BaseCon.Count,
				BaselineP99US:   us(s.BaseCon.Quantile(0.99)),
				WindowMutations: s.WinMut,
			})
			connCum.Merge(s.Verbs[VerbConnect])
			connCum.Merge(s.Verbs[VerbProbe])
			lagCum.Merge(s.Lag)
			connWin.Merge(s.WinConn)
			connWin.Merge(s.BaseCon)
			lagWin.Merge(s.WinLag)
			lagWin.Merge(s.BaseLag)
		}
		if o, ok := p.ObjectiveOf(t); ok {
			st := &ObjectiveStatus{Spec: o.String(), Met: true}
			if o.ConnectP99 > 0 {
				st.ConnectP99TargetUS = us(o.ConnectP99)
				st.ConnectP99US = us(connCum.Quantile(0.99))
				st.ConnectBurnRate = burnRate(connWin, o.ConnectP99)
				if st.ConnectBurnRate > 1 {
					st.Met = false
				}
			}
			if o.PermitLagP99 > 0 {
				st.PermitLagP99TargetUS = us(o.PermitLagP99)
				st.PermitLagP99US = us(lagCum.Quantile(0.99))
				st.PermitLagBurnRate = burnRate(lagWin, o.PermitLagP99)
				if st.PermitLagBurnRate > 1 {
					st.Met = false
				}
			}
			tr.Objective = st
		}
		out = append(out, tr)
	}
	return out
}

// burnRate is (fraction of samples over target) / error budget.
func burnRate(s HistSnap, target time.Duration) float64 {
	if s.Count == 0 {
		return 0
	}
	frac := float64(s.CountOver(target)) / float64(s.Count)
	return frac / budget
}

// Breach is one detector finding: a shard whose current-window p99
// exceeded its trailing baseline by the breach factor, with the
// dominant mutator this window named as suspect.
type Breach struct {
	Shard  string `json:"shard"`
	Tenant string `json:"tenant"`
	Region string `json:"region,omitempty"`

	CurP99US  float64 `json:"cur_p99_us"`
	BaseP99US float64 `json:"base_p99_us"`
	Ratio     float64 `json:"ratio"`
	CurCount  uint64  `json:"cur_count"`
	BaseCount uint64  `json:"base_count"`

	Suspect    string `json:"suspect,omitempty"`
	SuspectOps uint64 `json:"suspect_ops,omitempty"`

	// Cause is the decision-trace cause chain naming the breach and its
	// suspected neighbor, in obs's " <- " format.
	Cause string `json:"cause"`
}

// HealthReport is GET /v1/health: overall status plus any breaches.
type HealthReport struct {
	Status    string   `json:"status"` // "ok" | "degraded"
	WindowGen uint64   `json:"window_gen"`
	Factor    float64  `json:"breach_factor"`
	Breaches  []Breach `json:"breaches,omitempty"`
}

// Health runs the noisy-neighbor detector over the current snapshot.
// Each new breach (per shard per window generation) also fires the
// OnBreach callback, landing a slo-breach event in the victim's
// decision trace. Nil-safe.
func (p *Plane) Health() HealthReport {
	if p == nil {
		return HealthReport{Status: "ok"}
	}
	snaps := p.Snapshot()
	rep := HealthReport{Status: "ok", WindowGen: p.gen.Load(), Factor: p.cfg.BreachFactor}
	min := uint64(p.cfg.MinWindowSamples)
	for _, s := range snaps {
		if s.WinConn.Count < min || s.BaseCon.Count < min {
			continue
		}
		curP99 := s.WinConn.Quantile(0.99)
		baseP99 := s.BaseCon.Quantile(0.99)
		if baseP99 <= 0 || float64(curP99) <= p.cfg.BreachFactor*float64(baseP99) {
			continue
		}
		b := Breach{
			Shard:     s.Key.String(),
			Tenant:    s.Key.Tenant,
			Region:    s.Key.Region,
			CurP99US:  us(curP99),
			BaseP99US: us(baseP99),
			Ratio:     float64(curP99) / float64(baseP99),
			CurCount:  s.WinConn.Count,
			BaseCount: s.BaseCon.Count,
		}
		// Attribution: the dominant mutator this window, excluding the
		// victim's own shards, if it cleared the storm floor and dwarfs
		// the victim's own mutation rate.
		var suspect ShardSnap
		for _, o := range snaps {
			if o.Key == s.Key || o.Key.Tenant == s.Key.Tenant {
				continue
			}
			if o.WinMut > suspect.WinMut {
				suspect = o
			}
		}
		links := []string{
			"slo-breach:connect-p99:" + b.Shard,
			fmt.Sprintf("p99=%v baseline=%v ratio=%.2fx", curP99, baseP99, b.Ratio),
		}
		if suspect.WinMut >= p.cfg.MinStormOps && suspect.WinMut >= 4*s.WinMut {
			b.Suspect = suspect.Key.String()
			b.SuspectOps = suspect.WinMut
			links = append(links,
				"noisy-neighbor:"+b.Suspect,
				"mutation-storm:ops="+strconv.FormatUint(suspect.WinMut, 10))
		} else {
			links = append(links, "no-dominant-mutator")
		}
		b.Cause = obs.Chain(links...)
		rep.Breaches = append(rep.Breaches, b)
	}
	if len(rep.Breaches) > 0 {
		rep.Status = "degraded"
		p.emitBreaches(rep)
	}
	return rep
}

// emitBreaches fires the OnBreach callback once per (victim shard,
// window generation).
func (p *Plane) emitBreaches(rep HealthReport) {
	p.breachMu.Lock()
	fn := p.onBreach
	var fresh []Breach
	for _, b := range rep.Breaches {
		k := Key{Tenant: b.Tenant, Region: b.Region}
		if p.breachGen[k] == rep.WindowGen && rep.WindowGen != 0 {
			continue
		}
		p.breachGen[k] = rep.WindowGen
		fresh = append(fresh, b)
	}
	p.breachMu.Unlock()
	if fn == nil {
		return
	}
	for _, b := range fresh {
		fn(b.Tenant, fmt.Sprintf("shard=%s p99=%.1fus baseline=%.1fus ratio=%.2fx",
			b.Shard, b.CurP99US, b.BaseP99US, b.Ratio), b.Cause)
	}
}
