package slo

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"declnet/internal/addr"
)

func TestBucketGeometry(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{255, 0},
		{256, 1},
		{511, 1},
		{512, 2},
		{time.Microsecond, 2}, // 1000ns in [512, 1024)
		{time.Hour, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.want {
			t.Errorf("bucketOf(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	for i := 1; i < histBuckets; i++ {
		if bucketLower(i) != bucketUpper(i-1) {
			t.Errorf("bucket %d: lower %v != prev upper %v", i, bucketLower(i), bucketUpper(i-1))
		}
	}
}

func TestHistQuantileAndMean(t *testing.T) {
	var h Hist
	// 99 fast samples, 1 slow: p50 sits in the fast bucket, p99 (ceil
	// semantics) still fast, p100 reaches the slow one.
	for i := 0; i < 99; i++ {
		h.Record(300) // bucket 1, upper 512ns
	}
	h.Record(time.Millisecond)
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if got := s.Quantile(0.50); got != 512 {
		t.Errorf("p50 = %v, want 512ns", got)
	}
	if got := s.Quantile(0.99); got != 512 {
		t.Errorf("p99 = %v, want 512ns (ceil(0.99*100)=99 <= 99 fast samples)", got)
	}
	if got := s.Quantile(1.0); got < time.Millisecond {
		t.Errorf("p100 = %v, want >= 1ms", got)
	}
	if got := s.CountOver(time.Microsecond); got != 1 {
		t.Errorf("CountOver(1us) = %d, want 1", got)
	}
	mean := s.Mean()
	if mean < 300 || mean > 20*time.Microsecond {
		t.Errorf("mean = %v out of plausible range", mean)
	}
	if (HistSnap{}).Quantile(0.99) != 0 || (HistSnap{}).Mean() != 0 {
		t.Error("empty snapshot quantile/mean must be zero")
	}
}

func TestHistMergeIsExact(t *testing.T) {
	var a, b, whole Hist
	for i := 0; i < 1000; i++ {
		d := time.Duration(i) * 100
		whole.Record(d)
		if i%2 == 0 {
			a.Record(d)
		} else {
			b.Record(d)
		}
	}
	m := a.Snapshot()
	m.Merge(b.Snapshot())
	if m != whole.Snapshot() {
		t.Error("merged striped snapshots differ from the serial histogram")
	}
}

func TestNilPlaneIsInert(t *testing.T) {
	var p *Plane
	p.Observe(VerbConnect, "t", "r", time.Millisecond)
	p.StampPermit("t", 1)
	p.ResolveLag(1, "r")
	p.AdvanceWindow()
	p.DropTenant("t")
	p.SetObjective("t", Objective{ConnectP99: time.Second})
	op := p.Begin(VerbConnect, "t", "r")
	op.SetRegion("x")
	op.StageEnd(op.StageStart(), "s")
	op.End(errors.New("boom"))
	if p.Health().Status != "ok" || p.Report("") != nil || p.Flight(0) != nil {
		t.Error("nil plane must report empty state")
	}
	if p.ShardCount() != 0 || p.WindowGen() != 0 || p.PendingLagSamples() != 0 {
		t.Error("nil plane counters must be zero")
	}
}

func TestObserveAndWindows(t *testing.T) {
	p := NewPlane(Config{Window: time.Hour, MinWindowSamples: 4})
	for i := 0; i < 10; i++ {
		p.Observe(VerbConnect, "t1", "p/r1", time.Microsecond)
		p.Observe(VerbPermit, "t2", "p/r2", time.Microsecond)
	}
	snaps := p.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("shards = %d, want 2", len(snaps))
	}
	// Snapshot is sorted by key: t1 first.
	if snaps[0].Key.Tenant != "t1" || snaps[1].Key.Tenant != "t2" {
		t.Fatalf("snapshot order: %v, %v", snaps[0].Key, snaps[1].Key)
	}
	if snaps[0].WinConn.Count != 10 || snaps[0].WinMut != 0 {
		t.Errorf("t1 window: conn=%d mut=%d, want 10/0", snaps[0].WinConn.Count, snaps[0].WinMut)
	}
	if snaps[1].WinConn.Count != 0 || snaps[1].WinMut != 10 {
		t.Errorf("t2 window: conn=%d mut=%d, want 0/10", snaps[1].WinConn.Count, snaps[1].WinMut)
	}
	p.AdvanceWindow()
	if p.WindowGen() != 1 {
		t.Fatalf("gen = %d", p.WindowGen())
	}
	snaps = p.Snapshot()
	if snaps[0].WinConn.Count != 0 || snaps[0].BaseCon.Count != 10 {
		t.Errorf("after rotation: cur=%d base=%d, want 0/10", snaps[0].WinConn.Count, snaps[0].BaseCon.Count)
	}
	// Cumulative verb histograms survive rotation.
	if snaps[0].Verbs[VerbConnect].Count != 10 {
		t.Errorf("cumulative connect count = %d", snaps[0].Verbs[VerbConnect].Count)
	}
	// A second rotation retires the old baseline entirely.
	p.AdvanceWindow()
	snaps = p.Snapshot()
	if snaps[0].BaseCon.Count != 0 {
		t.Errorf("baseline after two rotations = %d, want 0", snaps[0].BaseCon.Count)
	}
}

func TestLazyRotation(t *testing.T) {
	p := NewPlane(Config{Window: time.Millisecond})
	p.Observe(VerbConnect, "t", "r", time.Microsecond)
	time.Sleep(3 * time.Millisecond)
	p.Observe(VerbConnect, "t", "r", time.Microsecond)
	if p.WindowGen() == 0 {
		t.Error("elapsed window must rotate lazily on the record path")
	}
}

func TestSpanSamplingAndFlight(t *testing.T) {
	p := NewPlane(Config{Window: time.Hour, SampleEvery: 2, HistSampleEvery: 1, SlowSpan: time.Hour})
	// opN%2==1 samples: op 1 sampled, op 2 not.
	op1 := p.Begin(VerbConnect, "t", "r")
	if !op1.Sampled() {
		t.Error("first op should be head-sampled at SampleEvery=2")
	}
	stg := op1.StageStart()
	op1.StageEnd(stg, "permit")
	op1.End(nil)
	op2 := p.Begin(VerbConnect, "t", "r")
	if op2.Sampled() {
		t.Error("second op should be unsampled")
	}
	op2.End(nil) // unsampled, fast, no error: not retained
	op3 := p.Begin(VerbConnect, "t", "r")
	op3.End(errors.New("denied")) // sampled (odd) AND error: retained as error
	op4 := p.Begin(VerbConnect, "t", "r")
	op4.End(errors.New("denied")) // unsampled but error: retained anyway
	spans := p.Flight(0)
	if len(spans) != 3 {
		t.Fatalf("flight holds %d spans, want 3", len(spans))
	}
	if spans[0].Why != "sampled" || len(spans[0].Stages) != 1 || spans[0].Stages[0].Name != "permit" {
		t.Errorf("span 0 = %+v, want sampled with one permit stage", spans[0])
	}
	if spans[1].Why != "error" || spans[1].Err != "denied" {
		t.Errorf("span 1 = %+v, want error retention", spans[1])
	}
	if spans[2].Why != "error" || spans[2].Stages != nil {
		t.Errorf("span 2 = %+v, want unsampled error retention", spans[2])
	}
	// End is idempotent: a second End must not double-record.
	before := p.FlightRetained()
	op3.End(nil)
	if p.FlightRetained() != before {
		t.Error("double End retained a second span")
	}
	// Service time recorded for all four ops at HistSampleEvery=1.
	if got := p.Snapshot()[0].Verbs[VerbConnect].Count; got != 4 {
		t.Errorf("connect count = %d, want 4", got)
	}
}

// TestHistHeadSampling pins the service-time sampling contract: at
// HistSampleEvery=4 only ops 1 and 5 draw timing tickets, an errored
// op without a ticket is still retained (with zero duration), and the
// first op is always sampled.
func TestHistHeadSampling(t *testing.T) {
	p := NewPlane(Config{Window: time.Hour, HistSampleEvery: 4, SampleEvery: 1 << 30, SlowSpan: time.Hour})
	for i := 0; i < 6; i++ {
		op := p.Begin(VerbConnect, "t", "r")
		var err error
		if i == 2 { // op 3: sampled out AND errored
			err = errors.New("boom")
		}
		op.End(err)
	}
	if got := p.Snapshot()[0].Verbs[VerbConnect].Count; got != 2 {
		t.Errorf("connect count = %d, want 2 (ops 1 and 5)", got)
	}
	// Op 1 is head-sampled (first op always draws a ticket); op 3's error
	// retention rides along untimed.
	spans := p.Flight(0)
	if len(spans) != 2 || spans[0].Why != "sampled" {
		t.Fatalf("spans = %+v, want sampled op 1 plus the error", spans)
	}
	if spans[1].Why != "error" || spans[1].DurUS != 0 {
		t.Fatalf("span = %+v, want zero-duration error retention", spans[1])
	}
}

func TestFlightRingOverwrite(t *testing.T) {
	p := NewPlane(Config{Window: time.Hour, SampleEvery: 1, FlightCap: 4})
	for i := 0; i < 10; i++ {
		op := p.Begin(VerbConnect, "t", "r")
		op.End(fmt.Errorf("e%d", i))
	}
	spans := p.Flight(0)
	if len(spans) != 4 {
		t.Fatalf("ring holds %d, want cap 4", len(spans))
	}
	if spans[0].Err != "e6" || spans[3].Err != "e9" {
		t.Errorf("ring contents %q..%q, want e6..e9 oldest-first", spans[0].Err, spans[3].Err)
	}
	if got := p.Flight(2); len(got) != 2 || got[1].Err != "e9" {
		t.Errorf("Flight(2) = %+v, want last two", got)
	}
	if p.FlightRetained() != 10 {
		t.Errorf("retained total = %d, want 10", p.FlightRetained())
	}
}

func TestSlowSpanRetention(t *testing.T) {
	p := NewPlane(Config{Window: time.Hour, SampleEvery: 1 << 30, SlowSpan: time.Nanosecond})
	op := p.Begin(VerbQoS, "t", "r")
	op.End(nil)
	spans := p.Flight(0)
	if len(spans) != 1 || spans[0].Why != "slow" {
		t.Fatalf("spans = %+v, want one slow retention", spans)
	}
}

func TestPermitLagSampler(t *testing.T) {
	p := NewPlane(Config{Window: time.Hour, LagSampleEvery: 1})
	target := addr.IP(0x0a000001)
	p.StampPermit("t", target)
	if p.PendingLagSamples() != 1 {
		t.Fatalf("pending = %d", p.PendingLagSamples())
	}
	// Resolving a different address in the same stripe is a no-op.
	p.ResolveLag(target+1, "p/r")
	if p.PendingLagSamples() != 1 {
		t.Error("wrong-target resolve consumed the sample")
	}
	p.ResolveLag(target, "p/r")
	if p.PendingLagSamples() != 0 {
		t.Error("resolve left the sample pending")
	}
	p.ResolveLag(target, "p/r") // double resolve: no-op
	s := p.Snapshot()
	if len(s) != 1 || s[0].Key != (Key{Tenant: "t", Region: "p/r"}) {
		t.Fatalf("lag shard = %+v, want (t, p/r) from the resolve-side region", s)
	}
	if s[0].Lag.Count != 1 || s[0].WinLag.Count != 1 {
		t.Fatalf("lag histograms = %+v, want one sample in cumulative and window", s)
	}
	// Re-stamping the same target overwrites rather than double-counting.
	p.StampPermit("t", target)
	p.StampPermit("t", target)
	if p.PendingLagSamples() != 1 {
		t.Errorf("re-stamp pending = %d, want 1", p.PendingLagSamples())
	}
}

func TestPermitLagHeadSampling(t *testing.T) {
	p := NewPlane(Config{Window: time.Hour, LagSampleEvery: 8})
	for i := 0; i < 64; i++ {
		p.StampPermit("t", addr.IP(uint32(i+1)))
	}
	if got := p.PendingLagSamples(); got != 8 {
		t.Errorf("pending = %d, want 64/8 = 8", got)
	}
}

func TestPermitLagStripeCap(t *testing.T) {
	p := NewPlane(Config{Window: time.Hour, LagSampleEvery: 1})
	// All targets share a /16, so they land in one stripe.
	for i := 0; i < 2*lagStripeCap; i++ {
		p.StampPermit("t", addr.IP(0x0a000000+uint32(i)))
	}
	if got := p.PendingLagSamples(); got != lagStripeCap {
		t.Errorf("pending = %d, want stripe cap %d", got, lagStripeCap)
	}
}

func TestDetectorBreachAndAttribution(t *testing.T) {
	p := NewPlane(Config{Window: time.Hour, MinWindowSamples: 8, MinStormOps: 16})
	victim, quiet := Key{Tenant: "v", Region: "p/r1"}, Key{Tenant: "q", Region: "p/r2"}
	// Baseline window: fast connects for both shards.
	for i := 0; i < 32; i++ {
		p.Observe(VerbConnect, victim.Tenant, victim.Region, time.Microsecond)
		p.Observe(VerbConnect, quiet.Tenant, quiet.Region, time.Microsecond)
	}
	p.AdvanceWindow()
	// Current window: the victim degrades 8x while a noisy tenant storms
	// mutations; the quiet shard stays flat.
	for i := 0; i < 32; i++ {
		p.Observe(VerbConnect, victim.Tenant, victim.Region, 8*time.Microsecond)
		p.Observe(VerbConnect, quiet.Tenant, quiet.Region, time.Microsecond)
	}
	for i := 0; i < 100; i++ {
		p.Observe(VerbPermit, "noisy", "p/r3", time.Microsecond)
	}
	var fired []string
	p.OnBreach(func(tenant, detail, cause string) {
		fired = append(fired, tenant+"|"+cause)
	})
	rep := p.Health()
	if rep.Status != "degraded" || len(rep.Breaches) != 1 {
		t.Fatalf("health = %+v, want one breach", rep)
	}
	b := rep.Breaches[0]
	if b.Shard != "v@p/r1" {
		t.Errorf("victim = %q", b.Shard)
	}
	if b.Suspect != "noisy@p/r3" || b.SuspectOps != 100 {
		t.Errorf("suspect = %q ops=%d, want noisy@p/r3 with 100", b.Suspect, b.SuspectOps)
	}
	if b.Ratio < p.Config().BreachFactor {
		t.Errorf("ratio = %.2f under breach factor", b.Ratio)
	}
	for _, frag := range []string{"slo-breach:connect-p99:v@p/r1", "noisy-neighbor:noisy@p/r3", "mutation-storm:ops=100", " <- "} {
		if !strings.Contains(b.Cause, frag) {
			t.Errorf("cause %q missing %q", b.Cause, frag)
		}
	}
	if len(fired) != 1 || !strings.HasPrefix(fired[0], "v|") {
		t.Fatalf("OnBreach fired %v, want once for v", fired)
	}
	// Same window generation: the callback is de-duplicated, the report
	// still shows the breach.
	rep = p.Health()
	if len(fired) != 1 || len(rep.Breaches) != 1 {
		t.Errorf("re-poll fired %d callbacks, %d breaches; want 1/1", len(fired), len(rep.Breaches))
	}
}

func TestDetectorNoDominantMutator(t *testing.T) {
	p := NewPlane(Config{Window: time.Hour, MinWindowSamples: 8, MinStormOps: 1000})
	victim := Key{Tenant: "v", Region: "p/r1"}
	for i := 0; i < 32; i++ {
		p.Observe(VerbConnect, victim.Tenant, victim.Region, time.Microsecond)
	}
	p.AdvanceWindow()
	for i := 0; i < 32; i++ {
		p.Observe(VerbConnect, victim.Tenant, victim.Region, 8*time.Microsecond)
	}
	p.Observe(VerbPermit, "other", "p/r2", time.Microsecond) // under MinStormOps
	rep := p.Health()
	if len(rep.Breaches) != 1 {
		t.Fatalf("want breach, got %+v", rep)
	}
	if rep.Breaches[0].Suspect != "" || !strings.Contains(rep.Breaches[0].Cause, "no-dominant-mutator") {
		t.Errorf("breach = %+v, want unattributed", rep.Breaches[0])
	}
}

func TestDetectorThinWindowsStaySilent(t *testing.T) {
	p := NewPlane(Config{Window: time.Hour, MinWindowSamples: 64})
	k := Key{Tenant: "v", Region: "p/r"}
	for i := 0; i < 16; i++ {
		p.Observe(VerbConnect, k.Tenant, k.Region, time.Microsecond)
	}
	p.AdvanceWindow()
	for i := 0; i < 16; i++ {
		p.Observe(VerbConnect, k.Tenant, k.Region, time.Second)
	}
	if rep := p.Health(); rep.Status != "ok" {
		t.Errorf("thin windows must not breach: %+v", rep)
	}
}

func TestDropTenant(t *testing.T) {
	p := NewPlane(Config{Window: time.Hour})
	p.Observe(VerbConnect, "gone", "p/r1", time.Microsecond)
	p.Observe(VerbConnect, "gone", "p/r2", time.Microsecond)
	p.Observe(VerbConnect, "stays", "p/r1", time.Microsecond)
	p.SetObjective("gone", Objective{ConnectP99: time.Second})
	if p.ShardCount() != 3 {
		t.Fatalf("shards = %d", p.ShardCount())
	}
	p.DropTenant("gone")
	if p.ShardCount() != 1 {
		t.Errorf("shards after drop = %d, want 1", p.ShardCount())
	}
	if len(p.Snapshot()) != 1 || p.Snapshot()[0].Key.Tenant != "stays" {
		t.Error("wrong shard survived the drop")
	}
	// Objectives survive: a re-onboarding tenant keeps its targets.
	if _, ok := p.ObjectiveOf("gone"); !ok {
		t.Error("objective must survive DropTenant")
	}
}

// TestStripedMergeMatchesSerialOracle is the -race property test: many
// goroutines record into per-shard striped histograms while each also
// feeds a single serial oracle histogram (mutex-guarded); merging the
// striped shards afterwards must equal the oracle exactly — bucketed
// counts make the merge lossless, which is what lets /v1/slo sum shards.
func TestStripedMergeMatchesSerialOracle(t *testing.T) {
	p := NewPlane(Config{Window: time.Hour})
	var mu sync.Mutex
	var oracle Hist
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				d := time.Duration((w*perWorker+i)%5000) * 200
				tenant := fmt.Sprintf("t%d", i%7)
				region := fmt.Sprintf("p/r%d", i%3)
				p.Observe(VerbConnect, tenant, region, d)
				mu.Lock()
				oracle.Record(d)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	var merged HistSnap
	for _, s := range p.Snapshot() {
		merged.Merge(s.Verbs[VerbConnect])
	}
	if merged != oracle.Snapshot() {
		t.Fatalf("striped merge diverged from serial oracle: merged count %d, oracle %d",
			merged.Count, oracle.Snapshot().Count)
	}
	if merged.Count != workers*perWorker {
		t.Fatalf("lost samples: %d != %d", merged.Count, workers*perWorker)
	}
}
