package slo

import (
	"testing"
	"time"
)

func TestParseObjective(t *testing.T) {
	good := []struct {
		in   string
		want Objective
	}{
		{"connect_p99=5ms", Objective{ConnectP99: 5 * time.Millisecond}},
		{"permit_lag_p99=1s", Objective{PermitLagP99: time.Second}},
		{"connect_p99=100us;permit_lag_p99=2ms",
			Objective{ConnectP99: 100 * time.Microsecond, PermitLagP99: 2 * time.Millisecond}},
		{" connect_p99 = 5ms ; ", Objective{ConnectP99: 5 * time.Millisecond}},
	}
	for _, c := range good {
		got, err := ParseObjective(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseObjective(%q) = %+v, %v; want %+v", c.in, got, err, c.want)
		}
	}
	bad := []string{
		"",                                // no targets
		";",                               // no targets
		"connect_p99",                     // not key=value
		"connect_p99=",                    // empty duration
		"connect_p99=fast",                // not a duration
		"connect_p99=-1ms",                // non-positive
		"connect_p99=0s",                  // non-positive
		"latency=5ms",                     // unknown key
		"connect_p99=5ms;connect_p99=6ms", // duplicate
	}
	for _, in := range bad {
		if o, err := ParseObjective(in); err == nil {
			t.Errorf("ParseObjective(%q) = %+v, want error", in, o)
		}
	}
}

func TestObjectiveRoundTrip(t *testing.T) {
	for _, o := range []Objective{
		{ConnectP99: 5 * time.Millisecond},
		{PermitLagP99: 250 * time.Microsecond},
		{ConnectP99: time.Second, PermitLagP99: 3 * time.Millisecond},
	} {
		back, err := ParseObjective(o.String())
		if err != nil || back != o {
			t.Errorf("round trip %+v -> %q -> %+v, %v", o, o.String(), back, err)
		}
	}
}

// FuzzParseObjective checks the wire-format invariants: the parser never
// panics, never accepts a spec with no targets or non-positive bounds,
// and every accepted objective round-trips exactly through String.
func FuzzParseObjective(f *testing.F) {
	for _, seed := range []string{
		"connect_p99=5ms",
		"permit_lag_p99=1ms",
		"connect_p99=100us;permit_lag_p99=2ms",
		"connect_p99=5ms;connect_p99=6ms",
		" connect_p99 = 1h ",
		"latency=5ms",
		"connect_p99=-3ns",
		";;=;",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		o, err := ParseObjective(s)
		if err != nil {
			if o != (Objective{}) {
				t.Fatalf("error path leaked a value: %q -> %+v", s, o)
			}
			return
		}
		if o == (Objective{}) {
			t.Fatalf("accepted %q with no targets", s)
		}
		if o.ConnectP99 < 0 || o.PermitLagP99 < 0 {
			t.Fatalf("accepted negative bound: %q -> %+v", s, o)
		}
		back, err := ParseObjective(o.String())
		if err != nil || back != o {
			t.Fatalf("round trip %q -> %+v -> %q -> %+v, %v", s, o, o.String(), back, err)
		}
	})
}
