// Request-scoped spans and the flight recorder.
//
// Every instrumented verb runs inside an Op — a cheap value created at
// the boundary (api or core wrapper) and Ended exactly once by its
// creator. The Op always records service time into its shard's
// histograms; per-stage detail is head-sampled at cfg.SampleEvery, but
// an op that errors or exceeds cfg.SlowSpan is retained in the flight
// recorder even when unsampled, so postmortems always have the
// interesting cases. The flight recorder is a bounded overwrite-oldest
// ring dumped via GET /v1/debug/flight.
package slo

import (
	"sync"
	"time"
)

// Op is one in-flight instrumented verb. The zero Op (from a nil
// plane's Begin) is inert: every method no-ops. Pass it by pointer so
// stages and the final End see the same state; only the creator calls
// End.
type Op struct {
	p    *Plane
	verb Verb
	key  Key
	t0   time.Time
	sp   *span
	done bool
}

// span carries the head-sampled per-stage detail.
type span struct {
	stages []StageRecord
}

// Begin opens an op for one verb invocation. region may be "" when the
// caller hasn't resolved the shard yet (SetRegion later). Nil-safe: a
// nil plane returns an inert Op.
//
// One opN ticket decides both samplings: 1-in-HistSampleEvery ops are
// timed (clock read here, clock read + histogram record in End) and
// 1-in-SampleEvery additionally carry per-stage span detail. A
// sampled-out op pays the atomic add and two modulos — the design
// constraint that keeps always-on instrumentation inside the drill's
// overhead budget. With the default rates (64 a multiple of 32) every
// span-detailed op is also timed; configs that break that alignment
// still time any span-sampled op so retained spans always carry a
// duration.
func (p *Plane) Begin(v Verb, tenant, region string) Op {
	if p == nil {
		return Op{}
	}
	op := Op{p: p, verb: v, key: Key{Tenant: tenant, Region: region}}
	n := p.opN.Add(1)
	if p.cfg.SampleEvery == 1 || n%uint64(p.cfg.SampleEvery) == 1 {
		op.sp = &span{}
	}
	if op.sp != nil || p.cfg.HistSampleEvery == 1 || n%uint64(p.cfg.HistSampleEvery) == 1 {
		op.t0 = time.Now()
	}
	return op
}

// Sampled reports whether this op carries per-stage detail.
func (op *Op) Sampled() bool { return op != nil && op.sp != nil }

// SetRegion fixes the op's shard once the verb body has resolved it
// (e.g. connect learns the source endpoint's region mid-flight).
func (op *Op) SetRegion(region string) {
	if op == nil || op.p == nil {
		return
	}
	op.key.Region = region
}

// StageStart opens a stage clock. It returns the zero time when the op
// is unsampled, making the paired StageEnd free — instrumented bodies
// pay two calls and a branch per stage when detail is off.
func (op *Op) StageStart() time.Time {
	if op == nil || op.sp == nil {
		return time.Time{}
	}
	return time.Now()
}

// StageEnd records a named stage begun at t0 (from StageStart); no-op
// for the zero time.
func (op *Op) StageEnd(t0 time.Time, name string) {
	if op == nil || op.sp == nil || t0.IsZero() {
		return
	}
	op.sp.stages = append(op.sp.stages, StageRecord{
		Name:  name,
		DurUS: float64(time.Since(t0).Nanoseconds()) / 1e3,
	})
}

// End closes the op: records service time into the shard's histograms
// (when the op drew a timing ticket in Begin), counts mutations for the
// detector, and retains the span in the flight recorder when sampled,
// errored, or slow. An errored op that drew no ticket is still retained
// — postmortems always get the failures — but with a zero duration,
// since its clocks never ran. Idempotent; nil-safe.
func (op *Op) End(err error) {
	if op == nil || op.p == nil || op.done {
		return
	}
	op.done = true
	timed := !op.t0.IsZero()
	var d time.Duration
	if timed {
		now := time.Now()
		d = now.Sub(op.t0)
		op.p.observe(op.verb, op.key, d, now)
	}
	why := ""
	switch {
	case err != nil:
		why = "error"
	case timed && d >= op.p.cfg.SlowSpan:
		why = "slow"
	case op.sp != nil:
		why = "sampled"
	default:
		return
	}
	rec := SpanRecord{
		Verb:   op.verb.String(),
		Tenant: op.key.Tenant,
		Region: op.key.Region,
		Start:  op.t0,
		DurUS:  float64(d.Nanoseconds()) / 1e3,
		Why:    why,
	}
	if op.sp != nil {
		rec.Stages = op.sp.stages
	}
	if err != nil {
		rec.Err = err.Error()
	}
	op.p.flight.push(rec)
}

// StageRecord is one timed stage inside a retained span.
type StageRecord struct {
	Name  string  `json:"name"`
	DurUS float64 `json:"dur_us"`
}

// SpanRecord is one retained span in the flight recorder.
type SpanRecord struct {
	Verb   string        `json:"verb"`
	Tenant string        `json:"tenant"`
	Region string        `json:"region,omitempty"`
	Start  time.Time     `json:"start"`
	DurUS  float64       `json:"dur_us"`
	Stages []StageRecord `json:"stages,omitempty"`
	Err    string        `json:"err,omitempty"`
	// Why records the retention reason: "sampled", "error", or "slow".
	Why string `json:"why"`
}

// flightRing is the bounded overwrite-oldest span store. Retention is
// rare (head-sampled + errors + slow path), so a plain mutex ring is
// cheap enough.
type flightRing struct {
	mu   sync.Mutex
	buf  []SpanRecord
	next int
	full bool
	n    uint64 // total retained ever
}

func (f *flightRing) init(cap int) { f.buf = make([]SpanRecord, cap) }

func (f *flightRing) push(rec SpanRecord) {
	f.mu.Lock()
	if f.next == len(f.buf) {
		f.next = 0
		f.full = true
	}
	f.buf[f.next] = rec
	f.next++
	f.n++
	f.mu.Unlock()
}

// Flight returns up to n retained spans, oldest first (all when n <= 0).
// Nil-safe.
func (p *Plane) Flight(n int) []SpanRecord {
	if p == nil {
		return nil
	}
	f := &p.flight
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []SpanRecord
	if f.full {
		out = make([]SpanRecord, 0, len(f.buf))
		out = append(out, f.buf[f.next:]...)
		out = append(out, f.buf[:f.next]...)
	} else {
		out = append([]SpanRecord(nil), f.buf[:f.next]...)
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// FlightRetained reports total spans ever retained (including ones the
// ring has since overwritten).
func (p *Plane) FlightRetained() uint64 {
	if p == nil {
		return 0
	}
	p.flight.mu.Lock()
	defer p.flight.mu.Unlock()
	return p.flight.n
}
