package exp

import (
	"fmt"
	"time"

	"declnet/internal/metrics"
	"declnet/internal/sim"
)

// Experiment is one runnable experiment with defaults chosen so the whole
// suite finishes in seconds; benches sweep wider.
type Experiment struct {
	ID    string
	Title string
	Run   func() (*metrics.Table, error)
}

// All returns the experiment registry in paper order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Fig-1 boxes & knobs", E1BoxCount},
		{"E2", "component catalog (Table 1)", E2Catalog},
		{"E3", "routing-table scalability", func() (*metrics.Table, error) {
			return E3RoutingScale([]int{1000, 5000, 20000}, 8, 42)
		}},
		{"E4", "permit-list scalability", func() (*metrics.Table, error) {
			return E4PermitScale([]int{1000, 5000, 20000}, 8, 50*time.Millisecond, 42)
		}},
		{"E5", "egress-quota enforcement", func() (*metrics.Table, error) {
			return E5QuotaEnforce([]int{50, 200, 1000},
				[]sim.Time{10 * time.Millisecond, 100 * time.Millisecond, 500 * time.Millisecond}, 42)
		}},
		{"E6", "dedicated vs potato QoS", func() (*metrics.Table, error) {
			return E6QoSPotato(500, 42)
		}},
		{"E7", "security equivalence", func() (*metrics.Table, error) {
			return E7Security(10, 42)
		}},
		{"E8", "cross-cloud migration", func() (*metrics.Table, error) {
			return E8Migration(42)
		}},
		{"E9", "hot vs cold potato", func() (*metrics.Table, error) {
			return E9Potato(300, 42)
		}},
		{"E10", "SIP availability", func() (*metrics.Table, error) {
			return E10Availability(200, 42)
		}},
		{"E11", "availability drill (fault injection)", func() (*metrics.Table, error) {
			return E11AvailabilityDrill(200, 42)
		}},
		{"E12", "observability: diagnosis quality + overhead", func() (*metrics.Table, error) {
			return E12Observability(2000, 42)
		}},
		{"E13", "million-endpoint scale drill (sharded control plane)", func() (*metrics.Table, error) {
			return E13ScaleDrill(e13Tier)
		}},
		{"E14", "live SLO plane: noisy-neighbor detection", func() (*metrics.Table, error) {
			return E14NoisyNeighbor(42)
		}},
		{"E15", "chaos soak: durable intent, crash/restart, reconciliation", func() (*metrics.Table, error) {
			return E15ChaosSoak(42, e15Rounds)
		}},
	}
}

// ByID finds one experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q", id)
}
