package exp

import (
	"regexp"
	"strings"
	"testing"
)

// TestE14Shape checks the detector table's structure without pinning any
// timing value: the breach must be detected and attributed to the right
// shard, the flight recorder and lag sampler must report their
// deterministic counts, and every wall-clock cell must be maskable.
func TestE14Shape(t *testing.T) {
	tbl, err := E14NoisyNeighbor(7) // different seed from the golden run
	if err != nil {
		t.Fatal(err)
	}
	text := tbl.Text()
	for _, want := range []string{
		"breach detected",
		"victim shard flagged",
		"observer@cloudA/a-east",
		"suspected noisy neighbor",
		"noisy@cloudB/b-east",
		"attribution correct",
		"slo-breach event in decision trace",
		"error spans retained in flight (why=error)",
		"live permit-lag samples resolved",
		"detection gate",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("table missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "FAIL") {
		t.Errorf("detection gate failed:\n%s", text)
	}
	// After masking, no wall-clock cell may survive: any remaining float
	// is a timing value the golden would pin across hosts.
	masked := normalize("E14", text)
	if !strings.Contains(masked, "<wall-clock>") {
		t.Errorf("normalize(E14) masked nothing:\n%s", masked)
	}
	if leak := regexp.MustCompile(`\d+\.\d+`).FindString(masked); leak != "" && leak != "0.00" {
		t.Errorf("unmasked float %q survives normalization:\n%s", leak, masked)
	}
}
