package exp

import (
	"fmt"
	"time"

	"declnet/internal/core"
	"declnet/internal/metrics"
	"declnet/internal/netsim"
	"declnet/internal/qos"
	"declnet/internal/sim"
	"declnet/internal/topo"
)

// E6QoSPotato answers §6(ii): does the declarative model's cold-potato +
// egress-guarantee combination approximate a dedicated connection?
//
// Over the Fig-1 world it measures, for the inter-cloud pair (analytics in
// cloud A <-> database in cloud B) and the cloud-to-on-prem pair, under
// three transports:
//
//   - dedicated: the baseline's provisioned DX/ER circuits via the IXP,
//   - cold: declarative cold-potato over the provider backbone,
//   - hot: declarative hot-potato over the public internet,
//
// the RTT distribution, jitter, delivery rate, and the completion time of
// a 1 GB bulk transfer.
func E6QoSPotato(probes int, seed int64) (*metrics.Table, error) {
	if probes <= 0 {
		probes = 500
	}
	w := topo.BuildFig1(2)
	eng := sim.New(seed)
	net := netsim.New(w.Graph, eng)

	src := topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1)
	dstCloud := topo.HostID(w.CloudB, w.RegionsB[0], "az1", 1)
	dstOnPrem := topo.NodeID("onprem/hq/host1")

	t := &metrics.Table{
		Title: "E6: dedicated circuits vs potato routing (§6(ii))",
		Columns: []string{"pair", "transport", "rtt p50", "rtt p99",
			"jitter p99-p50", "delivery %", "1GB FCT"},
	}
	pairs := []struct {
		name string
		dst  topo.NodeID
	}{
		{"cloudA->cloudB", dstCloud},
		{"cloudA->onprem", dstOnPrem},
	}
	for _, pair := range pairs {
		for _, policy := range []qos.PotatoPolicy{qos.Dedicated, qos.ColdPotato, qos.HotPotato} {
			row, err := e6Measure(net, w.Graph, policy, src, pair.dst, probes)
			if err != nil {
				return nil, err
			}
			t.AddRow(pair.name, policy.String(),
				row.p50.Round(10*time.Microsecond).String(),
				row.p99.Round(10*time.Microsecond).String(),
				(row.p99 - row.p50).Round(10*time.Microsecond).String(),
				fmt.Sprintf("%.2f", row.delivery*100),
				row.fct.Round(time.Millisecond).String())
		}
	}
	t.Notes = append(t.Notes,
		"dedicated = baseline DX/ER circuits via the exchange; cold/hot = declarative potato profiles",
		"the paper conjectures cold-potato + egress guarantees approximates dedicated (§4, §6(ii))")
	t.AddNotef("solver cost: %d recomputes, %d flows touched, %d links touched",
		net.Recomputes, net.FlowsTouched, net.LinksTouched)
	return t, nil
}

type e6Row struct {
	p50, p99 time.Duration
	delivery float64
	fct      time.Duration
}

func e6Measure(net *netsim.Network, g *topo.Graph, policy qos.PotatoPolicy, src, dst topo.NodeID, probes int) (e6Row, error) {
	path, err := qos.PathFor(g, policy, src, dst)
	if err != nil {
		return e6Row{}, err
	}
	var rtts metrics.Summary
	delivered := 0
	for i := 0; i < probes; i++ {
		rtts.Observe(float64(net.RTT(path)))
		if net.Delivered(path) {
			delivered++
		}
	}
	// Bulk transfer: 1 GB alone on the path (relative FCT across
	// transports is the comparison; contention is E5's subject).
	var fct time.Duration
	if _, err := net.StartFlow(&netsim.Flow{
		Path: path, Size: 1e9,
		OnDone: func(d time.Duration) { fct = d },
	}); err != nil {
		return e6Row{}, err
	}
	net.Eng.Run()
	return e6Row{
		p50:      time.Duration(rtts.Quantile(0.5)),
		p99:      time.Duration(rtts.Quantile(0.99)),
		delivery: float64(delivered) / float64(probes),
		fct:      fct,
	}, nil
}

// E9Potato isolates the hot-vs-cold comparison of §4's QoS section across
// client locations: every region of both clouds probing a server in cloud
// B's east region, under both potato profiles, through the full
// declarative data path (permit admission included).
func E9Potato(probes int, seed int64) (*metrics.Table, error) {
	if probes <= 0 {
		probes = 300
	}
	d, err := BuildDeclarativeFig1(seed, 2)
	if err != nil {
		return nil, err
	}
	c := d.Cloud
	w := d.World

	t := &metrics.Table{
		Title:   "E9: hot vs cold potato by client location (§4 QoS)",
		Columns: []string{"client region", "policy", "rtt p50", "rtt p99", "delivery %"},
	}
	clients := []struct {
		prov   *core.Provider
		region string
		node   topo.NodeID
	}{
		{d.ProvA, w.RegionsA[0], topo.HostID(w.CloudA, w.RegionsA[0], "az2", 2)},
		{d.ProvA, w.RegionsA[1], topo.HostID(w.CloudA, w.RegionsA[1], "az1", 2)},
		{d.ProvB, w.RegionsB[1], topo.HostID(w.CloudB, w.RegionsB[1], "az1", 2)},
	}
	for _, cl := range clients {
		eip, err := cl.prov.RequestEIP(Tenant, cl.node)
		if err != nil {
			return nil, err
		}
		if err := d.ProvB.Permit(Tenant, d.DBService, exactEntry(eip)); err != nil {
			return nil, err
		}
		for _, policy := range []qos.PotatoPolicy{qos.HotPotato, qos.ColdPotato} {
			cl.prov.SetPotato(Tenant, policy)
			var rtts metrics.Summary
			delivered := 0
			for i := 0; i < probes; i++ {
				rtt, ok, err := c.Probe(Tenant, eip, d.DBService)
				if err != nil {
					return nil, err
				}
				rtts.Observe(float64(rtt))
				if ok {
					delivered++
				}
			}
			t.AddRow(cl.prov.Name+"/"+cl.region, policy.String(),
				time.Duration(rtts.Quantile(0.5)).Round(10*time.Microsecond).String(),
				time.Duration(rtts.Quantile(0.99)).Round(10*time.Microsecond).String(),
				fmt.Sprintf("%.2f", float64(delivered)/float64(probes)*100))
		}
	}
	t.Notes = append(t.Notes,
		"probes traverse the full declarative data path: permit admission, SIP balancing, potato path")
	t.AddNotef("solver cost: %d recomputes, %d flows touched, %d links touched",
		c.Net.Recomputes, c.Net.FlowsTouched, c.Net.LinksTouched)
	return t, nil
}
