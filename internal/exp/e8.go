package exp

import (
	"fmt"

	"declnet/internal/addr"
	"declnet/internal/cloudapi"
	"declnet/internal/core"
	"declnet/internal/gateway"
	"declnet/internal/metrics"
	"declnet/internal/permit"
	"declnet/internal/topo"
	"declnet/internal/vnet"
)

// E8Migration tests the §5 claim that "any migration between clouds will
// become incredibly simple as the basic interface will be constant
// between clouds."
//
// It moves the analytics tier (two workers plus their connectivity to the
// database service) from cloud A to cloud B under both models and counts
// what the tenant had to do:
//
//   - baseline: rebuild the tier with the destination cloud's facade —
//     new VNet, subnets, NSGs, hub connection, routes — in the
//     destination's own vocabulary (the concepts column), then update the
//     database-side NSG trust.
//   - declarative: release the old EIPs, request new ones at cloud B,
//     rebind, and refresh permit lists — the same five verbs.
func E8Migration(seed int64) (*metrics.Table, error) {
	// ---- Baseline migration ---------------------------------------------
	base, err := BuildBaselineFig1()
	if err != nil {
		return nil, err
	}
	before := base.Env.Ledger.Snapshot()
	conceptsBefore := conceptSet(base.Env.Ledger.Concepts())

	// Rebuild the analytics tier on a cloud the tenant has never used —
	// a gcp-like provider with its own vocabulary (global networks,
	// tag-selected firewall rules).
	az := base.Azure
	gcp := cloudapi.NewGCP(base.Env, "c-proj")
	vNew, err := gcp.CreateNetwork("net-analytics-c", "10.6.0.0/16", false)
	if err != nil {
		return nil, err
	}
	if err := gcp.CreateSubnetwork("net-analytics-c", "work", "c-east1", "10.6.1.0/24"); err != nil {
		return nil, err
	}
	all := addr.MustParsePrefix("0.0.0.0/0")
	tenNet := addr.MustParsePrefix("10.0.0.0/8")
	if err := gcp.CreateFirewallRule("net-analytics-c", "allow-spark", "spark",
		vnet.SGRule{Proto: vnet.TCP, PortFrom: 7077, PortTo: 7077, Source: tenNet}, true); err != nil {
		return nil, err
	}
	if err := gcp.CreateFirewallRule("net-analytics-c", "allow-egress", "spark",
		vnet.SGRule{Source: all}, false); err != nil {
		return nil, err
	}
	for i := 1; i <= 2; i++ {
		if _, err := gcp.CreateInstance("net-analytics-c", fmt.Sprintf("spark-c-%d", i), "work", "spark"); err != nil {
			return nil, err
		}
	}
	// Attach the new network to the existing hub and route to the db.
	if _, err := az.ConnectVNetToHub(base.TGWB, vNew); err != nil {
		return nil, err
	}
	if err := gcp.CreateRoute("net-analytics-c", "work", "10.3.0.0/16", vnet.Target{Kind: vnet.TTGW, ID: base.TGWB.ID}); err != nil {
		return nil, err
	}
	// The database NSG trusted 10.0.0.0/16; the tier now lives in
	// 10.6.0.0/16, so the trust rule must change too (CIDR coupling —
	// exactly the fragility §3 complains about).
	if err := az.AddSecurityRule("nsg-db", 120, "Inbound", vnet.Allow, vnet.TCP, 5432, 5432, "10.6.0.0/16"); err != nil {
		return nil, err
	}
	if err := az.AssociateNSGToSubnet(base.DB, "nsg-db", "data"); err != nil {
		return nil, err
	}
	if err := az.UpdateNSGBackedSecurityGroup(base.DB, "nsg-db"); err != nil {
		return nil, err
	}
	// The rebuilt tier must actually reach the database.
	inst, _ := vNew.Instance("spark-c-1")
	if v := base.Env.Fabric.Evaluate(
		gateway.Source{Kind: gateway.FromInstance, VPCID: vNew.ID, InstanceID: inst.ID},
		vnet.Packet{Src: inst.PrivateIP, Dst: base.DB1.PrivateIP, Proto: vnet.TCP, DstPort: 5432}); !v.Delivered {
		return nil, fmt.Errorf("exp: migrated baseline tier cannot reach db: %v", v)
	}
	baseDiff := base.Env.Ledger.Since(before)
	conceptsAfter := conceptSet(base.Env.Ledger.Concepts())
	newConcepts := 0
	for c := range conceptsAfter {
		if !conceptsBefore[c] {
			newConcepts++
		}
	}

	// ---- Declarative migration ------------------------------------------
	decl, err := BuildDeclarativeFig1(seed, 2)
	if err != nil {
		return nil, err
	}
	calls := 0
	// Release the two analytics EIPs at cloud A.
	for _, e := range []addr.IP{decl.Spark1, decl.Spark2} {
		if err := decl.ProvA.ReleaseEIP(Tenant, e); err != nil {
			return nil, err
		}
		calls++
	}
	// Request replacements at cloud B (same verb, different provider).
	w := decl.World
	n1, err := decl.ProvB.RequestEIP(Tenant, topo.HostID(w.CloudB, w.RegionsB[0], "az1", 2))
	if err != nil {
		return nil, err
	}
	calls++
	n2, err := decl.ProvB.RequestEIP(Tenant, topo.HostID(w.CloudB, w.RegionsB[0], "az2", 2))
	if err != nil {
		return nil, err
	}
	calls++
	// Refresh the permit lists that referenced the old workers.
	refresh := func(p interface {
		SetPermitList(string, addr.IP, []permit.Entry, ...string) error
	}, dst addr.IP, srcs ...addr.IP) error {
		calls++
		entries := make([]permit.Entry, len(srcs))
		for i, s := range srcs {
			entries[i] = addr.NewPrefix(s, 32)
		}
		return p.SetPermitList(Tenant, dst, entries)
	}
	if err := refresh(decl.ProvB, decl.DBService, n1, n2, decl.Alerts); err != nil {
		return nil, err
	}
	if err := refresh(decl.ProvB, decl.DB1, n1, n2, decl.Alerts); err != nil {
		return nil, err
	}
	if err := refresh(decl.ProvB, decl.DB2, n1, n2, decl.Alerts); err != nil {
		return nil, err
	}
	if err := refresh(decl.ProvA, decl.Logs, n1, n2, decl.WebSrv); err != nil {
		return nil, err
	}
	if err := refresh(decl.ProvOnPrem, decl.Alerts, n1, n2); err != nil {
		return nil, err
	}
	// Permit the workers to reach each other.
	if err := refresh(decl.ProvB, n1, n2, decl.WebSrv); err != nil {
		return nil, err
	}
	if err := refresh(decl.ProvB, n2, n1, decl.WebSrv); err != nil {
		return nil, err
	}
	// Move the QoS grant to the new region.
	if err := decl.ProvB.SetQoS(Tenant, w.RegionsB[0], 10*topo.Gbps); err != nil {
		return nil, err
	}
	calls++
	// Verify the moved tier still reaches the database service.
	conn, err := decl.Cloud.Connect(Tenant, n1, decl.DBService, core.ConnectOpts{SizeBytes: -1})
	if err != nil {
		return nil, fmt.Errorf("exp: migrated tier cannot reach db: %w", err)
	}
	conn.Close()

	t := &metrics.Table{
		Title:   "E8: migrating the analytics tier cloud A -> cloud B (§5)",
		Columns: []string{"metric", "baseline", "declarative"},
	}
	t.AddRow("provisioning steps", baseDiff.StepsTaken, calls)
	t.AddRow("resources touched", baseDiff.ResourcesChanged, 0)
	t.AddRow("parameters changed", baseDiff.ParamsChanged, 0)
	t.AddRow("new concepts learned", newConcepts, 0)
	t.Notes = append(t.Notes,
		"baseline rebuild uses the destination cloud's own vocabulary and re-couples CIDR trust rules",
		"declarative migration reuses the same five verbs against a different provider")
	return t, nil
}

func conceptSet(cs []string) map[string]bool {
	out := make(map[string]bool, len(cs))
	for _, c := range cs {
		out[c] = true
	}
	return out
}
