package exp

import (
	"strings"
	"testing"
)

// TestE12DiagnosisQuality enforces the acceptance bar directly: Explain
// must name the injected root cause in at least 90% of the fault
// scenarios (the suite targets 100%; any MISS row lists the scenario).
func TestE12DiagnosisQuality(t *testing.T) {
	scenarios := e12Scenarios()
	diagnosed := 0
	var missed []string
	for _, sc := range scenarios {
		verdict, match, err := e12RunScenario(sc, 42)
		if err != nil {
			t.Fatalf("scenario %q: %v", sc.name, err)
		}
		if match {
			diagnosed++
		} else {
			missed = append(missed, sc.name+" (got "+verdict+", want "+sc.expectLabel()+")")
		}
	}
	if frac := float64(diagnosed) / float64(len(scenarios)); frac < 0.9 {
		t.Fatalf("diagnosed %d/%d (%.0f%%), want >= 90%%; missed: %s",
			diagnosed, len(scenarios), frac*100, strings.Join(missed, "; "))
	}
}

// TestE12ArmsAgree pins the overhead harness's invariant: instrumentation
// must not change simulated behavior, only record it.
func TestE12ArmsAgree(t *testing.T) {
	const connects = 300
	instr, err := e12ArmOnce(true, connects, 42)
	if err != nil {
		t.Fatal(err)
	}
	strip, err := e12ArmOnce(false, connects, 42)
	if err != nil {
		t.Fatal(err)
	}
	if instr.connects != strip.connects || instr.errors != strip.errors {
		t.Fatalf("arms diverged: instrumented %d connects / %d errors, stripped %d / %d",
			instr.connects, instr.errors, strip.connects, strip.errors)
	}
	if instr.traceEvents == 0 || instr.samples == 0 {
		t.Fatalf("instrumented arm recorded nothing: %d events, %d samples",
			instr.traceEvents, instr.samples)
	}
	if strip.traceEvents != 0 || strip.samples != 0 {
		t.Fatalf("stripped arm leaked instrumentation: %d events, %d samples",
			strip.traceEvents, strip.samples)
	}
}
