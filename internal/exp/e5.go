package exp

import (
	"fmt"
	"math/rand"
	"time"

	"declnet/internal/metrics"
	"declnet/internal/qos"
	"declnet/internal/sim"
)

// demandFlow is a synthetic offered load for limiter experiments.
type demandFlow struct {
	demand float64
	cap    float64
}

func (f *demandFlow) SetCap(bps float64) { f.cap = bps }
func (f *demandFlow) Demand() float64    { return f.demand }

func (f *demandFlow) rate() float64 {
	if f.cap > 0 && f.cap < f.demand {
		return f.cap
	}
	return f.demand
}

// E5QuotaEnforce answers §6(i)'s third question: "Can egress bandwidth
// quotas be scalably enforced?"
//
// A regional quota is enforced by a distributed limiter over E enforcement
// points while flows churn (Poisson arrivals, exponential holding times,
// heavy-tailed demands). For each (flow count, control period) cell the
// table reports the relative enforcement error — how far the granted
// aggregate strays from min(quota, demand) — sampled right before each
// control round (worst case) and the violation overshoot.
func E5QuotaEnforce(flowCounts []int, periods []sim.Time, seed int64) (*metrics.Table, error) {
	t := &metrics.Table{
		Title: "E5: distributed egress-quota enforcement error (§6(i))",
		Columns: []string{"flows", "period", "mean err %", "p99 err %",
			"overshoot %", "rounds"},
	}
	// Flatten the (flows, period) grid into independent cells; each builds
	// its own engine, so the grid can run on the parallel sweep driver.
	type cellKey struct {
		n      int
		period sim.Time
	}
	var cells []cellKey
	for _, n := range flowCounts {
		for _, period := range periods {
			cells = append(cells, cellKey{n, period})
		}
	}
	results, err := sweepCells(len(cells), func(cell int) (e5Result, error) {
		return e5Run(cells[cell].n, cells[cell].period, seed), nil
	})
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		t.AddRow(cells[i].n, cells[i].period.String(),
			fmt.Sprintf("%.2f", res.meanErr*100),
			fmt.Sprintf("%.2f", res.p99Err*100),
			fmt.Sprintf("%.2f", res.overshoot*100),
			res.rounds)
	}
	t.Notes = append(t.Notes,
		"quota 1 Gbps over 16 enforcement points; flows churn with 200ms mean holding time",
		"error sampled just before each control round (staleest grants)")
	return t, nil
}

type e5Result struct {
	meanErr   float64
	p99Err    float64
	overshoot float64
	rounds    uint64
}

func e5Run(flows int, period sim.Time, seed int64) e5Result {
	const (
		quota     = 1e9
		enforcers = 16
		horizon   = 5 * time.Second
	)
	eng := sim.New(seed)
	rng := eng.NewRand()
	enf := make([]*qos.Enforcer, enforcers)
	for i := range enf {
		enf[i] = qos.NewEnforcer(fmt.Sprintf("e%d", i))
	}
	lim := qos.NewDistributedLimiter(eng, quota, period, enf...)

	// Churn: keep ~`flows` alive; each lives ~200ms then is replaced.
	live := 0
	var spawn func()
	spawn = func() {
		if live >= flows {
			// Try again shortly.
			eng.After(10*time.Millisecond, spawn)
			return
		}
		e := enf[rng.Intn(enforcers)]
		f := &demandFlow{demand: heavyDemand(rng)}
		e.Attach(f)
		live++
		hold := sim.Time(rng.ExpFloat64() * float64(200*time.Millisecond))
		eng.After(hold, func() {
			e.Detach(f)
			live--
		})
		eng.After(sim.Time(rng.ExpFloat64()*float64(200*time.Millisecond))/sim.Time(flows)+1, spawn)
	}
	// Seed the population quickly.
	for i := 0; i < flows; i++ {
		eng.After(sim.Time(i)*time.Microsecond, spawn)
	}

	var sum, count, overshoot float64
	var errSummary metrics.Summary
	// Sample error just BEFORE each control round fires: the limiter's
	// ticker and a same-period sampler would collide (and the limiter,
	// created first, runs first), so the sampler is phase-shifted to
	// period - 1% — the staleest possible grants.
	sample := func() {
		e := lim.EnforcementError()
		errSummary.Observe(e)
		sum += e
		count++
		if agg := lim.AggregateActual(); agg > quota && (agg-quota)/quota > overshoot {
			overshoot = (agg - quota) / quota
		}
	}
	var arm func()
	arm = func() {
		eng.After(period, func() {
			sample()
			arm()
		})
	}
	// Warm up for 1s before measuring so population build-up does not
	// dominate the error statistics.
	eng.After(time.Second+period-period/100, func() {
		sample()
		arm()
	})
	eng.RunUntil(horizon)
	lim.Stop()

	res := e5Result{rounds: lim.Rounds}
	if count > 0 {
		res.meanErr = sum / count
	}
	res.p99Err = errSummary.Quantile(0.99)
	res.overshoot = overshoot
	return res
}

// heavyDemand draws a lognormal-ish per-flow demand around 100 Mbps.
func heavyDemand(rng *rand.Rand) float64 {
	d := 100e6 * (0.2 + rng.ExpFloat64())
	if d > 2e9 {
		d = 2e9
	}
	return d
}
