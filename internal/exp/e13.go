package exp

import (
	"fmt"
	"time"

	"declnet/internal/metrics"
	"declnet/internal/scale"
)

// e13StormGate is the isolation acceptance bound: a mutation storm
// confined to one (tenant, region) shard may degrade another shard's p99
// connect latency by at most this factor over idle.
const e13StormGate = 1.5

// e13Tier is the drill the registry runs: the 10^5-EIP / 200-tenant tier
// (finishes in about a second). cmd/expdriver's -scale-* flags raise it
// toward 10^6; the golden test always runs this default.
var e13Tier = scale.DefaultConfig()

// SetScaleTier overrides the E13 drill size (zero keeps a dimension at
// its default). Used by cmd/expdriver for the full 10^6-EIP tier; the
// resulting table's deterministic cells change with the tier, so golden
// comparison only applies at the default.
func SetScaleTier(eips, tenants, regions int) {
	if eips > 0 {
		e13Tier.EIPs = eips
	}
	if tenants > 0 {
		e13Tier.Tenants = tenants
	}
	if regions > 0 {
		e13Tier.Regions = regions
	}
}

// E13ScaleDrill answers the paper's §6 scalability question for this
// codebase: can the control plane hold 10^5–10^6 endpoint IPs across
// hundreds of tenants and still give each tenant flat connect latency,
// microsecond permit propagation, and isolation from other tenants'
// mutation storms? The drill (internal/scale) exercises the real core
// API — grant, permit, churn, Zipf connect fan-out, a confined permit
// storm — against the sharded (tenant, region) control plane.
//
// Counters (endpoints, shards, churn, probes, denials) are pure
// functions of the config and seed; the golden test pins them. Timing
// cells are measured wall clock, rendered with us/ms/B//s/x suffixes so
// the golden mask can strip exactly them.
func E13ScaleDrill(cfg scale.Config) (*metrics.Table, error) {
	m, err := scale.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("exp: E13 drill: %w", err)
	}
	t := &metrics.Table{
		Title:   "E13: million-endpoint scale drill — sharded (tenant, region) control plane",
		Columns: []string{"metric", "value"},
	}
	t.AddRow("endpoints onboarded", fmt.Sprintf("%d", m.Onboarded))
	t.AddRow("tenants / regions", fmt.Sprintf("%d / %d", cfg.Tenants, cfg.Regions))
	t.AddRow("(tenant, region) shards materialized", fmt.Sprintf("%d", m.Shards))
	t.AddRow("churn events applied", fmt.Sprintf("%d", m.ChurnEvents))
	t.AddRow("connect probes issued", fmt.Sprintf("%d", m.Probes))
	t.AddRow("cross-region picks denied (default-off)", fmt.Sprintf("%d", m.ProbeDenied))
	t.AddRow("onboard wall clock", msStr(m.OnboardWall))
	t.AddRow("onboard grant throughput", fmt.Sprintf("%.0f/s", m.GrantsPerSec))
	t.AddRow("provider state per endpoint", fmt.Sprintf("%.0fB", m.BytesPerEP))
	t.AddRow("permit propagation lag p50 / p99", usStr(m.PermitLagP50)+" / "+usStr(m.PermitLagP99))
	t.AddRow("connect latency p50 / p99", usStr(m.ConnectP50)+" / "+usStr(m.ConnectP99))
	t.AddRow("observer p99 idle / under storm", usStr(m.StormIdleP99)+" / "+usStr(m.StormP99))
	t.AddRow("storm/idle p99 ratio", fmt.Sprintf("%.2fx", m.StormIdleRatio))
	gate := "pass"
	if m.StormIdleRatio <= 0 || m.StormIdleRatio > e13StormGate {
		gate = "FAIL"
	}
	t.AddRow("storm isolation gate", gate)
	t.AddNotef("drill: %d EIPs over %d tenants, Zipf(%.2g) fan-out, %d-op permit storm confined to one shard",
		cfg.EIPs, cfg.Tenants, cfg.ZipfSkew, cfg.StormOps*cfg.Workers)
	t.AddNotef("gate: a storm in one (tenant, region) shard may degrade another shard's p99 by at most %.2g of idle (best paired ratio of 3 reps)", e13StormGate)
	t.AddNotef("timing cells are measured wall clock and masked in the golden; full tier: `make scale`")
	return t, nil
}

func usStr(d time.Duration) string {
	return fmt.Sprintf("%.1fus", float64(d.Nanoseconds())/1e3)
}

func msStr(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d.Nanoseconds())/1e6)
}
