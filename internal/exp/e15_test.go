package exp

import (
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestE15Shape checks the soak table's structure off the golden seed:
// every gate and accounting row must be present, the gate must pass,
// and normalization must mask the one measured wall-clock cell.
func TestE15Shape(t *testing.T) {
	tbl, err := E15ChaosSoak(7, 5) // different seed and tier from the golden run
	if err != nil {
		t.Fatal(err)
	}
	text := tbl.Text()
	for _, want := range []string{
		"rounds completed",
		"mutations journaled",
		"crash/restart cycles",
		"recoveries byte-identical to oracle",
		"divergence windows opened/closed",
		"repaired by reconciler",
		"healed by crash recovery",
		"repairs traced (reconcile:* <- drift:*)",
		"state digest matches",
		"explain verdicts compared/mismatched",
		"pool grants identical across worlds",
		"soak gate",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("table missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "FAIL") {
		t.Errorf("soak gate failed:\n%s", text)
	}
	masked := normalize("E15", text)
	if !strings.Contains(masked, "<wall-clock>") {
		t.Errorf("normalize(E15) masked nothing:\n%s", masked)
	}
	if leak := regexp.MustCompile(`\d+\.\d+`).FindString(masked); leak != "" {
		t.Errorf("unmasked float %q survives normalization:\n%s", leak, masked)
	}
}

// TestChaosSoakFull is the long-form E15 run `make soak` drives:
// DECLNET_SOAK_ROUNDS scales the round count (48 rounds = 24 virtual
// hours of fault/heal and churn with 12 crash/restart cycles). Without
// the env var it runs the golden tier, so plain `go test` keeps the
// soak protocol itself covered.
func TestChaosSoakFull(t *testing.T) {
	rounds := e15Rounds
	if v := os.Getenv("DECLNET_SOAK_ROUNDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad DECLNET_SOAK_ROUNDS=%q: %v", v, err)
		}
		rounds = n
	}
	tbl, err := E15ChaosSoak(42, rounds)
	if err != nil {
		t.Fatal(err)
	}
	text := tbl.Text()
	t.Logf("\n%s", text)
	if strings.Contains(text, "FAIL") {
		t.Fatalf("soak gate failed after %d rounds", rounds)
	}
}
