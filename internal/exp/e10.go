package exp

import (
	"fmt"
	"time"

	"declnet/internal/appliance"
	"declnet/internal/complexity"
	"declnet/internal/core"
	"declnet/internal/metrics"
	"declnet/internal/netsim"
	"declnet/internal/sim"
	"declnet/internal/topo"
	"declnet/internal/vnet"
)

// E10Availability tests §4's Availability story: the bind() verb with
// provider-managed load balancing should match what tenants get from a
// self-configured load-balancer appliance — at zero configuration.
//
// Both models run the same scenario: a service with three backends takes
// an open-loop request stream; one backend dies mid-run and is detected
// by health checks after the same detection delay. The table reports the
// request error rate, the time to full recovery, and what the tenant had
// to configure to get the failover.
func E10Availability(requestRate float64, seed int64) (*metrics.Table, error) {
	if requestRate <= 0 {
		requestRate = 200
	}
	const (
		horizon        = 10 * time.Second
		failAt         = 3 * time.Second
		detectionDelay = 1500 * time.Millisecond
	)

	// ---- Declarative: SIP + bind, provider runs the balancer. -----------
	declErrors, declTotal, declRecovery, declNet, err := e10Declarative(requestRate, horizon, failAt, detectionDelay, seed)
	if err != nil {
		return nil, err
	}

	// ---- Baseline: tenant-provisioned ALB with target group. -------------
	var led complexity.Ledger
	lb := appliance.NewLoadBalancer("alb", appliance.ApplicationLB, &led)
	tg := appliance.NewTargetGroup("tg")
	tg.HealthCheckPath, tg.HealthCheckInterval = "/healthz", int(detectionDelay/time.Second)
	for i := 1; i <= 3; i++ {
		tg.Register(fmt.Sprintf("i-%d", i))
	}
	lb.AddTargetGroup(tg, &led)
	if err := lb.SetDefault("tg", &led); err != nil {
		return nil, err
	}
	baseErrors, baseTotal, baseRecovery := e10Baseline(lb, tg, requestRate, horizon, failAt, detectionDelay, seed)

	t := &metrics.Table{
		Title:   "E10: backend failure under provider LB vs tenant LB appliance (§4 Availability)",
		Columns: []string{"metric", "baseline ALB", "declarative bind()"},
	}
	t.AddRow("requests", baseTotal, declTotal)
	t.AddRow("failed requests", baseErrors, declErrors)
	t.AddRow("error rate %", pct(baseErrors, baseTotal), pct(declErrors, declTotal))
	t.AddRow("recovery after failure", baseRecovery.Round(time.Millisecond).String(), declRecovery.Round(time.Millisecond).String())
	t.AddRow("tenant config params", led.Params(), 0)
	t.AddRow("tenant boxes", led.Boxes(), 0)
	t.Notes = append(t.Notes,
		"identical failure (1 of 3 backends at t=3s) and health-detection delay (1.5s) in both models",
		"declarative failover needs zero tenant configuration: bind() carries the intent")
	t.AddNotef("declarative solver cost: %d recomputes, %d flows touched, %d links touched",
		declNet.Recomputes, declNet.FlowsTouched, declNet.LinksTouched)
	return t, nil
}

func pct(part, whole int) string {
	if whole == 0 {
		return "0"
	}
	return fmt.Sprintf("%.2f", float64(part)/float64(whole)*100)
}

func e10Declarative(rate float64, horizon, failAt, detect time.Duration, seed int64) (errors, total int, recovery time.Duration, net *netsim.Network, err error) {
	d, err := BuildDeclarativeFig1(seed, 3)
	if err != nil {
		return 0, 0, 0, nil, err
	}
	c := d.Cloud
	w := d.World
	// Third backend joins the SIP.
	db3, err := d.ProvB.RequestEIP(Tenant, topo.HostID(w.CloudB, w.RegionsB[0], "az1", 3))
	if err != nil {
		return 0, 0, 0, nil, err
	}
	if err := d.ProvB.Bind(Tenant, db3, d.DBService, 1); err != nil {
		return 0, 0, 0, nil, err
	}
	dead := d.DB1
	var lastError sim.Time
	failTime := sim.Time(failAt)

	// Fail at t=failAt; provider health check marks it down after detect.
	c.Eng.Schedule(failTime+sim.Time(detect), func() {
		d.ProvB.MarkHealth(dead, false)
	})
	// Open-loop requests.
	gap := sim.Time(float64(time.Second) / rate)
	var tick func()
	tick = func() {
		if c.Eng.Now() >= sim.Time(horizon) {
			return
		}
		total++
		conn, cerr := c.Connect(Tenant, d.Spark1, d.DBService, core.ConnectOpts{SizeBytes: -1})
		if cerr != nil {
			errors++
			lastError = c.Eng.Now()
		} else {
			if conn.DstEIP == dead && c.Eng.Now() >= failTime {
				errors++
				lastError = c.Eng.Now()
			}
			conn.Close()
		}
		c.Eng.After(gap, tick)
	}
	c.Eng.After(0, tick)
	c.Eng.RunUntil(sim.Time(horizon))
	if lastError > failTime {
		recovery = time.Duration(lastError - failTime)
	}
	return errors, total, recovery, c.Net, nil
}

// e10Baseline replays the identical scenario against the tenant-built
// load balancer appliance: the same request stream, the same backend
// death, the same health-detection delay.
func e10Baseline(lb *appliance.LoadBalancer, tg *appliance.TargetGroup, rate float64, horizon, failAt, detect time.Duration, seed int64) (errors, total int, recovery time.Duration) {
	eng := sim.New(seed)
	const dead = "i-1"
	failTime := sim.Time(failAt)
	eng.Schedule(failTime+sim.Time(detect), func() {
		tg.SetHealth(dead, false)
	})
	var lastError sim.Time
	gap := sim.Time(float64(time.Second) / rate)
	var tick func()
	tick = func() {
		if eng.Now() >= sim.Time(horizon) {
			return
		}
		total++
		backend, err := lb.Route(appliance.Request{Path: "/orders", Flow: vnet.Packet{}})
		if err != nil || (backend == dead && eng.Now() >= failTime) {
			errors++
			lastError = eng.Now()
		}
		eng.After(gap, tick)
	}
	eng.After(0, tick)
	eng.RunUntil(sim.Time(horizon))
	if lastError > failTime {
		recovery = time.Duration(lastError - failTime)
	}
	return errors, total, recovery
}
