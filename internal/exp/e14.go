package exp

import (
	"fmt"
	"strings"
	"time"

	"declnet/internal/addr"
	"declnet/internal/core"
	"declnet/internal/metrics"
	"declnet/internal/obs"
	"declnet/internal/permit"
	"declnet/internal/slo"
	"declnet/internal/topo"
)

// E14 drill geometry. Windows are driven explicitly (AdvanceWindow), so
// the experiment is a pure function of its op sequence; only the wall
// clock inside each latency cell varies, and the golden masks exactly
// those cells.
const (
	// e14ProbesPerWindow gives the detector windows enough mass that a
	// single stray outlier (one cold probe leaking into a warm window, a
	// GC pause) cannot set the window p99: with 256 samples the 0.99
	// quantile excludes the top two.
	e14ProbesPerWindow = 256
	// e14StormPairs permit/revoke pairs per detection window — 512
	// mutation ops, comfortably over the detector's MinStormOps floor and
	// 4x-dominance test against the idle observer.
	e14StormPairs = 256
	// e14MaxWindows bounds the detection retry budget: the breach must
	// fire within this many (warm, storm) window pairs.
	e14MaxWindows = 6
	// e14ErrorProbes deny-path probes retained in the flight recorder.
	e14ErrorProbes = 3
)

// E14NoisyNeighbor is the live counterpart of E13's offline storm gate:
// the SLO plane watching a running world. An observer tenant in cloudA
// probes across its own regions while a noisy tenant storms permit
// mutations against its own shard in cloudB; a node fail/heal flap rides
// along with the storm (the churny-neighbor signature: every epoch bump
// wholesale-flushes the path cache, so the observer's probes recompute
// routes cold). The detector must flag the observer shard's p99 breach
// against its own trailing baseline, name the storming shard via the
// decision-trace cause chain, and land a slo-breach event in the
// victim's trace ring — all within a bounded number of windows.
func E14NoisyNeighbor(seed int64) (*metrics.Table, error) {
	w := topo.BuildFig1(2)
	c := core.NewCloud(seed, w.Graph)
	var pa, pb *core.Provider
	var err error
	if pa, err = c.AddProvider(w.CloudA, core.Config{
		EIPBase: addr.MustParsePrefix("100.64.0.0/10"),
		SIPBase: addr.MustParsePrefix("100.127.0.0/16"),
	}); err != nil {
		return nil, fmt.Errorf("exp: E14 world: %w", err)
	}
	if pb, err = c.AddProvider(w.CloudB, core.Config{
		EIPBase: addr.MustParsePrefix("104.0.0.0/8"),
		SIPBase: addr.MustParsePrefix("104.255.0.0/16"),
	}); err != nil {
		return nil, fmt.Errorf("exp: E14 world: %w", err)
	}
	if _, err = c.AddProvider("onprem", core.Config{
		EIPBase: addr.MustParsePrefix("108.0.0.0/8"),
		SIPBase: addr.MustParsePrefix("108.255.0.0/16"),
	}); err != nil {
		return nil, fmt.Errorf("exp: E14 world: %w", err)
	}
	tracer := obs.NewTracer(0)
	c.EnableObservability(tracer, nil)
	plane := slo.NewPlane(slo.Config{
		Window:           time.Hour, // rotation is explicit below
		SampleEvery:      1,
		HistSampleEvery:  1, // exact counts: the drill is the oracle
		LagSampleEvery:   1,
		MinWindowSamples: 16,
	})
	c.EnableSLO(plane)

	plane.SetObjective("observer", slo.Objective{
		ConnectP99:   100 * time.Millisecond,
		PermitLagP99: time.Second,
	})
	exact := func(ip addr.IP) permit.Entry { return addr.NewPrefix(ip, 32) }

	// Observer: one EIP per cloudA region, each permitting the other, so
	// cross-region probes exercise the real admission + path planes.
	obsEast, err := pa.RequestEIP("observer", topo.HostID(w.CloudA, "a-east", "az1", 1))
	if err != nil {
		return nil, err
	}
	obsWest, err := pa.RequestEIP("observer", topo.HostID(w.CloudA, "a-west", "az1", 1))
	if err != nil {
		return nil, err
	}
	if err := pa.SetPermitList("observer", obsEast, []permit.Entry{exact(addr.IP(obsWest))}); err != nil {
		return nil, err
	}
	if err := pa.SetPermitList("observer", obsWest, []permit.Entry{exact(addr.IP(obsEast))}); err != nil {
		return nil, err
	}
	// Noisy: one EIP in cloudB/b-east, the storm's confinement shard.
	noisyEIP, err := pb.RequestEIP("noisy", topo.HostID(w.CloudB, "b-east", "az1", 1))
	if err != nil {
		return nil, err
	}
	if err := pb.SetPermitList("noisy", noisyEIP, []permit.Entry{exact(addr.IP(noisyEIP))}); err != nil {
		return nil, err
	}
	obsShard := "observer@" + w.CloudA + "/a-east"
	noisyShard := "noisy@" + w.CloudB + "/b-east"

	// Warm-up (window generation 0): both directions once, which also
	// resolves the two pending permit-lag stamps from the setup
	// SetPermitLists on first admission fill.
	if _, _, err := c.Probe("observer", obsEast, addr.IP(obsWest)); err != nil {
		return nil, fmt.Errorf("exp: E14 warm-up: %w", err)
	}
	if _, _, err := c.Probe("observer", obsWest, addr.IP(obsEast)); err != nil {
		return nil, fmt.Errorf("exp: E14 warm-up: %w", err)
	}

	// The flapped node hosts nothing and sits off the probe path; its
	// heal is purely an epoch bump that chills the path cache.
	flapNode := topo.HostID(w.CloudB, "b-west", "az2", 2)
	inj := c.EnableFaults(core.FaultPolicy{}).Inj
	stormEntry := exact(addr.IP(obsEast)) // content is irrelevant to the storm

	var health slo.HealthReport
	var breach *slo.Breach
	for round := 0; round < e14MaxWindows && breach == nil; round++ {
		// Warm window: cache-hot probes become the trailing baseline.
		plane.AdvanceWindow()
		for i := 0; i < e14ProbesPerWindow; i++ {
			if _, _, err := c.Probe("observer", obsEast, addr.IP(obsWest)); err != nil {
				return nil, err
			}
		}
		plane.AdvanceWindow()
		// Storm window: the noisy tenant flaps permits on its own shard…
		for i := 0; i < e14StormPairs; i++ {
			if err := pb.Permit("noisy", addr.IP(noisyEIP), stormEntry); err != nil {
				return nil, err
			}
			if err := pb.Revoke("noisy", addr.IP(noisyEIP), stormEntry); err != nil {
				return nil, err
			}
		}
		// …while a node flap per probe keeps the observer's path cold.
		for i := 0; i < e14ProbesPerWindow; i++ {
			if err := inj.FailNode(flapNode); err != nil {
				return nil, err
			}
			if err := inj.RestoreNode(flapNode); err != nil {
				return nil, err
			}
			if _, _, err := c.Probe("observer", obsEast, addr.IP(obsWest)); err != nil {
				return nil, err
			}
		}
		health = plane.Health()
		for i := range health.Breaches {
			if health.Breaches[i].Shard == obsShard {
				breach = &health.Breaches[i]
				break
			}
		}
	}

	// Deny-path probes land error spans in the flight recorder (retained
	// regardless of sampling; here they are the freshest ring entries).
	for i := 0; i < e14ErrorProbes; i++ {
		if _, _, err := c.Probe("observer", obsEast, addr.IP(noisyEIP)); err == nil {
			return nil, fmt.Errorf("exp: E14: probe to unpermitted %s unexpectedly admitted", noisyEIP)
		}
	}
	errSpans := 0
	for _, sp := range plane.Flight(0) {
		if sp.Why == "error" && sp.Err != "" {
			errSpans++
		}
	}
	lagResolved := uint64(0)
	for _, s := range plane.Report("") {
		for _, sh := range s.Shards {
			lagResolved += sh.LagCount
		}
	}
	traced := "no"
	for _, ev := range tracer.Recent("observer", 0) {
		if ev.Kind == obs.SLOBreach {
			traced = "yes"
		}
	}

	t := &metrics.Table{
		Title:   "E14: live SLO plane — noisy-neighbor detection under a confined permit storm",
		Columns: []string{"metric", "value"},
	}
	t.AddRow("observer / noisy shards", obsShard+" / "+noisyShard)
	yn := func(ok bool) string {
		if ok {
			return "yes"
		}
		return "no"
	}
	t.AddRow("breach detected (cur p99 > 1.5x baseline)", yn(breach != nil))
	if breach != nil {
		t.AddRow("victim shard flagged", breach.Shard)
		t.AddRow("suspected noisy neighbor", breach.Suspect)
		t.AddRow("attribution correct", yn(breach.Suspect == noisyShard))
		t.AddRow("suspect mutation ops in breach window", fmt.Sprintf("%d", breach.SuspectOps))
		t.AddRow("cur / baseline window p99", fmt.Sprintf("%.1fus / %.1fus", breach.CurP99US, breach.BaseP99US))
		t.AddRow("breach ratio", fmt.Sprintf("%.2fx", breach.Ratio))
		t.AddRow("cause chain names suspect", yn(strings.Contains(breach.Cause, "noisy-neighbor:"+noisyShard)))
	}
	t.AddRow("slo-breach event in decision trace", traced)
	t.AddRow("error spans retained in flight (why=error)", fmt.Sprintf("%d", errSpans))
	t.AddRow("live permit-lag samples resolved", fmt.Sprintf("%d", lagResolved))
	objRow := "unregistered"
	for _, rep := range plane.Report("observer") {
		if rep.Tenant == "observer" && rep.Objective != nil {
			objRow = fmt.Sprintf("%s (burn %.2f)", yn(rep.Objective.Met), rep.Objective.ConnectBurnRate)
		}
	}
	t.AddRow("objective connect_p99<=100ms met", objRow)
	gate := "pass"
	if breach == nil || breach.Suspect != noisyShard || traced != "yes" ||
		errSpans != e14ErrorProbes || health.Status != "degraded" {
		gate = "FAIL"
	}
	t.AddRow("detection gate", gate)
	t.AddNotef("storm: %d permit flaps confined to %s; a node fail/heal flap per probe chills the observer's path cache",
		e14StormPairs*2, noisyShard)
	t.AddNotef("windows driven explicitly, %d probes each; the detector must fire within %d (warm, storm) pairs",
		e14ProbesPerWindow, e14MaxWindows)
	t.AddNotef("timing cells are measured wall clock and masked in the golden")
	return t, nil
}
