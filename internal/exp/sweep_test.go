package exp

import (
	"reflect"
	"testing"
	"time"

	"declnet/internal/metrics"
)

// The parallel sweep driver must produce byte-identical tables to a
// serial run: every cell owns an independent engine seeded the same way,
// and rows are emitted in cell order regardless of completion order.
// (E4 is excluded: its lookups/us column is a wall-clock measurement.)
func TestSweepParallelMatchesSerial(t *testing.T) {
	build := func() []*metrics.Table {
		e3, err := E3RoutingScale([]int{200, 400, 600}, 4, 7)
		if err != nil {
			t.Fatal(err)
		}
		e5, err := E5QuotaEnforce([]int{10, 20}, []time.Duration{50 * time.Millisecond, 100 * time.Millisecond}, 7)
		if err != nil {
			t.Fatal(err)
		}
		return []*metrics.Table{e3, e5}
	}
	defer SetParallel(true)
	SetParallel(false)
	serial := build()
	SetParallel(true)
	par := build()
	for i := range serial {
		if !reflect.DeepEqual(serial[i].Rows, par[i].Rows) {
			t.Fatalf("%s: parallel rows diverge from serial:\nserial: %v\nparallel: %v",
				serial[i].Title, serial[i].Rows, par[i].Rows)
		}
	}
}

func TestSweepCellsError(t *testing.T) {
	defer SetParallel(true)
	for _, par := range []bool{false, true} {
		SetParallel(par)
		_, err := sweepCells(8, func(cell int) (int, error) {
			if cell >= 3 {
				return 0, errCell(cell)
			}
			return cell, nil
		})
		if err == nil {
			t.Fatalf("parallel=%v: no error surfaced", par)
		}
		// The lowest-index failure wins, matching serial abort semantics.
		if err != errCell(3) {
			t.Fatalf("parallel=%v: got %v, want cell 3's error", par, err)
		}
	}
}

type errCell int

func (e errCell) Error() string { return "cell failed" }
