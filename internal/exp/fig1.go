// Package exp is the experiment harness: it reconstructs the paper's
// Figure-1 deployment under both networking models and runs the ten
// experiments DESIGN.md indexes (E1–E10), each returning a printable
// metrics.Table. cmd/expdriver and bench_test.go are thin wrappers.
package exp

import (
	"fmt"

	"declnet/internal/addr"
	"declnet/internal/appliance"
	"declnet/internal/cloudapi"
	"declnet/internal/core"
	"declnet/internal/gateway"
	"declnet/internal/permit"
	"declnet/internal/qos"
	"declnet/internal/topo"
	"declnet/internal/vnet"
)

// Tenant is the canonical tenant name used across experiments.
const Tenant = "acme"

// BaselineFig1 is the paper's Figure-1 deployment built the hard way: six
// VPCs across two clouds and two regions each, the gateway menagerie to
// interconnect them and the on-prem site, security groups / NSGs, NACLs,
// a load balancer and a firewall. Every box and knob lands in Env.Ledger.
type BaselineFig1 struct {
	Env *cloudapi.Env

	// VPCs by role.
	Analytics, Web, Logs *vnet.VPC // cloud A
	DB, Cache, DR        *vnet.VPC // cloud B

	// Named instances the experiments drive traffic between.
	Spark1, Spark2, WebSrv *vnet.Instance
	DB1, DB2               *vnet.Instance

	// Gateways.
	TGWA, TGWB *gateway.TGW
	Firewall   *appliance.Firewall
	LB         *appliance.LoadBalancer

	AWS   *cloudapi.AWS
	Azure *cloudapi.Azure
}

// BuildBaselineFig1 provisions the whole baseline deployment. It returns
// a working fabric: the cross-cloud and on-prem paths below are exercised
// by tests before any experiment trusts the counts.
func BuildBaselineFig1() (*BaselineFig1, error) {
	env := cloudapi.NewEnv()
	aws := cloudapi.NewAWS(env, "a-east")
	azure := cloudapi.NewAzure(env, "b-east")
	b := &BaselineFig1{Env: env, AWS: aws, Azure: azure}

	anywhere := "0.0.0.0/0"

	// --- Cloud A (aws-like) ---------------------------------------------
	var err error
	if b.Analytics, err = aws.CreateVpc("vpc-analytics", "10.0.0.0/16", cloudapi.VpcOptions{EnableDNSSupport: true, InstanceTenancy: "default"}); err != nil {
		return nil, err
	}
	if err := aws.CreateSubnet(b.Analytics, "pub", "10.0.1.0/24", "a-east-1a", true); err != nil {
		return nil, err
	}
	if err := aws.CreateSubnet(b.Analytics, "priv", "10.0.2.0/24", "a-east-1b", false); err != nil {
		return nil, err
	}
	if b.Web, err = aws.CreateVpc("vpc-web", "10.1.0.0/16", cloudapi.VpcOptions{EnableDNSSupport: true}); err != nil {
		return nil, err
	}
	if err := aws.CreateSubnet(b.Web, "pub", "10.1.1.0/24", "a-east-1a", true); err != nil {
		return nil, err
	}
	if b.Logs, err = aws.CreateVpc("vpc-logs", "10.2.0.0/16", cloudapi.VpcOptions{}); err != nil {
		return nil, err
	}
	if err := aws.CreateSubnet(b.Logs, "main", "10.2.1.0/24", "a-west-1a", false); err != nil {
		return nil, err
	}

	// Security groups: spark talks out; db port open from analytics only.
	if err := aws.CreateSecurityGroup(b.Analytics, "spark", "spark workers"); err != nil {
		return nil, err
	}
	mustRule := func(e error) error { return e }
	if err := mustRule(aws.AuthorizeSecurityGroupEgress(b.Analytics, "spark", sgAll())); err != nil {
		return nil, err
	}
	if err := aws.AuthorizeSecurityGroupIngress(b.Analytics, "spark", sgFrom("10.0.0.0/8", vnet.TCP, 7077, 7077)); err != nil {
		return nil, err
	}
	if err := aws.AuthorizeSecurityGroupIngress(b.Analytics, "spark", sgFrom("10.0.0.0/8", vnet.TCP, 443, 443)); err != nil {
		return nil, err
	}
	if err := aws.CreateSecurityGroup(b.Web, "web", "front end"); err != nil {
		return nil, err
	}
	if err := aws.AuthorizeSecurityGroupIngress(b.Web, "web", sgFrom(anywhere, vnet.TCP, 443, 443)); err != nil {
		return nil, err
	}
	if err := aws.AuthorizeSecurityGroupEgress(b.Web, "web", sgAll()); err != nil {
		return nil, err
	}
	if err := aws.CreateSecurityGroup(b.Logs, "logs", "log sink"); err != nil {
		return nil, err
	}
	if err := aws.AuthorizeSecurityGroupIngress(b.Logs, "logs", sgFrom("10.0.0.0/8", vnet.TCP, 514, 514)); err != nil {
		return nil, err
	}
	if err := aws.AuthorizeSecurityGroupEgress(b.Logs, "logs", sgAll()); err != nil {
		return nil, err
	}

	// Instances.
	if b.Spark1, err = aws.RunInstance(b.Analytics, "spark-1", "priv", "spark"); err != nil {
		return nil, err
	}
	if b.Spark2, err = aws.RunInstance(b.Analytics, "spark-2", "priv", "spark"); err != nil {
		return nil, err
	}
	if b.WebSrv, err = aws.RunInstance(b.Web, "web-1", "pub", "web"); err != nil {
		return nil, err
	}
	if _, err = aws.RunInstance(b.Logs, "logs-1", "main", "logs"); err != nil {
		return nil, err
	}

	// Internet access: IGW for web VPC (public service) + NAT for the
	// private analytics subnet.
	igwWeb := aws.CreateInternetGateway()
	if err := aws.AttachInternetGateway(igwWeb, b.Web); err != nil {
		return nil, err
	}
	if err := aws.CreateRoute(b.Web, "pub", anywhere, vnet.Target{Kind: vnet.TIGW, ID: igwWeb}); err != nil {
		return nil, err
	}
	alloc := aws.AllocateAddress()
	if err := aws.AssociateAddress(alloc, b.Web, "web-1"); err != nil {
		return nil, err
	}
	igwA := aws.CreateInternetGateway()
	if err := aws.AttachInternetGateway(igwA, b.Analytics); err != nil {
		return nil, err
	}
	if err := aws.CreateRoute(b.Analytics, "pub", anywhere, vnet.Target{Kind: vnet.TIGW, ID: igwA}); err != nil {
		return nil, err
	}
	if _, err := aws.CreateNatGateway(b.Analytics, "pub"); err != nil {
		return nil, err
	}

	// --- Cloud B (azure-like) -------------------------------------------
	if b.DB, err = azure.CreateVirtualNetwork("vnet-db", []string{"10.3.0.0/16"}); err != nil {
		return nil, err
	}
	if err := azure.AddSubnet(b.DB, "data", "10.3.1.0/24"); err != nil {
		return nil, err
	}
	if b.Cache, err = azure.CreateVirtualNetwork("vnet-cache", []string{"10.4.0.0/16"}); err != nil {
		return nil, err
	}
	if err := azure.AddSubnet(b.Cache, "main", "10.4.1.0/24"); err != nil {
		return nil, err
	}
	if b.DR, err = azure.CreateVirtualNetwork("vnet-dr", []string{"10.5.0.0/16"}); err != nil {
		return nil, err
	}
	if err := azure.AddSubnet(b.DR, "main", "10.5.1.0/24"); err != nil {
		return nil, err
	}

	// NSG: postgres from the analytics VPC and on-prem only.
	if err := azure.CreateNetworkSecurityGroup("nsg-db"); err != nil {
		return nil, err
	}
	if err := azure.AddSecurityRule("nsg-db", 100, "Inbound", vnet.Allow, vnet.TCP, 5432, 5432, "10.0.0.0/16"); err != nil {
		return nil, err
	}
	if err := azure.AddSecurityRule("nsg-db", 110, "Inbound", vnet.Allow, vnet.TCP, 5432, 5432, "192.168.0.0/16"); err != nil {
		return nil, err
	}
	if err := azure.AddSecurityRule("nsg-db", 200, "Outbound", vnet.Allow, vnet.AnyProto, 1, 65535, anywhere); err != nil {
		return nil, err
	}
	if err := azure.AssociateNSGToSubnet(b.DB, "nsg-db", "data"); err != nil {
		return nil, err
	}
	if err := azure.CreateNSGBackedSecurityGroup(b.DB, "nsg-db"); err != nil {
		return nil, err
	}
	nic1, err := azure.CreateNetworkInterface(b.DB, "data", []string{"nsg-db"}, "")
	if err != nil {
		return nil, err
	}
	if b.DB1, err = azure.CreateVM("db-1", nic1); err != nil {
		return nil, err
	}
	nic2, _ := azure.CreateNetworkInterface(b.DB, "data", []string{"nsg-db"}, "")
	if b.DB2, err = azure.CreateVM("db-2", nic2); err != nil {
		return nil, err
	}

	// --- On-prem ----------------------------------------------------------
	site, err := env.Fabric.AddSite("hq", addr.MustParsePrefix("192.168.0.0/16"))
	if err != nil {
		return nil, err
	}

	// --- Interconnect: TGW-A == hub-B, site VPN, peering -----------------
	if b.TGWA, err = aws.CreateTransitGateway(64512); err != nil {
		return nil, err
	}
	attAnalytics, err := aws.CreateTransitGatewayAttachment(b.TGWA, gateway.AttachVPC, b.Analytics.ID)
	if err != nil {
		return nil, err
	}
	_ = attAnalytics
	if _, err := aws.CreateTransitGatewayAttachment(b.TGWA, gateway.AttachVPC, b.Web.ID); err != nil {
		return nil, err
	}
	if _, err := aws.CreateTransitGatewayAttachment(b.TGWA, gateway.AttachSite, "hq"); err != nil {
		return nil, err
	}
	if err := aws.EnableTransitGatewayRoutePropagation(b.TGWA); err != nil {
		return nil, err
	}
	if b.TGWB, err = azure.CreateVirtualWANHub("b-east"); err != nil {
		return nil, err
	}
	connDB, err := azure.ConnectVNetToHub(b.TGWB, b.DB)
	if err != nil {
		return nil, err
	}
	_ = connDB
	if _, err := azure.ConnectVNetToHub(b.TGWB, b.Cache); err != nil {
		return nil, err
	}
	peerAB, err := aws.CreateTransitGatewayAttachment(b.TGWA, gateway.AttachPeer, b.TGWB.ID)
	if err != nil {
		return nil, err
	}
	peerBA, err := azure.PeerHubs(b.TGWB, b.TGWA)
	if err != nil {
		return nil, err
	}
	// Static routes across the peering (never propagated — §2's pain).
	if err := aws.CreateTransitGatewayRoute(b.TGWA, "10.3.0.0/16", peerAB); err != nil {
		return nil, err
	}
	if err := aws.CreateTransitGatewayRoute(b.TGWA, "10.4.0.0/16", peerAB); err != nil {
		return nil, err
	}
	if err := azure.HubRoute(b.TGWB, "10.0.0.0/16", peerBA); err != nil {
		return nil, err
	}
	if err := azure.HubRoute(b.TGWB, "192.168.0.0/16", peerBA); err != nil {
		return nil, err
	}

	// Egress-only gateway for the DR VNet (outbound patches, no inbound).
	if _, err := env.Fabric.CreateEgressIGW("eigw-dr", b.DR.ID); err != nil {
		return nil, err
	}
	if err := azure.AddUserRoute(b.DR, "main", "0.0.0.0/0", vnet.Target{Kind: vnet.TEgressIGW, ID: "eigw-dr"}); err != nil {
		return nil, err
	}

	// VPN triple on cloud A for redundancy plus the logs peering.
	vgwID := aws.CreateVpnGateway()
	aws.CreateCustomerGateway("hq")
	if _, err := aws.CreateVpnConnection(vgwID, b.Analytics, "hq"); err != nil {
		return nil, err
	}
	pcx, err := aws.CreateVpcPeeringConnection(b.Analytics, b.Logs)
	if err != nil {
		return nil, err
	}
	aws.AcceptVpcPeeringConnection(pcx)

	// Subnet routes pointing at the interconnect.
	for _, sn := range []string{"pub", "priv"} {
		if err := aws.CreateRoute(b.Analytics, sn, "10.3.0.0/16", vnet.Target{Kind: vnet.TTGW, ID: b.TGWA.ID}); err != nil {
			return nil, err
		}
		if err := aws.CreateRoute(b.Analytics, sn, "192.168.0.0/16", vnet.Target{Kind: vnet.TTGW, ID: b.TGWA.ID}); err != nil {
			return nil, err
		}
		if err := aws.CreateRoute(b.Analytics, sn, "10.2.0.0/16", vnet.Target{Kind: vnet.TPeering, ID: pcx}); err != nil {
			return nil, err
		}
	}
	if err := azure.AddUserRoute(b.DB, "data", "10.0.0.0/16", vnet.Target{Kind: vnet.TTGW, ID: b.TGWB.ID}); err != nil {
		return nil, err
	}
	if err := azure.AddUserRoute(b.DB, "data", "192.168.0.0/16", vnet.Target{Kind: vnet.TTGW, ID: b.TGWB.ID}); err != nil {
		return nil, err
	}
	// Site routes toward both clouds.
	site.AddRoute(addr.MustParsePrefix("10.0.0.0/16"), vnet.Target{Kind: vnet.TTGW, ID: b.TGWA.ID})
	site.AddRoute(addr.MustParsePrefix("10.3.0.0/16"), vnet.Target{Kind: vnet.TTGW, ID: b.TGWA.ID})
	env.Ledger.Step() // site router config
	env.Ledger.Step()

	// --- Appliances -------------------------------------------------------
	b.LB = aws.CreateLoadBalancer(appliance.ApplicationLB)
	tg := appliance.NewTargetGroup("tg-spark")
	tg.Register(b.Spark1.ID)
	tg.Register(b.Spark2.ID)
	b.LB.AddTargetGroup(tg, env.Ledger)
	if err := b.LB.SetDefault("tg-spark", env.Ledger); err != nil {
		return nil, err
	}
	if b.Firewall, err = azure.CreateAzureFirewall(b.DB); err != nil {
		return nil, err
	}
	b.Firewall.AddRule(appliance.FWRule{Action: vnet.Allow, Src: addr.MustParsePrefix("10.0.0.0/8"),
		Dst: addr.MustParsePrefix("10.3.0.0/16")}, env.Ledger)
	b.Firewall.AddRule(appliance.FWRule{Action: vnet.Allow, Src: addr.MustParsePrefix("192.168.0.0/16"),
		Dst: addr.MustParsePrefix("10.3.0.0/16")}, env.Ledger)
	b.Firewall.AddSignature("DROP TABLE", env.Ledger)

	return b, nil
}

func sgAll() vnet.SGRule {
	return vnet.SGRule{Source: addr.MustParsePrefix("0.0.0.0/0")}
}

func sgFrom(cidr string, proto vnet.Protocol, from, to int) vnet.SGRule {
	return vnet.SGRule{Proto: proto, PortFrom: from, PortTo: to, Source: addr.MustParsePrefix(cidr)}
}

// DeclarativeFig1 is the same logical deployment expressed through the
// Table-2 API: endpoints, one service address, permit lists, a QoS grant —
// and nothing else.
type DeclarativeFig1 struct {
	Cloud *core.Cloud
	World *topo.Fig1World

	ProvA, ProvB, ProvOnPrem *core.Provider

	Spark1, Spark2, WebSrv core.EIP
	DB1, DB2               core.EIP
	Logs, Alerts           core.EIP
	DBService              core.SIP

	// APICalls counts tenant-facing verb invocations — the declarative
	// model's entire provisioning burden.
	APICalls map[string]int
}

// BuildDeclarativeFig1 provisions the declarative equivalent over the
// Fig-1 world graph.
func BuildDeclarativeFig1(seed int64, hostsPerZone int) (*DeclarativeFig1, error) {
	w := topo.BuildFig1(hostsPerZone)
	c := core.NewCloud(seed, w.Graph)
	d := &DeclarativeFig1{Cloud: c, World: w, APICalls: make(map[string]int)}
	var err error
	if d.ProvA, err = c.AddProvider(w.CloudA, core.Config{
		EIPBase: addr.MustParsePrefix("100.64.0.0/10"),
		SIPBase: addr.MustParsePrefix("100.127.0.0/16"),
	}); err != nil {
		return nil, err
	}
	if d.ProvB, err = c.AddProvider(w.CloudB, core.Config{
		EIPBase: addr.MustParsePrefix("104.0.0.0/8"),
		SIPBase: addr.MustParsePrefix("104.255.0.0/16"),
	}); err != nil {
		return nil, err
	}
	if d.ProvOnPrem, err = c.AddProvider("onprem", core.Config{
		EIPBase: addr.MustParsePrefix("108.0.0.0/8"),
		SIPBase: addr.MustParsePrefix("108.255.0.0/16"),
	}); err != nil {
		return nil, err
	}
	call := func(verb string) { d.APICalls[verb]++ }

	eip := func(p *core.Provider, node topo.NodeID) (core.EIP, error) {
		call("request_eip")
		return p.RequestEIP(Tenant, node)
	}
	if d.Spark1, err = eip(d.ProvA, topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1)); err != nil {
		return nil, err
	}
	if d.Spark2, err = eip(d.ProvA, topo.HostID(w.CloudA, w.RegionsA[0], "az2", 1)); err != nil {
		return nil, err
	}
	if d.WebSrv, err = eip(d.ProvA, topo.HostID(w.CloudA, w.RegionsA[0], "az1", 2)); err != nil {
		return nil, err
	}
	if d.Logs, err = eip(d.ProvA, topo.HostID(w.CloudA, w.RegionsA[1], "az1", 1)); err != nil {
		return nil, err
	}
	if d.DB1, err = eip(d.ProvB, topo.HostID(w.CloudB, w.RegionsB[0], "az1", 1)); err != nil {
		return nil, err
	}
	if d.DB2, err = eip(d.ProvB, topo.HostID(w.CloudB, w.RegionsB[0], "az2", 1)); err != nil {
		return nil, err
	}
	if d.Alerts, err = eip(d.ProvOnPrem, "onprem/hq/host1"); err != nil {
		return nil, err
	}

	call("request_sip")
	if d.DBService, err = d.ProvB.RequestSIP(Tenant); err != nil {
		return nil, err
	}
	call("bind")
	if err := d.ProvB.Bind(Tenant, d.DB1, d.DBService, 1); err != nil {
		return nil, err
	}
	call("bind")
	if err := d.ProvB.Bind(Tenant, d.DB2, d.DBService, 1); err != nil {
		return nil, err
	}

	// Permit lists: exactly the app's communication matrix.
	permitList := func(p *core.Provider, dst addr.IP, srcs ...core.EIP) error {
		call("set_permit_list")
		entries := make([]permit.Entry, len(srcs))
		for i, s := range srcs {
			entries[i] = addr.NewPrefix(s, 32)
		}
		return p.SetPermitList(Tenant, dst, entries)
	}
	if err := permitList(d.ProvA, d.Spark1, d.WebSrv, d.Spark2); err != nil {
		return nil, err
	}
	if err := permitList(d.ProvA, d.Spark2, d.WebSrv, d.Spark1); err != nil {
		return nil, err
	}
	if err := permitList(d.ProvB, d.DBService, d.Spark1, d.Spark2, d.Alerts); err != nil {
		return nil, err
	}
	if err := permitList(d.ProvB, d.DB1, d.Spark1, d.Spark2, d.Alerts); err != nil {
		return nil, err
	}
	if err := permitList(d.ProvB, d.DB2, d.Spark1, d.Spark2, d.Alerts); err != nil {
		return nil, err
	}
	if err := permitList(d.ProvA, d.Logs, d.Spark1, d.Spark2, d.WebSrv); err != nil {
		return nil, err
	}
	if err := permitList(d.ProvOnPrem, d.Alerts, d.Spark1, d.Spark2); err != nil {
		return nil, err
	}
	// Web front end is open to the world.
	call("set_permit_list")
	if err := d.ProvA.SetPermitList(Tenant, d.WebSrv, []permit.Entry{addr.MustParsePrefix("0.0.0.0/0")}); err != nil {
		return nil, err
	}

	// One QoS grant: analytics region egress.
	call("set_qos")
	if err := d.ProvA.SetQoS(Tenant, w.RegionsA[0], 10*topo.Gbps); err != nil {
		return nil, err
	}
	call("set_potato")
	d.ProvA.SetPotato(Tenant, qos.ColdPotato)
	return d, nil
}

// TotalAPICalls sums the declarative provisioning burden.
func (d *DeclarativeFig1) TotalAPICalls() int {
	var n int
	for _, v := range d.APICalls {
		n += v
	}
	return n
}

// sanity check helper shared by tests: can spark reach db in each model.
func (b *BaselineFig1) SparkToDB() vnet.Verdict {
	return b.Env.Fabric.Evaluate(
		gateway.Source{Kind: gateway.FromInstance, VPCID: b.Analytics.ID, InstanceID: b.Spark1.ID},
		vnet.Packet{Src: b.Spark1.PrivateIP, Dst: b.DB1.PrivateIP, Proto: vnet.TCP, DstPort: 5432})
}

// SparkToDB opens the analogous declarative connection.
func (d *DeclarativeFig1) SparkToDB() error {
	conn, err := d.Cloud.Connect(Tenant, d.Spark1, d.DBService, core.ConnectOpts{SizeBytes: -1})
	if err != nil {
		return err
	}
	conn.Close()
	return nil
}

var _ = fmt.Sprintf
