package exp

import (
	"strings"
	"testing"

	"declnet/internal/scale"
)

// e13TestConfig is a tiny drill tier so the shape test stays cheap and
// never mutates the registry's e13Tier (the golden test runs that
// concurrently).
func e13TestConfig() scale.Config {
	cfg := scale.SmokeConfig()
	cfg.EIPs = 2_000
	cfg.Tenants = 20
	cfg.Regions = 4
	cfg.Probes = 1_000
	cfg.ChurnEvents = 200
	cfg.PermitSamples = 20
	cfg.StormOps = 500
	return cfg
}

// TestE13Shape checks the drill table's structure and the acceptance
// gate without pinning any timing value: counters must echo the config,
// every timing cell must carry a maskable suffix, and the storm-isolation
// gate must hold.
func TestE13Shape(t *testing.T) {
	cfg := e13TestConfig()
	tbl, err := E13ScaleDrill(cfg)
	if err != nil {
		t.Fatal(err)
	}
	text := tbl.Text()
	for _, want := range []string{
		"endpoints onboarded",
		"2000", // all EIPs onboarded
		"20 / 4",
		"(tenant, region) shards materialized",
		"permit propagation lag p50 / p99",
		"connect latency p50 / p99",
		"provider state per endpoint",
		"storm/idle p99 ratio",
		"storm isolation gate",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("table missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "FAIL") {
		t.Errorf("storm isolation gate failed:\n%s", text)
	}
	// Every timing value must be masked by the golden normalizer — after
	// masking, no floating-point digits may survive (the deterministic
	// counters are all integers).
	masked := normalize("E13", text)
	if strings.Contains(text, "us") && !strings.Contains(masked, "<wall-clock>") {
		t.Errorf("normalize(E13) masked nothing:\n%s", masked)
	}
	for _, suffix := range []string{"us", "ms"} {
		if i := strings.Index(masked, "."); i >= 0 && strings.Contains(masked[i:i+4], suffix) {
			t.Errorf("unmasked wall-clock cell survives normalization near %q", masked[i:i+8])
		}
	}
}

// TestE13Deterministic runs the drill twice and requires the masked
// tables to be byte-identical: the counters (onboarded, shards, churn,
// probes, denials) must be pure functions of config and seed even though
// the drill itself is heavily concurrent.
func TestE13Deterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the drill twice")
	}
	cfg := e13TestConfig()
	first, err := E13ScaleDrill(cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := E13ScaleDrill(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, b := normalize("E13", first.Text()), normalize("E13", second.Text())
	if a != b {
		t.Fatalf("E13 counters not deterministic across runs:\n%s", diffLines(a, b))
	}
}
