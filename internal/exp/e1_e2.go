package exp

import (
	"fmt"
	"sort"
	"strings"

	"declnet/internal/metrics"
)

// E1BoxCount rebuilds Figure 1 under both models and tallies the
// tenant-facing burden: boxes, parameters, provisioning steps, planning
// decisions, distinct concepts, and — for the declarative model — the
// handful of API calls that replace all of it. This regenerates the §5
// claim: "the tenant will no longer have to consider any of the 6 VPCs or
// 9 gateways in the original topology, only the endpoints themselves."
func E1BoxCount() (*metrics.Table, error) {
	base, err := BuildBaselineFig1()
	if err != nil {
		return nil, err
	}
	if v := base.SparkToDB(); !v.Delivered {
		return nil, fmt.Errorf("exp: baseline Fig-1 not functional: %v", v)
	}
	decl, err := BuildDeclarativeFig1(1, 2)
	if err != nil {
		return nil, err
	}
	if err := decl.SparkToDB(); err != nil {
		return nil, fmt.Errorf("exp: declarative Fig-1 not functional: %w", err)
	}

	led := base.Env.Ledger
	gatewayKinds := []string{"internet-gateway", "egress-only-igw", "nat-gateway",
		"vpn-gateway", "customer-gateway", "transit-gateway", "vpc-peering"}
	var gateways int
	for _, k := range gatewayKinds {
		gateways += led.BoxesOf(k)
	}
	applianceBoxes := 0
	for _, k := range led.Kinds() {
		if strings.HasPrefix(k, "load-balancer") || k == "firewall" || k == "target-group" {
			applianceBoxes += led.BoxesOf(k)
		}
	}

	t := &metrics.Table{
		Title:   "E1: Fig-1 deployment burden, baseline vs declarative",
		Columns: []string{"metric", "baseline", "declarative"},
	}
	t.AddRow("virtual networks (VPC/VNet)", led.BoxesOf("vpc"), 0)
	t.AddRow("gateways", gateways, 0)
	t.AddRow("appliance boxes", applianceBoxes, 0)
	t.AddRow("total network boxes", led.Boxes(), 0)
	t.AddRow("config parameters set", led.Params(), 0)
	t.AddRow("provisioning steps", led.Steps(), decl.TotalAPICalls())
	t.AddRow("planning decisions", led.DecisionCount(), 0)
	t.AddRow("distinct concepts", len(led.Concepts()), len(decl.APICalls))
	t.AddRow("tenant API calls", "n/a", decl.TotalAPICalls())
	t.Notes = append(t.Notes,
		"baseline boxes include 6 VPCs and the gateway set of the paper's Fig. 1",
		fmt.Sprintf("declarative verbs used: %s", verbList(decl.APICalls)))
	return t, nil
}

func verbList(calls map[string]int) string {
	verbs := make([]string, 0, len(calls))
	for v := range calls {
		verbs = append(verbs, v)
	}
	sort.Strings(verbs)
	parts := make([]string, len(verbs))
	for i, v := range verbs {
		parts[i] = fmt.Sprintf("%s x%d", v, calls[v])
	}
	return strings.Join(parts, ", ")
}

// componentFeature describes a Table-1 row's fixed columns.
var componentFeatures = map[string]struct{ options, features string }{
	"load-balancer-application": {"AWS-like ALB", "L7 load balancing"},
	"load-balancer-network":     {"AWS-like NLB", "L4 load balancing"},
	"load-balancer-classic":     {"AWS-like CLB", "L4 & L7 load balancing"},
	"load-balancer-gateway":     {"AWS-like GWLB", "L3 appliance steering"},
	"vpc":                       {"AWS-like VPC / Azure VNet / GCP network", "isolated virtual network"},
	"subnet":                    {"per-VPC subnet", "address partition"},
	"security-group":            {"SG / NSG / firewall-tag", "stateful instance filter"},
	"nacl":                      {"NACL / NSG-subnet", "stateless subnet filter"},
	"route-table":               {"route table / UDR", "prefix forwarding"},
	"internet-gateway":          {"IGW / default route", "public ingress+egress"},
	"egress-only-igw":           {"egress-only IGW", "outbound-only access"},
	"nat-gateway":               {"NAT gateway", "source translation"},
	"vpn-gateway":               {"VGW / VNet gateway", "IPsec to on-prem"},
	"customer-gateway":          {"CGW / local gateway", "on-prem VPN end"},
	"vpn-connection":            {"VPN connection", "tunnel pair"},
	"transit-gateway":           {"TGW / vWAN hub", "regional transit hub"},
	"tgw-attachment":            {"TGW attachment / hub connection", "spoke binding"},
	"vpc-peering":               {"VPC/VNet peering", "private 1:1 link"},
	"elastic-ip":                {"EIP / public IP", "static public address"},
	"firewall":                  {"network firewall", "L3-L7 filtering + DPI"},
	"target-group":              {"target group / backend pool", "LB backend set"},
}

// E2Catalog regenerates the paper's Table 1 from the baseline build: each
// virtual component kind the Fig-1 tenant had to touch, with its feature
// description and the number of configuration parameters our model charges
// it. The parameter counts come from the instrumented facades rather than
// cloud documentation, so they are conservative lower bounds.
func E2Catalog() (*metrics.Table, error) {
	base, err := BuildBaselineFig1()
	if err != nil {
		return nil, err
	}
	led := base.Env.Ledger
	t := &metrics.Table{
		Title:   "E2: virtual network component catalog (Table 1 equivalent)",
		Columns: []string{"abstraction", "cloud options", "features", "boxes", "params charged"},
	}
	snap := led.Snapshot()
	kinds := make([]string, 0, len(snap.Resources))
	for k := range snap.Resources {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		if strings.Contains(k, ":") {
			continue // provider-vocabulary concepts are counted in E1
		}
		feat, ok := componentFeatures[k]
		if !ok {
			feat.options, feat.features = k, "-"
		}
		t.AddRow(k, feat.options, feat.features, snap.Resources[k], snap.Params[k])
	}
	t.Notes = append(t.Notes,
		"parameter counts are the knobs the instrumented facades charged while building Fig. 1")
	return t, nil
}
