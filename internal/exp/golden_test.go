package exp

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// volatile masks cells that are measured wall-clock performance rather
// than simulated behavior, and so cannot be byte-stable across hosts.
// Only E4's lookup-throughput column qualifies; everything else in every
// table must reproduce exactly.
var volatile = map[string]*regexp.Regexp{
	"E4": regexp.MustCompile(`\b\d+\.\d+\b`), // lookups/us, the only float in E4 rows
	// E12's overhead note reports measured wall time and its ratio; the
	// "ms"/"%" suffixes keep the mask off simulated values and addresses.
	"E12": regexp.MustCompile(`-?\d+\.\d+(ms|%)`),
	// E13's drill measures real wall clock under real contention; every
	// timing cell carries a us/ms/B//s/x suffix so exactly those cells
	// mask while the deterministic counters stay pinned.
	"E13": regexp.MustCompile(`-?\d+(\.\d+)?(us|ms|x|B|/s)\b`),
	// E14's detector compares wall-clock window p99s; the us/x cells mask
	// while the detection verdicts, attribution strings, and counts pin.
	"E14": regexp.MustCompile(`-?\d+(\.\d+)?(us|ms|x|%|/s)\b`),
	// E15's only measured cell is the mean crash-recovery wall clock;
	// every other row is a deterministic count or verdict.
	"E15": regexp.MustCompile(`-?\d+(\.\d+)?(us|ms)\b`),
}

func normalize(id, text string) string {
	re, ok := volatile[id]
	if !ok {
		return text
	}
	// Masked cells change width, which shifts the renderer's column
	// padding; collapse runs of spaces so alignment can't fail the diff.
	text = re.ReplaceAllString(text, "<wall-clock>")
	text = regexp.MustCompile(`[ \t]+`).ReplaceAllString(text, " ")
	if id == "E13" || id == "E14" || id == "E15" {
		// E13/E14/E15 mask their value column, so run-to-run width changes
		// leave trailing padding and a variable-width separator rule
		// behind; normalize both. (E4/E12 goldens were blessed with
		// trailing spaces intact — leave them be.)
		text = regexp.MustCompile(`(?m) +$`).ReplaceAllString(text, "")
		text = regexp.MustCompile(`-{3,}`).ReplaceAllString(text, "---")
	}
	return text
}

var update = flag.Bool("update", false, "rewrite the golden experiment tables under testdata/golden")

// TestGoldenTables pins the rendered output of every registered experiment
// byte-for-byte. The registry runs each experiment with a fixed seed, and
// every table is required to be a pure function of that seed — no wall
// clock, no map-iteration order, no host parallelism leaking into cells.
// A diff here means either a deliberate change (re-bless with
// `go test ./internal/exp/ -run TestGoldenTables -update`) or a lost
// determinism guarantee, which would break reproducibility of the paper
// tables in EXPERIMENTS.md.
func TestGoldenTables(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tbl, err := e.Run()
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			got := normalize(e.ID, tbl.Text())
			path := filepath.Join("testdata", "golden", e.ID+".txt")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s output drifted from %s:\n%s", e.ID, path, diffLines(string(want), got))
			}
		})
	}
}

// TestGoldenTablesStable runs one representative experiment twice in the
// same process and requires identical bytes — the cheap canary for
// nondeterminism that golden files alone can't catch (a drifting table
// would be blessed as drifted).
func TestGoldenTablesStable(t *testing.T) {
	first, err := E11AvailabilityDrill(200, 42)
	if err != nil {
		t.Fatal(err)
	}
	second, err := E11AvailabilityDrill(200, 42)
	if err != nil {
		t.Fatal(err)
	}
	if first.Text() != second.Text() {
		t.Fatalf("E11 not deterministic across runs:\n%s", diffLines(first.Text(), second.Text()))
	}
}

// diffLines renders a minimal line-oriented diff, enough to spot which
// cell moved without pulling in a diff dependency.
func diffLines(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	var b strings.Builder
	n := len(w)
	if len(g) > n {
		n = len(g)
	}
	for i := 0; i < n; i++ {
		var wl, gl string
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if wl != gl {
			fmt.Fprintf(&b, "line %d:\n  -%s\n  +%s\n", i+1, wl, gl)
		}
	}
	if b.Len() == 0 {
		return "(no line differences — whitespace or trailing newline)"
	}
	return b.String()
}
