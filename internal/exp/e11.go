package exp

import (
	"fmt"
	"time"

	"declnet/internal/appliance"
	"declnet/internal/complexity"
	"declnet/internal/core"
	"declnet/internal/metrics"
	"declnet/internal/sim"
	"declnet/internal/topo"
	"declnet/internal/vnet"
)

// E11AvailabilityDrill is the end-to-end failure drill the fault
// subsystem exists for: a database backend's host dies mid-run and later
// returns, injected as first-class events through internal/fault.
//
// In the declarative model the provider's health monitor notices, pulls
// the SIP binding, serves from the survivors, and re-binds after the
// recovery backoff — the tenant makes zero API calls. In the baseline the
// tenant's own monitoring must notice the outage and an operator must
// deregister (and later re-register) the target by hand, modeled as a
// fixed operator reaction delay plus explicit reconfiguration calls.
//
// The table reports goodput during the failure window, MTTR (time from
// failure until the error stream stops), and the tenant-side work needed.
func E11AvailabilityDrill(requestRate float64, seed int64) (*metrics.Table, error) {
	if requestRate <= 0 {
		requestRate = 200
	}
	const (
		horizon  = 12 * time.Second
		failAt   = 3 * time.Second
		healAt   = 7 * time.Second
		opsDelay = 2 * time.Second // baseline operator reaction time
	)
	policy := core.FaultPolicy{
		HealthInterval: 250 * time.Millisecond,
		DownAfter:      2,
		RebindBackoff:  time.Second,
	}

	decl, m, err := e11Declarative(requestRate, horizon, failAt, healAt, policy, seed)
	if err != nil {
		return nil, err
	}
	base, led, baseCalls := e11Baseline(requestRate, horizon, failAt, healAt, opsDelay, seed)

	t := &metrics.Table{
		Title:   "E11: availability drill — node failure + recovery, declnet failover vs hand reconfiguration",
		Columns: []string{"metric", "baseline (manual)", "declarative (provider)"},
	}
	t.AddRow("requests", base.total, decl.total)
	t.AddRow("failed requests", base.errors, decl.errors)
	t.AddRow("error rate %", pct(base.errors, base.total), pct(decl.errors, decl.total))
	t.AddRow("goodput during failure %", pct(base.windowOK, base.windowTotal), pct(decl.windowOK, decl.windowTotal))
	t.AddRow("MTTR", base.mttr.Round(time.Millisecond).String(), decl.mttr.Round(time.Millisecond).String())
	t.AddRow("tenant API calls during drill", baseCalls, 0)
	t.AddRow("tenant config params", led.Params(), 0)
	t.Notes = append(t.Notes,
		fmt.Sprintf("identical drill in both models: backend host down at t=%v, back at t=%v", failAt, healAt),
		fmt.Sprintf("provider policy: %v health checks, down after %d misses, %v re-bind backoff",
			policy.HealthInterval, policy.DownAfter, policy.RebindBackoff),
		fmt.Sprintf("baseline operator reacts %v after each transition (deregister, re-register)", opsDelay))
	t.AddNotef("provider-side events: %d failover, %d re-bind; tenant saw none of them",
		m.Failovers, m.Rebinds)
	return t, nil
}

// e11Stats accumulates one arm's request stream.
type e11Stats struct {
	total, errors         int
	windowTotal, windowOK int
	mttr                  time.Duration
}

func e11Declarative(rate float64, horizon, failAt, healAt time.Duration, policy core.FaultPolicy, seed int64) (e11Stats, *core.FaultMonitor, error) {
	var st e11Stats
	d, err := BuildDeclarativeFig1(seed, 3)
	if err != nil {
		return st, nil, err
	}
	c := d.Cloud
	w := d.World
	// Third backend joins the SIP so two survive the drill.
	db3, err := d.ProvB.RequestEIP(Tenant, topo.HostID(w.CloudB, w.RegionsB[0], "az1", 3))
	if err != nil {
		return st, nil, err
	}
	if err := d.ProvB.Bind(Tenant, db3, d.DBService, 1); err != nil {
		return st, nil, err
	}
	m := c.EnableFaults(policy)

	dead := d.DB1
	deadNode, ok := d.ProvB.Lookup(dead)
	if !ok {
		return st, nil, fmt.Errorf("exp: no node behind %s", dead)
	}
	c.Eng.Schedule(sim.Time(failAt), func() {
		if err := m.Inj.FailNode(deadNode); err != nil {
			panic(err)
		}
	})
	c.Eng.Schedule(sim.Time(healAt), func() {
		if err := m.Inj.RestoreNode(deadNode); err != nil {
			panic(err)
		}
	})

	var lastError sim.Time
	gap := sim.Time(float64(time.Second) / rate)
	var tick func()
	tick = func() {
		if c.Eng.Now() >= sim.Time(horizon) {
			return
		}
		now := c.Eng.Now()
		inWindow := now >= sim.Time(failAt) && now < sim.Time(healAt)
		st.total++
		if inWindow {
			st.windowTotal++
		}
		failed := false
		conn, cerr := c.Connect(Tenant, d.Spark1, d.DBService, core.ConnectOpts{SizeBytes: -1})
		if cerr != nil {
			failed = true
		} else {
			if conn.DstEIP == dead && inWindow {
				failed = true
			}
			conn.Close()
		}
		if failed {
			st.errors++
			lastError = now
		} else if inWindow {
			st.windowOK++
		}
		c.Eng.After(gap, tick)
	}
	c.Eng.After(0, tick)
	c.Eng.RunUntil(sim.Time(horizon))
	if lastError > sim.Time(failAt) {
		st.mttr = time.Duration(lastError - sim.Time(failAt))
	}
	return st, m, nil
}

// e11Baseline replays the drill against a tenant-run load balancer: the
// tenant's own monitoring notices the dead target opsDelay after each
// transition and an operator edits the target group by hand.
func e11Baseline(rate float64, horizon, failAt, healAt, opsDelay time.Duration, seed int64) (e11Stats, *complexity.Ledger, int) {
	var st e11Stats
	led := &complexity.Ledger{}
	lb := appliance.NewLoadBalancer("alb", appliance.ApplicationLB, led)
	tg := appliance.NewTargetGroup("tg")
	tg.HealthCheckPath, tg.HealthCheckInterval = "/healthz", int(opsDelay/time.Second)
	for i := 1; i <= 3; i++ {
		tg.Register(fmt.Sprintf("i-%d", i))
	}
	lb.AddTargetGroup(tg, led)
	if err := lb.SetDefault("tg", led); err != nil {
		panic(err)
	}

	eng := sim.New(seed)
	const dead = "i-1"
	apiCalls := 0
	// Operator deregisters the dead target once monitoring fires, and
	// re-registers it the same delay after the host returns.
	eng.Schedule(sim.Time(failAt+opsDelay), func() {
		tg.SetHealth(dead, false)
		apiCalls++
	})
	eng.Schedule(sim.Time(healAt+opsDelay), func() {
		tg.SetHealth(dead, true)
		apiCalls++
	})

	var lastError sim.Time
	gap := sim.Time(float64(time.Second) / rate)
	var tick func()
	tick = func() {
		if eng.Now() >= sim.Time(horizon) {
			return
		}
		now := eng.Now()
		inWindow := now >= sim.Time(failAt) && now < sim.Time(healAt)
		st.total++
		if inWindow {
			st.windowTotal++
		}
		backend, err := lb.Route(appliance.Request{Path: "/orders", Flow: vnet.Packet{}})
		if err != nil || (backend == dead && inWindow) {
			st.errors++
			lastError = now
		} else if inWindow {
			st.windowOK++
		}
		eng.After(gap, tick)
	}
	eng.After(0, tick)
	eng.RunUntil(sim.Time(horizon))
	if lastError > sim.Time(failAt) {
		st.mttr = time.Duration(lastError - sim.Time(failAt))
	}
	return st, led, apiCalls
}
