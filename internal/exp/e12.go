package exp

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"declnet/internal/addr"
	"declnet/internal/core"
	"declnet/internal/metrics"
	"declnet/internal/obs"
	"declnet/internal/permit"
	"declnet/internal/sim"
	"declnet/internal/topo"
)

// E12Observability evaluates the observability plane on both axes the
// paper's §6 cares about:
//
//   - Diagnosis quality: for a battery of injected ground-truth faults,
//     does Explain (the engine behind GET /v1/explain) name the root
//     cause the injector actually planted? The scorecard rows are fully
//     deterministic; the golden test pins them.
//   - Overhead: the same E11-style connect workload run twice — once with
//     the tracer and metrics registry attached, once with both stripped
//     (nil sinks) — so the instrumentation's cost is a measured delta,
//     not a claim. Wall-clock cells vary by machine and are masked in the
//     golden; the deterministic event/sample counts are not.
func E12Observability(connects int, seed int64) (*metrics.Table, error) {
	if connects <= 0 {
		connects = 2000
	}

	scenarios := e12Scenarios()
	t := &metrics.Table{
		Title:   "E12: observability — /v1/explain diagnosis quality + instrumentation overhead",
		Columns: []string{"scenario", "injected fault", "expected cause", "explain verdict", "match"},
	}
	diagnosed := 0
	for _, sc := range scenarios {
		verdict, match, err := e12RunScenario(sc, seed)
		if err != nil {
			return nil, fmt.Errorf("exp: E12 scenario %q: %w", sc.name, err)
		}
		if match {
			diagnosed++
		}
		t.AddRow(sc.name, sc.fault, sc.expectLabel(), verdict, mark(match))
	}
	t.AddRow("correctly diagnosed", "", "", fmt.Sprintf("%d/%d", diagnosed, len(scenarios)), "")

	instr, strip, err := e12Overhead(connects, seed)
	if err != nil {
		return nil, err
	}
	if instr.connects != strip.connects || instr.errors != strip.errors {
		return nil, fmt.Errorf("exp: E12 arms diverged: instrumented %d/%d vs stripped %d/%d",
			instr.connects, instr.errors, strip.connects, strip.errors)
	}
	t.AddNotef("overhead workload: %d connects with a mid-run node drill, identical in both arms (%d errors each)",
		instr.connects, instr.errors)
	t.AddNotef("instrumented arm recorded %d trace events and %d registry samples; stripped arm 0 and 0",
		instr.traceEvents, instr.samples)
	overhead := 0.0
	if strip.wall > 0 {
		overhead = (float64(instr.wall) - float64(strip.wall)) / float64(strip.wall) * 100
	}
	t.AddNotef("wall-clock (min of %d reps): stripped %.1fms, instrumented %.1fms, overhead %.1f%%",
		e12Reps, float64(strip.wall)/float64(time.Millisecond),
		float64(instr.wall)/float64(time.Millisecond), overhead)
	t.AddNotef("tracing and metrics are nil-safe: the stripped arm pays one nil check per decision point")
	return t, nil
}

func mark(ok bool) string {
	if ok {
		return "yes"
	}
	return "MISS"
}

// e12Scenario is one ground-truth fault with the cause Explain must name.
type e12Scenario struct {
	name  string
	fault string
	// expect is the substring the root cause must contain; "" means the
	// flow must explain as reachable.
	expect string
	// run injects the fault and returns the (src, dst) pair to explain.
	run func(d *DeclarativeFig1, m *core.FaultMonitor) (core.EIP, addr.IP, error)
	// advance runs the simulation forward after injection so the health
	// monitor's reaction (failover, deferred permits) is part of the
	// replayed state.
	advance sim.Time
}

func (sc e12Scenario) expectLabel() string {
	if sc.expect == "" {
		return "reachable"
	}
	return sc.expect
}

func e12Scenarios() []e12Scenario {
	node := topo.HostID
	return []e12Scenario{
		{
			name: "healthy baseline", fault: "none", expect: "",
			run: func(d *DeclarativeFig1, m *core.FaultMonitor) (core.EIP, addr.IP, error) {
				return d.Spark1, addr.IP(d.DBService), nil
			},
		},
		{
			name: "default-off destination", fault: "none (no permit list set)",
			expect: "no-permit-list",
			run: func(d *DeclarativeFig1, m *core.FaultMonitor) (core.EIP, addr.IP, error) {
				w := d.World
				extra, err := d.ProvB.RequestEIP(Tenant, node(w.CloudB, w.RegionsB[0], "az1", 2))
				return d.Spark1, addr.IP(extra), err
			},
		},
		{
			name: "source not permitted", fault: "none (web server absent from DB list)",
			expect: "src-not-in-permit-list",
			run: func(d *DeclarativeFig1, m *core.FaultMonitor) (core.EIP, addr.IP, error) {
				return d.WebSrv, addr.IP(d.DBService), nil
			},
		},
		{
			name: "backend node down", fault: "fail node db-1",
			expect: "node-down:cloudB/b-east/az1/host1",
			run: func(d *DeclarativeFig1, m *core.FaultMonitor) (core.EIP, addr.IP, error) {
				w := d.World
				err := m.Inj.FailNode(node(w.CloudB, w.RegionsB[0], "az1", 1))
				return d.Spark1, addr.IP(d.DB1), err
			},
		},
		{
			name: "backend region down", fault: "fail region cloudB/b-east",
			expect: "region-down:cloudB/b-east",
			run: func(d *DeclarativeFig1, m *core.FaultMonitor) (core.EIP, addr.IP, error) {
				err := m.Inj.FailRegion(d.World.CloudB, d.World.RegionsB[0])
				return d.Spark1, addr.IP(d.DBService), err
			},
			advance: sim.Time(time.Second),
		},
		{
			name: "all backends down", fault: "fail nodes db-1 and db-2",
			expect: "no-healthy-backend",
			run: func(d *DeclarativeFig1, m *core.FaultMonitor) (core.EIP, addr.IP, error) {
				w := d.World
				if err := m.Inj.FailNode(node(w.CloudB, w.RegionsB[0], "az1", 1)); err != nil {
					return 0, 0, err
				}
				err := m.Inj.FailNode(node(w.CloudB, w.RegionsB[0], "az2", 1))
				return d.Spark1, addr.IP(d.DBService), err
			},
			advance: sim.Time(time.Second),
		},
		{
			name: "access link cut", fault: "fail link cloudB/b-east/az1/h1",
			expect: "link-down:cloudB/b-east/az1/h1",
			run: func(d *DeclarativeFig1, m *core.FaultMonitor) (core.EIP, addr.IP, error) {
				err := m.Inj.FailLink("cloudB/b-east/az1/h1")
				return d.Spark1, addr.IP(d.DB1), err
			},
		},
		{
			name: "source VM down", fault: "fail node spark-1",
			expect: "node-down:cloudA/a-east/az1/host1",
			run: func(d *DeclarativeFig1, m *core.FaultMonitor) (core.EIP, addr.IP, error) {
				w := d.World
				err := m.Inj.FailNode(node(w.CloudA, w.RegionsA[0], "az1", 1))
				return d.Spark1, addr.IP(d.DBService), err
			},
		},
		{
			name: "permit update deferred", fault: "fail node, then set_permit_list",
			expect: "permit-pending",
			run: func(d *DeclarativeFig1, m *core.FaultMonitor) (core.EIP, addr.IP, error) {
				w := d.World
				target := node(w.CloudB, w.RegionsB[0], "az1", 2)
				extra, err := d.ProvB.RequestEIP(Tenant, target)
				if err != nil {
					return 0, 0, err
				}
				if err := m.Inj.FailNode(target); err != nil {
					return 0, 0, err
				}
				err = d.ProvB.SetPermitList(Tenant, addr.IP(extra),
					[]permit.Entry{addr.NewPrefix(d.Spark1, 32)})
				return d.Spark1, addr.IP(extra), err
			},
		},
		{
			name: "failover absorbed the fault", fault: "fail node db-1, monitor reacts",
			expect: "",
			run: func(d *DeclarativeFig1, m *core.FaultMonitor) (core.EIP, addr.IP, error) {
				w := d.World
				err := m.Inj.FailNode(node(w.CloudB, w.RegionsB[0], "az1", 1))
				return d.Spark1, addr.IP(d.DBService), err
			},
			advance: sim.Time(2 * time.Second),
		},
	}
}

// e12RunScenario builds a fresh declarative world, injects one fault, and
// scores the replayed explanation against the planted ground truth.
func e12RunScenario(sc e12Scenario, seed int64) (verdict string, match bool, err error) {
	d, err := BuildDeclarativeFig1(seed, 3)
	if err != nil {
		return "", false, err
	}
	m := d.Cloud.EnableFaults(core.FaultPolicy{
		HealthInterval: 250 * time.Millisecond,
		DownAfter:      2,
		RebindBackoff:  time.Second,
	})
	d.Cloud.EnableObservability(obs.NewTracer(0), nil)
	src, dst, err := sc.run(d, m)
	if err != nil {
		return "", false, err
	}
	if sc.advance > 0 {
		d.Cloud.Eng.RunUntil(d.Cloud.Eng.Now() + sc.advance)
	}
	ex, err := d.Cloud.Explain(Tenant, src, dst)
	if err != nil {
		return "", false, err
	}
	if sc.expect == "" {
		return verdictString(ex), ex.Reachable && ex.RootCause == "", nil
	}
	return verdictString(ex), strings.Contains(ex.RootCause, sc.expect), nil
}

func verdictString(ex *core.Explanation) string {
	if ex.Reachable {
		return "reachable"
	}
	return ex.RootCause
}

// e12Reps is how many times each overhead arm runs; the minimum wall
// clock is reported to damp scheduler noise.
const e12Reps = 5

type e12ArmStats struct {
	connects, errors int
	traceEvents      uint64
	samples          int
	wall             time.Duration
}

// e12Overhead measures both arms of the overhead workload. One unmeasured
// warmup run of each arm comes first and the measured reps interleave the
// arms — running one arm's reps back to back hands the second arm a warm
// heap and fault-free pages, which shows up as phantom overhead (or
// phantom speedup) an order of magnitude larger than the real delta.
func e12Overhead(connects int, seed int64) (instr, strip e12ArmStats, err error) {
	if _, err = e12ArmOnce(true, connects, seed); err != nil {
		return
	}
	if _, err = e12ArmOnce(false, connects, seed); err != nil {
		return
	}
	for rep := 0; rep < e12Reps; rep++ {
		i, ierr := e12ArmOnce(true, connects, seed)
		if ierr != nil {
			err = ierr
			return
		}
		s, serr := e12ArmOnce(false, connects, seed)
		if serr != nil {
			err = serr
			return
		}
		if rep == 0 || i.wall < instr.wall {
			instr = i
		}
		if rep == 0 || s.wall < strip.wall {
			strip = s
		}
	}
	return
}

func e12ArmOnce(instrument bool, connects int, seed int64) (e12ArmStats, error) {
	var st e12ArmStats
	d, err := BuildDeclarativeFig1(seed, 3)
	if err != nil {
		return st, err
	}
	c := d.Cloud
	m := c.EnableFaults(core.FaultPolicy{
		HealthInterval: 250 * time.Millisecond,
		DownAfter:      2,
		RebindBackoff:  time.Second,
	})
	var tracer *obs.Tracer
	var reg *metrics.Registry
	if instrument {
		tracer = obs.NewTracer(0)
		reg = metrics.NewRegistry()
	}
	c.EnableObservability(tracer, reg)

	const rate = 1000.0 // connects per simulated second
	horizon := sim.Time(float64(connects) / rate * float64(time.Second))
	deadNode := topo.HostID(d.World.CloudB, d.World.RegionsB[0], "az1", 1)
	c.Eng.Schedule(horizon/4, func() {
		if err := m.Inj.FailNode(deadNode); err != nil {
			panic(err)
		}
	})
	c.Eng.Schedule(horizon/2, func() {
		if err := m.Inj.RestoreNode(deadNode); err != nil {
			panic(err)
		}
	})

	gap := sim.Time(float64(time.Second) / rate)
	done := 0
	var tick func()
	tick = func() {
		if done >= connects {
			return
		}
		done++
		st.connects++
		if done%100 == 0 {
			// Permit churn keeps the permit-update decision point hot.
			if err := d.ProvB.SetPermitList(Tenant, addr.IP(d.DBService),
				[]permit.Entry{addr.NewPrefix(d.Spark1, 32), addr.NewPrefix(d.Spark2, 32),
					addr.NewPrefix(d.Alerts, 32)}); err != nil {
				panic(err)
			}
		}
		conn, cerr := c.Connect(Tenant, d.Spark1, d.DBService, core.ConnectOpts{SizeBytes: -1})
		if cerr != nil {
			st.errors++
		} else {
			conn.Close()
		}
		c.Eng.After(gap, tick)
	}
	c.Eng.After(0, tick)

	// The timed window measures the instrumentation's CPU cost. GC pacing
	// is excluded: whether a collection lands inside a 70ms window depends
	// on heap history from previous runs, not on this arm's behavior, and
	// that scheduling noise is an order of magnitude larger than the delta
	// being measured. The heap is collected between runs instead.
	runtime.GC()
	old := debug.SetGCPercent(-1)
	start := time.Now()
	c.Eng.RunUntil(horizon + gap)
	st.wall = time.Since(start)
	debug.SetGCPercent(old)

	if tracer != nil {
		st.traceEvents = tracer.Recorded()
	}
	if reg != nil {
		st.samples = len(reg.Snapshot())
	}
	return st, nil
}
