package exp

import (
	"fmt"
	"time"

	"declnet/internal/addr"
	"declnet/internal/metrics"
	"declnet/internal/permit"
	"declnet/internal/sim"
	"declnet/internal/workload"
)

// E4PermitScale answers §6(i)'s second question: "Does a (dynamic) shared
// permit-list between tenants and cloud providers scale?"
//
// For each deployment size it builds a Zipf communication matrix, plays
// instance churn against a replicated permit engine (control plane plus
// distributed enforcement points behind a propagation lag), and reports:
//
//   - state size: endpoints guarded and total permit entries,
//   - update load: permit-plane updates issued by the churn,
//   - lookup cost: wall-clock throughput of the enforcement check,
//   - staleness: revoked-but-still-admitted incidents during the
//     propagation window (the consistency risk of a shared dynamic list).
func E4PermitScale(scales []int, fanout int, lag sim.Time, seed int64) (*metrics.Table, error) {
	if fanout < 1 {
		fanout = 8
	}
	t := &metrics.Table{
		Title: "E4: permit-list scalability under churn (§6(i))",
		Columns: []string{"endpoints", "entries", "updates", "lookups/us",
			"stale admits", "lag"},
	}
	results, err := sweepCells(len(scales), func(cell int) (e4Result, error) {
		return e4Run(scales[cell], fanout, lag, seed)
	})
	if err != nil {
		return nil, err
	}
	for _, res := range results {
		t.AddRow(res.endpoints, res.entries, res.updates,
			fmt.Sprintf("%.1f", res.lookupsPerMicro), res.staleAdmits, lag.String())
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("fanout=%d permitted sources per endpoint (Zipf-skewed matrix)", fanout),
		"stale admits = checks that passed at a replica after the origin revoked the source")
	return t, nil
}

type e4Result struct {
	endpoints       int
	entries         int
	updates         uint64
	lookupsPerMicro float64
	staleAdmits     int
}

func e4Run(n, fanout int, lag sim.Time, seed int64) (e4Result, error) {
	eng := sim.New(seed)
	rs := permit.NewReplicaSet(eng, 4, lag)

	// Endpoint i gets EIP base+i; the matrix permits fanout sources each.
	base := addr.MustParseIP("100.64.0.0")
	eipOf := func(i int) addr.IP { return base + addr.IP(i) }
	pairs := workload.CommMatrix(seed, n, fanout, 1.3)
	for _, p := range pairs {
		rs.Permit(eipOf(p.Dst), addr.NewPrefix(eipOf(p.Src), 32))
	}
	eng.Run() // drain propagation

	// Churn: 10% of endpoints revoke one source and admit another, with
	// admission checks racing the propagation window. Each revocation is
	// probed at a replica halfway through the lag window: those probes
	// are the stale admits.
	staleAdmits := 0
	churn := n / 10
	if churn < 1 {
		churn = 1
	}
	for i := 0; i < churn; i++ {
		dst := eipOf(i)
		victim := pairs[i%len(pairs)]
		src := eipOf(victim.Src)
		rs.Revoke(dst, addr.NewPrefix(src, 32))
		probeAt := eng.Now() + lag/2
		eng.Schedule(probeAt, func() {
			if rs.Check(0, src, dst) {
				staleAdmits++
			}
		})
		eng.RunUntil(eng.Now() + lag + time.Millisecond)
	}

	// Lookup throughput: wall-clock over a mixed hit/miss probe set.
	origin := rs.Origin()
	const probes = 200000
	start := time.Now()
	for i := 0; i < probes; i++ {
		origin.Check(eipOf(i%n)+1, eipOf((i*7)%n))
	}
	elapsed := time.Since(start)
	perMicro := float64(probes) / float64(elapsed.Microseconds())

	return e4Result{
		endpoints:       origin.Endpoints(),
		entries:         origin.TotalEntries(),
		updates:         origin.Updates.Load(),
		lookupsPerMicro: perMicro,
		staleAdmits:     staleAdmits,
	}, nil
}
