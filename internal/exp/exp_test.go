package exp

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"declnet/internal/addr"
	"declnet/internal/core"
	"declnet/internal/gateway"
	"declnet/internal/vnet"
)

func TestBaselineFig1Functional(t *testing.T) {
	b, err := BuildBaselineFig1()
	if err != nil {
		t.Fatal(err)
	}
	// Spark -> DB across clouds via TGW peering.
	if v := b.SparkToDB(); !v.Delivered {
		t.Fatalf("spark->db: %v", v)
	}
	// Spark -> on-prem alert manager via TGW site attachment.
	v := b.Env.Fabric.Evaluate(
		gateway.Source{Kind: gateway.FromInstance, VPCID: b.Analytics.ID, InstanceID: b.Spark1.ID},
		vnet.Packet{Src: b.Spark1.PrivateIP, Dst: mustIP("192.168.1.10"), Proto: vnet.TCP, DstPort: 443})
	if !v.Delivered {
		t.Fatalf("spark->onprem: %v", v)
	}
	// On-prem -> DB (site routes through TGW-A over the peering to hub-B).
	v = b.Env.Fabric.Evaluate(
		gateway.Source{Kind: gateway.FromSite, SiteID: "hq"},
		vnet.Packet{Src: mustIP("192.168.1.10"), Dst: b.DB1.PrivateIP, Proto: vnet.TCP, DstPort: 5432})
	if !v.Delivered {
		t.Fatalf("onprem->db: %v", v)
	}
	// The DPI firewall on the db VNet still blocks hostile payloads.
	v = b.Env.Fabric.Evaluate(
		gateway.Source{Kind: gateway.FromInstance, VPCID: b.Analytics.ID, InstanceID: b.Spark1.ID},
		vnet.Packet{Src: b.Spark1.PrivateIP, Dst: b.DB1.PrivateIP, Proto: vnet.TCP, DstPort: 5432,
			Payload: "x'; DROP TABLE users; --"})
	if v.Delivered {
		t.Fatal("DPI firewall did not block hostile payload")
	}
	// Paper claim anchor: exactly 6 VPCs.
	if got := b.Env.Ledger.BoxesOf("vpc"); got != 6 {
		t.Fatalf("VPC count = %d, want 6 (Fig. 1)", got)
	}
}

func mustIP(s string) addr.IP { return addr.MustParseIP(s) }

func TestDeclarativeFig1Functional(t *testing.T) {
	d, err := BuildDeclarativeFig1(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SparkToDB(); err != nil {
		t.Fatal(err)
	}
	// Alerts (on-prem) may reach the DB service too.
	conn, err := d.Cloud.Connect(Tenant, d.Alerts, d.DBService, core.ConnectOpts{SizeBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	// Spark cannot reach the on-prem endpoint the other way unless
	// permitted — web is not on alerts' list.
	if d.Cloud.Admitted(d.WebSrv, d.Alerts) {
		t.Fatal("web admitted to alerts without permit entry")
	}
	if d.TotalAPICalls() == 0 || d.TotalAPICalls() > 30 {
		t.Fatalf("API calls = %d, want a small number", d.TotalAPICalls())
	}
}

func TestE1(t *testing.T) {
	tb, err := E1BoxCount()
	if err != nil {
		t.Fatal(err)
	}
	text := tb.Text()
	if !strings.Contains(text, "virtual networks") {
		t.Fatalf("table missing rows:\n%s", text)
	}
	// The headline: baseline boxes >> 0, declarative boxes == 0.
	for _, row := range tb.Rows {
		if row[0] == "total network boxes" {
			if row[2] != "0" {
				t.Fatalf("declarative boxes = %s, want 0", row[2])
			}
			if row[1] == "0" {
				t.Fatal("baseline boxes = 0")
			}
		}
	}
}

func TestE2(t *testing.T) {
	tb, err := E2Catalog()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 10 {
		t.Fatalf("catalog rows = %d, want >= 10 component kinds", len(tb.Rows))
	}
	seen := map[string]bool{}
	for _, r := range tb.Rows {
		seen[r[0]] = true
	}
	for _, want := range []string{"vpc", "transit-gateway", "nat-gateway", "security-group"} {
		if !seen[want] {
			t.Fatalf("catalog missing %q", want)
		}
	}
}

func TestE3SmallScale(t *testing.T) {
	tb, err := E3RoutingScale([]int{500}, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	row := tb.Rows[0]
	live, _ := strconv.Atoi(row[0])
	vpcRoutes, _ := strconv.Atoi(row[1])
	flat, _ := strconv.Atoi(row[2])
	zoneAgg, _ := strconv.Atoi(row[3])
	fresh, _ := strconv.Atoi(row[4])
	if live < 100 {
		t.Fatalf("live = %d, churn trace too small", live)
	}
	if vpcRoutes >= flat {
		t.Fatal("VPC aggregation not smaller than flat /32s")
	}
	if zoneAgg >= flat {
		t.Fatal("zone-pooled aggregation did not shrink the table")
	}
	if fresh > zoneAgg {
		t.Fatal("fresh allocation aggregates worse than churned")
	}
}

func TestE4SmallScale(t *testing.T) {
	tb, err := E4PermitScale([]int{500}, 4, 20*time.Millisecond, 7)
	if err != nil {
		t.Fatal(err)
	}
	row := tb.Rows[0]
	entries, _ := strconv.Atoi(row[1])
	if entries < 500*4/2 {
		t.Fatalf("entries = %d, want >= fanout*endpoints/2", entries)
	}
	stale, _ := strconv.Atoi(row[4])
	if stale == 0 {
		t.Fatal("no stale admits observed mid-propagation; staleness model broken")
	}
}

func TestE5SmallScale(t *testing.T) {
	tb, err := E5QuotaEnforce([]int{20}, []simTimes{100 * time.Millisecond}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	meanErr, _ := strconv.ParseFloat(tb.Rows[0][2], 64)
	if meanErr > 50 {
		t.Fatalf("mean enforcement error = %v%%, limiter broken", meanErr)
	}
}

type simTimes = time.Duration

func TestE6Shape(t *testing.T) {
	tb, err := E6QoSPotato(100, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Extract p50 RTT per transport for the cloudA->cloudB pair.
	rtt := map[string]time.Duration{}
	for _, row := range tb.Rows {
		if row[0] != "cloudA->cloudB" {
			continue
		}
		d, err := time.ParseDuration(row[2])
		if err != nil {
			t.Fatalf("bad duration %q", row[2])
		}
		rtt[row[1]] = d
	}
	// Shape: dedicated <= cold < hot on median RTT.
	if !(rtt["dedicated"] <= rtt["cold"]) {
		t.Fatalf("dedicated (%v) slower than cold (%v)", rtt["dedicated"], rtt["cold"])
	}
	if !(rtt["cold"] < rtt["hot"]) {
		t.Fatalf("cold (%v) not faster than hot (%v)", rtt["cold"], rtt["hot"])
	}
	// The paper's conjecture: cold within a modest factor of dedicated.
	if rtt["cold"] > 3*rtt["dedicated"] {
		t.Fatalf("cold potato (%v) not a plausible approximation of dedicated (%v)", rtt["cold"], rtt["dedicated"])
	}
}

func TestE7Shape(t *testing.T) {
	tb, err := E7Security(5, 7)
	if err != nil {
		t.Fatal(err)
	}
	find := func(attack string) []string {
		for _, r := range tb.Rows {
			if r[0] == attack {
				return r
			}
		}
		t.Fatalf("missing attack row %q", attack)
		return nil
	}
	atoi := func(s string) int { v, _ := strconv.Atoi(s); return v }
	// DDoS: both models block at network layer, fully.
	ddos := find("volumetric-ddos")
	if atoi(ddos[2]) != 5 || atoi(ddos[5]) != 5 {
		t.Fatalf("ddos not network-blocked in both models: %v", ddos)
	}
	// Payload exploit: baseline blocks via DPI, declarative leaks (the
	// acknowledged §4 gap: no custom middleboxes).
	exp := find("payload-exploit")
	if atoi(exp[2]) != 5 {
		t.Fatalf("baseline DPI did not block exploits: %v", exp)
	}
	if atoi(exp[7]) != 5 {
		t.Fatalf("declarative model should leak payload exploits to the app: %v", exp)
	}
	// Lateral movement: CIDR trust lets the compromised bastion through
	// the baseline's network layer (the app gateway catches it), while
	// per-EIP permit lists stop it at the network.
	lat := find("lateral-movement")
	if atoi(lat[2]) != 0 {
		t.Fatalf("baseline CIDR trust should admit lateral movement through the network: %v", lat)
	}
	if atoi(lat[3]) != 5 {
		t.Fatalf("baseline should catch lateral movement only at the app layer: %v", lat)
	}
	if atoi(lat[5]) != 5 {
		t.Fatalf("declarative permit list should network-block lateral movement: %v", lat)
	}
	// No category leaks past both layers in both models except the
	// declarative payload-exploit gap.
	for _, r := range tb.Rows {
		if r[0] == "payload-exploit" {
			continue
		}
		if atoi(r[4]) != 0 {
			t.Fatalf("baseline fully leaked %s: %v", r[0], r)
		}
		if atoi(r[7]) != 0 {
			t.Fatalf("declarative fully leaked %s: %v", r[0], r)
		}
	}
}

func TestE8Shape(t *testing.T) {
	tb, err := E8Migration(7)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string][2]int{}
	for _, r := range tb.Rows {
		a, _ := strconv.Atoi(r[1])
		b, _ := strconv.Atoi(r[2])
		vals[r[0]] = [2]int{a, b}
	}
	steps := vals["provisioning steps"]
	if steps[1] >= steps[0] {
		t.Fatalf("declarative migration (%d steps) not cheaper than baseline (%d)", steps[1], steps[0])
	}
	if vals["new concepts learned"][0] == 0 {
		t.Fatal("baseline migration learned no new concepts; fragmentation model broken")
	}
	if vals["new concepts learned"][1] != 0 {
		t.Fatal("declarative migration should need no new concepts")
	}
}

func TestE9Shape(t *testing.T) {
	tb, err := E9Potato(100, 7)
	if err != nil {
		t.Fatal(err)
	}
	// For every client region, cold p50 <= hot p50 (backbone beats
	// transit), and delivery(cold) >= delivery(hot).
	type m struct {
		p50      time.Duration
		delivery float64
	}
	got := map[string]map[string]m{}
	for _, r := range tb.Rows {
		if got[r[0]] == nil {
			got[r[0]] = map[string]m{}
		}
		d, _ := time.ParseDuration(r[2])
		del, _ := strconv.ParseFloat(r[4], 64)
		got[r[0]][r[1]] = m{d, del}
	}
	for region, byPolicy := range got {
		// Intra-cloud clients legitimately take the same backbone path
		// under both profiles; allow jitter-level noise.
		if byPolicy["cold"].p50 > byPolicy["hot"].p50+2*time.Millisecond {
			t.Fatalf("%s: cold (%v) slower than hot (%v)", region, byPolicy["cold"].p50, byPolicy["hot"].p50)
		}
		if byPolicy["cold"].delivery < byPolicy["hot"].delivery-0.5 {
			t.Fatalf("%s: cold delivery below hot", region)
		}
	}
}

func TestE10Shape(t *testing.T) {
	tb, err := E10Availability(100, 7)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string][2]string{}
	for _, r := range tb.Rows {
		vals[r[0]] = [2]string{r[1], r[2]}
	}
	// Equivalent availability: both error rates nonzero (failures before
	// detection) and within 2x of each other.
	be, _ := strconv.ParseFloat(vals["error rate %"][0], 64)
	de, _ := strconv.ParseFloat(vals["error rate %"][1], 64)
	if be == 0 || de == 0 {
		t.Fatalf("error rates = %v/%v; failure window not modeled", be, de)
	}
	if de > 2*be+1 || be > 2*de+1 {
		t.Fatalf("availability not comparable: baseline %v%%, declarative %v%%", be, de)
	}
	// Zero tenant config on the declarative side.
	if vals["tenant config params"][1] != "0" || vals["tenant boxes"][1] != "0" {
		t.Fatal("declarative side should need zero tenant configuration")
	}
	if vals["tenant config params"][0] == "0" {
		t.Fatal("baseline LB should charge configuration")
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 15 {
		t.Fatalf("registry size = %d, want 15", len(all))
	}
	if _, err := ByID("E7"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("E99"); err == nil {
		t.Fatal("unknown experiment found")
	}
}
