package exp

import (
	"fmt"
	"os"
	"strings"
	"time"

	"declnet/internal/addr"
	"declnet/internal/core"
	"declnet/internal/intent"
	"declnet/internal/metrics"
	"declnet/internal/obs"
	"declnet/internal/permit"
	"declnet/internal/topo"
)

// E15 soak geometry. The soak is a pure function of (seed, rounds):
// churn, drift, faults, and crash points all derive from the round
// index, so two runs produce the same table modulo the one measured
// wall-clock cell (mean recovery time), which the golden masks.
const (
	// e15Rounds is the golden tier: six rounds cover every drift
	// surface twice and land one mid-divergence crash. `make soak`
	// raises it to 48 via DECLNET_SOAK_ROUNDS (24 virtual hours).
	e15Rounds = 6
	// e15VirtualStep is simulated time per round, split around the
	// node fail/heal flap so the provider health loop ticks through
	// both states.
	e15VirtualStep = 30 * time.Minute
	// e15FlapPairs permit add/revoke pairs per round: mutation churn
	// that the journal must absorb without the declared and enforced
	// permit lists drifting apart.
	e15FlapPairs = 8
	// e15ChurnTenants distinct churn tenants cycled across rounds;
	// each round's grant is released e15ChurnTenants rounds later, so
	// the journal sees the full grant/release inversion surface.
	e15ChurnTenants = 4
	// e15MaxSweeps bounds the convergence loop per divergence window:
	// one sweep repairs, the next must confirm zero drift.
	e15MaxSweeps = 8
)

// e15World is one independently constructed copy of the soak world:
// Fig-1 topology, two cloud providers plus on-prem, a decision tracer,
// and a fault injector. The soak runs two of them — the subject (with
// the durable store and reconciler) and an uncrashed oracle — and
// requires them byte-equivalent after every round.
type e15World struct {
	fig    *topo.Fig1World
	c      *core.Cloud
	pa, pb *core.Provider
	tracer *obs.Tracer
}

func newE15World(seed int64) (*e15World, error) {
	w := topo.BuildFig1(2)
	c := core.NewCloud(seed, w.Graph)
	pa, err := c.AddProvider(w.CloudA, core.Config{
		EIPBase: addr.MustParsePrefix("100.64.0.0/10"),
		SIPBase: addr.MustParsePrefix("100.127.0.0/16"),
	})
	if err != nil {
		return nil, fmt.Errorf("exp: E15 world: %w", err)
	}
	pb, err := c.AddProvider(w.CloudB, core.Config{
		EIPBase: addr.MustParsePrefix("104.0.0.0/8"),
		SIPBase: addr.MustParsePrefix("104.255.0.0/16"),
	})
	if err != nil {
		return nil, fmt.Errorf("exp: E15 world: %w", err)
	}
	if _, err := c.AddProvider("onprem", core.Config{
		EIPBase: addr.MustParsePrefix("108.0.0.0/8"),
		SIPBase: addr.MustParsePrefix("108.255.0.0/16"),
	}); err != nil {
		return nil, fmt.Errorf("exp: E15 world: %w", err)
	}
	// A large ring so per-round cumulative event counts never lose
	// older reconcile events to eviction.
	tracer := obs.NewTracer(1 << 16)
	c.EnableObservability(tracer, nil)
	c.EnableFaults(core.FaultPolicy{})
	return &e15World{fig: w, c: c, pa: pa, pb: pb, tracer: tracer}, nil
}

// e15Addrs is the fixed address cast: two cloudA EIPs (a2 permits a1),
// a cloudB backend EIP bound to a service SIP that permits a1, and a
// QoS cap on the backend's region. b1 keeps no permit list, so the
// third Explain probe exercises the default-off deny verdict.
type e15Addrs struct {
	a1, a2, b1 core.EIP
	s          core.SIP
}

func (w *e15World) setup() (e15Addrs, error) {
	var a e15Addrs
	var err error
	if a.a1, err = w.pa.RequestEIP("acme", topo.HostID(w.fig.CloudA, "a-east", "az1", 1)); err != nil {
		return a, err
	}
	if a.a2, err = w.pa.RequestEIP("acme", topo.HostID(w.fig.CloudA, "a-west", "az1", 1)); err != nil {
		return a, err
	}
	if a.b1, err = w.pb.RequestEIP("acme", topo.HostID(w.fig.CloudB, "b-east", "az1", 1)); err != nil {
		return a, err
	}
	if a.s, err = w.pb.RequestSIP("acme"); err != nil {
		return a, err
	}
	if err = w.pb.Bind("acme", a.b1, a.s, 1); err != nil {
		return a, err
	}
	exact := func(e core.EIP) permit.Entry { return addr.NewPrefix(addr.IP(e), 32) }
	if err = w.pa.SetPermitList("acme", addr.IP(a.a2), []permit.Entry{exact(a.a1)}); err != nil {
		return a, err
	}
	if err = w.pb.SetPermitList("acme", addr.IP(a.s), []permit.Entry{exact(a.a1)}); err != nil {
		return a, err
	}
	err = w.pb.SetQoS("acme", "b-east", 1e9)
	return a, err
}

// e15Churn applies round r's deterministic mutation plan: a fresh grant
// plus permit list for the round's churn tenant, a burst of permit
// add/revoke flaps on the service address, a QoS rewrite, and (once the
// pipeline is full) the release of the grant from e15ChurnTenants
// rounds ago. The same plan runs against subject and oracle.
func e15Churn(w *e15World, a e15Addrs, r int, grants []core.EIP) (eip core.EIP, err error) {
	tn := fmt.Sprintf("churn%02d", r%e15ChurnTenants)
	az := "az1"
	if r%2 == 1 {
		az = "az2"
	}
	if eip, err = w.pa.RequestEIP(tn, topo.HostID(w.fig.CloudA, "a-east", az, r%2+1)); err != nil {
		return eip, err
	}
	if err = w.pa.SetPermitList(tn, addr.IP(eip), []permit.Entry{addr.NewPrefix(addr.IP(a.a1), 32)}); err != nil {
		return eip, err
	}
	flap := addr.NewPrefix(addr.IP(a.a2), 32)
	for i := 0; i < e15FlapPairs; i++ {
		if err = w.pb.Permit("acme", addr.IP(a.s), flap); err != nil {
			return eip, err
		}
		if err = w.pb.Revoke("acme", addr.IP(a.s), flap); err != nil {
			return eip, err
		}
	}
	if err = w.pb.SetQoS("acme", "b-east", float64(1+r%3)*1e9); err != nil {
		return eip, err
	}
	if r >= e15ChurnTenants {
		old := fmt.Sprintf("churn%02d", (r-e15ChurnTenants)%e15ChurnTenants)
		if err = w.pa.ReleaseEIP(old, grants[r-e15ChurnTenants]); err != nil {
			return eip, err
		}
	}
	return eip, nil
}

// e15Verdict is the comparable slice of an Explanation: the admission
// verdict and its root cause, with the virtual timestamp (which differs
// across a restart) deliberately excluded.
type e15Verdict struct {
	Reachable bool
	Root      string
}

func e15Explain(w *e15World, a e15Addrs) ([]e15Verdict, error) {
	out := make([]e15Verdict, 0, 3)
	for _, dst := range []addr.IP{addr.IP(a.a2), addr.IP(a.s), addr.IP(a.b1)} {
		ex, err := w.c.Explain("acme", a.a1, dst)
		if err != nil {
			return nil, err
		}
		out = append(out, e15Verdict{ex.Reachable, ex.RootCause})
	}
	return out, nil
}

// E15ChaosSoak runs the chaos soak: a subject world journaling every
// mutation into a durable intent store, an oracle world applying the
// identical churn without ever crashing. Each round flaps a node, churns
// grants/permits/QoS through both worlds, injects dataplane drift into
// the subject only, and every fourth round crashes the subject
// mid-divergence (the live Log abandoned un-Closed) and recovers it by
// replaying the store into a fresh world. Every divergence window must
// close — by reconciler sweep or by the restart rebuild — and after
// every round the subject's state digest and Explain verdicts must be
// byte-equivalent to the oracle's, with each reconciler repair
// accounted for in the decision trace as reconcile:* <- drift:*.
func E15ChaosSoak(seed int64, rounds int) (*metrics.Table, error) {
	dir, err := os.MkdirTemp("", "declnet-e15-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	subject, err := newE15World(seed)
	if err != nil {
		return nil, err
	}
	l, err := intent.Open(dir, intent.Options{})
	if err != nil {
		return nil, err
	}
	subject.c.EnableIntent(l)
	rec, err := subject.c.EnableReconciler(core.ReconcilerConfig{})
	if err != nil {
		return nil, err
	}
	oracle, err := newE15World(seed)
	if err != nil {
		return nil, err
	}
	sa, err := subject.setup()
	if err != nil {
		return nil, fmt.Errorf("exp: E15 subject setup: %w", err)
	}
	oa, err := oracle.setup()
	if err != nil {
		return nil, fmt.Errorf("exp: E15 oracle setup: %w", err)
	}
	if sa != oa {
		return nil, fmt.Errorf("exp: E15 worlds granted different addresses at setup: %+v vs %+v", sa, oa)
	}

	flapA := topo.HostID(subject.fig.CloudB, "b-west", "az2", 2)
	advance := func(w *e15World, d time.Duration) { w.c.Eng.RunUntil(w.c.Eng.Now() + d) }

	var (
		grants                         []core.EIP
		compactions, crashes           int
		recoveredOK, healedByRecovery  int
		driftP, driftB, driftQ         int
		opened, closed                 int
		repaired, deferred, sweeps     int
		traced, seenTraced             int
		digestOK, verdicts, mismatches int
		parityOK                       int
		poolDiverged                   int
		appendErrs                     uint64
		recoverWall                    time.Duration
	)

	for r := 0; r < rounds; r++ {
		// Churn: the identical mutation plan against both worlds. The
		// address pools must stay in lockstep — a diverging grant means
		// recovery did not restore the allocation cursors.
		sEIP, err := e15Churn(subject, sa, r, grants)
		if err != nil {
			return nil, fmt.Errorf("exp: E15 round %d subject churn: %w", r, err)
		}
		oEIP, err := e15Churn(oracle, oa, r, grants)
		if err != nil {
			return nil, fmt.Errorf("exp: E15 round %d oracle churn: %w", r, err)
		}
		if sEIP != oEIP {
			poolDiverged++
		}
		grants = append(grants, sEIP)

		// Fault/heal flap on a node hosting no bound backend: each heal
		// bumps the routing epoch and the health loop ticks through both
		// states as virtual time advances in both worlds.
		for _, w := range []*e15World{subject, oracle} {
			if err := w.c.Faults().Inj.FailNode(flapA); err != nil {
				return nil, err
			}
			advance(w, e15VirtualStep/3)
			if err := w.c.Faults().Inj.RestoreNode(flapA); err != nil {
				return nil, err
			}
			advance(w, 2*e15VirtualStep/3)
		}

		// Periodic snapshot + journal truncation, so recovery always
		// folds a snapshot and a live tail.
		if r%4 == 1 {
			if err := l.Compact(); err != nil {
				return nil, fmt.Errorf("exp: E15 round %d compact: %w", r, err)
			}
			compactions++
		}

		// Inject dataplane drift into the subject only, cycling the
		// three reconciled surfaces. Each injection opens a divergence
		// window that must close before the round ends.
		ok := false
		switch r % 3 {
		case 0:
			ok = subject.c.DriftWipePermit(addr.IP(sa.a2))
			driftP++
		case 1:
			ok = subject.c.DriftUnbind(sa.s, sa.b1)
			driftB++
		case 2:
			ok = subject.c.DriftZeroQuota(subject.pb.Name, "acme", "b-east")
			driftQ++
		}
		if !ok {
			return nil, fmt.Errorf("exp: E15 round %d: drift injection %d failed", r, r%3)
		}
		opened++

		// Every fourth round: crash mid-divergence. The live Log is
		// abandoned without Close, the store reopened, and a fresh world
		// rebuilt from snapshot + journal tail. The rebuild itself heals
		// the open window — the dataplane is reconstructed from declared
		// intent — and must land byte-identical to the oracle.
		if r%4 == 3 {
			crashes++
			start := time.Now()
			l2, err := intent.Open(dir, intent.Options{})
			if err != nil {
				return nil, fmt.Errorf("exp: E15 round %d reopen: %w", r, err)
			}
			fresh, err := newE15World(seed)
			if err != nil {
				return nil, err
			}
			if err := fresh.c.RestoreIntent(l2.State()); err != nil {
				return nil, fmt.Errorf("exp: E15 round %d restore: %w", r, err)
			}
			fresh.c.EnableIntent(l2)
			rec2, err := fresh.c.EnableReconciler(core.ReconcilerConfig{})
			if err != nil {
				return nil, err
			}
			recoverWall += time.Since(start)
			appendErrs += l.Stats().AppendErrors
			subject, l, rec = fresh, l2, rec2
			seenTraced = 0
			healedByRecovery++
			if subject.c.StateDigest() == oracle.c.StateDigest() {
				recoveredOK++
			}
		}

		// Converge: sweep until a sweep reports zero drift. Non-crash
		// rounds need two sweeps (repair, then confirm); crash rounds
		// confirm immediately since recovery already healed the window.
		converged := false
		for i := 0; i < e15MaxSweeps && !converged; i++ {
			res := rec.RunSweep()
			sweeps++
			repaired += res.Repaired
			deferred += res.Deferred
			converged = res.DriftPermits+res.DriftBinds+res.DriftQuotas == 0
		}
		if converged {
			closed++
		}

		// Equivalence: state digest and Explain verdicts against the
		// uncrashed oracle, every round.
		if subject.c.StateDigest() == oracle.c.StateDigest() {
			digestOK++
		}
		// The incremental digest (cached per-scope sections, invalidated
		// by the convergence tracker) must equal a cold full walk every
		// round — across churn, drift, repair, and crash recovery. A
		// divergence means a mutation path forgot to bump its scope.
		if subject.c.StateDigest() == subject.c.StateDigestFull() {
			parityOK++
		}
		sv, err := e15Explain(subject, sa)
		if err != nil {
			return nil, err
		}
		ov, err := e15Explain(oracle, oa)
		if err != nil {
			return nil, err
		}
		for i := range sv {
			verdicts++
			if sv[i] != ov[i] {
				mismatches++
			}
		}

		// Accounting: every reconciler repair must land in the decision
		// trace with a reconcile:* <- drift:* cause chain.
		count := 0
		for _, ev := range subject.tracer.Recent("acme", 0) {
			if ev.Kind == obs.Reconcile && ev.Verdict == "repaired" &&
				strings.Contains(ev.Cause, "reconcile:") && strings.Contains(ev.Cause, "drift:") {
				count++
			}
		}
		traced += count - seenTraced
		seenTraced = count
	}
	appendErrs += l.Stats().AppendErrors
	finalSeq := l.Seq()
	l.Close()

	t := &metrics.Table{
		Title:   "E15: chaos soak — durable intent, crash/restart recovery, reconciliation",
		Columns: []string{"metric", "value"},
	}
	yn := func(ok bool) string {
		if ok {
			return "yes"
		}
		return "no"
	}
	t.AddRow("rounds completed", fmt.Sprintf("%d", rounds))
	t.AddRow("virtual soak time", fmt.Sprintf("%d min (%d rounds of %d min)",
		rounds*int(e15VirtualStep/time.Minute), rounds, int(e15VirtualStep/time.Minute)))
	t.AddRow("mutations journaled (final seq)", fmt.Sprintf("%d", finalSeq))
	t.AddRow("snapshot compactions", fmt.Sprintf("%d", compactions))
	t.AddRow("crash/restart cycles", fmt.Sprintf("%d", crashes))
	t.AddRow("recoveries byte-identical to oracle", fmt.Sprintf("%d/%d", recoveredOK, crashes))
	if crashes > 0 {
		t.AddRow("mean recovery wall clock", fmt.Sprintf("%.2fms",
			float64(recoverWall.Microseconds())/float64(crashes)/1000))
	}
	t.AddRow("drift injected (permit/bind/qos)", fmt.Sprintf("%d/%d/%d", driftP, driftB, driftQ))
	t.AddRow("divergence windows opened/closed", fmt.Sprintf("%d/%d", opened, closed))
	t.AddRow("repaired by reconciler", fmt.Sprintf("%d", repaired))
	t.AddRow("healed by crash recovery", fmt.Sprintf("%d", healedByRecovery))
	t.AddRow("repairs deferred", fmt.Sprintf("%d", deferred))
	t.AddRow("reconciler sweeps", fmt.Sprintf("%d", sweeps))
	t.AddRow("repairs traced (reconcile:* <- drift:*)", fmt.Sprintf("%d", traced))
	t.AddRow("state digest matches", fmt.Sprintf("%d/%d", digestOK, rounds))
	t.AddRow("explain verdicts compared/mismatched", fmt.Sprintf("%d/%d", verdicts, mismatches))
	t.AddRow("journal append errors", fmt.Sprintf("%d", appendErrs))
	t.AddRow("pool grants identical across worlds", yn(poolDiverged == 0))
	gate := "pass"
	if opened != closed || digestOK != rounds || parityOK != rounds || mismatches != 0 ||
		traced != repaired || recoveredOK != crashes || healedByRecovery+repaired != opened ||
		appendErrs != 0 || poolDiverged != 0 {
		gate = "FAIL"
	}
	t.AddRow("soak gate", gate)
	t.AddNotef("drift cycles wipe-permit / unbind / zero-quota; every 4th round crashes the subject mid-divergence (Log abandoned un-Closed)")
	t.AddNotef("the oracle world applies identical churn uncrashed; digest and verdict cells compare subject against it byte-for-byte")
	t.AddNotef("recovery wall clock is measured and masked in the golden")
	return t, nil
}
