package exp

import (
	"fmt"
	"math/rand"
	"testing"

	"declnet/internal/addr"
	"declnet/internal/cloudapi"
	"declnet/internal/core"
	"declnet/internal/gateway"
	"declnet/internal/permit"
	"declnet/internal/topo"
	"declnet/internal/vnet"
)

// The differential reachability oracle: a random tenant policy — "these
// sources may reach this destination" — is compiled both to declnet
// permit lists and to baseline security-group rules, and the two stacks
// must return identical allow/deny verdicts for every probe. Permit
// lists are address-scoped (no ports), so the baseline compilation opens
// all ports/protocols for each permitted source; any verdict difference
// is then a real semantic divergence between the permit plane and the
// VPC/SG plane, not a modeling artifact.
//
// diffPolicy[dst][src] is the ground truth both compilations encode.
type diffPolicy [][]bool

func randomPolicy(rng *rand.Rand, n int) diffPolicy {
	p := make(diffPolicy, n)
	for d := range p {
		p[d] = make([]bool, n)
		for s := range p[d] {
			if s != d && rng.Intn(3) > 0 { // ~2/3 dense, leaves real denies
				p[d][s] = rng.Intn(2) == 0
			}
		}
	}
	return p
}

// diffBaseline compiles the policy to one VPC with per-instance security
// groups and returns a verdict function over (src, dst, proto, port).
func diffBaseline(t *testing.T, pol diffPolicy) func(src, dst int, proto vnet.Protocol, port int) bool {
	t.Helper()
	n := len(pol)
	env := cloudapi.NewEnv()
	aws := cloudapi.NewAWS(env, "a-east")
	vpc, err := aws.CreateVpc("vpc-diff", "10.9.0.0/16", cloudapi.VpcOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := aws.CreateSubnet(vpc, "main", "10.9.1.0/24", "a-east-1a", false); err != nil {
		t.Fatal(err)
	}
	insts := make([]*vnet.Instance, n)
	for i := 0; i < n; i++ {
		sg := fmt.Sprintf("sg-%d", i)
		if err := aws.CreateSecurityGroup(vpc, sg, "per-instance allow-list"); err != nil {
			t.Fatal(err)
		}
		if err := aws.AuthorizeSecurityGroupEgress(vpc, sg, vnet.SGRule{Source: addr.MustParsePrefix("0.0.0.0/0")}); err != nil {
			t.Fatal(err)
		}
		insts[i], err = aws.RunInstance(vpc, fmt.Sprintf("i-%d", i), "main", sg)
		if err != nil {
			t.Fatal(err)
		}
	}
	// Ingress rules need the assigned private IPs, so they compile after
	// the instances exist: one all-port /32 rule per permitted source.
	for d := 0; d < n; d++ {
		for s := 0; s < n; s++ {
			if !pol[d][s] {
				continue
			}
			rule := vnet.SGRule{Proto: vnet.AnyProto, Source: addr.NewPrefix(insts[s].PrivateIP, 32)}
			if err := aws.AuthorizeSecurityGroupIngress(vpc, fmt.Sprintf("sg-%d", d), rule); err != nil {
				t.Fatal(err)
			}
		}
	}
	return func(src, dst int, proto vnet.Protocol, port int) bool {
		v := env.Fabric.Evaluate(
			gateway.Source{Kind: gateway.FromInstance, VPCID: vpc.ID, InstanceID: insts[src].ID},
			vnet.Packet{Src: insts[src].PrivateIP, Dst: insts[dst].PrivateIP, Proto: proto, DstPort: port})
		return v.Delivered
	}
}

// diffDeclnet compiles the same policy to Table-2 permit lists over EIPs
// and returns the admission verdict function.
func diffDeclnet(t *testing.T, pol diffPolicy, seed int64) func(src, dst int, proto vnet.Protocol, port int) bool {
	t.Helper()
	n := len(pol)
	w := topo.BuildFig1(3)
	c := core.NewCloud(seed, w.Graph)
	pa, err := c.AddProvider(w.CloudA, core.Config{
		EIPBase: addr.MustParsePrefix("100.64.0.0/10"),
		SIPBase: addr.MustParsePrefix("100.127.0.0/16"),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Spread endpoints across regions/zones/hosts so the EIPs come from
	// different dense blocks (the interesting case for prefix matching).
	eips := make([]core.EIP, n)
	i := 0
	for _, region := range w.RegionsA {
		for _, az := range []string{"az1", "az2"} {
			for h := 1; h <= 3 && i < n; h++ {
				eips[i], err = pa.RequestEIP(Tenant, topo.HostID(w.CloudA, region, az, h))
				if err != nil {
					t.Fatal(err)
				}
				i++
			}
		}
	}
	if i < n {
		t.Fatalf("world too small: placed %d of %d endpoints", i, n)
	}
	for d := 0; d < n; d++ {
		var entries []permit.Entry
		for s := 0; s < n; s++ {
			if pol[d][s] {
				entries = append(entries, addr.NewPrefix(eips[s], 32))
			}
		}
		if err := pa.SetPermitList(Tenant, eips[d], entries); err != nil {
			t.Fatal(err)
		}
	}
	return func(src, dst int, proto vnet.Protocol, port int) bool {
		// Admission is address-scoped by design: proto/port are part of
		// the probe only so both oracles see identical inputs.
		return c.Admitted(eips[src], eips[dst])
	}
}

func TestDifferentialReachability(t *testing.T) {
	const (
		nInstances = 12
		nProbes    = 1200
	)
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			pol := randomPolicy(rng, nInstances)
			base := diffBaseline(t, pol)
			decl := diffDeclnet(t, pol, seed)

			protos := []vnet.Protocol{vnet.TCP, vnet.UDP}
			mismatches := 0
			for p := 0; p < nProbes; p++ {
				src := rng.Intn(nInstances)
				dst := rng.Intn(nInstances)
				for dst == src {
					dst = rng.Intn(nInstances)
				}
				proto := protos[rng.Intn(len(protos))]
				port := 1 + rng.Intn(65535)
				want := pol[dst][src]
				gotBase := base(src, dst, proto, port)
				gotDecl := decl(src, dst, proto, port)
				if gotBase != gotDecl || gotBase != want {
					mismatches++
					if mismatches <= 5 {
						t.Errorf("probe %d→%d %s:%d: baseline=%v declnet=%v policy=%v",
							src, dst, proto, port, gotBase, gotDecl, want)
					}
				}
			}
			if mismatches > 0 {
				t.Fatalf("%d of %d probes disagreed", mismatches, nProbes)
			}
		})
	}
}

// A destination with an empty permit list must be unreachable from every
// source in both models — default-off is the paper's core security claim,
// and the baseline compilation (an SG with no ingress rules) encodes it
// identically.
func TestDifferentialDefaultOff(t *testing.T) {
	const n = 6
	pol := make(diffPolicy, n)
	for d := range pol {
		pol[d] = make([]bool, n)
	}
	base := diffBaseline(t, pol)
	decl := diffDeclnet(t, pol, 99)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			if base(s, d, vnet.TCP, 443) {
				t.Fatalf("baseline delivered %d→%d with empty allow-list", s, d)
			}
			if decl(s, d, vnet.TCP, 443) {
				t.Fatalf("declnet admitted %d→%d with empty permit list", s, d)
			}
		}
	}
}
