package exp

import (
	"fmt"
	"time"

	"declnet/internal/addr"
	"declnet/internal/metrics"
	"declnet/internal/routing"
	"declnet/internal/workload"
)

// E3RoutingScale answers §6(i)'s first question: "Does our assumption that
// all endpoints are given a publicly routable address scale in terms of
// the size of routing tables within a cloud provider?"
//
// It plays a launch/teardown churn trace against provider-core routing
// schemes and reports end-state table sizes and update load:
//
//   - vpc routes: today's model — the core carries one route per VPC
//     (tenants of ~250 instances each).
//   - flat: the paper's model with a single shared address pool and the
//     zone chosen by the scheduler — aggregation-hostile, one /32 per
//     live endpoint survives even after an aggregation pass.
//   - zone-pooled: the provider mitigation §4 enables ("maximize the
//     ability to aggregate"): one dense pool per zone, so sibling /32s
//     share a next hop and aggregation collapses them; churn holes only
//     partially degrade it.
//   - fresh: zone-pooled with no churn — the best case.
func E3RoutingScale(scales []int, zones int, seed int64) (*metrics.Table, error) {
	if zones < 1 {
		zones = 8
	}
	const instancesPerVPC = 250
	t := &metrics.Table{
		Title: "E3: provider core routing-table scale under churn (§6(i))",
		Columns: []string{"live endpoints", "vpc routes", "flat /32s",
			"zone-pooled agg", "fresh agg", "agg gain", "updates"},
	}
	results, err := sweepCells(len(scales), func(cell int) (e3Result, error) {
		return e3Run(scales[cell], zones, instancesPerVPC, seed)
	})
	if err != nil {
		return nil, err
	}
	for _, res := range results {
		t.AddRow(res.live, res.vpcRoutes, res.flatRoutes, res.zoneAggRoutes,
			res.freshAggRoutes,
			fmt.Sprintf("%.1fx", float64(res.flatRoutes)/float64(max(res.zoneAggRoutes, 1))),
			res.updates)
	}
	t.Notes = append(t.Notes,
		"vpc routes assume ~250 instances per VPC as in large tenant deployments",
		"flat = shared pool + scheduler-chosen zone (aggregation-hostile)",
		"zone-pooled = per-zone dense pools with churn holes; fresh = same without churn")
	return t, nil
}

type e3Result struct {
	live           int
	vpcRoutes      int
	flatRoutes     int
	zoneAggRoutes  int
	freshAggRoutes int
	updates        uint64
}

func e3Run(target, zones, perVPC int, seed int64) (e3Result, error) {
	// Scale the churn horizon so roughly `target` endpoints are live at
	// the end: with launch rate L and mean lifetime T, steady state is
	// L*T; pick T = 60s and run for 3 lifetimes.
	lifetime := 60 * time.Second
	rate := float64(target) / lifetime.Seconds()
	trace := workload.ChurnTrace(seed, workload.ChurnConfig{
		Tenants:      10,
		LaunchRate:   rate,
		MeanLifetime: lifetime,
		Horizon:      3 * lifetime,
	})

	// Scheme A — flat shared pool, scheduler round-robins zones.
	sharedPool := addr.NewHostPool(addr.MustParsePrefix("100.64.0.0/12"), 0)
	flat := &routing.Table{}
	flatByInstance := make(map[string]addr.IP)

	// Scheme B — per-zone dense pools.
	zoneBlocks := addr.NewBlockPool(addr.MustParsePrefix("104.0.0.0/12"))
	zonePools := make([]*addr.HostPool, zones)
	for z := range zonePools {
		blk, err := zoneBlocks.Allocate(16)
		if err != nil {
			return e3Result{}, err
		}
		zonePools[z] = addr.NewHostPool(blk, 0)
	}
	zoned := &routing.Table{}
	zonedByInstance := make(map[string]struct {
		ip   addr.IP
		zone int
	})

	nextZone := 0
	var updates uint64
	for _, ev := range trace {
		zone := nextZone % zones
		switch ev.Kind {
		case workload.Launch:
			nextZone++
			ip, err := sharedPool.Allocate()
			if err != nil {
				return e3Result{}, err
			}
			flat.Install(addr.NewPrefix(ip, 32), routing.NextHop{ID: zoneName(zone)})
			flatByInstance[ev.Instance] = ip

			zip, err := zonePools[zone].Allocate()
			if err != nil {
				return e3Result{}, err
			}
			zoned.Install(addr.NewPrefix(zip, 32), routing.NextHop{ID: zoneName(zone)})
			zonedByInstance[ev.Instance] = struct {
				ip   addr.IP
				zone int
			}{zip, zone}
			updates++
		case workload.Teardown:
			if ip, ok := flatByInstance[ev.Instance]; ok {
				flat.Withdraw(addr.NewPrefix(ip, 32))
				sharedPool.Release(ip)
				delete(flatByInstance, ev.Instance)
			}
			if rec, ok := zonedByInstance[ev.Instance]; ok {
				zoned.Withdraw(addr.NewPrefix(rec.ip, 32))
				zonePools[rec.zone].Release(rec.ip)
				delete(zonedByInstance, ev.Instance)
			}
			updates++
		}
	}

	live := len(flatByInstance)
	flatAgg := routing.Aggregate(flat.Routes())
	zoneAgg := routing.Aggregate(zoned.Routes())

	// Fresh zone-pooled allocation of the same endpoint count: the best
	// case the provider's allocator can reach.
	freshBlocks := addr.NewBlockPool(addr.MustParsePrefix("108.0.0.0/12"))
	var freshRoutes []routing.Route
	for z := 0; z < zones; z++ {
		blk, err := freshBlocks.Allocate(16)
		if err != nil {
			return e3Result{}, err
		}
		p := addr.NewHostPool(blk, 0)
		for i := 0; i < live/zones; i++ {
			ip, err := p.Allocate()
			if err != nil {
				return e3Result{}, err
			}
			freshRoutes = append(freshRoutes, routing.Route{
				Prefix: addr.NewPrefix(ip, 32),
				Hop:    routing.NextHop{ID: zoneName(z)},
			})
		}
	}
	freshAgg := routing.Aggregate(freshRoutes)

	vpcs := (live + perVPC - 1) / perVPC
	return e3Result{
		live:           live,
		vpcRoutes:      vpcs,
		flatRoutes:     len(flatAgg), // shared-pool aggregation barely helps; report post-agg
		zoneAggRoutes:  len(zoneAgg),
		freshAggRoutes: len(freshAgg),
		updates:        updates,
	}, nil
}

func zoneName(z int) string { return fmt.Sprintf("zone-%d", z) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
