package exp

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallel controls whether sweep experiments (E3/E4/E5) run their cells
// concurrently. Each cell builds its own sim.Engine from the same seed,
// so cells are independent and their results identical regardless of
// execution order; rows are emitted in cell order either way.
var parallel = true

// SetParallel toggles concurrent sweep-cell execution (the expdriver
// -serial flag and the determinism tests use it).
func SetParallel(on bool) { parallel = on }

// sweepCells evaluates fn for every cell index 0..n-1 and returns the
// results in index order. When parallel execution is on, cells run on a
// GOMAXPROCS-bounded worker pool; results and errors land in per-index
// slots, so the output is byte-identical to a serial run. On error the
// lowest-index failure is returned (again matching serial semantics,
// where the first failing cell aborts the sweep).
func sweepCells[T any](n int, fn func(cell int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	workers := runtime.GOMAXPROCS(0)
	if !parallel {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			var err error
			out[i], err = fn(i)
			if err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
