package exp

import (
	"fmt"

	"declnet/internal/addr"
	"declnet/internal/app"
	"declnet/internal/core"
	"declnet/internal/gateway"
	"declnet/internal/metrics"
	"declnet/internal/permit"
	"declnet/internal/topo"
	"declnet/internal/vnet"
	"declnet/internal/workload"
)

// exactEntry permits a single EIP.
func exactEntry(e core.EIP) permit.Entry { return addr.NewPrefix(e, 32) }

// E7Security answers §6(iii): does network-layer permit-list enforcement
// plus API-level access control provide security on par with today's
// private networks, ACLs, and DPI firewalls?
//
// It builds the same backend service (an "orders" API on the database
// tier) under both models, with the same API gateway in front, and drives
// the attack suite of package workload at it. For every attack category
// the table reports where each model stopped it — network layer,
// application layer, or not at all.
func E7Security(perKind int, seed int64) (*metrics.Table, error) {
	suite := workload.AttackSuite(seed, perKind)

	base, err := BuildBaselineFig1()
	if err != nil {
		return nil, err
	}
	if v := base.SparkToDB(); !v.Delivered {
		return nil, fmt.Errorf("exp: baseline not functional: %v", v)
	}
	decl, err := BuildDeclarativeFig1(seed, 2)
	if err != nil {
		return nil, err
	}
	// A compromised-but-network-permitted machine: in the baseline it is
	// a bastion inside the analytics VPC (inside the NSG's trusted
	// 10.0.0.0/16); in the declarative model it is an EIP that is NOT on
	// the database's permit list (permit lists name endpoints, not
	// CIDRs, so the bastion never got permitted).
	bastion, err := base.AWS.RunInstance(base.Analytics, "bastion-1", "pub", "spark")
	if err != nil {
		return nil, err
	}
	bastionEIP, err := decl.ProvA.RequestEIP(Tenant, topo.HostID(decl.World.CloudA, decl.World.RegionsA[0], "az2", 2))
	if err != nil {
		return nil, err
	}

	// Both models front the database with the same service-centric API
	// gateway (§4 assumption 1).
	newGateway := func() (*app.Gateway, string, string) {
		svc := app.NewService("orders",
			app.Operation{Name: "get_order", Scope: "read", Schema: []string{"id"}},
			app.Operation{Name: "admin_dump", Scope: "admin", Schema: nil},
		)
		g := app.NewGateway(svc)
		readTok := g.IssueToken("spark", "read")
		lowTok := g.IssueToken("intern", "read") // stolen low-privilege credential
		return g, readTok, lowTok
	}
	gwBase, readB, lowB := newGateway()
	gwDecl, readD, lowD := newGateway()

	type tally struct{ network, application, leaked int }
	results := map[workload.AttackKind]*struct{ base, decl tally }{}
	for _, k := range workload.AllAttackKinds() {
		results[k] = &struct{ base, decl tally }{}
	}

	for _, a := range suite {
		// ---- Baseline adaptation ----------------------------------------
		bres := runBaselineAttack(base, gwBase, readB, lowB, bastion, a)
		// ---- Declarative adaptation ---------------------------------------
		dres := runDeclarativeAttack(decl, gwDecl, readD, lowD, bastionEIP, a)
		r := results[a.Kind]
		switch bres {
		case "network":
			r.base.network++
		case "application":
			r.base.application++
		default:
			r.base.leaked++
		}
		switch dres {
		case "network":
			r.decl.network++
		case "application":
			r.decl.application++
		default:
			r.decl.leaked++
		}
	}

	t := &metrics.Table{
		Title: "E7: attack suite vs both security models (§6(iii))",
		Columns: []string{"attack", "n", "baseline blocked@net", "baseline blocked@app",
			"baseline leaked", "decl blocked@net", "decl blocked@app", "decl leaked"},
	}
	for _, k := range workload.AllAttackKinds() {
		r := results[k]
		t.AddRow(k.String(), perKind,
			r.base.network, r.base.application, r.base.leaked,
			r.decl.network, r.decl.application, r.decl.leaked)
	}
	t.Notes = append(t.Notes,
		"baseline = VPC isolation + SG/NSG + NACL + DPI firewall + API gateway",
		"declarative = default-off permit lists + the same API gateway (no DPI, per §4)",
		"lateral movement: baseline CIDR trust admits the compromised bastion; per-EIP permit lists do not")
	return t, nil
}

// runBaselineAttack pushes one attack at the baseline's database service.
// Returns "network", "application", or "leaked".
func runBaselineAttack(b *BaselineFig1, gw *app.Gateway, readTok, lowTok string, bastion *vnet.Instance, a workload.Attack) string {
	dstPort := a.DstPort
	if dstPort == 0 {
		dstPort = 5432
	}
	var verdict vnet.Verdict
	switch {
	case a.SrcExternal:
		// From the internet toward the database's (private) address: the
		// db has no public IP, so this probes an arbitrary guess at it.
		verdict = b.Env.Fabric.Evaluate(gateway.Source{Kind: gateway.FromInternet},
			vnet.Packet{Src: addr.MustParseIP("203.0.113.66"), Dst: b.DB1.PrivateIP,
				Proto: vnet.TCP, DstPort: dstPort, Payload: a.Payload})
	case a.SrcCompromised:
		verdict = b.Env.Fabric.Evaluate(
			gateway.Source{Kind: gateway.FromInstance, VPCID: b.Analytics.ID, InstanceID: bastion.ID},
			vnet.Packet{Src: bastion.PrivateIP, Dst: b.DB1.PrivateIP,
				Proto: vnet.TCP, DstPort: 5432, Payload: a.Payload})
	default:
		// From the legitimate spark tier.
		verdict = b.Env.Fabric.Evaluate(
			gateway.Source{Kind: gateway.FromInstance, VPCID: b.Analytics.ID, InstanceID: b.Spark1.ID},
			vnet.Packet{Src: b.Spark1.PrivateIP, Dst: b.DB1.PrivateIP,
				Proto: vnet.TCP, DstPort: 5432, Payload: a.Payload})
	}
	if !verdict.Delivered {
		return "network"
	}
	return apiOutcome(gw, readTok, lowTok, a)
}

// runDeclarativeAttack pushes one attack at the declarative model's
// database service.
func runDeclarativeAttack(d *DeclarativeFig1, gw *app.Gateway, readTok, lowTok string, bastion core.EIP, a workload.Attack) string {
	var src core.EIP
	switch {
	case a.SrcExternal:
		src = addr.MustParseIP("203.0.113.66") // not a granted EIP at all
	case a.SrcCompromised:
		src = bastion
	default:
		src = d.Spark1
	}
	if !d.Cloud.Admitted(src, d.DBService) {
		return "network"
	}
	return apiOutcome(gw, readTok, lowTok, a)
}

// apiOutcome runs the application half of an attack through the shared
// API gateway. PayloadExploit carries a well-formed, authorized call with
// hostile content — only DPI (absent in the declarative model, present in
// the baseline firewall which already ruled at the network layer) or
// application input validation can stop it; the gateway models schema
// checks, not content inspection, so it leaks.
func apiOutcome(gw *app.Gateway, readTok, lowTok string, a workload.Attack) string {
	req := app.Request{Bearer: readTok, Op: "get_order", Args: map[string]string{"id": "7"}}
	switch {
	case a.Anonymous:
		req.Bearer = ""
	case a.WrongScope:
		req.Bearer = lowTok
		req.Op = "admin_dump"
	case a.Malformed:
		req.Args = map[string]string{}
	case a.Kind == workload.PayloadExploit:
		req.Args = map[string]string{"id": a.Payload}
	}
	if out := gw.Handle(req); out != app.Served {
		return "application"
	}
	return "leaked"
}
