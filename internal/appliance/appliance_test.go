package appliance

import (
	"strings"
	"testing"

	"declnet/internal/addr"
	"declnet/internal/complexity"
	"declnet/internal/vnet"
)

func pfx(s string) addr.Prefix { return addr.MustParsePrefix(s) }
func ipa(s string) addr.IP     { return addr.MustParseIP(s) }

func TestTargetGroupHealth(t *testing.T) {
	g := NewTargetGroup("tg")
	g.Register("i-1")
	g.Register("i-2")
	if got := g.Healthy(); len(got) != 2 {
		t.Fatalf("Healthy = %v", got)
	}
	if err := g.SetHealth("i-1", false); err != nil {
		t.Fatal(err)
	}
	if got := g.Healthy(); len(got) != 1 || got[0] != "i-2" {
		t.Fatalf("Healthy after failure = %v", got)
	}
	if err := g.SetHealth("missing", true); err == nil {
		t.Fatal("SetHealth on unknown target succeeded")
	}
	g.Deregister("i-2")
	if g.Size() != 1 {
		t.Fatalf("Size = %d", g.Size())
	}
}

func newALB(t *testing.T) (*LoadBalancer, *complexity.Ledger) {
	t.Helper()
	var led complexity.Ledger
	lb := NewLoadBalancer("alb", ApplicationLB, &led)
	api := NewTargetGroup("api")
	api.Register("i-api-1")
	api.Register("i-api-2")
	web := NewTargetGroup("web")
	web.Register("i-web-1")
	lb.AddTargetGroup(api, &led)
	lb.AddTargetGroup(web, &led)
	if err := lb.AddRule(L7Rule{Priority: 10, PathPrefix: "/api", TargetGroup: "api"}, &led); err != nil {
		t.Fatal(err)
	}
	if err := lb.SetDefault("web", &led); err != nil {
		t.Fatal(err)
	}
	return lb, &led
}

func TestALBPathRouting(t *testing.T) {
	lb, _ := newALB(t)
	got, err := lb.Route(Request{Path: "/api/v1/users"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(got, "i-api") {
		t.Fatalf("api path routed to %q", got)
	}
	got, err = lb.Route(Request{Path: "/index.html"})
	if err != nil {
		t.Fatal(err)
	}
	if got != "i-web-1" {
		t.Fatalf("default routed to %q", got)
	}
}

func TestALBRoundRobin(t *testing.T) {
	lb, _ := newALB(t)
	seen := map[string]int{}
	for i := 0; i < 10; i++ {
		b, err := lb.Route(Request{Path: "/api"})
		if err != nil {
			t.Fatal(err)
		}
		seen[b]++
	}
	if seen["i-api-1"] != 5 || seen["i-api-2"] != 5 {
		t.Fatalf("round robin distribution = %v", seen)
	}
}

func TestALBHostHeaderRules(t *testing.T) {
	var led complexity.Ledger
	lb := NewLoadBalancer("alb", ApplicationLB, &led)
	a := NewTargetGroup("a")
	a.Register("i-a")
	b := NewTargetGroup("b")
	b.Register("i-b")
	lb.AddTargetGroup(a, &led)
	lb.AddTargetGroup(b, &led)
	lb.AddRule(L7Rule{Priority: 1, Host: "admin.example.com", TargetGroup: "a"}, &led)
	lb.AddRule(L7Rule{Priority: 2, HeaderKey: "X-Tier", HeaderValue: "beta", TargetGroup: "b"}, &led)

	got, _ := lb.Route(Request{Host: "admin.example.com"})
	if got != "i-a" {
		t.Fatalf("host rule routed to %q", got)
	}
	got, _ = lb.Route(Request{Headers: map[string]string{"X-Tier": "beta"}})
	if got != "i-b" {
		t.Fatalf("header rule routed to %q", got)
	}
	if _, err := lb.Route(Request{Path: "/x"}); err == nil {
		t.Fatal("no default group but Route succeeded")
	}
}

func TestRulePriorityOrder(t *testing.T) {
	var led complexity.Ledger
	lb := NewLoadBalancer("alb", ApplicationLB, &led)
	hi := NewTargetGroup("hi")
	hi.Register("i-hi")
	lo := NewTargetGroup("lo")
	lo.Register("i-lo")
	lb.AddTargetGroup(hi, &led)
	lb.AddTargetGroup(lo, &led)
	// Added in reverse priority order; priority 1 must still win.
	lb.AddRule(L7Rule{Priority: 5, PathPrefix: "/x", TargetGroup: "lo"}, &led)
	lb.AddRule(L7Rule{Priority: 1, PathPrefix: "/x", TargetGroup: "hi"}, &led)
	got, _ := lb.Route(Request{Path: "/x"})
	if got != "i-hi" {
		t.Fatalf("priority order broken: routed to %q", got)
	}
}

func TestNLBFlowHashSticky(t *testing.T) {
	var led complexity.Ledger
	lb := NewLoadBalancer("nlb", NetworkLB, &led)
	g := NewTargetGroup("g")
	for _, id := range []string{"i-1", "i-2", "i-3"} {
		g.Register(id)
	}
	lb.AddTargetGroup(g, &led)
	lb.SetDefault("g", &led)
	flow := vnet.Packet{Src: ipa("10.0.0.1"), SrcPort: 1234, Dst: ipa("10.0.0.9"), DstPort: 443, Proto: vnet.TCP}
	first, err := lb.Route(Request{Flow: flow})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		got, _ := lb.Route(Request{Flow: flow})
		if got != first {
			t.Fatal("NLB flow hashing not sticky")
		}
	}
	// Different flows spread across backends.
	seen := map[string]bool{}
	for p := 0; p < 200; p++ {
		fl := flow
		fl.SrcPort = 1000 + p
		b, _ := lb.Route(Request{Flow: fl})
		seen[b] = true
	}
	if len(seen) != 3 {
		t.Fatalf("flow spread hit %d backends, want 3", len(seen))
	}
}

func TestNLBRejectsL7Rules(t *testing.T) {
	var led complexity.Ledger
	lb := NewLoadBalancer("nlb", NetworkLB, &led)
	g := NewTargetGroup("g")
	lb.AddTargetGroup(g, &led)
	if err := lb.AddRule(L7Rule{TargetGroup: "g"}, &led); err == nil {
		t.Fatal("NLB accepted an L7 rule")
	}
}

func TestRouteNoHealthyTargets(t *testing.T) {
	lb, _ := newALB(t)
	for _, g := range lb.Groups() {
		for _, id := range g.Healthy() {
			g.SetHealth(id, false)
		}
	}
	if _, err := lb.Route(Request{Path: "/api"}); err == nil {
		t.Fatal("route with no healthy targets succeeded")
	}
}

func TestLBLedgerCharges(t *testing.T) {
	_, led := newALB(t)
	if led.BoxesOf("load-balancer-application") != 1 {
		t.Fatalf("ALB box not charged: %s", led)
	}
	if led.BoxesOf("target-group") != 2 {
		t.Fatalf("target groups = %d, want 2", led.BoxesOf("target-group"))
	}
	if led.DecisionCount() == 0 {
		t.Fatal("LB product decision not charged")
	}
}

func TestFirewallRules(t *testing.T) {
	var led complexity.Ledger
	fw := NewFirewall("fw", &led)
	fw.AddRule(FWRule{Action: vnet.Deny, Proto: vnet.TCP, Src: pfx("0.0.0.0/0"), Dst: pfx("0.0.0.0/0"), PortFrom: 22, PortTo: 22}, &led)
	fw.AddRule(FWRule{Action: vnet.Allow, Src: pfx("0.0.0.0/0"), Dst: pfx("10.0.0.0/8")}, &led)

	if ok, _ := fw.Inspect(vnet.Packet{Src: ipa("1.2.3.4"), Dst: ipa("10.0.0.1"), Proto: vnet.TCP, DstPort: 22}); ok {
		t.Fatal("deny rule did not drop SSH")
	}
	if ok, _ := fw.Inspect(vnet.Packet{Src: ipa("1.2.3.4"), Dst: ipa("10.0.0.1"), Proto: vnet.TCP, DstPort: 443}); !ok {
		t.Fatal("allow rule did not pass HTTPS")
	}
	// Implicit deny outside 10/8.
	if ok, _ := fw.Inspect(vnet.Packet{Src: ipa("1.2.3.4"), Dst: ipa("192.168.0.1"), Proto: vnet.TCP, DstPort: 443}); ok {
		t.Fatal("implicit deny missing")
	}
	if fw.Inspected != 3 || fw.Dropped != 2 {
		t.Fatalf("counters = %d inspected, %d dropped", fw.Inspected, fw.Dropped)
	}
}

func TestFirewallDPI(t *testing.T) {
	var led complexity.Ledger
	fw := NewFirewall("fw", &led)
	fw.AddRule(FWRule{Action: vnet.Allow, Src: pfx("0.0.0.0/0"), Dst: pfx("0.0.0.0/0")}, &led)
	fw.AddSignature("SELECT * FROM", &led)
	ok, reason := fw.Inspect(vnet.Packet{Src: ipa("1.1.1.1"), Dst: ipa("10.0.0.1"), Payload: "q=SELECT * FROM users"})
	if ok {
		t.Fatal("DPI signature not matched")
	}
	if !strings.Contains(reason, "dpi") {
		t.Fatalf("reason = %q", reason)
	}
	if ok, _ := fw.Inspect(vnet.Packet{Src: ipa("1.1.1.1"), Dst: ipa("10.0.0.1"), Payload: "hello"}); !ok {
		t.Fatal("clean payload dropped despite allow rule")
	}
}
