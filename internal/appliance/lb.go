// Package appliance models the virtualized middleboxes of §2 step 5 and
// Table 1 of the paper: the four-option load-balancer family (application/
// network/classic/gateway), target groups with health checks, and
// firewall/DPI appliances. These are the boxes the tenant must "select,
// place in their virtual topology, configure routing to steer traffic
// through, and finally configure" — each constructor charges the
// complexity ledger accordingly.
package appliance

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"declnet/internal/complexity"
	"declnet/internal/vnet"
)

// TargetGroup is a set of backend instances with health state.
type TargetGroup struct {
	ID      string
	targets map[string]bool // instance ID -> healthy
	// HealthCheckPath/Interval are recorded configuration (they shape the
	// ledger charge); health transitions are driven by SetHealth.
	HealthCheckPath     string
	HealthCheckInterval int
}

// NewTargetGroup returns an empty group.
func NewTargetGroup(id string) *TargetGroup {
	return &TargetGroup{ID: id, targets: make(map[string]bool)}
}

// Register adds a backend in healthy state.
func (g *TargetGroup) Register(instID string) {
	g.targets[instID] = true
}

// Deregister removes a backend.
func (g *TargetGroup) Deregister(instID string) {
	delete(g.targets, instID)
}

// SetHealth marks a backend healthy or not.
func (g *TargetGroup) SetHealth(instID string, healthy bool) error {
	if _, ok := g.targets[instID]; !ok {
		return fmt.Errorf("appliance: unknown target %q in %q", instID, g.ID)
	}
	g.targets[instID] = healthy
	return nil
}

// Healthy returns the healthy backends, sorted.
func (g *TargetGroup) Healthy() []string {
	var out []string
	for id, ok := range g.targets {
		if ok {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// Size returns the number of registered backends.
func (g *TargetGroup) Size() int { return len(g.targets) }

// LBType distinguishes the four cloud load balancer products (Table 1).
type LBType int

const (
	// ApplicationLB balances at L7 on path/host/header conditions.
	ApplicationLB LBType = iota
	// NetworkLB balances at L4 by flow hash.
	NetworkLB
	// ClassicLB supports both with a legacy rule model.
	ClassicLB
	// GatewayLB steers traffic through appliance chains at L3.
	GatewayLB
)

var lbTypeNames = map[LBType]string{
	ApplicationLB: "application", NetworkLB: "network",
	ClassicLB: "classic", GatewayLB: "gateway",
}

func (t LBType) String() string { return lbTypeNames[t] }

// L7Rule matches requests by path prefix, host, and header and forwards
// them to a target group.
type L7Rule struct {
	Priority    int
	PathPrefix  string
	Host        string
	HeaderKey   string
	HeaderValue string
	TargetGroup string
}

func (r L7Rule) matches(req Request) bool {
	if r.PathPrefix != "" && !strings.HasPrefix(req.Path, r.PathPrefix) {
		return false
	}
	if r.Host != "" && req.Host != r.Host {
		return false
	}
	if r.HeaderKey != "" && req.Headers[r.HeaderKey] != r.HeaderValue {
		return false
	}
	return true
}

// Request is the L7 view of a connection for ALB-style matching.
type Request struct {
	Path    string
	Host    string
	Headers map[string]string
	// Flow identifies the underlying 5-tuple for L4 hashing.
	Flow vnet.Packet
}

// LoadBalancer is one provisioned load balancer box.
type LoadBalancer struct {
	ID   string
	Type LBType

	groups  map[string]*TargetGroup
	rules   []L7Rule // ALB/classic
	def     string   // default target group ID (NLB/classic/fallback)
	rrIndex int
}

// NewLoadBalancer provisions a load balancer, charging the ledger the way
// Table 1 itemizes it (rules, health checks, target groups, AZs...).
func NewLoadBalancer(id string, typ LBType, ledger *complexity.Ledger) *LoadBalancer {
	ledger.Resource("load-balancer-" + typ.String())
	ledger.Param("load-balancer-"+typ.String(), 4) // scheme, AZs, listeners, idle timeout
	ledger.Decision()                              // the 4-way product choice (5-level decision tree, §3)
	return &LoadBalancer{ID: id, Type: typ, groups: make(map[string]*TargetGroup)}
}

// AddTargetGroup attaches a target group, charging its configuration.
func (lb *LoadBalancer) AddTargetGroup(g *TargetGroup, ledger *complexity.Ledger) {
	lb.groups[g.ID] = g
	ledger.Resource("target-group")
	ledger.Param("target-group", 3) // protocol/port, health check, thresholds
}

// AddRule installs an L7 rule (ALB/classic only).
func (lb *LoadBalancer) AddRule(r L7Rule, ledger *complexity.Ledger) error {
	if lb.Type == NetworkLB || lb.Type == GatewayLB {
		return fmt.Errorf("appliance: %s LB does not support L7 rules", lb.Type)
	}
	if _, ok := lb.groups[r.TargetGroup]; !ok {
		return fmt.Errorf("appliance: rule references unknown target group %q", r.TargetGroup)
	}
	lb.rules = append(lb.rules, r)
	sort.SliceStable(lb.rules, func(i, j int) bool { return lb.rules[i].Priority < lb.rules[j].Priority })
	ledger.Param("load-balancer-"+lb.Type.String(), 3) // condition, priority, action
	return nil
}

// SetDefault sets the target group used when no rule matches (and the only
// group for NLB).
func (lb *LoadBalancer) SetDefault(groupID string, ledger *complexity.Ledger) error {
	if _, ok := lb.groups[groupID]; !ok {
		return fmt.Errorf("appliance: unknown target group %q", groupID)
	}
	lb.def = groupID
	ledger.Param("load-balancer-"+lb.Type.String(), 1)
	return nil
}

// Route picks a backend instance for the request, or an error when no
// healthy target exists. ALB matches rules by priority then round-robins
// within the group; NLB hashes the flow 5-tuple for stickiness.
func (lb *LoadBalancer) Route(req Request) (string, error) {
	groupID := lb.def
	if lb.Type == ApplicationLB || lb.Type == ClassicLB {
		for _, r := range lb.rules {
			if r.matches(req) {
				groupID = r.TargetGroup
				break
			}
		}
	}
	if groupID == "" {
		return "", fmt.Errorf("appliance: %s has no default target group", lb.ID)
	}
	g := lb.groups[groupID]
	healthy := g.Healthy()
	if len(healthy) == 0 {
		return "", fmt.Errorf("appliance: no healthy targets in %q", groupID)
	}
	switch lb.Type {
	case NetworkLB, GatewayLB:
		h := fnv.New32a()
		fmt.Fprintf(h, "%s:%d-%s:%d-%d", req.Flow.Src, req.Flow.SrcPort, req.Flow.Dst, req.Flow.DstPort, req.Flow.Proto)
		return healthy[int(h.Sum32())%len(healthy)], nil
	default:
		lb.rrIndex++
		return healthy[lb.rrIndex%len(healthy)], nil
	}
}

// Groups returns the attached target groups by ID.
func (lb *LoadBalancer) Groups() map[string]*TargetGroup { return lb.groups }
