package appliance

import (
	"strings"

	"declnet/internal/addr"
	"declnet/internal/complexity"
	"declnet/internal/vnet"
)

// FWRule is one ordered firewall rule over the 5-tuple.
type FWRule struct {
	Action   vnet.Action
	Proto    vnet.Protocol
	Src      addr.Prefix
	Dst      addr.Prefix
	PortFrom int
	PortTo   int
}

func (r FWRule) matches(pkt vnet.Packet) bool {
	if r.Proto != vnet.AnyProto && pkt.Proto != vnet.AnyProto && r.Proto != pkt.Proto {
		return false
	}
	if r.PortTo != 0 && (pkt.DstPort < r.PortFrom || pkt.DstPort > r.PortTo) {
		return false
	}
	return r.Src.Contains(pkt.Src) && r.Dst.Contains(pkt.Dst)
}

// Firewall is an in-path packet filter with optional DPI signatures. It
// implements gateway.Inspector so it can sit on a VPC's ingress chain.
// Default policy is deny, as shipped by every firewall vendor.
type Firewall struct {
	FWID       string
	rules      []FWRule
	signatures []string
	// Inspected and Dropped count traffic for the security experiment.
	Inspected uint64
	Dropped   uint64
}

// NewFirewall provisions a firewall appliance, charging the box and its
// placement decision.
func NewFirewall(id string, ledger *complexity.Ledger) *Firewall {
	ledger.Resource("firewall")
	ledger.Param("firewall", 2) // placement, size
	ledger.Decision()           // vendor/native + appliance/managed choice (§3)
	return &Firewall{FWID: id}
}

// AddRule appends a rule (ordered, first match wins).
func (f *Firewall) AddRule(r FWRule, ledger *complexity.Ledger) {
	f.rules = append(f.rules, r)
	ledger.Param("firewall", 5) // action, proto, src, dst, ports
}

// AddSignature installs a DPI payload signature; packets whose payload
// contains it are dropped regardless of rule verdict.
func (f *Firewall) AddSignature(sig string, ledger *complexity.Ledger) {
	f.signatures = append(f.signatures, sig)
	ledger.Param("firewall", 1)
}

// Name implements gateway.Inspector.
func (f *Firewall) Name() string { return f.FWID }

// Inspect implements gateway.Inspector: DPI first, then ordered rules,
// then implicit deny.
func (f *Firewall) Inspect(pkt vnet.Packet) (bool, string) {
	f.Inspected++
	for _, sig := range f.signatures {
		if sig != "" && strings.Contains(pkt.Payload, sig) {
			f.Dropped++
			return false, "dpi signature: " + sig
		}
	}
	for _, r := range f.rules {
		if r.matches(pkt) {
			if r.Action == vnet.Allow {
				return true, ""
			}
			f.Dropped++
			return false, "rule deny"
		}
	}
	f.Dropped++
	return false, "implicit deny"
}
