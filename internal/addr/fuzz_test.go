package addr

import (
	"strings"
	"testing"
)

// FuzzParseIP checks the core parser invariant: anything ParseIP accepts
// must round-trip through String to the identical input. This is what
// caught strconv.Atoi's sign tolerance ("+4", "-0" octets parsed fine
// but rendered differently).
func FuzzParseIP(f *testing.F) {
	for _, seed := range []string{
		"0.0.0.0", "1.2.3.4", "255.255.255.255", "10.0.0.1",
		"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "01.2.3.4",
		"+4.0.0.0", "-0.0.0.1", "1.2.3.+4", "1.2.3.-0",
		"1..3.4", " 1.2.3.4", "1.2.3.4 ", "0x1.2.3.4",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		ip, err := ParseIP(s)
		if err != nil {
			return
		}
		if got := ip.String(); got != s {
			t.Fatalf("ParseIP(%q) accepted, but String() = %q", s, got)
		}
	})
}

// FuzzParsePrefix checks the CIDR parser: accepted inputs round-trip
// exactly, carry legal lengths, have no host bits, and contain their own
// base address.
func FuzzParsePrefix(f *testing.F) {
	for _, seed := range []string{
		"0.0.0.0/0", "10.0.0.0/8", "1.2.3.4/32", "255.255.255.255/32",
		"", "/", "1.2.3.4", "1.2.3.4/", "1.2.3.4/33", "1.2.3.4/-1",
		"0.0.0.0/+8", "0.0.0.0/08", "1.2.3.4/31", "10.0.0.1/8",
		"10.0.0.0/8/8", "+4.0.0.0/8",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePrefix(s)
		if err != nil {
			return
		}
		if p.Len < 0 || p.Len > 32 {
			t.Fatalf("ParsePrefix(%q) produced illegal length %d", s, p.Len)
		}
		if p.Addr&^mask(p.Len) != 0 {
			t.Fatalf("ParsePrefix(%q) left host bits set: %s", s, p)
		}
		if !p.Contains(p.Addr) {
			t.Fatalf("ParsePrefix(%q): prefix does not contain its own base", s)
		}
		if got := p.String(); got != s {
			t.Fatalf("ParsePrefix(%q) accepted, but String() = %q", s, got)
		}
		// Splitting and rejoining must preserve the prefix.
		if p.Len < 32 {
			lo, hi := p.Halves()
			if lo.Parent() != p || hi.Parent() != p || lo.Sibling() != hi {
				t.Fatalf("ParsePrefix(%q): halves/parent/sibling disagree", s)
			}
		}
		if strings.Count(s, "/") != 1 {
			t.Fatalf("ParsePrefix(%q) accepted input without exactly one slash", s)
		}
	})
}
