// Package addr provides IPv4 address and prefix arithmetic, CIDR block
// allocation, and the subnet planning machinery that both the baseline
// tenant-network layer (VPC CIDRs, subnets) and the declarative provider
// layer (flat EIP pools) are built on.
//
// Addresses are plain uint32s in host byte order; prefixes are
// (address, length) pairs with the host bits forced to zero. Keeping the
// representation primitive makes the longest-prefix-match trie in package
// routing and the permit-list engine cheap and allocation-free.
package addr

import (
	"fmt"
	"strconv"
	"strings"
)

// IP is an IPv4 address in host byte order.
type IP uint32

// ParseIP parses dotted-quad notation.
func ParseIP(s string) (IP, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("addr: invalid IPv4 %q", s)
	}
	var ip uint32
	for _, p := range parts {
		v, ok := parseDecimal(p, 255)
		if !ok {
			return 0, fmt.Errorf("addr: invalid IPv4 octet %q in %q", p, s)
		}
		ip = ip<<8 | uint32(v)
	}
	return IP(ip), nil
}

// parseDecimal parses an unsigned decimal with no sign characters and no
// leading zeros (strconv.Atoi accepts "+4" and "-0", which would make
// String round-trips lossy).
func parseDecimal(p string, max int) (int, bool) {
	if len(p) == 0 || (len(p) > 1 && p[0] == '0') {
		return 0, false
	}
	v := 0
	for i := 0; i < len(p); i++ {
		c := p[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int(c-'0')
		if v > max {
			return 0, false
		}
	}
	return v, true
}

// MustParseIP is ParseIP for tests and static tables; it panics on error.
func MustParseIP(s string) IP {
	ip, err := ParseIP(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// String renders dotted-quad notation.
func (ip IP) String() string {
	// Hand-rolled dotted quad: this sits on the decision-tracing hot path
	// (every traced event stringifies two addresses), where fmt's
	// reflection cost is measurable in experiment E12.
	var b [15]byte
	n := 0
	for i := 3; i >= 0; i-- {
		n += copyDecimal(b[n:], byte(ip>>(8*i)))
		if i > 0 {
			b[n] = '.'
			n++
		}
	}
	return string(b[:n])
}

// copyDecimal writes v's decimal digits into b, returning the count.
func copyDecimal(b []byte, v byte) int {
	switch {
	case v >= 100:
		b[0] = '0' + v/100
		b[1] = '0' + (v/10)%10
		b[2] = '0' + v%10
		return 3
	case v >= 10:
		b[0] = '0' + v/10
		b[1] = '0' + v%10
		return 2
	default:
		b[0] = '0' + v
		return 1
	}
}

// Prefix is an IPv4 CIDR prefix. Host bits below Len are always zero;
// construct values with NewPrefix or ParsePrefix to maintain that.
type Prefix struct {
	Addr IP
	Len  int // 0..32
}

// NewPrefix masks addr down to its first length bits.
func NewPrefix(addr IP, length int) Prefix {
	if length < 0 {
		length = 0
	}
	if length > 32 {
		length = 32
	}
	return Prefix{Addr: addr & mask(length), Len: length}
}

func mask(length int) IP {
	if length <= 0 {
		return 0
	}
	return IP(^uint32(0) << (32 - uint(length)))
}

// ParsePrefix parses "a.b.c.d/len" CIDR notation.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("addr: missing / in prefix %q", s)
	}
	ip, err := ParseIP(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	length, ok := parseDecimal(s[slash+1:], 32)
	if !ok {
		return Prefix{}, fmt.Errorf("addr: invalid prefix length in %q", s)
	}
	p := NewPrefix(ip, length)
	if p.Addr != ip {
		return Prefix{}, fmt.Errorf("addr: %q has host bits set", s)
	}
	return p, nil
}

// MustParsePrefix is ParsePrefix for tests and static tables.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// String renders CIDR notation.
func (p Prefix) String() string {
	return p.Addr.String() + "/" + strconv.Itoa(p.Len)
}

// Contains reports whether ip falls inside the prefix.
func (p Prefix) Contains(ip IP) bool {
	return ip&mask(p.Len) == p.Addr
}

// ContainsPrefix reports whether other is entirely inside p.
func (p Prefix) ContainsPrefix(other Prefix) bool {
	return other.Len >= p.Len && p.Contains(other.Addr)
}

// Overlaps reports whether the two prefixes share any address.
func (p Prefix) Overlaps(other Prefix) bool {
	return p.ContainsPrefix(other) || other.ContainsPrefix(p)
}

// Size returns the number of addresses covered by the prefix.
func (p Prefix) Size() uint64 {
	return uint64(1) << (32 - uint(p.Len))
}

// First and Last return the lowest and highest address in the prefix.
func (p Prefix) First() IP { return p.Addr }
func (p Prefix) Last() IP  { return p.Addr | ^mask(p.Len) }

// Halves splits the prefix into its two children. It panics on a /32,
// which has no children; callers split only after checking Len < 32.
func (p Prefix) Halves() (lo, hi Prefix) {
	if p.Len >= 32 {
		panic("addr: cannot split a /32")
	}
	lo = Prefix{Addr: p.Addr, Len: p.Len + 1}
	hi = Prefix{Addr: p.Addr | IP(1)<<(31-uint(p.Len)), Len: p.Len + 1}
	return lo, hi
}

// Sibling returns the buddy prefix that, merged with p, forms the parent.
// It panics on a /0.
func (p Prefix) Sibling() Prefix {
	if p.Len == 0 {
		panic("addr: /0 has no sibling")
	}
	return Prefix{Addr: p.Addr ^ IP(1)<<(32-uint(p.Len)), Len: p.Len}
}

// Parent returns the enclosing prefix one bit shorter. It panics on a /0.
func (p Prefix) Parent() Prefix {
	if p.Len == 0 {
		panic("addr: /0 has no parent")
	}
	return NewPrefix(p.Addr, p.Len-1)
}
