package addr

import (
	"fmt"
	"sort"
)

// Planner models the address-planning chore the paper calls out in §2:
// "managing non-overlapping subnets across 100s of VPCs becomes
// challenging, prompting AWS to recommend special address planner tools".
// It assigns non-overlapping CIDRs to named networks out of the RFC1918
// space, tracking the decisions a tenant has to make along the way.
type Planner struct {
	pools []*BlockPool
	plans map[string]Prefix
	// Decisions counts discrete planning choices made (block sizing,
	// pool selection, overlap checks) — input to the complexity metrics.
	Decisions int
}

// RFC1918 returns the three private pools tenants usually plan within.
func RFC1918() []Prefix {
	return []Prefix{
		MustParsePrefix("10.0.0.0/8"),
		MustParsePrefix("172.16.0.0/12"),
		MustParsePrefix("192.168.0.0/16"),
	}
}

// NewPlanner returns a planner over the given address pools (typically
// RFC1918()).
func NewPlanner(pools []Prefix) *Planner {
	p := &Planner{plans: make(map[string]Prefix)}
	for _, root := range pools {
		p.pools = append(p.pools, NewBlockPool(root))
	}
	return p
}

// Plan assigns a CIDR able to hold hosts addresses to the named network.
// Names must be unique; replanning a name is an error (tenants resize by
// migration, not in place — another of the paper's pain points).
func (p *Planner) Plan(name string, hosts int) (Prefix, error) {
	if _, ok := p.plans[name]; ok {
		return Prefix{}, fmt.Errorf("addr: network %q already planned", name)
	}
	p.Decisions++ // choosing a size
	for _, pool := range p.pools {
		p.Decisions++ // choosing / checking a pool
		blk, err := pool.AllocateFor(hosts)
		if err == nil {
			p.plans[name] = blk
			return blk, nil
		}
	}
	return Prefix{}, fmt.Errorf("planning %q for %d hosts: %w", name, hosts, ErrExhausted)
}

// Lookup returns the CIDR planned for name.
func (p *Planner) Lookup(name string) (Prefix, bool) {
	blk, ok := p.plans[name]
	return blk, ok
}

// Networks returns all planned networks sorted by name.
func (p *Planner) Networks() []string {
	names := make([]string, 0, len(p.plans))
	for n := range p.plans {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Validate confirms the invariant the tenant otherwise maintains by hand:
// no two planned networks overlap. It returns the offending pair if any.
func (p *Planner) Validate() error {
	names := p.Networks()
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			a, b := p.plans[names[i]], p.plans[names[j]]
			if a.Overlaps(b) {
				return fmt.Errorf("addr: %q (%s) overlaps %q (%s)", names[i], a, names[j], b)
			}
		}
	}
	return nil
}
