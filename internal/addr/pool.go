package addr

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrExhausted is returned when a pool cannot satisfy an allocation.
var ErrExhausted = errors.New("addr: pool exhausted")

// BlockPool hands out non-overlapping sub-prefixes of a root prefix using
// buddy allocation: requests are rounded to powers of two and carved from
// the smallest free block that fits, keeping fragmentation low. This is
// the allocator behind both tenant VPC CIDR planning (the baseline's
// "address planner tool") and the provider's flat EIP pools.
type BlockPool struct {
	root Prefix
	// free[l] holds free blocks of prefix length l, kept sorted for
	// deterministic allocation order.
	free  map[int][]Prefix
	inUse map[Prefix]bool
}

// NewBlockPool returns a pool over the given root prefix.
func NewBlockPool(root Prefix) *BlockPool {
	p := &BlockPool{
		root:  root,
		free:  map[int][]Prefix{root.Len: {root}},
		inUse: make(map[Prefix]bool),
	}
	return p
}

// Root returns the pool's covering prefix.
func (b *BlockPool) Root() Prefix { return b.root }

// Allocate carves a free /length block out of the pool.
func (b *BlockPool) Allocate(length int) (Prefix, error) {
	if length < b.root.Len || length > 32 {
		return Prefix{}, fmt.Errorf("addr: cannot allocate /%d from %s", length, b.root)
	}
	// Find the longest (smallest) free block that still fits.
	donor := -1
	for l := length; l >= b.root.Len; l-- {
		if len(b.free[l]) > 0 {
			donor = l
			break
		}
	}
	if donor < 0 {
		return Prefix{}, fmt.Errorf("allocating /%d from %s: %w", length, b.root, ErrExhausted)
	}
	blk := b.free[donor][0]
	b.free[donor] = b.free[donor][1:]
	// Split down to the requested size, returning the high halves to the
	// free lists.
	for blk.Len < length {
		lo, hi := blk.Halves()
		b.insertFree(hi)
		blk = lo
	}
	b.inUse[blk] = true
	return blk, nil
}

// AllocateFor returns a block large enough for n addresses.
func (b *BlockPool) AllocateFor(n int) (Prefix, error) {
	if n <= 0 {
		return Prefix{}, fmt.Errorf("addr: invalid host count %d", n)
	}
	length := 32
	for length > 0 && (uint64(1)<<(32-uint(length))) < uint64(n) {
		length--
	}
	if (uint64(1) << (32 - uint(length))) < uint64(n) {
		return Prefix{}, fmt.Errorf("addr: no prefix holds %d addresses: %w", n, ErrExhausted)
	}
	return b.Allocate(length)
}

// Release returns a previously allocated block to the pool, coalescing
// buddies back together.
func (b *BlockPool) Release(p Prefix) error {
	if !b.inUse[p] {
		return fmt.Errorf("addr: release of unallocated block %s", p)
	}
	delete(b.inUse, p)
	// Coalesce with the sibling while it is also free.
	for p.Len > b.root.Len {
		sib := p.Sibling()
		if !b.removeFree(sib) {
			break
		}
		p = p.Parent()
	}
	b.insertFree(p)
	return nil
}

// Allocated returns the blocks currently in use, sorted.
func (b *BlockPool) Allocated() []Prefix {
	out := make([]Prefix, 0, len(b.inUse))
	for p := range b.inUse {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr < out[j].Addr
		}
		return out[i].Len < out[j].Len
	})
	return out
}

// FreeSpace returns the number of free addresses remaining.
func (b *BlockPool) FreeSpace() uint64 {
	var total uint64
	for _, blocks := range b.free {
		for _, blk := range blocks {
			total += blk.Size()
		}
	}
	return total
}

func (b *BlockPool) insertFree(p Prefix) {
	list := b.free[p.Len]
	i := sort.Search(len(list), func(i int) bool { return list[i].Addr >= p.Addr })
	list = append(list, Prefix{})
	copy(list[i+1:], list[i:])
	list[i] = p
	b.free[p.Len] = list
}

func (b *BlockPool) removeFree(p Prefix) bool {
	list := b.free[p.Len]
	i := sort.Search(len(list), func(i int) bool { return list[i].Addr >= p.Addr })
	if i >= len(list) || list[i] != p {
		return false
	}
	b.free[p.Len] = append(list[:i], list[i+1:]...)
	return true
}

// HostPool hands out individual addresses from a prefix, reusing released
// addresses in FIFO order. It backs per-subnet instance addressing and the
// provider's EIP allocation. Safe for concurrent use: a region's pool is
// shared by every tenant shard homed in that region, so allocation takes
// its own mutex rather than relying on shard-level exclusion.
type HostPool struct {
	mu       sync.Mutex
	prefix   Prefix
	next     IP
	released []IP
	inUse    map[IP]bool
	reserved int // leading addresses withheld (network/router/dns, AWS-style)
}

// NewHostPool returns a pool over prefix. reserved leading addresses are
// withheld from allocation (clouds typically reserve the first few of each
// subnet); pass 0 for a flat provider pool.
func NewHostPool(prefix Prefix, reserved int) *HostPool {
	return &HostPool{
		prefix:   prefix,
		next:     prefix.First() + IP(reserved),
		inUse:    make(map[IP]bool),
		reserved: reserved,
	}
}

// Prefix returns the pool's covering prefix.
func (h *HostPool) Prefix() Prefix { return h.prefix }

// Allocate returns a free address from the pool.
func (h *HostPool) Allocate() (IP, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if n := len(h.released); n > 0 {
		ip := h.released[0]
		h.released = h.released[1:]
		h.inUse[ip] = true
		return ip, nil
	}
	if h.next > h.prefix.Last() || !h.prefix.Contains(h.next) {
		return 0, fmt.Errorf("host pool %s: %w", h.prefix, ErrExhausted)
	}
	ip := h.next
	h.next++
	h.inUse[ip] = true
	return ip, nil
}

// Release returns an address to the pool.
func (h *HostPool) Release(ip IP) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.inUse[ip] {
		return fmt.Errorf("addr: release of unallocated address %s", ip)
	}
	delete(h.inUse, ip)
	h.released = append(h.released, ip)
	return nil
}

// InUse reports how many addresses are currently allocated.
func (h *HostPool) InUse() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.inUse)
}

// Restore rewinds the pool to a recorded allocation cursor: the next
// fresh address, the free list (in release order), and the addresses
// currently held. Restart recovery uses it so a recovered pool hands
// out exactly the addresses the pre-crash pool would have.
func (h *HostPool) Restore(next IP, released []IP, inUse []IP) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if next != 0 {
		h.next = next
	}
	h.released = append(h.released[:0], released...)
	h.inUse = make(map[IP]bool, len(inUse))
	for _, ip := range inUse {
		h.inUse[ip] = true
	}
}

// Cursor returns the pool's allocation cursor: the next fresh address
// and a copy of the free list, for state digests and snapshots.
func (h *HostPool) Cursor() (next IP, released []IP) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.next, append([]IP(nil), h.released...)
}
