package addr

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseIPRoundTrip(t *testing.T) {
	cases := []string{"0.0.0.0", "10.1.2.3", "172.16.0.1", "255.255.255.255", "192.168.100.200"}
	for _, s := range cases {
		ip, err := ParseIP(s)
		if err != nil {
			t.Fatalf("ParseIP(%q): %v", s, err)
		}
		if got := ip.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestParseIPErrors(t *testing.T) {
	for _, s := range []string{"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "-1.0.0.0", "a.b.c.d", "01.2.3.4", "1..2.3"} {
		if _, err := ParseIP(s); err == nil {
			t.Errorf("ParseIP(%q) succeeded, want error", s)
		}
	}
}

func TestParsePrefix(t *testing.T) {
	p, err := ParsePrefix("10.0.0.0/8")
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "10.0.0.0/8" {
		t.Fatalf("String = %q", p.String())
	}
	if p.Size() != 1<<24 {
		t.Fatalf("Size = %d", p.Size())
	}
}

func TestParsePrefixErrors(t *testing.T) {
	for _, s := range []string{"10.0.0.0", "10.0.0.0/33", "10.0.0.0/-1", "10.0.0.1/8", "x/8", "10.0.0.0/x"} {
		if _, err := ParsePrefix(s); err == nil {
			t.Errorf("ParsePrefix(%q) succeeded, want error", s)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("10.1.0.0/16")
	if !p.Contains(MustParseIP("10.1.255.255")) {
		t.Error("10.1.0.0/16 should contain 10.1.255.255")
	}
	if p.Contains(MustParseIP("10.2.0.0")) {
		t.Error("10.1.0.0/16 should not contain 10.2.0.0")
	}
	all := MustParsePrefix("0.0.0.0/0")
	if !all.Contains(MustParseIP("255.255.255.255")) {
		t.Error("/0 should contain everything")
	}
}

func TestPrefixOverlaps(t *testing.T) {
	a := MustParsePrefix("10.0.0.0/8")
	b := MustParsePrefix("10.5.0.0/16")
	c := MustParsePrefix("11.0.0.0/8")
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("nested prefixes must overlap both ways")
	}
	if a.Overlaps(c) {
		t.Error("disjoint prefixes must not overlap")
	}
}

func TestPrefixFamily(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/9")
	if got := p.Sibling(); got != MustParsePrefix("10.128.0.0/9") {
		t.Errorf("Sibling = %s", got)
	}
	if got := p.Parent(); got != MustParsePrefix("10.0.0.0/8") {
		t.Errorf("Parent = %s", got)
	}
	lo, hi := p.Halves()
	if lo != MustParsePrefix("10.0.0.0/10") || hi != MustParsePrefix("10.64.0.0/10") {
		t.Errorf("Halves = %s, %s", lo, hi)
	}
	if p.First() != MustParseIP("10.0.0.0") || p.Last() != MustParseIP("10.127.255.255") {
		t.Errorf("First,Last = %s,%s", p.First(), p.Last())
	}
}

func TestPrefixPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("Halves on /32", func() { MustParsePrefix("1.2.3.4/32").Halves() })
	mustPanic("Sibling on /0", func() { MustParsePrefix("0.0.0.0/0").Sibling() })
	mustPanic("Parent on /0", func() { MustParsePrefix("0.0.0.0/0").Parent() })
}

// Property: halves partition the parent exactly.
func TestQuickHalvesPartition(t *testing.T) {
	f := func(a uint32, l uint8) bool {
		length := int(l % 32) // 0..31 so Halves is legal
		p := NewPrefix(IP(a), length)
		lo, hi := p.Halves()
		if lo.Size()+hi.Size() != p.Size() {
			return false
		}
		if lo.Overlaps(hi) {
			return false
		}
		return p.ContainsPrefix(lo) && p.ContainsPrefix(hi) &&
			lo.First() == p.First() && hi.Last() == p.Last()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: sibling is an involution and merges into the parent.
func TestQuickSibling(t *testing.T) {
	f := func(a uint32, l uint8) bool {
		length := 1 + int(l%32) // 1..32 so Sibling is legal
		p := NewPrefix(IP(a), length)
		s := p.Sibling()
		return s.Sibling() == p && s.Parent() == p.Parent() && !s.Overlaps(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBlockPoolAllocateRelease(t *testing.T) {
	pool := NewBlockPool(MustParsePrefix("10.0.0.0/8"))
	a, err := pool.Allocate(16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pool.Allocate(16)
	if err != nil {
		t.Fatal(err)
	}
	if a.Overlaps(b) {
		t.Fatalf("allocated blocks overlap: %s, %s", a, b)
	}
	if err := pool.Release(a); err != nil {
		t.Fatal(err)
	}
	if err := pool.Release(a); err == nil {
		t.Fatal("double release succeeded")
	}
	if err := pool.Release(b); err != nil {
		t.Fatal(err)
	}
	// After releasing everything the pool must coalesce back to the root.
	if pool.FreeSpace() != MustParsePrefix("10.0.0.0/8").Size() {
		t.Fatalf("FreeSpace = %d after full release", pool.FreeSpace())
	}
	got, err := pool.Allocate(8)
	if err != nil {
		t.Fatalf("root-size allocation after coalesce: %v", err)
	}
	if got != MustParsePrefix("10.0.0.0/8") {
		t.Fatalf("coalesced allocation = %s", got)
	}
}

func TestBlockPoolExhaustion(t *testing.T) {
	pool := NewBlockPool(MustParsePrefix("192.168.0.0/30"))
	for i := 0; i < 4; i++ {
		if _, err := pool.Allocate(32); err != nil {
			t.Fatalf("allocation %d: %v", i, err)
		}
	}
	if _, err := pool.Allocate(32); err == nil {
		t.Fatal("allocation from empty pool succeeded")
	}
}

func TestBlockPoolBadLength(t *testing.T) {
	pool := NewBlockPool(MustParsePrefix("10.0.0.0/8"))
	if _, err := pool.Allocate(4); err == nil {
		t.Fatal("allocating block larger than root succeeded")
	}
	if _, err := pool.Allocate(33); err == nil {
		t.Fatal("allocating /33 succeeded")
	}
}

func TestAllocateFor(t *testing.T) {
	pool := NewBlockPool(MustParsePrefix("10.0.0.0/8"))
	blk, err := pool.AllocateFor(1000)
	if err != nil {
		t.Fatal(err)
	}
	if blk.Size() < 1000 {
		t.Fatalf("block %s too small for 1000 hosts", blk)
	}
	if blk.Len != 22 { // 1024 addresses
		t.Fatalf("block length = %d, want 22", blk.Len)
	}
	if _, err := pool.AllocateFor(0); err == nil {
		t.Fatal("AllocateFor(0) succeeded")
	}
}

// Property: any sequence of allocations yields pairwise disjoint blocks
// all inside the root.
func TestQuickBlockPoolDisjoint(t *testing.T) {
	f := func(sizes []uint8) bool {
		pool := NewBlockPool(MustParsePrefix("10.0.0.0/8"))
		var got []Prefix
		for _, s := range sizes {
			length := 9 + int(s%24) // 9..32
			blk, err := pool.Allocate(length)
			if err != nil {
				continue // exhaustion is fine
			}
			got = append(got, blk)
		}
		for i := range got {
			if !MustParsePrefix("10.0.0.0/8").ContainsPrefix(got[i]) {
				return false
			}
			for j := i + 1; j < len(got); j++ {
				if got[i].Overlaps(got[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHostPool(t *testing.T) {
	hp := NewHostPool(MustParsePrefix("10.0.0.0/29"), 2) // 8 addrs, 2 reserved
	var got []IP
	for i := 0; i < 6; i++ {
		ip, err := hp.Allocate()
		if err != nil {
			t.Fatalf("allocation %d: %v", i, err)
		}
		got = append(got, ip)
	}
	if got[0] != MustParseIP("10.0.0.2") {
		t.Fatalf("first address = %s, want 10.0.0.2 (reserved skipped)", got[0])
	}
	if _, err := hp.Allocate(); err == nil {
		t.Fatal("allocation beyond pool size succeeded")
	}
	if err := hp.Release(got[3]); err != nil {
		t.Fatal(err)
	}
	ip, err := hp.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if ip != got[3] {
		t.Fatalf("reused address = %s, want %s", ip, got[3])
	}
	if err := hp.Release(MustParseIP("1.1.1.1")); err == nil {
		t.Fatal("release of foreign address succeeded")
	}
	if hp.InUse() != 6 {
		t.Fatalf("InUse = %d, want 6", hp.InUse())
	}
}

func TestPlanner(t *testing.T) {
	p := NewPlanner(RFC1918())
	seen := map[string]Prefix{}
	for _, net := range []struct {
		name  string
		hosts int
	}{
		{"vpc-a", 1000}, {"vpc-b", 50000}, {"vpc-c", 10}, {"onprem", 65536},
	} {
		blk, err := p.Plan(net.name, net.hosts)
		if err != nil {
			t.Fatalf("Plan(%s): %v", net.name, err)
		}
		if blk.Size() < uint64(net.hosts) {
			t.Errorf("%s: block %s too small for %d hosts", net.name, blk, net.hosts)
		}
		seen[net.name] = blk
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if _, err := p.Plan("vpc-a", 10); err == nil {
		t.Fatal("replanning an existing network succeeded")
	}
	if got, ok := p.Lookup("vpc-b"); !ok || got != seen["vpc-b"] {
		t.Fatalf("Lookup(vpc-b) = %v,%v", got, ok)
	}
	if len(p.Networks()) != 4 {
		t.Fatalf("Networks = %v", p.Networks())
	}
	if p.Decisions == 0 {
		t.Fatal("planner recorded no decisions")
	}
}

func TestPlannerExhaustion(t *testing.T) {
	p := NewPlanner([]Prefix{MustParsePrefix("192.168.0.0/24")})
	if _, err := p.Plan("big", 1<<20); err == nil {
		t.Fatal("oversized plan succeeded")
	}
}

func TestPlannerManyVPCsNoOverlap(t *testing.T) {
	// The paper's scaling pain point: hundreds of VPCs. The planner must
	// keep them all disjoint.
	p := NewPlanner(RFC1918())
	for i := 0; i < 300; i++ {
		name := "vpc-" + strings.Repeat("x", i%3) + string(rune('a'+i%26)) + itoa(i)
		if _, err := p.Plan(name, 200); err != nil {
			t.Fatalf("Plan #%d: %v", i, err)
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func itoa(i int) string {
	return string(rune('0'+i/100%10)) + string(rune('0'+i/10%10)) + string(rune('0'+i%10))
}
