// Package app models the service-centric application layer the paper's
// proposal assumes (§4 assumption 1): "clients access application
// functionality via well-defined APIs. All accesses (including management
// related) are first routed to an API gateway which verifies the client's
// access credentials and that the API call is well-formed."
//
// The gateway here is the application half of the paper's two-layer
// security story; the network half is package permit. The E7 experiment
// drives attack suites against the combination.
package app

import (
	"fmt"
	"sort"
	"strings"
)

// Operation is one API exposed by a service.
type Operation struct {
	Name string
	// Scope is the credential scope required to invoke it.
	Scope string
	// Schema lists the required argument names; requests missing any are
	// malformed.
	Schema []string
}

// Service is one microservice: a named API surface.
type Service struct {
	Name string
	ops  map[string]Operation
}

// NewService returns a service exposing the given operations.
func NewService(name string, ops ...Operation) *Service {
	s := &Service{Name: name, ops: make(map[string]Operation, len(ops))}
	for _, op := range ops {
		s.ops[op.Name] = op
	}
	return s
}

// Operations returns the exposed operation names, sorted.
func (s *Service) Operations() []string {
	out := make([]string, 0, len(s.ops))
	for n := range s.ops {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Token is a bearer credential with scopes.
type Token struct {
	Subject string
	Scopes  map[string]bool
}

// Request is one API call as the gateway sees it.
type Request struct {
	// Bearer is the presented token secret ("" = anonymous).
	Bearer string
	// Op is the operation name being invoked.
	Op string
	// Args carries the provided argument names and values.
	Args map[string]string
}

// Outcome classifies the gateway's decision.
type Outcome int

const (
	// Served means the request passed every check.
	Served Outcome = iota
	// DeniedUnknownOp rejects calls to operations that do not exist.
	DeniedUnknownOp
	// DeniedAuth rejects missing/unknown credentials.
	DeniedAuth
	// DeniedScope rejects valid credentials lacking the operation scope.
	DeniedScope
	// DeniedMalformed rejects structurally invalid calls.
	DeniedMalformed
)

var outcomeNames = map[Outcome]string{
	Served: "served", DeniedUnknownOp: "unknown-op", DeniedAuth: "auth",
	DeniedScope: "scope", DeniedMalformed: "malformed",
}

func (o Outcome) String() string { return outcomeNames[o] }

// Gateway is the API gateway fronting one service: mandatory
// authentication, scope checks, and well-formedness validation.
type Gateway struct {
	Service *Service

	tokens map[string]Token
	// Counters per outcome, for the security experiment.
	Counts map[Outcome]uint64
}

// NewGateway fronts a service.
func NewGateway(svc *Service) *Gateway {
	return &Gateway{
		Service: svc,
		tokens:  make(map[string]Token),
		Counts:  make(map[Outcome]uint64),
	}
}

// IssueToken registers a credential with scopes and returns its secret.
func (g *Gateway) IssueToken(subject string, scopes ...string) string {
	secret := fmt.Sprintf("tok-%s-%d", subject, len(g.tokens)+1)
	set := make(map[string]bool, len(scopes))
	for _, s := range scopes {
		set[s] = true
	}
	g.tokens[secret] = Token{Subject: subject, Scopes: set}
	return secret
}

// RevokeToken invalidates a credential.
func (g *Gateway) RevokeToken(secret string) bool {
	if _, ok := g.tokens[secret]; !ok {
		return false
	}
	delete(g.tokens, secret)
	return true
}

// Handle runs a request through the gateway's checks in the order the
// paper lists them: existence, credentials, scope, well-formedness.
func (g *Gateway) Handle(req Request) Outcome {
	out := g.decide(req)
	g.Counts[out]++
	return out
}

func (g *Gateway) decide(req Request) Outcome {
	op, ok := g.Service.ops[req.Op]
	if !ok {
		return DeniedUnknownOp
	}
	tok, ok := g.tokens[req.Bearer]
	if !ok {
		return DeniedAuth
	}
	if op.Scope != "" && !tok.Scopes[op.Scope] {
		return DeniedScope
	}
	for _, arg := range op.Schema {
		v, ok := req.Args[arg]
		if !ok || strings.TrimSpace(v) == "" {
			return DeniedMalformed
		}
	}
	return Served
}

// ServedFraction returns the fraction of handled requests that were
// served, or 0 with no traffic.
func (g *Gateway) ServedFraction() float64 {
	var total, served uint64
	for o, n := range g.Counts {
		total += n
		if o == Served {
			served += n
		}
	}
	if total == 0 {
		return 0
	}
	return float64(served) / float64(total)
}
