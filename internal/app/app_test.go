package app

import "testing"

func testGateway(t *testing.T) (*Gateway, string) {
	t.Helper()
	svc := NewService("orders",
		Operation{Name: "get_order", Scope: "read", Schema: []string{"id"}},
		Operation{Name: "place_order", Scope: "write", Schema: []string{"sku", "qty"}},
		Operation{Name: "health", Scope: ""},
	)
	g := NewGateway(svc)
	tok := g.IssueToken("client-1", "read")
	return g, tok
}

func TestServed(t *testing.T) {
	g, tok := testGateway(t)
	out := g.Handle(Request{Bearer: tok, Op: "get_order", Args: map[string]string{"id": "42"}})
	if out != Served {
		t.Fatalf("outcome = %v, want served", out)
	}
}

func TestUnknownOp(t *testing.T) {
	g, tok := testGateway(t)
	if out := g.Handle(Request{Bearer: tok, Op: "drop_tables"}); out != DeniedUnknownOp {
		t.Fatalf("outcome = %v, want unknown-op", out)
	}
}

func TestAnonymousDenied(t *testing.T) {
	g, _ := testGateway(t)
	if out := g.Handle(Request{Op: "get_order", Args: map[string]string{"id": "1"}}); out != DeniedAuth {
		t.Fatalf("outcome = %v, want auth denial", out)
	}
	if out := g.Handle(Request{Bearer: "forged", Op: "get_order", Args: map[string]string{"id": "1"}}); out != DeniedAuth {
		t.Fatalf("forged token outcome = %v, want auth denial", out)
	}
}

func TestScopeEnforced(t *testing.T) {
	g, tok := testGateway(t)
	out := g.Handle(Request{Bearer: tok, Op: "place_order", Args: map[string]string{"sku": "x", "qty": "1"}})
	if out != DeniedScope {
		t.Fatalf("outcome = %v, want scope denial (token has read, op needs write)", out)
	}
	// Scopeless op accepts any valid token.
	if out := g.Handle(Request{Bearer: tok, Op: "health"}); out != Served {
		t.Fatalf("scopeless op outcome = %v", out)
	}
}

func TestMalformedRejected(t *testing.T) {
	g, tok := testGateway(t)
	cases := []map[string]string{
		nil,
		{},
		{"id": ""},
		{"id": "   "},
		{"wrong": "42"},
	}
	for i, args := range cases {
		if out := g.Handle(Request{Bearer: tok, Op: "get_order", Args: args}); out != DeniedMalformed {
			t.Fatalf("case %d outcome = %v, want malformed", i, out)
		}
	}
}

func TestRevocation(t *testing.T) {
	g, tok := testGateway(t)
	if !g.RevokeToken(tok) {
		t.Fatal("revoke failed")
	}
	if g.RevokeToken(tok) {
		t.Fatal("double revoke succeeded")
	}
	if out := g.Handle(Request{Bearer: tok, Op: "get_order", Args: map[string]string{"id": "1"}}); out != DeniedAuth {
		t.Fatalf("revoked token outcome = %v", out)
	}
}

func TestCountsAndFraction(t *testing.T) {
	g, tok := testGateway(t)
	g.Handle(Request{Bearer: tok, Op: "get_order", Args: map[string]string{"id": "1"}})
	g.Handle(Request{Op: "get_order"})
	g.Handle(Request{Bearer: tok, Op: "nope"})
	if g.Counts[Served] != 1 || g.Counts[DeniedAuth] != 1 || g.Counts[DeniedUnknownOp] != 1 {
		t.Fatalf("counts = %v", g.Counts)
	}
	if f := g.ServedFraction(); f < 0.33 || f > 0.34 {
		t.Fatalf("ServedFraction = %v", f)
	}
	var empty Gateway
	empty.Counts = map[Outcome]uint64{}
	if empty.ServedFraction() != 0 {
		t.Fatal("empty gateway fraction nonzero")
	}
}

func TestServiceOperations(t *testing.T) {
	svc := NewService("s", Operation{Name: "b"}, Operation{Name: "a"})
	ops := svc.Operations()
	if len(ops) != 2 || ops[0] != "a" || ops[1] != "b" {
		t.Fatalf("Operations = %v", ops)
	}
}

func TestOutcomeString(t *testing.T) {
	if Served.String() != "served" || DeniedMalformed.String() != "malformed" {
		t.Fatal("outcome names wrong")
	}
}
