package api

import (
	"testing"

	"declnet"
)

// TestBatchEndpointOnboarding: one POST /v1/batch onboards a service —
// grants, binds, permits, and names via back-references — and the
// datapath works immediately after.
func TestBatchEndpointOnboarding(t *testing.T) {
	ts, w := newTestServer(t)
	f := w.Fig1

	var resp BatchResponse
	code := post(t, ts, "/v1/batch", BatchRequest{Tenant: "acme", Ops: []BatchOpRequest{
		{Op: "request_eip", VM: string(w.Host(f.CloudA, f.RegionsA[0], "az1", 1))}, // $0
		{Op: "request_eip", VM: string(w.Host(f.CloudB, f.RegionsB[0], "az1", 1))}, // $1
		{Op: "request_eip", VM: string(w.Host(f.CloudB, f.RegionsB[0], "az2", 1))}, // $2
		{Op: "request_sip", Provider: f.CloudB},                                    // $3
		{Op: "bind", EIP: "$1", SIP: "$3", Weight: 2},
		{Op: "bind", EIP: "$2", SIP: "$3"},
		{Op: "set_permit", Target: "$3", Entries: []string{"0.0.0.0/0"}},
		{Op: "register_name", Name: "db", Target: "$3"},
	}}, &resp)
	if code != 200 {
		t.Fatalf("batch status %d (error %q)", code, resp.Error)
	}
	if resp.Applied != 8 || len(resp.Results) != 8 || resp.Error != "" {
		t.Fatalf("batch response %+v, want 8 applied and no error", resp)
	}
	for i := 0; i < 4; i++ {
		if resp.Results[i].Addr == "" {
			t.Fatalf("grant op %d returned no address", i)
		}
	}
	// The onboarded service answers immediately: connect client -> SIP.
	client, err := declnet.ParseIP(resp.Results[0].Addr)
	if err != nil {
		t.Fatal(err)
	}
	sip, err := declnet.ParseIP(resp.Results[3].Addr)
	if err != nil {
		t.Fatal(err)
	}
	cn, err := w.Tenant("acme").Connect(client, sip, declnet.ConnectOpts{SizeBytes: 1e3})
	if err != nil {
		t.Fatalf("Connect after batch onboarding: %v", err)
	}
	cn.Close()
	// The name landed too.
	if ip, ok := w.Tenant("acme").Resolve("db"); !ok || ip != sip {
		t.Fatalf("Resolve(db) = %s/%v, want %s", ip, ok, sip)
	}
}

// TestBatchEndpointValidationError: a statically invalid batch is
// rejected with 400 and nothing is applied — including the valid ops
// before the bad one.
func TestBatchEndpointValidationError(t *testing.T) {
	ts, w := newTestServer(t)
	f := w.Fig1
	vm := string(w.Host(f.CloudA, f.RegionsA[0], "az1", 1))

	for name, ops := range map[string][]BatchOpRequest{
		"unknown op":   {{Op: "request_eip", VM: vm}, {Op: "frobnicate"}},
		"bad address":  {{Op: "request_eip", VM: vm}, {Op: "release_eip", EIP: "nope"}},
		"bad backref":  {{Op: "request_eip", VM: vm}, {Op: "bind", EIP: "$9", SIP: "$0"}},
		"bad policy":   {{Op: "request_eip", VM: vm}, {Op: "set_potato", Provider: f.CloudA, Policy: "lukewarm"}},
		"bad entry":    {{Op: "request_eip", VM: vm}, {Op: "set_permit", Target: "1.2.3.4", Entries: []string{"not-a-cidr"}}},
		"unknown prov": {{Op: "request_eip", VM: vm}, {Op: "request_sip", Provider: "azure"}},
	} {
		var e Error
		if code := post(t, ts, "/v1/batch", BatchRequest{Tenant: "acme", Ops: ops}, &e); code != 400 {
			t.Errorf("%s: status %d, want 400 (error %q)", name, code, e.Error)
		}
	}
	// An empty batch is a 400 too.
	var e Error
	if code := post(t, ts, "/v1/batch", BatchRequest{Tenant: "acme"}, &e); code != 400 {
		t.Errorf("empty batch: status %d, want 400", code)
	}
	// None of the rejected batches applied their leading valid op.
	var status struct {
		Providers map[string]struct {
			Endpoints int `json:"endpoints"`
		} `json:"providers"`
	}
	if code := get(t, ts, "/v1/status", &status); code != 200 {
		t.Fatalf("status code %d", code)
	}
	for name, p := range status.Providers {
		if p.Endpoints != 0 {
			t.Errorf("provider %s has %d endpoints after rejected batches, want 0", name, p.Endpoints)
		}
	}
}

// TestBatchEndpointPartialFailure: a runtime failure mid-batch returns
// 409 with the applied prefix and the failing index; applied ops stay
// applied.
func TestBatchEndpointPartialFailure(t *testing.T) {
	ts, w := newTestServer(t)
	f := w.Fig1

	var resp BatchResponse
	code := post(t, ts, "/v1/batch", BatchRequest{Tenant: "acme", Ops: []BatchOpRequest{
		{Op: "request_eip", VM: string(w.Host(f.CloudA, f.RegionsA[0], "az1", 1))},
		{Op: "request_eip", VM: "ghost/az0/host9"}, // validates, fails at apply
		{Op: "request_sip", Provider: f.CloudA},
	}}, &resp)
	if code != 409 {
		t.Fatalf("partial failure status %d, want 409", code)
	}
	if resp.Applied != 1 || len(resp.Results) != 1 {
		t.Fatalf("applied %d results %v, want exactly the first op", resp.Applied, resp.Results)
	}
	if resp.FailedIndex == nil || *resp.FailedIndex != 1 {
		t.Fatalf("failed_index %v, want 1", resp.FailedIndex)
	}
	if resp.Error == "" {
		t.Fatal("409 response carried no error")
	}
	// The applied grant survives: releasing it through the normal
	// endpoint succeeds.
	if code := post(t, ts, "/v1/eips/release",
		ReleaseRequest{Tenant: "acme", EIP: resp.Results[0].Addr}, nil); code != 200 {
		t.Fatalf("release of batch-granted EIP: status %d", code)
	}
}
