// Package api exposes the Table-2 control plane over HTTP/JSON — the
// shape a real provider would offer tenants. cmd/declnetd serves it;
// cmd/declnetctl speaks it. The handler owns a single simulated World and
// serializes access to it (the simulation engine is single-threaded by
// design).
//
// Alongside the control verbs, the server carries the observability plane
// of §6: GET /v1/explain replays a datapath decision, GET /v1/trace
// returns recent provider-side decision events, and GET /v1/metrics
// exports the runtime metrics registry in Prometheus text format.
package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"declnet"
	"declnet/internal/core"
	"declnet/internal/metrics"
	"declnet/internal/obs"
	"declnet/internal/qos"
	"declnet/internal/slo"
)

// Server wraps a world in an http.Handler. Core's sharded locking now
// carries mutation concurrency, so most handlers — reads (probe, status,
// explain, trace, metrics) AND single-shard mutations (eips, sips, bind,
// permit, qos, potato, groups, names) — share s.mu.RLock and serialize
// only against each other's shards inside core. s.mu.Lock remains for
// the handlers that advance the simulation engine (transfer, fail/heal —
// the engine is single-threaded by design) and for /v1/batch, whose
// epoch-spanning ops take core's global gate exclusively.
type Server struct {
	mu    sync.RWMutex
	world *declnet.World
	mux   *http.ServeMux

	log       *slog.Logger
	tracer    *obs.Tracer
	registry  *metrics.Registry
	plane     *slo.Plane
	startedAt time.Time

	mRequests *metrics.RCounter
	mErrors   *metrics.RCounter
	mLatency  *metrics.RHistogram
}

// Options tunes the server's observability wiring. The zero value gives a
// silent logger and fresh tracer + registry attached to the world.
type Options struct {
	// Logger receives one structured line per request (method, path,
	// tenant, status, latency). Nil discards logs.
	Logger *slog.Logger
	// Tracer and Registry override the defaults; nil values get fresh
	// instances. Both are attached to the world via EnableObservability.
	Tracer   *obs.Tracer
	Registry *metrics.Registry
	// SLO overrides the default latency plane (nil gets a fresh default
	// plane). It is attached to the world via EnableSLO and backs the
	// /v1/slo, /v1/health, and /v1/debug/flight endpoints.
	SLO *slo.Plane
}

// NewServer returns a handler over the given world with default
// observability (silent logs, fresh tracer and registry).
func NewServer(w *declnet.World) *Server { return NewServerWith(w, Options{}) }

// NewServerWith returns a handler with explicit observability wiring.
func NewServerWith(w *declnet.World, opts Options) *Server {
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.DiscardHandler)
	}
	if opts.Tracer == nil {
		opts.Tracer = obs.NewTracer(0)
	}
	if opts.Registry == nil {
		opts.Registry = metrics.NewRegistry()
	}
	if opts.SLO == nil {
		opts.SLO = slo.NewPlane(slo.Config{})
	}
	w.EnableObservability(opts.Tracer, opts.Registry)
	w.EnableSLO(opts.SLO)
	s := &Server{
		world: w, mux: http.NewServeMux(),
		log: opts.Logger, tracer: opts.Tracer, registry: opts.Registry,
		plane:     opts.SLO,
		startedAt: time.Now(),
		mRequests: opts.Registry.Counter("declnet_http_requests_total", "HTTP API requests."),
		mErrors:   opts.Registry.Counter("declnet_http_errors_total", "HTTP API error responses."),
		mLatency:  opts.Registry.Histogram("declnet_http_request_seconds", "HTTP API request latency."),
	}
	s.mux.HandleFunc("POST /v1/eips", s.requestEIP)
	s.mux.HandleFunc("POST /v1/eips/release", s.releaseEIP)
	s.mux.HandleFunc("POST /v1/sips", s.requestSIP)
	s.mux.HandleFunc("POST /v1/bind", s.bind)
	s.mux.HandleFunc("POST /v1/unbind", s.unbind)
	s.mux.HandleFunc("POST /v1/permit", s.setPermitList)
	s.mux.HandleFunc("POST /v1/qos", s.setQoS)
	s.mux.HandleFunc("POST /v1/potato", s.setPotato)
	s.mux.HandleFunc("POST /v1/groups", s.createGroup)
	s.mux.HandleFunc("POST /v1/names", s.registerName)
	s.mux.HandleFunc("POST /v1/batch", s.batch)
	s.mux.HandleFunc("POST /v1/transfer", s.transfer)
	s.mux.HandleFunc("POST /v1/fail", s.fail)
	s.mux.HandleFunc("POST /v1/heal", s.heal)
	s.mux.HandleFunc("GET /v1/probe", s.probe)
	s.mux.HandleFunc("GET /v1/status", s.status)
	s.mux.HandleFunc("GET /v1/explain", s.explain)
	s.mux.HandleFunc("GET /v1/trace", s.trace)
	s.mux.HandleFunc("GET /v1/metrics", s.metrics)
	s.mux.HandleFunc("GET /v1/slo", s.sloReport)
	s.mux.HandleFunc("POST /v1/slo", s.sloSet)
	s.mux.HandleFunc("GET /v1/health", s.health)
	s.mux.HandleFunc("GET /v1/debug/flight", s.flight)
	s.mux.HandleFunc("GET /v1/reconcile", s.reconcileStatus)
	s.mux.HandleFunc("POST /v1/reconcile/sweep", s.reconcileSweep)
	s.mux.HandleFunc("POST /v1/snapshot", s.snapshot)
	return s
}

// Logger returns the server's structured logger.
func (s *Server) Logger() *slog.Logger { return s.log }

// Registry returns the runtime metrics registry.
func (s *Server) Registry() *metrics.Registry { return s.registry }

// ExpvarMap snapshots the registry under the world lock — gauge functions
// sample live simulation state, so a lock-free snapshot from a debug
// listener would race with request handlers.
func (s *Server) ExpvarMap() map[string]float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.registry.ExpvarMap()
}

// WorldGate returns the serialization bracket background loops use
// around world access: it takes the server's read lock (excluding
// engine-advancing handlers, which hold the write lock) and returns the
// release. The daemon passes this to the reconciler's Start loop.
func (s *Server) WorldGate() func() func() {
	return func() func() { s.mu.RLock(); return s.mu.RUnlock }
}

// statusRecorder captures the response code for logging and metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

// ServeHTTP implements http.Handler, logging one structured line per
// request and feeding the API rate/latency instruments.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	tenant := r.URL.Query().Get("tenant")
	if tenant == "" && r.Method == http.MethodPost && r.Body != nil {
		// The tenant rides in the JSON body on POSTs; peek it for the log
		// line and hand the handler a replayable body.
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err == nil {
			r.Body = io.NopCloser(bytes.NewReader(body))
			var t struct {
				Tenant string `json:"tenant"`
			}
			if json.Unmarshal(body, &t) == nil {
				tenant = t.Tenant
			}
		}
	}
	rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
	s.mux.ServeHTTP(rec, r)
	elapsed := time.Since(start)
	s.mRequests.Inc()
	s.mLatency.Observe(elapsed.Seconds())
	level := slog.LevelDebug
	if rec.code >= 400 {
		s.mErrors.Inc()
		level = slog.LevelWarn
	}
	s.log.LogAttrs(r.Context(), level, "request",
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.String("tenant", tenant),
		slog.Int("status", rec.code),
		slog.Duration("latency", elapsed),
	)
}

// Error is the JSON error envelope.
type Error struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, Error{Error: err.Error()})
}

func decode[T any](r *http.Request) (T, error) {
	var v T
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&v); err != nil {
		return v, fmt.Errorf("api: bad request body: %w", err)
	}
	return v, nil
}

// EIPRequest asks for an endpoint IP (Table 2: request_eip(vm_id)).
type EIPRequest struct {
	Tenant string `json:"tenant"`
	VM     string `json:"vm"`
}

// EIPResponse returns the granted address.
type EIPResponse struct {
	EIP string `json:"eip"`
}

func (s *Server) requestEIP(w http.ResponseWriter, r *http.Request) {
	req, err := decode[EIPRequest](r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	eip, err := s.world.Tenant(req.Tenant).RequestEIP(declnet.NodeID(req.VM))
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, EIPResponse{EIP: eip.String()})
}

// ReleaseRequest returns an endpoint IP.
type ReleaseRequest struct {
	Tenant string `json:"tenant"`
	EIP    string `json:"eip"`
}

func (s *Server) releaseEIP(w http.ResponseWriter, r *http.Request) {
	req, err := decode[ReleaseRequest](r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ip, err := declnet.ParseIP(req.EIP)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := s.world.Tenant(req.Tenant).ReleaseEIP(ip); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

// SIPRequest asks for a service IP (Table 2: request_sip()).
type SIPRequest struct {
	Tenant   string `json:"tenant"`
	Provider string `json:"provider"`
}

// SIPResponse returns the granted service address.
type SIPResponse struct {
	SIP string `json:"sip"`
}

func (s *Server) requestSIP(w http.ResponseWriter, r *http.Request) {
	req, err := decode[SIPRequest](r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	sip, err := s.world.Tenant(req.Tenant).RequestSIP(req.Provider)
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, SIPResponse{SIP: sip.String()})
}

// BindRequest associates an EIP with a SIP (Table 2: bind(eip, sip)).
type BindRequest struct {
	Tenant string `json:"tenant"`
	EIP    string `json:"eip"`
	SIP    string `json:"sip"`
	Weight int    `json:"weight,omitempty"`
}

func (s *Server) bind(w http.ResponseWriter, r *http.Request) {
	s.bindish(w, r, func(t *declnet.Tenant, eip, sip declnet.IP, weight int) error {
		return t.Bind(eip, sip, weight)
	})
}

func (s *Server) unbind(w http.ResponseWriter, r *http.Request) {
	s.bindish(w, r, func(t *declnet.Tenant, eip, sip declnet.IP, _ int) error {
		return t.Unbind(eip, sip)
	})
}

func (s *Server) bindish(w http.ResponseWriter, r *http.Request, fn func(*declnet.Tenant, declnet.IP, declnet.IP, int) error) {
	req, err := decode[BindRequest](r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	eip, err := declnet.ParseIP(req.EIP)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	sip, err := declnet.ParseIP(req.SIP)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := fn(s.world.Tenant(req.Tenant), eip, sip, req.Weight); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

// PermitRequest replaces a target's permit list (Table 2:
// set_permit_list(eip, permit_list)). Entries are CIDR strings; bare IPs
// are treated as /32s.
type PermitRequest struct {
	Tenant  string   `json:"tenant"`
	Target  string   `json:"target"`
	Entries []string `json:"entries"`
	Groups  []string `json:"groups,omitempty"`
}

func (s *Server) setPermitList(w http.ResponseWriter, r *http.Request) {
	req, err := decode[PermitRequest](r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	target, err := declnet.ParseIP(req.Target)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	entries := make([]declnet.Prefix, 0, len(req.Entries))
	for _, e := range req.Entries {
		p, err := ParsePermitEntry(e)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		entries = append(entries, p)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := s.world.Tenant(req.Tenant).SetPermitList(target, entries, req.Groups...); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

// ParsePermitEntry parses one wire-format permit entry: a CIDR, or a
// bare IP treated as a /32.
func ParsePermitEntry(e string) (declnet.Prefix, error) {
	if !strings.Contains(e, "/") {
		e += "/32"
	}
	return declnet.ParsePrefix(e)
}

// QoSRequest grants regional egress bandwidth (Table 2:
// set_qos(region, bandwidth)).
type QoSRequest struct {
	Tenant    string  `json:"tenant"`
	Provider  string  `json:"provider"`
	Region    string  `json:"region"`
	Bandwidth float64 `json:"bandwidth_bps"`
}

func (s *Server) setQoS(w http.ResponseWriter, r *http.Request) {
	req, err := decode[QoSRequest](r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := s.world.Tenant(req.Tenant).SetQoS(req.Provider, req.Region, req.Bandwidth); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

// PotatoRequest selects a transit profile ("hot", "cold", "dedicated").
type PotatoRequest struct {
	Tenant   string `json:"tenant"`
	Provider string `json:"provider"`
	Policy   string `json:"policy"`
}

func (s *Server) setPotato(w http.ResponseWriter, r *http.Request) {
	req, err := decode[PotatoRequest](r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var policy qos.PotatoPolicy
	switch req.Policy {
	case "hot":
		policy = qos.HotPotato
	case "cold":
		policy = qos.ColdPotato
	case "dedicated":
		policy = qos.Dedicated
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("api: unknown policy %q", req.Policy))
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := s.world.Tenant(req.Tenant).SetPotato(req.Provider, policy); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

// GroupRequest defines an endpoint group (members may span providers).
type GroupRequest struct {
	Tenant  string   `json:"tenant"`
	Name    string   `json:"name"`
	Members []string `json:"members"`
}

func (s *Server) createGroup(w http.ResponseWriter, r *http.Request) {
	req, err := decode[GroupRequest](r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	members := make([]declnet.EIP, 0, len(req.Members))
	for _, m := range req.Members {
		ip, err := declnet.ParseIP(m)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		members = append(members, ip)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := s.world.Tenant(req.Tenant).CreateGroup(req.Name, members...); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

// NameRequest binds a tenant-scoped name to one of the tenant's
// addresses (the §6 naming extension).
type NameRequest struct {
	Tenant string `json:"tenant"`
	Name   string `json:"name"`
	Target string `json:"target"`
}

func (s *Server) registerName(w http.ResponseWriter, r *http.Request) {
	req, err := decode[NameRequest](r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	target, err := declnet.ParseIP(req.Target)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := s.world.Tenant(req.Tenant).Register(req.Name, target); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

// resolveDst interprets a destination string as an IP, falling back to
// the tenant's registered names. Callers hold s.mu.
func (s *Server) resolveDst(tenant, dst string) (declnet.IP, error) {
	if ip, err := declnet.ParseIP(dst); err == nil {
		return ip, nil
	}
	if ip, ok := s.world.Tenant(tenant).Resolve(dst); ok {
		return ip, nil
	}
	return 0, fmt.Errorf("api: %q is neither an address nor a registered name", dst)
}

// TransferRequest moves bytes between endpoints inside the simulation.
type TransferRequest struct {
	Tenant string  `json:"tenant"`
	Src    string  `json:"src"`
	Dst    string  `json:"dst"`
	Bytes  float64 `json:"bytes"`
}

// TransferResponse reports the flow completion time.
type TransferResponse struct {
	FCTMillis float64 `json:"fct_ms"`
}

func (s *Server) transfer(w http.ResponseWriter, r *http.Request) {
	req, err := decode[TransferRequest](r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	src, err := declnet.ParseIP(req.Src)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Bytes <= 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("api: bytes must be positive"))
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	dst, err := s.resolveDst(req.Tenant, req.Dst)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var fct time.Duration
	_, err = s.world.Tenant(req.Tenant).Transfer(src, dst, req.Bytes, func(d time.Duration) { fct = d })
	if err != nil {
		writeErr(w, http.StatusForbidden, err)
		return
	}
	s.world.Run()
	writeJSON(w, http.StatusOK, TransferResponse{FCTMillis: float64(fct) / float64(time.Millisecond)})
}

// FaultRequest injects or heals an infrastructure failure — the
// operator-facing face of internal/fault. Kind is "link", "node", or
// "region"; AdvanceMillis optionally runs the simulation forward after
// the event so the provider's reaction (failover, re-bind) can land.
type FaultRequest struct {
	Kind          string  `json:"kind"`
	Target        string  `json:"target"`
	AdvanceMillis float64 `json:"advance_ms,omitempty"`
}

// FaultResponse reports the injector's running drill counters.
type FaultResponse struct {
	LinkFailures   uint64 `json:"link_failures"`
	NodeFailures   uint64 `json:"node_failures"`
	RegionFailures uint64 `json:"region_failures"`
	Recoveries     uint64 `json:"recoveries"`
	Failovers      uint64 `json:"failovers"`
	Rebinds        uint64 `json:"rebinds"`
}

func (s *Server) fail(w http.ResponseWriter, r *http.Request) { s.faultish(w, r, true) }
func (s *Server) heal(w http.ResponseWriter, r *http.Request) { s.faultish(w, r, false) }

func (s *Server) faultish(w http.ResponseWriter, r *http.Request, fail bool) {
	req, err := decode[FaultRequest](r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	op := s.world.Heal
	if fail {
		op = s.world.Fail
	}
	if err := op(req.Kind, req.Target); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	if req.AdvanceMillis > 0 {
		s.world.RunFor(time.Duration(req.AdvanceMillis * float64(time.Millisecond)))
	}
	m := s.world.Faults()
	writeJSON(w, http.StatusOK, FaultResponse{
		LinkFailures:   m.Inj.LinkFailures,
		NodeFailures:   m.Inj.NodeFailures,
		RegionFailures: m.Inj.RegionFailures,
		Recoveries:     m.Inj.Recoveries,
		Failovers:      m.Failovers,
		Rebinds:        m.Rebinds,
	})
}

// ProbeResponse reports one RTT sample.
type ProbeResponse struct {
	RTTMillis float64 `json:"rtt_ms"`
	Delivered bool    `json:"delivered"`
}

func (s *Server) probe(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	src, err := declnet.ParseIP(q.Get("src"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	// The op opens here (not in core) so its service time covers the
	// whole request path: name resolution, shard locking, datapath.
	op := s.plane.Begin(slo.VerbProbe, q.Get("tenant"), "")
	s.mu.RLock()
	defer s.mu.RUnlock()
	dst, err := s.resolveDst(q.Get("tenant"), q.Get("dst"))
	if err != nil {
		op.End(err)
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	rtt, ok, err := s.world.Tenant(q.Get("tenant")).ProbeWith(&op, src, dst)
	op.End(err)
	if err != nil {
		writeErr(w, http.StatusForbidden, err)
		return
	}
	writeJSON(w, http.StatusOK, ProbeResponse{
		RTTMillis: float64(rtt) / float64(time.Millisecond),
		Delivered: ok,
	})
}

// StatusResponse summarizes the running world: virtual and wall-clock
// uptime, per-provider scale, per-tenant resource counts, and trace
// volume from the observability plane.
type StatusResponse struct {
	VirtualTimeMillis float64                        `json:"virtual_time_ms"`
	UptimeSeconds     float64                        `json:"uptime_seconds"`
	Providers         map[string]any                 `json:"providers"`
	Tenants           map[string]core.ResourceCounts `json:"tenants"`
	TraceEvents       uint64                         `json:"trace_events"`
	MetricSamples     int                            `json:"metric_samples"`
}

func (s *Server) status(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	resp := StatusResponse{
		VirtualTimeMillis: float64(s.world.Now()) / float64(time.Millisecond),
		UptimeSeconds:     time.Since(s.startedAt).Seconds(),
		Providers:         map[string]any{},
		Tenants:           s.world.Cloud.TenantResources(),
		TraceEvents:       s.tracer.Recorded(),
		MetricSamples:     len(s.registry.Snapshot()),
	}
	for _, name := range []string{s.world.Fig1.CloudA, s.world.Fig1.CloudB, "onprem"} {
		if p, ok := s.world.Cloud.Provider(name); ok {
			resp.Providers[name] = map[string]int{
				"endpoints": p.EndpointCount(),
				"services":  p.ServiceCount(),
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
