package api

import (
	"net/http"
	"testing"

	"declnet"
	"declnet/internal/topo"
)

func TestFailHealEndpoints(t *testing.T) {
	ts, w := newTestServer(t)
	fig := w.Fig1

	node := string(topo.HostID(fig.CloudB, fig.RegionsB[0], "az1", 1))
	var resp FaultResponse
	if code := post(t, ts, "/v1/fail", map[string]any{"kind": "node", "target": node}, &resp); code != http.StatusOK {
		t.Fatalf("fail node: status %d", code)
	}
	if resp.NodeFailures != 1 {
		t.Fatalf("NodeFailures = %d, want 1", resp.NodeFailures)
	}
	if w.Faults() == nil || w.Faults().Inj.NodeUp(topo.NodeID(node)) {
		t.Fatal("node should be down after /v1/fail")
	}
	if code := post(t, ts, "/v1/heal", map[string]any{"kind": "node", "target": node, "advance_ms": 100.0}, &resp); code != http.StatusOK {
		t.Fatalf("heal node: status %d", code)
	}
	if resp.Recoveries != 1 {
		t.Fatalf("Recoveries = %d, want 1", resp.Recoveries)
	}
	if !w.Faults().Inj.NodeUp(topo.NodeID(node)) {
		t.Fatal("node should be up after /v1/heal")
	}

	// Region verbs take provider/region targets.
	region := fig.CloudA + "/" + fig.RegionsA[0]
	if code := post(t, ts, "/v1/fail", map[string]any{"kind": "region", "target": region}, &resp); code != http.StatusOK {
		t.Fatalf("fail region: status %d", code)
	}
	if resp.RegionFailures != 1 {
		t.Fatalf("RegionFailures = %d, want 1", resp.RegionFailures)
	}
	if code := post(t, ts, "/v1/heal", map[string]any{"kind": "region", "target": region}, &resp); code != http.StatusOK {
		t.Fatalf("heal region: status %d", code)
	}

	// Bad kinds and unknown targets are client errors.
	if code := post(t, ts, "/v1/fail", map[string]any{"kind": "volcano", "target": "x"}, nil); code != http.StatusConflict {
		t.Fatalf("bad kind: status %d, want 409", code)
	}
	if code := post(t, ts, "/v1/fail", map[string]any{"kind": "node", "target": "no-such-node"}, nil); code != http.StatusConflict {
		t.Fatalf("unknown node: status %d, want 409", code)
	}
}

func TestFailoverThroughAPI(t *testing.T) {
	ts, w := newTestServer(t)
	fig := w.Fig1
	_ = declnet.DefaultFaultPolicy() // exercised via first /v1/fail

	// Tenant sets up a SIP with two backends and permits a client.
	var eipResp EIPResponse
	post(t, ts, "/v1/eips", map[string]any{"tenant": "t", "vm": string(topo.HostID(fig.CloudB, fig.RegionsB[0], "az1", 1))}, &eipResp)
	be1 := eipResp.EIP
	post(t, ts, "/v1/eips", map[string]any{"tenant": "t", "vm": string(topo.HostID(fig.CloudB, fig.RegionsB[0], "az2", 1))}, &eipResp)
	be2 := eipResp.EIP
	post(t, ts, "/v1/eips", map[string]any{"tenant": "t", "vm": string(topo.HostID(fig.CloudA, fig.RegionsA[0], "az1", 1))}, &eipResp)
	client := eipResp.EIP
	var sipResp SIPResponse
	post(t, ts, "/v1/sips", map[string]any{"tenant": "t", "provider": fig.CloudB}, &sipResp)
	for _, be := range []string{be1, be2} {
		if code := post(t, ts, "/v1/bind", map[string]any{"tenant": "t", "eip": be, "sip": sipResp.SIP, "weight": 1}, nil); code != http.StatusOK {
			t.Fatalf("bind %s: status %d", be, code)
		}
	}
	post(t, ts, "/v1/permit", map[string]any{"tenant": "t", "target": sipResp.SIP, "entries": []string{client}}, nil)

	// Kill be1's host and advance past the detect delay: the monitor must
	// have failed the SIP over (one failover, no tenant calls).
	var resp FaultResponse
	node := string(topo.HostID(fig.CloudB, fig.RegionsB[0], "az1", 1))
	if code := post(t, ts, "/v1/fail", map[string]any{"kind": "node", "target": node, "advance_ms": 2000.0}, &resp); code != http.StatusOK {
		t.Fatalf("fail: status %d", code)
	}
	if resp.Failovers != 1 {
		t.Fatalf("Failovers = %d, want 1 after advancing past detect delay", resp.Failovers)
	}
	// Transfers through the SIP keep working off the survivor.
	var tr TransferResponse
	if code := post(t, ts, "/v1/transfer", map[string]any{"tenant": "t", "src": client, "dst": sipResp.SIP, "bytes": 1e6}, &tr); code != http.StatusOK {
		t.Fatalf("transfer during failure: status %d", code)
	}
	if tr.FCTMillis <= 0 {
		t.Fatal("transfer did not complete")
	}
}
