package api

import (
	"strings"
	"testing"

	"declnet"
)

// FuzzParsePermitEntry covers the wire-format permit entries tenants send
// through POST /v1/permit: CIDRs, or bare IPs promoted to /32s. Accepted
// entries must round-trip (modulo the implied /32) and behave as permit
// prefixes — a bare IP must permit exactly itself.
func FuzzParsePermitEntry(f *testing.F) {
	for _, seed := range []string{
		"1.2.3.4", "10.0.0.0/8", "0.0.0.0/0", "255.255.255.255",
		"", "/", "1.2.3.4/", "1.2.3.4/33", "0.0.0.0/+8",
		"+4.0.0.0", "-0.0.0.1", "01.2.3.4", "1.2.3.4/32/32",
		"8.8.8.8 ", "8.8.8.8\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePermitEntry(s)
		if err != nil {
			return
		}
		if p.Len < 0 || p.Len > 32 {
			t.Fatalf("ParsePermitEntry(%q) produced illegal length %d", s, p.Len)
		}
		if strings.Contains(s, "/") {
			if got := p.String(); got != s {
				t.Fatalf("ParsePermitEntry(%q) accepted CIDR, but String() = %q", s, got)
			}
			return
		}
		// Bare IP: must become that exact host's /32.
		ip, err := declnet.ParseIP(s)
		if err != nil {
			t.Fatalf("ParsePermitEntry(%q) accepted a bare entry ParseIP rejects", s)
		}
		if p.Len != 32 || p.Addr != ip {
			t.Fatalf("ParsePermitEntry(%q) = %s, want %s/32", s, p, ip)
		}
		if !p.Contains(ip) {
			t.Fatalf("ParsePermitEntry(%q): /32 does not permit its own host", s)
		}
	})
}
