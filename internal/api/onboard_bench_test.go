package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"declnet"
)

// benchPost is the benchmark-side HTTP helper (the test helpers take
// *testing.T). It fails the benchmark on any non-2xx status.
func benchPost(b *testing.B, ts *httptest.Server, path string, body any, out any) {
	b.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var e Error
		json.NewDecoder(resp.Body).Decode(&e)
		b.Fatalf("%s: status %d (%s)", path, resp.StatusCode, e.Error)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchOnboard compares onboarding N endpoints (request_eip +
// set_permit each) through the per-endpoint endpoints — 2N requests,
// each paying its own round trip, write-lock acquisition, and epoch
// bump — against one POST /v1/batch carrying the same 2N ops behind a
// single lock and a single coalesced bump. One benchmark op onboards
// the whole fleet; teardown (release) runs off the clock. The
// loop/batch ns-per-op ratio is the batch API's acceptance number in
// BENCH_mutate.json.
func BenchmarkBatchOnboard(b *testing.B) {
	const endpoints = 64
	setup := func(b *testing.B) (*httptest.Server, string) {
		b.Helper()
		w, err := declnet.NewFig1World(1, 2)
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(NewServer(w))
		b.Cleanup(ts.Close)
		f := w.Fig1
		return ts, string(w.Host(f.CloudA, f.RegionsA[0], "az1", 1))
	}
	release := func(b *testing.B, ts *httptest.Server, eips []string) {
		b.Helper()
		for _, eip := range eips {
			benchPost(b, ts, "/v1/eips/release", ReleaseRequest{Tenant: "acme", EIP: eip}, nil)
		}
	}

	b.Run("loop", func(b *testing.B) {
		ts, vm := setup(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eips := make([]string, 0, endpoints)
			for j := 0; j < endpoints; j++ {
				var grant EIPResponse
				benchPost(b, ts, "/v1/eips", EIPRequest{Tenant: "acme", VM: vm}, &grant)
				benchPost(b, ts, "/v1/permit", PermitRequest{
					Tenant: "acme", Target: grant.EIP, Entries: []string{"10.0.0.0/8"}}, nil)
				eips = append(eips, grant.EIP)
			}
			b.StopTimer()
			release(b, ts, eips)
			b.StartTimer()
		}
	})

	b.Run("batch", func(b *testing.B) {
		ts, vm := setup(b)
		ops := make([]BatchOpRequest, 0, 2*endpoints)
		for j := 0; j < endpoints; j++ {
			ops = append(ops,
				BatchOpRequest{Op: "request_eip", VM: vm},
				BatchOpRequest{Op: "set_permit", Target: fmt.Sprintf("$%d", 2*j),
					Entries: []string{"10.0.0.0/8"}})
		}
		req := BatchRequest{Tenant: "acme", Ops: ops}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var resp BatchResponse
			benchPost(b, ts, "/v1/batch", req, &resp)
			if resp.Applied != len(ops) {
				b.Fatalf("applied %d of %d ops", resp.Applied, len(ops))
			}
			b.StopTimer()
			eips := make([]string, 0, endpoints)
			for _, r := range resp.Results {
				if r.Op == "request_eip" {
					eips = append(eips, r.Addr)
				}
			}
			release(b, ts, eips)
			b.StartTimer()
		}
	})
}
