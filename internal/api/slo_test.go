package api

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"declnet"
	"declnet/internal/slo"
)

// newSLOServer is newTestServer plus the *Server handle and a plane
// configured for detector tests (tiny sample floors, explicit windows).
func newSLOServer(t *testing.T) (*httptest.Server, *declnet.World, *Server, *slo.Plane) {
	t.Helper()
	w, err := declnet.NewFig1World(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	plane := slo.NewPlane(slo.Config{Window: time.Hour, SampleEvery: 1, MinWindowSamples: 8})
	srv := NewServerWith(w, Options{SLO: plane})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, w, srv, plane
}

func TestSLOEndpoints(t *testing.T) {
	ts, w, _, _ := newSLOServer(t)
	f := w.Fig1

	// Objective registration: good spec, then the 400 paths.
	if code := post(t, ts, "/v1/slo", SLOSetRequest{Tenant: "acme",
		Objective: "connect_p99=5ms;permit_lag_p99=1ms"}, nil); code != 200 {
		t.Fatalf("set objective status %d", code)
	}
	if code := post(t, ts, "/v1/slo", SLOSetRequest{Objective: "connect_p99=5ms"}, nil); code != 400 {
		t.Fatalf("missing tenant status %d, want 400", code)
	}
	if code := post(t, ts, "/v1/slo", SLOSetRequest{Tenant: "acme", Objective: "latency=oops"}, nil); code != 400 {
		t.Fatalf("bad spec status %d, want 400", code)
	}

	// Drive a couple of real verbs so shards materialize.
	var src, dst EIPResponse
	post(t, ts, "/v1/eips", EIPRequest{Tenant: "acme", VM: string(w.Host(f.CloudA, f.RegionsA[0], "az1", 1))}, &src)
	post(t, ts, "/v1/eips", EIPRequest{Tenant: "acme", VM: string(w.Host(f.CloudA, f.RegionsA[0], "az2", 1))}, &dst)
	if code := post(t, ts, "/v1/permit", PermitRequest{Tenant: "acme",
		Target: dst.EIP, Entries: []string{src.EIP + "/32"}}, nil); code != 200 {
		t.Fatal("permit failed")
	}
	if code := get(t, ts, fmt.Sprintf("/v1/probe?tenant=acme&src=%s&dst=%s", src.EIP, dst.EIP), nil); code != 200 {
		t.Fatalf("probe status %d", code)
	}

	var rep SLOResponse
	if code := get(t, ts, "/v1/slo", &rep); code != 200 {
		t.Fatalf("slo report status %d", code)
	}
	if len(rep.Tenants) != 1 || rep.Tenants[0].Tenant != "acme" {
		t.Fatalf("tenants = %+v, want acme", rep.Tenants)
	}
	tr := rep.Tenants[0]
	if tr.Objective == nil || tr.Objective.Spec != "connect_p99=5ms;permit_lag_p99=1ms" {
		t.Fatalf("objective = %+v", tr.Objective)
	}
	if len(tr.Shards) == 0 {
		t.Fatal("no shards reported after real traffic")
	}
	seen := map[string]bool{}
	for _, sh := range tr.Shards {
		for _, v := range sh.Verbs {
			seen[v.Verb] = true
		}
	}
	for _, want := range []string{"grant", "permit", "probe"} {
		if !seen[want] {
			t.Errorf("verb %q missing from shard report (got %v)", want, seen)
		}
	}

	// Tenant filter: an unknown tenant reports empty.
	if code := get(t, ts, "/v1/slo?tenant=nobody", &rep); code != 200 || len(rep.Tenants) != 0 {
		t.Fatalf("filtered report = %d / %+v", code, rep.Tenants)
	}
}

func TestHealthEndpoint(t *testing.T) {
	ts, _, _, plane := newSLOServer(t)

	var rep slo.HealthReport
	if code := get(t, ts, "/v1/health", &rep); code != 200 || rep.Status != "ok" {
		t.Fatalf("healthy status = %d / %q", code, rep.Status)
	}

	// Synthesize a breach: fast baseline window, slow current window, and
	// a dominant mutator from another tenant.
	for i := 0; i < 16; i++ {
		plane.Observe(slo.VerbConnect, "victim", "cloudA/a-east", time.Microsecond)
	}
	plane.AdvanceWindow()
	for i := 0; i < 16; i++ {
		plane.Observe(slo.VerbConnect, "victim", "cloudA/a-east", 100*time.Microsecond)
	}
	for i := 0; i < 100; i++ {
		plane.Observe(slo.VerbPermit, "noisy", "cloudB/b-east", time.Microsecond)
	}
	if code := get(t, ts, "/v1/health", &rep); code != http.StatusServiceUnavailable {
		t.Fatalf("degraded health status = %d, want 503", code)
	}
	if rep.Status != "degraded" || len(rep.Breaches) != 1 {
		t.Fatalf("health = %+v, want one breach", rep)
	}
	b := rep.Breaches[0]
	if b.Shard != "victim@cloudA/a-east" || b.Suspect != "noisy@cloudB/b-east" {
		t.Fatalf("breach = %+v, wrong attribution", b)
	}
}

func TestFlightEndpoint(t *testing.T) {
	ts, _, _, plane := newSLOServer(t)

	for i := 0; i < 3; i++ {
		op := plane.Begin(slo.VerbConnect, "acme", "cloudA/a-east")
		op.End(errors.New("synthetic"))
	}
	var rep FlightResponse
	if code := get(t, ts, "/v1/debug/flight", &rep); code != 200 {
		t.Fatalf("flight status %d", code)
	}
	if rep.Retained != 3 || len(rep.Spans) != 3 {
		t.Fatalf("flight = retained %d, %d spans; want 3/3", rep.Retained, len(rep.Spans))
	}
	if rep.Spans[0].Why != "error" || rep.Spans[0].Err != "synthetic" {
		t.Fatalf("span = %+v", rep.Spans[0])
	}
	if code := get(t, ts, "/v1/debug/flight?n=1", &rep); code != 200 || len(rep.Spans) != 1 {
		t.Fatalf("flight?n=1 = %d / %d spans", code, len(rep.Spans))
	}
	if code := get(t, ts, "/v1/debug/flight?n=-2", nil); code != 400 {
		t.Fatalf("bad n status %d, want 400", code)
	}
	if code := get(t, ts, "/v1/debug/flight?n=zzz", nil); code != 400 {
		t.Fatalf("non-numeric n status %d, want 400", code)
	}
}

// TestProbeRetainsAPISpan checks the HTTP → core span threading: a denied
// probe through the full API stack must land one error span whose stages
// were timed inside core.
func TestProbeRetainsAPISpan(t *testing.T) {
	ts, w, _, plane := newSLOServer(t)
	f := w.Fig1

	var src, dst EIPResponse
	post(t, ts, "/v1/eips", EIPRequest{Tenant: "acme", VM: string(w.Host(f.CloudA, f.RegionsA[0], "az1", 1))}, &src)
	post(t, ts, "/v1/eips", EIPRequest{Tenant: "acme", VM: string(w.Host(f.CloudB, f.RegionsB[0], "az1", 1))}, &dst)
	// No permit list: the probe is denied and the span retained as error.
	if code := get(t, ts, fmt.Sprintf("/v1/probe?tenant=acme&src=%s&dst=%s", src.EIP, dst.EIP), nil); code == 200 {
		t.Fatal("unpermitted probe succeeded")
	}
	var denied *slo.SpanRecord
	for _, sp := range plane.Flight(0) {
		if sp.Verb == "probe" && sp.Why == "error" {
			sp := sp
			denied = &sp
		}
	}
	if denied == nil {
		t.Fatal("denied probe left no error span in the flight recorder")
	}
	hasPermitStage := false
	for _, st := range denied.Stages {
		if st.Name == "permit" {
			hasPermitStage = true
		}
	}
	if !hasPermitStage {
		t.Fatalf("probe span stages = %+v, want a core-timed permit stage", denied.Stages)
	}
}

// TestMutationUnderReadLock is the lock-demotion proof for the satellite
// that moved single-shard mutation handlers from s.mu.Lock to RLock: a
// mutation must complete while another goroutine holds the server's read
// lock. Under the old write-lock code this deadlocks (timeout fires).
func TestMutationUnderReadLock(t *testing.T) {
	ts, w, srv, _ := newSLOServer(t)
	f := w.Fig1

	srv.mu.RLock()
	defer srv.mu.RUnlock()
	done := make(chan int, 1)
	body := fmt.Sprintf(`{"tenant":"acme","vm":%q}`, string(w.Host(f.CloudA, f.RegionsA[0], "az1", 1)))
	go func() {
		resp, err := http.Post(ts.URL+"/v1/eips", "application/json", strings.NewReader(body))
		if err != nil {
			done <- -1
			return
		}
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	select {
	case code := <-done:
		if code != 200 {
			t.Fatalf("request_eip under read lock: status %d", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("mutation blocked behind the API read lock — handler still takes the write lock")
	}
}
