// Persistence and reconciliation endpoints: GET /v1/reconcile reports
// the convergence loop's counters, POST /v1/reconcile/sweep forces one
// synchronous sweep, and POST /v1/snapshot compacts the durable intent
// store (snapshot + journal truncation). All three answer sensibly on a
// daemon running without -data-dir: the store and reconciler are simply
// absent.
package api

import (
	"fmt"
	"net/http"

	"declnet/internal/core"
	"declnet/internal/intent"
)

// ReconcileResponse wraps the reconciler's status; Enabled false means
// the daemon runs without a durable store (no -data-dir).
type ReconcileResponse struct {
	core.ReconcileStatus
}

func (s *Server) reconcileStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec := s.world.Reconciler()
	if rec == nil {
		writeJSON(w, http.StatusOK, ReconcileResponse{})
		return
	}
	writeJSON(w, http.StatusOK, ReconcileResponse{ReconcileStatus: rec.Status()})
}

func (s *Server) reconcileSweep(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec := s.world.Reconciler()
	if rec == nil {
		writeErr(w, http.StatusConflict, fmt.Errorf("api: reconciler not enabled (run declnetd with -data-dir)"))
		return
	}
	writeJSON(w, http.StatusOK, rec.RunSweep())
}

// SnapshotResponse reports the store's stats after the compaction.
type SnapshotResponse struct {
	intent.Stats
}

func (s *Server) snapshot(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	l := s.world.Intent()
	if l == nil {
		writeErr(w, http.StatusConflict, fmt.Errorf("api: intent store not enabled (run declnetd with -data-dir)"))
		return
	}
	if err := l.Compact(); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, SnapshotResponse{Stats: l.Stats()})
}
