package api

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"declnet"
	"declnet/internal/core"
	"declnet/internal/intent"
)

// newPersistentServer builds a world with a durable store and a
// reconciler, mirroring declnetd's -data-dir boot path.
func newPersistentServer(t *testing.T) (*httptest.Server, *declnet.World, *intent.Log) {
	t.Helper()
	w, err := declnet.NewFig1World(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	l, err := intent.Open(t.TempDir(), intent.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	w.EnableIntent(l)
	srv := NewServer(w)
	if _, err := w.EnableReconciler(core.ReconcilerConfig{Gate: srv.WorldGate()}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, w, l
}

func TestReconcileEndpointsDisabled(t *testing.T) {
	ts, _ := newTestServer(t) // no -data-dir: store and reconciler absent
	var status ReconcileResponse
	if code := get(t, ts, "/v1/reconcile", &status); code != 200 {
		t.Fatalf("GET /v1/reconcile status %d", code)
	}
	if status.Enabled {
		t.Error("reconciler reports enabled without a store")
	}
	if code := post(t, ts, "/v1/reconcile/sweep", struct{}{}, nil); code != http.StatusConflict {
		t.Errorf("sweep without reconciler status %d, want 409", code)
	}
	if code := post(t, ts, "/v1/snapshot", struct{}{}, nil); code != http.StatusConflict {
		t.Errorf("snapshot without store status %d, want 409", code)
	}
}

func TestReconcileEndpoints(t *testing.T) {
	ts, w, _ := newPersistentServer(t)
	f := w.Fig1

	var eip EIPResponse
	if code := post(t, ts, "/v1/eips", EIPRequest{Tenant: "acme",
		VM: string(w.Host(f.CloudA, f.RegionsA[0], "az1", 1))}, &eip); code != 200 {
		t.Fatalf("request_eip status %d", code)
	}
	var dst EIPResponse
	post(t, ts, "/v1/eips", EIPRequest{Tenant: "acme", VM: string(w.Host(f.CloudA, f.RegionsA[0], "az1", 2))}, &dst)
	if code := post(t, ts, "/v1/permit", PermitRequest{Tenant: "acme",
		Target: dst.EIP, Entries: []string{eip.EIP}}, nil); code != 200 {
		t.Fatalf("permit status %d", code)
	}

	var status ReconcileResponse
	if code := get(t, ts, "/v1/reconcile", &status); code != 200 {
		t.Fatalf("GET /v1/reconcile status %d", code)
	}
	if !status.Enabled {
		t.Fatal("reconciler not enabled on a persistent server")
	}

	// Drift the dataplane, then converge it through the API.
	target, err := ParsePermitEntry(dst.EIP)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Cloud.DriftWipePermit(target.Addr) {
		t.Fatal("DriftWipePermit failed")
	}
	var sweep core.SweepResult
	if code := post(t, ts, "/v1/reconcile/sweep", struct{}{}, &sweep); code != 200 {
		t.Fatalf("POST /v1/reconcile/sweep status %d", code)
	}
	if sweep.DriftPermits != 1 || sweep.Repaired != 1 {
		t.Fatalf("sweep = %+v, want 1 permit drift repaired", sweep)
	}
	get(t, ts, "/v1/reconcile", &status)
	if status.Sweeps == 0 || status.Repairs != 1 {
		t.Errorf("status after sweep = %+v", status.ReconcileStatus)
	}
}

func TestSnapshotEndpoint(t *testing.T) {
	ts, w, l := newPersistentServer(t)
	f := w.Fig1
	for i, az := range []string{"az1", "az1", "az2"} {
		if code := post(t, ts, "/v1/eips", EIPRequest{Tenant: "acme",
			VM: string(w.Host(f.CloudA, f.RegionsA[0], az, i%2+1))}, nil); code != 200 {
			t.Fatalf("request_eip %d failed", i)
		}
	}
	seqBefore := l.Seq()
	var snap SnapshotResponse
	if code := post(t, ts, "/v1/snapshot", struct{}{}, &snap); code != 200 {
		t.Fatalf("POST /v1/snapshot status %d", code)
	}
	if snap.Compactions != 1 {
		t.Errorf("Compactions = %d, want 1", snap.Compactions)
	}
	if snap.Seq != seqBefore {
		t.Errorf("snapshot Seq = %d, want %d", snap.Seq, seqBefore)
	}
	// The store still journals after compaction.
	if code := post(t, ts, "/v1/eips", EIPRequest{Tenant: "acme",
		VM: string(w.Host(f.CloudA, f.RegionsA[1], "az1", 1))}, nil); code != 200 {
		t.Fatal("request_eip after snapshot failed")
	}
	if l.Seq() != seqBefore+1 {
		t.Errorf("Seq after post-snapshot mutation = %d, want %d", l.Seq(), seqBefore+1)
	}
}

// TestAPIKillRestartEquivalence drives mutations through the HTTP
// layer, "crashes" (drops the server and world), recovers a fresh world
// from the store, and compares digests.
func TestAPIKillRestartEquivalence(t *testing.T) {
	dir := t.TempDir()
	w, err := declnet.NewFig1World(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	l, err := intent.Open(dir, intent.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w.EnableIntent(l)
	ts := httptest.NewServer(NewServer(w))
	f := w.Fig1

	var src, be EIPResponse
	post(t, ts, "/v1/eips", EIPRequest{Tenant: "acme", VM: string(w.Host(f.CloudA, f.RegionsA[0], "az1", 1))}, &src)
	post(t, ts, "/v1/eips", EIPRequest{Tenant: "acme", VM: string(w.Host(f.CloudB, f.RegionsB[0], "az1", 1))}, &be)
	var sip SIPResponse
	post(t, ts, "/v1/sips", SIPRequest{Tenant: "acme", Provider: f.CloudB}, &sip)
	post(t, ts, "/v1/bind", BindRequest{Tenant: "acme", EIP: be.EIP, SIP: sip.SIP}, nil)
	post(t, ts, "/v1/permit", PermitRequest{Tenant: "acme", Target: sip.SIP, Entries: []string{src.EIP}}, nil)
	post(t, ts, "/v1/qos", QoSRequest{Tenant: "acme", Provider: f.CloudB, Region: f.RegionsB[0], Bandwidth: 1e9}, nil)
	want := w.StateDigest()
	ts.Close() // crash: the Log is abandoned un-Closed

	l2, err := intent.Open(dir, intent.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	w2, err := declnet.NewFig1World(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.RestoreIntent(l2.State()); err != nil {
		t.Fatal(err)
	}
	if got := w2.StateDigest(); got != want {
		t.Fatalf("digest mismatch after API-driven restart\n got %s\nwant %s", got, want)
	}
}
