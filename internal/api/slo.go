// SLO-plane endpoints: declared objectives and shard latency accounting
// (GET/POST /v1/slo), the noisy-neighbor detector (GET /v1/health), and
// the flight recorder dump (GET /v1/debug/flight).
//
// These are read paths over internally-synchronized slo.Plane state, so
// none of them take s.mu at all — health checks and postmortem span
// dumps must work even while the engine-advancing handlers hold the
// write lock; that is exactly when they are needed.
package api

import (
	"fmt"
	"net/http"
	"strconv"

	"declnet/internal/slo"
)

// SLOSetRequest registers (or replaces) a tenant's declared objectives,
// in ParseObjective wire format, e.g. "connect_p99=5ms;permit_lag_p99=1ms".
type SLOSetRequest struct {
	Tenant    string `json:"tenant"`
	Objective string `json:"objective"`
}

func (s *Server) sloSet(w http.ResponseWriter, r *http.Request) {
	req, err := decode[SLOSetRequest](r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Tenant == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("api: missing tenant"))
		return
	}
	o, err := slo.ParseObjective(req.Objective)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.plane.SetObjective(req.Tenant, o)
	writeJSON(w, http.StatusOK, struct{}{})
}

// SLOResponse is GET /v1/slo: per-tenant objective evaluation and
// per-shard latency accounting.
type SLOResponse struct {
	WindowGen uint64             `json:"window_gen"`
	Tenants   []slo.TenantReport `json:"tenants"`
}

func (s *Server) sloReport(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, SLOResponse{
		WindowGen: s.plane.WindowGen(),
		Tenants:   s.plane.Report(r.URL.Query().Get("tenant")),
	})
}

func (s *Server) health(w http.ResponseWriter, r *http.Request) {
	rep := s.plane.Health()
	code := http.StatusOK
	if rep.Status != "ok" {
		// 503 lets dumb probes (curl -f, LB health checks) see degradation
		// without parsing the body.
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, rep)
}

// FlightResponse is GET /v1/debug/flight: retained spans, oldest first.
type FlightResponse struct {
	Retained uint64           `json:"retained_total"`
	Spans    []slo.SpanRecord `json:"spans"`
}

func (s *Server) flight(w http.ResponseWriter, r *http.Request) {
	n := 0
	if v := r.URL.Query().Get("n"); v != "" {
		i, err := strconv.Atoi(v)
		if err != nil || i < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("api: bad n %q", v))
			return
		}
		n = i
	}
	writeJSON(w, http.StatusOK, FlightResponse{
		Retained: s.plane.FlightRetained(),
		Spans:    s.plane.Flight(n),
	})
}
