package api

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"declnet"
	"declnet/internal/obs"
)

// This file serves the tenant-facing diagnosis endpoints of the
// observability plane: /v1/explain (decision replay), /v1/trace (recent
// decision events), and /v1/metrics (Prometheus text exposition).

// explain handles GET /v1/explain?tenant=&src=&dst=: replay the datapath
// decision for a hypothetical flow and return the ordered verdict chain.
// dst may be an address or a registered name. Unknown or foreign
// addresses return 404 — a tenant cannot probe someone else's topology.
func (s *Server) explain(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	tenant := q.Get("tenant")
	src, err := declnet.ParseIP(q.Get("src"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("api: bad src: %w", err))
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	dst, err := s.resolveDst(tenant, q.Get("dst"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ex, err := s.world.Tenant(tenant).Explain(src, dst)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, ex)
}

// TraceResponse carries a tenant's recent decision events, oldest first.
type TraceResponse struct {
	Tenant string      `json:"tenant"`
	Events []obs.Event `json:"events"`
}

// trace handles GET /v1/trace?tenant=&n=&kind=: return up to n recent
// trace events for the tenant (all buffered events when n is absent),
// optionally filtered to one event kind.
func (s *Server) trace(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	tenant := q.Get("tenant")
	if tenant == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("api: tenant is required"))
		return
	}
	n := 0
	if raw := q.Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("api: bad n %q", raw))
			return
		}
		n = v
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	evs := s.tracer.Recent(tenant, n)
	if kind := q.Get("kind"); kind != "" {
		kept := evs[:0]
		for _, ev := range evs {
			if string(ev.Kind) == kind {
				kept = append(kept, ev)
			}
		}
		evs = kept
	}
	if evs == nil {
		evs = []obs.Event{}
	}
	writeJSON(w, http.StatusOK, TraceResponse{Tenant: tenant, Events: evs})
}

// metrics handles GET /v1/metrics: Prometheus text exposition of the
// runtime registry. The world lock is held across the write because gauge
// functions sample live simulation state.
func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var sb strings.Builder
	if err := s.registry.WritePrometheus(&sb); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, sb.String())
}
