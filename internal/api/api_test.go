package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"declnet"
)

func newTestServer(t *testing.T) (*httptest.Server, *declnet.World) {
	t.Helper()
	w, err := declnet.NewFig1World(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(w))
	t.Cleanup(ts.Close)
	return ts, w
}

func post(t *testing.T, ts *httptest.Server, path string, body any, out any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", path, err)
		}
	}
	return resp.StatusCode
}

func get(t *testing.T, ts *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", path, err)
		}
	}
	return resp.StatusCode
}

func TestFullAPIFlow(t *testing.T) {
	ts, w := newTestServer(t)
	f := w.Fig1

	var client, be1, be2 EIPResponse
	if code := post(t, ts, "/v1/eips", EIPRequest{Tenant: "acme",
		VM: string(w.Host(f.CloudA, f.RegionsA[0], "az1", 1))}, &client); code != 200 {
		t.Fatalf("request_eip status %d", code)
	}
	post(t, ts, "/v1/eips", EIPRequest{Tenant: "acme", VM: string(w.Host(f.CloudB, f.RegionsB[0], "az1", 1))}, &be1)
	post(t, ts, "/v1/eips", EIPRequest{Tenant: "acme", VM: string(w.Host(f.CloudB, f.RegionsB[0], "az2", 1))}, &be2)

	var sip SIPResponse
	if code := post(t, ts, "/v1/sips", SIPRequest{Tenant: "acme", Provider: f.CloudB}, &sip); code != 200 {
		t.Fatalf("request_sip status %d", code)
	}
	for _, be := range []string{be1.EIP, be2.EIP} {
		if code := post(t, ts, "/v1/bind", BindRequest{Tenant: "acme", EIP: be, SIP: sip.SIP}, nil); code != 200 {
			t.Fatalf("bind status %d", code)
		}
	}
	// Transfer before permitting: default-off, 403.
	if code := post(t, ts, "/v1/transfer", TransferRequest{Tenant: "acme",
		Src: client.EIP, Dst: sip.SIP, Bytes: 1e6}, nil); code != http.StatusForbidden {
		t.Fatalf("unpermitted transfer status %d, want 403", code)
	}
	if code := post(t, ts, "/v1/permit", PermitRequest{Tenant: "acme",
		Target: sip.SIP, Entries: []string{client.EIP}}, nil); code != 200 {
		t.Fatalf("set_permit_list status %d", code)
	}
	var tr TransferResponse
	if code := post(t, ts, "/v1/transfer", TransferRequest{Tenant: "acme",
		Src: client.EIP, Dst: sip.SIP, Bytes: 1e6}, &tr); code != 200 {
		t.Fatalf("transfer status %d", code)
	}
	if tr.FCTMillis <= 0 {
		t.Fatalf("FCT = %v", tr.FCTMillis)
	}
	var pr ProbeResponse
	if code := get(t, ts, fmt.Sprintf("/v1/probe?tenant=acme&src=%s&dst=%s", client.EIP, sip.SIP), &pr); code != 200 {
		t.Fatalf("probe status %d", code)
	}
	if pr.RTTMillis <= 0 {
		t.Fatalf("probe RTT = %v", pr.RTTMillis)
	}
	var st StatusResponse
	if code := get(t, ts, "/v1/status", &st); code != 200 {
		t.Fatalf("status %d", code)
	}
	if st.Providers[f.CloudB].(map[string]any)["endpoints"].(float64) != 2 {
		t.Fatalf("status = %+v", st)
	}
}

func TestQoSPotatoGroups(t *testing.T) {
	ts, w := newTestServer(t)
	f := w.Fig1
	if code := post(t, ts, "/v1/qos", QoSRequest{Tenant: "acme", Provider: f.CloudA,
		Region: f.RegionsA[0], Bandwidth: 1e9}, nil); code != 200 {
		t.Fatalf("qos status %d", code)
	}
	if code := post(t, ts, "/v1/potato", PotatoRequest{Tenant: "acme", Provider: f.CloudA, Policy: "cold"}, nil); code != 200 {
		t.Fatalf("potato status %d", code)
	}
	if code := post(t, ts, "/v1/potato", PotatoRequest{Tenant: "acme", Provider: f.CloudA, Policy: "lukewarm"}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad potato status %d", code)
	}
	var a, b EIPResponse
	post(t, ts, "/v1/eips", EIPRequest{Tenant: "acme", VM: string(w.Host(f.CloudA, f.RegionsA[0], "az1", 1))}, &a)
	post(t, ts, "/v1/eips", EIPRequest{Tenant: "acme", VM: string(w.Host(f.CloudA, f.RegionsA[0], "az1", 2))}, &b)
	if code := post(t, ts, "/v1/groups", GroupRequest{Tenant: "acme",
		Name: "web", Members: []string{a.EIP, b.EIP}}, nil); code != 200 {
		t.Fatalf("groups status %d", code)
	}
}

func TestValidationErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct {
		path string
		body any
		want int
	}{
		{"/v1/eips", EIPRequest{Tenant: "acme", VM: "bogus"}, http.StatusConflict},
		{"/v1/eips/release", ReleaseRequest{Tenant: "acme", EIP: "not-an-ip"}, http.StatusBadRequest},
		{"/v1/bind", BindRequest{Tenant: "acme", EIP: "x", SIP: "y"}, http.StatusBadRequest},
		{"/v1/permit", PermitRequest{Tenant: "acme", Target: "1.2.3.4", Entries: []string{"zzz"}}, http.StatusBadRequest},
		{"/v1/transfer", TransferRequest{Tenant: "acme", Src: "1.2.3.4", Dst: "5.6.7.8", Bytes: -1}, http.StatusBadRequest},
		{"/v1/qos", QoSRequest{Tenant: "acme", Provider: "nope", Region: "r"}, http.StatusConflict},
	}
	for _, c := range cases {
		if code := post(t, ts, c.path, c.body, nil); code != c.want {
			t.Errorf("%s: status %d, want %d", c.path, code, c.want)
		}
	}
	if code := get(t, ts, "/v1/probe?tenant=acme&src=bad&dst=bad", nil); code != http.StatusBadRequest {
		t.Errorf("probe bad params status %d", code)
	}
}

func TestUnknownFieldRejected(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/eips", "application/json",
		bytes.NewReader([]byte(`{"tenant":"acme","vm":"x","bogus":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field status %d", resp.StatusCode)
	}
}

func TestNamesEndToEnd(t *testing.T) {
	ts, w := newTestServer(t)
	f := w.Fig1
	var client, server EIPResponse
	post(t, ts, "/v1/eips", EIPRequest{Tenant: "acme", VM: string(w.Host(f.CloudA, f.RegionsA[0], "az1", 1))}, &client)
	post(t, ts, "/v1/eips", EIPRequest{Tenant: "acme", VM: string(w.Host(f.CloudB, f.RegionsB[0], "az1", 1))}, &server)
	post(t, ts, "/v1/permit", PermitRequest{Tenant: "acme", Target: server.EIP, Entries: []string{client.EIP}}, nil)
	if code := post(t, ts, "/v1/names", NameRequest{Tenant: "acme", Name: "db", Target: server.EIP}, nil); code != 200 {
		t.Fatalf("register name status %d", code)
	}
	// Transfer by name instead of address.
	var tr TransferResponse
	if code := post(t, ts, "/v1/transfer", TransferRequest{Tenant: "acme",
		Src: client.EIP, Dst: "db", Bytes: 1e6}, &tr); code != 200 {
		t.Fatalf("transfer-by-name status %d", code)
	}
	if tr.FCTMillis <= 0 {
		t.Fatalf("FCT = %v", tr.FCTMillis)
	}
	// Probe by name.
	var pr ProbeResponse
	if code := get(t, ts, fmt.Sprintf("/v1/probe?tenant=acme&src=%s&dst=db", client.EIP), &pr); code != 200 {
		t.Fatalf("probe-by-name status %d", code)
	}
	// Unknown name.
	if code := post(t, ts, "/v1/transfer", TransferRequest{Tenant: "acme",
		Src: client.EIP, Dst: "ghost", Bytes: 1}, nil); code != http.StatusBadRequest {
		t.Fatalf("unknown name status %d", code)
	}
}

func TestUnbindEndpoint(t *testing.T) {
	ts, w := newTestServer(t)
	f := w.Fig1
	var be EIPResponse
	var sip SIPResponse
	post(t, ts, "/v1/eips", EIPRequest{Tenant: "acme", VM: string(w.Host(f.CloudB, f.RegionsB[0], "az1", 1))}, &be)
	post(t, ts, "/v1/sips", SIPRequest{Tenant: "acme", Provider: f.CloudB}, &sip)
	post(t, ts, "/v1/bind", BindRequest{Tenant: "acme", EIP: be.EIP, SIP: sip.SIP}, nil)
	if code := post(t, ts, "/v1/unbind", BindRequest{Tenant: "acme", EIP: be.EIP, SIP: sip.SIP}, nil); code != 200 {
		t.Fatalf("unbind status %d", code)
	}
	if code := post(t, ts, "/v1/unbind", BindRequest{Tenant: "acme", EIP: be.EIP, SIP: sip.SIP}, nil); code != http.StatusConflict {
		t.Fatalf("double unbind status %d", code)
	}
}

func TestReleaseFlow(t *testing.T) {
	ts, w := newTestServer(t)
	f := w.Fig1
	var e EIPResponse
	post(t, ts, "/v1/eips", EIPRequest{Tenant: "acme", VM: string(w.Host(f.CloudA, f.RegionsA[0], "az1", 1))}, &e)
	if code := post(t, ts, "/v1/eips/release", ReleaseRequest{Tenant: "acme", EIP: e.EIP}, nil); code != 200 {
		t.Fatalf("release status %d", code)
	}
	if code := post(t, ts, "/v1/eips/release", ReleaseRequest{Tenant: "acme", EIP: e.EIP}, nil); code != http.StatusConflict {
		t.Fatalf("double release status %d", code)
	}
}
