package api

import (
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"declnet"
)

// obsWorld grants a permitted client->SIP pair for diagnosis tests.
func obsWorld(t *testing.T) (ts *httptest.Server, client, sip string) {
	t.Helper()
	ts, w := newTestServer(t)
	f := w.Fig1
	var cl, be EIPResponse
	post(t, ts, "/v1/eips", EIPRequest{Tenant: "acme", VM: string(w.Host(f.CloudA, f.RegionsA[0], "az1", 1))}, &cl)
	post(t, ts, "/v1/eips", EIPRequest{Tenant: "acme", VM: string(w.Host(f.CloudB, f.RegionsB[0], "az1", 1))}, &be)
	var sr SIPResponse
	post(t, ts, "/v1/sips", SIPRequest{Tenant: "acme", Provider: f.CloudB}, &sr)
	post(t, ts, "/v1/bind", BindRequest{Tenant: "acme", EIP: be.EIP, SIP: sr.SIP}, nil)
	post(t, ts, "/v1/permit", PermitRequest{Tenant: "acme", Target: sr.SIP, Entries: []string{cl.EIP}}, nil)
	return ts, cl.EIP, sr.SIP
}

func TestStatusEndpoint(t *testing.T) {
	ts, _, _ := obsWorld(t)
	var st StatusResponse
	if code := get(t, ts, "/v1/status", &st); code != 200 {
		t.Fatalf("status %d", code)
	}
	if st.UptimeSeconds < 0 {
		t.Fatalf("uptime = %v", st.UptimeSeconds)
	}
	rc, ok := st.Tenants["acme"]
	if !ok {
		t.Fatalf("no per-tenant counts: %+v", st.Tenants)
	}
	if rc.EIPs != 2 || rc.SIPs != 1 {
		t.Fatalf("acme counts = %+v, want 2 EIPs 1 SIP", rc)
	}
	if st.MetricSamples == 0 {
		t.Fatal("registry snapshot empty")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts, client, sip := obsWorld(t)
	post(t, ts, "/v1/transfer", TransferRequest{Tenant: "acme", Src: client, Dst: sip, Bytes: 1e6}, nil)
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE declnet_connects_total counter",
		`declnet_connects_total{outcome="ok"} 1`,
		"# TYPE declnet_http_requests_total counter",
		"# TYPE declnet_http_request_seconds histogram",
		"declnet_endpoints{provider=",
		"declnet_virtual_time_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestExplainEndpoint(t *testing.T) {
	ts, client, sip := obsWorld(t)
	// Happy path: permitted, healthy backends.
	var ex declnet.Explanation
	if code := get(t, ts, "/v1/explain?tenant=acme&src="+client+"&dst="+sip, &ex); code != 200 {
		t.Fatalf("explain status %d", code)
	}
	if !ex.Reachable || ex.RootCause != "" {
		t.Fatalf("healthy path: reachable=%v cause=%q", ex.Reachable, ex.RootCause)
	}
	stages := make([]string, 0, len(ex.Steps))
	for _, s := range ex.Steps {
		stages = append(stages, s.Stage)
	}
	if got := strings.Join(stages, ","); got != "source,admission,balancer,destination,path,qos" {
		t.Fatalf("stage order = %s", got)
	}
	// Unknown tenant: the source EIP is not theirs -> 404.
	if code := get(t, ts, "/v1/explain?tenant=mallory&src="+client+"&dst="+sip, nil); code != http.StatusNotFound {
		t.Fatalf("foreign-tenant explain status %d, want 404", code)
	}
	// Unparseable src -> 400.
	if code := get(t, ts, "/v1/explain?tenant=acme&src=zzz&dst="+sip, nil); code != http.StatusBadRequest {
		t.Fatalf("bad-src explain status %d, want 400", code)
	}
}

func TestExplainNamesInjectedFault(t *testing.T) {
	ts, client, sip := obsWorld(t)
	// Kill the backend region and let the health monitor react.
	post(t, ts, "/v1/fail", FaultRequest{Kind: "region", Target: "cloudB/b-east", AdvanceMillis: 3000}, nil)
	var ex declnet.Explanation
	if code := get(t, ts, "/v1/explain?tenant=acme&src="+client+"&dst="+sip, &ex); code != 200 {
		t.Fatalf("explain status %d", code)
	}
	if ex.Reachable {
		t.Fatal("region down but explained reachable")
	}
	if !strings.Contains(ex.RootCause, "region-down:cloudB/b-east") {
		t.Fatalf("RootCause = %q, want region-down:cloudB/b-east", ex.RootCause)
	}
}

func TestTraceEndpoint(t *testing.T) {
	ts, client, sip := obsWorld(t)
	post(t, ts, "/v1/transfer", TransferRequest{Tenant: "acme", Src: client, Dst: sip, Bytes: 1e6}, nil)
	var tr TraceResponse
	if code := get(t, ts, "/v1/trace?tenant=acme", &tr); code != 200 {
		t.Fatalf("trace status %d", code)
	}
	if len(tr.Events) == 0 {
		t.Fatal("no trace events after a transfer")
	}
	kinds := map[string]bool{}
	for _, ev := range tr.Events {
		kinds[string(ev.Kind)] = true
	}
	for _, want := range []string{"permit-update", "permit-allow", "sip-pick", "path-select"} {
		if !kinds[want] {
			t.Errorf("trace missing %s events; got %v", want, kinds)
		}
	}
	// n limits, kind filters.
	if code := get(t, ts, "/v1/trace?tenant=acme&n=1", &tr); code != 200 || len(tr.Events) != 1 {
		t.Fatalf("trace n=1 returned %d events (status %d)", len(tr.Events), code)
	}
	if code := get(t, ts, "/v1/trace?tenant=acme&kind=sip-pick", &tr); code != 200 {
		t.Fatalf("trace kind filter status %d", code)
	}
	for _, ev := range tr.Events {
		if ev.Kind != "sip-pick" {
			t.Fatalf("kind filter leaked %s", ev.Kind)
		}
	}
	// Missing tenant -> 400; unknown tenant -> empty, not an error.
	if code := get(t, ts, "/v1/trace", nil); code != http.StatusBadRequest {
		t.Fatalf("traceless status %d, want 400", code)
	}
	if code := get(t, ts, "/v1/trace?tenant=nobody", &tr); code != 200 || len(tr.Events) != 0 {
		t.Fatalf("unknown tenant: status %d events %d", code, len(tr.Events))
	}
}

func TestRequestLogging(t *testing.T) {
	w, err := declnet.NewFig1World(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	ts := httptest.NewServer(NewServerWith(w, Options{Logger: logger}))
	defer ts.Close()
	f := w.Fig1
	var cl EIPResponse
	post(t, ts, "/v1/eips", EIPRequest{Tenant: "acme", VM: string(w.Host(f.CloudA, f.RegionsA[0], "az1", 1))}, &cl)
	get(t, ts, "/v1/status", nil)
	out := buf.String()
	for _, want := range []string{"method=POST", "path=/v1/eips", "tenant=acme", "status=200", "latency="} {
		if !strings.Contains(out, want) {
			t.Errorf("log output missing %q:\n%s", want, out)
		}
	}
}
