package api

import (
	"bytes"
	"fmt"
	"net/http"
	"sync"
	"testing"
)

// TestConcurrentReadPlane hammers every read-only endpoint from many
// goroutines while fault/heal mutations interleave on the write lock.
// Run under -race (CI does) this is the proof that the RWMutex split is
// sound: probes advance balancer WRR state and draw from the engine RNG,
// explains trace and consult the path cache, metrics snapshot gauges —
// all concurrently.
func TestConcurrentReadPlane(t *testing.T) {
	ts, w := newTestServer(t)
	f := w.Fig1

	var client, be1, be2 EIPResponse
	if code := post(t, ts, "/v1/eips", EIPRequest{Tenant: "acme",
		VM: string(w.Host(f.CloudA, f.RegionsA[0], "az1", 1))}, &client); code != 200 {
		t.Fatalf("request_eip status %d", code)
	}
	post(t, ts, "/v1/eips", EIPRequest{Tenant: "acme", VM: string(w.Host(f.CloudB, f.RegionsB[0], "az1", 1))}, &be1)
	post(t, ts, "/v1/eips", EIPRequest{Tenant: "acme", VM: string(w.Host(f.CloudB, f.RegionsB[0], "az2", 1))}, &be2)
	var sip SIPResponse
	if code := post(t, ts, "/v1/sips", SIPRequest{Tenant: "acme", Provider: f.CloudB}, &sip); code != 200 {
		t.Fatalf("request_sip status %d", code)
	}
	for _, be := range []string{be1.EIP, be2.EIP} {
		if code := post(t, ts, "/v1/bind", BindRequest{Tenant: "acme", EIP: be, SIP: sip.SIP}, nil); code != 200 {
			t.Fatalf("bind status %d", code)
		}
	}
	if code := post(t, ts, "/v1/permit", PermitRequest{Tenant: "acme",
		Target: sip.SIP, Entries: []string{client.EIP + "/32"}}, nil); code != 200 {
		t.Fatal("permit failed")
	}

	reads := []string{
		fmt.Sprintf("/v1/probe?tenant=acme&src=%s&dst=%s", client.EIP, sip.SIP),
		fmt.Sprintf("/v1/explain?tenant=acme&src=%s&dst=%s", client.EIP, sip.SIP),
		"/v1/trace?tenant=acme",
		"/v1/metrics",
		"/v1/status",
	}
	const readers, rounds = 8, 20
	var wg sync.WaitGroup
	errs := make(chan error, readers*rounds+rounds)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				url := reads[(g+i)%len(reads)]
				resp, err := http.Get(ts.URL + url)
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
				}
			}
		}(g)
	}
	// One writer interleaves topology mutations: a far-away host flaps so
	// the path-cache epoch churns while readers consult it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		node := string(w.Host(f.CloudA, f.RegionsA[1], "az1", 1))
		body := []byte(`{"kind":"node","target":"` + node + `"}`)
		for i := 0; i < rounds; i++ {
			for _, verb := range []string{"/v1/fail", "/v1/heal"} {
				resp, err := http.Post(ts.URL+verb, "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("POST %s: status %d", verb, resp.StatusCode)
				}
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if hits := w.Cloud.Router().Hits(); hits == 0 {
		t.Error("path cache served no hits under concurrent probes")
	}
}
