package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"declnet/internal/addr"
	"declnet/internal/permit"
)

// TestConcurrentReadPlane hammers every read-only endpoint from many
// goroutines while fault/heal mutations interleave on the write lock.
// Run under -race (CI does) this is the proof that the RWMutex split is
// sound: probes advance balancer WRR state and draw from the engine RNG,
// explains trace and consult the path cache, metrics snapshot gauges —
// all concurrently.
func TestConcurrentReadPlane(t *testing.T) {
	ts, w := newTestServer(t)
	f := w.Fig1

	var client, be1, be2 EIPResponse
	if code := post(t, ts, "/v1/eips", EIPRequest{Tenant: "acme",
		VM: string(w.Host(f.CloudA, f.RegionsA[0], "az1", 1))}, &client); code != 200 {
		t.Fatalf("request_eip status %d", code)
	}
	post(t, ts, "/v1/eips", EIPRequest{Tenant: "acme", VM: string(w.Host(f.CloudB, f.RegionsB[0], "az1", 1))}, &be1)
	post(t, ts, "/v1/eips", EIPRequest{Tenant: "acme", VM: string(w.Host(f.CloudB, f.RegionsB[0], "az2", 1))}, &be2)
	var sip SIPResponse
	if code := post(t, ts, "/v1/sips", SIPRequest{Tenant: "acme", Provider: f.CloudB}, &sip); code != 200 {
		t.Fatalf("request_sip status %d", code)
	}
	for _, be := range []string{be1.EIP, be2.EIP} {
		if code := post(t, ts, "/v1/bind", BindRequest{Tenant: "acme", EIP: be, SIP: sip.SIP}, nil); code != 200 {
			t.Fatalf("bind status %d", code)
		}
	}
	if code := post(t, ts, "/v1/permit", PermitRequest{Tenant: "acme",
		Target: sip.SIP, Entries: []string{client.EIP + "/32"}}, nil); code != 200 {
		t.Fatal("permit failed")
	}

	reads := []string{
		fmt.Sprintf("/v1/probe?tenant=acme&src=%s&dst=%s", client.EIP, sip.SIP),
		fmt.Sprintf("/v1/explain?tenant=acme&src=%s&dst=%s", client.EIP, sip.SIP),
		"/v1/trace?tenant=acme",
		"/v1/metrics",
		"/v1/status",
	}
	const readers, rounds = 8, 20
	var wg sync.WaitGroup
	errs := make(chan error, readers*rounds+rounds)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				url := reads[(g+i)%len(reads)]
				resp, err := http.Get(ts.URL + url)
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
				}
			}
		}(g)
	}
	// One writer interleaves topology mutations: a far-away host flaps so
	// the path-cache epoch churns while readers consult it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		node := string(w.Host(f.CloudA, f.RegionsA[1], "az1", 1))
		body := []byte(`{"kind":"node","target":"` + node + `"}`)
		for i := 0; i < rounds; i++ {
			for _, verb := range []string{"/v1/fail", "/v1/heal"} {
				resp, err := http.Post(ts.URL+verb, "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("POST %s: status %d", verb, resp.StatusCode)
				}
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if hits := w.Cloud.Router().Hits(); hits == 0 {
		t.Error("path cache served no hits under concurrent probes")
	}
}

// TestConcurrentCrossShardWritePlane is the cross-shard extension of the
// read-plane test above: writers mutate disjoint (tenant, region) shards
// directly through the core API — no API-layer write lock serializing
// them — while cross-shard probes and HTTP readers run against both
// shards the whole time. It asserts the two properties the sharded
// control plane owes us: no deadlock (the deterministic two-shard lock
// order means the test completes) and no lost updates (every permit
// entry each writer added is enforceable afterwards).
func TestConcurrentCrossShardWritePlane(t *testing.T) {
	ts, w := newTestServer(t)
	f := w.Fig1
	c := w.Cloud
	pa, _ := c.Provider(f.CloudA)
	pb, _ := c.Provider(f.CloudB)

	// Tenant "mesh" spans both clouds: src in cloudA/r0, dst in cloudB/r1 —
	// two shards, so every probe takes the cross-shard read path.
	src, err := pa.RequestEIP("mesh", w.Host(f.CloudA, f.RegionsA[0], "az1", 2))
	if err != nil {
		t.Fatal(err)
	}
	dst, err := pb.RequestEIP("mesh", w.Host(f.CloudB, f.RegionsB[1], "az1", 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := pb.SetPermitList("mesh", dst, []permit.Entry{addr.NewPrefix(src, 32)}); err != nil {
		t.Fatal(err)
	}

	// Storm writers get their own tenants so each mutates a shard nobody
	// else touches: (storm-a, cloudA/r1), (storm-b, cloudB/r0), and
	// (storm-h, cloudA/r0) for the HTTP-level writer.
	ta, err := pa.RequestEIP("storm-a", w.Host(f.CloudA, f.RegionsA[1], "az2", 1))
	if err != nil {
		t.Fatal(err)
	}
	tb, err := pb.RequestEIP("storm-b", w.Host(f.CloudB, f.RegionsB[0], "az2", 1))
	if err != nil {
		t.Fatal(err)
	}
	th, err := pa.RequestEIP("storm-h", w.Host(f.CloudA, f.RegionsA[0], "az2", 2))
	if err != nil {
		t.Fatal(err)
	}

	const rounds = 150
	var wg sync.WaitGroup
	errs := make(chan error, 8*rounds)
	// Writer A: permit churn plus grant/release cycles in its own shard.
	wg.Add(1)
	go func() {
		defer wg.Done()
		vm := w.Host(f.CloudA, f.RegionsA[1], "az2", 2)
		for i := 0; i < rounds; i++ {
			if err := pa.Permit("storm-a", ta, addr.NewPrefix(addr.IP(0x0a010000+uint32(i)), 32)); err != nil {
				errs <- fmt.Errorf("storm-a permit %d: %v", i, err)
				return
			}
			eip, err := pa.RequestEIP("storm-a", vm)
			if err != nil {
				errs <- fmt.Errorf("storm-a grant %d: %v", i, err)
				return
			}
			if err := pa.ReleaseEIP("storm-a", eip); err != nil {
				errs <- fmt.Errorf("storm-a release %d: %v", i, err)
				return
			}
		}
	}()
	// Writer B: the same storm in a different tenant's shard on the other
	// provider.
	wg.Add(1)
	go func() {
		defer wg.Done()
		vm := w.Host(f.CloudB, f.RegionsB[0], "az2", 2)
		for i := 0; i < rounds; i++ {
			if err := pb.Permit("storm-b", tb, addr.NewPrefix(addr.IP(0x0a020000+uint32(i)), 32)); err != nil {
				errs <- fmt.Errorf("storm-b permit %d: %v", i, err)
				return
			}
			eip, err := pb.RequestEIP("storm-b", vm)
			if err != nil {
				errs <- fmt.Errorf("storm-b grant %d: %v", i, err)
				return
			}
			if err := pb.ReleaseEIP("storm-b", eip); err != nil {
				errs <- fmt.Errorf("storm-b release %d: %v", i, err)
				return
			}
		}
	}()
	// Cross-shard probes in both directions while the writers storm.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if !c.Admitted(src, dst) {
					errs <- fmt.Errorf("cross-shard verdict lost at %d", i)
					return
				}
				if _, _, err := c.Probe("mesh", src, dst); err != nil {
					errs <- fmt.Errorf("cross-shard probe %d: %v", i, err)
					return
				}
			}
		}()
	}
	// HTTP-level mutation storm: since the single-shard handlers demoted
	// to the API read lock, these POSTs run concurrently with each other,
	// with the core writers above, and with every reader below — the old
	// write-lock code serialized all of them. /v1/permit replaces the
	// list wholesale, so round i posts entries [0..i] and the final list
	// carries everything.
	wg.Add(1)
	go func() {
		defer wg.Done()
		entries := make([]string, 0, rounds)
		for i := 0; i < rounds; i++ {
			entries = append(entries, addr.IP(0x0a030000+uint32(i)).String()+"/32")
			body, err := json.Marshal(PermitRequest{Tenant: "storm-h", Target: th.String(),
				Entries: append([]string(nil), entries...)})
			if err != nil {
				errs <- err
				return
			}
			resp, err := http.Post(ts.URL+"/v1/permit", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("POST /v1/permit round %d: status %d", i, resp.StatusCode)
				return
			}
		}
	}()
	// HTTP readers ride along so the API read plane sees the same storm.
	wg.Add(1)
	go func() {
		defer wg.Done()
		urls := []string{
			fmt.Sprintf("/v1/explain?tenant=mesh&src=%s&dst=%s", src, dst),
			"/v1/status",
			"/v1/metrics",
		}
		for i := 0; i < rounds; i++ {
			resp, err := http.Get(ts.URL + urls[i%len(urls)])
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("GET %s: status %d", urls[i%len(urls)], resp.StatusCode)
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// No lost updates: every permit entry either writer added is
	// enforceable now that the storm is over.
	for i := 0; i < rounds; i++ {
		if !c.Admitted(addr.IP(0x0a010000+uint32(i)), ta) {
			t.Fatalf("storm-a entry %d lost", i)
		}
		if !c.Admitted(addr.IP(0x0a020000+uint32(i)), tb) {
			t.Fatalf("storm-b entry %d lost", i)
		}
		if !c.Admitted(addr.IP(0x0a030000+uint32(i)), th) {
			t.Fatalf("storm-h (HTTP) entry %d lost", i)
		}
	}
	if got := c.Shards().Len(); got < 3 {
		t.Errorf("expected >= 3 materialized shards, got %d", got)
	}
}
