// POST /v1/batch: the batch write endpoint. One request carries many
// Table-2 mutations; the server applies them under a single write-lock
// acquisition and a single coalesced epoch advance (core.ApplyBatch), so
// onboarding N endpoints costs O(1) lock and cache-invalidation overhead
// instead of O(N) round trips each paying its own flush.
//
// Status codes follow the batch semantics: 400 means the request or an
// op failed validation and NOTHING was applied; 409 means a runtime
// failure stopped the batch partway — the response carries the results
// of the ops that were applied (and stay applied) plus the failing
// index; 200 means every op applied.
package api

import (
	"errors"
	"fmt"
	"net/http"

	"declnet"
	"declnet/internal/core"
	"declnet/internal/qos"
)

// BatchOpRequest is one wire-format batch operation. Op names the verb
// (request_eip, release_eip, request_sip, release_sip, bind, unbind,
// set_permit, permit, revoke, set_qos, set_potato, create_group,
// register_name); the remaining fields are its operands, matching the
// per-endpoint request shapes. Address fields additionally accept "$i"
// back-references to the address granted by op i of the same batch.
type BatchOpRequest struct {
	Op        string   `json:"op"`
	VM        string   `json:"vm,omitempty"`
	Provider  string   `json:"provider,omitempty"`
	EIP       string   `json:"eip,omitempty"`
	SIP       string   `json:"sip,omitempty"`
	Target    string   `json:"target,omitempty"`
	Weight    int      `json:"weight,omitempty"`
	Entries   []string `json:"entries,omitempty"`
	Groups    []string `json:"groups,omitempty"`
	Region    string   `json:"region,omitempty"`
	Bandwidth float64  `json:"bandwidth_bps,omitempty"`
	Policy    string   `json:"policy,omitempty"`
	Name      string   `json:"name,omitempty"`
	Members   []string `json:"members,omitempty"`
}

// BatchRequest is the /v1/batch body.
type BatchRequest struct {
	Tenant string           `json:"tenant"`
	Ops    []BatchOpRequest `json:"ops"`
}

// BatchOpResult reports one applied op; Addr is set for address grants.
type BatchOpResult struct {
	Op   string `json:"op"`
	Addr string `json:"addr,omitempty"`
}

// BatchResponse reports the applied prefix of the batch. On success
// Applied == len(ops) and Error is empty; on a 409, Error and
// FailedIndex describe the op that stopped the batch.
type BatchResponse struct {
	Applied     int             `json:"applied"`
	Results     []BatchOpResult `json:"results"`
	Error       string          `json:"error,omitempty"`
	FailedIndex *int            `json:"failed_index,omitempty"`
}

func (s *Server) batch(w http.ResponseWriter, r *http.Request) {
	req, err := decode[BatchRequest](r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Ops) == 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("api: empty batch"))
		return
	}
	ops, err := parseBatchOps(req.Ops)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	results, err := s.world.Cloud.ApplyBatch(req.Tenant, ops)
	s.mu.Unlock()
	if err != nil {
		var be *core.BatchError
		if results == nil {
			// Static validation failed: nothing was applied.
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		resp := BatchResponse{Applied: len(results), Results: wireResults(results), Error: err.Error()}
		if errors.As(err, &be) {
			idx := be.Index
			resp.FailedIndex = &idx
		}
		writeJSON(w, http.StatusConflict, resp)
		return
	}
	writeJSON(w, http.StatusOK, BatchResponse{Applied: len(results), Results: wireResults(results)})
}

// parseBatchOps converts wire ops to core ops, parsing permit entries
// and potato policies; parse failures reject the whole batch (400).
func parseBatchOps(ops []BatchOpRequest) ([]core.BatchOp, error) {
	out := make([]core.BatchOp, 0, len(ops))
	for i, o := range ops {
		op := core.BatchOp{
			Op:        o.Op,
			VM:        declnet.NodeID(o.VM),
			Provider:  o.Provider,
			EIP:       o.EIP,
			SIP:       o.SIP,
			Target:    o.Target,
			Weight:    o.Weight,
			Groups:    o.Groups,
			Region:    o.Region,
			Bandwidth: o.Bandwidth,
			Name:      o.Name,
			Members:   o.Members,
		}
		for _, e := range o.Entries {
			p, err := ParsePermitEntry(e)
			if err != nil {
				return nil, fmt.Errorf("api: batch op %d (%s): %w", i, o.Op, err)
			}
			op.Entries = append(op.Entries, p)
		}
		if o.Op == "set_potato" {
			switch o.Policy {
			case "hot":
				op.Policy = qos.HotPotato
			case "cold":
				op.Policy = qos.ColdPotato
			case "dedicated":
				op.Policy = qos.Dedicated
			default:
				return nil, fmt.Errorf("api: batch op %d: unknown policy %q", i, o.Policy)
			}
		}
		out = append(out, op)
	}
	return out, nil
}

func wireResults(results []core.BatchResult) []BatchOpResult {
	out := make([]BatchOpResult, len(results))
	for i, r := range results {
		out[i] = BatchOpResult{Op: r.Op}
		if r.Addr != 0 {
			out[i].Addr = r.Addr.String()
		}
	}
	return out
}
