package shim

import (
	"testing"

	"declnet/internal/addr"
)

func ipa(s string) addr.IP { return addr.MustParseIP(s) }

func TestShimDefaultOff(t *testing.T) {
	s := New()
	eip, err := s.RequestEIP("acme")
	if err != nil {
		t.Fatal(err)
	}
	if v := s.Evaluate(ipa("203.0.113.1"), eip); v.Delivered {
		t.Fatalf("shim endpoint not default-off: %v", v.Detail)
	}
}

func TestShimPermitList(t *testing.T) {
	s := New()
	dst, _ := s.RequestEIP("acme")
	src, _ := s.RequestEIP("acme")
	if err := s.SetPermitList("acme", dst, []addr.Prefix{addr.NewPrefix(src, 32)}); err != nil {
		t.Fatal(err)
	}
	if v := s.Evaluate(src, dst); !v.Delivered {
		t.Fatalf("permitted source denied: %s", v.Detail)
	}
	if v := s.Evaluate(ipa("203.0.113.1"), dst); v.Delivered {
		t.Fatal("unpermitted source admitted")
	}
	// Replace the list: old source falls out.
	if err := s.SetPermitList("acme", dst, []addr.Prefix{addr.MustParsePrefix("10.0.0.0/8")}); err != nil {
		t.Fatal(err)
	}
	if v := s.Evaluate(src, dst); v.Delivered {
		t.Fatal("replaced permit list still admits old source")
	}
}

func TestShimSIPBalancing(t *testing.T) {
	s := New()
	be1, _ := s.RequestEIP("acme")
	be2, _ := s.RequestEIP("acme")
	client, _ := s.RequestEIP("acme")
	sip, err := s.RequestSIP("acme")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Bind("acme", be1, sip); err != nil {
		t.Fatal(err)
	}
	if err := s.Bind("acme", be2, sip); err != nil {
		t.Fatal(err)
	}
	// Default-off at the service too.
	if v := s.Evaluate(client, sip); v.Delivered {
		t.Fatal("SIP admitted without permit list")
	}
	if err := s.SetPermitList("acme", sip, []addr.Prefix{addr.NewPrefix(client, 32)}); err != nil {
		t.Fatal(err)
	}
	hits := map[string]int{}
	for i := 0; i < 10; i++ {
		v := s.Evaluate(client, sip)
		if !v.Delivered {
			t.Fatalf("permitted client denied: %s", v.Detail)
		}
		hits[v.Backend]++
	}
	if len(hits) != 2 {
		t.Fatalf("LB did not spread across backends: %v", hits)
	}
}

func TestShimTenancy(t *testing.T) {
	s := New()
	a, _ := s.RequestEIP("acme")
	if err := s.SetPermitList("rival", a, nil); err == nil {
		t.Fatal("cross-tenant permit mutation accepted")
	}
	sip, _ := s.RequestSIP("acme")
	if err := s.Bind("rival", a, sip); err == nil {
		t.Fatal("cross-tenant bind accepted")
	}
	b, _ := s.RequestEIP("rival")
	if err := s.Bind("rival", b, sip); err == nil {
		t.Fatal("bind to foreign SIP accepted")
	}
}

func TestShimTenantIsolationUnderneath(t *testing.T) {
	// Two tenants' hidden VPCs must not collide even at scale.
	s := New()
	for _, tenant := range []string{"t1", "t2", "t3"} {
		for i := 0; i < 5; i++ {
			if _, err := s.RequestEIP(tenant); err != nil {
				t.Fatalf("%s endpoint %d: %v", tenant, i, err)
			}
		}
	}
	if err := s.planner.Validate(); err != nil {
		t.Fatalf("hidden VPC CIDRs overlap: %v", err)
	}
}

func TestShimHidesBoxes(t *testing.T) {
	// The §5 point, quantified: five verbs from the tenant, a pile of
	// boxes underneath that the shim owns.
	s := New()
	client, _ := s.RequestEIP("acme")
	be, _ := s.RequestEIP("acme")
	sip, _ := s.RequestSIP("acme")
	s.Bind("acme", be, sip)
	s.SetPermitList("acme", sip, []addr.Prefix{addr.NewPrefix(client, 32)})
	if s.HiddenBoxes() < 5 {
		t.Fatalf("HiddenBoxes = %d, expected a pile (VPC, subnet, IGW, SGs, EIPs, LB...)", s.HiddenBoxes())
	}
}

func TestShimErrors(t *testing.T) {
	s := New()
	if err := s.SetPermitList("acme", ipa("9.9.9.9"), nil); err == nil {
		t.Fatal("permit on unknown address accepted")
	}
	if v := s.Evaluate(ipa("1.1.1.1"), ipa("9.9.9.9")); v.Delivered {
		t.Fatal("unknown destination delivered")
	}
	sip, _ := s.RequestSIP("acme")
	if err := s.SetPermitList("acme", sip, []addr.Prefix{addr.MustParsePrefix("10.0.0.0/8")}); err == nil {
		t.Fatal("non-/32 entry accepted on LB permit list")
	}
}
