// Package shim implements the Table-2 API *on top of today's cloud
// abstractions* — the deployment story of the paper's §5: "We have
// created an initial prototype of our API on top of existing cloud APIs
// for both Azure and AWS... the tenant sees many fewer network 'boxes'
// and does not have to deal with the complexity of constructing their
// network."
//
// The shim drives the aws-like facade underneath: one hidden VPC per
// tenant, public addresses for every endpoint, security-group rewrites
// for permit lists, and a load balancer per service IP. The tenant-facing
// surface is exactly the five verbs; the boxes still exist, but they are
// the shim's problem. Contrast with internal/core, where the provider
// implements the same verbs natively with no tenant boxes at all — the
// migration path §3 sketches ("can be deployed alongside existing
// solutions allowing tenants to choose whether and when to migrate").
package shim

import (
	"fmt"

	"declnet/internal/addr"
	"declnet/internal/appliance"
	"declnet/internal/cloudapi"
	"declnet/internal/gateway"
	"declnet/internal/vnet"
)

// tenantNet is the hidden per-tenant substrate the shim maintains.
type tenantNet struct {
	vpc    *vnet.VPC
	igwID  string
	nextID int
}

// endpoint records one granted EIP's backing instance.
type endpoint struct {
	tenant   string
	instance string
	private  addr.IP
	public   addr.IP
	sgID     string
}

// service records one granted SIP's backing load balancer.
type service struct {
	tenant  string
	lb      *appliance.LoadBalancer
	group   *appliance.TargetGroup
	public  addr.IP
	permits map[addr.IP]bool
}

// Shim is the Table-2 control plane over legacy abstractions.
type Shim struct {
	env *cloudapi.Env
	aws *cloudapi.AWS

	planner *addr.Planner
	tenants map[string]*tenantNet
	eips    map[addr.IP]*endpoint
	sips    map[addr.IP]*service
	sipPool *addr.HostPool
}

// New returns a shim over a fresh legacy environment in one region.
func New() *Shim {
	env := cloudapi.NewEnv()
	return &Shim{
		env:     env,
		aws:     cloudapi.NewAWS(env, "shim-region"),
		planner: addr.NewPlanner(addr.RFC1918()),
		tenants: make(map[string]*tenantNet),
		eips:    make(map[addr.IP]*endpoint),
		sips:    make(map[addr.IP]*service),
		sipPool: addr.NewHostPool(addr.MustParsePrefix("198.19.0.0/16"), 1),
	}
}

// Env exposes the legacy environment (experiments read its ledger to
// count the boxes the shim hides).
func (s *Shim) Env() *cloudapi.Env { return s.env }

// net lazily builds the tenant's hidden VPC: CIDR from the planner, one
// subnet, an attached internet gateway, and a default route.
func (s *Shim) net(tenant string) (*tenantNet, error) {
	if tn, ok := s.tenants[tenant]; ok {
		return tn, nil
	}
	cidr, err := s.planner.Plan("shim-"+tenant, 4096)
	if err != nil {
		return nil, err
	}
	vpc, err := s.aws.CreateVpc("shim-"+tenant, cidr.String(), cloudapi.VpcOptions{EnableDNSSupport: true})
	if err != nil {
		return nil, err
	}
	sub := addr.NewPrefix(cidr.Addr, cidr.Len+1) // half the VPC as one subnet
	if err := s.aws.CreateSubnet(vpc, "sn", sub.String(), "az1", true); err != nil {
		return nil, err
	}
	igw := s.aws.CreateInternetGateway()
	if err := s.aws.AttachInternetGateway(igw, vpc); err != nil {
		return nil, err
	}
	if err := s.aws.CreateRoute(vpc, "sn", "0.0.0.0/0", vnet.Target{Kind: vnet.TIGW, ID: igw}); err != nil {
		return nil, err
	}
	tn := &tenantNet{vpc: vpc, igwID: igw}
	s.tenants[tenant] = tn
	return tn, nil
}

// RequestEIP grants a "flat, default-off" endpoint address by launching a
// legacy instance behind a deny-all security group and handing back its
// public IP.
func (s *Shim) RequestEIP(tenant string) (addr.IP, error) {
	tn, err := s.net(tenant)
	if err != nil {
		return 0, err
	}
	tn.nextID++
	name := fmt.Sprintf("%s-i-%d", tenant, tn.nextID)
	sgID := "sg-" + name
	if err := s.aws.CreateSecurityGroup(tn.vpc, sgID, "shim permit list"); err != nil {
		return 0, err
	}
	// Egress open (the paper's model polices ingress via permit lists).
	if err := s.aws.AuthorizeSecurityGroupEgress(tn.vpc, sgID, vnet.SGRule{Source: addr.MustParsePrefix("0.0.0.0/0")}); err != nil {
		return 0, err
	}
	inst, err := s.aws.RunInstance(tn.vpc, name, "sn", sgID)
	if err != nil {
		return 0, err
	}
	alloc := s.aws.AllocateAddress()
	if err := s.aws.AssociateAddress(alloc, tn.vpc, name); err != nil {
		return 0, err
	}
	s.eips[inst.PublicIP] = &endpoint{
		tenant: tenant, instance: name,
		private: inst.PrivateIP, public: inst.PublicIP, sgID: sgID,
	}
	return inst.PublicIP, nil
}

// SetPermitList rewrites the endpoint's hidden security group so its
// ingress rules are exactly the given sources — set_permit_list over SGs.
func (s *Shim) SetPermitList(tenant string, target addr.IP, sources []addr.Prefix) error {
	if ep, ok := s.eips[target]; ok {
		if ep.tenant != tenant {
			return fmt.Errorf("shim: %s is not tenant %q's EIP", target, tenant)
		}
		tn := s.tenants[tenant]
		sg := tn.vpc.SecurityGroup(ep.sgID)
		sg.Ingress = nil
		for _, src := range sources {
			sg.Ingress = append(sg.Ingress, vnet.SGRule{Source: src})
			s.env.Ledger.Step()
			s.env.Ledger.Param("aws:security-group", 4)
		}
		return nil
	}
	if svc, ok := s.sips[target]; ok {
		if svc.tenant != tenant {
			return fmt.Errorf("shim: %s is not tenant %q's SIP", target, tenant)
		}
		svc.permits = make(map[addr.IP]bool)
		for _, src := range sources {
			if src.Len != 32 {
				return fmt.Errorf("shim: LB permit lists support /32 entries only, got %s", src)
			}
			svc.permits[src.Addr] = true
		}
		return nil
	}
	return fmt.Errorf("shim: %s is not a granted address", target)
}

// RequestSIP grants a service address backed by a hidden load balancer.
func (s *Shim) RequestSIP(tenant string) (addr.IP, error) {
	if _, err := s.net(tenant); err != nil {
		return 0, err
	}
	pub, err := s.sipPool.Allocate()
	if err != nil {
		return 0, err
	}
	lb := s.aws.CreateLoadBalancer(appliance.ApplicationLB)
	group := appliance.NewTargetGroup("tg-" + pub.String())
	lb.AddTargetGroup(group, s.env.Ledger)
	if err := lb.SetDefault(group.ID, s.env.Ledger); err != nil {
		return 0, err
	}
	s.sips[pub] = &service{tenant: tenant, lb: lb, group: group, public: pub,
		permits: make(map[addr.IP]bool)}
	return pub, nil
}

// Bind registers an EIP's backing instance with the SIP's hidden load
// balancer.
func (s *Shim) Bind(tenant string, eip, sip addr.IP) error {
	ep, ok := s.eips[eip]
	if !ok || ep.tenant != tenant {
		return fmt.Errorf("shim: %s is not tenant %q's EIP", eip, tenant)
	}
	svc, ok := s.sips[sip]
	if !ok || svc.tenant != tenant {
		return fmt.Errorf("shim: %s is not tenant %q's SIP", sip, tenant)
	}
	svc.group.Register(ep.instance)
	s.env.Ledger.Step()
	return nil
}

// Verdict reports a shim admission decision.
type Verdict struct {
	Delivered bool
	Backend   string // instance that would serve a SIP-directed packet
	Detail    string
}

// Evaluate answers "may src reach dst" over the legacy substrate: for
// EIPs, a real packet walk through the hidden VPC's IGW and security
// group; for SIPs, the permit set plus a load-balancer route.
func (s *Shim) Evaluate(src, dst addr.IP) Verdict {
	if ep, ok := s.eips[dst]; ok {
		v := s.env.Fabric.Evaluate(gateway.Source{Kind: gateway.FromInternet},
			vnet.Packet{Src: src, Dst: ep.public, Proto: vnet.TCP, DstPort: 443})
		return Verdict{Delivered: v.Delivered, Detail: v.String()}
	}
	if svc, ok := s.sips[dst]; ok {
		if !svc.permits[src] {
			return Verdict{Detail: "denied: source not in service permit list"}
		}
		backend, err := svc.lb.Route(appliance.Request{Path: "/",
			Flow: vnet.Packet{Src: src, Dst: dst, Proto: vnet.TCP, DstPort: 443}})
		if err != nil {
			return Verdict{Detail: "denied: " + err.Error()}
		}
		return Verdict{Delivered: true, Backend: backend}
	}
	return Verdict{Detail: "denied: unknown destination"}
}

// HiddenBoxes reports how many legacy boxes the shim is quietly managing —
// the §5 point: the tenant sees none of them.
func (s *Shim) HiddenBoxes() int { return s.env.Ledger.Boxes() }
