package mesh

import (
	"testing"
	"time"

	"declnet/internal/addr"
	"declnet/internal/app"
	"declnet/internal/core"
	"declnet/internal/topo"
)

func testMesh(t *testing.T) (*Mesh, *topo.Fig1World) {
	t.Helper()
	w := topo.BuildFig1(3)
	c := core.NewCloud(1, w.Graph)
	for _, cfg := range []struct{ name, eip, sip string }{
		{w.CloudA, "100.64.0.0/10", "100.127.0.0/16"},
		{w.CloudB, "104.0.0.0/8", "104.255.0.0/16"},
	} {
		if _, err := c.AddProvider(cfg.name, core.Config{
			EIPBase: addr.MustParsePrefix(cfg.eip),
			SIPBase: addr.MustParsePrefix(cfg.sip),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return New(c, "acme"), w
}

func ordersService(provider string) ServiceConfig {
	return ServiceConfig{
		Name: "orders", Provider: provider, Port: 443,
		Operations: []app.Operation{
			{Name: "get", Scope: "read", Schema: []string{"id"}},
		},
	}
}

func TestMeshCallGraph(t *testing.T) {
	m, w := testMesh(t)
	if _, err := m.AddService(ordersService(w.CloudB)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddService(ServiceConfig{Name: "web", Provider: w.CloudA}); err != nil {
		t.Fatal(err)
	}
	webWL, err := m.Deploy("web", topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Deploy("orders", topo.HostID(w.CloudB, w.RegionsB[0], "az1", 1), false); err != nil {
		t.Fatal(err)
	}
	// Before Allow: the derived permit lists admit nobody.
	orders, _ := m.Service("orders")
	tok := orders.Gateway().IssueToken("web", "read")
	req := app.Request{Bearer: tok, Op: "get", Args: map[string]string{"id": "1"}}
	if _, err := m.Call("web", webWL, "orders", CallOpts{Request: req}); err == nil {
		t.Fatal("call admitted without Allow (default-off broken in mesh)")
	}
	if err := m.Allow("web", "orders"); err != nil {
		t.Fatal(err)
	}
	res, err := m.Call("web", webWL, "orders", CallOpts{Request: req})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != app.Served || res.RTT <= 0 || res.Attempts != 1 {
		t.Fatalf("result = %+v", res)
	}
	// Forbid revokes network admission again.
	if err := m.Forbid("web", "orders"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Call("web", webWL, "orders", CallOpts{Request: req}); err == nil {
		t.Fatal("call admitted after Forbid")
	}
}

func TestMeshDeployUpdatesPermits(t *testing.T) {
	m, w := testMesh(t)
	m.AddService(ordersService(w.CloudB))
	m.AddService(ServiceConfig{Name: "web", Provider: w.CloudA})
	m.Allow("web", "orders")
	m.Deploy("orders", topo.HostID(w.CloudB, w.RegionsB[0], "az1", 1), false)
	// A web workload deployed AFTER Allow must still be admitted: the
	// mesh reconciles permit lists on every deploy.
	late, err := m.Deploy("web", topo.HostID(w.CloudA, w.RegionsA[0], "az2", 1), false)
	if err != nil {
		t.Fatal(err)
	}
	orders, _ := m.Service("orders")
	tok := orders.Gateway().IssueToken("web", "read")
	req := app.Request{Bearer: tok, Op: "get", Args: map[string]string{"id": "1"}}
	if _, err := m.Call("web", late, "orders", CallOpts{Request: req}); err != nil {
		t.Fatalf("late workload rejected: %v", err)
	}
}

func TestMeshRetireRevokes(t *testing.T) {
	m, w := testMesh(t)
	m.AddService(ordersService(w.CloudB))
	m.AddService(ServiceConfig{Name: "web", Provider: w.CloudA})
	m.Allow("web", "orders")
	wl, _ := m.Deploy("web", topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1), false)
	m.Deploy("orders", topo.HostID(w.CloudB, w.RegionsB[0], "az1", 1), false)
	orders, _ := m.Service("orders")
	if err := m.Retire("web", wl); err != nil {
		t.Fatal(err)
	}
	// The retired workload's EIP no longer appears in orders' permits.
	if m.cloud.Admitted(wl.EIP, orders.SIP()) {
		t.Fatal("retired workload still admitted")
	}
	if err := m.Retire("web", wl); err == nil {
		t.Fatal("double retire succeeded")
	}
}

func TestMeshCanarySplit(t *testing.T) {
	m, w := testMesh(t)
	m.AddService(ordersService(w.CloudB))
	m.AddService(ServiceConfig{Name: "web", Provider: w.CloudA})
	m.Allow("web", "orders")
	src, _ := m.Deploy("web", topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1), false)
	stable, _ := m.Deploy("orders", topo.HostID(w.CloudB, w.RegionsB[0], "az1", 1), false)
	canary, _ := m.Deploy("orders", topo.HostID(w.CloudB, w.RegionsB[0], "az2", 1), true)
	if err := m.SetCanaryWeight("orders", 25); err != nil {
		t.Fatal(err)
	}
	orders, _ := m.Service("orders")
	tok := orders.Gateway().IssueToken("web", "read")
	req := app.Request{Bearer: tok, Op: "get", Args: map[string]string{"id": "1"}}
	hits := map[core.EIP]int{}
	for i := 0; i < 100; i++ {
		res, err := m.Call("web", src, "orders", CallOpts{Request: req})
		if err != nil {
			t.Fatal(err)
		}
		hits[res.Backend]++
	}
	if hits[canary.EIP] != 25 || hits[stable.EIP] != 75 {
		t.Fatalf("canary split = %v, want 25/75", hits)
	}
	if err := m.SetCanaryWeight("orders", 150); err == nil {
		t.Fatal("out-of-range canary weight accepted")
	}
}

func TestMeshRetries(t *testing.T) {
	m, w := testMesh(t)
	m.AddService(ordersService(w.CloudB))
	m.AddService(ServiceConfig{Name: "web", Provider: w.CloudA})
	m.Allow("web", "orders")
	src, _ := m.Deploy("web", topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1), false)
	m.Deploy("orders", topo.HostID(w.CloudB, w.RegionsB[0], "az1", 1), false)
	orders, _ := m.Service("orders")
	tok := orders.Gateway().IssueToken("web", "read")
	req := app.Request{Bearer: tok, Op: "get", Args: map[string]string{"id": "1"}}
	// Over many calls across a lossy transit path, with retries the
	// failure rate must collapse.
	failures := 0
	for i := 0; i < 300; i++ {
		if _, err := m.Call("web", src, "orders", CallOpts{Request: req, Retries: 3}); err != nil {
			failures++
		}
	}
	if failures > 1 {
		t.Fatalf("failures with retries = %d", failures)
	}
}

func TestMeshCircuitBreaker(t *testing.T) {
	m, w := testMesh(t)
	m.AddService(ServiceConfig{
		Name: "orders", Provider: w.CloudB,
		Operations:       []app.Operation{{Name: "get", Scope: "read"}},
		BreakerThreshold: 3,
		BreakerCooldown:  time.Second,
	})
	m.AddService(ServiceConfig{Name: "web", Provider: w.CloudA})
	m.Allow("web", "orders")
	src, _ := m.Deploy("web", topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1), false)
	m.Deploy("orders", topo.HostID(w.CloudB, w.RegionsB[0], "az1", 1), false)
	// Anonymous requests fail at the gateway; three of them trip the
	// breaker.
	bad := CallOpts{Request: app.Request{Op: "get"}}
	for i := 0; i < 3; i++ {
		res, err := m.Call("web", src, "orders", bad)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome == app.Served {
			t.Fatal("anonymous request served")
		}
	}
	if _, err := m.Call("web", src, "orders", bad); err == nil {
		t.Fatal("breaker did not open after threshold failures")
	}
	// After the cooldown, a half-open probe goes through; a good request
	// closes the breaker.
	m.cloud.Eng.RunUntil(m.cloud.Eng.Now() + 2*time.Second)
	orders, _ := m.Service("orders")
	tok := orders.Gateway().IssueToken("web", "read")
	good := CallOpts{Request: app.Request{Bearer: tok, Op: "get"}}
	res, err := m.Call("web", src, "orders", good)
	if err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	if res.Outcome != app.Served {
		t.Fatalf("probe outcome = %v", res.Outcome)
	}
	if _, err := m.Call("web", src, "orders", good); err != nil {
		t.Fatal("breaker did not close after success")
	}
}

func TestMeshValidation(t *testing.T) {
	m, w := testMesh(t)
	if _, err := m.AddService(ServiceConfig{Name: "x", Provider: "nope"}); err == nil {
		t.Fatal("unknown provider accepted")
	}
	m.AddService(ordersService(w.CloudB))
	if _, err := m.AddService(ordersService(w.CloudB)); err == nil {
		t.Fatal("duplicate service accepted")
	}
	if _, err := m.Deploy("ghost", "n", false); err == nil {
		t.Fatal("deploy to unknown service accepted")
	}
	if err := m.Allow("ghost", "orders"); err == nil {
		t.Fatal("unknown caller accepted")
	}
	if err := m.Allow("orders", "ghost"); err == nil {
		t.Fatal("unknown callee accepted")
	}
	if _, err := m.Call("orders", &Workload{}, "ghost", CallOpts{}); err == nil {
		t.Fatal("call to unknown callee accepted")
	}
}

func TestMeshNameRegistration(t *testing.T) {
	m, w := testMesh(t)
	s, err := m.AddService(ordersService(w.CloudB))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := m.cloud.ResolveName("acme", "orders")
	if !ok || got != s.SIP() {
		t.Fatalf("service name not registered: %v,%v", got, ok)
	}
}
