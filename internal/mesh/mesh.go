// Package mesh layers a service-mesh control plane over the declarative
// networking API — the bridge the paper gestures at when it notes that
// "technologies such as Kubernetes and service meshes have already made
// it commonplace to construct and enforce these API-level checks" (§4).
//
// A Mesh owns a set of named services. For each service it drives the
// Table-2 verbs underneath: request_sip + bind for the backend set,
// set_permit_list derived from declared service-to-service dependencies
// (callers are permitted by *workload identity*, never by address math),
// and the app-layer gateway for credential checks. On top it adds the
// L7 conveniences meshes are used for: retries with deadline, canary
// traffic splitting, and per-service circuit breaking.
//
// Nothing here touches a VPC, route table, or middlebox — which is the
// §5 prototype claim ("the API can construct our target class of
// applications (service-based architectures) easily") made executable.
package mesh

import (
	"fmt"
	"time"

	"declnet/internal/addr"
	"declnet/internal/app"
	"declnet/internal/core"
	"declnet/internal/permit"
	"declnet/internal/topo"
)

// Workload is one deployed instance of a service: a VM with an EIP.
type Workload struct {
	Node topo.NodeID
	EIP  core.EIP
	// Canary marks instances receiving split traffic.
	Canary bool
}

// Service is a named mesh member.
type Service struct {
	Name string
	// Port is documentation here; admission is per-EIP.
	Port int

	sip       core.SIP
	tenant    string
	provider  *core.Provider
	workloads []*Workload
	gateway   *app.Gateway
	// callers are the service names allowed to invoke this service.
	callers map[string]bool
	// canaryWeight is the percentage (0-100) of traffic to canaries.
	canaryWeight int

	breaker breaker
}

// SIP returns the service's address.
func (s *Service) SIP() core.SIP { return s.sip }

// Gateway exposes the app-layer gateway (token issuing for tests/demos).
func (s *Service) Gateway() *app.Gateway { return s.gateway }

// Workloads returns the registered instances.
func (s *Service) Workloads() []*Workload { return s.workloads }

// breaker is a consecutive-failure circuit breaker.
type breaker struct {
	threshold int
	failures  int
	open      bool
	openedAt  time.Duration
	cooldown  time.Duration
}

func (b *breaker) allow(now time.Duration) bool {
	if !b.open {
		return true
	}
	if now-b.openedAt >= b.cooldown {
		// Half-open probe: allow one attempt.
		return true
	}
	return false
}

func (b *breaker) record(now time.Duration, ok bool) {
	if ok {
		b.failures = 0
		b.open = false
		return
	}
	b.failures++
	if b.threshold > 0 && b.failures >= b.threshold {
		b.open = true
		b.openedAt = now
	}
}

// Mesh is the control plane for one tenant's service graph.
type Mesh struct {
	Tenant string

	cloud    *core.Cloud
	services map[string]*Service
}

// New returns an empty mesh for a tenant over the cloud.
func New(cloud *core.Cloud, tenant string) *Mesh {
	return &Mesh{Tenant: tenant, cloud: cloud, services: make(map[string]*Service)}
}

// ServiceConfig declares one service.
type ServiceConfig struct {
	Name     string
	Provider string // which cloud hosts the SIP
	Port     int
	// Operations the service exposes at its gateway.
	Operations []app.Operation
	// BreakerThreshold opens the circuit after this many consecutive
	// failures (0 disables), with BreakerCooldown before half-open.
	BreakerThreshold int
	BreakerCooldown  time.Duration
}

// AddService registers a service: one request_sip underneath plus an
// app-layer gateway.
func (m *Mesh) AddService(cfg ServiceConfig) (*Service, error) {
	if _, ok := m.services[cfg.Name]; ok {
		return nil, fmt.Errorf("mesh: duplicate service %q", cfg.Name)
	}
	p, ok := m.cloud.Provider(cfg.Provider)
	if !ok {
		return nil, fmt.Errorf("mesh: unknown provider %q", cfg.Provider)
	}
	sip, err := p.RequestSIP(m.Tenant)
	if err != nil {
		return nil, err
	}
	if cfg.BreakerCooldown == 0 {
		cfg.BreakerCooldown = 5 * time.Second
	}
	s := &Service{
		Name: cfg.Name, Port: cfg.Port,
		sip: sip, tenant: m.Tenant, provider: p,
		gateway: app.NewGateway(app.NewService(cfg.Name, cfg.Operations...)),
		callers: make(map[string]bool),
		breaker: breaker{threshold: cfg.BreakerThreshold, cooldown: cfg.BreakerCooldown},
	}
	m.services[cfg.Name] = s
	if err := m.cloud.RegisterName(m.Tenant, cfg.Name, sip); err != nil {
		return nil, err
	}
	return s, nil
}

// Service returns a registered service.
func (m *Mesh) Service(name string) (*Service, bool) {
	s, ok := m.services[name]
	return s, ok
}

// Deploy adds a workload to a service: request_eip + bind underneath,
// then permit-list refresh for every declared caller.
func (m *Mesh) Deploy(service string, node topo.NodeID, canary bool) (*Workload, error) {
	s, ok := m.services[service]
	if !ok {
		return nil, fmt.Errorf("mesh: unknown service %q", service)
	}
	eip, err := s.provider.RequestEIP(m.Tenant, node)
	if err != nil {
		return nil, err
	}
	w := &Workload{Node: node, EIP: eip, Canary: canary}
	s.workloads = append(s.workloads, w)
	weight := 1
	if err := s.provider.Bind(m.Tenant, eip, s.sip, weight); err != nil {
		return nil, err
	}
	s.applyCanarySplit()
	// New workload: every service this one calls must admit it.
	return w, m.reconcilePermits()
}

// Retire drains a workload out of its service and releases its EIP.
func (m *Mesh) Retire(service string, w *Workload) error {
	s, ok := m.services[service]
	if !ok {
		return fmt.Errorf("mesh: unknown service %q", service)
	}
	for i, cur := range s.workloads {
		if cur == w {
			s.workloads = append(s.workloads[:i], s.workloads[i+1:]...)
			if err := s.provider.ReleaseEIP(m.Tenant, w.EIP); err != nil {
				return err
			}
			return m.reconcilePermits()
		}
	}
	return fmt.Errorf("mesh: workload %s not in %q", w.EIP, service)
}

// Allow declares that caller may invoke callee — the mesh's intent
// language. The permit lists underneath are derived, never hand-written.
func (m *Mesh) Allow(caller, callee string) error {
	s, ok := m.services[callee]
	if !ok {
		return fmt.Errorf("mesh: unknown callee %q", callee)
	}
	if _, ok := m.services[caller]; !ok {
		return fmt.Errorf("mesh: unknown caller %q", caller)
	}
	s.callers[caller] = true
	return m.reconcilePermits()
}

// Forbid withdraws a caller declaration.
func (m *Mesh) Forbid(caller, callee string) error {
	s, ok := m.services[callee]
	if !ok {
		return fmt.Errorf("mesh: unknown callee %q", callee)
	}
	delete(s.callers, caller)
	return m.reconcilePermits()
}

// reconcilePermits recomputes every service's permit list from the
// declared call graph and current workload sets: the SIP and every
// backend EIP admit exactly the workloads of declared callers.
func (m *Mesh) reconcilePermits() error {
	for _, callee := range m.services {
		var entries []permit.Entry
		for callerName := range callee.callers {
			caller := m.services[callerName]
			for _, w := range caller.workloads {
				entries = append(entries, addr.NewPrefix(w.EIP, 32))
			}
		}
		targets := []addr.IP{callee.sip}
		for _, w := range callee.workloads {
			targets = append(targets, w.EIP)
		}
		for _, target := range targets {
			if err := callee.provider.SetPermitList(m.Tenant, target, entries); err != nil {
				return err
			}
		}
	}
	return nil
}

// SetCanaryWeight splits pct% of the callee's traffic onto canary
// workloads by re-weighting the binds underneath.
func (m *Mesh) SetCanaryWeight(service string, pct int) error {
	s, ok := m.services[service]
	if !ok {
		return fmt.Errorf("mesh: unknown service %q", service)
	}
	if pct < 0 || pct > 100 {
		return fmt.Errorf("mesh: canary weight %d%% out of range", pct)
	}
	s.canaryWeight = pct
	s.applyCanarySplit()
	return nil
}

// applyCanarySplit translates the percentage into bind weights.
func (s *Service) applyCanarySplit() {
	var canaries, stable int
	for _, w := range s.workloads {
		if w.Canary {
			canaries++
		} else {
			stable++
		}
	}
	if canaries == 0 || stable == 0 || s.canaryWeight == 0 {
		for _, w := range s.workloads {
			s.provider.Bind(s.tenant, w.EIP, s.sip, 1)
		}
		return
	}
	// Weight canaries so they receive canaryWeight% collectively:
	// wc/(wc*canaries + ws*stable) * canaries = pct/100, solved with
	// integer weights by cross-multiplying.
	wc := s.canaryWeight * stable
	ws := (100 - s.canaryWeight) * canaries
	g := gcd(wc, ws)
	if g > 0 {
		wc /= g
		ws /= g
	}
	for _, w := range s.workloads {
		weight := ws
		if w.Canary {
			weight = wc
		}
		s.provider.Bind(s.tenant, w.EIP, s.sip, weight)
	}
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// CallOpts tunes a mesh call.
type CallOpts struct {
	// Retries is the number of additional attempts on failure.
	Retries int
	// Request is the app-layer call made at the callee's gateway.
	Request app.Request
}

// CallResult reports one mesh call.
type CallResult struct {
	// Attempts made (1 = first try succeeded).
	Attempts int
	// Outcome is the app-layer verdict of the final attempt.
	Outcome app.Outcome
	// Backend is the workload that served it.
	Backend core.EIP
	// RTT of the successful attempt.
	RTT time.Duration
}

// Call performs one service-to-service request: network admission via
// the declarative data path, then the callee's gateway, with retries and
// circuit breaking. src must be a workload of the caller service.
func (m *Mesh) Call(caller string, src *Workload, callee string, opts CallOpts) (CallResult, error) {
	cs, ok := m.services[callee]
	if !ok {
		return CallResult{}, fmt.Errorf("mesh: unknown callee %q", callee)
	}
	if _, ok := m.services[caller]; !ok {
		return CallResult{}, fmt.Errorf("mesh: unknown caller %q", caller)
	}
	now := m.cloud.Eng.Now()
	if !cs.breaker.allow(now) {
		return CallResult{}, fmt.Errorf("mesh: circuit open for %q", callee)
	}
	var res CallResult
	var lastErr error
	for attempt := 0; attempt <= opts.Retries; attempt++ {
		res.Attempts = attempt + 1
		conn, err := m.cloud.Connect(m.Tenant, src.EIP, cs.sip, core.ConnectOpts{SizeBytes: -1})
		if err != nil {
			lastErr = err
			continue
		}
		rtt := m.cloud.Net.RTT(conn.Path)
		delivered := m.cloud.Net.Delivered(conn.Path)
		backend := conn.DstEIP
		conn.Close()
		if !delivered {
			lastErr = fmt.Errorf("mesh: request to %q lost in transit", callee)
			continue
		}
		res.Outcome = cs.gateway.Handle(opts.Request)
		res.Backend = backend
		res.RTT = rtt
		ok := res.Outcome == app.Served
		cs.breaker.record(m.cloud.Eng.Now(), ok)
		return res, nil
	}
	cs.breaker.record(m.cloud.Eng.Now(), false)
	return res, lastErr
}
