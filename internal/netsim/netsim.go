// Package netsim is the flow-level data plane: it carries flows over paths
// through a topo.Graph inside a discrete-event simulation, assigning each
// flow its max-min fair share of every link it crosses and recomputing
// shares whenever the flow set changes.
//
// The fluid-flow approximation (no per-packet events) is what makes the
// paper's experiments tractable at multi-cloud scale; every experiment in
// this repository compares relative path and policy quality, for which
// steady-state fair-share rates plus propagation/jitter/loss models are
// the established abstraction.
package netsim

import (
	"fmt"
	"math"
	"time"

	"declnet/internal/sim"
	"declnet/internal/topo"
)

// Flow is a unit of bulk transfer or a persistent demand on the network.
type Flow struct {
	ID string
	// Path is the link sequence the flow occupies.
	Path topo.Path
	// Size is the number of bytes to transfer; <0 means a persistent flow
	// that runs until Stop.
	Size float64
	// MaxRate caps the flow's rate in bits/s (0 = uncapped). Egress
	// guarantees and token-bucket policers set this.
	MaxRate float64
	// Weight scales the flow's fair share (default 1).
	Weight float64

	// OnDone fires when a sized flow completes, with its completion time.
	OnDone func(fct time.Duration)

	started   sim.Time
	remaining float64 // bits
	rate      float64 // current assigned bits/s
	sent      float64 // bits delivered so far
	done      bool
}

// Rate returns the flow's currently assigned rate in bits/s.
func (f *Flow) Rate() float64 { return f.rate }

// SentBytes returns how many bytes the flow has delivered so far.
func (f *Flow) SentBytes() float64 { return f.sent / 8 }

// Done reports whether a sized flow has completed.
func (f *Flow) Done() bool { return f.done }

// Network simulates flows over a graph.
type Network struct {
	G   *topo.Graph
	Eng *sim.Engine

	flows      map[string]*Flow
	nextID     int
	lastUpdate sim.Time
	completion *sim.Event

	// Recomputes counts fair-share recomputations, a solver-cost metric.
	Recomputes uint64
}

// New returns a network over g driven by eng.
func New(g *topo.Graph, eng *sim.Engine) *Network {
	return &Network{G: g, Eng: eng, flows: make(map[string]*Flow)}
}

// StartFlow begins transferring sizeBytes over path. The returned flow's
// OnDone (if set) fires at completion. A negative sizeBytes starts a
// persistent flow. Weight defaults to 1 when non-positive.
func (n *Network) StartFlow(f *Flow) (*Flow, error) {
	if len(f.Path) == 0 {
		return nil, fmt.Errorf("netsim: flow with empty path")
	}
	if f.Weight <= 0 {
		f.Weight = 1
	}
	if f.ID == "" {
		n.nextID++
		f.ID = fmt.Sprintf("flow-%d", n.nextID)
	}
	if _, ok := n.flows[f.ID]; ok {
		return nil, fmt.Errorf("netsim: duplicate flow id %q", f.ID)
	}
	f.started = n.Eng.Now()
	if f.Size >= 0 {
		f.remaining = f.Size * 8
	} else {
		f.remaining = math.Inf(1)
	}
	n.advance()
	n.flows[f.ID] = f
	n.reshare()
	return f, nil
}

// Stop removes a flow (persistent or not) without firing OnDone.
func (n *Network) Stop(f *Flow) {
	if _, ok := n.flows[f.ID]; !ok {
		return
	}
	n.advance()
	delete(n.flows, f.ID)
	n.reshare()
}

// SetMaxRate changes a flow's rate cap and redistributes shares.
func (n *Network) SetMaxRate(f *Flow, cap float64) {
	n.advance()
	f.MaxRate = cap
	n.reshare()
}

// Active returns the number of in-flight flows.
func (n *Network) Active() int { return len(n.flows) }

// advance integrates delivered bits for all flows up to now.
func (n *Network) advance() {
	now := n.Eng.Now()
	dt := (now - n.lastUpdate).Seconds()
	if dt <= 0 {
		n.lastUpdate = now
		return
	}
	for _, f := range n.flows {
		if f.rate > 0 {
			bits := f.rate * dt
			if bits > f.remaining {
				bits = f.remaining
			}
			f.remaining -= bits
			f.sent += bits
		}
	}
	n.lastUpdate = now
}

// reshare recomputes weighted max-min fair rates via progressive filling
// and reschedules the next completion event.
func (n *Network) reshare() {
	n.Recomputes++
	// Residual capacity per link and the set of unfrozen flows per link.
	type linkState struct {
		residual float64
		weight   float64 // total weight of unfrozen flows on the link
	}
	links := make(map[*topo.Link]*linkState)
	unfrozen := make(map[*Flow]bool, len(n.flows))
	for _, f := range n.flows {
		f.rate = 0
		// Flows crossing a failed link stall at rate 0 and occupy no
		// capacity anywhere; they resume when the link is restored.
		stalled := false
		for _, l := range f.Path {
			if !l.Up() {
				stalled = true
				break
			}
		}
		if stalled {
			continue
		}
		unfrozen[f] = true
		for _, l := range f.Path {
			st, ok := links[l]
			if !ok {
				st = &linkState{residual: l.Capacity}
				links[l] = st
			}
			st.weight += f.Weight
		}
	}
	for len(unfrozen) > 0 {
		// The binding constraint is either the tightest link's fair share
		// or the smallest per-flow cap.
		share := math.Inf(1)
		for l, st := range links {
			if st.weight <= 0 {
				delete(links, l)
				continue
			}
			if s := st.residual / st.weight; s < share {
				share = s
			}
		}
		var capped *Flow
		for f := range unfrozen {
			if f.MaxRate > 0 {
				perWeight := f.MaxRate / f.Weight
				if perWeight < share {
					share = perWeight
					capped = f
				}
			}
		}
		if math.IsInf(share, 1) {
			// No constraining link or cap (can happen only when every
			// remaining flow traverses only links that already lost all
			// weight — not expected, but terminate defensively).
			for f := range unfrozen {
				f.rate = 0
				delete(unfrozen, f)
			}
			break
		}
		if capped != nil {
			// Freeze just the capped flow at its cap.
			capped.rate = capped.MaxRate
			for _, l := range capped.Path {
				st := links[l]
				st.residual -= capped.rate
				if st.residual < 0 {
					st.residual = 0
				}
				st.weight -= capped.Weight
			}
			delete(unfrozen, capped)
			continue
		}
		// Freeze every unfrozen flow crossing a saturated link.
		froze := false
		for l, st := range links {
			if st.weight <= 0 {
				continue
			}
			if st.residual/st.weight > share+1e-12 {
				continue
			}
			// Link l saturates at this share: freeze its unfrozen flows.
			for f := range unfrozen {
				onLink := false
				for _, fl := range f.Path {
					if fl == l {
						onLink = true
						break
					}
				}
				if !onLink {
					continue
				}
				f.rate = share * f.Weight
				for _, fl := range f.Path {
					fst := links[fl]
					fst.residual -= f.rate
					if fst.residual < 0 {
						fst.residual = 0
					}
					fst.weight -= f.Weight
				}
				delete(unfrozen, f)
				froze = true
			}
		}
		if !froze {
			// Numerical corner: give everyone the share and stop.
			for f := range unfrozen {
				f.rate = share * f.Weight
				delete(unfrozen, f)
			}
		}
	}
	n.scheduleCompletion()
}

// scheduleCompletion arms one event at the earliest sized-flow completion.
func (n *Network) scheduleCompletion() {
	if n.completion != nil {
		n.completion.Cancel()
		n.completion = nil
	}
	soonest := math.Inf(1)
	for _, f := range n.flows {
		if math.IsInf(f.remaining, 1) || f.rate <= 0 {
			continue
		}
		if t := f.remaining / f.rate; t < soonest {
			soonest = t
		}
	}
	if math.IsInf(soonest, 1) {
		return
	}
	// Round up to whole nanoseconds and never schedule at zero delay:
	// float rounding can leave a sliver of remaining bits, and a 0-delay
	// event would re-fire at the same virtual time without progress.
	delay := sim.Time(math.Ceil(soonest * float64(time.Second)))
	if delay < 1 {
		delay = 1
	}
	n.completion = n.Eng.After(delay, n.finishDue)
}

// finishDue completes every flow that has drained, then reshapes.
func (n *Network) finishDue() {
	n.advance()
	var finished []*Flow
	for _, f := range n.flows {
		if f.remaining <= 1e-6 { // bits; tolerance for float integration
			finished = append(finished, f)
		}
	}
	for _, f := range finished {
		delete(n.flows, f.ID)
		f.done = true
	}
	n.reshare()
	for _, f := range finished {
		if f.OnDone != nil {
			// Transfer completion additionally experiences the path's
			// one-way propagation delay for the final bytes to land.
			fct := n.Eng.Now() - f.started + f.Path.Delay()
			f.OnDone(fct)
		}
	}
}

// FailLink takes both directions of a physical link out of service:
// affected flows stall at rate 0 (bytes already in flight are kept) and
// new path computations route around it.
func (n *Network) FailLink(pairID string) error {
	n.advance()
	if err := n.G.SetPairUp(pairID, false); err != nil {
		return err
	}
	n.reshare()
	return nil
}

// RestoreLink returns a failed link to service; stalled flows resume.
func (n *Network) RestoreLink(pairID string) error {
	n.advance()
	if err := n.G.SetPairUp(pairID, true); err != nil {
		return err
	}
	n.reshare()
	return nil
}

// OneWayDelay samples the path's one-way latency: propagation plus a
// uniform jitter draw per link.
func (n *Network) OneWayDelay(p topo.Path) time.Duration {
	d := p.Delay()
	for _, l := range p {
		if l.Jitter > 0 {
			d += time.Duration(n.Eng.Rand().Int63n(int64(l.Jitter)))
		}
	}
	return d
}

// Delivered samples whether a single datagram survives the path. A path
// crossing a failed link never delivers.
func (n *Network) Delivered(p topo.Path) bool {
	for _, l := range p {
		if !l.Up() {
			return false
		}
		if l.Loss > 0 && n.Eng.Rand().Float64() < l.Loss {
			return false
		}
	}
	return true
}

// RTT samples a round trip over the path (forward and reverse jitter drawn
// independently; the reverse path is assumed symmetric).
func (n *Network) RTT(p topo.Path) time.Duration {
	return n.OneWayDelay(p) + n.OneWayDelay(p)
}
