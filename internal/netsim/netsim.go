// Package netsim is the flow-level data plane: it carries flows over paths
// through a topo.Graph inside a discrete-event simulation, assigning each
// flow its max-min fair share of every link it crosses and recomputing
// shares whenever the flow set changes.
//
// The fluid-flow approximation (no per-packet events) is what makes the
// paper's experiments tractable at multi-cloud scale; every experiment in
// this repository compares relative path and policy quality, for which
// steady-state fair-share rates plus propagation/jitter/loss models are
// the established abstraction.
//
// The fair-share solver is incremental: the network keeps a persistent
// link->flow adjacency index, flow events (start, stop, rate-cap change,
// link failure) only mark the links they touch dirty, and a solve
// recomputes just the connected component of links and flows reachable
// from the dirty set — max-min allocations decompose exactly across
// disjoint components, so untouched traffic keeps its rates. Events that
// land at the same virtual timestamp are batched into one solve (epoch
// batching). The original from-scratch progressive-filling solver is kept
// as a reference implementation; setting CheckParity cross-checks every
// incremental solve against it.
package netsim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"time"

	"declnet/internal/sim"
	"declnet/internal/topo"
)

// Flow is a unit of bulk transfer or a persistent demand on the network.
type Flow struct {
	ID string
	// Path is the link sequence the flow occupies.
	Path topo.Path
	// Size is the number of bytes to transfer; <0 means a persistent flow
	// that runs until Stop.
	Size float64
	// MaxRate caps the flow's rate in bits/s (0 = uncapped). Egress
	// guarantees and token-bucket policers set this.
	MaxRate float64
	// Weight scales the flow's fair share (default 1).
	Weight float64

	// OnDone fires when a sized flow completes, with its completion time.
	OnDone func(fct time.Duration)

	// OnKilled fires when the flow is destroyed by Kill (fault injection
	// tearing down a stalled flow) rather than completing or being
	// stopped by its owner. OnDone does not fire for killed flows.
	OnKilled func()

	net       *Network // non-nil while the flow is active
	seq       uint64   // admission order; the deterministic iteration key
	started   sim.Time
	lastSync  sim.Time // virtual time up to which sent/remaining integrate
	remaining float64  // bits
	rate      float64  // current assigned bits/s
	sent      float64  // bits delivered so far
	done      bool

	finishAt sim.Time // absolute completion estimate; 0 = none
	heapVer  uint64   // invalidates superseded completion-heap entries

	visit   uint64 // solver component mark (== Network.visitGen)
	frozen  bool   // solver scratch: rate fixed this solve
	stalled bool   // solver scratch: crosses a failed link
}

// Rate returns the flow's currently assigned rate in bits/s, applying any
// pending fair-share recomputation first.
func (f *Flow) Rate() float64 {
	if f.net != nil {
		f.net.flush()
	}
	return f.rate
}

// SentBytes returns how many bytes the flow has delivered up to the
// current virtual time.
func (f *Flow) SentBytes() float64 {
	if f.net != nil {
		f.net.flush()
		f.net.syncFlow(f)
	}
	return f.sent / 8
}

// Done reports whether a sized flow has completed.
func (f *Flow) Done() bool { return f.done }

// Stalled reports whether the flow currently crosses a failed link and is
// pinned at rate 0 (it resumes when the link returns). Any pending solve
// is applied first.
func (f *Flow) Stalled() bool {
	if f.net == nil {
		return false
	}
	f.net.flush()
	for _, l := range f.Path {
		if !l.Up() {
			return true
		}
	}
	return false
}

// linkEntry is the persistent per-link record of the adjacency index: the
// flows crossing the link (in admission order, the solver's deterministic
// iteration order) plus solver scratch state reused across solves.
type linkEntry struct {
	link  *topo.Link
	flows []*Flow

	dirtyMark bool   // queued in Network.dirty
	visit     uint64 // solver component mark (== Network.visitGen)

	// Progressive-filling scratch, valid only during a solve.
	residual float64
	weight   float64
}

// Network simulates flows over a graph.
type Network struct {
	G   *topo.Graph
	Eng *sim.Engine

	flows   map[string]*Flow
	nextID  int
	flowSeq uint64

	// index is the persistent link->flow adjacency; entries are created on
	// first use and kept (empty) afterwards so their slices are reused.
	index map[*topo.Link]*linkEntry

	// dirty holds the links touched since the last solve. Events at one
	// virtual timestamp accumulate here and are resolved by a single
	// flush, scheduled at the same timestamp (epoch batching).
	dirty    []*linkEntry
	flushEv  *sim.Event
	visitGen uint64

	// due is the completion min-heap (lazy deletion via heapVer).
	due        dueHeap
	completion *sim.Event

	// Reusable solve scratch (satisfies zero-allocation steady state).
	compLinks []*linkEntry
	compFlows []*Flow
	finished  []*Flow
	fullSeeds []*linkEntry

	// Recomputes counts fair-share solves; FlowsTouched and LinksTouched
	// accumulate the component sizes those solves visited. Together they
	// are the solver-cost metrics the experiment tables report.
	Recomputes   uint64
	FlowsTouched uint64
	LinksTouched uint64

	// CheckParity cross-checks every incremental solve against the
	// reference from-scratch solver; mismatches beyond 1e-9 relative
	// tolerance are counted and the first one described in ParityErr.
	CheckParity      bool
	ParityMismatches uint64
	ParityErr        string

	// ForceFull makes every solve recompute all flows from the full link
	// set (the pre-incremental behaviour); benchmarks use it to measure
	// the incremental solver's advantage.
	ForceFull bool
}

// New returns a network over g driven by eng.
func New(g *topo.Graph, eng *sim.Engine) *Network {
	return &Network{
		G: g, Eng: eng,
		flows: make(map[string]*Flow),
		index: make(map[*topo.Link]*linkEntry),
	}
}

// StartFlow begins transferring sizeBytes over path. The returned flow's
// OnDone (if set) fires at completion. A negative sizeBytes starts a
// persistent flow. Weight defaults to 1 when non-positive. The fair-share
// recomputation is deferred to the end of the current event epoch; rate
// reads force it.
func (n *Network) StartFlow(f *Flow) (*Flow, error) {
	if len(f.Path) == 0 {
		return nil, fmt.Errorf("netsim: flow with empty path")
	}
	if f.Weight <= 0 {
		f.Weight = 1
	}
	if f.ID == "" {
		n.nextID++
		f.ID = fmt.Sprintf("flow-%d", n.nextID)
	}
	if _, ok := n.flows[f.ID]; ok {
		return nil, fmt.Errorf("netsim: duplicate flow id %q", f.ID)
	}
	now := n.Eng.Now()
	f.net = n
	n.flowSeq++
	f.seq = n.flowSeq
	f.started = now
	f.lastSync = now
	f.rate = 0
	f.finishAt = 0
	if f.Size >= 0 {
		f.remaining = f.Size * 8
	} else {
		f.remaining = math.Inf(1)
	}
	n.flows[f.ID] = f
	for _, l := range f.Path {
		le, ok := n.index[l]
		if !ok {
			le = &linkEntry{link: l}
			n.index[l] = le
		}
		le.flows = append(le.flows, f)
		n.markDirty(le)
	}
	return f, nil
}

// Stop removes a flow (persistent or not) without firing OnDone.
func (n *Network) Stop(f *Flow) {
	if cur, ok := n.flows[f.ID]; !ok || cur != f {
		return
	}
	n.syncFlow(f)
	delete(n.flows, f.ID)
	n.detach(f)
}

// detach removes an active flow from the adjacency index, invalidates its
// completion entry, and marks its links dirty.
func (n *Network) detach(f *Flow) {
	for _, l := range f.Path {
		le, ok := n.index[l]
		if !ok {
			continue
		}
		for i, ff := range le.flows {
			if ff == f {
				le.flows = append(le.flows[:i], le.flows[i+1:]...)
				break
			}
		}
		n.markDirty(le)
	}
	f.net = nil
	f.heapVer++
	f.finishAt = 0
}

// SetMaxRate changes a flow's rate cap and redistributes shares. A no-op
// cap change dirties nothing.
func (n *Network) SetMaxRate(f *Flow, cap float64) {
	if f.MaxRate == cap {
		return
	}
	f.MaxRate = cap
	if f.net != n {
		return
	}
	for _, l := range f.Path {
		if le, ok := n.index[l]; ok {
			n.markDirty(le)
		}
	}
}

// Active returns the number of in-flight flows.
func (n *Network) Active() int { return len(n.flows) }

// markDirty queues a link for the next incremental solve and arms the
// end-of-epoch flush event at the current virtual timestamp.
func (n *Network) markDirty(le *linkEntry) {
	if !le.dirtyMark {
		le.dirtyMark = true
		n.dirty = append(n.dirty, le)
	}
	if n.flushEv == nil {
		n.flushEv = n.Eng.After(0, n.flushEvent)
	}
}

func (n *Network) flushEvent() {
	n.flushEv = nil
	n.flush()
}

// flush resolves all pending events in one incremental solve. It always
// runs at the same virtual timestamp as the events that marked the dirty
// set, either on demand (rate reads) or from the epoch flush event.
func (n *Network) flush() {
	if len(n.dirty) == 0 {
		return
	}
	if n.flushEv != nil {
		n.flushEv.Cancel()
		n.flushEv = nil
	}
	seeds := n.dirty
	if n.ForceFull {
		seeds = n.allEntries()
	}
	n.solve(seeds)
	for _, le := range n.dirty {
		le.dirtyMark = false
	}
	n.dirty = n.dirty[:0]
	if n.CheckParity {
		n.checkParity()
	}
	n.armCompletion()
}

// allEntries returns every indexed link in ID order (the forced-full seed
// set).
func (n *Network) allEntries() []*linkEntry {
	n.fullSeeds = n.fullSeeds[:0]
	for _, le := range n.index {
		n.fullSeeds = append(n.fullSeeds, le)
	}
	sort.Slice(n.fullSeeds, func(i, j int) bool {
		return n.fullSeeds[i].link.ID < n.fullSeeds[j].link.ID
	})
	return n.fullSeeds
}

// syncFlow integrates a flow's delivered bits up to the current virtual
// time at its current rate. Rates only change at solve boundaries within
// the same timestamp, so lazy per-flow integration is exact.
func (n *Network) syncFlow(f *Flow) {
	if f.net != n {
		return
	}
	dt := (n.Eng.Now() - f.lastSync).Seconds()
	if dt <= 0 {
		return
	}
	f.lastSync = n.Eng.Now()
	if f.rate > 0 {
		bits := f.rate * dt
		if bits > f.remaining {
			bits = f.remaining
		}
		f.remaining -= bits
		f.sent += bits
	}
}

// setRate assigns a flow's new rate, syncing first is the caller's duty.
// It refreshes the flow's completion-heap entry; an unchanged rate keeps
// the existing entry (its absolute finish time is still exact).
func (n *Network) setRate(f *Flow, r float64) {
	if r == f.rate {
		return
	}
	f.rate = r
	f.heapVer++
	f.finishAt = 0
	if r > 0 && !math.IsInf(f.remaining, 1) {
		// Round up to whole nanoseconds and never schedule at zero delay:
		// float rounding can leave a sliver of remaining bits, and a
		// 0-delay event would re-fire at the same virtual time without
		// progress.
		d := sim.Time(math.Ceil(f.remaining / r * float64(time.Second)))
		if d < 1 {
			d = 1
		}
		f.finishAt = n.Eng.Now() + d
		heap.Push(&n.due, dueEntry{at: f.finishAt, seq: f.seq, f: f, ver: f.heapVer})
	}
}

// solve recomputes weighted max-min fair rates via progressive filling
// over the connected component(s) of links and flows reachable from the
// seed links. Max-min allocations decompose exactly across components
// that share no link, so flows outside the reached component keep their
// rates untouched.
func (n *Network) solve(seeds []*linkEntry) {
	n.Recomputes++
	n.visitGen++
	vg := n.visitGen

	// Breadth-first closure: link -> its flows -> their links. The
	// traversal order (dirty order, then admission order within a link)
	// is deterministic, which keeps replays bit-identical.
	n.compLinks = n.compLinks[:0]
	n.compFlows = n.compFlows[:0]
	for _, le := range seeds {
		if le.visit != vg {
			le.visit = vg
			n.compLinks = append(n.compLinks, le)
		}
	}
	for i := 0; i < len(n.compLinks); i++ {
		le := n.compLinks[i]
		for _, f := range le.flows {
			if f.visit == vg {
				continue
			}
			f.visit = vg
			n.compFlows = append(n.compFlows, f)
			for _, l := range f.Path {
				fe := n.index[l]
				if fe.visit != vg {
					fe.visit = vg
					n.compLinks = append(n.compLinks, fe)
				}
			}
		}
	}
	n.FlowsTouched += uint64(len(n.compFlows))
	n.LinksTouched += uint64(len(n.compLinks))

	// Reset component state; flows crossing a failed link stall at rate 0
	// and occupy no capacity anywhere; they resume when the link returns.
	live := 0
	for _, le := range n.compLinks {
		le.residual = le.link.Capacity
		le.weight = 0
	}
	for _, f := range n.compFlows {
		n.syncFlow(f)
		f.frozen = true
		f.stalled = false
		for _, l := range f.Path {
			if !l.Up() {
				f.stalled = true
				break
			}
		}
		if f.stalled {
			n.setRate(f, 0)
			continue
		}
		f.frozen = false
		live++
		for _, l := range f.Path {
			n.index[l].weight += f.Weight
		}
	}

	// Progressive filling restricted to the component.
	for live > 0 {
		// The binding constraint is either the tightest link's fair share
		// or the smallest per-flow cap.
		share := math.Inf(1)
		for _, le := range n.compLinks {
			if le.weight <= 0 {
				continue
			}
			if s := le.residual / le.weight; s < share {
				share = s
			}
		}
		var capped *Flow
		for _, f := range n.compFlows {
			if f.frozen || f.MaxRate <= 0 {
				continue
			}
			if pw := f.MaxRate / f.Weight; pw < share {
				share = pw
				capped = f
			}
		}
		if math.IsInf(share, 1) {
			// No constraining link or cap (can happen only when every
			// remaining flow traverses only links that already lost all
			// weight — not expected, but terminate defensively).
			for _, f := range n.compFlows {
				if !f.frozen {
					n.setRate(f, 0)
					f.frozen = true
					live--
				}
			}
			break
		}
		if capped != nil {
			// Freeze just the capped flow at its cap.
			n.setRate(capped, capped.MaxRate)
			n.consume(capped)
			capped.frozen = true
			live--
			continue
		}
		// Freeze every unfrozen flow crossing a saturated link.
		froze := false
		for _, le := range n.compLinks {
			if le.weight <= 0 || le.residual/le.weight > share+1e-12 {
				continue
			}
			for _, f := range le.flows {
				if f.frozen {
					continue
				}
				n.setRate(f, share*f.Weight)
				n.consume(f)
				f.frozen = true
				live--
				froze = true
			}
		}
		if !froze {
			// Numerical corner: give everyone the share and stop.
			for _, f := range n.compFlows {
				if !f.frozen {
					n.setRate(f, share*f.Weight)
					f.frozen = true
					live--
				}
			}
		}
	}
}

// consume charges a just-frozen flow's rate and weight to its links.
func (n *Network) consume(f *Flow) {
	for _, l := range f.Path {
		le := n.index[l]
		le.residual -= f.rate
		if le.residual < 0 {
			le.residual = 0
		}
		le.weight -= f.Weight
	}
}

// dueEntry is one completion-heap record; lazy deletion via ver, with seq
// as the deterministic tiebreak at equal finish times.
type dueEntry struct {
	at  sim.Time
	seq uint64
	f   *Flow
	ver uint64
}

type dueHeap []dueEntry

func (h dueHeap) Len() int { return len(h) }
func (h dueHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h dueHeap) Swap(i, j int)  { h[i], h[j] = h[j], h[i] }
func (h *dueHeap) Push(x any)    { *h = append(*h, x.(dueEntry)) }
func (h *dueHeap) Pop() any {
	old := *h
	e := old[len(old)-1]
	*h = old[:len(old)-1]
	return e
}

// armCompletion (re)schedules the single engine event at the earliest
// live completion estimate, discarding superseded heap tops.
func (n *Network) armCompletion() {
	for len(n.due) > 0 && n.due[0].ver != n.due[0].f.heapVer {
		heap.Pop(&n.due)
	}
	if len(n.due) == 0 {
		if n.completion != nil {
			n.completion.Cancel()
			n.completion = nil
		}
		return
	}
	at := n.due[0].at
	if now := n.Eng.Now(); at < now {
		at = now
	}
	if n.completion != nil {
		if n.completion.At() == at {
			return
		}
		n.completion.Cancel()
	}
	n.completion = n.Eng.Schedule(at, n.onCompletion)
}

// onCompletion completes every flow that has drained, reshapes the
// affected component once, then fires the OnDone callbacks.
func (n *Network) onCompletion() {
	n.completion = nil
	now := n.Eng.Now()
	n.finished = n.finished[:0]
	for len(n.due) > 0 {
		top := n.due[0]
		if top.ver != top.f.heapVer {
			heap.Pop(&n.due)
			continue
		}
		if top.at > now {
			break
		}
		heap.Pop(&n.due)
		f := top.f
		n.syncFlow(f)
		if f.remaining > 1e-6 { // bits; tolerance for float integration
			// Conservative estimate not yet drained; re-arm.
			d := sim.Time(math.Ceil(f.remaining / f.rate * float64(time.Second)))
			if d < 1 {
				d = 1
			}
			f.heapVer++
			f.finishAt = now + d
			heap.Push(&n.due, dueEntry{at: f.finishAt, seq: f.seq, f: f, ver: f.heapVer})
			continue
		}
		delete(n.flows, f.ID)
		n.detach(f)
		f.done = true
		n.finished = append(n.finished, f)
	}
	n.flush()
	n.armCompletion()
	for _, f := range n.finished {
		if f.OnDone != nil {
			// Transfer completion additionally experiences the path's
			// one-way propagation delay for the final bytes to land.
			f.OnDone(now - f.started + f.Path.Delay())
		}
	}
}

// FailLink takes both directions of a physical link out of service:
// affected flows stall at rate 0 (bytes already in flight are kept) and
// new path computations route around it.
func (n *Network) FailLink(pairID string) error { return n.setPair(pairID, false) }

// RestoreLink returns a failed link to service; stalled flows resume.
func (n *Network) RestoreLink(pairID string) error { return n.setPair(pairID, true) }

func (n *Network) setPair(pairID string, up bool) error {
	if err := n.G.SetPairUp(pairID, up); err != nil {
		return err
	}
	for _, suffix := range []string{":fwd", ":rev"} {
		if l, ok := n.G.Link(pairID + suffix); ok {
			if le, ok := n.index[l]; ok {
				n.markDirty(le)
			}
		}
	}
	return nil
}

// SetLinkUp fails or restores one directed link and queues the affected
// component for an incremental reshare. Fault injection uses it for
// node-granular failures, where each incident directed edge goes down on
// its own.
func (n *Network) SetLinkUp(id string, up bool) error {
	if err := n.G.SetLinkUp(id, up); err != nil {
		return err
	}
	if l, ok := n.G.Link(id); ok {
		if le, ok := n.index[l]; ok {
			n.markDirty(le)
		}
	}
	return nil
}

// FlowsOn returns the active flows crossing the directed link, in
// admission order. The fault injector uses it to find flows affected by a
// failure.
func (n *Network) FlowsOn(id string) []*Flow {
	l, ok := n.G.Link(id)
	if !ok {
		return nil
	}
	le, ok := n.index[l]
	if !ok {
		return nil
	}
	return append([]*Flow(nil), le.flows...)
}

// Kill destroys an active flow that a fault has made unservable: it is
// removed like Stop, then OnKilled (not OnDone) fires so the owning
// connection can release balancer slots and quota grants.
func (n *Network) Kill(f *Flow) {
	if cur, ok := n.flows[f.ID]; !ok || cur != f {
		return
	}
	n.Stop(f)
	f.done = true
	if f.OnKilled != nil {
		f.OnKilled()
	}
}

// referenceRates recomputes every active flow's max-min fair share from
// scratch with the original progressive-filling solver. It mutates no
// flow or network state; CheckParity and the property tests compare its
// result against the incremental solver's assignments.
func (n *Network) referenceRates() map[*Flow]float64 {
	type linkState struct {
		residual float64
		weight   float64
	}
	rates := make(map[*Flow]float64, len(n.flows))
	links := make(map[*topo.Link]*linkState)
	unfrozen := make(map[*Flow]bool, len(n.flows))
	for _, f := range n.flows {
		rates[f] = 0
		stalled := false
		for _, l := range f.Path {
			if !l.Up() {
				stalled = true
				break
			}
		}
		if stalled {
			continue
		}
		unfrozen[f] = true
		for _, l := range f.Path {
			st, ok := links[l]
			if !ok {
				st = &linkState{residual: l.Capacity}
				links[l] = st
			}
			st.weight += f.Weight
		}
	}
	for len(unfrozen) > 0 {
		share := math.Inf(1)
		for l, st := range links {
			if st.weight <= 0 {
				delete(links, l)
				continue
			}
			if s := st.residual / st.weight; s < share {
				share = s
			}
		}
		var capped *Flow
		for f := range unfrozen {
			if f.MaxRate > 0 {
				if pw := f.MaxRate / f.Weight; pw < share {
					share = pw
					capped = f
				}
			}
		}
		if math.IsInf(share, 1) {
			for f := range unfrozen {
				rates[f] = 0
				delete(unfrozen, f)
			}
			break
		}
		if capped != nil {
			rates[capped] = capped.MaxRate
			for _, l := range capped.Path {
				st := links[l]
				st.residual -= capped.MaxRate
				if st.residual < 0 {
					st.residual = 0
				}
				st.weight -= capped.Weight
			}
			delete(unfrozen, capped)
			continue
		}
		froze := false
		for l, st := range links {
			if st.weight <= 0 {
				continue
			}
			if st.residual/st.weight > share+1e-12 {
				continue
			}
			for f := range unfrozen {
				onLink := false
				for _, fl := range f.Path {
					if fl == l {
						onLink = true
						break
					}
				}
				if !onLink {
					continue
				}
				r := share * f.Weight
				rates[f] = r
				for _, fl := range f.Path {
					fst := links[fl]
					fst.residual -= r
					if fst.residual < 0 {
						fst.residual = 0
					}
					fst.weight -= f.Weight
				}
				delete(unfrozen, f)
				froze = true
			}
		}
		if !froze {
			for f := range unfrozen {
				rates[f] = share * f.Weight
				delete(unfrozen, f)
			}
		}
	}
	return rates
}

// checkParity compares every active flow's incremental rate against the
// reference solver within 1e-9 relative tolerance.
func (n *Network) checkParity() {
	want := n.referenceRates()
	for _, f := range n.flows {
		w := want[f]
		diff := math.Abs(f.rate - w)
		tol := 1e-9 * math.Max(1, math.Max(math.Abs(f.rate), math.Abs(w)))
		if diff > tol {
			n.ParityMismatches++
			if n.ParityErr == "" {
				n.ParityErr = fmt.Sprintf("flow %s: incremental rate %v, reference %v at t=%v",
					f.ID, f.rate, w, n.Eng.Now())
			}
		}
	}
}

// OneWayDelay samples the path's one-way latency: propagation plus a
// uniform jitter draw per link.
func (n *Network) OneWayDelay(p topo.Path) time.Duration {
	d := p.Delay()
	for _, l := range p {
		if l.Jitter > 0 {
			d += time.Duration(n.Eng.Rand().Int63n(int64(l.Jitter)))
		}
	}
	return d
}

// Delivered samples whether a single datagram survives the path. A path
// crossing a failed link never delivers.
func (n *Network) Delivered(p topo.Path) bool {
	for _, l := range p {
		if !l.Up() {
			return false
		}
		if l.Loss > 0 && n.Eng.Rand().Float64() < l.Loss {
			return false
		}
	}
	return true
}

// RTT samples a round trip over the path (forward and reverse jitter drawn
// independently; the reverse path is assumed symmetric).
func (n *Network) RTT(p topo.Path) time.Duration {
	return n.OneWayDelay(p) + n.OneWayDelay(p)
}
