package netsim

import (
	"math"
	"testing"
	"time"

	"declnet/internal/sim"
	"declnet/internal/topo"
)

// line builds a graph a--b--c with given capacities (bits/s) on each hop.
func line(t *testing.T, capAB, capBC float64) *topo.Graph {
	t.Helper()
	g := topo.New()
	for _, id := range []topo.NodeID{"a", "b", "c"} {
		g.MustAddNode(topo.Node{ID: id})
	}
	g.MustConnect("ab", "a", "b", topo.Backbone, capAB, time.Millisecond, 0, 0)
	g.MustConnect("bc", "b", "c", topo.Backbone, capBC, time.Millisecond, 0, 0)
	return g
}

func path(t *testing.T, g *topo.Graph, src, dst topo.NodeID) topo.Path {
	t.Helper()
	p, err := g.ShortestPath(src, dst, topo.PathOpts{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSingleFlowGetsBottleneck(t *testing.T) {
	g := line(t, 100e6, 50e6)
	eng := sim.New(1)
	n := New(g, eng)
	var fct time.Duration
	// 50 Mbit over a 50 Mbps bottleneck = 1 second + 2ms propagation.
	_, err := n.StartFlow(&Flow{
		Path:   path(t, g, "a", "c"),
		Size:   50e6 / 8,
		OnDone: func(d time.Duration) { fct = d },
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	want := time.Second + 2*time.Millisecond
	if diff := fct - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("FCT = %v, want ~%v", fct, want)
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	g := line(t, 100e6, 100e6)
	eng := sim.New(1)
	n := New(g, eng)
	f1, _ := n.StartFlow(&Flow{Path: path(t, g, "a", "c"), Size: -1})
	f2, _ := n.StartFlow(&Flow{Path: path(t, g, "a", "c"), Size: -1})
	if math.Abs(f1.Rate()-50e6) > 1e3 || math.Abs(f2.Rate()-50e6) > 1e3 {
		t.Fatalf("rates = %v, %v; want 50Mbps each", f1.Rate(), f2.Rate())
	}
	n.Stop(f2)
	if math.Abs(f1.Rate()-100e6) > 1e3 {
		t.Fatalf("rate after departure = %v, want 100Mbps", f1.Rate())
	}
}

func TestWeightedShares(t *testing.T) {
	g := line(t, 90e6, 90e6)
	eng := sim.New(1)
	n := New(g, eng)
	f1, _ := n.StartFlow(&Flow{Path: path(t, g, "a", "c"), Size: -1, Weight: 2})
	f2, _ := n.StartFlow(&Flow{Path: path(t, g, "a", "c"), Size: -1, Weight: 1})
	if math.Abs(f1.Rate()-60e6) > 1e3 || math.Abs(f2.Rate()-30e6) > 1e3 {
		t.Fatalf("weighted rates = %v, %v; want 60/30 Mbps", f1.Rate(), f2.Rate())
	}
}

func TestMaxRateCapRedistributes(t *testing.T) {
	g := line(t, 100e6, 100e6)
	eng := sim.New(1)
	n := New(g, eng)
	f1, _ := n.StartFlow(&Flow{Path: path(t, g, "a", "c"), Size: -1, MaxRate: 10e6})
	f2, _ := n.StartFlow(&Flow{Path: path(t, g, "a", "c"), Size: -1})
	if math.Abs(f1.Rate()-10e6) > 1e3 {
		t.Fatalf("capped flow rate = %v, want 10Mbps", f1.Rate())
	}
	if math.Abs(f2.Rate()-90e6) > 1e3 {
		t.Fatalf("uncapped flow rate = %v, want 90Mbps (max-min redistribution)", f2.Rate())
	}
	n.SetMaxRate(f1, 0)
	if math.Abs(f1.Rate()-50e6) > 1e3 || math.Abs(f2.Rate()-50e6) > 1e3 {
		t.Fatalf("rates after uncapping = %v, %v", f1.Rate(), f2.Rate())
	}
}

func TestDistinctBottlenecks(t *testing.T) {
	// Classic max-min example: flows A (a->c) and B (b->c) share link bc;
	// flow C (a->b) uses only ab. With ab=100, bc=60:
	// A and B split bc 30/30; C gets ab's residual 70.
	g := line(t, 100e6, 60e6)
	eng := sim.New(1)
	n := New(g, eng)
	fA, _ := n.StartFlow(&Flow{Path: path(t, g, "a", "c"), Size: -1})
	fB, _ := n.StartFlow(&Flow{Path: path(t, g, "b", "c"), Size: -1})
	fC, _ := n.StartFlow(&Flow{Path: path(t, g, "a", "b"), Size: -1})
	if math.Abs(fA.Rate()-30e6) > 1e3 || math.Abs(fB.Rate()-30e6) > 1e3 {
		t.Fatalf("bottleneck shares = %v, %v; want 30Mbps each", fA.Rate(), fB.Rate())
	}
	if math.Abs(fC.Rate()-70e6) > 1e3 {
		t.Fatalf("residual share = %v, want 70Mbps", fC.Rate())
	}
}

func TestSequentialCompletions(t *testing.T) {
	// Two equal flows start together; after the first half completes the
	// survivor speeds up. 10Mbit each over shared 10Mbps: both at 5Mbps;
	// f1 is half the size so it finishes at t=1s, then f2 runs at 10Mbps
	// finishing its remaining 5Mbit at t=1.5s.
	g := line(t, 10e6, 10e6)
	eng := sim.New(1)
	n := New(g, eng)
	var fct1, fct2 time.Duration
	n.StartFlow(&Flow{Path: path(t, g, "a", "c"), Size: 5e6 / 8,
		OnDone: func(d time.Duration) { fct1 = d }})
	n.StartFlow(&Flow{Path: path(t, g, "a", "c"), Size: 10e6 / 8,
		OnDone: func(d time.Duration) { fct2 = d }})
	eng.Run()
	prop := 2 * time.Millisecond
	if diff := fct1 - (time.Second + prop); abs(diff) > 5*time.Millisecond {
		t.Fatalf("fct1 = %v, want ~1.002s", fct1)
	}
	if diff := fct2 - (1500*time.Millisecond + prop); abs(diff) > 5*time.Millisecond {
		t.Fatalf("fct2 = %v, want ~1.502s", fct2)
	}
}

func abs(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}

func TestStopPersistentFlow(t *testing.T) {
	g := line(t, 10e6, 10e6)
	eng := sim.New(1)
	n := New(g, eng)
	f, _ := n.StartFlow(&Flow{Path: path(t, g, "a", "c"), Size: -1})
	eng.RunUntil(time.Second)
	n.Stop(f)
	if f.Done() {
		t.Fatal("stopped flow reported done")
	}
	// ~10Mbit in 1s at 10Mbps.
	if got := f.SentBytes(); math.Abs(got-10e6/8) > 1e3 {
		t.Fatalf("SentBytes = %v, want ~1.25MB", got)
	}
	if n.Active() != 0 {
		t.Fatalf("Active = %d after stop", n.Active())
	}
	n.Stop(f) // double stop is a no-op
}

func TestFlowValidation(t *testing.T) {
	g := line(t, 10e6, 10e6)
	n := New(g, sim.New(1))
	if _, err := n.StartFlow(&Flow{Size: 1}); err == nil {
		t.Fatal("empty path accepted")
	}
	p := path(t, g, "a", "c")
	if _, err := n.StartFlow(&Flow{ID: "x", Path: p, Size: -1}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.StartFlow(&Flow{ID: "x", Path: p, Size: -1}); err == nil {
		t.Fatal("duplicate flow ID accepted")
	}
}

func TestOneWayDelayAndRTT(t *testing.T) {
	g := topo.New()
	g.MustAddNode(topo.Node{ID: "a"})
	g.MustAddNode(topo.Node{ID: "b"})
	g.MustConnect("ab", "a", "b", topo.Transit, 1e9, 10*time.Millisecond, 5*time.Millisecond, 0)
	eng := sim.New(1)
	n := New(g, eng)
	p := path(t, g, "a", "b")
	for i := 0; i < 100; i++ {
		d := n.OneWayDelay(p)
		if d < 10*time.Millisecond || d >= 15*time.Millisecond {
			t.Fatalf("OneWayDelay = %v outside [10ms,15ms)", d)
		}
		rtt := n.RTT(p)
		if rtt < 20*time.Millisecond || rtt >= 30*time.Millisecond {
			t.Fatalf("RTT = %v outside [20ms,30ms)", rtt)
		}
	}
}

func TestDelivered(t *testing.T) {
	g := topo.New()
	g.MustAddNode(topo.Node{ID: "a"})
	g.MustAddNode(topo.Node{ID: "b"})
	g.MustConnect("ab", "a", "b", topo.Transit, 1e9, time.Millisecond, 0, 0.5)
	eng := sim.New(7)
	n := New(g, eng)
	p := path(t, g, "a", "b")
	delivered := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		if n.Delivered(p) {
			delivered++
		}
	}
	frac := float64(delivered) / trials
	if frac < 0.47 || frac > 0.53 {
		t.Fatalf("delivery fraction = %v, want ~0.5", frac)
	}
}

// Fairness invariants on a random mesh: no link oversubscribed, and no
// flow's rate is below the equal share of its tightest link (max-min
// floor), and work conservation holds on saturated single-flow links.
func TestFairnessInvariants(t *testing.T) {
	g := topo.New()
	ids := []topo.NodeID{"a", "b", "c", "d", "e"}
	for _, id := range ids {
		g.MustAddNode(topo.Node{ID: id})
	}
	caps := []float64{80e6, 40e6, 120e6, 60e6}
	for i := 0; i+1 < len(ids); i++ {
		g.MustConnect(string(ids[i])+string(ids[i+1]), ids[i], ids[i+1],
			topo.Backbone, caps[i], time.Millisecond, 0, 0)
	}
	eng := sim.New(3)
	n := New(g, eng)
	var flows []*Flow
	pairs := [][2]topo.NodeID{{"a", "e"}, {"b", "d"}, {"a", "c"}, {"c", "e"}, {"b", "e"}, {"a", "b"}}
	for _, pr := range pairs {
		f, err := n.StartFlow(&Flow{Path: path(t, g, pr[0], pr[1]), Size: -1})
		if err != nil {
			t.Fatal(err)
		}
		flows = append(flows, f)
	}
	// Link load <= capacity.
	load := map[*topo.Link]float64{}
	for _, f := range flows {
		for _, l := range f.Path {
			load[l] += f.Rate()
		}
	}
	for l, ld := range load {
		if ld > l.Capacity*(1+1e-9) {
			t.Fatalf("link %s oversubscribed: %v > %v", l.ID, ld, l.Capacity)
		}
	}
	// Max-min floor: every flow gets at least min over its links of
	// capacity / (flows on that link).
	cnt := map[*topo.Link]int{}
	for _, f := range flows {
		for _, l := range f.Path {
			cnt[l]++
		}
	}
	for i, f := range flows {
		floor := math.Inf(1)
		for _, l := range f.Path {
			if s := l.Capacity / float64(cnt[l]); s < floor {
				floor = s
			}
		}
		if f.Rate() < floor*(1-1e-9) {
			t.Fatalf("flow %d rate %v below max-min floor %v", i, f.Rate(), floor)
		}
	}
}

func TestLinkFailureStallsAndResumes(t *testing.T) {
	g := line(t, 10e6, 10e6)
	eng := sim.New(1)
	n := New(g, eng)
	var fct time.Duration
	// 20 Mbit at 10 Mbps = 2s of service time; a 1s outage in the middle
	// stretches completion to ~3s.
	n.StartFlow(&Flow{Path: path(t, g, "a", "c"), Size: 20e6 / 8,
		OnDone: func(d time.Duration) { fct = d }})
	eng.After(time.Second, func() {
		if err := n.FailLink("bc"); err != nil {
			t.Error(err)
		}
	})
	eng.After(2*time.Second, func() {
		if err := n.RestoreLink("bc"); err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	want := 3 * time.Second
	if diff := fct - want; abs(diff) > 50*time.Millisecond {
		t.Fatalf("FCT with outage = %v, want ~%v", fct, want)
	}
}

func TestFailedLinkFreesCapacity(t *testing.T) {
	// Flows a->c and b->c share bc; failing ab stalls the first and the
	// survivor picks up the freed share.
	g := line(t, 10e6, 10e6)
	eng := sim.New(1)
	n := New(g, eng)
	f1, _ := n.StartFlow(&Flow{Path: path(t, g, "a", "c"), Size: -1})
	f2, _ := n.StartFlow(&Flow{Path: path(t, g, "b", "c"), Size: -1})
	if math.Abs(f1.Rate()-5e6) > 1e3 || math.Abs(f2.Rate()-5e6) > 1e3 {
		t.Fatalf("pre-failure rates = %v, %v", f1.Rate(), f2.Rate())
	}
	if err := n.FailLink("ab"); err != nil {
		t.Fatal(err)
	}
	if f1.Rate() != 0 {
		t.Fatalf("stalled flow rate = %v, want 0", f1.Rate())
	}
	if math.Abs(f2.Rate()-10e6) > 1e3 {
		t.Fatalf("survivor rate = %v, want 10Mbps", f2.Rate())
	}
	n.RestoreLink("ab")
	if math.Abs(f1.Rate()-5e6) > 1e3 {
		t.Fatalf("restored flow rate = %v, want 5Mbps", f1.Rate())
	}
}

func TestFailLinkValidationAndRouting(t *testing.T) {
	g := line(t, 10e6, 10e6)
	eng := sim.New(1)
	n := New(g, eng)
	if err := n.FailLink("nope"); err == nil {
		t.Fatal("failing unknown link succeeded")
	}
	if err := n.FailLink("bc"); err != nil {
		t.Fatal(err)
	}
	// Path search must route around (here: no alternative, so error).
	if _, err := g.ShortestPath("a", "c", topo.PathOpts{}); err == nil {
		t.Fatal("path found across failed link")
	}
	// Probes on a failed path never deliver.
	p := path(t, g, "a", "b")
	n.FailLink("ab")
	if n.Delivered(p) {
		t.Fatal("datagram delivered over failed link")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []float64 {
		g := line(t, 100e6, 60e6)
		eng := sim.New(99)
		n := New(g, eng)
		var fcts []float64
		for i := 0; i < 20; i++ {
			sz := float64(1+eng.Rand().Intn(10)) * 1e6
			eng.After(sim.Time(i)*100*time.Millisecond, func() {
				n.StartFlow(&Flow{Path: path(t, g, "a", "c"), Size: sz,
					OnDone: func(d time.Duration) { fcts = append(fcts, d.Seconds()) }})
			})
		}
		eng.Run()
		return fcts
	}
	a, b := run(), run()
	if len(a) != 20 || len(b) != 20 {
		t.Fatalf("completions = %d, %d; want 20 each", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at completion %d: %v vs %v", i, a[i], b[i])
		}
	}
}
