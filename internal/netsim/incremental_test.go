package netsim

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"declnet/internal/sim"
	"declnet/internal/topo"
)

// disjointLines builds n disjoint two-hop lines a_i--b_i--c_i, returning
// the graph and the a->c path of each line.
func disjointLines(t *testing.T, n int, capacity float64) (*topo.Graph, []topo.Path) {
	t.Helper()
	g := topo.New()
	paths := make([]topo.Path, n)
	for i := 0; i < n; i++ {
		a := topo.NodeID(fmt.Sprintf("a%d", i))
		b := topo.NodeID(fmt.Sprintf("b%d", i))
		c := topo.NodeID(fmt.Sprintf("c%d", i))
		for _, id := range []topo.NodeID{a, b, c} {
			g.MustAddNode(topo.Node{ID: id})
		}
		g.MustConnect(fmt.Sprintf("ab%d", i), a, b, topo.Backbone, capacity, time.Millisecond, 0, 0)
		g.MustConnect(fmt.Sprintf("bc%d", i), b, c, topo.Backbone, capacity, time.Millisecond, 0, 0)
		p, err := g.ShortestPath(a, c, topo.PathOpts{})
		if err != nil {
			t.Fatal(err)
		}
		paths[i] = p
	}
	return g, paths
}

// A burst of starts at one virtual timestamp must trigger one solve, not
// one per start (epoch batching).
func TestEpochBatchingCoalesces(t *testing.T) {
	g := line(t, 100e6, 100e6)
	eng := sim.New(1)
	n := New(g, eng)
	const burst = 50
	for i := 0; i < burst; i++ {
		eng.After(time.Millisecond, func() {
			if _, err := n.StartFlow(&Flow{Path: path(t, g, "a", "c"), Size: -1}); err != nil {
				t.Error(err)
			}
		})
	}
	eng.RunUntil(2 * time.Millisecond)
	if n.Recomputes != 1 {
		t.Fatalf("Recomputes = %d for a same-timestamp burst of %d starts, want 1", n.Recomputes, burst)
	}
	if n.FlowsTouched != burst {
		t.Fatalf("FlowsTouched = %d, want %d", n.FlowsTouched, burst)
	}
}

// Identical flows finishing at the same virtual nanosecond must complete
// in one batch: one reshare, not back-to-back reshares per OnDone.
func TestSameTimeCompletionsCoalesce(t *testing.T) {
	g := line(t, 80e6, 80e6)
	eng := sim.New(1)
	n := New(g, eng)
	const k = 8
	done := 0
	for i := 0; i < k; i++ {
		if _, err := n.StartFlow(&Flow{
			Path: path(t, g, "a", "c"), Size: 1e6,
			OnDone: func(time.Duration) { done++ },
		}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if done != k {
		t.Fatalf("completions = %d, want %d", done, k)
	}
	// One solve admits the batch, one resolves the simultaneous batch of
	// completions (an empty network, so it visits zero flows).
	if n.Recomputes != 2 {
		t.Fatalf("Recomputes = %d for %d same-time completions, want 2", n.Recomputes, k)
	}
}

// Events on one component must not touch flows in another: the dirty-set
// solver re-solves only the connected component of the touched links.
func TestDisjointComponentUntouched(t *testing.T) {
	g, paths := disjointLines(t, 2, 10e6)
	eng := sim.New(1)
	n := New(g, eng)
	fA, _ := n.StartFlow(&Flow{Path: paths[0], Size: -1})
	fB, _ := n.StartFlow(&Flow{Path: paths[1], Size: -1})
	_ = fA.Rate() // flush the admission batch
	base := n.FlowsTouched

	f2, err := n.StartFlow(&Flow{Path: paths[0], Size: -1})
	if err != nil {
		t.Fatal(err)
	}
	if r := f2.Rate(); r != 5e6 {
		t.Fatalf("new flow rate = %v, want 5Mbps", r)
	}
	if got := n.FlowsTouched - base; got != 2 {
		t.Fatalf("FlowsTouched delta = %d (component A only), want 2", got)
	}
	if r := fB.Rate(); r != 10e6 {
		t.Fatalf("untouched component rate = %v, want 10Mbps", fB.Rate())
	}
}

// randomWorld builds a 10-node chain plus a disjoint 5-node chain with
// seeded random capacities; flows run between random node pairs so the
// flow-link graph keeps merging and splitting components.
func randomWorld(t *testing.T, rng *rand.Rand) (*topo.Graph, []topo.NodeID, []topo.NodeID, []string) {
	t.Helper()
	g := topo.New()
	var main, side []topo.NodeID
	var pairs []string
	for i := 0; i < 10; i++ {
		id := topo.NodeID(fmt.Sprintf("n%d", i))
		g.MustAddNode(topo.Node{ID: id})
		main = append(main, id)
	}
	for i := 0; i+1 < len(main); i++ {
		id := fmt.Sprintf("l%d", i)
		g.MustConnect(id, main[i], main[i+1], topo.Backbone,
			float64(10+rng.Intn(90))*1e6, time.Millisecond, 0, 0)
		pairs = append(pairs, id)
	}
	for i := 0; i < 5; i++ {
		id := topo.NodeID(fmt.Sprintf("m%d", i))
		g.MustAddNode(topo.Node{ID: id})
		side = append(side, id)
	}
	for i := 0; i+1 < len(side); i++ {
		id := fmt.Sprintf("k%d", i)
		g.MustConnect(id, side[i], side[i+1], topo.Backbone,
			float64(10+rng.Intn(90))*1e6, time.Millisecond, 0, 0)
		pairs = append(pairs, id)
	}
	return g, main, side, pairs
}

// TestIncrementalParityRandom is the solver's property test: across 1k
// randomized start/stop/cap/fail/restore sequences the incremental rates
// must match the reference full solver within 1e-9 relative tolerance
// after every solve (CheckParity verifies each flush).
func TestIncrementalParityRandom(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			g, main, side, pairs := randomWorld(t, rng)
			eng := sim.New(seed)
			n := New(g, eng)
			n.CheckParity = true

			var active []*Flow
			downLinks := map[string]bool{}
			randPair := func(nodes []topo.NodeID) (topo.NodeID, topo.NodeID) {
				i := rng.Intn(len(nodes))
				j := rng.Intn(len(nodes))
				for j == i {
					j = rng.Intn(len(nodes))
				}
				if i > j {
					i, j = j, i
				}
				return nodes[i], nodes[j]
			}
			const events = 1000
			for i := 0; i < events; i++ {
				op := rng.Intn(10)
				eng.After(100*time.Microsecond, func() {
					// Drop flows that completed on their own.
					live := active[:0]
					for _, f := range active {
						if !f.Done() && f.net == n {
							live = append(live, f)
						}
					}
					active = live
					switch {
					case op < 4: // start
						nodes := main
						if rng.Intn(4) == 0 {
							nodes = side
						}
						src, dst := randPair(nodes)
						p, err := g.ShortestPath(src, dst, topo.PathOpts{})
						if err != nil {
							return // partitioned by a failed link
						}
						f := &Flow{Path: p, Size: -1, Weight: float64(1 + rng.Intn(3))}
						if rng.Intn(2) == 0 {
							f.Size = float64(1e5 + rng.Intn(1e7))
						}
						if rng.Intn(3) == 0 {
							f.MaxRate = float64(1+rng.Intn(50)) * 1e6
						}
						if started, err := n.StartFlow(f); err == nil {
							active = append(active, started)
						}
					case op < 6: // stop
						if len(active) > 0 {
							i := rng.Intn(len(active))
							n.Stop(active[i])
							active = append(active[:i], active[i+1:]...)
						}
					case op < 8: // cap change
						if len(active) > 0 {
							f := active[rng.Intn(len(active))]
							cap := 0.0
							if rng.Intn(3) > 0 {
								cap = float64(1+rng.Intn(80)) * 1e6
							}
							n.SetMaxRate(f, cap)
						}
					case op < 9: // fail
						id := pairs[rng.Intn(len(pairs))]
						if !downLinks[id] {
							if err := n.FailLink(id); err != nil {
								t.Error(err)
							}
							downLinks[id] = true
						}
					default: // restore
						for id := range downLinks {
							if err := n.RestoreLink(id); err != nil {
								t.Error(err)
							}
							delete(downLinks, id)
							break
						}
					}
				})
				eng.RunUntil(eng.Now() + 100*time.Microsecond)
			}
			eng.Run()
			if n.ParityMismatches != 0 {
				t.Fatalf("%d parity mismatches over %d events; first: %s",
					n.ParityMismatches, events, n.ParityErr)
			}
			if n.Recomputes == 0 {
				t.Fatal("no solves happened; the property test exercised nothing")
			}
		})
	}
}

// ForceFull must agree with the incremental solver (it is the fallback
// mode benchmarks compare against).
func TestForceFullMatchesIncremental(t *testing.T) {
	g, paths := disjointLines(t, 4, 20e6)
	eng := sim.New(1)
	n := New(g, eng)
	n.ForceFull = true
	n.CheckParity = true
	var flows []*Flow
	for i, p := range paths {
		f, err := n.StartFlow(&Flow{Path: p, Size: -1, Weight: float64(1 + i%2)})
		if err != nil {
			t.Fatal(err)
		}
		flows = append(flows, f)
	}
	for _, f := range flows {
		if f.Rate() == 0 {
			t.Fatalf("flow %s got no rate under ForceFull", f.ID)
		}
	}
	n.Stop(flows[0])
	_ = flows[1].Rate()
	if n.ParityMismatches != 0 {
		t.Fatalf("ForceFull parity mismatches: %s", n.ParityErr)
	}
}
