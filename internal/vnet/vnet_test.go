package vnet

import (
	"testing"

	"declnet/internal/addr"
	"declnet/internal/complexity"
)

func pfx(s string) addr.Prefix { return addr.MustParsePrefix(s) }
func ipa(s string) addr.IP     { return addr.MustParseIP(s) }

func anywhere() addr.Prefix { return pfx("0.0.0.0/0") }

func testVPC(t *testing.T) (*VPC, *complexity.Ledger) {
	t.Helper()
	var led complexity.Ledger
	v := NewVPC("vpc-1", pfx("10.0.0.0/16"), &led)
	if _, err := v.AddSubnet("sn-1", pfx("10.0.1.0/24"), false); err != nil {
		t.Fatal(err)
	}
	return v, &led
}

func TestSubnetValidation(t *testing.T) {
	v, _ := testVPC(t)
	if _, err := v.AddSubnet("bad", pfx("192.168.0.0/24"), false); err == nil {
		t.Fatal("subnet outside VPC CIDR accepted")
	}
	if _, err := v.AddSubnet("overlap", pfx("10.0.1.128/25"), false); err == nil {
		t.Fatal("overlapping subnet accepted")
	}
	if _, err := v.AddSubnet("sn-1", pfx("10.0.9.0/24"), false); err == nil {
		t.Fatal("duplicate subnet ID accepted")
	}
}

func TestLaunchInstanceAddressing(t *testing.T) {
	v, _ := testVPC(t)
	v.AddSecurityGroup(&SecurityGroup{ID: "sg-a"})
	i1, err := v.LaunchInstance("i-1", "sn-1", "sg-a")
	if err != nil {
		t.Fatal(err)
	}
	// First 4 addresses reserved: .0-.3, so first instance gets .4.
	if i1.PrivateIP != ipa("10.0.1.4") {
		t.Fatalf("first instance IP = %s, want 10.0.1.4", i1.PrivateIP)
	}
	if _, err := v.LaunchInstance("i-1", "sn-1"); err == nil {
		t.Fatal("duplicate instance ID accepted")
	}
	if _, err := v.LaunchInstance("i-2", "missing"); err == nil {
		t.Fatal("unknown subnet accepted")
	}
	if _, err := v.LaunchInstance("i-3", "sn-1", "missing-sg"); err == nil {
		t.Fatal("unknown security group accepted")
	}
	got, ok := v.InstanceByIP(i1.PrivateIP)
	if !ok || got.ID != "i-1" {
		t.Fatalf("InstanceByIP = %v,%v", got, ok)
	}
}

func TestTerminateInstanceReleasesIP(t *testing.T) {
	v, _ := testVPC(t)
	i1, _ := v.LaunchInstance("i-1", "sn-1")
	ip := i1.PrivateIP
	if err := v.TerminateInstance("i-1"); err != nil {
		t.Fatal(err)
	}
	if err := v.TerminateInstance("i-1"); err == nil {
		t.Fatal("double terminate succeeded")
	}
	if _, ok := v.InstanceByIP(ip); ok {
		t.Fatal("terminated instance still resolvable by IP")
	}
	i2, _ := v.LaunchInstance("i-2", "sn-1")
	if i2.PrivateIP != ip {
		t.Fatalf("released IP not reused: got %s, want %s", i2.PrivateIP, ip)
	}
}

func TestSGStatefulSemantics(t *testing.T) {
	v, _ := testVPC(t)
	// Web SG: ingress 443 from anywhere, egress nothing.
	v.AddSecurityGroup(&SecurityGroup{
		ID:      "web",
		Ingress: []SGRule{{Proto: TCP, PortFrom: 443, PortTo: 443, Source: anywhere()}},
	})
	inst, _ := v.LaunchInstance("i-1", "sn-1", "web")
	in := Packet{Src: ipa("203.0.113.5"), Dst: inst.PrivateIP, Proto: TCP, DstPort: 443}
	if at, ok := v.CanIngress(inst, in, nil); !ok {
		t.Fatalf("allowed ingress denied at %s", at)
	}
	bad := Packet{Src: ipa("203.0.113.5"), Dst: inst.PrivateIP, Proto: TCP, DstPort: 22}
	if _, ok := v.CanIngress(inst, bad, nil); ok {
		t.Fatal("port 22 ingress allowed by 443-only SG")
	}
	// Egress denied (no egress rules) — initiator direction only.
	out := Packet{Src: inst.PrivateIP, Dst: ipa("1.1.1.1"), Proto: TCP, DstPort: 80}
	if _, ok := v.CanEgress(inst, out, nil); ok {
		t.Fatal("egress allowed with no egress rules")
	}
}

func TestSGReferenceRule(t *testing.T) {
	v, _ := testVPC(t)
	v.AddSecurityGroup(&SecurityGroup{ID: "web", Egress: []SGRule{{Source: anywhere()}}})
	v.AddSecurityGroup(&SecurityGroup{
		ID:      "app",
		Ingress: []SGRule{{Proto: TCP, PortFrom: 8080, PortTo: 8080, SourceSG: "web"}},
	})
	web, _ := v.LaunchInstance("i-web", "sn-1", "web")
	app, _ := v.LaunchInstance("i-app", "sn-1", "app")
	pkt := Packet{Src: web.PrivateIP, Dst: app.PrivateIP, Proto: TCP, DstPort: 8080}
	if _, ok := v.CanIngress(app, pkt, v.GroupsOf(web.PrivateIP)); !ok {
		t.Fatal("SG-reference rule did not match member of web")
	}
	// A non-member source with the same port is denied.
	if _, ok := v.CanIngress(app, Packet{Src: ipa("10.0.1.99"), Dst: app.PrivateIP, Proto: TCP, DstPort: 8080}, nil); ok {
		t.Fatal("SG-reference rule matched non-member")
	}
}

func TestSGAnyProtoAndPortRange(t *testing.T) {
	var sg SecurityGroup
	sg.Ingress = []SGRule{{Proto: AnyProto, PortFrom: 1000, PortTo: 2000, Source: pfx("10.0.0.0/8")}}
	if !sg.AllowsIngress(UDP, 1500, ipa("10.9.9.9"), nil) {
		t.Fatal("AnyProto rule rejected UDP")
	}
	if sg.AllowsIngress(UDP, 2500, ipa("10.9.9.9"), nil) {
		t.Fatal("out-of-range port allowed")
	}
	if sg.AllowsIngress(UDP, 1500, ipa("11.0.0.1"), nil) {
		t.Fatal("out-of-prefix source allowed")
	}
	// PortTo == 0 means all ports.
	sg.Ingress = []SGRule{{Source: anywhere()}}
	if !sg.AllowsIngress(TCP, 9999, ipa("1.2.3.4"), nil) {
		t.Fatal("all-ports rule rejected")
	}
}

func TestNACLOrderingAndStatelessness(t *testing.T) {
	acl := &NACL{
		ID: "acl",
		Ingress: []NACLRule{
			{Num: 200, Action: Allow, CIDR: anywhere()},
			{Num: 100, Action: Deny, Proto: TCP, PortFrom: 22, PortTo: 22, CIDR: anywhere()},
		},
		Egress: []NACLRule{{Num: 100, Action: Allow, CIDR: anywhere()}},
	}
	// Rule 100 (deny 22) must be evaluated before rule 200 (allow all).
	if acl.AllowsIngress(TCP, 22, ipa("1.2.3.4")) {
		t.Fatal("deny rule 100 not applied first")
	}
	if !acl.AllowsIngress(TCP, 443, ipa("1.2.3.4")) {
		t.Fatal("allow rule 200 not applied")
	}
}

func TestNACLImplicitDeny(t *testing.T) {
	acl := &NACL{ID: "empty"}
	if acl.AllowsIngress(TCP, 80, ipa("1.2.3.4")) {
		t.Fatal("empty NACL allowed traffic (implicit deny missing)")
	}
}

func TestAllowAllNACL(t *testing.T) {
	acl := AllowAllNACL("x")
	if !acl.AllowsIngress(UDP, 53, ipa("8.8.8.8")) || !acl.AllowsEgress(TCP, 1, ipa("1.1.1.1")) {
		t.Fatal("AllowAllNACL denied traffic")
	}
}

func TestRouteTableLPM(t *testing.T) {
	rt := &RouteTable{ID: "rt"}
	rt.AddRoute(pfx("0.0.0.0/0"), Target{Kind: TIGW, ID: "igw-1"})
	rt.AddRoute(pfx("10.0.0.0/16"), Target{Kind: TLocal})
	rt.AddRoute(pfx("10.1.0.0/16"), Target{Kind: TPeering, ID: "pcx-1"})
	cases := []struct {
		dst  string
		want string
	}{
		{"10.0.5.5", "local"},
		{"10.1.5.5", "pcx:pcx-1"},
		{"8.8.8.8", "igw:igw-1"},
	}
	for _, c := range cases {
		tgt, ok := rt.Lookup(ipa(c.dst))
		if !ok || tgt.String() != c.want {
			t.Errorf("Lookup(%s) = %v,%v; want %s", c.dst, tgt, ok, c.want)
		}
	}
	if rt.Len() != 3 {
		t.Fatalf("Len = %d", rt.Len())
	}
}

func TestRouteFor(t *testing.T) {
	v, _ := testVPC(t)
	inst, _ := v.LaunchInstance("i-1", "sn-1")
	tgt, ok := v.RouteFor(inst, ipa("10.0.2.9"))
	if !ok || tgt.Kind != TLocal {
		t.Fatalf("intra-VPC route = %v,%v; want local", tgt, ok)
	}
	if _, ok := v.RouteFor(inst, ipa("8.8.8.8")); ok {
		t.Fatal("route to internet resolved without an IGW route")
	}
}

func TestComplexityAccounting(t *testing.T) {
	v, led := testVPC(t)
	v.AddSecurityGroup(&SecurityGroup{ID: "sg", Ingress: []SGRule{{Source: anywhere()}}})
	v.AddRoute("sn-1", pfx("0.0.0.0/0"), Target{Kind: TIGW, ID: "igw-1"})
	v.SetNACL("sn-1", AllowAllNACL("custom"))
	if led.BoxesOf("vpc") != 1 || led.BoxesOf("subnet") != 1 ||
		led.BoxesOf("security-group") != 1 || led.BoxesOf("nacl") != 1 {
		t.Fatalf("box accounting wrong: %s", led)
	}
	if led.Params() == 0 || led.Steps() == 0 || led.DecisionCount() == 0 {
		t.Fatalf("parameter/step accounting empty: %s", led)
	}
	_ = v
}

func TestVerdictHelpers(t *testing.T) {
	d := Deliver([]string{"a"})
	if !d.Delivered || d.String() != "delivered" {
		t.Fatal("Deliver verdict wrong")
	}
	n := Denied("sg:x", "no rule", []string{"a"})
	if n.Delivered || n.DeniedAt != "sg:x" {
		t.Fatal("Denied verdict wrong")
	}
	if n.String() == "" {
		t.Fatal("empty verdict string")
	}
}

func TestPacketString(t *testing.T) {
	p := Packet{Src: ipa("10.0.0.1"), Dst: ipa("10.0.0.2"), Proto: TCP, SrcPort: 1234, DstPort: 80}
	if p.String() != "10.0.0.1:1234->10.0.0.2:80/tcp" {
		t.Fatalf("Packet.String = %q", p.String())
	}
}
