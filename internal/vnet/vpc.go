package vnet

import (
	"fmt"

	"declnet/internal/addr"
	"declnet/internal/complexity"
	"declnet/internal/routing"
)

// TargetKind classifies where a VPC route points.
type TargetKind int

const (
	// TLocal delivers within the VPC.
	TLocal TargetKind = iota
	// TIGW sends to the VPC's internet gateway.
	TIGW
	// TEgressIGW sends to an egress-only internet gateway.
	TEgressIGW
	// TNAT sends to a NAT gateway.
	TNAT
	// TPeering sends over a VPC peering connection.
	TPeering
	// TTGW sends to a transit gateway attachment.
	TTGW
	// TVGW sends to a virtual private gateway (VPN to on-prem).
	TVGW
	// TBlackhole drops.
	TBlackhole
)

var targetNames = map[TargetKind]string{
	TLocal: "local", TIGW: "igw", TEgressIGW: "eigw", TNAT: "nat",
	TPeering: "pcx", TTGW: "tgw", TVGW: "vgw", TBlackhole: "blackhole",
}

func (k TargetKind) String() string { return targetNames[k] }

// Target is a route destination.
type Target struct {
	Kind TargetKind
	ID   string // gateway/peering identifier; "" for local and blackhole
}

func (t Target) String() string {
	if t.ID == "" {
		return t.Kind.String()
	}
	return fmt.Sprintf("%s:%s", t.Kind, t.ID)
}

// RouteTable maps destination prefixes to targets via LPM.
type RouteTable struct {
	ID   string
	trie routing.Trie[Target]
}

// AddRoute installs prefix -> target.
func (rt *RouteTable) AddRoute(p addr.Prefix, t Target) {
	rt.trie.Insert(p, t)
}

// Lookup resolves dst to a target.
func (rt *RouteTable) Lookup(dst addr.IP) (Target, bool) {
	return rt.trie.Lookup(dst)
}

// Len returns the number of routes.
func (rt *RouteTable) Len() int { return rt.trie.Len() }

// Subnet is a CIDR slice of a VPC with its own route table and NACL.
type Subnet struct {
	ID     string
	CIDR   addr.Prefix
	Public bool
	RT     *RouteTable
	ACL    *NACL
	pool   *addr.HostPool
}

// Instance is a VM/container endpoint inside a subnet.
type Instance struct {
	ID        string
	PrivateIP addr.IP
	// PublicIP is nonzero when the instance has an internet-routable
	// address mapped at the IGW.
	PublicIP addr.IP
	SubnetID string
	Groups   []string // security group IDs
}

// VPC is one isolated virtual network.
type VPC struct {
	ID   string
	CIDR addr.Prefix

	subnets   map[string]*Subnet
	sgs       map[string]*SecurityGroup
	instances map[string]*Instance
	byPrivIP  map[addr.IP]*Instance

	ledger *complexity.Ledger
}

// NewVPC creates a VPC, charging the ledger for the box and its CIDR and
// addressing decisions (§2 step 1 of the paper).
func NewVPC(id string, cidr addr.Prefix, ledger *complexity.Ledger) *VPC {
	ledger.Resource("vpc")
	ledger.Param("vpc", 2) // CIDR, name
	ledger.Decision()      // sizing/addressing decision
	return &VPC{
		ID:        id,
		CIDR:      cidr,
		subnets:   make(map[string]*Subnet),
		sgs:       make(map[string]*SecurityGroup),
		instances: make(map[string]*Instance),
		byPrivIP:  make(map[addr.IP]*Instance),
		ledger:    ledger,
	}
}

// Ledger returns the complexity ledger this VPC charges.
func (v *VPC) Ledger() *complexity.Ledger { return v.ledger }

// AddSubnet carves a subnet with a default-local route table and a
// permissive NACL (cloud defaults).
func (v *VPC) AddSubnet(id string, cidr addr.Prefix, public bool) (*Subnet, error) {
	if !v.CIDR.ContainsPrefix(cidr) {
		return nil, fmt.Errorf("vnet: subnet %s outside VPC %s CIDR %s", cidr, v.ID, v.CIDR)
	}
	for _, s := range v.subnets {
		if s.CIDR.Overlaps(cidr) {
			return nil, fmt.Errorf("vnet: subnet %s overlaps %s", cidr, s.CIDR)
		}
	}
	if _, ok := v.subnets[id]; ok {
		return nil, fmt.Errorf("vnet: duplicate subnet %q", id)
	}
	rt := &RouteTable{ID: id + "-rt"}
	rt.AddRoute(v.CIDR, Target{Kind: TLocal})
	s := &Subnet{
		ID: id, CIDR: cidr, Public: public,
		RT:   rt,
		ACL:  AllowAllNACL(id + "-acl"),
		pool: addr.NewHostPool(cidr, 4), // clouds reserve the first addresses
	}
	v.subnets[id] = s
	v.ledger.Resource("subnet")
	v.ledger.Param("subnet", 3) // CIDR, AZ/publicness, route table assoc
	v.ledger.Resource("route-table")
	v.ledger.Param("route-table", 1)
	return s, nil
}

// Subnet returns a subnet by ID.
func (v *VPC) Subnet(id string) (*Subnet, bool) {
	s, ok := v.subnets[id]
	return s, ok
}

// Subnets returns the subnet map (read-only use).
func (v *VPC) Subnets() map[string]*Subnet { return v.subnets }

// AddSecurityGroup registers a security group, charging per rule.
func (v *VPC) AddSecurityGroup(sg *SecurityGroup) error {
	if _, ok := v.sgs[sg.ID]; ok {
		return fmt.Errorf("vnet: duplicate security group %q", sg.ID)
	}
	v.sgs[sg.ID] = sg
	v.ledger.Resource("security-group")
	v.ledger.Param("security-group", len(sg.Ingress)+len(sg.Egress))
	return nil
}

// SecurityGroup returns a registered group by ID, or nil when absent.
func (v *VPC) SecurityGroup(id string) *SecurityGroup { return v.sgs[id] }

// SetNACL replaces a subnet's NACL, charging per rule.
func (v *VPC) SetNACL(subnetID string, acl *NACL) error {
	s, ok := v.subnets[subnetID]
	if !ok {
		return fmt.Errorf("vnet: unknown subnet %q", subnetID)
	}
	s.ACL = acl
	v.ledger.Resource("nacl")
	v.ledger.Param("nacl", len(acl.Ingress)+len(acl.Egress))
	return nil
}

// AddRoute installs a route in a subnet's table (one provisioning step +
// parameters, per the paper's step-3 complexity).
func (v *VPC) AddRoute(subnetID string, p addr.Prefix, t Target) error {
	s, ok := v.subnets[subnetID]
	if !ok {
		return fmt.Errorf("vnet: unknown subnet %q", subnetID)
	}
	s.RT.AddRoute(p, t)
	v.ledger.Step()
	v.ledger.Param("route-table", 2) // prefix + target
	return nil
}

// LaunchInstance allocates an address in the subnet and registers the
// instance with its security groups.
func (v *VPC) LaunchInstance(id, subnetID string, groups ...string) (*Instance, error) {
	s, ok := v.subnets[subnetID]
	if !ok {
		return nil, fmt.Errorf("vnet: unknown subnet %q", subnetID)
	}
	if _, ok := v.instances[id]; ok {
		return nil, fmt.Errorf("vnet: duplicate instance %q", id)
	}
	for _, g := range groups {
		if _, ok := v.sgs[g]; !ok {
			return nil, fmt.Errorf("vnet: unknown security group %q", g)
		}
	}
	ip, err := s.pool.Allocate()
	if err != nil {
		return nil, fmt.Errorf("launching %q: %w", id, err)
	}
	inst := &Instance{ID: id, PrivateIP: ip, SubnetID: subnetID, Groups: groups}
	v.instances[id] = inst
	v.byPrivIP[ip] = inst
	v.ledger.Param("instance-nic", 1+len(groups)) // subnet choice + SG attachments
	return inst, nil
}

// TerminateInstance releases the instance and its address.
func (v *VPC) TerminateInstance(id string) error {
	inst, ok := v.instances[id]
	if !ok {
		return fmt.Errorf("vnet: unknown instance %q", id)
	}
	s := v.subnets[inst.SubnetID]
	if err := s.pool.Release(inst.PrivateIP); err != nil {
		return err
	}
	delete(v.instances, id)
	delete(v.byPrivIP, inst.PrivateIP)
	return nil
}

// Instance returns an instance by ID.
func (v *VPC) Instance(id string) (*Instance, bool) {
	i, ok := v.instances[id]
	return i, ok
}

// InstanceByIP returns the instance owning a private address.
func (v *VPC) InstanceByIP(ip addr.IP) (*Instance, bool) {
	i, ok := v.byPrivIP[ip]
	return i, ok
}

// Instances returns the instance map (read-only use).
func (v *VPC) Instances() map[string]*Instance { return v.instances }

// groupSet returns the instance's security-group membership as a set, for
// SG-reference rule matching.
func (v *VPC) groupSet(inst *Instance) map[string]bool {
	set := make(map[string]bool, len(inst.Groups))
	for _, g := range inst.Groups {
		set[g] = true
	}
	return set
}

// CanEgress checks the initiator direction out of an instance: security
// groups (any group allowing suffices) then the subnet NACL.
func (v *VPC) CanEgress(inst *Instance, pkt Packet, peerGroups map[string]bool) (string, bool) {
	allowed := false
	for _, g := range inst.Groups {
		if v.sgs[g].AllowsEgress(pkt.Proto, pkt.DstPort, pkt.Dst, peerGroups) {
			allowed = true
			break
		}
	}
	if !allowed {
		return "sg-egress:" + inst.ID, false
	}
	s := v.subnets[inst.SubnetID]
	if !s.ACL.AllowsEgress(pkt.Proto, pkt.DstPort, pkt.Dst) {
		return "nacl-egress:" + s.ID, false
	}
	return "", true
}

// CanIngress checks delivery into an instance: subnet NACL then security
// groups.
func (v *VPC) CanIngress(inst *Instance, pkt Packet, peerGroups map[string]bool) (string, bool) {
	s := v.subnets[inst.SubnetID]
	if !s.ACL.AllowsIngress(pkt.Proto, pkt.DstPort, pkt.Src) {
		return "nacl-ingress:" + s.ID, false
	}
	for _, g := range inst.Groups {
		if v.sgs[g].AllowsIngress(pkt.Proto, pkt.DstPort, pkt.Src, peerGroups) {
			return "", true
		}
	}
	return "sg-ingress:" + inst.ID, false
}

// RouteFor resolves the packet's next target from the sender's subnet.
func (v *VPC) RouteFor(inst *Instance, dst addr.IP) (Target, bool) {
	return v.subnets[inst.SubnetID].RT.Lookup(dst)
}

// GroupsOf returns the group membership set of the instance that owns ip,
// or nil when unknown. Used for cross-instance SG-reference matching.
func (v *VPC) GroupsOf(ip addr.IP) map[string]bool {
	if inst, ok := v.byPrivIP[ip]; ok {
		return v.groupSet(inst)
	}
	return nil
}
