// Package vnet models the baseline tenant-facing virtual network layer the
// paper describes in §2: VPCs with CIDRs and subnets, stateful security
// groups, stateless network ACLs, and per-subnet route tables whose routes
// point at gateway abstractions. Package gateway builds the inter-VPC
// fabric on top; package cloudapi wraps both in per-provider facades.
//
// Every constructor and setter records its cost in a complexity.Ledger —
// the raw material for the paper's "boxes and knobs" experiments.
package vnet

import (
	"fmt"

	"declnet/internal/addr"
)

// Protocol is the transport protocol of a packet or rule.
type Protocol int

const (
	// AnyProto matches every protocol in rules.
	AnyProto Protocol = iota
	TCP
	UDP
	ICMP
)

var protoNames = map[Protocol]string{AnyProto: "any", TCP: "tcp", UDP: "udp", ICMP: "icmp"}

func (p Protocol) String() string { return protoNames[p] }

// Packet is the unit the reachability evaluator pushes through the fabric.
// Payload carries application-level content for DPI appliances to scan.
type Packet struct {
	Src     addr.IP
	Dst     addr.IP
	Proto   Protocol
	SrcPort int
	DstPort int
	Payload string
}

func (p Packet) String() string {
	return fmt.Sprintf("%s:%d->%s:%d/%s", p.Src, p.SrcPort, p.Dst, p.DstPort, p.Proto)
}

// Action is a rule verdict.
type Action int

const (
	Deny Action = iota
	Allow
)

func (a Action) String() string {
	if a == Allow {
		return "allow"
	}
	return "deny"
}

// Verdict is the outcome of pushing a packet through the fabric.
type Verdict struct {
	Delivered bool
	// DeniedAt identifies the component that dropped the packet
	// ("sg:web", "nacl:subnet-1", "no-route", "firewall:fw-1", ...).
	DeniedAt string
	// Reason is a human-readable explanation.
	Reason string
	// Hops lists the components traversed, for diagnostics and tests.
	Hops []string
}

// Delivered returns a success verdict with the given hops.
func Deliver(hops []string) Verdict {
	return Verdict{Delivered: true, Hops: hops}
}

// Denied returns a drop verdict.
func Denied(at, reason string, hops []string) Verdict {
	return Verdict{DeniedAt: at, Reason: reason, Hops: hops}
}

func (v Verdict) String() string {
	if v.Delivered {
		return "delivered"
	}
	return fmt.Sprintf("denied at %s: %s", v.DeniedAt, v.Reason)
}
