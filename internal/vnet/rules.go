package vnet

import (
	"sort"

	"declnet/internal/addr"
)

// SGRule is one security-group rule. Security groups are allow-only and
// stateful: only the connection initiator's direction is evaluated;
// return traffic is implicitly permitted (as in EC2).
type SGRule struct {
	Proto    Protocol
	PortFrom int
	PortTo   int
	// Source restricts matching peers by prefix. For ingress rules this
	// is the remote source; for egress rules the remote destination.
	Source addr.Prefix
	// SourceSG, when non-empty, matches peers that are members of the
	// referenced group instead of a prefix (the common "app tier allows
	// web tier" pattern).
	SourceSG string
}

func (r SGRule) matches(proto Protocol, port int, peer addr.IP, peerGroups map[string]bool) bool {
	if r.Proto != AnyProto && proto != AnyProto && r.Proto != proto {
		return false
	}
	if r.PortTo != 0 && (port < r.PortFrom || port > r.PortTo) {
		return false
	}
	if r.SourceSG != "" {
		return peerGroups[r.SourceSG]
	}
	return r.Source.Contains(peer)
}

// SecurityGroup is a stateful allow-list attached to instances.
type SecurityGroup struct {
	ID      string
	Ingress []SGRule
	Egress  []SGRule
}

// AllowsIngress reports whether traffic to port from peer may enter.
func (sg *SecurityGroup) AllowsIngress(proto Protocol, port int, peer addr.IP, peerGroups map[string]bool) bool {
	for _, r := range sg.Ingress {
		if r.matches(proto, port, peer, peerGroups) {
			return true
		}
	}
	return false
}

// AllowsEgress reports whether traffic toward peer:port may leave.
func (sg *SecurityGroup) AllowsEgress(proto Protocol, port int, peer addr.IP, peerGroups map[string]bool) bool {
	for _, r := range sg.Egress {
		if r.matches(proto, port, peer, peerGroups) {
			return true
		}
	}
	return false
}

// NACLRule is one numbered network-ACL rule. NACLs are ordered
// allow-or-deny lists evaluated lowest number first, and stateless: both
// directions of a connection are checked independently (as in EC2).
type NACLRule struct {
	Num      int
	Action   Action
	Proto    Protocol
	PortFrom int
	PortTo   int
	CIDR     addr.Prefix
}

// NACL is a stateless subnet-level ACL.
type NACL struct {
	ID      string
	Ingress []NACLRule
	Egress  []NACLRule
}

func evalNACL(rules []NACLRule, proto Protocol, port int, peer addr.IP) Action {
	sorted := append([]NACLRule(nil), rules...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Num < sorted[j].Num })
	for _, r := range sorted {
		if r.Proto != AnyProto && proto != AnyProto && r.Proto != proto {
			continue
		}
		if r.PortTo != 0 && (port < r.PortFrom || port > r.PortTo) {
			continue
		}
		if !r.CIDR.Contains(peer) {
			continue
		}
		return r.Action
	}
	return Deny // implicit final deny, as in EC2
}

// AllowsIngress evaluates the ingress direction against the remote peer.
func (n *NACL) AllowsIngress(proto Protocol, port int, peer addr.IP) bool {
	return evalNACL(n.Ingress, proto, port, peer) == Allow
}

// AllowsEgress evaluates the egress direction against the remote peer.
func (n *NACL) AllowsEgress(proto Protocol, port int, peer addr.IP) bool {
	return evalNACL(n.Egress, proto, port, peer) == Allow
}

// AllowAllNACL returns a permissive NACL (the cloud default).
func AllowAllNACL(id string) *NACL {
	all := addr.MustParsePrefix("0.0.0.0/0")
	return &NACL{
		ID:      id,
		Ingress: []NACLRule{{Num: 100, Action: Allow, CIDR: all}},
		Egress:  []NACLRule{{Num: 100, Action: Allow, CIDR: all}},
	}
}
