package fault

import (
	"testing"
	"time"

	"declnet/internal/netsim"
	"declnet/internal/sim"
	"declnet/internal/topo"
)

// diamond builds a -- b -- d plus a -- c -- d so a..d has a backup path.
func diamond(t *testing.T) *topo.Graph {
	t.Helper()
	g := topo.New()
	for _, id := range []topo.NodeID{"a", "b", "c", "d"} {
		g.MustAddNode(topo.Node{ID: id, Provider: "p", Region: "r1", Kind: topo.Host})
	}
	g.MustConnect("ab", "a", "b", topo.Backbone, 100e6, time.Millisecond, 0, 0)
	g.MustConnect("bd", "b", "d", topo.Backbone, 100e6, time.Millisecond, 0, 0)
	g.MustConnect("ac", "a", "c", topo.Backbone, 100e6, 2*time.Millisecond, 0, 0)
	g.MustConnect("cd", "c", "d", topo.Backbone, 100e6, 2*time.Millisecond, 0, 0)
	return g
}

func TestLinkFailureStallsAndRecoveryResumes(t *testing.T) {
	g := diamond(t)
	eng := sim.New(1)
	net := netsim.New(g, eng)
	inj := NewInjector(eng, g, net)

	p, err := g.ShortestPath("a", "d", topo.PathOpts{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := net.StartFlow(&netsim.Flow{Path: p, Size: -1})
	if err != nil {
		t.Fatal(err)
	}
	if f.Rate() != 100e6 {
		t.Fatalf("initial rate = %v, want 100e6", f.Rate())
	}
	eng.Schedule(time.Second, func() {
		if err := inj.FailLink("bd"); err != nil {
			t.Error(err)
		}
	})
	eng.Schedule(2*time.Second, func() {
		if f.Rate() != 0 || !f.Stalled() {
			t.Errorf("during failure: rate=%v stalled=%v, want 0/true", f.Rate(), f.Stalled())
		}
	})
	eng.Schedule(3*time.Second, func() {
		if err := inj.RestoreLink("bd"); err != nil {
			t.Error(err)
		}
	})
	eng.RunUntil(4 * time.Second)
	if f.Rate() != 100e6 || f.Stalled() {
		t.Fatalf("after recovery: rate=%v stalled=%v, want 100e6/false", f.Rate(), f.Stalled())
	}
	if inj.LinkFailures != 1 || inj.Recoveries != 1 {
		t.Fatalf("counters = %d failures / %d recoveries, want 1/1", inj.LinkFailures, inj.Recoveries)
	}
}

func TestStallTimeoutKillsFlows(t *testing.T) {
	g := diamond(t)
	eng := sim.New(1)
	net := netsim.New(g, eng)
	inj := NewInjector(eng, g, net)
	inj.StallTimeout = 500 * time.Millisecond

	p, _ := g.ShortestPath("a", "d", topo.PathOpts{})
	killed := false
	f, err := net.StartFlow(&netsim.Flow{Path: p, Size: -1, OnKilled: func() { killed = true }})
	if err != nil {
		t.Fatal(err)
	}
	eng.Schedule(time.Second, func() { inj.FailLink("bd") })
	// Heal after the stall timeout has already fired.
	eng.Schedule(2*time.Second, func() { inj.RestoreLink("bd") })
	eng.RunUntil(3 * time.Second)
	if !killed || !f.Done() {
		t.Fatalf("killed=%v done=%v, want true/true", killed, f.Done())
	}
	if inj.FlowsKilled != 1 {
		t.Fatalf("FlowsKilled = %d, want 1", inj.FlowsKilled)
	}
}

func TestStallTimeoutSparesFlowsThatHeal(t *testing.T) {
	g := diamond(t)
	eng := sim.New(1)
	net := netsim.New(g, eng)
	inj := NewInjector(eng, g, net)
	inj.StallTimeout = 2 * time.Second

	p, _ := g.ShortestPath("a", "d", topo.PathOpts{})
	f, _ := net.StartFlow(&netsim.Flow{Path: p, Size: -1})
	eng.Schedule(time.Second, func() { inj.FailLink("bd") })
	// Heal before the timeout: the flow must survive and resume.
	eng.Schedule(2*time.Second, func() { inj.RestoreLink("bd") })
	eng.RunUntil(4 * time.Second)
	if f.Done() || f.Rate() != 100e6 {
		t.Fatalf("done=%v rate=%v, want false/100e6", f.Done(), f.Rate())
	}
	if inj.FlowsKilled != 0 {
		t.Fatalf("FlowsKilled = %d, want 0", inj.FlowsKilled)
	}
}

func TestNodeFailureComposesWithRegionFailure(t *testing.T) {
	g := diamond(t)
	eng := sim.New(1)
	inj := NewInjector(eng, g, nil)

	if err := inj.FailNode("b"); err != nil {
		t.Fatal(err)
	}
	if inj.NodeUp("b") || inj.Reachable("b") {
		t.Fatal("b should be down after FailNode")
	}
	if l, _ := g.Link("ab:fwd"); l.Up() {
		t.Fatal("ab:fwd should be down with b down")
	}
	if err := inj.FailRegion("p", "r1"); err != nil {
		t.Fatal(err)
	}
	if inj.NodeUp("a") || inj.NodeUp("c") {
		t.Fatal("region failure should down every node")
	}
	// Region heal: b stays down (its direct failure still holds).
	if err := inj.RestoreRegion("p", "r1"); err != nil {
		t.Fatal(err)
	}
	if !inj.NodeUp("a") || !inj.NodeUp("c") || !inj.NodeUp("d") {
		t.Fatal("region heal should restore a, c, d")
	}
	if inj.NodeUp("b") {
		t.Fatal("b must stay down until its direct restore")
	}
	if l, _ := g.Link("ab:fwd"); l.Up() {
		t.Fatal("ab:fwd must stay down while b is down")
	}
	if err := inj.RestoreNode("b"); err != nil {
		t.Fatal(err)
	}
	if !inj.NodeUp("b") {
		t.Fatal("b should be up after both causes lift")
	}
	if l, _ := g.Link("ab:fwd"); !l.Up() {
		t.Fatal("ab:fwd should heal with b")
	}
}

func TestFaultOpsAreIdempotent(t *testing.T) {
	g := diamond(t)
	eng := sim.New(1)
	inj := NewInjector(eng, g, nil)

	inj.FailLink("ab")
	inj.FailLink("ab")
	if inj.LinkFailures != 1 {
		t.Fatalf("LinkFailures = %d, want 1 (idempotent)", inj.LinkFailures)
	}
	inj.RestoreLink("ab")
	inj.RestoreLink("ab")
	if inj.Recoveries != 1 {
		t.Fatalf("Recoveries = %d, want 1 (idempotent)", inj.Recoveries)
	}
	if l, _ := g.Link("ab:fwd"); !l.Up() {
		t.Fatal("ab:fwd should be up after balanced fail/restore")
	}
	if err := inj.FailLink("nope"); err == nil {
		t.Fatal("failing an unknown pair should error")
	}
	if err := inj.FailNode("nope"); err == nil {
		t.Fatal("failing an unknown node should error")
	}
	if err := inj.FailRegion("p", "nope"); err == nil {
		t.Fatal("failing an empty region should error")
	}
}

func TestScheduleAppliesInOrder(t *testing.T) {
	g := diamond(t)
	eng := sim.New(1)
	net := netsim.New(g, eng)
	inj := NewInjector(eng, g, net)

	inj.Apply(Schedule{
		{At: 2 * time.Second, Kind: LinkUp, Target: "bd"},
		{At: time.Second, Kind: LinkDown, Target: "bd"},
		{At: 3 * time.Second, Kind: NodeDown, Target: "c"},
		{At: 4 * time.Second, Kind: NodeUp, Target: "c"},
		{At: 5 * time.Second, Kind: RegionDown, Target: "p/r1"},
		{At: 6 * time.Second, Kind: RegionUp, Target: "p/r1"},
	})
	eng.Schedule(1500*time.Millisecond, func() {
		if inj.LinkUp("bd:fwd") {
			t.Error("bd should be down at t=1.5s")
		}
	})
	eng.Schedule(3500*time.Millisecond, func() {
		if !inj.LinkUp("bd:fwd") {
			t.Error("bd should be back at t=3.5s")
		}
		if inj.NodeUp("c") {
			t.Error("c should be down at t=3.5s")
		}
	})
	eng.Schedule(5500*time.Millisecond, func() {
		if inj.Reachable("a") {
			t.Error("a should be unreachable during region partition")
		}
	})
	eng.RunUntil(7 * time.Second)
	if !inj.NodeUp("a") || !inj.NodeUp("b") || !inj.NodeUp("c") || !inj.NodeUp("d") {
		t.Fatal("everything should be healed at the end of the drill")
	}
	if inj.RegionFailures != 1 || inj.NodeFailures != 1 || inj.LinkFailures != 1 {
		t.Fatalf("counters link=%d node=%d region=%d, want 1/1/1",
			inj.LinkFailures, inj.NodeFailures, inj.RegionFailures)
	}
}
