// Package fault is the failure-injection subsystem: it takes links,
// nodes, and whole provider regions out of service (and back) as
// first-class events of the discrete-event simulation, so the provider
// control plane's resilience story — SIP failover, permit-plane retry,
// quota re-sharing — can be drilled instead of assumed.
//
// Failures compose by reference counting at two levels. A node may be
// down because it was failed directly and because its region was failed;
// it comes back only when every cause is lifted. A directed link may be
// down because it was failed as a pair and because either endpoint node
// is down. The data plane reacts through the incremental fair-share
// solver's dirty-set machinery (stalled flows pin at rate 0, or are
// killed after StallTimeout); the control plane observes failures only
// the way a real provider would — via reachability probes against the
// injector — never by callback from the failure itself.
package fault

import (
	"fmt"
	"sort"
	"strings"

	"declnet/internal/netsim"
	"declnet/internal/sim"
	"declnet/internal/topo"
)

// Kind classifies a scheduled fault event.
type Kind int

const (
	// LinkDown / LinkUp fail and restore both directions of a link pair
	// (Target is the pair ID used with topo.Connect).
	LinkDown Kind = iota
	LinkUp
	// NodeDown / NodeUp fail and restore a node (Target is the NodeID);
	// every incident directed link goes with it.
	NodeDown
	NodeUp
	// RegionDown / RegionUp fail and restore every node of a provider
	// region (Target is "provider/region").
	RegionDown
	RegionUp
)

var kindNames = map[Kind]string{
	LinkDown: "link-down", LinkUp: "link-up",
	NodeDown: "node-down", NodeUp: "node-up",
	RegionDown: "region-down", RegionUp: "region-up",
}

func (k Kind) String() string { return kindNames[k] }

// Event is one scheduled failure or recovery.
type Event struct {
	At     sim.Time
	Kind   Kind
	Target string
}

// Schedule is a deterministic failure drill: events applied in At order
// (ties broken by schedule position).
type Schedule []Event

// Injector owns failure state for one simulated world.
type Injector struct {
	eng *sim.Engine
	g   *topo.Graph
	net *netsim.Network

	// StallTimeout, when positive, kills flows that are still stalled on
	// a failed link this long after the failure (the "or kills affected
	// flows" half of the failure model). Zero leaves flows pinned at
	// rate 0 until the link heals.
	StallTimeout sim.Time

	// nodeFaults counts reasons a node is down (direct + region).
	nodeFaults map[topo.NodeID]int
	// directDown counts direct FailNode causes only, so Cause can tell
	// "this node was failed" apart from "its whole region was failed".
	directDown map[topo.NodeID]int
	// linkFaults counts reasons a directed link is down (pair fault +
	// one per down endpoint node).
	linkFaults map[string]int
	// pairsDown marks pairs explicitly failed with FailLink.
	pairsDown map[string]bool
	// regionsDown marks regions explicitly failed with FailRegion.
	regionsDown map[string]bool

	// Counters for experiment tables.
	LinkFailures   uint64
	NodeFailures   uint64
	RegionFailures uint64
	Recoveries     uint64
	FlowsKilled    uint64
}

// NewInjector returns an injector over the world. The network may be nil
// when only reachability bookkeeping is wanted (control-plane tests).
func NewInjector(eng *sim.Engine, g *topo.Graph, net *netsim.Network) *Injector {
	return &Injector{
		eng: eng, g: g, net: net,
		nodeFaults:  make(map[topo.NodeID]int),
		directDown:  make(map[topo.NodeID]int),
		linkFaults:  make(map[string]int),
		pairsDown:   make(map[string]bool),
		regionsDown: make(map[string]bool),
	}
}

// ---- Queries (what the control plane is allowed to see) ----------------

// NodeUp reports whether the node itself is in service.
func (in *Injector) NodeUp(id topo.NodeID) bool { return in.nodeFaults[id] == 0 }

// LinkUp reports whether a directed link is in service.
func (in *Injector) LinkUp(id string) bool { return in.linkFaults[id] == 0 }

// Reachable reports whether a node is up and has at least one working
// egress link — the liveness signal provider health checks consume.
func (in *Injector) Reachable(id topo.NodeID) bool {
	if in.nodeFaults[id] != 0 {
		return false
	}
	out := in.g.Out(id)
	if len(out) == 0 {
		return true
	}
	for _, l := range out {
		if in.linkFaults[l.ID] == 0 {
			return true
		}
	}
	return false
}

// Cause explains why a node is unreachable, as ordered cause-chain links
// ("node-down:<id>", "region-down:<provider>/<region>", "link-down:<pair>")
// suitable for obs.Chain. A reachable node yields nil. This is the
// injector's contribution to GET /v1/explain: the control plane normally
// sees only the boolean Reachable; diagnosis gets the ground truth.
func (in *Injector) Cause(id topo.NodeID) []string {
	var out []string
	if in.nodeFaults[id] > 0 {
		if in.directDown[id] > 0 {
			out = append(out, "node-down:"+string(id))
		}
		if n, ok := in.g.Node(id); ok && n.Provider != "" {
			if key := n.Provider + "/" + n.Region; in.regionsDown[key] {
				out = append(out, "region-down:"+key)
			}
		}
		if len(out) == 0 {
			// Down only transitively (e.g. a region restore raced a direct
			// fail count); still name the node.
			out = append(out, "node-down:"+string(id))
		}
		return out
	}
	// Node itself is up: unreachability can only come from dead egress.
	links := in.g.Out(id)
	if len(links) == 0 {
		return nil
	}
	seen := make(map[string]bool)
	allDown := true
	for _, l := range links {
		if in.linkFaults[l.ID] == 0 {
			allDown = false
			continue
		}
		pair := strings.TrimSuffix(strings.TrimSuffix(l.ID, ":fwd"), ":rev")
		if in.pairsDown[pair] && !seen[pair] {
			seen[pair] = true
			out = append(out, "link-down:"+pair)
		}
	}
	if !allDown {
		return nil
	}
	sort.Strings(out)
	return out
}

// ---- Immediate fault operations ----------------------------------------

// FailLink takes both directions of a link pair out of service.
// Idempotent: failing an already-failed pair is a no-op.
func (in *Injector) FailLink(pairID string) error {
	if in.pairsDown[pairID] {
		return nil
	}
	if _, ok := in.g.Link(pairID + ":fwd"); !ok {
		return fmt.Errorf("fault: unknown link pair %q", pairID)
	}
	in.pairsDown[pairID] = true
	in.LinkFailures++
	in.batch(func() {
		in.addLinkFault(pairID+":fwd", 1)
		in.addLinkFault(pairID+":rev", 1)
	})
	return nil
}

// RestoreLink returns a failed link pair to service. Restoring a pair
// that is not explicitly failed is a no-op.
func (in *Injector) RestoreLink(pairID string) error {
	if !in.pairsDown[pairID] {
		return nil
	}
	delete(in.pairsDown, pairID)
	in.Recoveries++
	in.batch(func() {
		in.addLinkFault(pairID+":fwd", -1)
		in.addLinkFault(pairID+":rev", -1)
	})
	return nil
}

// FailNode takes a node out of service: the node is marked down and every
// incident directed link gains a fault. Idempotent per cause.
func (in *Injector) FailNode(id topo.NodeID) error {
	if _, ok := in.g.Node(id); !ok {
		return fmt.Errorf("fault: unknown node %q", id)
	}
	in.NodeFailures++
	in.directDown[id]++
	in.batch(func() { in.addNodeFault(id, 1) })
	return nil
}

// RestoreNode lifts one direct node failure.
func (in *Injector) RestoreNode(id topo.NodeID) error {
	if _, ok := in.g.Node(id); !ok {
		return fmt.Errorf("fault: unknown node %q", id)
	}
	if in.nodeFaults[id] == 0 {
		return nil
	}
	in.Recoveries++
	if in.directDown[id] > 0 {
		if in.directDown[id]--; in.directDown[id] == 0 {
			delete(in.directDown, id)
		}
	}
	in.batch(func() { in.addNodeFault(id, -1) })
	return nil
}

// FailRegion partitions an entire provider region: every node in it goes
// down. Idempotent: a region already failed is a no-op.
func (in *Injector) FailRegion(provider, region string) error {
	key := provider + "/" + region
	if in.regionsDown[key] {
		return nil
	}
	nodes := in.g.NodesOf(provider, region)
	if len(nodes) == 0 {
		return fmt.Errorf("fault: no nodes in region %s/%s", provider, region)
	}
	in.regionsDown[key] = true
	in.RegionFailures++
	in.batch(func() {
		for _, n := range nodes {
			in.addNodeFault(n.ID, 1)
		}
	})
	return nil
}

// RestoreRegion heals a partitioned region. Nodes also failed directly
// stay down until their own restore.
func (in *Injector) RestoreRegion(provider, region string) error {
	key := provider + "/" + region
	if !in.regionsDown[key] {
		return nil
	}
	delete(in.regionsDown, key)
	in.Recoveries++
	in.batch(func() {
		for _, n := range in.g.NodesOf(provider, region) {
			in.addNodeFault(n.ID, -1)
		}
	})
	return nil
}

// ---- Scheduling --------------------------------------------------------

// Apply schedules every event of a drill at its absolute virtual time.
// Events in the past are an error (as with the engine itself).
func (in *Injector) Apply(s Schedule) {
	ordered := append(Schedule(nil), s...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].At < ordered[j].At })
	for _, ev := range ordered {
		ev := ev
		in.eng.Schedule(ev.At, func() {
			if err := in.apply(ev); err != nil {
				panic(fmt.Sprintf("fault: applying %s %q: %v", ev.Kind, ev.Target, err))
			}
		})
	}
}

func (in *Injector) apply(ev Event) error {
	switch ev.Kind {
	case LinkDown:
		return in.FailLink(ev.Target)
	case LinkUp:
		return in.RestoreLink(ev.Target)
	case NodeDown:
		return in.FailNode(topo.NodeID(ev.Target))
	case NodeUp:
		return in.RestoreNode(topo.NodeID(ev.Target))
	case RegionDown, RegionUp:
		provider, region, ok := splitRegion(ev.Target)
		if !ok {
			return fmt.Errorf("fault: region target %q is not provider/region", ev.Target)
		}
		if ev.Kind == RegionDown {
			return in.FailRegion(provider, region)
		}
		return in.RestoreRegion(provider, region)
	default:
		return fmt.Errorf("fault: unknown event kind %d", ev.Kind)
	}
}

func splitRegion(target string) (provider, region string, ok bool) {
	for i := 0; i < len(target); i++ {
		if target[i] == '/' {
			return target[:i], target[i+1:], i > 0 && i < len(target)-1
		}
	}
	return "", "", false
}

// ---- Internals ---------------------------------------------------------

// batch runs one compound fault mutation inside a graph coalescing
// window: every directed-link transition it cascades into (a region
// failure fans out to hundreds) advances each epoch counter once, so
// the path cache pays one invalidation per fault event — mirroring the
// solver's same-timestamp event batching on the data plane.
func (in *Injector) batch(fn func()) {
	in.g.BeginBatch()
	defer in.g.EndBatch()
	fn()
}

func (in *Injector) addNodeFault(id topo.NodeID, delta int) {
	before := in.nodeFaults[id]
	after := before + delta
	if after < 0 {
		after = 0
	}
	if after == 0 {
		delete(in.nodeFaults, id)
	} else {
		in.nodeFaults[id] = after
	}
	// A node's links fault with its first cause and heal with its last.
	if (before == 0) == (after == 0) {
		return
	}
	for _, l := range in.g.Incident(id) {
		in.addLinkFault(l.ID, delta)
	}
}

func (in *Injector) addLinkFault(id string, delta int) {
	before := in.linkFaults[id]
	after := before + delta
	if after < 0 {
		after = 0
	}
	if after == 0 {
		delete(in.linkFaults, id)
	} else {
		in.linkFaults[id] = after
	}
	if (before == 0) == (after == 0) {
		return
	}
	up := after == 0
	if in.net != nil {
		if !up && in.StallTimeout > 0 {
			// Capture the victims before the failure lands; kill the ones
			// still stalled when the timeout expires.
			victims := in.net.FlowsOn(id)
			in.eng.After(in.StallTimeout, func() {
				for _, f := range victims {
					if !f.Done() && f.Stalled() {
						in.FlowsKilled++
						in.net.Kill(f)
					}
				}
			})
		}
		if err := in.net.SetLinkUp(id, up); err != nil {
			panic(fmt.Sprintf("fault: link %q: %v", id, err))
		}
	} else if err := in.g.SetLinkUp(id, up); err != nil {
		panic(fmt.Sprintf("fault: link %q: %v", id, err))
	}
}
