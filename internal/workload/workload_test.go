package workload

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestChurnTraceShape(t *testing.T) {
	cfg := ChurnConfig{Tenants: 5, LaunchRate: 10, MeanLifetime: 30 * time.Second, Horizon: time.Minute}
	ev := ChurnTrace(42, cfg)
	if len(ev) == 0 {
		t.Fatal("empty trace")
	}
	launches, teardowns := 0, 0
	live := map[string]bool{}
	var last time.Duration
	for _, e := range ev {
		if e.At < last {
			t.Fatal("trace not time-sorted")
		}
		last = e.At
		if e.At >= cfg.Horizon {
			t.Fatalf("event beyond horizon: %v", e.At)
		}
		switch e.Kind {
		case Launch:
			if live[e.Instance] {
				t.Fatalf("double launch of %s", e.Instance)
			}
			live[e.Instance] = true
			launches++
		case Teardown:
			if !live[e.Instance] {
				t.Fatalf("teardown of non-live %s", e.Instance)
			}
			delete(live, e.Instance)
			teardowns++
		}
	}
	// ~10/s over 60s: expect within generous Poisson bounds.
	if launches < 400 || launches > 800 {
		t.Fatalf("launches = %d, want ~600", launches)
	}
	if teardowns > launches {
		t.Fatal("more teardowns than launches")
	}
}

func TestChurnDeterminism(t *testing.T) {
	cfg := ChurnConfig{Tenants: 2, LaunchRate: 5, MeanLifetime: 10 * time.Second, Horizon: 20 * time.Second}
	a := ChurnTrace(7, cfg)
	b := ChurnTrace(7, cfg)
	if len(a) != len(b) {
		t.Fatal("non-deterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d", i)
		}
	}
	c := ChurnTrace(8, cfg)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestCommMatrix(t *testing.T) {
	pairs := CommMatrix(1, 50, 3, 1.2)
	if len(pairs) != 50*3 {
		t.Fatalf("pairs = %d, want 150", len(pairs))
	}
	perSrc := map[int]map[int]bool{}
	for _, p := range pairs {
		if p.Src == p.Dst {
			t.Fatal("self-communication pair")
		}
		if p.Dst < 0 || p.Dst >= 50 {
			t.Fatalf("dst out of range: %d", p.Dst)
		}
		if perSrc[p.Src] == nil {
			perSrc[p.Src] = map[int]bool{}
		}
		if perSrc[p.Src][p.Dst] {
			t.Fatalf("duplicate peer %d for src %d", p.Dst, p.Src)
		}
		perSrc[p.Src][p.Dst] = true
	}
	// Zipf skew: endpoint 0/1 should be far more popular than endpoint 49.
	pop := map[int]int{}
	for _, p := range pairs {
		pop[p.Dst]++
	}
	if pop[0]+pop[1] <= pop[48]+pop[49] {
		t.Fatalf("no popularity skew: head=%d tail=%d", pop[0]+pop[1], pop[48]+pop[49])
	}
}

func TestCommMatrixEdgeCases(t *testing.T) {
	if CommMatrix(1, 1, 3, 1.2) != nil {
		t.Fatal("n=1 should produce no pairs")
	}
	pairs := CommMatrix(1, 3, 10, 1.2) // k clamped to n-1
	if len(pairs) != 3*2 {
		t.Fatalf("clamped pairs = %d, want 6", len(pairs))
	}
}

func TestArrivals(t *testing.T) {
	ar := Arrivals(3, 100, time.Second)
	if len(ar) < 60 || len(ar) > 150 {
		t.Fatalf("arrivals = %d, want ~100", len(ar))
	}
	for i := 1; i < len(ar); i++ {
		if ar[i] <= ar[i-1] {
			t.Fatal("arrivals not strictly increasing")
		}
	}
	if ar[len(ar)-1] >= time.Second {
		t.Fatal("arrival beyond horizon")
	}
}

func TestDiurnalRate(t *testing.T) {
	base := DiurnalRate(100, 0.5, 0)
	peak := DiurnalRate(100, 0.5, 6*time.Hour)
	trough := DiurnalRate(100, 0.5, 18*time.Hour)
	if math.Abs(base-100) > 1e-9 {
		t.Fatalf("phase-0 rate = %v", base)
	}
	if math.Abs(peak-150) > 1e-6 || math.Abs(trough-50) > 1e-6 {
		t.Fatalf("peak/trough = %v/%v, want 150/50", peak, trough)
	}
	if DiurnalRate(100, 2, 6*time.Hour) > 200 {
		t.Fatal("amplitude not clamped")
	}
}

func TestFlowSize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var small, big int
	for i := 0; i < 10000; i++ {
		s := FlowSize(rng, 1e6, 2.0)
		if s <= 0 {
			t.Fatal("non-positive flow size")
		}
		if s < 1e6 {
			small++
		}
		if s > 100e6 {
			big++
		}
	}
	if small < 4000 || small > 6000 {
		t.Fatalf("median property violated: %d below median", small)
	}
	if big == 0 {
		t.Fatal("no heavy tail")
	}
}

func TestAttackSuite(t *testing.T) {
	suite := AttackSuite(1, 3)
	if len(suite) != len(AllAttackKinds())*3 {
		t.Fatalf("suite size = %d", len(suite))
	}
	byKind := map[AttackKind]int{}
	for _, a := range suite {
		byKind[a.Kind]++
		if a.Name == "" {
			t.Fatal("unnamed attack")
		}
	}
	for _, k := range AllAttackKinds() {
		if byKind[k] != 3 {
			t.Fatalf("kind %v count = %d", k, byKind[k])
		}
	}
	// Spot-check category semantics.
	for _, a := range suite {
		switch a.Kind {
		case VolumetricDDoS:
			if !a.SrcExternal || !a.Anonymous {
				t.Fatal("ddos must be external+anonymous")
			}
		case PortScan:
			if a.DstPort == 443 || a.DstPort == 0 {
				t.Fatalf("port scan hit the service port: %d", a.DstPort)
			}
		case LateralMovement:
			if !a.SrcCompromised {
				t.Fatal("lateral movement must be from compromised host")
			}
		case StolenScopeAPI:
			if !a.WrongScope {
				t.Fatal("stolen-scope must set WrongScope")
			}
		case MalformedAPI:
			if !a.Malformed {
				t.Fatal("malformed must set Malformed")
			}
		}
	}
	if VolumetricDDoS.String() != "volumetric-ddos" {
		t.Fatal("attack names wrong")
	}
}

func TestChurnKindString(t *testing.T) {
	if Launch.String() != "launch" || Teardown.String() != "teardown" {
		t.Fatal("churn kind names wrong")
	}
}
