// Package workload generates the synthetic traces the experiments consume
// in place of the production data the paper says would be needed (§6(i):
// "traces that include launch/teardown times for tenant instances,
// per-instance communication patterns, etc."). All generators are seeded
// and deterministic.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// ChurnKind is a lifecycle event type.
type ChurnKind int

const (
	// Launch brings an instance up.
	Launch ChurnKind = iota
	// Teardown removes it.
	Teardown
)

func (k ChurnKind) String() string {
	if k == Launch {
		return "launch"
	}
	return "teardown"
}

// ChurnEvent is one instance lifecycle event.
type ChurnEvent struct {
	At       time.Duration
	Kind     ChurnKind
	Instance string
	Tenant   string
}

// ChurnConfig parameterizes a launch/teardown trace.
type ChurnConfig struct {
	Tenants int
	// LaunchRate is mean launches per second across all tenants (Poisson).
	LaunchRate float64
	// MeanLifetime is the exponential mean instance lifetime.
	MeanLifetime time.Duration
	// Horizon bounds the trace.
	Horizon time.Duration
}

// ChurnTrace generates a deterministic launch/teardown event sequence,
// sorted by time.
func ChurnTrace(seed int64, cfg ChurnConfig) []ChurnEvent {
	rng := rand.New(rand.NewSource(seed))
	if cfg.Tenants < 1 {
		cfg.Tenants = 1
	}
	var events []ChurnEvent
	var t time.Duration
	n := 0
	for {
		// Poisson arrivals: exponential inter-arrival times.
		gap := time.Duration(rng.ExpFloat64() / cfg.LaunchRate * float64(time.Second))
		t += gap
		if t >= cfg.Horizon {
			break
		}
		n++
		id := fmt.Sprintf("i-%06d", n)
		tenant := fmt.Sprintf("tenant-%03d", rng.Intn(cfg.Tenants))
		events = append(events, ChurnEvent{At: t, Kind: Launch, Instance: id, Tenant: tenant})
		life := time.Duration(rng.ExpFloat64() * float64(cfg.MeanLifetime))
		if end := t + life; end < cfg.Horizon {
			events = append(events, ChurnEvent{At: end, Kind: Teardown, Instance: id, Tenant: tenant})
		}
	}
	sortEvents(events)
	return events
}

func sortEvents(ev []ChurnEvent) {
	// Stable insertion by time keeps launch-before-teardown for equal
	// stamps (they were appended in that order).
	for i := 1; i < len(ev); i++ {
		for j := i; j > 0 && ev[j].At < ev[j-1].At; j-- {
			ev[j], ev[j-1] = ev[j-1], ev[j]
		}
	}
}

// Zipf draws integers in [0, n) with a Zipfian skew (s > 1); the workhorse
// behind realistic communication matrices where a few services are hot.
type Zipf struct {
	z *rand.Zipf
}

// NewZipf returns a generator over [0, n).
func NewZipf(seed int64, s float64, n uint64) *Zipf {
	if s <= 1 {
		s = 1.1
	}
	rng := rand.New(rand.NewSource(seed))
	return &Zipf{z: rand.NewZipf(rng, s, 1, n-1)}
}

// Draw returns the next index.
func (z *Zipf) Draw() int { return int(z.z.Uint64()) }

// CommPair is one directed communication relationship.
type CommPair struct {
	Src, Dst int
}

// CommMatrix samples k distinct peers for each of n endpoints with a
// Zipfian preference for low-numbered (popular) endpoints.
func CommMatrix(seed int64, n, k int, skew float64) []CommPair {
	if n < 2 {
		return nil
	}
	if k >= n {
		k = n - 1
	}
	z := NewZipf(seed, skew, uint64(n))
	var out []CommPair
	for src := 0; src < n; src++ {
		seen := map[int]bool{src: true}
		for len(seen)-1 < k {
			dst := z.Draw()
			if seen[dst] {
				// Fall back to linear probing so sampling terminates even
				// under extreme skew.
				dst = (dst + 1) % n
				for seen[dst] {
					dst = (dst + 1) % n
				}
			}
			seen[dst] = true
			out = append(out, CommPair{Src: src, Dst: dst})
		}
	}
	return out
}

// Arrivals generates an open-loop Poisson arrival sequence with the given
// mean rate (events/s) over the horizon.
func Arrivals(seed int64, rate float64, horizon time.Duration) []time.Duration {
	rng := rand.New(rand.NewSource(seed))
	var out []time.Duration
	var t time.Duration
	for {
		t += time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		if t >= horizon {
			return out
		}
		out = append(out, t)
	}
}

// DiurnalRate evaluates a day-cycle modulated rate: base*(1+amp*sin),
// used by long-horizon experiments to avoid steady-state artifacts.
func DiurnalRate(base, amplitude float64, at time.Duration) float64 {
	if amplitude < 0 {
		amplitude = 0
	}
	if amplitude > 1 {
		amplitude = 1
	}
	phase := 2 * math.Pi * float64(at) / float64(24*time.Hour)
	return base * (1 + amplitude*math.Sin(phase))
}

// FlowSize draws a heavy-tailed flow size in bytes: lognormal body with
// the given median and sigma.
func FlowSize(rng *rand.Rand, medianBytes float64, sigma float64) float64 {
	return medianBytes * math.Exp(rng.NormFloat64()*sigma)
}
