package workload

import (
	"fmt"
	"math/rand"
)

// AttackKind categorizes the suite the security experiment (E7, answering
// §6(iii)) throws at both security models. The categories cover the
// defenses §4 enumerates on each side: private address spaces, router
// ACLs, and DPI firewalls for the baseline; permit lists and API-level
// authentication for the proposal.
type AttackKind int

const (
	// VolumetricDDoS floods the target from many spoofed/random sources —
	// the "network resource-exhaustion" class permit lists must stop.
	VolumetricDDoS AttackKind = iota
	// PortScan probes many ports from one unauthorized source.
	PortScan
	// UnauthenticatedAPI reaches the service over an allowed network path
	// but presents no credential.
	UnauthenticatedAPI
	// StolenScopeAPI presents a valid low-privilege credential against a
	// high-privilege operation.
	StolenScopeAPI
	// MalformedAPI sends structurally invalid calls with a valid
	// credential (fuzzing-style).
	MalformedAPI
	// PayloadExploit carries a known-bad payload past the transport layer
	// — the DPI-dependent category.
	PayloadExploit
	// LateralMovement originates from a compromised *permitted* internal
	// instance toward an internal service it has no business reaching.
	LateralMovement
)

var attackNames = map[AttackKind]string{
	VolumetricDDoS: "volumetric-ddos", PortScan: "port-scan",
	UnauthenticatedAPI: "unauthenticated-api", StolenScopeAPI: "stolen-scope-api",
	MalformedAPI: "malformed-api", PayloadExploit: "payload-exploit",
	LateralMovement: "lateral-movement",
}

func (k AttackKind) String() string { return attackNames[k] }

// AllAttackKinds lists the suite in a stable order.
func AllAttackKinds() []AttackKind {
	return []AttackKind{VolumetricDDoS, PortScan, UnauthenticatedAPI,
		StolenScopeAPI, MalformedAPI, PayloadExploit, LateralMovement}
}

// Attack is one attack instance; the experiment adapts it to each model.
type Attack struct {
	Kind AttackKind
	Name string
	// SrcExternal marks attacks originating outside the deployment.
	SrcExternal bool
	// SrcCompromised marks attacks from a permitted internal instance.
	SrcCompromised bool
	// DstPort is the targeted port (0 = the service port).
	DstPort int
	// Payload carries the application bytes.
	Payload string
	// Bearer/WrongScope/Malformed shape the API-level part.
	Anonymous  bool
	WrongScope bool
	Malformed  bool
}

// AttackSuite generates n attack instances per category.
func AttackSuite(seed int64, perKind int) []Attack {
	rng := rand.New(rand.NewSource(seed))
	var out []Attack
	for _, kind := range AllAttackKinds() {
		for i := 0; i < perKind; i++ {
			a := Attack{Kind: kind, Name: fmt.Sprintf("%s-%02d", kind, i+1)}
			switch kind {
			case VolumetricDDoS:
				a.SrcExternal = true
				a.DstPort = 443
				a.Payload = "junk"
				a.Anonymous = true
			case PortScan:
				a.SrcExternal = true
				a.DstPort = 1 + rng.Intn(1023) // privileged ports, never the service port
				a.Anonymous = true
			case UnauthenticatedAPI:
				a.DstPort = 443
				a.Anonymous = true
				a.Payload = "GET /api/orders"
			case StolenScopeAPI:
				a.DstPort = 443
				a.WrongScope = true
				a.Payload = "POST /api/admin"
			case MalformedAPI:
				a.DstPort = 443
				a.Malformed = true
				a.Payload = "POST /api/orders (missing args)"
			case PayloadExploit:
				a.DstPort = 443
				a.Payload = "id=1; DROP TABLE users; --"
			case LateralMovement:
				a.SrcCompromised = true
				a.DstPort = 5432
				a.Anonymous = true
				a.Payload = "psql connect"
			}
			out = append(out, a)
		}
	}
	return out
}
