// Package meter measures tenant consumption of the declarative API's
// resources — endpoint-hours, service-hours, reserved and best-effort
// bytes, quota-hours — and prices it against provider tiers. The paper
// argues the declarative interface still lets providers "differentiate
// through rich performance, availability, and security tiers" (§1); this
// package is that billing surface, and it doubles as the accounting the
// E-series experiments use for cost-shape comparisons.
//
// All clocks are virtual (sim.Time); integration is exact under
// piecewise-constant usage because every state change passes through a
// record method.
package meter

import (
	"fmt"
	"sort"

	"declnet/internal/metrics"
	"declnet/internal/sim"
)

// Usage is one tenant's accumulated consumption.
type Usage struct {
	// EIPSeconds and SIPSeconds integrate address holdings over time.
	EIPSeconds float64
	SIPSeconds float64
	// ReservedBytes and BestEffortBytes split transferred volume by the
	// §4-footnote traffic class.
	ReservedBytes   float64
	BestEffortBytes float64
	// QuotaGbpsSeconds integrates reserved regional bandwidth over time
	// (1 Gbps held for 1s = 1 unit).
	QuotaGbpsSeconds float64
	// PermitUpdates counts control-plane writes.
	PermitUpdates uint64

	activeEIPs int
	activeSIPs int
	quotaGbps  float64
	lastAt     sim.Time
}

func (u *Usage) integrate(now sim.Time) {
	dt := (now - u.lastAt).Seconds()
	if dt > 0 {
		u.EIPSeconds += float64(u.activeEIPs) * dt
		u.SIPSeconds += float64(u.activeSIPs) * dt
		u.QuotaGbpsSeconds += u.quotaGbps * dt
	}
	u.lastAt = now
}

// Meter tracks usage per tenant. The zero value is not ready; call New.
type Meter struct {
	usage map[string]*Usage
}

// New returns an empty meter.
func New() *Meter {
	return &Meter{usage: make(map[string]*Usage)}
}

func (m *Meter) of(tenant string, now sim.Time) *Usage {
	u, ok := m.usage[tenant]
	if !ok {
		u = &Usage{lastAt: now}
		m.usage[tenant] = u
	}
	u.integrate(now)
	return u
}

// GrantEIP records an endpoint grant at virtual time now.
func (m *Meter) GrantEIP(tenant string, now sim.Time) {
	m.of(tenant, now).activeEIPs++
}

// ReleaseEIP records an endpoint release.
func (m *Meter) ReleaseEIP(tenant string, now sim.Time) {
	u := m.of(tenant, now)
	if u.activeEIPs > 0 {
		u.activeEIPs--
	}
}

// GrantSIP and ReleaseSIP mirror the service-address lifecycle.
func (m *Meter) GrantSIP(tenant string, now sim.Time) {
	m.of(tenant, now).activeSIPs++
}

// ReleaseSIP records a service-address release.
func (m *Meter) ReleaseSIP(tenant string, now sim.Time) {
	u := m.of(tenant, now)
	if u.activeSIPs > 0 {
		u.activeSIPs--
	}
}

// SetQuota records a regional reservation change (bps; all the tenant's
// regions summed by the caller or recorded per provider).
func (m *Meter) SetQuota(tenant string, now sim.Time, totalBps float64) {
	m.of(tenant, now).quotaGbps = totalBps / 1e9
}

// AddBytes records transferred volume by class.
func (m *Meter) AddBytes(tenant string, now sim.Time, bytes float64, reserved bool) {
	u := m.of(tenant, now)
	if reserved {
		u.ReservedBytes += bytes
	} else {
		u.BestEffortBytes += bytes
	}
}

// PermitUpdate records one control-plane write.
func (m *Meter) PermitUpdate(tenant string, now sim.Time) {
	m.of(tenant, now).PermitUpdates++
}

// Snapshot returns the tenant's usage integrated up to now.
func (m *Meter) Snapshot(tenant string, now sim.Time) Usage {
	u := m.of(tenant, now)
	return *u
}

// Tenants returns the metered tenant names, sorted.
func (m *Meter) Tenants() []string {
	out := make([]string, 0, len(m.usage))
	for t := range m.usage {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Rate is a provider tier's price card.
type Rate struct {
	Name string
	// Per-hour prices.
	EIPHour       float64
	SIPHour       float64
	QuotaGbpsHour float64
	// Per-GB prices by class.
	ReservedGB   float64
	BestEffortGB float64
	// Per-1k control-plane writes.
	PermitPer1k float64
}

// StandardTier and PremiumTier are illustrative price cards: premium buys
// cheaper reserved bandwidth (cold-potato-class transport) at higher
// fixed address costs — the differentiation §1 anticipates.
func StandardTier() Rate {
	return Rate{Name: "standard", EIPHour: 0.005, SIPHour: 0.025,
		QuotaGbpsHour: 0.50, ReservedGB: 0.08, BestEffortGB: 0.02, PermitPer1k: 0.10}
}

// PremiumTier trades higher fixed costs for cheaper guaranteed transport.
func PremiumTier() Rate {
	return Rate{Name: "premium", EIPHour: 0.02, SIPHour: 0.10,
		QuotaGbpsHour: 0.35, ReservedGB: 0.05, BestEffortGB: 0.02, PermitPer1k: 0.10}
}

// Invoice prices a usage snapshot against a rate card.
type Invoice struct {
	Tenant string
	Rate   Rate
	Lines  []InvoiceLine
	Total  float64
}

// InvoiceLine is one priced usage dimension.
type InvoiceLine struct {
	Item     string
	Quantity float64
	Unit     string
	Amount   float64
}

// Price builds an invoice from a usage snapshot.
func Price(tenant string, u Usage, rate Rate) Invoice {
	inv := Invoice{Tenant: tenant, Rate: rate}
	add := func(item string, qty float64, unit string, price float64) {
		amount := qty * price
		inv.Lines = append(inv.Lines, InvoiceLine{Item: item, Quantity: qty, Unit: unit, Amount: amount})
		inv.Total += amount
	}
	add("endpoint IPs", u.EIPSeconds/3600, "eip-hours", rate.EIPHour)
	add("service IPs", u.SIPSeconds/3600, "sip-hours", rate.SIPHour)
	add("egress guarantee", u.QuotaGbpsSeconds/3600, "gbps-hours", rate.QuotaGbpsHour)
	add("reserved transfer", u.ReservedBytes/1e9, "GB", rate.ReservedGB)
	add("best-effort transfer", u.BestEffortBytes/1e9, "GB", rate.BestEffortGB)
	add("permit updates", float64(u.PermitUpdates)/1000, "k-writes", rate.PermitPer1k)
	return inv
}

// Table renders the invoice as an experiment table.
func (inv Invoice) Table() *metrics.Table {
	t := &metrics.Table{
		Title:   fmt.Sprintf("invoice: %s (%s tier)", inv.Tenant, inv.Rate.Name),
		Columns: []string{"item", "quantity", "unit", "amount $"},
	}
	for _, l := range inv.Lines {
		t.AddRow(l.Item, l.Quantity, l.Unit, l.Amount)
	}
	t.AddRow("TOTAL", "", "", inv.Total)
	return t
}
