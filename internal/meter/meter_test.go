package meter

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestEIPSecondsIntegration(t *testing.T) {
	m := New()
	m.GrantEIP("acme", 0)
	m.GrantEIP("acme", 10*time.Second)
	m.ReleaseEIP("acme", 30*time.Second)
	u := m.Snapshot("acme", 60*time.Second)
	// One EIP for 60s, a second for 20s => 80 eip-seconds.
	if math.Abs(u.EIPSeconds-80) > 1e-9 {
		t.Fatalf("EIPSeconds = %v, want 80", u.EIPSeconds)
	}
	if u.SIPSeconds != 0 {
		t.Fatalf("SIPSeconds = %v", u.SIPSeconds)
	}
}

func TestQuotaIntegration(t *testing.T) {
	m := New()
	m.SetQuota("acme", 0, 2e9)              // 2 Gbps from t=0
	m.SetQuota("acme", 30*time.Second, 1e9) // drop to 1 Gbps at t=30
	u := m.Snapshot("acme", 60*time.Second) // until t=60
	want := 2.0*30 + 1.0*30                 // gbps-seconds
	if math.Abs(u.QuotaGbpsSeconds-want) > 1e-9 {
		t.Fatalf("QuotaGbpsSeconds = %v, want %v", u.QuotaGbpsSeconds, want)
	}
}

func TestBytesByClass(t *testing.T) {
	m := New()
	m.AddBytes("acme", time.Second, 5e9, true)
	m.AddBytes("acme", 2*time.Second, 20e9, false)
	u := m.Snapshot("acme", 3*time.Second)
	if u.ReservedBytes != 5e9 || u.BestEffortBytes != 20e9 {
		t.Fatalf("bytes = %v/%v", u.ReservedBytes, u.BestEffortBytes)
	}
}

func TestReleaseClamps(t *testing.T) {
	m := New()
	m.ReleaseEIP("acme", 0)
	m.ReleaseSIP("acme", 0)
	u := m.Snapshot("acme", time.Hour)
	if u.EIPSeconds != 0 || u.SIPSeconds != 0 {
		t.Fatal("negative holdings integrated")
	}
}

func TestTenantsSorted(t *testing.T) {
	m := New()
	m.GrantEIP("zeta", 0)
	m.GrantEIP("acme", 0)
	got := m.Tenants()
	if len(got) != 2 || got[0] != "acme" || got[1] != "zeta" {
		t.Fatalf("Tenants = %v", got)
	}
}

func TestPriceInvoice(t *testing.T) {
	u := Usage{
		EIPSeconds:       10 * 3600, // 10 eip-hours
		SIPSeconds:       2 * 3600,
		QuotaGbpsSeconds: 5 * 3600,
		ReservedBytes:    100e9, // 100 GB
		BestEffortBytes:  500e9,
		PermitUpdates:    2000,
	}
	inv := Price("acme", u, StandardTier())
	want := 10*0.005 + 2*0.025 + 5*0.50 + 100*0.08 + 500*0.02 + 2*0.10
	if math.Abs(inv.Total-want) > 1e-9 {
		t.Fatalf("Total = %v, want %v", inv.Total, want)
	}
	if len(inv.Lines) != 6 {
		t.Fatalf("lines = %d", len(inv.Lines))
	}
	// Premium shifts the balance: cheaper reserved GB, pricier addresses.
	prem := Price("acme", u, PremiumTier())
	if prem.Lines[3].Amount >= inv.Lines[3].Amount {
		t.Fatal("premium reserved transfer not cheaper")
	}
	if prem.Lines[0].Amount <= inv.Lines[0].Amount {
		t.Fatal("premium EIPs not pricier")
	}
}

func TestInvoiceTable(t *testing.T) {
	inv := Price("acme", Usage{ReservedBytes: 1e9}, StandardTier())
	out := inv.Table().Text()
	for _, want := range []string{"invoice: acme", "reserved transfer", "TOTAL"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestPermitUpdateCount(t *testing.T) {
	m := New()
	for i := 0; i < 5; i++ {
		m.PermitUpdate("acme", time.Duration(i)*time.Second)
	}
	if u := m.Snapshot("acme", 10*time.Second); u.PermitUpdates != 5 {
		t.Fatalf("PermitUpdates = %d", u.PermitUpdates)
	}
}
