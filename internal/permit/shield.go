package permit

import (
	"sort"

	"declnet/internal/addr"
)

// The paper's security section rests on in-network enforcement absorbing
// "network resource-exhaustion attacks such as DDoS", pointing at the
// cloud scrubbing services of its references [20, 31]. Shield is that
// layer: it watches default-off denials per source, and sources that hammer
// the fabric past a threshold are greylisted — dropped at the outermost
// edge without even a permit-list lookup, which is how real scrubbers
// shed volumetric load.

// Shield wraps an Engine with per-source denial accounting and
// greylisting. The zero value is unusable; call NewShield.
type Shield struct {
	eng       *Engine
	threshold uint64
	denials   map[addr.IP]uint64
	grey      map[addr.IP]bool

	// Greylisted counts packets shed by the greylist (cheap drops);
	// Denied counts default-off denials that charged a full lookup.
	Greylisted uint64
	Denied     uint64
}

// NewShield guards engine e, greylisting sources after threshold
// denials. threshold < 1 is clamped to 1.
func NewShield(e *Engine, threshold uint64) *Shield {
	if threshold < 1 {
		threshold = 1
	}
	return &Shield{
		eng:       e,
		threshold: threshold,
		denials:   make(map[addr.IP]uint64),
		grey:      make(map[addr.IP]bool),
	}
}

// Engine returns the wrapped enforcement engine.
func (s *Shield) Engine() *Engine { return s.eng }

// Check runs greylist-then-permit admission for one packet.
func (s *Shield) Check(src, dst addr.IP) bool {
	if s.grey[src] {
		s.Greylisted++
		return false
	}
	if s.eng.Check(src, dst) {
		return true
	}
	s.Denied++
	s.denials[src]++
	if s.denials[src] >= s.threshold {
		s.grey[src] = true
	}
	return false
}

// IsGreylisted reports whether a source has been shed to the greylist.
func (s *Shield) IsGreylisted(src addr.IP) bool { return s.grey[src] }

// Pardon removes a source from the greylist and resets its count
// (operator action after a false positive or an attack subsides).
func (s *Shield) Pardon(src addr.IP) {
	delete(s.grey, src)
	delete(s.denials, src)
}

// Offender pairs a source with its denial count.
type Offender struct {
	Src     addr.IP
	Denials uint64
}

// TopOffenders returns up to k sources by denial count, descending (ties
// broken by address for determinism) — the operator's attack dashboard.
func (s *Shield) TopOffenders(k int) []Offender {
	out := make([]Offender, 0, len(s.denials))
	for src, n := range s.denials {
		out = append(out, Offender{Src: src, Denials: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Denials != out[j].Denials {
			return out[i].Denials > out[j].Denials
		}
		return out[i].Src < out[j].Src
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// GreylistSize reports how many sources are currently shed.
func (s *Shield) GreylistSize() int { return len(s.grey) }
