package permit

import (
	"testing"

	"declnet/internal/addr"
)

func ip(t *testing.T, s string) addr.IP {
	t.Helper()
	v, err := addr.ParseIP(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestEngineBatchCoalescesVersions: N batched mutations of one list
// advance its Version once, and the bump lands only at EndBatch.
func TestEngineBatchCoalescesVersions(t *testing.T) {
	e := NewEngine()
	dst := ip(t, "10.0.0.1")
	e.Permit(dst, addr.NewPrefix(ip(t, "10.1.0.1"), 32))
	l, _ := e.List(dst)
	v0 := l.Version()

	e.BeginBatch()
	for i := byte(2); i < 7; i++ {
		e.Permit(dst, addr.NewPrefix(ip(t, "10.1.0.1")+addr.IP(i), 32))
	}
	e.Revoke(dst, addr.NewPrefix(ip(t, "10.1.0.1"), 32))
	if l.Version() != v0 {
		t.Fatalf("version bumped mid-batch (%d -> %d)", v0, l.Version())
	}
	e.EndBatch()
	if l.Version() != v0+1 {
		t.Fatalf("version %d after batch, want %d (one coalesced bump)", l.Version(), v0+1)
	}
	if l.Len() != 5 {
		t.Fatalf("len=%d, want 5", l.Len())
	}
	// A batch that mutates nothing bumps nothing.
	e.BeginBatch()
	e.EndBatch()
	if l.Version() != v0+1 {
		t.Fatalf("empty batch bumped version to %d", l.Version())
	}
}

// TestEngineBatchUpdatesCounting: outside a batch Set counts one update
// per call (the E4 golden-table contract); inside a batch Updates
// counts the entries installed — the work enforcement points absorb.
func TestEngineBatchUpdatesCounting(t *testing.T) {
	e := NewEngine()
	dst := ip(t, "10.0.0.1")
	entries := []Entry{
		addr.NewPrefix(ip(t, "10.1.0.1"), 32),
		addr.NewPrefix(ip(t, "10.1.0.2"), 32),
		addr.NewPrefix(ip(t, "10.2.0.0"), 16),
	}
	e.Set(dst, entries)
	if got := e.Updates.Load(); got != 1 {
		t.Fatalf("unbatched Set counted %d updates, want 1", got)
	}
	e.BeginBatch()
	e.Set(dst, entries)
	e.EndBatch()
	if got := e.Updates.Load(); got != 4 {
		t.Fatalf("batched Set counted %d total updates, want 4 (1 + 3 entries)", got)
	}
	// Per-entry verbs count per entry in both modes.
	e.BeginBatch()
	e.Permit(dst, addr.NewPrefix(ip(t, "10.3.0.1"), 32))
	e.Revoke(dst, addr.NewPrefix(ip(t, "10.3.0.1"), 32))
	e.EndBatch()
	if got := e.Updates.Load(); got != 6 {
		t.Fatalf("updates=%d, want 6", got)
	}
}

// TestEngineBatchNesting: inner batches fold into the outermost; Set
// inside a batch re-enrolls the fresh list so later mutations coalesce.
func TestEngineBatchNesting(t *testing.T) {
	e := NewEngine()
	dst := ip(t, "10.0.0.1")
	e.BeginBatch()
	e.BeginBatch()
	e.Set(dst, []Entry{addr.NewPrefix(ip(t, "10.1.0.1"), 32)})
	l, _ := e.List(dst)
	v0 := l.Version()
	e.Permit(dst, addr.NewPrefix(ip(t, "10.1.0.2"), 32))
	e.Permit(dst, addr.NewPrefix(ip(t, "10.1.0.3"), 32))
	e.EndBatch()
	if l.Version() != v0 {
		t.Fatalf("inner EndBatch bumped version (%d -> %d)", v0, l.Version())
	}
	e.EndBatch()
	if l.Version() != v0+1 {
		t.Fatalf("version %d, want %d after outermost EndBatch", l.Version(), v0+1)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("EndBatch without BeginBatch did not panic")
		}
	}()
	e.EndBatch()
}
