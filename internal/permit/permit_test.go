package permit

import (
	"testing"
	"testing/quick"
	"time"

	"declnet/internal/addr"
	"declnet/internal/sim"
)

func ipa(s string) addr.IP     { return addr.MustParseIP(s) }
func pfx(s string) addr.Prefix { return addr.MustParsePrefix(s) }

func TestDefaultOff(t *testing.T) {
	e := NewEngine()
	if e.Check(ipa("1.2.3.4"), ipa("198.18.0.1")) {
		t.Fatal("endpoint with no permit list accepted traffic (default-off violated)")
	}
	e.Set(ipa("198.18.0.1"), nil)
	if e.Check(ipa("1.2.3.4"), ipa("198.18.0.1")) {
		t.Fatal("empty permit list accepted traffic")
	}
}

func TestExactAndPrefixEntries(t *testing.T) {
	e := NewEngine()
	dst := ipa("198.18.0.1")
	e.Set(dst, []Entry{pfx("203.0.113.7/32"), pfx("10.0.0.0/8")})
	if !e.Check(ipa("203.0.113.7"), dst) {
		t.Fatal("exact /32 entry not honored")
	}
	if e.Check(ipa("203.0.113.8"), dst) {
		t.Fatal("adjacent address admitted by /32 entry")
	}
	if !e.Check(ipa("10.200.1.1"), dst) {
		t.Fatal("prefix entry not honored")
	}
	if e.Check(ipa("11.0.0.1"), dst) {
		t.Fatal("address outside all entries admitted")
	}
}

func TestPermitRevoke(t *testing.T) {
	e := NewEngine()
	dst := ipa("198.18.0.1")
	e.Permit(dst, pfx("192.0.2.1/32"))
	if !e.Check(ipa("192.0.2.1"), dst) {
		t.Fatal("permitted source rejected")
	}
	if !e.Revoke(dst, pfx("192.0.2.1/32")) {
		t.Fatal("revoke of present entry failed")
	}
	if e.Check(ipa("192.0.2.1"), dst) {
		t.Fatal("revoked source admitted")
	}
	if e.Revoke(dst, pfx("192.0.2.1/32")) {
		t.Fatal("double revoke succeeded")
	}
	if e.Revoke(ipa("9.9.9.9"), pfx("1.1.1.1/32")) {
		t.Fatal("revoke on unknown dst succeeded")
	}
}

func TestDropEndpoint(t *testing.T) {
	e := NewEngine()
	dst := ipa("198.18.0.1")
	e.Permit(dst, pfx("0.0.0.0/0"))
	e.Drop(dst)
	if e.Check(ipa("1.1.1.1"), dst) {
		t.Fatal("dropped endpoint still admits traffic")
	}
	if e.Endpoints() != 0 {
		t.Fatalf("Endpoints = %d after drop", e.Endpoints())
	}
}

func TestCounters(t *testing.T) {
	e := NewEngine()
	dst := ipa("198.18.0.1")
	e.Set(dst, []Entry{pfx("10.0.0.0/8"), pfx("1.1.1.1/32")})
	e.Check(ipa("10.0.0.1"), dst)
	e.Check(ipa("2.2.2.2"), dst)
	if e.Lookups.Load() != 2 || e.Updates.Load() != 1 {
		t.Fatalf("Lookups,Updates = %d,%d", e.Lookups.Load(), e.Updates.Load())
	}
	if e.TotalEntries() != 2 {
		t.Fatalf("TotalEntries = %d", e.TotalEntries())
	}
}

func TestListCloneAndEntries(t *testing.T) {
	l := NewList()
	l.Add(pfx("10.0.0.0/8"))
	l.Add(pfx("192.0.2.1/32"))
	c := l.Clone()
	l.Remove(pfx("10.0.0.0/8"))
	if !c.Permits(ipa("10.5.5.5")) {
		t.Fatal("clone shares state with original")
	}
	if len(c.Entries()) != 2 {
		t.Fatalf("Entries = %v", c.Entries())
	}
	if c.Version() != 2 {
		t.Fatalf("clone Version = %d, want 2", c.Version())
	}
}

// Entries must come back in a deterministic order regardless of
// insertion order: exact /32s sorted by address, then trie prefixes.
func TestEntriesDeterministic(t *testing.T) {
	mk := func(order []string) []Entry {
		l := NewList()
		for _, s := range order {
			l.Add(pfx(s))
		}
		return l.Entries()
	}
	specs := []string{"192.0.2.9/32", "10.0.0.0/8", "192.0.2.1/32", "172.16.0.0/12", "1.1.1.1/32"}
	want := mk(specs)
	rev := make([]string, len(specs))
	for i, s := range specs {
		rev[len(specs)-1-i] = s
	}
	got := mk(rev)
	if len(got) != len(want) {
		t.Fatalf("Entries = %d items, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Entries[%d] = %v (reversed insertion), want %v", i, got[i], want[i])
		}
	}
	for i := 1; i < len(want); i++ {
		if want[i-1].Len == 32 && want[i].Len == 32 && want[i-1].Addr > want[i].Addr {
			t.Fatalf("exact entries unsorted: %v before %v", want[i-1], want[i])
		}
	}
}

// Property: the engine agrees with a naive oracle over arbitrary
// add/remove/check sequences.
func TestQuickEngineMatchesOracle(t *testing.T) {
	f := func(ops []uint32, probes []uint32) bool {
		e := NewEngine()
		oracle := make(map[addr.IP][]Entry)
		dst := ipa("198.18.0.1")
		for _, op := range ops {
			en := addr.NewPrefix(addr.IP(op), 8+int(op%25)) // /8../32
			if op%3 == 0 {
				e.Revoke(dst, en)
				list := oracle[dst]
				for i, x := range list {
					if x == en {
						oracle[dst] = append(list[:i], list[i+1:]...)
						break
					}
				}
			} else {
				e.Permit(dst, en)
				found := false
				for _, x := range oracle[dst] {
					if x == en {
						found = true
						break
					}
				}
				if !found {
					oracle[dst] = append(oracle[dst], en)
				}
			}
		}
		for _, pr := range probes {
			src := addr.IP(pr)
			want := false
			for _, en := range oracle[dst] {
				if en.Contains(src) {
					want = true
					break
				}
			}
			if e.Check(src, dst) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestReplicaPropagationLag(t *testing.T) {
	eng := sim.New(1)
	rs := NewReplicaSet(eng, 3, 50*time.Millisecond)
	dst := ipa("198.18.0.1")
	src := ipa("203.0.113.7")
	rs.Permit(dst, pfx("203.0.113.7/32"))
	// Origin sees it immediately; replicas do not.
	if !rs.Origin().Check(src, dst) {
		t.Fatal("origin missing immediate update")
	}
	if rs.Check(0, src, dst) {
		t.Fatal("replica saw update before propagation lag")
	}
	if rs.Consistent() {
		t.Fatal("Consistent() true with update in flight")
	}
	eng.RunUntil(49 * time.Millisecond)
	if rs.Check(1, src, dst) {
		t.Fatal("replica saw update 1ms early")
	}
	eng.RunUntil(51 * time.Millisecond)
	for i := 0; i < rs.Replicas(); i++ {
		if !rs.Check(i, src, dst) {
			t.Fatalf("replica %d missing update after lag", i)
		}
	}
	if !rs.Consistent() {
		t.Fatal("Consistent() false after propagation")
	}
}

func TestReplicaRevokeWindow(t *testing.T) {
	// The dangerous window: a revoked source is still admitted at
	// replicas until propagation completes — the staleness E4 quantifies.
	eng := sim.New(1)
	rs := NewReplicaSet(eng, 2, 20*time.Millisecond)
	dst := ipa("198.18.0.1")
	src := ipa("203.0.113.7")
	rs.Permit(dst, pfx("203.0.113.7/32"))
	eng.RunUntil(25 * time.Millisecond)
	rs.Revoke(dst, pfx("203.0.113.7/32"))
	if !rs.Check(0, src, dst) {
		t.Fatal("revoke visible at replica instantly (no lag modeled)")
	}
	eng.RunUntil(50 * time.Millisecond)
	if rs.Check(0, src, dst) {
		t.Fatal("revoke never propagated")
	}
}

func TestReplicaSetAndDrop(t *testing.T) {
	eng := sim.New(1)
	rs := NewReplicaSet(eng, 2, 10*time.Millisecond)
	dst := ipa("198.18.0.9")
	rs.Set(dst, []Entry{pfx("10.0.0.0/8")})
	eng.Run()
	if !rs.Check(1, ipa("10.1.1.1"), dst) {
		t.Fatal("Set did not propagate")
	}
	rs.Drop(dst)
	eng.Run()
	if rs.Check(1, ipa("10.1.1.1"), dst) {
		t.Fatal("Drop did not propagate")
	}
	if rs.String() == "" {
		t.Fatal("empty String()")
	}
	if rs.Lag() != 10*time.Millisecond {
		t.Fatalf("Lag = %v", rs.Lag())
	}
}
