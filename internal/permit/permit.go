// Package permit implements the provider-side in-network access control of
// §4 of the paper: every endpoint IP is "public but default-off", and only
// sources explicitly enumerated in the tenant's permit-list may reach it.
// The engine answers the scalability question of §6(i) — "does a (dynamic)
// shared permit-list between tenants and cloud providers scale?" — so it
// tracks lookup cost, memory, update churn, and (via ReplicaSet)
// propagation staleness across distributed enforcement points.
package permit

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"declnet/internal/addr"
	"declnet/internal/routing"
	"declnet/internal/sim"
)

// Entry is one permit-list element: a source prefix (a /32 permits a
// single EIP).
type Entry = addr.Prefix

// List is the permit state guarding one destination EIP. Exact /32s are
// kept in a hash set for O(1) hits; shorter prefixes go to an LPM trie.
// Mutation and map/trie reads require external exclusion (the engine's
// stripe lock provides it); the version counter alone is atomic so
// version-keyed verdict caches can revalidate without any lock.
type List struct {
	exact    map[addr.IP]bool
	prefixes routing.Trie[bool]
	version  atomic.Uint64
	// batching defers version bumps (see BeginBatch); dirty records that
	// at least one mutation is awaiting the coalesced bump.
	batching bool
	dirty    bool
}

// NewList returns an empty (deny-everything) list.
func NewList() *List {
	return &List{exact: make(map[addr.IP]bool)}
}

// Add permits one source entry.
func (l *List) Add(e Entry) {
	if e.Len == 32 {
		l.exact[e.Addr] = true
	} else {
		l.prefixes.Insert(e, true)
	}
	l.bump()
}

// Remove revokes one source entry, reporting whether it was present.
func (l *List) Remove(e Entry) bool {
	var ok bool
	if e.Len == 32 {
		ok = l.exact[e.Addr]
		delete(l.exact, e.Addr)
	} else {
		ok = l.prefixes.Delete(e)
	}
	if ok {
		l.bump()
	}
	return ok
}

// Permits reports whether src may reach the guarded endpoint.
func (l *List) Permits(src addr.IP) bool {
	if l.exact[src] {
		return true
	}
	_, ok := l.prefixes.Lookup(src)
	return ok
}

// Len returns the number of entries.
func (l *List) Len() int { return len(l.exact) + l.prefixes.Len() }

// Version increments on every mutation (once per batch while batching);
// replicas and memoized admission verdicts compare versions.
func (l *List) Version() uint64 { return l.version.Load() }

// bump advances the version, or defers it inside a batch.
func (l *List) bump() {
	if l.batching {
		l.dirty = true
		return
	}
	l.version.Add(1)
}

// BeginBatch defers version bumps: mutations until EndBatch advance
// Version once, not once per entry, so version-keyed caches (the
// connect fast path's memoized admission verdicts) are invalidated once
// per batch instead of N times.
func (l *List) BeginBatch() { l.batching = true }

// EndBatch applies the deferred bump if any mutation happened.
func (l *List) EndBatch() {
	if l.dirty {
		l.version.Add(1)
	}
	l.batching, l.dirty = false, false
}

// Entries returns all entries: exact /32s sorted by address, then
// prefixes in the trie's deterministic order — stable across runs so
// golden tables and diff-based tests never flake on map iteration.
func (l *List) Entries() []Entry {
	out := make([]Entry, 0, l.Len())
	for ip := range l.exact {
		out = append(out, addr.NewPrefix(ip, 32))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	out = append(out, l.prefixes.Prefixes()...)
	return out
}

// Clone deep-copies the list.
func (l *List) Clone() *List {
	c := NewList()
	for ip := range l.exact {
		c.exact[ip] = true
	}
	l.prefixes.Walk(func(p addr.Prefix, _ bool) bool {
		c.prefixes.Insert(p, true)
		return true
	})
	c.version.Store(l.version.Load())
	return c
}

// engineStripes is the default stripe count. Stripes are keyed by the
// destination's /16 block (ip>>16): providers carve one /16 per region,
// so every region's permit lists land in one stripe and a mutation storm
// confined to one region contends with nothing outside it. 64 is a power
// of two (the index is a mask) comfortably above the region counts the
// scale drill builds.
const engineStripes = 64

// engineStripe is one independently-locked partition of the list map.
type engineStripe struct {
	mu    sync.RWMutex
	lists map[addr.IP]*List
}

// Engine is one enforcement point's view of all tenants' permit lists,
// keyed by destination EIP. Default-off: an EIP with no list drops
// everything. The map is partitioned into region-aligned stripes, each
// behind its own RWMutex, so concurrent mutations in different regions
// never serialize against each other and admission checks only share a
// read lock with writes to their own stripe.
type Engine struct {
	stripes []engineStripe
	// Lookups and Updates count enforcement work for the E4 experiment.
	// Atomic because admission checks run on the concurrent read plane
	// while control-plane writes mutate the lists under stripe locks.
	Lookups atomic.Uint64
	Updates atomic.Uint64
	// batchDepth nests batches; touched tracks lists whose version bump
	// is deferred until the outermost EndBatch. Batches require external
	// write exclusion over the whole engine (core's global shard gate
	// provides it), so these fields take no lock of their own.
	batchDepth int
	touched    map[addr.IP]*List
}

// NewEngine returns an empty engine with the default stripe count.
func NewEngine() *Engine { return NewEngineStripes(engineStripes) }

// NewEngineStripes returns an empty engine partitioned into n stripes
// (n must be a power of two; 1 yields the unsharded engine the parity
// property test replays against).
func NewEngineStripes(n int) *Engine {
	if n < 1 || n&(n-1) != 0 {
		panic(fmt.Sprintf("permit: stripe count %d is not a power of two", n))
	}
	e := &Engine{stripes: make([]engineStripe, n)}
	for i := range e.stripes {
		e.stripes[i].lists = make(map[addr.IP]*List)
	}
	return e
}

// stripeOf maps a destination to its stripe by region block.
func (e *Engine) stripeOf(ip addr.IP) *engineStripe {
	return &e.stripes[(uint32(ip)>>16)&uint32(len(e.stripes)-1)]
}

// BeginBatch opens a coalescing window (nestable): until the matching
// EndBatch, each mutated list's Version advances at most once, and
// Updates counts batched entries — the per-entry work the enforcement
// points actually absorb — rather than one per Set call.
func (e *Engine) BeginBatch() {
	if e.batchDepth == 0 && e.touched == nil {
		e.touched = make(map[addr.IP]*List)
	}
	e.batchDepth++
}

// EndBatch closes the window, applying one deferred version bump per
// mutated list.
func (e *Engine) EndBatch() {
	if e.batchDepth == 0 {
		panic("permit: EndBatch without BeginBatch")
	}
	if e.batchDepth--; e.batchDepth > 0 {
		return
	}
	for _, l := range e.touched {
		l.EndBatch()
	}
	clear(e.touched)
}

// enroll defers dst's version bumps for the duration of the batch.
func (e *Engine) enroll(dst addr.IP, l *List) {
	if e.batchDepth == 0 {
		return
	}
	if _, ok := e.touched[dst]; !ok {
		l.BeginBatch()
		e.touched[dst] = l
	}
}

// Set replaces the permit list for dst (the set_permit_list API verb).
// Outside a batch one Set is one update (the E4 accounting the golden
// tables pin); inside a batch Updates counts the entries installed.
func (e *Engine) Set(dst addr.IP, entries []Entry) {
	l := NewList()
	for _, en := range entries {
		l.Add(en)
	}
	s := e.stripeOf(dst)
	s.mu.Lock()
	s.lists[dst] = l
	// The old list (if any) dies with its deferred bump; the new pointer
	// alone invalidates version-keyed verdicts, but enroll it so later
	// batched mutations of dst coalesce too.
	if e.batchDepth > 0 {
		delete(e.touched, dst)
		e.enroll(dst, l)
		s.mu.Unlock()
		e.Updates.Add(uint64(len(entries)))
		return
	}
	s.mu.Unlock()
	e.Updates.Add(1)
}

// Permit adds one entry to dst's list, creating the list if needed.
func (e *Engine) Permit(dst addr.IP, en Entry) {
	s := e.stripeOf(dst)
	s.mu.Lock()
	l, ok := s.lists[dst]
	if !ok {
		l = NewList()
		s.lists[dst] = l
	}
	e.enroll(dst, l)
	l.Add(en)
	s.mu.Unlock()
	e.Updates.Add(1)
}

// Revoke removes one entry from dst's list.
func (e *Engine) Revoke(dst addr.IP, en Entry) bool {
	s := e.stripeOf(dst)
	s.mu.Lock()
	l, ok := s.lists[dst]
	if !ok {
		s.mu.Unlock()
		return false
	}
	e.enroll(dst, l)
	removed := l.Remove(en)
	s.mu.Unlock()
	e.Updates.Add(1)
	return removed
}

// SetFresh installs a brand-new list for dst without enrolling it in
// any open batch window. Parallel restore workers use it: the fresh
// list pointer alone invalidates version-keyed verdicts, and skipping
// enrollment keeps the batch bookkeeping — which requires external
// write exclusion over the whole engine — off the concurrent path.
// Only the stripe lock is taken, so workers in different stripes never
// serialize and same-stripe workers serialize only on the map write.
func (e *Engine) SetFresh(dst addr.IP, entries []Entry) {
	l := NewList()
	for _, en := range entries {
		l.Add(en)
	}
	s := e.stripeOf(dst)
	s.mu.Lock()
	s.lists[dst] = l
	s.mu.Unlock()
	e.Updates.Add(1)
}

// Drop removes dst's entire list (endpoint teardown).
func (e *Engine) Drop(dst addr.IP) {
	s := e.stripeOf(dst)
	s.mu.Lock()
	delete(s.lists, dst)
	s.mu.Unlock()
	e.Updates.Add(1)
}

// Check enforces default-off admission: true only when dst has a list
// that permits src. The stripe read lock is held across the list walk so
// a same-stripe writer cannot mutate the trie mid-lookup; checks against
// other stripes share nothing.
func (e *Engine) Check(src, dst addr.IP) bool {
	e.Lookups.Add(1)
	s := e.stripeOf(dst)
	s.mu.RLock()
	l, ok := s.lists[dst]
	allowed := ok && l.Permits(src)
	s.mu.RUnlock()
	return allowed
}

// List returns dst's list when present. The pointer together with its
// atomic Version is the revalidation token for memoized verdicts; the
// list's contents must only be read under the engine's stripe lock
// (i.e. via Check/Explain).
func (e *Engine) List(dst addr.IP) (*List, bool) {
	s := e.stripeOf(dst)
	s.mu.RLock()
	l, ok := s.lists[dst]
	s.mu.RUnlock()
	return l, ok
}

// Decision is a diagnostic replay of one admission check: the verdict plus
// the evidence a tenant needs to understand it — whether dst is guarded at
// all, which entry matched (longest prefix wins), and at which propagation
// epoch (list version) the verdict was computed.
type Decision struct {
	Allowed bool
	// HasList is false when dst has no permit list at all (the pure
	// default-off drop, as opposed to a list that excludes src).
	HasList bool
	// Matched is the permitting entry when Allowed (the most specific
	// match when several overlap).
	Matched Entry
	// Version is the list's mutation count — the propagation epoch a
	// replica would compare against the origin.
	Version uint64
	// Entries is the list size, for "is this list even populated" triage.
	Entries int
}

// Explain replays the admission check for src->dst without counting it as
// enforcement work (Lookups is untouched — diagnosis must not skew E4's
// cost figures). Unlike Check it also reports which entry admitted the
// flow and the list's version.
func (e *Engine) Explain(src, dst addr.IP) Decision {
	s := e.stripeOf(dst)
	s.mu.RLock()
	defer s.mu.RUnlock()
	l, ok := s.lists[dst]
	if !ok {
		return Decision{}
	}
	d := Decision{HasList: true, Version: l.version.Load(), Entries: l.Len()}
	if l.exact[src] {
		d.Allowed = true
		d.Matched = addr.NewPrefix(src, 32)
		return d
	}
	// Longest matching prefix; Entries() is small relative to diagnosis
	// frequency, so a linear scan keeps the hot Lookup path untouched.
	best, found := Entry{}, false
	l.prefixes.Walk(func(p addr.Prefix, _ bool) bool {
		if p.Contains(src) && (!found || p.Len > best.Len) {
			best, found = p, true
		}
		return true
	})
	if found {
		d.Allowed = true
		d.Matched = best
	}
	return d
}

// Targets returns every guarded destination, sorted — the reconciler's
// walk order over the engine's actual state.
func (e *Engine) Targets() []addr.IP {
	var out []addr.IP
	for i := range e.stripes {
		s := &e.stripes[i]
		s.mu.RLock()
		for dst := range s.lists {
			out = append(out, dst)
		}
		s.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TargetsOf returns the guarded destinations in stripes where
// stripe%mod == phase, sorted. The reconciler's anti-entropy rotation
// walks 1/mod of the engine per sweep with it; mod 1, phase 0 is
// Targets. mod must divide the stripe count (both are powers of two
// here) so every stripe lands in exactly one phase.
func (e *Engine) TargetsOf(phase, mod int) []addr.IP {
	if mod <= 1 {
		return e.Targets()
	}
	var out []addr.IP
	for i := range e.stripes {
		if i%mod != phase {
			continue
		}
		s := &e.stripes[i]
		s.mu.RLock()
		for dst := range s.lists {
			out = append(out, dst)
		}
		s.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TargetsWithin returns the guarded destinations inside block, sorted.
// When block is a /16 or longer — the granularity regions are carved
// at — only the single owning stripe is touched, which is what keeps
// the incremental digest's per-region recompute O(region), not
// O(engine).
func (e *Engine) TargetsWithin(block addr.Prefix) []addr.IP {
	var out []addr.IP
	scan := func(s *engineStripe) {
		s.mu.RLock()
		for dst := range s.lists {
			if block.Contains(dst) {
				out = append(out, dst)
			}
		}
		s.mu.RUnlock()
	}
	if block.Len >= 16 {
		scan(e.stripeOf(block.Addr))
	} else {
		for i := range e.stripes {
			scan(&e.stripes[i])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EqualsEntries reports whether dst's installed list equals want as a
// set, and whether dst is guarded at all. Both sides are deduplicated
// sets (the list by construction, want by the declared-state apply),
// so equal length plus containment of every want entry is equality.
// The probe runs under the stripe read lock with zero allocations —
// the steady-state reconciler compares every declared list this way,
// every sweep.
func (e *Engine) EqualsEntries(dst addr.IP, want []Entry) (equal, hasList bool) {
	s := e.stripeOf(dst)
	s.mu.RLock()
	defer s.mu.RUnlock()
	l, ok := s.lists[dst]
	if !ok {
		return false, false
	}
	if l.Len() != len(want) {
		return false, true
	}
	for _, en := range want {
		if en.Len == 32 {
			if !l.exact[en.Addr] {
				return false, true
			}
		} else if _, ok := l.prefixes.Get(en); !ok {
			return false, true
		}
	}
	return true, true
}

// EntriesOf returns dst's installed entries (Entries() order) under the
// stripe read lock, or nil when dst is unguarded.
func (e *Engine) EntriesOf(dst addr.IP) []Entry {
	s := e.stripeOf(dst)
	s.mu.RLock()
	defer s.mu.RUnlock()
	l, ok := s.lists[dst]
	if !ok {
		return nil
	}
	return l.Entries()
}

// Endpoints returns the number of guarded EIPs.
func (e *Engine) Endpoints() int {
	var n int
	for i := range e.stripes {
		s := &e.stripes[i]
		s.mu.RLock()
		n += len(s.lists)
		s.mu.RUnlock()
	}
	return n
}

// TotalEntries returns the total permit entries across all lists — the
// memory-scale figure for E4.
func (e *Engine) TotalEntries() int {
	var n int
	for i := range e.stripes {
		s := &e.stripes[i]
		s.mu.RLock()
		for _, l := range s.lists {
			n += l.Len()
		}
		s.mu.RUnlock()
	}
	return n
}

// update is a replication log record.
type update struct {
	dst     addr.IP
	entries []Entry // nil means drop
	set     bool    // true: replace entire list; false: single add/remove
	add     Entry
	remove  bool
	drop    bool
}

// ReplicaSet models the provider pushing permit updates from a control
// point to n distributed enforcement points with a propagation delay —
// the consistency dimension of §6(i). Reads go to a chosen replica;
// writes apply locally at the origin immediately and at each replica
// after its lag. StalenessWindow reports the longest interval during
// which replicas could disagree.
type ReplicaSet struct {
	eng      *sim.Engine
	origin   *Engine
	replicas []*Engine
	lag      sim.Time
	// PendingUpdates counts updates in flight; MaxStaleness tracks the
	// worst-case observed propagation interval.
	PendingUpdates int
	applied        uint64
	issued         uint64
}

// NewReplicaSet returns a set with n replicas behind the given one-way
// propagation lag.
func NewReplicaSet(eng *sim.Engine, n int, lag sim.Time) *ReplicaSet {
	rs := &ReplicaSet{eng: eng, origin: NewEngine(), lag: lag}
	for i := 0; i < n; i++ {
		rs.replicas = append(rs.replicas, NewEngine())
	}
	return rs
}

// Origin returns the control-plane engine (authoritative state).
func (rs *ReplicaSet) Origin() *Engine { return rs.origin }

// Replica returns enforcement point i.
func (rs *ReplicaSet) Replica(i int) *Engine { return rs.replicas[i] }

// Replicas returns the number of enforcement points.
func (rs *ReplicaSet) Replicas() int { return len(rs.replicas) }

// Set replaces dst's list everywhere (lagged at replicas).
func (rs *ReplicaSet) Set(dst addr.IP, entries []Entry) {
	rs.origin.Set(dst, entries)
	cp := append([]Entry(nil), entries...)
	rs.propagate(update{dst: dst, set: true, entries: cp})
}

// Permit adds one entry everywhere (lagged at replicas).
func (rs *ReplicaSet) Permit(dst addr.IP, en Entry) {
	rs.origin.Permit(dst, en)
	rs.propagate(update{dst: dst, add: en})
}

// Revoke removes one entry everywhere (lagged at replicas).
func (rs *ReplicaSet) Revoke(dst addr.IP, en Entry) {
	rs.origin.Revoke(dst, en)
	rs.propagate(update{dst: dst, add: en, remove: true})
}

// Drop removes dst's list everywhere (lagged at replicas).
func (rs *ReplicaSet) Drop(dst addr.IP) {
	rs.origin.Drop(dst)
	rs.propagate(update{dst: dst, drop: true})
}

func (rs *ReplicaSet) propagate(u update) {
	rs.issued++
	rs.PendingUpdates++
	rs.eng.After(rs.lag, func() {
		for _, r := range rs.replicas {
			applyUpdate(r, u)
		}
		rs.applied++
		rs.PendingUpdates--
	})
}

func applyUpdate(e *Engine, u update) {
	switch {
	case u.drop:
		e.Drop(u.dst)
	case u.set:
		e.Set(u.dst, u.entries)
	case u.remove:
		e.Revoke(u.dst, u.add)
	default:
		e.Permit(u.dst, u.add)
	}
}

// Check enforces at replica i (the packet's nearest enforcement point).
func (rs *ReplicaSet) Check(replica int, src, dst addr.IP) bool {
	return rs.replicas[replica].Check(src, dst)
}

// Consistent reports whether every replica has applied every issued
// update.
func (rs *ReplicaSet) Consistent() bool { return rs.PendingUpdates == 0 }

// Lag returns the propagation delay.
func (rs *ReplicaSet) Lag() sim.Time { return rs.lag }

// String summarizes replication state.
func (rs *ReplicaSet) String() string {
	return fmt.Sprintf("replicas=%d lag=%v pending=%d issued=%d",
		len(rs.replicas), rs.lag, rs.PendingUpdates, rs.issued)
}
