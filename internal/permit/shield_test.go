package permit

import (
	"testing"

	"declnet/internal/addr"
)

func shieldUnderTest(t *testing.T, threshold uint64) (*Shield, addr.IP, addr.IP) {
	t.Helper()
	e := NewEngine()
	dst := ipa("198.18.0.1")
	good := ipa("203.0.113.1")
	e.Permit(dst, addr.NewPrefix(good, 32))
	return NewShield(e, threshold), dst, good
}

func TestShieldPassesPermitted(t *testing.T) {
	s, dst, good := shieldUnderTest(t, 3)
	for i := 0; i < 100; i++ {
		if !s.Check(good, dst) {
			t.Fatal("permitted source blocked by shield")
		}
	}
	if s.Greylisted != 0 || s.Denied != 0 {
		t.Fatalf("counters = grey %d denied %d for clean traffic", s.Greylisted, s.Denied)
	}
}

func TestShieldGreylistsAfterThreshold(t *testing.T) {
	s, dst, _ := shieldUnderTest(t, 3)
	attacker := ipa("203.0.113.66")
	for i := 0; i < 3; i++ {
		if s.Check(attacker, dst) {
			t.Fatal("unpermitted source admitted")
		}
		if i < 2 && s.IsGreylisted(attacker) {
			t.Fatalf("greylisted after only %d denials", i+1)
		}
	}
	if !s.IsGreylisted(attacker) {
		t.Fatal("not greylisted after threshold denials")
	}
	// Subsequent packets are shed cheaply, without engine lookups.
	before := s.Engine().Lookups.Load()
	for i := 0; i < 1000; i++ {
		s.Check(attacker, dst)
	}
	if s.Engine().Lookups.Load() != before {
		t.Fatal("greylisted source still charged permit lookups")
	}
	if s.Greylisted != 1000 {
		t.Fatalf("Greylisted = %d, want 1000", s.Greylisted)
	}
}

func TestShieldGreylistDoesNotAffectOthers(t *testing.T) {
	s, dst, good := shieldUnderTest(t, 2)
	attacker := ipa("203.0.113.66")
	s.Check(attacker, dst)
	s.Check(attacker, dst)
	if !s.Check(good, dst) {
		t.Fatal("legitimate source collateral-damaged by greylist")
	}
}

func TestShieldPardon(t *testing.T) {
	s, dst, _ := shieldUnderTest(t, 1)
	attacker := ipa("203.0.113.66")
	s.Check(attacker, dst)
	if !s.IsGreylisted(attacker) {
		t.Fatal("threshold-1 shield did not greylist immediately")
	}
	s.Pardon(attacker)
	if s.IsGreylisted(attacker) {
		t.Fatal("pardon did not lift greylist")
	}
	// A pardoned source that is later permitted flows normally.
	s.Engine().Permit(dst, addr.NewPrefix(attacker, 32))
	if !s.Check(attacker, dst) {
		t.Fatal("pardoned+permitted source still blocked")
	}
}

func TestTopOffenders(t *testing.T) {
	s, dst, _ := shieldUnderTest(t, 1000)
	for i, n := range []int{5, 9, 2} {
		src := ipa("203.0.113.66") + addr.IP(i)
		for j := 0; j < n; j++ {
			s.Check(src, dst)
		}
	}
	top := s.TopOffenders(2)
	if len(top) != 2 {
		t.Fatalf("TopOffenders = %v", top)
	}
	if top[0].Denials != 9 || top[1].Denials != 5 {
		t.Fatalf("offender order wrong: %v", top)
	}
	if s.GreylistSize() != 0 {
		t.Fatalf("greylist size = %d below threshold", s.GreylistSize())
	}
}

func TestShieldThresholdClamp(t *testing.T) {
	e := NewEngine()
	s := NewShield(e, 0)
	s.Check(ipa("1.1.1.1"), ipa("2.2.2.2"))
	if !s.IsGreylisted(ipa("1.1.1.1")) {
		t.Fatal("threshold 0 not clamped to 1")
	}
}
