// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine is single-threaded by design: all state transitions happen in
// event callbacks executed in timestamp order, which makes every run with
// the same seed bit-for-bit reproducible. Components that need randomness
// must draw it from a rand.Rand derived from the engine seed rather than
// from global sources.
package sim

import (
	"container/heap"
	"sync"
	"fmt"
	"math/rand"
	"time"
)

// Time is virtual simulation time measured as a duration since the start of
// the run. Using time.Duration gives nanosecond resolution and convenient
// formatting while remaining a plain int64 internally.
type Time = time.Duration

// Event is a scheduled callback. Events with equal timestamps fire in the
// order they were scheduled.
type Event struct {
	at     Time
	seq    uint64
	fn     func()
	dead   bool
	daemon bool
	idx    int // heap index, -1 when not queued
	eng    *Engine
}

// Cancel prevents the event from firing and removes it from the queue so
// it neither keeps a run alive nor forces the clock to grind out to its
// timestamp. Canceling an already-fired or already-canceled event is a
// no-op.
func (e *Event) Cancel() {
	if e == nil || e.dead {
		return
	}
	e.dead = true
	if e.eng != nil && e.idx >= 0 {
		heap.Remove(&e.eng.queue, e.idx)
		if !e.daemon {
			e.eng.userPending--
		}
	}
}

// At reports the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.idx = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event scheduler with a virtual clock.
// The zero value is not ready for use; call New.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventQueue
	rng     *rand.Rand
	stopped bool
	nFired  uint64
	// userPending counts queued non-daemon events. Run (without a
	// deadline) drains until none remain, so perpetual daemon tickers
	// (control loops, health checkers) never wedge a run.
	userPending int
}

// lockedSource serializes access to a rand source so the engine's Rand
// may be shared by concurrent read-plane callers (probe RTT/loss draws)
// without perturbing the deterministic sequence a single-threaded run
// would produce.
type lockedSource struct {
	mu  sync.Mutex
	src rand.Source64
}

func (s *lockedSource) Int63() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src.Int63()
}

func (s *lockedSource) Uint64() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src.Uint64()
}

func (s *lockedSource) Seed(seed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.src.Seed(seed)
}

// New returns an engine whose random source is seeded with seed.
func New(seed int64) *Engine {
	src := rand.NewSource(seed).(rand.Source64)
	return &Engine{rng: rand.New(&lockedSource{src: src})}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source. Components should
// derive all randomness from it (or from sub-sources created via NewRand)
// so runs stay reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// NewRand returns an independent deterministic random source derived from
// the engine seed stream. Use one per component when interleaving order
// between components must not perturb their individual draw sequences.
func (e *Engine) NewRand() *rand.Rand {
	return rand.New(rand.NewSource(e.rng.Int63()))
}

// Schedule runs fn at absolute virtual time at. Scheduling in the past
// (before Now) is an error surfaced by panic, because it always indicates a
// logic bug in the caller rather than a recoverable condition.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	return e.schedule(at, fn, false)
}

// ScheduleDaemon schedules a background event that does not keep Run
// alive: once only daemon events remain, a deadline-less Run returns.
// Use it for recurring control loops whose work only matters while
// foreground activity exists.
func (e *Engine) ScheduleDaemon(at Time, fn func()) *Event {
	return e.schedule(at, fn, true)
}

func (e *Engine) schedule(at Time, fn func(), daemon bool) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	ev := &Event{at: at, seq: e.seq, fn: fn, daemon: daemon, idx: -1, eng: e}
	e.seq++
	heap.Push(&e.queue, ev)
	if !daemon {
		e.userPending++
	}
	return ev
}

// After runs fn after delay d from the current virtual time.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now+d, fn)
}

// Every schedules fn at the given period, starting one period from now,
// until the returned Ticker is stopped.
func (e *Engine) Every(period Time, fn func()) *Ticker {
	return e.every(period, fn, false)
}

// EveryDaemon is Every for background control loops: its firings do not
// keep a deadline-less Run alive.
func (e *Engine) EveryDaemon(period Time, fn func()) *Ticker {
	return e.every(period, fn, true)
}

func (e *Engine) every(period Time, fn func(), daemon bool) *Ticker {
	if period <= 0 {
		panic("sim: non-positive ticker period")
	}
	t := &Ticker{eng: e, period: period, fn: fn, daemon: daemon}
	t.arm()
	return t
}

// Ticker repeatedly fires a callback at a fixed virtual period.
type Ticker struct {
	eng     *Engine
	period  Time
	fn      func()
	ev      *Event
	daemon  bool
	stopped bool
}

func (t *Ticker) arm() {
	t.ev = t.eng.schedule(t.eng.now+t.period, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	}, t.daemon)
}

// Stop prevents future firings. A callback already executing completes.
func (t *Ticker) Stop() {
	t.stopped = true
	t.ev.Cancel()
}

// Stop halts the run loop after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.nFired }

// Pending reports how many events are queued (including canceled ones not
// yet discarded).
func (e *Engine) Pending() int { return len(e.queue) }

// Run executes events in timestamp order until the queue drains or Stop is
// called. It returns the number of events fired during this call.
func (e *Engine) Run() uint64 {
	return e.RunUntil(-1)
}

// RunUntil executes events with timestamps <= deadline (all events when
// deadline < 0). The clock is left at the last fired event's time, or at
// deadline if it is later and non-negative. Without a deadline, the run
// ends once only daemon events remain — perpetual control loops do not
// keep it alive.
func (e *Engine) RunUntil(deadline Time) uint64 {
	e.stopped = false
	var fired uint64
	for len(e.queue) > 0 && !e.stopped {
		if deadline < 0 && e.userPending == 0 {
			break
		}
		next := e.queue[0]
		if deadline >= 0 && next.at > deadline {
			break
		}
		heap.Pop(&e.queue)
		if !next.daemon {
			e.userPending--
		}
		if next.dead {
			continue
		}
		e.now = next.at
		next.fn()
		fired++
		e.nFired++
	}
	if deadline >= 0 && e.now < deadline {
		e.now = deadline
	}
	return fired
}
