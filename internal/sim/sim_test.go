package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrder(t *testing.T) {
	e := New(1)
	var got []int
	e.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	if n := e.Run(); n != 3 {
		t.Fatalf("fired %d events, want 3", n)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30*time.Millisecond {
		t.Fatalf("clock = %v, want 30ms", e.Now())
	}
}

func TestFIFOAtEqualTime(t *testing.T) {
	e := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("equal-time events fired out of order: %v", got)
		}
	}
}

func TestAfterRelative(t *testing.T) {
	e := New(1)
	var at Time
	e.After(time.Second, func() {
		e.After(2*time.Second, func() { at = e.Now() })
	})
	e.Run()
	if at != 3*time.Second {
		t.Fatalf("nested After fired at %v, want 3s", at)
	}
}

func TestCancel(t *testing.T) {
	e := New(1)
	fired := false
	ev := e.Schedule(time.Second, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestCancelNilSafe(t *testing.T) {
	var ev *Event
	ev.Cancel() // must not panic
}

func TestRunUntil(t *testing.T) {
	e := New(1)
	var got []Time
	for _, d := range []Time{time.Second, 2 * time.Second, 3 * time.Second} {
		d := d
		e.Schedule(d, func() { got = append(got, d) })
	}
	if n := e.RunUntil(2 * time.Second); n != 2 {
		t.Fatalf("RunUntil fired %d, want 2", n)
	}
	if e.Now() != 2*time.Second {
		t.Fatalf("clock = %v, want 2s", e.Now())
	}
	if n := e.Run(); n != 1 {
		t.Fatalf("resumed run fired %d, want 1", n)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := New(1)
	e.RunUntil(5 * time.Second)
	if e.Now() != 5*time.Second {
		t.Fatalf("idle clock = %v, want 5s", e.Now())
	}
}

func TestStop(t *testing.T) {
	e := New(1)
	count := 0
	e.Schedule(time.Second, func() { count++; e.Stop() })
	e.Schedule(2*time.Second, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("fired %d events after Stop, want 1", count)
	}
	e.Run()
	if count != 2 {
		t.Fatalf("fired %d events after resume, want 2", count)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New(1)
	e.Schedule(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(0, func() {})
	})
	e.Run()
}

func TestTicker(t *testing.T) {
	e := New(1)
	var times []Time
	var tk *Ticker
	tk = e.Every(time.Second, func() {
		times = append(times, e.Now())
		if len(times) == 3 {
			tk.Stop()
		}
	})
	e.Run()
	if len(times) != 3 {
		t.Fatalf("ticker fired %d times, want 3", len(times))
	}
	for i, want := range []Time{time.Second, 2 * time.Second, 3 * time.Second} {
		if times[i] != want {
			t.Fatalf("tick %d at %v, want %v", i, times[i], want)
		}
	}
}

func TestTickerPanicsOnBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero ticker period did not panic")
		}
	}()
	New(1).Every(0, func() {})
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		e := New(42)
		var draws []int64
		var step func()
		step = func() {
			draws = append(draws, e.Rand().Int63())
			if len(draws) < 50 {
				e.After(Time(e.Rand().Intn(1000))*time.Microsecond, step)
			}
		}
		e.After(0, step)
		e.Run()
		return draws
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at draw %d", i)
		}
	}
}

// Property: for any set of scheduled delays, events fire in nondecreasing
// time order and the engine fires exactly one event per schedule.
func TestQuickOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		e := New(7)
		var fired []Time
		for _, d := range delays {
			e.After(Time(d)*time.Millisecond, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCancelRemovesFromQueue(t *testing.T) {
	e := New(1)
	ev := e.Schedule(time.Hour, func() {})
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d", e.Pending())
	}
	ev.Cancel()
	if e.Pending() != 0 {
		t.Fatalf("Pending after cancel = %d", e.Pending())
	}
	ev.Cancel() // double cancel is a no-op
	// A canceled far-future user event must not keep Run grinding
	// through daemon ticks to reach its timestamp.
	ticks := 0
	e.EveryDaemon(time.Second, func() { ticks++ })
	e.Schedule(2500*time.Millisecond, func() {})
	far := e.Schedule(1000*time.Hour, func() { t.Error("canceled event fired") })
	far.Cancel()
	e.Run()
	if ticks != 2 {
		t.Fatalf("daemon ticks = %d, want 2 (run must end at 2.5s)", ticks)
	}
}

func TestDaemonDoesNotKeepRunAlive(t *testing.T) {
	e := New(1)
	ticks := 0
	e.EveryDaemon(time.Second, func() { ticks++ })
	fired := false
	e.Schedule(2500*time.Millisecond, func() { fired = true })
	// Run must terminate: the user event at 2.5s is the last thing that
	// matters; the perpetual daemon ticker fires only until then.
	e.Run()
	if !fired {
		t.Fatal("user event did not fire")
	}
	if ticks != 2 {
		t.Fatalf("daemon ticks = %d, want 2 (at 1s and 2s)", ticks)
	}
}

func TestDaemonOnlyRunReturnsImmediately(t *testing.T) {
	e := New(1)
	e.EveryDaemon(time.Second, func() { t.Fatal("daemon fired with no user work") })
	if n := e.Run(); n != 0 {
		t.Fatalf("fired %d events, want 0", n)
	}
}

func TestDaemonFiresUnderDeadline(t *testing.T) {
	e := New(1)
	ticks := 0
	e.EveryDaemon(time.Second, func() { ticks++ })
	e.RunUntil(3500 * time.Millisecond)
	if ticks != 3 {
		t.Fatalf("daemon ticks under deadline = %d, want 3", ticks)
	}
}

func TestScheduleDaemonEvent(t *testing.T) {
	e := New(1)
	ran := false
	e.ScheduleDaemon(time.Second, func() { ran = true })
	e.Run()
	if ran {
		t.Fatal("daemon-only Run fired the daemon event")
	}
	e.RunUntil(2 * time.Second)
	if !ran {
		t.Fatal("daemon event did not fire under a deadline")
	}
}

func TestFiredPending(t *testing.T) {
	e := New(1)
	e.Schedule(time.Second, func() {})
	e.Schedule(2*time.Second, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.Run()
	if e.Fired() != 2 || e.Pending() != 0 {
		t.Fatalf("Fired,Pending = %d,%d; want 2,0", e.Fired(), e.Pending())
	}
}
