// Package routing implements the forwarding-state machinery shared by the
// baseline virtual-network layer and the provider core: a binary
// (Patricia-style) longest-prefix-match trie, route tables with metrics,
// a prefix aggregation pass, and a BGP-lite advertisement protocol used by
// transit/VPN gateways.
//
// The E3 experiment uses this package directly to measure how provider
// routing-table size scales under the paper's flat "public but default-off"
// EIP addressing versus today's VPC prefix aggregation (§6(i) of the paper).
package routing

import (
	"declnet/internal/addr"
)

// node is one bit-level node of the binary trie. Nodes with a non-nil
// value carry a route for the prefix spelled by the path to them.
type node[V any] struct {
	child [2]*node[V]
	val   *V
}

// Trie is a longest-prefix-match table mapping addr.Prefix to V.
// The zero value is an empty table ready for use.
type Trie[V any] struct {
	root node[V]
	n    int
}

func bitAt(ip addr.IP, i int) int {
	return int(ip>>(31-uint(i))) & 1
}

// Len returns the number of stored prefixes.
func (t *Trie[V]) Len() int { return t.n }

// Insert stores val for the given prefix, replacing any existing value.
func (t *Trie[V]) Insert(p addr.Prefix, val V) {
	cur := &t.root
	for i := 0; i < p.Len; i++ {
		b := bitAt(p.Addr, i)
		if cur.child[b] == nil {
			cur.child[b] = &node[V]{}
		}
		cur = cur.child[b]
	}
	if cur.val == nil {
		t.n++
	}
	cur.val = &val
}

// Delete removes the route for exactly prefix p. It reports whether a
// route was present. Interior nodes left empty are pruned so the trie's
// memory tracks its contents.
func (t *Trie[V]) Delete(p addr.Prefix) bool {
	// Record the path for pruning on the way back.
	path := make([]*node[V], 0, p.Len+1)
	cur := &t.root
	path = append(path, cur)
	for i := 0; i < p.Len; i++ {
		b := bitAt(p.Addr, i)
		if cur.child[b] == nil {
			return false
		}
		cur = cur.child[b]
		path = append(path, cur)
	}
	if cur.val == nil {
		return false
	}
	cur.val = nil
	t.n--
	// Prune childless, valueless nodes bottom-up (never the root).
	for i := len(path) - 1; i > 0; i-- {
		n := path[i]
		if n.val != nil || n.child[0] != nil || n.child[1] != nil {
			break
		}
		parent := path[i-1]
		b := bitAt(p.Addr, i-1)
		parent.child[b] = nil
	}
	return true
}

// Lookup returns the value of the longest prefix containing ip.
func (t *Trie[V]) Lookup(ip addr.IP) (V, bool) {
	var best *V
	cur := &t.root
	for i := 0; ; i++ {
		if cur.val != nil {
			best = cur.val
		}
		if i == 32 {
			break
		}
		next := cur.child[bitAt(ip, i)]
		if next == nil {
			break
		}
		cur = next
	}
	if best == nil {
		var zero V
		return zero, false
	}
	return *best, true
}

// Get returns the value stored for exactly prefix p.
func (t *Trie[V]) Get(p addr.Prefix) (V, bool) {
	cur := &t.root
	for i := 0; i < p.Len; i++ {
		cur = cur.child[bitAt(p.Addr, i)]
		if cur == nil {
			var zero V
			return zero, false
		}
	}
	if cur.val == nil {
		var zero V
		return zero, false
	}
	return *cur.val, true
}

// Walk visits every stored (prefix, value) pair in address order. The
// callback returning false stops the walk.
func (t *Trie[V]) Walk(fn func(p addr.Prefix, val V) bool) {
	t.walk(&t.root, addr.Prefix{}, fn)
}

func (t *Trie[V]) walk(n *node[V], p addr.Prefix, fn func(addr.Prefix, V) bool) bool {
	if n.val != nil {
		if !fn(p, *n.val) {
			return false
		}
	}
	for b, child := range n.child {
		if child == nil {
			continue
		}
		cp := addr.Prefix{Addr: p.Addr, Len: p.Len + 1}
		if b == 1 {
			cp.Addr |= addr.IP(1) << (31 - uint(p.Len))
		}
		if !t.walk(child, cp, fn) {
			return false
		}
	}
	return true
}

// Prefixes returns all stored prefixes in address order.
func (t *Trie[V]) Prefixes() []addr.Prefix {
	out := make([]addr.Prefix, 0, t.n)
	t.Walk(func(p addr.Prefix, _ V) bool {
		out = append(out, p)
		return true
	})
	return out
}
