package routing

import (
	"testing"
	"testing/quick"

	"declnet/internal/addr"
)

func pfx(s string) addr.Prefix { return addr.MustParsePrefix(s) }
func ip(s string) addr.IP      { return addr.MustParseIP(s) }

func TestTrieInsertLookup(t *testing.T) {
	var tr Trie[string]
	tr.Insert(pfx("10.0.0.0/8"), "coarse")
	tr.Insert(pfx("10.1.0.0/16"), "mid")
	tr.Insert(pfx("10.1.2.0/24"), "fine")

	cases := []struct {
		ip   string
		want string
	}{
		{"10.1.2.3", "fine"},
		{"10.1.3.1", "mid"},
		{"10.9.9.9", "coarse"},
	}
	for _, c := range cases {
		got, ok := tr.Lookup(ip(c.ip))
		if !ok || got != c.want {
			t.Errorf("Lookup(%s) = %q,%v; want %q", c.ip, got, ok, c.want)
		}
	}
	if _, ok := tr.Lookup(ip("11.0.0.1")); ok {
		t.Error("lookup outside table succeeded")
	}
	if tr.Len() != 3 {
		t.Errorf("Len = %d, want 3", tr.Len())
	}
}

func TestTrieDefaultRoute(t *testing.T) {
	var tr Trie[string]
	tr.Insert(pfx("0.0.0.0/0"), "default")
	got, ok := tr.Lookup(ip("203.0.113.9"))
	if !ok || got != "default" {
		t.Fatalf("default route lookup = %q,%v", got, ok)
	}
}

func TestTrieHostRoute(t *testing.T) {
	var tr Trie[string]
	tr.Insert(pfx("192.168.1.7/32"), "host")
	if got, ok := tr.Lookup(ip("192.168.1.7")); !ok || got != "host" {
		t.Fatalf("host route = %q,%v", got, ok)
	}
	if _, ok := tr.Lookup(ip("192.168.1.8")); ok {
		t.Fatal("adjacent host matched /32")
	}
}

func TestTrieReplace(t *testing.T) {
	var tr Trie[int]
	tr.Insert(pfx("10.0.0.0/8"), 1)
	tr.Insert(pfx("10.0.0.0/8"), 2)
	if tr.Len() != 1 {
		t.Fatalf("Len after replace = %d", tr.Len())
	}
	if got, _ := tr.Get(pfx("10.0.0.0/8")); got != 2 {
		t.Fatalf("Get after replace = %d", got)
	}
}

func TestTrieDelete(t *testing.T) {
	var tr Trie[string]
	tr.Insert(pfx("10.0.0.0/8"), "a")
	tr.Insert(pfx("10.1.0.0/16"), "b")
	if !tr.Delete(pfx("10.1.0.0/16")) {
		t.Fatal("Delete of present prefix failed")
	}
	if tr.Delete(pfx("10.1.0.0/16")) {
		t.Fatal("double delete succeeded")
	}
	if tr.Delete(pfx("10.2.0.0/16")) {
		t.Fatal("delete of absent prefix succeeded")
	}
	if got, ok := tr.Lookup(ip("10.1.2.3")); !ok || got != "a" {
		t.Fatalf("fallback after delete = %q,%v", got, ok)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestTrieDeleteKeepsDescendants(t *testing.T) {
	var tr Trie[string]
	tr.Insert(pfx("10.0.0.0/8"), "parent")
	tr.Insert(pfx("10.1.0.0/16"), "child")
	tr.Delete(pfx("10.0.0.0/8"))
	if got, ok := tr.Lookup(ip("10.1.5.5")); !ok || got != "child" {
		t.Fatalf("child lost after parent delete: %q,%v", got, ok)
	}
}

func TestTrieGetExact(t *testing.T) {
	var tr Trie[string]
	tr.Insert(pfx("10.0.0.0/8"), "a")
	if _, ok := tr.Get(pfx("10.0.0.0/9")); ok {
		t.Fatal("Get of non-installed child prefix succeeded")
	}
	if got, ok := tr.Get(pfx("10.0.0.0/8")); !ok || got != "a" {
		t.Fatalf("Get exact = %q,%v", got, ok)
	}
}

func TestTrieWalkOrder(t *testing.T) {
	var tr Trie[int]
	ins := []string{"10.2.0.0/16", "10.0.0.0/8", "192.168.0.0/16", "10.1.0.0/16"}
	for i, s := range ins {
		tr.Insert(pfx(s), i)
	}
	got := tr.Prefixes()
	want := []string{"10.0.0.0/8", "10.1.0.0/16", "10.2.0.0/16", "192.168.0.0/16"}
	if len(got) != len(want) {
		t.Fatalf("Prefixes len = %d", len(got))
	}
	for i := range want {
		if got[i].String() != want[i] {
			t.Fatalf("walk order = %v, want %v", got, want)
		}
	}
}

func TestTrieWalkEarlyStop(t *testing.T) {
	var tr Trie[int]
	for i := 0; i < 10; i++ {
		tr.Insert(addr.NewPrefix(addr.IP(i)<<24, 8), i)
	}
	count := 0
	tr.Walk(func(addr.Prefix, int) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("walk visited %d, want 3", count)
	}
}

// Property: trie LPM agrees with a linear-scan oracle.
func TestQuickTrieMatchesOracle(t *testing.T) {
	f := func(seeds []uint32, probes []uint32) bool {
		var tr Trie[int]
		type route struct {
			p addr.Prefix
			v int
		}
		var routes []route
		for i, s := range seeds {
			p := addr.NewPrefix(addr.IP(s), int(s%33))
			tr.Insert(p, i)
			// Linear oracle keeps the latest value per prefix.
			replaced := false
			for j := range routes {
				if routes[j].p == p {
					routes[j].v = i
					replaced = true
					break
				}
			}
			if !replaced {
				routes = append(routes, route{p, i})
			}
		}
		for _, probe := range probes {
			q := addr.IP(probe)
			bestLen, bestVal, found := -1, 0, false
			for _, r := range routes {
				if r.p.Contains(q) && r.p.Len > bestLen {
					bestLen, bestVal, found = r.p.Len, r.v, true
				}
			}
			got, ok := tr.Lookup(q)
			if ok != found || (ok && got != bestVal) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: insert then delete restores emptiness (prune correctness).
func TestQuickTrieDeleteRestores(t *testing.T) {
	f := func(seeds []uint32) bool {
		var tr Trie[int]
		ps := make([]addr.Prefix, 0, len(seeds))
		for i, s := range seeds {
			p := addr.NewPrefix(addr.IP(s), int(s%33))
			tr.Insert(p, i)
			ps = append(ps, p)
		}
		for _, p := range ps {
			tr.Delete(p)
		}
		return tr.Len() == 0 && len(tr.Prefixes()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
