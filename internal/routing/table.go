package routing

import (
	"fmt"
	"sort"

	"declnet/internal/addr"
)

// NextHop identifies where a route points. Interpretation of the ID is up
// to the forwarding layer: a gateway name, a link ID, "local", etc.
type NextHop struct {
	ID string
	// Metric breaks ties between routes for the same prefix learned from
	// different sources; lower wins (hop count in BGP-lite).
	Metric int
	// Origin tags how the route was learned: "static", "propagated",
	// "connected", "aggregated". Used in experiment accounting.
	Origin string
}

// Table is a route table: an LPM trie of NextHops with convenience
// operations and churn accounting. The zero value is ready for use.
type Table struct {
	trie Trie[NextHop]
	// Churn counts route add/remove operations applied over the table's
	// lifetime; E3/E4 use it to report update load.
	Churn uint64
}

// Len returns the number of installed routes.
func (t *Table) Len() int { return t.trie.Len() }

// Install adds or replaces the route for p. When a route for p already
// exists, the lower-metric one wins; equal metrics favor the newcomer.
func (t *Table) Install(p addr.Prefix, hop NextHop) {
	if cur, ok := t.trie.Get(p); ok && cur.Metric < hop.Metric {
		return
	}
	t.trie.Insert(p, hop)
	t.Churn++
}

// Withdraw removes the route for exactly p, reporting whether it existed.
func (t *Table) Withdraw(p addr.Prefix) bool {
	ok := t.trie.Delete(p)
	if ok {
		t.Churn++
	}
	return ok
}

// Lookup returns the next hop for ip via longest-prefix match.
func (t *Table) Lookup(ip addr.IP) (NextHop, bool) {
	return t.trie.Lookup(ip)
}

// Get returns the route installed for exactly p.
func (t *Table) Get(p addr.Prefix) (NextHop, bool) {
	return t.trie.Get(p)
}

// Routes returns the full table in address order.
func (t *Table) Routes() []Route {
	out := make([]Route, 0, t.Len())
	t.trie.Walk(func(p addr.Prefix, hop NextHop) bool {
		out = append(out, Route{Prefix: p, Hop: hop})
		return true
	})
	return out
}

// Route pairs a prefix with its next hop.
type Route struct {
	Prefix addr.Prefix
	Hop    NextHop
}

func (r Route) String() string {
	return fmt.Sprintf("%s via %s metric=%d (%s)", r.Prefix, r.Hop.ID, r.Hop.Metric, r.Hop.Origin)
}

// Aggregate returns a new table with sibling prefixes pointing at the same
// next-hop ID merged into their parent, applied to a fixed point. This
// models the provider-side aggregation the paper relies on for flat EIP
// addressing to scale ("maximum flexibility in assigning addresses from
// their overall pool (e.g., to maximize the ability to aggregate for
// routing)"). Aggregation is semantics-preserving only when the table is
// "complete" (every address matched by a merged parent belongs to one of
// the merged children); the provider allocator guarantees that by carving
// EIPs densely from per-region blocks, and AggregateLossy documents the
// assumption.
func Aggregate(routes []Route) []Route {
	// Work over a set keyed by prefix; repeatedly merge sibling pairs with
	// the same hop ID, keeping the numerically better (lower) metric.
	type key struct {
		p addr.Prefix
	}
	set := make(map[key]NextHop, len(routes))
	for _, r := range routes {
		k := key{r.Prefix}
		if cur, ok := set[k]; !ok || r.Hop.Metric < cur.Metric {
			set[k] = r.Hop
		}
	}
	changed := true
	for changed {
		changed = false
		// Deterministic iteration: collect and sort keys by length desc so
		// deepest prefixes merge first.
		keys := make([]addr.Prefix, 0, len(set))
		for k := range set {
			keys = append(keys, k.p)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].Len != keys[j].Len {
				return keys[i].Len > keys[j].Len
			}
			return keys[i].Addr < keys[j].Addr
		})
		for _, p := range keys {
			hop, ok := set[key{p}]
			if !ok || p.Len == 0 {
				continue
			}
			sib := p.Sibling()
			sibHop, ok := set[key{sib}]
			if !ok || sibHop.ID != hop.ID {
				continue
			}
			parent := p.Parent()
			merged := hop
			if sibHop.Metric < merged.Metric {
				merged = sibHop
			}
			merged.Origin = "aggregated"
			delete(set, key{p})
			delete(set, key{sib})
			if cur, ok := set[key{parent}]; !ok || merged.Metric < cur.Metric {
				set[key{parent}] = merged
			}
			changed = true
		}
	}
	out := make([]Route, 0, len(set))
	for k, hop := range set {
		out = append(out, Route{Prefix: k.p, Hop: hop})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prefix.Addr != out[j].Prefix.Addr {
			return out[i].Prefix.Addr < out[j].Prefix.Addr
		}
		return out[i].Prefix.Len < out[j].Prefix.Len
	})
	return out
}

// NewTableFrom builds a table from a route slice.
func NewTableFrom(routes []Route) *Table {
	t := &Table{}
	for _, r := range routes {
		t.Install(r.Prefix, r.Hop)
	}
	t.Churn = 0
	return t
}
