package routing

import (
	"fmt"
	"sort"

	"declnet/internal/addr"
)

// Speaker is a BGP-lite router: it originates prefixes, peers with other
// speakers, and selects best paths by shortest AS-path (here: hop count)
// with deterministic tie-breaking on the advertising peer's name. This is
// the machinery behind the baseline's transit gateways and VPN gateways —
// exactly the "inter-domain technologies such as BGP" the paper says
// tenants are forced to confront (§1).
type Speaker struct {
	Name  string
	peers map[string]*Speaker
	// adjIn holds the best advertisement heard per (prefix, peer).
	adjIn map[adjKey]advert
	// origin prefixes are locally attached networks.
	origin map[addr.Prefix]bool
	table  Table
	// Messages counts advertisements processed, a convergence-cost metric.
	Messages uint64
}

type adjKey struct {
	p    addr.Prefix
	peer string
}

type advert struct {
	path []string // speaker names, origin last
}

// NewSpeaker returns a named speaker with no peers or routes.
func NewSpeaker(name string) *Speaker {
	return &Speaker{
		Name:   name,
		peers:  make(map[string]*Speaker),
		adjIn:  make(map[adjKey]advert),
		origin: make(map[addr.Prefix]bool),
	}
}

// Peer connects two speakers bidirectionally and exchanges current state.
func Peer(a, b *Speaker) {
	if a == b {
		return
	}
	a.peers[b.Name] = b
	b.peers[a.Name] = a
	a.flushTo(b)
	b.flushTo(a)
}

// Unpeer disconnects two speakers and withdraws routes learned over the
// session from both sides.
func Unpeer(a, b *Speaker) {
	delete(a.peers, b.Name)
	delete(b.peers, a.Name)
	a.dropFrom(b.Name)
	b.dropFrom(a.Name)
}

// Originate announces a locally attached prefix to all peers.
func (s *Speaker) Originate(p addr.Prefix) {
	if s.origin[p] {
		return
	}
	s.origin[p] = true
	s.reselect(p)
	for _, peer := range s.sortedPeers() {
		peer.receive(s.Name, p, []string{s.Name})
	}
}

// WithdrawOrigin removes a locally attached prefix everywhere.
func (s *Speaker) WithdrawOrigin(p addr.Prefix) {
	if !s.origin[p] {
		return
	}
	delete(s.origin, p)
	s.reselect(p)
	for _, peer := range s.sortedPeers() {
		peer.withdraw(s.Name, p)
	}
}

// Table exposes the speaker's selected routes.
func (s *Speaker) Table() *Table { return &s.table }

// receive processes one advertisement from peer from.
func (s *Speaker) receive(from string, p addr.Prefix, path []string) {
	s.Messages++
	// Loop prevention: reject paths that already contain us.
	for _, hop := range path {
		if hop == s.Name {
			return
		}
	}
	prev, had := s.adjIn[adjKey{p, from}]
	if had && pathsEqual(prev.path, path) {
		return // duplicate, damp it
	}
	cp := make([]string, len(path))
	copy(cp, path)
	s.adjIn[adjKey{p, from}] = advert{path: cp}
	s.reselectAndPropagate(p)
}

// withdraw processes a withdrawal from peer from.
func (s *Speaker) withdraw(from string, p addr.Prefix) {
	s.Messages++
	if _, ok := s.adjIn[adjKey{p, from}]; !ok {
		return
	}
	delete(s.adjIn, adjKey{p, from})
	s.reselectAndPropagate(p)
}

// best returns the selected path for p (nil when unreachable) and the peer
// it was learned from ("" when locally originated).
func (s *Speaker) best(p addr.Prefix) ([]string, string) {
	if s.origin[p] {
		return []string{s.Name}, ""
	}
	var bestPath []string
	var bestPeer string
	for k, adv := range s.adjIn {
		if k.p != p {
			continue
		}
		if bestPath == nil ||
			len(adv.path) < len(bestPath) ||
			(len(adv.path) == len(bestPath) && k.peer < bestPeer) {
			bestPath, bestPeer = adv.path, k.peer
		}
	}
	return bestPath, bestPeer
}

func (s *Speaker) reselect(p addr.Prefix) ([]string, string) {
	path, peer := s.best(p)
	switch {
	case path == nil:
		s.table.Withdraw(p)
	case peer == "":
		s.table.Install(p, NextHop{ID: "local", Metric: 0, Origin: "connected"})
	default:
		// Force-install: selection already picked the winner.
		s.table.Withdraw(p)
		s.table.Install(p, NextHop{ID: peer, Metric: len(path), Origin: "propagated"})
	}
	return path, peer
}

func (s *Speaker) reselectAndPropagate(p addr.Prefix) {
	path, from := s.reselect(p)
	for _, peer := range s.sortedPeers() {
		if peer.Name == from {
			continue // split horizon
		}
		if path == nil {
			peer.withdraw(s.Name, p)
		} else {
			peer.receive(s.Name, p, append([]string{s.Name}, path...))
		}
	}
}

// flushTo sends s's full selected state to a new peer.
func (s *Speaker) flushTo(peer *Speaker) {
	type entry struct {
		p    addr.Prefix
		path []string
	}
	var entries []entry
	for p := range s.origin {
		entries = append(entries, entry{p, []string{s.Name}})
	}
	seen := make(map[addr.Prefix]bool)
	for k := range s.adjIn {
		seen[k.p] = true
	}
	for p := range seen {
		if s.origin[p] {
			continue
		}
		if path, from := s.best(p); path != nil && from != peer.Name {
			entries = append(entries, entry{p, append([]string{s.Name}, path...)})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].p.Addr != entries[j].p.Addr {
			return entries[i].p.Addr < entries[j].p.Addr
		}
		return entries[i].p.Len < entries[j].p.Len
	})
	for _, e := range entries {
		peer.receive(s.Name, e.p, e.path)
	}
}

// dropFrom withdraws all state learned from a disconnected peer.
func (s *Speaker) dropFrom(peer string) {
	var affected []addr.Prefix
	for k := range s.adjIn {
		if k.peer == peer {
			affected = append(affected, k.p)
		}
	}
	sort.Slice(affected, func(i, j int) bool { return affected[i].Addr < affected[j].Addr })
	for _, p := range affected {
		delete(s.adjIn, adjKey{p, peer})
		s.reselectAndPropagate(p)
	}
}

func (s *Speaker) sortedPeers() []*Speaker {
	names := make([]string, 0, len(s.peers))
	for n := range s.peers {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Speaker, len(names))
	for i, n := range names {
		out[i] = s.peers[n]
	}
	return out
}

func pathsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// PathTo returns the selected AS path from s toward ip, for diagnostics.
func (s *Speaker) PathTo(ip addr.IP) (string, bool) {
	hop, ok := s.table.Lookup(ip)
	if !ok {
		return "", false
	}
	return fmt.Sprintf("%s->%s", s.Name, hop.ID), true
}
