package routing

import (
	"testing"
	"testing/quick"

	"declnet/internal/addr"
)

func TestTableInstallMetric(t *testing.T) {
	var tbl Table
	tbl.Install(pfx("10.0.0.0/8"), NextHop{ID: "a", Metric: 5})
	tbl.Install(pfx("10.0.0.0/8"), NextHop{ID: "b", Metric: 3})
	if hop, _ := tbl.Lookup(ip("10.1.1.1")); hop.ID != "b" {
		t.Fatalf("lower metric did not win: %v", hop)
	}
	tbl.Install(pfx("10.0.0.0/8"), NextHop{ID: "c", Metric: 9})
	if hop, _ := tbl.Lookup(ip("10.1.1.1")); hop.ID != "b" {
		t.Fatalf("higher metric replaced route: %v", hop)
	}
	// Equal metric favors the newcomer.
	tbl.Install(pfx("10.0.0.0/8"), NextHop{ID: "d", Metric: 3})
	if hop, _ := tbl.Lookup(ip("10.1.1.1")); hop.ID != "d" {
		t.Fatalf("equal metric did not replace: %v", hop)
	}
}

func TestTableWithdrawChurn(t *testing.T) {
	var tbl Table
	tbl.Install(pfx("10.0.0.0/8"), NextHop{ID: "a"})
	if !tbl.Withdraw(pfx("10.0.0.0/8")) {
		t.Fatal("withdraw failed")
	}
	if tbl.Withdraw(pfx("10.0.0.0/8")) {
		t.Fatal("double withdraw succeeded")
	}
	if tbl.Churn != 2 {
		t.Fatalf("Churn = %d, want 2", tbl.Churn)
	}
	if tbl.Len() != 0 {
		t.Fatalf("Len = %d", tbl.Len())
	}
}

func TestAggregateSiblings(t *testing.T) {
	routes := []Route{
		{pfx("10.0.0.0/25"), NextHop{ID: "gw"}},
		{pfx("10.0.0.128/25"), NextHop{ID: "gw"}},
		{pfx("10.0.1.0/25"), NextHop{ID: "gw"}},
		{pfx("10.0.1.128/25"), NextHop{ID: "gw"}},
	}
	agg := Aggregate(routes)
	if len(agg) != 1 {
		t.Fatalf("aggregated to %d routes, want 1: %v", len(agg), agg)
	}
	if agg[0].Prefix != pfx("10.0.0.0/23") {
		t.Fatalf("aggregate = %s, want 10.0.0.0/23", agg[0].Prefix)
	}
	if agg[0].Hop.Origin != "aggregated" {
		t.Fatalf("origin = %q", agg[0].Hop.Origin)
	}
}

func TestAggregateDifferentHops(t *testing.T) {
	routes := []Route{
		{pfx("10.0.0.0/25"), NextHop{ID: "gw1"}},
		{pfx("10.0.0.128/25"), NextHop{ID: "gw2"}},
	}
	agg := Aggregate(routes)
	if len(agg) != 2 {
		t.Fatalf("merged routes with different hops: %v", agg)
	}
}

func TestAggregateNonSiblings(t *testing.T) {
	// Adjacent but not buddies: 10.0.0.128/25 and 10.0.1.0/25 cannot merge.
	routes := []Route{
		{pfx("10.0.0.128/25"), NextHop{ID: "gw"}},
		{pfx("10.0.1.0/25"), NextHop{ID: "gw"}},
	}
	if agg := Aggregate(routes); len(agg) != 2 {
		t.Fatalf("merged non-sibling prefixes: %v", agg)
	}
}

// Property: aggregation preserves forwarding semantics for addresses
// covered by the original table when the input covers whole subtrees
// (as the provider's dense allocator guarantees).
func TestQuickAggregatePreservesLookups(t *testing.T) {
	f := func(blocks []uint16, probes []uint32) bool {
		// Build a dense covering: consecutive /28s under 10.0.0.0/16
		// assigned round-robin to two gateways in runs, so some merge.
		var routes []Route
		for i, b := range blocks {
			base := addr.IP(0x0A000000) | addr.IP(uint32(b)<<4)
			gw := "gw" + string(rune('A'+(i/4)%2))
			routes = append(routes, Route{addr.NewPrefix(base, 28), NextHop{ID: gw}})
		}
		before := NewTableFrom(routes)
		after := NewTableFrom(Aggregate(routes))
		if after.Len() > before.Len() {
			return false // aggregation must never grow the table
		}
		for _, pr := range probes {
			q := addr.IP(0x0A000000) | addr.IP(pr&0x0000FFFF)
			bHop, bOK := before.Lookup(q)
			aHop, aOK := after.Lookup(q)
			if bOK != aOK {
				return false
			}
			if bOK && bHop.ID != aHop.ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNewTableFromResetsChurn(t *testing.T) {
	tbl := NewTableFrom([]Route{{pfx("10.0.0.0/8"), NextHop{ID: "a"}}})
	if tbl.Churn != 0 {
		t.Fatalf("fresh table churn = %d", tbl.Churn)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d", tbl.Len())
	}
}
