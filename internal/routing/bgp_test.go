package routing

import (
	"testing"

	"declnet/internal/addr"
)

func TestSpeakerDirectPeering(t *testing.T) {
	a, b := NewSpeaker("a"), NewSpeaker("b")
	a.Originate(pfx("10.0.0.0/16"))
	Peer(a, b)
	hop, ok := b.Table().Lookup(ip("10.0.1.1"))
	if !ok || hop.ID != "a" {
		t.Fatalf("b's route = %v,%v; want via a", hop, ok)
	}
	if hop.Origin != "propagated" {
		t.Fatalf("origin = %q", hop.Origin)
	}
}

func TestSpeakerOriginateAfterPeering(t *testing.T) {
	a, b := NewSpeaker("a"), NewSpeaker("b")
	Peer(a, b)
	a.Originate(pfx("10.0.0.0/16"))
	if _, ok := b.Table().Lookup(ip("10.0.1.1")); !ok {
		t.Fatal("late origination did not propagate")
	}
}

func TestSpeakerTransit(t *testing.T) {
	// a -- mid -- c: c should learn a's prefix through mid.
	a, mid, c := NewSpeaker("a"), NewSpeaker("mid"), NewSpeaker("c")
	Peer(a, mid)
	Peer(mid, c)
	a.Originate(pfx("10.0.0.0/16"))
	hop, ok := c.Table().Lookup(ip("10.0.0.1"))
	if !ok || hop.ID != "mid" {
		t.Fatalf("c's route = %v,%v; want via mid", hop, ok)
	}
	if hop.Metric != 2 {
		t.Fatalf("metric = %d, want 2 (path length a->mid)", hop.Metric)
	}
}

func TestSpeakerShortestPathWins(t *testing.T) {
	// Diamond: src peers with long chain and a direct shortcut.
	src, x, y, dst := NewSpeaker("src"), NewSpeaker("x"), NewSpeaker("y"), NewSpeaker("dst")
	Peer(src, x)
	Peer(x, y)
	Peer(y, dst)
	src.Originate(pfx("10.0.0.0/16"))
	// dst currently reaches via y (3 hops); now add the shortcut.
	Peer(src, dst)
	hop, ok := dst.Table().Lookup(ip("10.0.0.1"))
	if !ok || hop.ID != "src" {
		t.Fatalf("dst's route = %v,%v; want direct via src", hop, ok)
	}
}

func TestSpeakerWithdraw(t *testing.T) {
	a, b, c := NewSpeaker("a"), NewSpeaker("b"), NewSpeaker("c")
	Peer(a, b)
	Peer(b, c)
	a.Originate(pfx("10.0.0.0/16"))
	a.WithdrawOrigin(pfx("10.0.0.0/16"))
	if _, ok := c.Table().Lookup(ip("10.0.0.1")); ok {
		t.Fatal("withdrawn prefix still reachable at c")
	}
	if _, ok := b.Table().Lookup(ip("10.0.0.1")); ok {
		t.Fatal("withdrawn prefix still reachable at b")
	}
}

func TestSpeakerUnpeerFailover(t *testing.T) {
	// Triangle: c can reach a directly or via b. Cutting the direct
	// session must fail over to the b path.
	a, b, c := NewSpeaker("a"), NewSpeaker("b"), NewSpeaker("c")
	Peer(a, b)
	Peer(b, c)
	Peer(a, c)
	a.Originate(pfx("10.0.0.0/16"))
	if hop, _ := c.Table().Lookup(ip("10.0.0.1")); hop.ID != "a" {
		t.Fatalf("pre-failover route via %s, want a", hop.ID)
	}
	Unpeer(a, c)
	hop, ok := c.Table().Lookup(ip("10.0.0.1"))
	if !ok || hop.ID != "b" {
		t.Fatalf("post-failover route = %v,%v; want via b", hop, ok)
	}
}

func TestSpeakerLoopFree(t *testing.T) {
	// Full mesh of 4 with one origin; no advertisement storm (loop
	// prevention + duplicate damping must terminate) and all converge.
	spk := []*Speaker{NewSpeaker("s0"), NewSpeaker("s1"), NewSpeaker("s2"), NewSpeaker("s3")}
	for i := range spk {
		for j := i + 1; j < len(spk); j++ {
			Peer(spk[i], spk[j])
		}
	}
	spk[0].Originate(pfx("10.0.0.0/16"))
	for i := 1; i < len(spk); i++ {
		hop, ok := spk[i].Table().Lookup(ip("10.0.0.1"))
		if !ok {
			t.Fatalf("s%d did not converge", i)
		}
		if hop.ID != "s0" {
			t.Fatalf("s%d routes via %s, want direct s0", i, hop.ID)
		}
	}
	var total uint64
	for _, s := range spk {
		total += s.Messages
	}
	if total > 1000 {
		t.Fatalf("message storm: %d messages for one prefix in a 4-mesh", total)
	}
}

func TestSpeakerLocalPreferredOverLearned(t *testing.T) {
	a, b := NewSpeaker("a"), NewSpeaker("b")
	p := pfx("10.0.0.0/16")
	a.Originate(p)
	Peer(a, b)
	b.Originate(p) // b also attaches the prefix locally
	hop, ok := b.Table().Get(p)
	if !ok || hop.ID != "local" {
		t.Fatalf("b's route = %v,%v; want local", hop, ok)
	}
}

func TestSpeakerPathTo(t *testing.T) {
	a, b := NewSpeaker("a"), NewSpeaker("b")
	a.Originate(pfx("10.0.0.0/16"))
	Peer(a, b)
	got, ok := b.PathTo(ip("10.0.0.1"))
	if !ok || got != "b->a" {
		t.Fatalf("PathTo = %q,%v", got, ok)
	}
	if _, ok := b.PathTo(ip("1.1.1.1")); ok {
		t.Fatal("PathTo for unknown destination succeeded")
	}
}

func TestSpeakerChainConvergence(t *testing.T) {
	// A long chain converges end to end; metric equals hop distance.
	const n = 12
	spk := make([]*Speaker, n)
	for i := range spk {
		spk[i] = NewSpeaker("s" + string(rune('a'+i)))
	}
	for i := 1; i < n; i++ {
		Peer(spk[i-1], spk[i])
	}
	spk[0].Originate(pfx("172.16.0.0/12"))
	hop, ok := spk[n-1].Table().Lookup(ip("172.16.5.5"))
	if !ok {
		t.Fatal("end of chain did not converge")
	}
	if hop.Metric != n-1 {
		t.Fatalf("end metric = %d, want %d", hop.Metric, n-1)
	}
	// Withdrawal must also traverse the chain.
	spk[0].WithdrawOrigin(pfx("172.16.0.0/12"))
	if _, ok := spk[n-1].Table().Lookup(ip("172.16.5.5")); ok {
		t.Fatal("withdrawal did not traverse the chain")
	}
	_ = addr.Prefix{}
}
