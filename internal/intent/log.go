// Log is the durable store: an append-only journal file plus a
// periodic snapshot that lets the journal truncate. Open replays
// snapshot + journal tail into State; Record appends one frame per
// accepted mutation (batch = one frame) under a configurable fsync
// policy; Compact snapshots and truncates.
package intent

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
)

// SyncPolicy selects when the journal file is fsynced.
type SyncPolicy int

const (
	// SyncNone never fsyncs; the OS flushes on its own schedule. Fastest,
	// loses the tail on machine (not process) crash.
	SyncNone SyncPolicy = iota
	// SyncAlways fsyncs after every record. Slowest, loses nothing.
	SyncAlways
	// SyncInterval fsyncs every Options.SyncEvery records.
	SyncInterval
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	default:
		return "none"
	}
}

// ParseSyncPolicy maps the -fsync flag values to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "none":
		return SyncNone, nil
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	}
	return SyncNone, fmt.Errorf("intent: bad fsync policy %q (want none, always, or interval)", s)
}

// Options configures Open.
type Options struct {
	// Sync is the fsync policy; SyncEvery is the record interval for
	// SyncInterval (default 64).
	Sync      SyncPolicy
	SyncEvery int
	// CompactEvery snapshots and truncates the journal automatically
	// after this many appended records (0 = only on explicit Compact).
	CompactEvery int
	// Meta stamps world identity (seed, topology) into the first record
	// of a fresh journal; on reopen the caller compares it against
	// State.Meta and refuses to replay a foreign world's journal.
	Meta map[string]string
}

const (
	journalName  = "journal.log"
	snapshotName = "snapshot.json"
)

// Log is the durable intent store rooted at one directory. All methods
// are safe for concurrent use; a nil *Log is a no-op recorder so core
// can call Record unconditionally.
type Log struct {
	dir  string
	opts Options

	mu           sync.Mutex
	f            *os.File
	st           *State
	view         *State // last published copy-on-write snapshot (immutable)
	onRecord     func(tenant string, ops []Op)
	sinceSync    int
	sinceCompact int
	records      uint64 // frames appended this process (not lifetime)
	compactions  uint64
	appendErrs   uint64
	lastErr      error
	replayed     int   // journal records folded at Open
	replayOff    int64 // journal offset replay stopped at
	replayCut    bool  // true if Open truncated a corrupt tail
}

// Stats is a point-in-time summary for /v1/snapshot and declnetctl.
type Stats struct {
	Dir             string `json:"dir"`
	Seq             uint64 `json:"seq"`
	JournalRecords  uint64 `json:"journal_records"`
	ReplayedRecords int    `json:"replayed_records"`
	Compactions     uint64 `json:"compactions"`
	AppendErrors    uint64 `json:"append_errors"`
	LastError       string `json:"last_error,omitempty"`
	TailTruncated   bool   `json:"tail_truncated,omitempty"`
}

// Open loads (or creates) the store at dir: snapshot first, then the
// journal tail, folding both into State. A corrupt journal tail is cut
// off — everything before it replays — so a crash mid-append recovers
// to the last whole frame. A corrupt snapshot is an error: it is
// written atomically (tmp + rename), so corruption there means
// something other than a crash went wrong.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = 64
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("intent: %w", err)
	}
	l := &Log{dir: dir, opts: opts, st: NewState()}

	// Stream the snapshot through the decoder instead of slurping the
	// whole file: at the million-endpoint tier the snapshot is hundreds
	// of megabytes, and buffering it doubles recovery's peak memory.
	if sf, err := os.Open(filepath.Join(dir, snapshotName)); err == nil {
		derr := json.NewDecoder(bufio.NewReaderSize(sf, 1<<20)).Decode(l.st)
		sf.Close()
		if derr != nil {
			return nil, fmt.Errorf("intent: snapshot corrupt: %w", derr)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("intent: %w", err)
	}

	f, err := os.OpenFile(filepath.Join(dir, journalName), os.O_APPEND|os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("intent: %w", err)
	}
	l.f = f

	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("intent: %w", err)
	}
	if size == 0 {
		if err := l.writeHeaderLocked(); err != nil {
			f.Close()
			return nil, err
		}
		if len(opts.Meta) > 0 {
			// Stamp world identity as the journal's first record.
			l.mu.Lock()
			l.appendLocked("", nil, opts.Meta)
			l.mu.Unlock()
		}
		return l, nil
	}

	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("intent: %w", err)
	}
	recs, off, decErr := DecodeJournalParallel(bufio.NewReaderSize(f, 1<<20), runtime.GOMAXPROCS(0))
	for i := range recs {
		if err := l.st.Apply(&recs[i]); err != nil {
			f.Close()
			return nil, err
		}
	}
	l.replayed = len(recs)
	l.replayOff = off
	if decErr != nil {
		// Cut the corrupt tail so O_APPEND writes land right after the
		// last whole frame.
		if err := f.Truncate(off); err != nil {
			f.Close()
			return nil, fmt.Errorf("intent: truncating corrupt tail: %w", err)
		}
		l.replayCut = true
		if off < int64(len(journalMagic)) {
			// Even the header was bad; rewrite it.
			if err := l.writeHeaderLocked(); err != nil {
				f.Close()
				return nil, err
			}
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("intent: %w", err)
	}
	return l, nil
}

func (l *Log) writeHeaderLocked() error {
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("intent: %w", err)
	}
	// The file is O_APPEND, so this Write lands at the new end — offset 0.
	if _, err := l.f.Write(journalMagic); err != nil {
		return fmt.Errorf("intent: %w", err)
	}
	return nil
}

// Record journals one accepted mutation (all its ops in one atomic
// frame) and folds it into State. Called by core's verb wrappers with
// the shard lock held, after the body succeeded and before the verb
// returns — so anything the tenant was told succeeded is on disk (to
// the limit of the fsync policy). Nil-safe; returns the assigned
// sequence number (0 when disabled).
//
// Append errors are counted, not returned: the mutation has already
// been applied in memory and cannot be unwound here. Stats surfaces
// them; an operator seeing append_errors > 0 knows the journal has a
// hole from that point.
func (l *Log) Record(tenant string, ops ...Op) uint64 {
	if l == nil || len(ops) == 0 {
		return 0
	}
	l.mu.Lock()
	seq := l.appendLocked(tenant, ops, nil)
	fn := l.onRecord
	l.mu.Unlock()
	// The observer fires outside the log lock (it may take its own leaf
	// locks) but before Record returns — the caller still holds its
	// shard lock, so anything serialized against the mutation (a digest
	// under the global gate, a sweep) observes the notification too.
	// Fired even when the append itself failed: the in-memory mutation
	// has happened either way.
	if fn != nil {
		fn(tenant, ops)
	}
	return seq
}

// SetOnRecord registers an observer called after every Record with the
// accepted ops — core's dirty-set tracker and incremental digest hang
// off it. Set once, at EnableIntent time, before concurrent use.
func (l *Log) SetOnRecord(fn func(tenant string, ops []Op)) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.onRecord = fn
	l.mu.Unlock()
}

func (l *Log) appendLocked(tenant string, ops []Op, meta map[string]string) uint64 {
	rec := Record{Seq: l.st.Seq + 1, Tenant: tenant, Ops: ops, Meta: meta}
	// Apply first: it validates the ops against declared state, so a
	// record that would not replay is never persisted.
	if err := l.st.Apply(&rec); err != nil {
		l.appendErrs++
		l.lastErr = err
		return 0
	}
	frame, err := encodeFrame(&rec)
	if err == nil {
		if l.f == nil {
			err = errors.New("intent: log closed")
		} else {
			_, err = l.f.Write(frame)
		}
	}
	if err != nil {
		l.appendErrs++
		l.lastErr = err
		return rec.Seq
	}
	l.records++
	l.sinceSync++
	l.sinceCompact++
	switch l.opts.Sync {
	case SyncAlways:
		l.syncLocked()
	case SyncInterval:
		if l.sinceSync >= l.opts.SyncEvery {
			l.syncLocked()
		}
	}
	if l.opts.CompactEvery > 0 && l.sinceCompact >= l.opts.CompactEvery {
		if err := l.compactLocked(); err != nil {
			l.appendErrs++
			l.lastErr = err
		}
	}
	return rec.Seq
}

func (l *Log) syncLocked() {
	if l.f == nil {
		return
	}
	if err := l.f.Sync(); err != nil {
		l.appendErrs++
		l.lastErr = err
		return
	}
	l.sinceSync = 0
}

// Compact snapshots State atomically (tmp + fsync + rename) and resets
// the journal to an empty header. A crash between rename and truncate
// is safe: replay skips journal records at or below the snapshot's
// sequence number.
func (l *Log) Compact() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.compactLocked()
}

func (l *Log) compactLocked() error {
	if l.f == nil {
		return errors.New("intent: log closed")
	}
	tmp := filepath.Join(l.dir, snapshotName+".tmp")
	tf, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("intent: %w", err)
	}
	// Stream the encode: no full-snapshot byte buffer alongside the
	// state itself (see the matching streamed decode in Open).
	bw := bufio.NewWriterSize(tf, 1<<20)
	if err := json.NewEncoder(bw).Encode(l.st); err != nil {
		tf.Close()
		return fmt.Errorf("intent: %w", err)
	}
	if err := bw.Flush(); err != nil {
		tf.Close()
		return fmt.Errorf("intent: %w", err)
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return fmt.Errorf("intent: %w", err)
	}
	if err := tf.Close(); err != nil {
		return fmt.Errorf("intent: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, snapshotName)); err != nil {
		return fmt.Errorf("intent: %w", err)
	}
	if err := l.writeHeaderLocked(); err != nil {
		return err
	}
	l.sinceCompact = 0
	l.compactions++
	return nil
}

// State returns a deep copy of the declared world. The copy is made
// under the log's lock and diffed outside it, keeping the reconciler
// out of the wrapper's shard-lock -> log-lock order.
func (l *Log) State() *State {
	if l == nil {
		return NewState()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.st.Clone()
}

// View returns an immutable copy-on-write snapshot of the declared
// world. While no mutation lands, repeated calls return the same
// pointer with zero copying — the steady-state reconciler's per-sweep
// cost — and a refresh after mutations deep-copies only the touched
// sections, sharing the rest with the previous snapshot. Callers must
// treat the result as read-only. Nil-safe like State.
func (l *Log) View() *State {
	if l == nil {
		return NewState()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.view == nil || l.view.Seq != l.st.Seq {
		l.view = l.st.cloneView(l.view)
	}
	return l.view
}

// Seq returns the last assigned sequence number.
func (l *Log) Seq() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.st.Seq
}

// Meta returns the world-identity stamps folded from snapshot+journal.
func (l *Log) Meta() map[string]string {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	m := make(map[string]string, len(l.st.Meta))
	for k, v := range l.st.Meta {
		m[k] = v
	}
	return m
}

// Stats returns a point-in-time summary.
func (l *Log) Stats() Stats {
	if l == nil {
		return Stats{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	s := Stats{
		Dir:             l.dir,
		Seq:             l.st.Seq,
		JournalRecords:  l.records,
		ReplayedRecords: l.replayed,
		Compactions:     l.compactions,
		AppendErrors:    l.appendErrs,
		TailTruncated:   l.replayCut,
	}
	if l.lastErr != nil {
		s.LastError = l.lastErr.Error()
	}
	return s
}

// Dir returns the store's root directory.
func (l *Log) Dir() string {
	if l == nil {
		return ""
	}
	return l.dir
}

// Close syncs and closes the journal file. The store stays readable
// via State but further Records will count append errors.
func (l *Log) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
