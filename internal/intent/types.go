// Package intent is the durable desired-state store behind the control
// plane: an append-only replay journal of every accepted Table-2
// mutation, a periodic snapshot that lets the journal truncate, and the
// declared-state model (State) both restart recovery and the
// reconciliation engine diff against.
//
// The flow mirrors the hosting-provider convergence loop the paper's
// abstractions imply: tenants *declare* endpoints, permits, binds, and
// QoS; the provider persists the declaration before replying and keeps
// the dataplane converged to it afterwards. Core's mutation wrappers
// call Log.Record after validation succeeds and before the verb
// returns; a declnetd restart folds snapshot + journal tail back into
// State and rebuilds the in-memory world from it (core.RestoreIntent).
package intent

import "declnet/internal/addr"

// Journal verbs — one per accepted mutation kind. These are the wire
// names (they match the batch API where a batch verb exists) and are
// stable: old journals must replay on new builds.
const (
	OpRequestEIP     = "request_eip"
	OpReleaseEIP     = "release_eip"
	OpRequestSIP     = "request_sip"
	OpReleaseSIP     = "release_sip"
	OpBind           = "bind"
	OpUnbind         = "unbind"
	OpSetPermit      = "set_permit"
	OpPermit         = "permit"
	OpRevoke         = "revoke"
	OpSetQoS         = "set_qos"
	OpSetPotato      = "set_potato"
	OpSetVMEgress    = "set_vm_egress"
	OpCreateGroup    = "create_group"
	OpRegisterName   = "register_name"
	OpUnregisterName = "unregister_name"
)

// Op is one accepted mutation. Verb selects which operand fields are
// meaningful; everything else stays at its zero value and is omitted
// from the frame. Addresses are recorded resolved — a batch's "$i"
// back-references are concretized before journaling, so replay never
// needs batch context.
type Op struct {
	Verb string `json:"verb"`

	VM       string `json:"vm,omitempty"`
	Provider string `json:"provider,omitempty"`
	Region   string `json:"region,omitempty"`
	Name     string `json:"name,omitempty"`

	// Addr carries the granted address of request_eip/request_sip (the
	// verb's *result*, so replay re-claims the same address) and the
	// released address of release_eip/release_sip.
	Addr   addr.IP `json:"addr,omitempty"`
	EIP    addr.IP `json:"eip,omitempty"`
	SIP    addr.IP `json:"sip,omitempty"`
	Target addr.IP `json:"target,omitempty"`

	Weight  int           `json:"weight,omitempty"`
	Entries []addr.Prefix `json:"entries,omitempty"`
	Groups  []string      `json:"groups,omitempty"`
	Members []addr.IP     `json:"members,omitempty"`
	Bps     float64       `json:"bps,omitempty"`
	Policy  string        `json:"policy,omitempty"`
}

// Record is one journal frame: every op of one accepted mutation. A
// single verb journals one op; a /v1/batch journals all of its applied
// ops in one record, making the batch atomic under replay — a frame
// either decodes whole (CRC over the full payload) or not at all.
type Record struct {
	Seq    uint64 `json:"seq"`
	Tenant string `json:"tenant,omitempty"`
	Ops    []Op   `json:"ops,omitempty"`
	// Meta stamps world identity (seed, topology size) into a fresh
	// journal so a daemon refuses to replay a journal from a different
	// world. Folded into State.Meta on replay.
	Meta map[string]string `json:"meta,omitempty"`
}
