// Crash-safety property test: a journal cut at ANY byte offset must
// recover to a serial-oracle prefix of the recorded history — the state
// you get by folding the first k whole frames, for the k the decoder
// reports. Schedules are randomized and Records run concurrently, so
// -race covers the append path too.
package intent

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"declnet/internal/addr"
)

// genSchedule builds nRecs valid mutation records, pre-partitioned into
// one slice per worker so concurrent Records never produce an op that
// fails validation (each worker owns its own addresses and tenant).
func genSchedule(rng *rand.Rand, workers, perWorker int) [][][]Op {
	sched := make([][][]Op, workers)
	for w := 0; w < workers; w++ {
		base := addr.IP(0x0a000000 + uint32(w)<<12)
		sipBase := addr.IP(0xac100000 + uint32(w)<<12)
		var eips, sips []addr.IP
		nextEIP, nextSIP := base+1, sipBase+1
		for i := 0; i < perWorker; i++ {
			var ops []Op
			switch v := rng.Intn(10); {
			case v < 3 || len(eips) == 0:
				ops = append(ops, Op{Verb: OpRequestEIP, VM: fmt.Sprintf("vm-%d-%d", w, i),
					Provider: "p", Region: "r", Addr: nextEIP})
				eips = append(eips, nextEIP)
				nextEIP++
			case v < 4:
				ops = append(ops, Op{Verb: OpRequestSIP, Provider: "p", Addr: nextSIP})
				sips = append(sips, nextSIP)
				nextSIP++
			case v < 6 && len(sips) > 0:
				ops = append(ops, Op{Verb: OpBind, EIP: eips[rng.Intn(len(eips))],
					SIP: sips[rng.Intn(len(sips))], Weight: rng.Intn(4)})
			case v < 8:
				ops = append(ops, Op{Verb: OpSetPermit, Provider: "p", Target: eips[rng.Intn(len(eips))],
					Entries: []addr.Prefix{addr.NewPrefix(addr.IP(rng.Uint32()), 24)}})
			case v == 8:
				ops = append(ops, Op{Verb: OpSetQoS, Provider: "p", Region: "r",
					Bps: float64(1 + rng.Intn(1000))})
			default:
				// A small batch: grant + bind, one atomic frame.
				ops = append(ops,
					Op{Verb: OpRequestEIP, VM: fmt.Sprintf("vm-%d-%d b", w, i),
						Provider: "p", Region: "r", Addr: nextEIP},
					Op{Verb: OpSetVMEgress, EIP: nextEIP, Bps: 42})
				eips = append(eips, nextEIP)
				nextEIP++
			}
			sched[w] = append(sched[w], ops)
		}
	}
	return sched
}

func TestCrashAtEveryOffset(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const workers, perWorker = 4, 10

	// Record the schedule concurrently; the journal's append order IS
	// the serial oracle order.
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sched := genSchedule(rng, workers, perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%d", w)
			for _, ops := range sched[w] {
				l.Record(tenant, ops...)
			}
		}(w)
	}
	wg.Wait()
	if st := l.Stats(); st.AppendErrors != 0 {
		t.Fatalf("schedule produced append errors: %+v", st)
	}
	l.Close()

	journal, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	recs, _, derr := DecodeJournal(bytes.NewReader(journal))
	if derr != nil {
		t.Fatalf("full journal does not decode clean: %v", derr)
	}
	if len(recs) != workers*perWorker {
		t.Fatalf("journal holds %d records, want %d", len(recs), workers*perWorker)
	}

	// Serial oracle: state after each whole-frame prefix.
	oracle := make([]string, len(recs)+1)
	st := NewState()
	oracle[0] = mustJSON(t, st)
	for i := range recs {
		if err := st.Apply(&recs[i]); err != nil {
			t.Fatalf("oracle apply %d: %v", i, err)
		}
		oracle[i+1] = mustJSON(t, st)
	}

	// Crash at every offset: recovery must land exactly on oracle[k].
	root := t.TempDir()
	for cut := 0; cut <= len(journal); cut++ {
		cdir := filepath.Join(root, fmt.Sprintf("cut-%d", cut))
		if err := os.MkdirAll(cdir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(cdir, journalName), journal[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rl, err := Open(cdir, Options{})
		if err != nil {
			t.Fatalf("cut %d: Open failed: %v", cut, err)
		}
		k := rl.Stats().ReplayedRecords
		if k < 0 || k > len(recs) {
			t.Fatalf("cut %d: replayed %d records, outside [0, %d]", cut, k, len(recs))
		}
		if got := mustJSON(t, rl.State()); got != oracle[k] {
			t.Fatalf("cut %d: recovered state is not the serial prefix after %d records\n got %s\nwant %s",
				cut, k, got, oracle[k])
		}
		// A full-length cut must lose nothing.
		if cut == len(journal) && k != len(recs) {
			t.Fatalf("uncut journal replayed only %d of %d records", k, len(recs))
		}
		// The store must accept appends after any crash point.
		if seq := rl.Record("tenant-0", Op{Verb: OpSetQoS, Provider: "p", Region: "r", Bps: 7}); seq == 0 {
			t.Fatalf("cut %d: post-recovery Record rejected", cut)
		}
		rl.Close()
		os.RemoveAll(cdir)
	}
}

// TestCrashDuringCompaction covers the snapshot+journal interaction: a
// cut journal alongside a snapshot recovers to snapshot ∘ prefix.
func TestCrashDuringCompaction(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sched := genSchedule(rand.New(rand.NewSource(2)), 1, 12)
	for i, ops := range sched[0] {
		l.Record("acme", ops...)
		if i == 5 {
			if err := l.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := mustJSON(t, l.State())
	l.Close()

	// Recovery from snapshot + post-compaction tail.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := mustJSON(t, l2.State()); got != want {
		t.Fatalf("snapshot+tail recovery differs\n got %s\nwant %s", got, want)
	}
	if l2.Stats().ReplayedRecords != 6 {
		t.Fatalf("replayed %d tail records, want 6", l2.Stats().ReplayedRecords)
	}
}

func mustJSON(t testing.TB, s *State) string {
	t.Helper()
	buf, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}
