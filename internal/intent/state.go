// State is the declared world: the fold of every journaled mutation,
// mirroring exactly the state core's verb bodies build — endpoints,
// services and their binds, permit lists (group references expanded at
// apply time, as core expands them at verb time), quotas, potato
// profiles, groups, names, and the address pools' allocation cursors.
// It is what restart recovery rebuilds the in-memory world from and
// what the reconciler treats as desired state.
package intent

import (
	"fmt"
	"sort"

	"declnet/internal/addr"
)

// Endpoint is the declared record of one granted EIP.
type Endpoint struct {
	Tenant    string  `json:"tenant"`
	VM        string  `json:"vm"`
	Provider  string  `json:"provider"`
	Region    string  `json:"region"`
	EgressCap float64 `json:"egress_cap,omitempty"`
}

// Bind is one declared EIP -> SIP binding (weight already clamped the
// way the balancer clamps it, so desired and actual compare directly).
type Bind struct {
	EIP    addr.IP `json:"eip"`
	Weight int     `json:"weight"`
}

// Service is the declared record of one granted SIP.
type Service struct {
	Tenant   string `json:"tenant"`
	Provider string `json:"provider"`
	Binds    []Bind `json:"binds,omitempty"`
}

// PermitList is the declared permit list guarding one target, group
// references already expanded.
type PermitList struct {
	Tenant  string        `json:"tenant"`
	Entries []addr.Prefix `json:"entries,omitempty"`
}

// PoolState is one address pool's allocation cursor: the next-fresh
// address and the free list of released ones, in release order. It is
// rebuilt from the journal's grant/release ops so a recovered pool
// hands out exactly the addresses the crashed one would have.
type PoolState struct {
	Next     addr.IP   `json:"next"`
	Released []addr.IP `json:"released,omitempty"`
}

// claim folds "this address was granted" into the cursor. The journal
// serializes on append order, which under concurrent shards may differ
// from pool-allocation order, so claim tolerates out-of-order grants:
// a claim past the cursor skip-fills the gap into Released (the gap
// addresses' own claims remove them again), and a claim below the
// cursor that is not in Released was already skip-filled past. Serial
// schedules replay byte-exact.
func (ps *PoolState) claim(a addr.IP) {
	if ps.Next == 0 {
		ps.Next = a
	}
	for i, r := range ps.Released {
		if r == a {
			ps.Released = append(ps.Released[:i], ps.Released[i+1:]...)
			return
		}
	}
	switch {
	case a == ps.Next:
		ps.Next++
	case a > ps.Next:
		for ip := ps.Next; ip < a; ip++ {
			ps.Released = append(ps.Released, ip)
		}
		ps.Next = a + 1
	}
}

// release appends to the free list (FIFO, matching addr.HostPool).
func (ps *PoolState) release(a addr.IP) {
	ps.Released = append(ps.Released, a)
}

// State is the full declared world at one journal sequence number.
// JSON-serializable whole: the snapshot file is exactly this struct.
type State struct {
	Seq  uint64            `json:"seq"`
	Meta map[string]string `json:"meta,omitempty"`

	Endpoints map[addr.IP]*Endpoint   `json:"endpoints,omitempty"`
	Services  map[addr.IP]*Service    `json:"services,omitempty"`
	Permits   map[addr.IP]*PermitList `json:"permits,omitempty"`

	// Quotas keys "provider|tenant|region" -> bits/s. Potato keys
	// "provider|tenant" -> policy name. ProvGroups keys
	// "provider|tenant|name"; Groups and Names key "tenant|name".
	Quotas     map[string]float64   `json:"quotas,omitempty"`
	Potato     map[string]string    `json:"potato,omitempty"`
	ProvGroups map[string][]addr.IP `json:"prov_groups,omitempty"`
	Groups     map[string][]addr.IP `json:"groups,omitempty"`
	Names      map[string]addr.IP   `json:"names,omitempty"`

	// EIPPools keys "provider/region" (the shard-region notation);
	// SIPPools keys the provider name.
	EIPPools map[string]*PoolState `json:"eip_pools,omitempty"`
	SIPPools map[string]*PoolState `json:"sip_pools,omitempty"`

	// dirty accumulates which sections applyOp has touched since the
	// last published view (see Log.View): the copy-on-write refresh
	// deep-copies only those and shares the rest with the previous
	// immutable snapshot. Never serialized.
	dirty uint32
}

// Section bits for the copy-on-write view. An op's mask may overstate
// (a no-op apply still marks) — that only costs a spurious copy.
const (
	secEndpoints uint32 = 1 << iota
	secServices
	secPermits
	secQuotas
	secPotato
	secProvGroups
	secGroups
	secNames
	secEIPPools
	secSIPPools
	secMeta
	secAll = secMeta<<1 - 1
)

// dirtyMask maps a verb to the sections its apply can touch.
func dirtyMask(verb string) uint32 {
	switch verb {
	case OpRequestEIP, OpReleaseEIP:
		return secEndpoints | secServices | secPermits | secEIPPools
	case OpRequestSIP, OpReleaseSIP:
		return secServices | secPermits | secSIPPools
	case OpBind, OpUnbind:
		return secServices
	case OpSetPermit, OpPermit, OpRevoke:
		return secPermits
	case OpSetQoS:
		return secQuotas
	case OpSetPotato:
		return secPotato
	case OpSetVMEgress:
		return secEndpoints
	case OpCreateGroup:
		return secProvGroups | secGroups
	case OpRegisterName, OpUnregisterName:
		return secNames
	}
	return secAll
}

// NewState returns an empty declared world.
func NewState() *State {
	return &State{
		Endpoints:  make(map[addr.IP]*Endpoint),
		Services:   make(map[addr.IP]*Service),
		Permits:    make(map[addr.IP]*PermitList),
		Quotas:     make(map[string]float64),
		Potato:     make(map[string]string),
		ProvGroups: make(map[string][]addr.IP),
		Groups:     make(map[string][]addr.IP),
		Names:      make(map[string]addr.IP),
		EIPPools:   make(map[string]*PoolState),
		SIPPools:   make(map[string]*PoolState),
	}
}

// Composite-key builders. "|" never appears in provider, tenant,
// region, or name strings the system generates.
func QuotaKey(provider, tenant, region string) string { return provider + "|" + tenant + "|" + region }
func PotatoKey(provider, tenant string) string        { return provider + "|" + tenant }
func GroupKey(tenant, name string) string             { return tenant + "|" + name }
func ProvGroupKey(provider, tenant, name string) string {
	return provider + "|" + tenant + "|" + name
}
func PoolKey(provider, region string) string { return provider + "/" + region }

func (s *State) eipPool(provider, region string) *PoolState {
	k := PoolKey(provider, region)
	ps := s.EIPPools[k]
	if ps == nil {
		ps = &PoolState{}
		s.EIPPools[k] = ps
	}
	return ps
}

func (s *State) sipPool(provider string) *PoolState {
	ps := s.SIPPools[provider]
	if ps == nil {
		ps = &PoolState{}
		s.SIPPools[provider] = ps
	}
	return ps
}

// Apply folds one record into the state. Records at or below the
// state's sequence are skipped (the snapshot already covers them), so
// replaying a journal whose prefix predates the snapshot is idempotent.
// An apply error means the journal is inconsistent with the state — the
// caller should stop replaying there.
func (s *State) Apply(rec *Record) error {
	if rec.Seq != 0 && rec.Seq <= s.Seq {
		return nil
	}
	if len(rec.Meta) > 0 {
		if s.Meta == nil {
			s.Meta = make(map[string]string, len(rec.Meta))
		}
		for k, v := range rec.Meta {
			s.Meta[k] = v
		}
		s.dirty |= secMeta
	}
	for i := range rec.Ops {
		s.dirty |= dirtyMask(rec.Ops[i].Verb)
		if err := s.applyOp(rec.Tenant, &rec.Ops[i]); err != nil {
			return fmt.Errorf("intent: record %d op %d (%s): %w", rec.Seq, i, rec.Ops[i].Verb, err)
		}
	}
	if rec.Seq > s.Seq {
		s.Seq = rec.Seq
	}
	return nil
}

func (s *State) applyOp(tenant string, op *Op) error {
	switch op.Verb {
	case OpRequestEIP:
		// A fresh grant starts default-off with no bindings. Normally the
		// release already cleaned these up; under a concurrent
		// release/re-grant journal inversion (see OpReleaseEIP) this is
		// where the previous incarnation's leftovers go away.
		for _, svc := range s.Services {
			removeBind(svc, op.Addr)
		}
		delete(s.Permits, op.Addr)
		s.Endpoints[op.Addr] = &Endpoint{
			Tenant: tenant, VM: op.VM, Provider: op.Provider, Region: op.Region,
		}
		s.eipPool(op.Provider, op.Region).claim(op.Addr)
	case OpReleaseEIP:
		ep, ok := s.Endpoints[op.Addr]
		if !ok {
			return fmt.Errorf("release of unknown endpoint %s", op.Addr)
		}
		if ep.Tenant != tenant {
			// Stale record: the journal serializes on append order, which
			// under concurrent shards can place a release after the
			// re-grant that reused its address. The re-grant's apply
			// already cleaned up; the release's pool effect was consumed
			// by the re-claim. Drop it.
			return nil
		}
		// Mirror core: the released EIP drains out of every balancer.
		for _, svc := range s.Services {
			removeBind(svc, op.Addr)
		}
		delete(s.Permits, op.Addr)
		delete(s.Endpoints, op.Addr)
		s.eipPool(ep.Provider, ep.Region).release(op.Addr)
	case OpRequestSIP:
		delete(s.Permits, op.Addr)
		s.Services[op.Addr] = &Service{Tenant: tenant, Provider: op.Provider}
		s.sipPool(op.Provider).claim(op.Addr)
	case OpReleaseSIP:
		svc, ok := s.Services[op.Addr]
		if !ok {
			return fmt.Errorf("release of unknown service %s", op.Addr)
		}
		if svc.Tenant != tenant {
			return nil // stale record, as in OpReleaseEIP
		}
		delete(s.Permits, op.Addr)
		delete(s.Services, op.Addr)
		s.sipPool(svc.Provider).release(op.Addr)
	case OpBind:
		svc, ok := s.Services[op.SIP]
		if !ok {
			return fmt.Errorf("bind to unknown service %s", op.SIP)
		}
		w := op.Weight
		if w < 1 {
			w = 1 // the balancer clamps; store what it stores
		}
		for i := range svc.Binds {
			if svc.Binds[i].EIP == op.EIP {
				svc.Binds[i].Weight = w
				return nil
			}
		}
		svc.Binds = append(svc.Binds, Bind{EIP: op.EIP, Weight: w})
	case OpUnbind:
		svc, ok := s.Services[op.SIP]
		if !ok {
			return fmt.Errorf("unbind from unknown service %s", op.SIP)
		}
		removeBind(svc, op.EIP)
	case OpSetPermit:
		// Deduplicate while expanding: the enforcement engine's entry set
		// dedups (/32s in a map, prefixes in a trie), and the reconciler
		// compares declared vs installed entry sets — a duplicate here
		// would read as permanent drift. Entries are kept in canonical
		// (address, length) order at install time, so the reconciler's
		// steady-state comparison never sorts, and dedup is a binary
		// search instead of a linear scan.
		all := make([]addr.Prefix, 0, len(op.Entries))
		for _, e := range op.Entries {
			all = insertEntry(all, e)
		}
		for _, g := range op.Groups {
			// Same resolution order as core.setPermitList: the provider
			// the verb ran on first, then the cloud-level group table.
			members, ok := s.ProvGroups[ProvGroupKey(op.Provider, tenant, g)]
			if !ok {
				members, ok = s.Groups[GroupKey(tenant, g)]
			}
			if !ok {
				return fmt.Errorf("unknown group %q", g)
			}
			for _, m := range members {
				all = insertEntry(all, addr.NewPrefix(m, 32))
			}
		}
		s.Permits[op.Target] = &PermitList{Tenant: tenant, Entries: all}
	case OpPermit:
		pl := s.Permits[op.Target]
		if pl == nil {
			pl = &PermitList{Tenant: tenant}
			s.Permits[op.Target] = pl
		}
		for _, e := range op.Entries {
			pl.Entries = insertEntry(pl.Entries, e)
		}
	case OpRevoke:
		pl := s.Permits[op.Target]
		if pl == nil {
			return nil // revoking from an empty list is a no-op, as in core
		}
		for _, e := range op.Entries {
			for i, have := range pl.Entries {
				if have == e {
					pl.Entries = append(pl.Entries[:i], pl.Entries[i+1:]...)
					break
				}
			}
		}
	case OpSetQoS:
		s.Quotas[QuotaKey(op.Provider, tenant, op.Region)] = op.Bps
	case OpSetPotato:
		s.Potato[PotatoKey(op.Provider, tenant)] = op.Policy
	case OpSetVMEgress:
		ep, ok := s.Endpoints[op.EIP]
		if !ok {
			return fmt.Errorf("egress cap for unknown endpoint %s", op.EIP)
		}
		ep.EgressCap = op.Bps
	case OpCreateGroup:
		members := append([]addr.IP(nil), op.Members...)
		if op.Provider != "" {
			s.ProvGroups[ProvGroupKey(op.Provider, tenant, op.Name)] = members
		} else {
			s.Groups[GroupKey(tenant, op.Name)] = members
		}
	case OpRegisterName:
		s.Names[GroupKey(tenant, op.Name)] = op.Addr
	case OpUnregisterName:
		delete(s.Names, GroupKey(tenant, op.Name))
	default:
		return fmt.Errorf("unknown verb %q", op.Verb)
	}
	return nil
}

func removeBind(svc *Service, eip addr.IP) {
	for i := range svc.Binds {
		if svc.Binds[i].EIP == eip {
			svc.Binds = append(svc.Binds[:i], svc.Binds[i+1:]...)
			return
		}
	}
}

// insertEntry adds e to a canonically-sorted entry set — ordered by
// address then length — keeping it deduplicated. Binary search makes a
// full list build O(n log n) where the old contains-scan was O(n²).
func insertEntry(entries []addr.Prefix, e addr.Prefix) []addr.Prefix {
	i := sort.Search(len(entries), func(i int) bool {
		return entries[i].Addr > e.Addr ||
			(entries[i].Addr == e.Addr && entries[i].Len >= e.Len)
	})
	if i < len(entries) && entries[i] == e {
		return entries
	}
	entries = append(entries, addr.Prefix{})
	copy(entries[i+1:], entries[i:])
	entries[i] = e
	return entries
}

// cloneView publishes an immutable snapshot of s for Log.View: every
// section applyOp has touched since the previous view is deep-copied,
// everything else shares the previous view's section map. prev must be
// the previously published (immutable) view or nil; its clean sections
// are by construction identical to s's, so sharing them is safe, and
// nothing ever aliases s's own live maps. Clears the dirty mask.
func (s *State) cloneView(prev *State) *State {
	d := s.dirty
	if prev == nil {
		d = secAll
	}
	s.dirty = 0
	c := &State{Seq: s.Seq}
	if d&secMeta != 0 {
		if s.Meta != nil {
			c.Meta = make(map[string]string, len(s.Meta))
			for k, v := range s.Meta {
				c.Meta[k] = v
			}
		}
	} else {
		c.Meta = prev.Meta
	}
	if d&secEndpoints != 0 {
		c.Endpoints = make(map[addr.IP]*Endpoint, len(s.Endpoints))
		for k, v := range s.Endpoints {
			ep := *v
			c.Endpoints[k] = &ep
		}
	} else {
		c.Endpoints = prev.Endpoints
	}
	if d&secServices != 0 {
		c.Services = make(map[addr.IP]*Service, len(s.Services))
		for k, v := range s.Services {
			svc := *v
			svc.Binds = append([]Bind(nil), v.Binds...)
			c.Services[k] = &svc
		}
	} else {
		c.Services = prev.Services
	}
	if d&secPermits != 0 {
		c.Permits = make(map[addr.IP]*PermitList, len(s.Permits))
		for k, v := range s.Permits {
			pl := *v
			pl.Entries = append([]addr.Prefix(nil), v.Entries...)
			c.Permits[k] = &pl
		}
	} else {
		c.Permits = prev.Permits
	}
	if d&secQuotas != 0 {
		c.Quotas = make(map[string]float64, len(s.Quotas))
		for k, v := range s.Quotas {
			c.Quotas[k] = v
		}
	} else {
		c.Quotas = prev.Quotas
	}
	if d&secPotato != 0 {
		c.Potato = make(map[string]string, len(s.Potato))
		for k, v := range s.Potato {
			c.Potato[k] = v
		}
	} else {
		c.Potato = prev.Potato
	}
	if d&secProvGroups != 0 {
		c.ProvGroups = make(map[string][]addr.IP, len(s.ProvGroups))
		for k, v := range s.ProvGroups {
			c.ProvGroups[k] = append([]addr.IP(nil), v...)
		}
	} else {
		c.ProvGroups = prev.ProvGroups
	}
	if d&secGroups != 0 {
		c.Groups = make(map[string][]addr.IP, len(s.Groups))
		for k, v := range s.Groups {
			c.Groups[k] = append([]addr.IP(nil), v...)
		}
	} else {
		c.Groups = prev.Groups
	}
	if d&secNames != 0 {
		c.Names = make(map[string]addr.IP, len(s.Names))
		for k, v := range s.Names {
			c.Names[k] = v
		}
	} else {
		c.Names = prev.Names
	}
	if d&secEIPPools != 0 {
		c.EIPPools = make(map[string]*PoolState, len(s.EIPPools))
		for k, v := range s.EIPPools {
			c.EIPPools[k] = &PoolState{Next: v.Next, Released: append([]addr.IP(nil), v.Released...)}
		}
	} else {
		c.EIPPools = prev.EIPPools
	}
	if d&secSIPPools != 0 {
		c.SIPPools = make(map[string]*PoolState, len(s.SIPPools))
		for k, v := range s.SIPPools {
			c.SIPPools[k] = &PoolState{Next: v.Next, Released: append([]addr.IP(nil), v.Released...)}
		}
	} else {
		c.SIPPools = prev.SIPPools
	}
	return c
}

// Clone deep-copies the state. The reconciler clones under the log's
// lock and diffs outside it, so diffing (which takes shard locks) can
// never invert the wrapper's shard-lock -> log-lock order.
func (s *State) Clone() *State {
	c := &State{Seq: s.Seq}
	if s.Meta != nil {
		c.Meta = make(map[string]string, len(s.Meta))
		for k, v := range s.Meta {
			c.Meta[k] = v
		}
	}
	c.Endpoints = make(map[addr.IP]*Endpoint, len(s.Endpoints))
	for k, v := range s.Endpoints {
		ep := *v
		c.Endpoints[k] = &ep
	}
	c.Services = make(map[addr.IP]*Service, len(s.Services))
	for k, v := range s.Services {
		svc := *v
		svc.Binds = append([]Bind(nil), v.Binds...)
		c.Services[k] = &svc
	}
	c.Permits = make(map[addr.IP]*PermitList, len(s.Permits))
	for k, v := range s.Permits {
		pl := *v
		pl.Entries = append([]addr.Prefix(nil), v.Entries...)
		c.Permits[k] = &pl
	}
	c.Quotas = make(map[string]float64, len(s.Quotas))
	for k, v := range s.Quotas {
		c.Quotas[k] = v
	}
	c.Potato = make(map[string]string, len(s.Potato))
	for k, v := range s.Potato {
		c.Potato[k] = v
	}
	c.ProvGroups = make(map[string][]addr.IP, len(s.ProvGroups))
	for k, v := range s.ProvGroups {
		c.ProvGroups[k] = append([]addr.IP(nil), v...)
	}
	c.Groups = make(map[string][]addr.IP, len(s.Groups))
	for k, v := range s.Groups {
		c.Groups[k] = append([]addr.IP(nil), v...)
	}
	c.Names = make(map[string]addr.IP, len(s.Names))
	for k, v := range s.Names {
		c.Names[k] = v
	}
	c.EIPPools = make(map[string]*PoolState, len(s.EIPPools))
	for k, v := range s.EIPPools {
		c.EIPPools[k] = &PoolState{Next: v.Next, Released: append([]addr.IP(nil), v.Released...)}
	}
	c.SIPPools = make(map[string]*PoolState, len(s.SIPPools))
	for k, v := range s.SIPPools {
		c.SIPPools[k] = &PoolState{Next: v.Next, Released: append([]addr.IP(nil), v.Released...)}
	}
	return c
}
