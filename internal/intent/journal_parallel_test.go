package intent

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// buildJournal renders n well-formed frames behind the magic header.
func buildJournal(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.Write(journalMagic)
	for i := 0; i < n; i++ {
		rec := Record{
			Seq:    uint64(i + 1),
			Tenant: fmt.Sprintf("t%d", i%7),
			Ops: []Op{
				{Verb: OpRequestEIP, Provider: "A", Region: fmt.Sprintf("r%d", i%3)},
				{Verb: OpSetQoS, Provider: "A", Region: "r0", Bps: float64(i)},
			},
		}
		frame, err := encodeFrame(&rec)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(frame)
	}
	return buf.Bytes()
}

// decodeBoth runs the serial and parallel decoders over the same bytes
// and requires identical records, offset, and error classification.
func decodeBoth(t *testing.T, raw []byte, workers int) {
	t.Helper()
	sRecs, sOff, sErr := DecodeJournal(bytes.NewReader(raw))
	pRecs, pOff, pErr := DecodeJournalParallel(bytes.NewReader(raw), workers)
	if len(sRecs) != len(pRecs) {
		t.Fatalf("record count: serial %d, parallel %d", len(sRecs), len(pRecs))
	}
	for i := range sRecs {
		a, b := fmt.Sprintf("%+v", sRecs[i]), fmt.Sprintf("%+v", pRecs[i])
		if a != b {
			t.Fatalf("record %d differs:\nserial   %s\nparallel %s", i, a, b)
		}
	}
	if sOff != pOff {
		t.Fatalf("offset: serial %d, parallel %d", sOff, pOff)
	}
	sMsg, pMsg := fmt.Sprint(sErr), fmt.Sprint(pErr)
	if (sErr == nil) != (pErr == nil) || sMsg != pMsg {
		t.Fatalf("error: serial %v, parallel %v", sErr, pErr)
	}
}

func TestDecodeJournalParallelMatchesSerial(t *testing.T) {
	for _, n := range []int{0, 1, 7, 256} {
		decodeBoth(t, buildJournal(t, n), 4)
	}
	// More workers than frames, and the serial fallback path.
	decodeBoth(t, buildJournal(t, 3), 64)
	decodeBoth(t, buildJournal(t, 3), 1)
}

func TestDecodeJournalParallelCorruption(t *testing.T) {
	base := buildJournal(t, 64)
	rng := rand.New(rand.NewSource(7))
	// Single-byte flips anywhere in the stream: same longest valid
	// prefix, same stopping offset, same corruption reason.
	for trial := 0; trial < 200; trial++ {
		raw := append([]byte(nil), base...)
		raw[rng.Intn(len(raw))] ^= 0xff
		decodeBoth(t, raw, 4)
	}
	// Truncations, including mid-header and mid-payload cuts.
	for trial := 0; trial < 100; trial++ {
		decodeBoth(t, base[:rng.Intn(len(base))], 4)
	}
	// A bad frame early must win over later damage, exactly as the
	// serial scan reports it.
	raw := append([]byte(nil), base...)
	raw[len(journalMagic)+frameHeaderLen] ^= 0xff // first frame payload
	raw[len(raw)-1] ^= 0xff                       // last frame payload
	decodeBoth(t, raw, 4)
}
