package intent

import (
	"bytes"
	"errors"
	"testing"

	"declnet/internal/addr"
)

// FuzzJournalDecode is the crash-safety contract of the journal format:
// DecodeJournal over ANY byte stream must return the longest valid
// prefix and a typed *CorruptError (or nil on clean EOF) — never panic,
// never over-read, never return records past the corruption point.
// Folding the returned records into a State must not panic either.
func FuzzJournalDecode(f *testing.F) {
	// A valid two-frame journal as the structured seed.
	var valid bytes.Buffer
	valid.Write(journalMagic)
	seedOps := []Op{
		{Verb: OpRequestEIP, VM: "vm-1", Provider: "p", Region: "r", Addr: addr.IP(0x0a000001)},
		{Verb: OpSetPermit, Provider: "p", Target: addr.IP(0x0a000001),
			Entries: []addr.Prefix{addr.NewPrefix(addr.IP(0xc0a80000), 24)}},
	}
	for i, op := range seedOps {
		frame, err := encodeFrame(&Record{Seq: uint64(i + 1), Tenant: "acme", Ops: []Op{op}})
		if err != nil {
			f.Fatal(err)
		}
		valid.Write(frame)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte("DNETJNL1"))
	f.Add([]byte("NOTAJNL0xxxxxxxx"))
	f.Add(append(append([]byte{}, journalMagic...), 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0))
	f.Add(valid.Bytes()[:valid.Len()-5]) // truncated mid-frame
	flipped := append([]byte{}, valid.Bytes()...)
	flipped[len(flipped)-1] ^= 0xff
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, off, err := DecodeJournal(bytes.NewReader(data))
		if off < 0 || off > int64(len(data)) {
			t.Fatalf("offset %d out of range [0, %d]", off, len(data))
		}
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("error is %T (%v), want *CorruptError", err, err)
			}
			if ce.Offset != off {
				t.Fatalf("CorruptError.Offset = %d, decode offset = %d", ce.Offset, off)
			}
		}
		// The reported prefix must itself decode clean and identically:
		// this is what Open truncates to and appends after.
		if off >= int64(len(journalMagic)) {
			recs2, off2, err2 := DecodeJournal(bytes.NewReader(data[:off]))
			if err2 != nil {
				t.Fatalf("valid prefix re-decode failed: %v", err2)
			}
			if off2 != off || len(recs2) != len(recs) {
				t.Fatalf("prefix re-decode: %d recs at %d, want %d recs at %d",
					len(recs2), off2, len(recs), off)
			}
		}
		// Replay must tolerate whatever records survive the CRC: apply
		// errors are fine (Open stops there); panics are not.
		st := NewState()
		for i := range recs {
			if err := st.Apply(&recs[i]); err != nil {
				break
			}
		}
	})
}
