// Journal framing: a fixed magic+version header followed by
// length-prefixed, CRC-guarded JSON frames. The decoder is the
// crash-safety contract of the whole subsystem — it must stop cleanly
// at the last valid frame of an arbitrarily truncated or corrupted
// file, returning a typed *CorruptError, and must never panic
// (FuzzJournalDecode holds it to that).
package intent

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// journalMagic opens every journal file: format name plus version. A
// future frame-format change bumps the trailing digit and keeps a
// decoder for the old one.
var journalMagic = []byte("DNETJNL1")

// maxFrame bounds a frame payload (64 MiB). Real records are a few KiB
// at most — even a 4096-op batch stays far under this — so a larger
// claimed length can only be corruption.
const maxFrame = 1 << 26

// frameHeaderLen is the per-frame prefix: 4-byte little-endian payload
// length, 4-byte little-endian CRC32 (IEEE) of the payload.
const frameHeaderLen = 8

// CorruptError reports where and why journal decoding stopped. Replay
// treats it as "the durable prefix ends here", not as failure: every
// frame before Offset decoded clean.
type CorruptError struct {
	Offset int64
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("intent: journal corrupt at offset %d: %s", e.Offset, e.Reason)
}

// encodeFrame renders one record as a wire frame.
func encodeFrame(rec *Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[frameHeaderLen:], payload)
	return buf, nil
}

// DecodeJournal scans a journal byte stream. It returns every record of
// the longest valid prefix, the offset just past the last valid frame,
// and the corruption that stopped the scan — nil on a clean EOF. Any
// input is safe: a truncated, bit-flipped, or entirely foreign stream
// yields a *CorruptError, never a panic.
func DecodeJournal(r io.Reader) ([]Record, int64, error) {
	hdr := make([]byte, len(journalMagic))
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, 0, &CorruptError{Offset: 0, Reason: "missing or truncated header"}
	}
	if !bytes.Equal(hdr, journalMagic) {
		return nil, 0, &CorruptError{Offset: 0, Reason: fmt.Sprintf("bad magic %q", hdr)}
	}
	var recs []Record
	off := int64(len(journalMagic))
	fh := make([]byte, frameHeaderLen)
	for {
		if _, err := io.ReadFull(r, fh); err != nil {
			if err == io.EOF {
				return recs, off, nil
			}
			return recs, off, &CorruptError{Offset: off, Reason: "truncated frame header"}
		}
		n := binary.LittleEndian.Uint32(fh[0:4])
		sum := binary.LittleEndian.Uint32(fh[4:8])
		if n == 0 || n > maxFrame {
			return recs, off, &CorruptError{Offset: off, Reason: fmt.Sprintf("implausible frame length %d", n)}
		}
		payload, err := readPayload(r, int(n))
		if err != nil {
			return recs, off, &CorruptError{Offset: off, Reason: "truncated frame payload"}
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, off, &CorruptError{Offset: off, Reason: "frame checksum mismatch"}
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, off, &CorruptError{Offset: off, Reason: "frame payload is not a record: " + err.Error()}
		}
		recs = append(recs, rec)
		off += int64(frameHeaderLen) + int64(n)
	}
}

// DecodeJournalParallel is DecodeJournal with CRC verification and JSON
// unmarshalling fanned out across workers. Framing is inherently serial
// (each frame's offset depends on the previous length prefix), so one
// pass scans frame boundaries and payloads; the per-frame work — the
// bulk of recovery time — runs in parallel. The contract is bit-for-bit
// DecodeJournal's: the longest valid prefix of records, the offset just
// past the last valid frame, and the corruption that stopped the scan.
// A payload error at frame i wins over any later scan-stop, exactly as
// the serial decoder would have reported it.
func DecodeJournalParallel(r io.Reader, workers int) ([]Record, int64, error) {
	if workers <= 1 {
		return DecodeJournal(r)
	}
	hdr := make([]byte, len(journalMagic))
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, 0, &CorruptError{Offset: 0, Reason: "missing or truncated header"}
	}
	if !bytes.Equal(hdr, journalMagic) {
		return nil, 0, &CorruptError{Offset: 0, Reason: fmt.Sprintf("bad magic %q", hdr)}
	}
	type frame struct {
		off     int64
		sum     uint32
		payload []byte
	}
	var frames []frame
	off := int64(len(journalMagic))
	var scanErr error // the serial scan's stopping corruption, if any
	fh := make([]byte, frameHeaderLen)
	for {
		if _, err := io.ReadFull(r, fh); err != nil {
			if err != io.EOF {
				scanErr = &CorruptError{Offset: off, Reason: "truncated frame header"}
			}
			break
		}
		n := binary.LittleEndian.Uint32(fh[0:4])
		sum := binary.LittleEndian.Uint32(fh[4:8])
		if n == 0 || n > maxFrame {
			scanErr = &CorruptError{Offset: off, Reason: fmt.Sprintf("implausible frame length %d", n)}
			break
		}
		payload, err := readPayload(r, int(n))
		if err != nil {
			scanErr = &CorruptError{Offset: off, Reason: "truncated frame payload"}
			break
		}
		frames = append(frames, frame{off: off, sum: sum, payload: payload})
		off += int64(frameHeaderLen) + int64(n)
	}

	recs := make([]Record, len(frames))
	errs := make([]*CorruptError, len(frames))
	var next int64 // atomically claimed frame index
	var mu sync.Mutex
	var wg sync.WaitGroup
	if workers > len(frames) {
		workers = len(frames)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := int(next)
				next++
				mu.Unlock()
				if i >= len(frames) {
					return
				}
				f := &frames[i]
				if crc32.ChecksumIEEE(f.payload) != f.sum {
					errs[i] = &CorruptError{Offset: f.off, Reason: "frame checksum mismatch"}
					continue
				}
				if err := json.Unmarshal(f.payload, &recs[i]); err != nil {
					errs[i] = &CorruptError{Offset: f.off, Reason: "frame payload is not a record: " + err.Error()}
				}
			}
		}()
	}
	wg.Wait()
	for i, e := range errs {
		if e != nil {
			// Everything before the first bad frame decoded clean; the
			// valid prefix ends where the serial decoder would have stopped.
			return recs[:i], frames[i].off, e
		}
	}
	if scanErr != nil {
		return recs, off, scanErr
	}
	return recs, off, nil
}

// readPayload reads exactly n bytes. Large claims are read
// incrementally so a lying length prefix on a short stream cannot force
// a 64 MiB allocation (this keeps the fuzz target honest too).
func readPayload(r io.Reader, n int) ([]byte, error) {
	if n <= 1<<16 {
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	var buf bytes.Buffer
	if _, err := io.CopyN(&buf, r, int64(n)); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
