package intent

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"declnet/internal/addr"
)

func mustIP(t testing.TB, s string) addr.IP {
	t.Helper()
	ip, err := addr.ParseIP(s)
	if err != nil {
		t.Fatalf("ParseIP(%q): %v", s, err)
	}
	return ip
}

// sampleOps is a valid mutation history touching every journal surface:
// grants, binds, permits (direct and group-expanded), QoS, potato,
// egress caps, groups, names, and a release.
func sampleOps(t testing.TB) []struct {
	tenant string
	ops    []Op
} {
	t.Helper()
	eip1 := mustIP(t, "10.0.0.1")
	eip2 := mustIP(t, "10.0.0.2")
	sip := mustIP(t, "172.16.0.1")
	return []struct {
		tenant string
		ops    []Op
	}{
		{"acme", []Op{{Verb: OpRequestEIP, VM: "vm-1", Provider: "cloudA", Region: "us-east", Addr: eip1}}},
		{"acme", []Op{{Verb: OpRequestEIP, VM: "vm-2", Provider: "cloudA", Region: "us-east", Addr: eip2}}},
		{"acme", []Op{{Verb: OpRequestSIP, Provider: "cloudA", Addr: sip}}},
		{"acme", []Op{
			{Verb: OpBind, EIP: eip1, SIP: sip, Weight: 2},
			{Verb: OpBind, EIP: eip2, SIP: sip}, // weight clamps to 1
		}},
		{"acme", []Op{{Verb: OpCreateGroup, Provider: "cloudA", Name: "web", Members: []addr.IP{eip1, eip2}}}},
		{"acme", []Op{{Verb: OpSetPermit, Provider: "cloudA", Target: eip1,
			Entries: []addr.Prefix{addr.MustParsePrefix("192.168.0.0/24")}, Groups: []string{"web"}}}},
		{"acme", []Op{{Verb: OpPermit, Target: eip2, Entries: []addr.Prefix{addr.MustParsePrefix("192.168.1.7/32")}}}},
		{"acme", []Op{{Verb: OpRevoke, Target: eip2, Entries: []addr.Prefix{addr.MustParsePrefix("192.168.1.7/32")}}}},
		{"acme", []Op{{Verb: OpSetQoS, Provider: "cloudA", Region: "us-east", Bps: 1e9}}},
		{"acme", []Op{{Verb: OpSetPotato, Provider: "cloudA", Policy: "cold"}}},
		{"acme", []Op{{Verb: OpSetVMEgress, EIP: eip1, Bps: 5e8}}},
		{"acme", []Op{{Verb: OpRegisterName, Name: "frontend", Addr: sip}}},
		{"acme", []Op{{Verb: OpUnbind, EIP: eip2, SIP: sip}}},
		{"acme", []Op{{Verb: OpReleaseEIP, Addr: eip2}}},
	}
}

func recordAll(t testing.TB, l *Log) {
	t.Helper()
	for _, m := range sampleOps(t) {
		if seq := l.Record(m.tenant, m.ops...); seq == 0 {
			t.Fatalf("Record(%v) rejected", m.ops)
		}
	}
}

// stateJSON canonicalizes a state for comparison (encoding/json sorts
// map keys, so equal states marshal identically).
func stateJSON(t testing.TB, s *State) string {
	t.Helper()
	buf, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal state: %v", err)
	}
	return string(buf)
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Meta: map[string]string{"seed": "7"}})
	if err != nil {
		t.Fatal(err)
	}
	recordAll(t, l)
	want := stateJSON(t, l.State())
	wantSeq := l.Seq()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := stateJSON(t, l2.State()); got != want {
		t.Errorf("replayed state differs\n got %s\nwant %s", got, want)
	}
	if l2.Seq() != wantSeq {
		t.Errorf("Seq = %d, want %d", l2.Seq(), wantSeq)
	}
	if l2.Meta()["seed"] != "7" {
		t.Errorf("Meta = %v, want seed=7", l2.Meta())
	}
	st := l2.Stats()
	if st.ReplayedRecords == 0 || st.TailTruncated || st.AppendErrors != 0 {
		t.Errorf("unexpected stats after clean reopen: %+v", st)
	}
}

func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recordAll(t, l)
	want := stateJSON(t, l.State())
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if l.Stats().Compactions != 1 {
		t.Errorf("Compactions = %d, want 1", l.Stats().Compactions)
	}
	// The journal is now just a header; state must come from the snapshot.
	fi, err := os.Stat(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != int64(len(journalMagic)) {
		t.Errorf("journal size after compact = %d, want %d", fi.Size(), len(journalMagic))
	}
	l.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := stateJSON(t, l2.State()); got != want {
		t.Errorf("state after compact+reopen differs\n got %s\nwant %s", got, want)
	}
	if l2.Stats().ReplayedRecords != 0 {
		t.Errorf("ReplayedRecords = %d, want 0 (journal was truncated)", l2.Stats().ReplayedRecords)
	}
}

func TestAutoCompact(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{CompactEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	recordAll(t, l) // 14 records -> at least 2 automatic compactions
	if c := l.Stats().Compactions; c < 2 {
		t.Errorf("Compactions = %d, want >= 2", c)
	}
}

// TestSeqSkip simulates a crash between the snapshot rename and the
// journal truncation: the journal still holds records the snapshot
// already covers. Replay must skip them.
func TestSeqSkip(t *testing.T) {
	dirA := t.TempDir()
	l, err := Open(dirA, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recordAll(t, l)
	want := stateJSON(t, l.State())
	wantSeq := l.Seq()
	snap, err := json.Marshal(l.State())
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	journal, err := os.ReadFile(filepath.Join(dirA, journalName))
	if err != nil {
		t.Fatal(err)
	}

	dirB := t.TempDir()
	if err := os.WriteFile(filepath.Join(dirB, snapshotName), snap, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dirB, journalName), journal, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dirB, Options{})
	if err != nil {
		t.Fatalf("replaying a snapshot-covered journal: %v", err)
	}
	defer l2.Close()
	if got := stateJSON(t, l2.State()); got != want {
		t.Errorf("state differs after covered replay\n got %s\nwant %s", got, want)
	}
	if l2.Seq() != wantSeq {
		t.Errorf("Seq = %d, want %d", l2.Seq(), wantSeq)
	}
	// The store must keep assigning fresh sequence numbers.
	seq := l2.Record("acme", Op{Verb: OpSetQoS, Provider: "cloudA", Region: "us-east", Bps: 2e9})
	if seq != wantSeq+1 {
		t.Errorf("next Seq = %d, want %d", seq, wantSeq+1)
	}
}

func TestCorruptTailRecovers(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recordAll(t, l)
	l.Close()

	path := filepath.Join(dir, journalName)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the last frame's payload: CRC fails, replay
	// must stop at the previous frame.
	buf[len(buf)-3] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("corrupt tail must not fail Open: %v", err)
	}
	st := l2.Stats()
	if !st.TailTruncated {
		t.Error("TailTruncated = false, want true")
	}
	n := len(sampleOps(t))
	if st.ReplayedRecords != n-1 {
		t.Errorf("ReplayedRecords = %d, want %d", st.ReplayedRecords, n-1)
	}
	// Appends land after the cut; the next reopen replays clean.
	if seq := l2.Record("acme", Op{Verb: OpSetQoS, Provider: "cloudA", Region: "us-east", Bps: 3e9}); seq == 0 {
		t.Fatal("Record after tail cut rejected")
	}
	want := stateJSON(t, l2.State())
	l2.Close()
	l3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if got := stateJSON(t, l3.State()); got != want {
		t.Errorf("state after cut+append+reopen differs\n got %s\nwant %s", got, want)
	}
	if l3.Stats().TailTruncated {
		t.Error("second reopen still reports a truncated tail")
	}
}

func TestCorruptSnapshotIsFatal(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, snapshotName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a corrupt snapshot")
	}
}

func TestInvalidOpRejected(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// Releasing an endpoint that was never granted cannot replay; the
	// record must not be persisted.
	if seq := l.Record("acme", Op{Verb: OpReleaseEIP, Addr: mustIP(t, "10.9.9.9")}); seq != 0 {
		t.Errorf("invalid op assigned seq %d, want 0", seq)
	}
	st := l.Stats()
	if st.AppendErrors != 1 || st.JournalRecords != 0 {
		t.Errorf("stats = %+v, want 1 append error and 0 journal records", st)
	}
	if l.Seq() != 0 {
		t.Errorf("Seq advanced to %d on a rejected record", l.Seq())
	}
}

func TestRecordAfterClose(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	l.Record("acme", Op{Verb: OpRequestEIP, VM: "vm-1", Provider: "p", Region: "r", Addr: mustIP(t, "10.0.0.1")})
	if l.Stats().AppendErrors == 0 {
		t.Error("Record after Close did not count an append error")
	}
	if err := l.Compact(); err == nil {
		t.Error("Compact after Close did not error")
	}
	// Nil receivers are no-op recorders.
	var nl *Log
	if seq := nl.Record("acme", Op{Verb: OpBind}); seq != 0 {
		t.Errorf("nil log assigned seq %d", seq)
	}
	if nl.State() == nil || nl.Seq() != 0 || nl.Close() != nil {
		t.Error("nil log accessors misbehaved")
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, s := range []string{"none", "always", "interval"} {
		if _, err := ParseSyncPolicy(s); err != nil {
			t.Errorf("ParseSyncPolicy(%q): %v", s, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("ParseSyncPolicy accepted a bogus policy")
	}
	// Exercise both fsync paths end to end.
	for _, p := range []SyncPolicy{SyncAlways, SyncInterval} {
		dir := t.TempDir()
		l, err := Open(dir, Options{Sync: p, SyncEvery: 3})
		if err != nil {
			t.Fatal(err)
		}
		recordAll(t, l)
		if st := l.Stats(); st.AppendErrors != 0 {
			t.Errorf("policy %v: append errors %d", p, st.AppendErrors)
		}
		l.Close()
	}
}

func TestPoolClaimOutOfOrder(t *testing.T) {
	ps := &PoolState{}
	ps.claim(12) // first claim seeds the cursor
	if ps.Next != 13 {
		t.Fatalf("Next = %d, want 13", ps.Next)
	}
	ps.claim(15) // skip-fill 13, 14
	if ps.Next != 16 || len(ps.Released) != 2 {
		t.Fatalf("after gap claim: Next = %d, Released = %v", ps.Next, ps.Released)
	}
	ps.claim(13) // consumes its skip-fill entry
	ps.claim(14)
	if len(ps.Released) != 0 {
		t.Fatalf("Released = %v, want empty", ps.Released)
	}
	ps.claim(10) // below cursor, already consumed elsewhere: no-op
	if ps.Next != 16 || len(ps.Released) != 0 {
		t.Fatalf("below-cursor claim changed the pool: Next = %d, Released = %v", ps.Next, ps.Released)
	}
	ps.release(13)
	ps.claim(13) // free-list reuse
	if len(ps.Released) != 0 || ps.Next != 16 {
		t.Fatalf("free-list reclaim: Next = %d, Released = %v", ps.Next, ps.Released)
	}
}

// TestReleaseRegrantInversion covers the concurrent-shard hazard: a
// release and a re-grant of the same address can reach the journal in
// inverted order. The re-grant's apply cleans up the old incarnation;
// the late release folds to a no-op.
func TestReleaseRegrantInversion(t *testing.T) {
	eip := addr.IP(0x0a000001)
	sip := addr.IP(0xac100001)
	s := NewState()
	apply := func(seq uint64, tenant string, ops ...Op) {
		t.Helper()
		if err := s.Apply(&Record{Seq: seq, Tenant: tenant, Ops: ops}); err != nil {
			t.Fatalf("apply %d: %v", seq, err)
		}
	}
	apply(1, "alice", Op{Verb: OpRequestEIP, VM: "vm-a", Provider: "p", Region: "r", Addr: eip})
	apply(2, "alice", Op{Verb: OpRequestSIP, Provider: "p", Addr: sip})
	apply(3, "alice", Op{Verb: OpBind, EIP: eip, SIP: sip, Weight: 1})
	apply(4, "alice", Op{Verb: OpPermit, Target: eip, Entries: []addr.Prefix{addr.NewPrefix(sip, 32)}})
	// Inverted order: bob's re-grant journals before alice's release.
	apply(5, "bob", Op{Verb: OpRequestEIP, VM: "vm-b", Provider: "p", Region: "r", Addr: eip})
	apply(6, "alice", Op{Verb: OpReleaseEIP, Addr: eip})

	ep := s.Endpoints[eip]
	if ep == nil || ep.Tenant != "bob" {
		t.Fatalf("endpoint = %+v, want bob's", ep)
	}
	if s.Permits[eip] != nil {
		t.Errorf("stale permit list survived: %+v", s.Permits[eip])
	}
	if svc := s.Services[sip]; len(svc.Binds) != 0 {
		t.Errorf("stale binds survived: %+v", svc.Binds)
	}
	// Same shape for SIPs.
	apply(7, "bob", Op{Verb: OpRequestSIP, Provider: "p", Addr: sip})
	apply(8, "alice", Op{Verb: OpReleaseSIP, Addr: sip})
	if svc := s.Services[sip]; svc == nil || svc.Tenant != "bob" {
		t.Fatalf("service = %+v, want bob's", s.Services[sip])
	}
}

func TestDecodeJournalTrailingGarbage(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(journalMagic)
	frame, err := encodeFrame(&Record{Seq: 1, Tenant: "t", Ops: []Op{{Verb: OpSetQoS, Provider: "p", Bps: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	buf.Write(frame)
	cut := buf.Len()
	buf.WriteString("\x07\x00\x00\x00garbage-without-valid-crc")

	recs, off, derr := DecodeJournal(bytes.NewReader(buf.Bytes()))
	if len(recs) != 1 || off != int64(cut) {
		t.Fatalf("recs = %d, off = %d, want 1 record ending at %d", len(recs), off, cut)
	}
	var ce *CorruptError
	if !asCorrupt(derr, &ce) {
		t.Fatalf("err = %v, want *CorruptError", derr)
	}
	if ce.Offset != int64(cut) {
		t.Errorf("corrupt offset = %d, want %d", ce.Offset, cut)
	}
}

func asCorrupt(err error, target **CorruptError) bool {
	ce, ok := err.(*CorruptError)
	if ok {
		*target = ce
	}
	return ok
}
