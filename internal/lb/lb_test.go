package lb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"declnet/internal/addr"
)

func ipa(s string) addr.IP { return addr.MustParseIP(s) }

func TestPickEqualWeights(t *testing.T) {
	b := New(ipa("198.19.0.1"))
	b.Bind(ipa("198.18.0.1"), 1)
	b.Bind(ipa("198.18.0.2"), 1)
	counts := map[addr.IP]int{}
	for i := 0; i < 100; i++ {
		be, err := b.Pick()
		if err != nil {
			t.Fatal(err)
		}
		counts[be.EIP]++
		b.Release(be)
	}
	if counts[ipa("198.18.0.1")] != 50 || counts[ipa("198.18.0.2")] != 50 {
		t.Fatalf("distribution = %v", counts)
	}
}

func TestPickWeighted(t *testing.T) {
	b := New(ipa("198.19.0.1"))
	b.Bind(ipa("198.18.0.1"), 3)
	b.Bind(ipa("198.18.0.2"), 1)
	counts := map[addr.IP]int{}
	for i := 0; i < 400; i++ {
		be, _ := b.Pick()
		counts[be.EIP]++
		b.Release(be)
	}
	if counts[ipa("198.18.0.1")] != 300 || counts[ipa("198.18.0.2")] != 100 {
		t.Fatalf("weighted distribution = %v", counts)
	}
}

func TestSmoothInterleaving(t *testing.T) {
	// Smooth WRR with weights 2:1 must not send two consecutive picks to
	// the weight-1 backend and must interleave (aab, aba... never bb).
	b := New(ipa("198.19.0.1"))
	b.Bind(ipa("198.18.0.1"), 2)
	b.Bind(ipa("198.18.0.2"), 1)
	var seq []addr.IP
	for i := 0; i < 9; i++ {
		be, _ := b.Pick()
		seq = append(seq, be.EIP)
		b.Release(be)
	}
	for i := 1; i < len(seq); i++ {
		if seq[i] == ipa("198.18.0.2") && seq[i-1] == ipa("198.18.0.2") {
			t.Fatalf("weight-1 backend picked twice in a row: %v", seq)
		}
	}
}

func TestHealthRemovesFromRotation(t *testing.T) {
	b := New(ipa("198.19.0.1"))
	b.Bind(ipa("198.18.0.1"), 1)
	b.Bind(ipa("198.18.0.2"), 1)
	if err := b.SetHealth(ipa("198.18.0.1"), false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		be, err := b.Pick()
		if err != nil {
			t.Fatal(err)
		}
		if be.EIP != ipa("198.18.0.2") {
			t.Fatal("unhealthy backend picked")
		}
		b.Release(be)
	}
	if b.HealthyCount() != 1 {
		t.Fatalf("HealthyCount = %d", b.HealthyCount())
	}
	// Recovery returns it to rotation.
	b.SetHealth(ipa("198.18.0.1"), true)
	seen := map[addr.IP]bool{}
	for i := 0; i < 4; i++ {
		be, _ := b.Pick()
		seen[be.EIP] = true
		b.Release(be)
	}
	if len(seen) != 2 {
		t.Fatal("recovered backend not back in rotation")
	}
}

func TestAllDownErrors(t *testing.T) {
	b := New(ipa("198.19.0.1"))
	b.Bind(ipa("198.18.0.1"), 1)
	b.SetHealth(ipa("198.18.0.1"), false)
	if _, err := b.Pick(); err == nil {
		t.Fatal("pick with all backends down succeeded")
	}
	if b.Errors != 1 {
		t.Fatalf("Errors = %d", b.Errors)
	}
}

func TestDraining(t *testing.T) {
	b := New(ipa("198.19.0.1"))
	b.Bind(ipa("198.18.0.1"), 1)
	b.Bind(ipa("198.18.0.2"), 1)
	// Open a connection on .1, then unbind it.
	var conn *Backend
	for {
		be, _ := b.Pick()
		if be.EIP == ipa("198.18.0.1") {
			conn = be
			break
		}
		b.Release(be)
	}
	if err := b.Unbind(ipa("198.18.0.1")); err != nil {
		t.Fatal(err)
	}
	// Draining backend takes no new connections...
	for i := 0; i < 5; i++ {
		be, _ := b.Pick()
		if be.EIP == ipa("198.18.0.1") {
			t.Fatal("draining backend picked")
		}
		b.Release(be)
	}
	// ...but survives until its last connection releases.
	if len(b.Backends()) != 2 {
		t.Fatalf("draining backend removed early: %v", b.Backends())
	}
	b.Release(conn)
	if len(b.Backends()) != 1 {
		t.Fatal("drained backend not removed after last release")
	}
}

func TestUnbindIdleRemovesImmediately(t *testing.T) {
	b := New(ipa("198.19.0.1"))
	b.Bind(ipa("198.18.0.1"), 1)
	if err := b.Unbind(ipa("198.18.0.1")); err != nil {
		t.Fatal(err)
	}
	if len(b.Backends()) != 0 {
		t.Fatal("idle backend not removed on unbind")
	}
	if err := b.Unbind(ipa("198.18.0.1")); err == nil {
		t.Fatal("double unbind succeeded")
	}
}

func TestRebindResetsDrainAndWeight(t *testing.T) {
	b := New(ipa("198.19.0.1"))
	b.Bind(ipa("198.18.0.1"), 1)
	be, _ := b.Pick() // keep one active so unbind drains
	b.Unbind(ipa("198.18.0.1"))
	b.Bind(ipa("198.18.0.1"), 5) // tenant re-binds; drain cancels
	if got := b.Backends()[0]; got.Weight != 5 || !got.Healthy() {
		t.Fatalf("rebind state = weight %d healthy %v", got.Weight, got.Healthy())
	}
	b.Release(be)
	if len(b.Backends()) != 1 {
		t.Fatal("re-bound backend removed by stale drain")
	}
}

func TestWeightClamp(t *testing.T) {
	b := New(ipa("198.19.0.1"))
	b.Bind(ipa("198.18.0.1"), 0)
	if b.Backends()[0].Weight != 1 {
		t.Fatal("weight 0 not clamped to 1")
	}
	if err := b.SetHealth(ipa("9.9.9.9"), true); err == nil {
		t.Fatal("SetHealth on unknown backend succeeded")
	}
}

func TestPickP2CBalancesByLoad(t *testing.T) {
	b := New(ipa("198.19.0.1"))
	for i := 0; i < 4; i++ {
		b.Bind(addr.IP(0xC6120001+uint32(i)), 1)
	}
	rng := rand.New(rand.NewSource(1))
	rnd := func(n int) int { return rng.Intn(n) }
	// Open 400 long-lived connections; P2C must keep the spread tight.
	var conns []*Backend
	for i := 0; i < 400; i++ {
		be, err := b.PickP2C(rnd)
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, be)
	}
	min, max := 1<<30, 0
	for _, be := range b.Backends() {
		if be.Active() < min {
			min = be.Active()
		}
		if be.Active() > max {
			max = be.Active()
		}
	}
	if max-min > 10 {
		t.Fatalf("P2C imbalance: min=%d max=%d", min, max)
	}
	for _, be := range conns {
		b.Release(be)
	}
}

func TestPickP2CAllDown(t *testing.T) {
	b := New(ipa("198.19.0.1"))
	b.Bind(ipa("198.18.0.1"), 1)
	b.SetHealth(ipa("198.18.0.1"), false)
	if _, err := b.PickP2C(func(n int) int { return 0 }); err == nil {
		t.Fatal("P2C with all backends down succeeded")
	}
}

// Property: over any weight assignment, pick counts over one full cycle
// (sum of weights) match the weights exactly.
func TestQuickWRRProportionality(t *testing.T) {
	f := func(ws []uint8) bool {
		if len(ws) == 0 || len(ws) > 12 {
			return true
		}
		b := New(ipa("198.19.0.1"))
		total := 0
		want := map[addr.IP]int{}
		for i, w := range ws {
			weight := 1 + int(w%7)
			eip := addr.IP(0xC6120000 + uint32(i)) // 198.18.x
			b.Bind(eip, weight)
			total += weight
			want[eip] = weight
		}
		got := map[addr.IP]int{}
		for i := 0; i < total; i++ {
			be, err := b.Pick()
			if err != nil {
				return false
			}
			got[be.EIP]++
			b.Release(be)
		}
		for eip, w := range want {
			if got[eip] != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
