// Package lb is the provider-side load balancer behind the paper's
// bind(eip, sip) verb (§4 Availability): traffic to a service IP is
// spread across the endpoint IPs bound to it, weighted as the tenant
// requested, with health tracking and connection draining handled by the
// provider — no tenant-visible load balancer box at all.
package lb

import (
	"fmt"
	"sort"
	"sync"

	"declnet/internal/addr"
)

// Backend is one EIP bound to a SIP.
type Backend struct {
	EIP    addr.IP
	Weight int // relative share; bind defaults it to 1

	healthy  bool
	draining bool
	active   int // in-flight connections
	current  int // smooth-WRR running counter
}

// Healthy reports whether the backend is in rotation.
func (b *Backend) Healthy() bool { return b.healthy && !b.draining }

// Active reports in-flight connections.
func (b *Backend) Active() int { return b.active }

// Balancer spreads connections for one SIP across its backends using
// smooth weighted round robin (deterministic, proportional to weights,
// maximally interleaved — the nginx algorithm). All methods are safe for
// concurrent use: the API read plane serves probes in parallel, and a
// probe advances the WRR state.
type Balancer struct {
	SIP addr.IP

	mu       sync.Mutex
	backends map[addr.IP]*Backend
	// Picks and Errors count balancing outcomes for experiments. Guarded
	// by mu; read them only when no picks are in flight.
	Picks  uint64
	Errors uint64
}

// New returns an empty balancer for sip.
func New(sip addr.IP) *Balancer {
	return &Balancer{SIP: sip, backends: make(map[addr.IP]*Backend)}
}

// Bind adds or re-weights a backend; weight < 1 is clamped to 1.
func (b *Balancer) Bind(eip addr.IP, weight int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if weight < 1 {
		weight = 1
	}
	if cur, ok := b.backends[eip]; ok {
		cur.Weight = weight
		cur.draining = false
		return
	}
	b.backends[eip] = &Backend{EIP: eip, Weight: weight, healthy: true}
}

// Unbind starts draining a backend: no new connections, existing ones
// finish. The backend disappears once its last connection releases.
func (b *Balancer) Unbind(eip addr.IP) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	be, ok := b.backends[eip]
	if !ok {
		return fmt.Errorf("lb: %s not bound to %s", eip, b.SIP)
	}
	be.draining = true
	if be.active == 0 {
		delete(b.backends, eip)
	}
	return nil
}

// SetHealth marks a backend up or down (provider health checks drive it).
func (b *Balancer) SetHealth(eip addr.IP, healthy bool) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	be, ok := b.backends[eip]
	if !ok {
		return fmt.Errorf("lb: %s not bound to %s", eip, b.SIP)
	}
	be.healthy = healthy
	return nil
}

// Backends returns the bound backends sorted by EIP.
func (b *Balancer) Backends() []*Backend {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.backendsLocked()
}

// backendsLocked is Backends for callers already holding mu.
func (b *Balancer) backendsLocked() []*Backend {
	out := make([]*Backend, 0, len(b.backends))
	for _, be := range b.backends {
		out = append(out, be)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].EIP < out[j].EIP })
	return out
}

// HealthyCount returns the number of in-rotation backends.
func (b *Balancer) HealthyCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, be := range b.backends {
		if be.Healthy() {
			n++
		}
	}
	return n
}

// Pick selects a backend for a new connection via smooth WRR and marks a
// connection active on it. Callers must Release when the connection ends.
func (b *Balancer) Pick() (*Backend, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.Picks++
	var chosen *Backend
	total := 0
	// Deterministic iteration for reproducibility.
	for _, be := range b.backendsLocked() {
		if !be.Healthy() {
			continue
		}
		be.current += be.Weight
		total += be.Weight
		if chosen == nil || be.current > chosen.current {
			chosen = be
		}
	}
	if chosen == nil {
		b.Errors++
		return nil, fmt.Errorf("lb: no healthy backend for %s", b.SIP)
	}
	chosen.current -= total
	chosen.active++
	return chosen, nil
}

// Preview reports which backend the next Pick would choose, without
// mutating the smooth-WRR counters or connection state — the diagnosis
// path (GET /v1/explain) must replay the decision, not take it.
func (b *Balancer) Preview() (*Backend, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var chosen *Backend
	best := 0
	for _, be := range b.backendsLocked() {
		if !be.Healthy() {
			continue
		}
		if next := be.current + be.Weight; chosen == nil || next > best {
			chosen, best = be, next
		}
	}
	if chosen == nil {
		return nil, fmt.Errorf("lb: no healthy backend for %s", b.SIP)
	}
	return chosen, nil
}

// Release ends a connection on a backend, completing drain when due.
func (b *Balancer) Release(be *Backend) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if be.active > 0 {
		be.active--
	}
	if be.draining && be.active == 0 {
		delete(b.backends, be.EIP)
	}
}

// PickP2C selects a backend by power-of-two-choices on active connection
// count (ablation alternative to smooth WRR: better under heterogeneous
// connection lifetimes, ignores weights). rnd must return a uniform
// int in [0, n).
func (b *Balancer) PickP2C(rnd func(n int) int) (*Backend, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.Picks++
	healthy := make([]*Backend, 0, len(b.backends))
	for _, be := range b.backendsLocked() {
		if be.Healthy() {
			healthy = append(healthy, be)
		}
	}
	if len(healthy) == 0 {
		b.Errors++
		return nil, fmt.Errorf("lb: no healthy backend for %s", b.SIP)
	}
	chosen := healthy[rnd(len(healthy))]
	if len(healthy) > 1 {
		other := healthy[rnd(len(healthy))]
		if other.active < chosen.active {
			chosen = other
		}
	}
	chosen.active++
	return chosen, nil
}
