// Durable intent: wiring between the control plane and the
// append-only journal in internal/intent. EnableIntent attaches a store
// so every verb wrapper records its accepted mutation; RestoreIntent
// rebuilds the in-memory world from a replayed State after a daemon
// restart; StateDigest canonically hashes the live control-plane state
// so kill-and-restart equivalence is a string comparison. The Drift*
// methods are test/chaos hooks that corrupt the simulated dataplane
// behind the declared state's back, for the reconciler (reconcile.go)
// to find and repair.
package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"declnet/internal/addr"
	"declnet/internal/intent"
	"declnet/internal/lb"
	"declnet/internal/qos"
	"declnet/internal/topo"
)

// EnableIntent attaches the durable intent store. Mutations accepted
// after this point are journaled; call it before serving traffic (the
// daemon does, right after RestoreIntent).
func (c *Cloud) EnableIntent(l *intent.Log) {
	defer c.shards.lockGlobal()()
	c.rec = l
	for _, p := range c.providers {
		p.rec = l
	}
	// Every journaled mutation now feeds the convergence tracker: dirty
	// sets for the incremental reconciler, section versions for the
	// incremental digest (convtrack.go). Retire any cached digests —
	// mutations before this point were not tracked.
	l.SetOnRecord(c.noteRecorded)
	c.conv.invalidateAll()
}

// Intent returns the attached store, or nil before EnableIntent.
func (c *Cloud) Intent() *intent.Log { return c.rec }

// parsePotatoPolicy maps the journal's policy strings (PotatoPolicy
// wire names) back to policies; unknown strings fall back to hot, the
// provider default.
func parsePotatoPolicy(s string) qos.PotatoPolicy {
	switch s {
	case "cold":
		return qos.ColdPotato
	case "dedicated":
		return qos.Dedicated
	}
	return qos.HotPotato
}

// RestoreIntent rebuilds the in-memory control plane from a replayed
// declared state: address pools rewound to their recorded cursors,
// endpoints and services re-granted at their original addresses,
// balancers re-bound, permit lists re-installed, QoS and policy state
// re-applied. Call it once, on an otherwise-fresh Cloud built over the
// same world (the daemon compares the store's Meta stamps first), and
// before EnableIntent — restoration itself must not re-journal.
// Restoration fans out across GOMAXPROCS workers phase by phase.
func (c *Cloud) RestoreIntent(st *intent.State) error {
	return c.RestoreIntentWorkers(st, runtime.GOMAXPROCS(0))
}

// RestoreIntentWorkers is RestoreIntent with an explicit worker count
// (tests force >1 on single-core machines; 1 restores serially).
// Phases run in dependency order — pools, then endpoints, services, and
// permit lists each fanned out across workers, then the serial policy
// tail — so no worker ever needs state a concurrent worker is building.
// Within a phase items are independent: every write lands in a striped
// table under its own stripe lock, keyed by a distinct address, and the
// final state is identical for any interleaving.
func (c *Cloud) RestoreIntentWorkers(st *intent.State, workers int) error {
	if st == nil {
		return nil
	}
	defer c.shards.lockGlobal()()
	c.beginBatch()
	defer c.endBatch()
	defer c.conv.invalidateAll()

	provs := c.pidx.Load().list

	// Pools first, so the cursors are exact even for addresses whose
	// endpoints are restored below (Restore rebuilds inUse wholesale).
	for _, p := range provs {
		for _, region := range p.Regions() {
			ps := st.EIPPools[intent.PoolKey(p.Name, region)]
			if ps == nil {
				continue
			}
			var inUse []addr.IP
			for eip, ep := range st.Endpoints {
				if ep.Provider == p.Name && ep.Region == region {
					inUse = append(inUse, eip)
				}
			}
			p.eipBlocks[region].pool.Restore(ps.Next, ps.Released, inUse)
		}
		if ps := st.SIPPools[p.Name]; ps != nil {
			var inUse []addr.IP
			for sip, svc := range st.Services {
				if svc.Provider == p.Name {
					inUse = append(inUse, sip)
				}
			}
			p.sipBlock.Restore(ps.Next, ps.Released, inUse)
		}
	}

	// Endpoints. The sort is not for determinism of the result — the
	// tables are maps — but keeps worker chunks region-contiguous, so
	// parallel installs mostly touch disjoint stripes.
	eips := make([]addr.IP, 0, len(st.Endpoints))
	for eip := range st.Endpoints {
		eips = append(eips, eip)
	}
	sortIPs(eips)
	err := restoreParallel(len(eips), workers, func(i int) error {
		eip := eips[i]
		ep := st.Endpoints[eip]
		p, ok := c.providers[ep.Provider]
		if !ok {
			return fmt.Errorf("core: restore: endpoint %s references unknown provider %q", eip, ep.Provider)
		}
		p.addrs.putEndpoint(eip, &endpoint{
			eip: eip, tenant: ep.Tenant, node: topo.NodeID(ep.VM),
			provider: ep.Provider, region: ep.Region,
			shard:     ep.Provider + "/" + ep.Region,
			egressCap: ep.EgressCap,
		})
		c.tenantDelta(ep.Tenant, 1)
		return nil
	})
	if err != nil {
		return err
	}

	// Services and their bindings. Each worker builds a balancer
	// privately and publishes it with one striped-table store.
	sips := make([]addr.IP, 0, len(st.Services))
	for sip := range st.Services {
		sips = append(sips, sip)
	}
	sortIPs(sips)
	err = restoreParallel(len(sips), workers, func(i int) error {
		sip := sips[i]
		svc := st.Services[sip]
		p, ok := c.providers[svc.Provider]
		if !ok {
			return fmt.Errorf("core: restore: service %s references unknown provider %q", sip, svc.Provider)
		}
		bal := lb.New(sip)
		for _, b := range svc.Binds {
			bal.Bind(b.EIP, b.Weight)
		}
		p.addrs.putService(sip, &service{sip: sip, tenant: svc.Tenant, balancer: bal})
		c.tenantDelta(svc.Tenant, 1)
		return nil
	})
	if err != nil {
		return err
	}

	// Permit lists, installed at the owning provider's engine. SetFresh
	// (not Set) for two reasons: it skips the verb path's change-tracking
	// bookkeeping, whose batch-window fields are not safe under
	// concurrent workers, and it builds each list off-line so a target's
	// stripe lock is held only for the final install.
	targets := make([]addr.IP, 0, len(st.Permits))
	for t := range st.Permits {
		targets = append(targets, t)
	}
	sortIPs(targets)
	err = restoreParallel(len(targets), workers, func(i int) error {
		t := targets[i]
		p, ok := c.blockOwner(t)
		if !ok {
			return fmt.Errorf("core: restore: permit target %s is outside every provider's blocks", t)
		}
		p.Permits.SetFresh(t, st.Permits[t].Entries)
		return nil
	})
	if err != nil {
		return err
	}

	// QoS quotas, potato profiles, groups, names.
	for _, key := range sortedKeys(st.Quotas) {
		parts := strings.SplitN(key, "|", 3)
		if len(parts) != 3 {
			return fmt.Errorf("core: restore: malformed quota key %q", key)
		}
		p, ok := c.providers[parts[0]]
		if !ok {
			return fmt.Errorf("core: restore: quota key %q references unknown provider", key)
		}
		if err := p.setQoS(parts[1], parts[2], st.Quotas[key]); err != nil {
			return fmt.Errorf("core: restore: %w", err)
		}
	}
	for _, key := range sortedKeys(st.Potato) {
		parts := strings.SplitN(key, "|", 2)
		if len(parts) != 2 {
			return fmt.Errorf("core: restore: malformed potato key %q", key)
		}
		p, ok := c.providers[parts[0]]
		if !ok {
			return fmt.Errorf("core: restore: potato key %q references unknown provider", key)
		}
		p.setPotato(parts[1], parsePotatoPolicy(st.Potato[key]))
	}
	// Group and name maps are written directly: re-validating membership
	// would reject declared state whose members were since released, and
	// the declared maps are authoritative here.
	for key, members := range st.ProvGroups {
		parts := strings.SplitN(key, "|", 3)
		if len(parts) != 3 {
			return fmt.Errorf("core: restore: malformed group key %q", key)
		}
		p, ok := c.providers[parts[0]]
		if !ok {
			return fmt.Errorf("core: restore: group key %q references unknown provider", key)
		}
		p.polMu.Lock()
		if p.groups[parts[1]] == nil {
			p.groups[parts[1]] = make(map[string][]EIP)
		}
		p.groups[parts[1]][parts[2]] = append([]EIP(nil), members...)
		p.polMu.Unlock()
	}
	c.nmMu.Lock()
	for key, members := range st.Groups {
		parts := strings.SplitN(key, "|", 2)
		if len(parts) != 2 {
			c.nmMu.Unlock()
			return fmt.Errorf("core: restore: malformed group key %q", key)
		}
		if c.groups[parts[0]] == nil {
			c.groups[parts[0]] = make(map[string][]EIP)
		}
		c.groups[parts[0]][parts[1]] = append([]EIP(nil), members...)
	}
	for key, target := range st.Names {
		parts := strings.SplitN(key, "|", 2)
		if len(parts) != 2 {
			c.nmMu.Unlock()
			return fmt.Errorf("core: restore: malformed name key %q", key)
		}
		if c.names[parts[0]] == nil {
			c.names[parts[0]] = make(map[string]addr.IP)
		}
		c.names[parts[0]][parts[1]] = target
	}
	c.nmMu.Unlock()

	c.noteAddrsChanged()
	return nil
}

// restoreParallel runs fn(0..n-1) across workers, stopping each worker
// at its first error. Which error surfaces when several workers fail is
// unspecified — any error aborts the whole restore.
func restoreParallel(n, workers int, fn func(i int) error) error {
	if workers <= 1 || n < 2 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errs[slot] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// sortedKeys returns a map's string keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortStrings(keys)
	return keys
}

// StateDigest hashes the control plane's durable state in canonical
// order: providers (name-sorted), their endpoints, services and
// bindings, permit lists, quotas, potato profiles, groups, pool
// cursors, and the cloud-level groups and names. Runtime-only state —
// backend health bits, WRR counters, in-flight monitor state, permit
// list versions — is excluded, so a recovered world that converged to
// the same declared state digests identically to the world that never
// crashed (the E15 equivalence check).
//
// The walk is sectioned: each (provider, region) scope, each provider's
// SIP and policy planes, and the cloud plane hash independently, and
// the world digest combines the per-section sums — O(sections) work
// when the section sums are memoized. With an intent store attached
// (EnableIntent) the convergence tracker versions every section, so a
// steady-state digest recomputes only the sections that mutated since
// the last call. Without one there is no mutation hook to invalidate
// on, so every call recomputes cold — identical to StateDigestFull.
func (c *Cloud) StateDigest() string {
	return c.stateDigest(true)
}

// StateDigestFull recomputes every section cold, bypassing the memo.
// It is the parity oracle for the incremental digest: on one world at
// one instant, StateDigest() == StateDigestFull() iff no cached
// section went stale (a mutation path that forgot its version bump).
// E15 asserts this equality every round of the chaos soak.
func (c *Cloud) StateDigestFull() string {
	return c.stateDigest(false)
}

func (c *Cloud) stateDigest(useCache bool) string {
	defer c.shards.lockGlobal()()
	useCache = useCache && c.rec != nil
	h := sha256.New()
	for _, p := range c.pidx.Load().list {
		p := p
		fmt.Fprintf(h, "provider %s\n", p.Name)
		for _, region := range p.Regions() {
			region := region
			sum := c.sectionSum(useCache, regionScope(p.Name, region), func(w io.Writer) {
				writeRegionSection(w, p, region)
			})
			fmt.Fprintf(h, "region %s %x\n", region, sum)
		}
		sum := c.sectionSum(useCache, sipScope(p.Name), func(w io.Writer) { writeSIPSection(w, p) })
		fmt.Fprintf(h, "sip %x\n", sum)
		sum = c.sectionSum(useCache, polScope(p.Name), func(w io.Writer) { writePolSection(w, p) })
		fmt.Fprintf(h, "policy %x\n", sum)
	}
	sum := c.sectionSum(useCache, cloudScope(), func(w io.Writer) { c.writeCloudSection(w) })
	fmt.Fprintf(h, "cloud %x\n", sum)
	return hex.EncodeToString(h.Sum(nil))
}

// sectionSum returns one section's sha256, through the memo when the
// caller allows it. The version pair is read before filling: the global
// gate excludes mutations for the whole digest, so the computed sum is
// valid at exactly that version.
func (c *Cloud) sectionSum(useCache bool, s convScope, fill func(io.Writer)) [sha256.Size]byte {
	if !useCache {
		return sectionHash(fill)
	}
	gen, ver := c.conv.version(s)
	if sum, ok := c.digests.get(s, gen, ver); ok {
		return sum
	}
	sum := sectionHash(fill)
	c.digests.put(s, gen, ver, sum)
	return sum
}

func sectionHash(fill func(io.Writer)) [sha256.Size]byte {
	h := sha256.New()
	fill(h)
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return sum
}

// writeRegionSection renders one (provider, region) scope: the region
// block's endpoints, its installed permit lists, and its pool cursor.
// Both enumerations are single-stripe scans — region blocks are /16s,
// the stripe unit.
func writeRegionSection(w io.Writer, p *Provider, region string) {
	b := p.eipBlocks[region]
	eps := p.addrs.endpointsWithin(b.base)
	sort.Slice(eps, func(i, j int) bool { return eps[i].eip < eps[j].eip })
	for _, ep := range eps {
		fmt.Fprintf(w, "ep %s %s %s %s %g\n", ep.eip, ep.tenant, ep.node, ep.region, ep.egressCap)
	}
	writePermitLines(w, p, p.Permits.TargetsWithin(b.base))
	next, released := b.pool.Cursor()
	fmt.Fprintf(w, "pool %s %s %v\n", region, next, released)
}

// writeSIPSection renders a provider's SIP plane: services and their
// bindings, SIP permit lists, and the SIP pool cursor.
func writeSIPSection(w io.Writer, p *Provider) {
	svcs := p.addrs.serviceSnapshot()
	sort.Slice(svcs, func(i, j int) bool { return svcs[i].sip < svcs[j].sip })
	for _, svc := range svcs {
		fmt.Fprintf(w, "svc %s %s\n", svc.sip, svc.tenant)
		for _, be := range sortedBackends(svc.balancer) {
			fmt.Fprintf(w, "bind %s %d\n", be.EIP, be.Weight)
		}
	}
	writePermitLines(w, p, p.Permits.TargetsWithin(p.cfg.SIPBase))
	next, released := p.sipBlock.Cursor()
	fmt.Fprintf(w, "sippool %s %v\n", next, released)
}

func writePermitLines(w io.Writer, p *Provider, targets []addr.IP) {
	for _, t := range targets {
		fmt.Fprintf(w, "permit %s", t)
		for _, e := range p.Permits.EntriesOf(t) {
			fmt.Fprintf(w, " %s", e)
		}
		fmt.Fprintln(w)
	}
}

// writePolSection renders a provider's policy plane: quotas, potato
// profiles, groups.
func writePolSection(w io.Writer, p *Provider) {
	p.polMu.RLock()
	for _, tenant := range sortedKeys(p.quotas) {
		for _, region := range sortedKeys(p.quotas[tenant]) {
			tq := p.quotas[tenant][region]
			tq.mu.Lock()
			q := tq.quota
			tq.mu.Unlock()
			fmt.Fprintf(w, "qos %s %s %g\n", tenant, region, q)
		}
	}
	for _, tenant := range sortedKeys(p.potato) {
		fmt.Fprintf(w, "potato %s %s\n", tenant, p.potato[tenant])
	}
	for _, tenant := range sortedKeys(p.groups) {
		for _, name := range sortedKeys(p.groups[tenant]) {
			fmt.Fprintf(w, "group %s %s %v\n", tenant, name, p.groups[tenant][name])
		}
	}
	p.polMu.RUnlock()
}

// writeCloudSection renders the cloud plane: cross-provider groups and
// names.
func (c *Cloud) writeCloudSection(w io.Writer) {
	c.nmMu.RLock()
	for _, tenant := range sortedKeys(c.groups) {
		for _, name := range sortedKeys(c.groups[tenant]) {
			fmt.Fprintf(w, "cgroup %s %s %v\n", tenant, name, c.groups[tenant][name])
		}
	}
	for _, tenant := range sortedKeys(c.names) {
		for _, name := range sortedKeys(c.names[tenant]) {
			fmt.Fprintf(w, "name %s %s %s\n", tenant, name, c.names[tenant][name])
		}
	}
	c.nmMu.RUnlock()
}

// sortedBackends returns a balancer's backends ordered by EIP.
func sortedBackends(bal *lb.Balancer) []*lb.Backend {
	bes := bal.Backends()
	for i := 1; i < len(bes); i++ {
		for j := i; j > 0 && bes[j].EIP < bes[j-1].EIP; j-- {
			bes[j], bes[j-1] = bes[j-1], bes[j]
		}
	}
	return bes
}

// Drift injection: chaos hooks that corrupt the simulated dataplane
// without touching declared state, exactly what a lost update or a
// bad rollout would do in a real fleet. The reconciler must find and
// repair every one. None of these record intent — that is the point.
// Each hook does bump its digest section version (the digest hashes the
// live dataplane, and a silent injection would leave a stale cached
// sum) but deliberately leaves the reconciler's dirty sets alone: the
// anti-entropy rotation must find hook-injected drift on its own.

// DriftWipePermit drops target's installed permit list from its owning
// provider's enforcement engine, leaving the declared list intact.
func (c *Cloud) DriftWipePermit(target addr.IP) bool {
	p, ok := c.blockOwner(target)
	if !ok {
		return false
	}
	p.Permits.Drop(target)
	c.convBumpTarget(p, target)
	return true
}

// DriftUnbind removes a backend from a SIP's balancer behind the
// declared bindings' back.
func (c *Cloud) DriftUnbind(sip SIP, eip EIP) bool {
	p, ok := c.providerOfAddr(sip)
	if !ok {
		return false
	}
	svc, ok := p.addrs.getService(sip)
	if !ok {
		return false
	}
	if svc.balancer.Unbind(eip) != nil {
		return false
	}
	c.conv.bump(sipScope(p.Name))
	return true
}

// DriftZeroQuota zeroes a (tenant, region) egress limiter without
// touching the declared quota.
func (c *Cloud) DriftZeroQuota(provider, tenant, region string) bool {
	p, ok := c.providers[provider]
	if !ok {
		return false
	}
	tq, ok := p.quotaOf(tenant, region)
	if !ok {
		return false
	}
	tq.mu.Lock()
	tq.quota = 0
	tq.limiter.SetQuota(0)
	tq.mu.Unlock()
	c.conv.bump(polScope(provider))
	return true
}
