// Durable intent: wiring between the control plane and the
// append-only journal in internal/intent. EnableIntent attaches a store
// so every verb wrapper records its accepted mutation; RestoreIntent
// rebuilds the in-memory world from a replayed State after a daemon
// restart; StateDigest canonically hashes the live control-plane state
// so kill-and-restart equivalence is a string comparison. The Drift*
// methods are test/chaos hooks that corrupt the simulated dataplane
// behind the declared state's back, for the reconciler (reconcile.go)
// to find and repair.
package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"declnet/internal/addr"
	"declnet/internal/intent"
	"declnet/internal/lb"
	"declnet/internal/qos"
	"declnet/internal/topo"
)

// EnableIntent attaches the durable intent store. Mutations accepted
// after this point are journaled; call it before serving traffic (the
// daemon does, right after RestoreIntent).
func (c *Cloud) EnableIntent(l *intent.Log) {
	defer c.shards.lockGlobal()()
	c.rec = l
	for _, p := range c.providers {
		p.rec = l
	}
}

// Intent returns the attached store, or nil before EnableIntent.
func (c *Cloud) Intent() *intent.Log { return c.rec }

// parsePotatoPolicy maps the journal's policy strings (PotatoPolicy
// wire names) back to policies; unknown strings fall back to hot, the
// provider default.
func parsePotatoPolicy(s string) qos.PotatoPolicy {
	switch s {
	case "cold":
		return qos.ColdPotato
	case "dedicated":
		return qos.Dedicated
	}
	return qos.HotPotato
}

// RestoreIntent rebuilds the in-memory control plane from a replayed
// declared state: address pools rewound to their recorded cursors,
// endpoints and services re-granted at their original addresses,
// balancers re-bound, permit lists re-installed, QoS and policy state
// re-applied. Call it once, on an otherwise-fresh Cloud built over the
// same world (the daemon compares the store's Meta stamps first), and
// before EnableIntent — restoration itself must not re-journal.
func (c *Cloud) RestoreIntent(st *intent.State) error {
	if st == nil {
		return nil
	}
	defer c.shards.lockGlobal()()
	c.beginBatch()
	defer c.endBatch()

	provs := c.pidx.Load().list

	// Pools first, so the cursors are exact even for addresses whose
	// endpoints are restored below (Restore rebuilds inUse wholesale).
	for _, p := range provs {
		for _, region := range p.Regions() {
			ps := st.EIPPools[intent.PoolKey(p.Name, region)]
			if ps == nil {
				continue
			}
			var inUse []addr.IP
			for eip, ep := range st.Endpoints {
				if ep.Provider == p.Name && ep.Region == region {
					inUse = append(inUse, eip)
				}
			}
			p.eipBlocks[region].pool.Restore(ps.Next, ps.Released, inUse)
		}
		if ps := st.SIPPools[p.Name]; ps != nil {
			var inUse []addr.IP
			for sip, svc := range st.Services {
				if svc.Provider == p.Name {
					inUse = append(inUse, sip)
				}
			}
			p.sipBlock.Restore(ps.Next, ps.Released, inUse)
		}
	}

	// Endpoints, sorted for determinism.
	eips := make([]addr.IP, 0, len(st.Endpoints))
	for eip := range st.Endpoints {
		eips = append(eips, eip)
	}
	sortIPs(eips)
	for _, eip := range eips {
		ep := st.Endpoints[eip]
		p, ok := c.providers[ep.Provider]
		if !ok {
			return fmt.Errorf("core: restore: endpoint %s references unknown provider %q", eip, ep.Provider)
		}
		p.addrs.putEndpoint(eip, &endpoint{
			eip: eip, tenant: ep.Tenant, node: topo.NodeID(ep.VM),
			provider: ep.Provider, region: ep.Region,
			shard:     ep.Provider + "/" + ep.Region,
			egressCap: ep.EgressCap,
		})
		c.tenantDelta(ep.Tenant, 1)
	}

	// Services and their bindings.
	sips := make([]addr.IP, 0, len(st.Services))
	for sip := range st.Services {
		sips = append(sips, sip)
	}
	sortIPs(sips)
	for _, sip := range sips {
		svc := st.Services[sip]
		p, ok := c.providers[svc.Provider]
		if !ok {
			return fmt.Errorf("core: restore: service %s references unknown provider %q", sip, svc.Provider)
		}
		bal := lb.New(sip)
		for _, b := range svc.Binds {
			bal.Bind(b.EIP, b.Weight)
		}
		p.addrs.putService(sip, &service{sip: sip, tenant: svc.Tenant, balancer: bal})
		c.tenantDelta(svc.Tenant, 1)
	}

	// Permit lists, installed at the owning provider's engine.
	targets := make([]addr.IP, 0, len(st.Permits))
	for t := range st.Permits {
		targets = append(targets, t)
	}
	sortIPs(targets)
	for _, t := range targets {
		p, ok := c.blockOwner(t)
		if !ok {
			return fmt.Errorf("core: restore: permit target %s is outside every provider's blocks", t)
		}
		p.Permits.Set(t, st.Permits[t].Entries)
	}

	// QoS quotas, potato profiles, groups, names.
	for _, key := range sortedKeys(st.Quotas) {
		parts := strings.SplitN(key, "|", 3)
		if len(parts) != 3 {
			return fmt.Errorf("core: restore: malformed quota key %q", key)
		}
		p, ok := c.providers[parts[0]]
		if !ok {
			return fmt.Errorf("core: restore: quota key %q references unknown provider", key)
		}
		if err := p.setQoS(parts[1], parts[2], st.Quotas[key]); err != nil {
			return fmt.Errorf("core: restore: %w", err)
		}
	}
	for _, key := range sortedKeys(st.Potato) {
		parts := strings.SplitN(key, "|", 2)
		if len(parts) != 2 {
			return fmt.Errorf("core: restore: malformed potato key %q", key)
		}
		p, ok := c.providers[parts[0]]
		if !ok {
			return fmt.Errorf("core: restore: potato key %q references unknown provider", key)
		}
		p.setPotato(parts[1], parsePotatoPolicy(st.Potato[key]))
	}
	// Group and name maps are written directly: re-validating membership
	// would reject declared state whose members were since released, and
	// the declared maps are authoritative here.
	for key, members := range st.ProvGroups {
		parts := strings.SplitN(key, "|", 3)
		if len(parts) != 3 {
			return fmt.Errorf("core: restore: malformed group key %q", key)
		}
		p, ok := c.providers[parts[0]]
		if !ok {
			return fmt.Errorf("core: restore: group key %q references unknown provider", key)
		}
		p.polMu.Lock()
		if p.groups[parts[1]] == nil {
			p.groups[parts[1]] = make(map[string][]EIP)
		}
		p.groups[parts[1]][parts[2]] = append([]EIP(nil), members...)
		p.polMu.Unlock()
	}
	c.nmMu.Lock()
	for key, members := range st.Groups {
		parts := strings.SplitN(key, "|", 2)
		if len(parts) != 2 {
			c.nmMu.Unlock()
			return fmt.Errorf("core: restore: malformed group key %q", key)
		}
		if c.groups[parts[0]] == nil {
			c.groups[parts[0]] = make(map[string][]EIP)
		}
		c.groups[parts[0]][parts[1]] = append([]EIP(nil), members...)
	}
	for key, target := range st.Names {
		parts := strings.SplitN(key, "|", 2)
		if len(parts) != 2 {
			c.nmMu.Unlock()
			return fmt.Errorf("core: restore: malformed name key %q", key)
		}
		if c.names[parts[0]] == nil {
			c.names[parts[0]] = make(map[string]addr.IP)
		}
		c.names[parts[0]][parts[1]] = target
	}
	c.nmMu.Unlock()

	c.noteAddrsChanged()
	return nil
}

// sortedKeys returns a map's string keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortStrings(keys)
	return keys
}

// StateDigest hashes the control plane's durable state in canonical
// order: providers (name-sorted), their endpoints, services and
// bindings, permit lists, quotas, potato profiles, groups, pool
// cursors, and the cloud-level groups and names. Runtime-only state —
// backend health bits, WRR counters, in-flight monitor state, permit
// list versions — is excluded, so a recovered world that converged to
// the same declared state digests identically to the world that never
// crashed (the E15 equivalence check).
func (c *Cloud) StateDigest() string {
	defer c.shards.lockGlobal()()
	h := sha256.New()
	for _, p := range c.pidx.Load().list {
		fmt.Fprintf(h, "provider %s\n", p.Name)
		eps := p.addrs.endpointSnapshot()
		ips := make([]addr.IP, 0, len(eps))
		byIP := make(map[addr.IP]*endpoint, len(eps))
		for _, ep := range eps {
			ips = append(ips, ep.eip)
			byIP[ep.eip] = ep
		}
		sortIPs(ips)
		for _, ip := range ips {
			ep := byIP[ip]
			fmt.Fprintf(h, "ep %s %s %s %s %g\n", ip, ep.tenant, ep.node, ep.region, ep.egressCap)
		}
		svcs := p.addrs.serviceSnapshot()
		sips := make([]addr.IP, 0, len(svcs))
		svcByIP := make(map[addr.IP]*service, len(svcs))
		for _, svc := range svcs {
			sips = append(sips, svc.sip)
			svcByIP[svc.sip] = svc
		}
		sortIPs(sips)
		for _, sip := range sips {
			svc := svcByIP[sip]
			fmt.Fprintf(h, "svc %s %s\n", sip, svc.tenant)
			for _, be := range sortedBackends(svc.balancer) {
				fmt.Fprintf(h, "bind %s %d\n", be.EIP, be.Weight)
			}
		}
		for _, t := range p.Permits.Targets() {
			fmt.Fprintf(h, "permit %s", t)
			for _, e := range p.Permits.EntriesOf(t) {
				fmt.Fprintf(h, " %s", e)
			}
			fmt.Fprintln(h)
		}
		p.polMu.RLock()
		for _, tenant := range sortedKeys(p.quotas) {
			for _, region := range sortedKeys(p.quotas[tenant]) {
				tq := p.quotas[tenant][region]
				tq.mu.Lock()
				q := tq.quota
				tq.mu.Unlock()
				fmt.Fprintf(h, "qos %s %s %g\n", tenant, region, q)
			}
		}
		for _, tenant := range sortedKeys(p.potato) {
			fmt.Fprintf(h, "potato %s %s\n", tenant, p.potato[tenant])
		}
		for _, tenant := range sortedKeys(p.groups) {
			for _, name := range sortedKeys(p.groups[tenant]) {
				fmt.Fprintf(h, "group %s %s %v\n", tenant, name, p.groups[tenant][name])
			}
		}
		p.polMu.RUnlock()
		for _, region := range p.Regions() {
			next, released := p.eipBlocks[region].pool.Cursor()
			fmt.Fprintf(h, "pool %s %s %v\n", region, next, released)
		}
		next, released := p.sipBlock.Cursor()
		fmt.Fprintf(h, "sippool %s %v\n", next, released)
	}
	c.nmMu.RLock()
	for _, tenant := range sortedKeys(c.groups) {
		for _, name := range sortedKeys(c.groups[tenant]) {
			fmt.Fprintf(h, "cgroup %s %s %v\n", tenant, name, c.groups[tenant][name])
		}
	}
	for _, tenant := range sortedKeys(c.names) {
		for _, name := range sortedKeys(c.names[tenant]) {
			fmt.Fprintf(h, "name %s %s %s\n", tenant, name, c.names[tenant][name])
		}
	}
	c.nmMu.RUnlock()
	return hex.EncodeToString(h.Sum(nil))
}

// sortedBackends returns a balancer's backends ordered by EIP.
func sortedBackends(bal *lb.Balancer) []*lb.Backend {
	bes := bal.Backends()
	for i := 1; i < len(bes); i++ {
		for j := i; j > 0 && bes[j].EIP < bes[j-1].EIP; j-- {
			bes[j], bes[j-1] = bes[j-1], bes[j]
		}
	}
	return bes
}

// Drift injection: chaos hooks that corrupt the simulated dataplane
// without touching declared state, exactly what a lost update or a
// bad rollout would do in a real fleet. The reconciler must find and
// repair every one. None of these record intent — that is the point.

// DriftWipePermit drops target's installed permit list from its owning
// provider's enforcement engine, leaving the declared list intact.
func (c *Cloud) DriftWipePermit(target addr.IP) bool {
	p, ok := c.blockOwner(target)
	if !ok {
		return false
	}
	p.Permits.Drop(target)
	return true
}

// DriftUnbind removes a backend from a SIP's balancer behind the
// declared bindings' back.
func (c *Cloud) DriftUnbind(sip SIP, eip EIP) bool {
	p, ok := c.providerOfAddr(sip)
	if !ok {
		return false
	}
	svc, ok := p.addrs.getService(sip)
	if !ok {
		return false
	}
	return svc.balancer.Unbind(eip) == nil
}

// DriftZeroQuota zeroes a (tenant, region) egress limiter without
// touching the declared quota.
func (c *Cloud) DriftZeroQuota(provider, tenant, region string) bool {
	p, ok := c.providers[provider]
	if !ok {
		return false
	}
	tq, ok := p.quotaOf(tenant, region)
	if !ok {
		return false
	}
	tq.mu.Lock()
	tq.quota = 0
	tq.limiter.SetQuota(0)
	tq.mu.Unlock()
	return true
}
