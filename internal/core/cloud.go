package core

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"declnet/internal/addr"
	"declnet/internal/intent"
	"declnet/internal/metrics"
	"declnet/internal/netsim"
	"declnet/internal/obs"
	"declnet/internal/permit"
	"declnet/internal/qos"
	"declnet/internal/sim"
	"declnet/internal/slo"
	"declnet/internal/topo"
)

// Cloud is the multi-provider world a tenant sees: several Providers
// exposing the same Table-2 verbs over one shared substrate graph. The
// uniform interface across providers is the §5 claim that "the basic
// interface will be constant between clouds".
type Cloud struct {
	Eng *sim.Engine
	G   *topo.Graph
	Net *netsim.Network

	// providers is the authoritative registry, mutated only under the
	// shard set's global gate (AddProvider); the read plane goes through
	// the pidx snapshot below instead.
	providers map[string]*Provider

	// pidx is the copy-on-write provider index the lock-free read plane
	// resolves addresses through: provider-by-name plus the sorted
	// address-block table mapping any granted-range IP to its provider.
	pidx atomic.Pointer[provIndex]

	// shards partitions the write plane by (tenant, region); see
	// shard.go.
	shards *ShardSet

	// nmMu guards the two tenant-scoped naming maps below.
	nmMu sync.RWMutex
	// groups holds tenant-scoped, cross-provider endpoint groups
	// (the grouping extension of §4): tenant -> group -> members.
	groups map[string]map[string][]EIP
	// names holds tenant-scoped service names — the §6 "abstract above
	// details such as IP addresses entirely?" extension: tenants may
	// address endpoints and services by name and never see an address.
	names map[string]map[string]addr.IP

	// monitor is the fault-reaction loop, nil until EnableFaults.
	monitor *FaultMonitor

	// trace and reg are the observability plane, nil until
	// EnableObservability; see observe.go. The m* fields cache registry
	// instruments so the Connect hot path skips the registry lock (nil
	// instruments no-op).
	trace           *obs.Tracer
	reg             *metrics.Registry
	mConnects       *metrics.RCounter
	mConnectsDenied *metrics.RCounter
	mConnectsErr    *metrics.RCounter
	mProbes         *metrics.RCounter
	mExplains       *metrics.RCounter
	// ipMemo is a two-entry IP→string cache for traceEvent: one traced
	// connection stringifies the same (src, dst) pair three times, so two
	// slots catch nearly every repeat without a map. memoMu keeps it
	// race-clean now that read-only diagnosis (Explain) can trace from
	// concurrent API readers.
	memoMu sync.Mutex
	ipMemo [2]struct {
		ip addr.IP
		s  string
	}

	// slo is the live SLO plane, nil until EnableSLO (see slo.go);
	// nil-safe at every call site like the tracer.
	slo *slo.Plane

	// rec is the durable intent store, nil until EnableIntent (see
	// intent.go in this package); nil-safe at every call site.
	rec *intent.Log

	// reconciler is the desired-state engine, nil until EnableReconciler
	// (see reconcile.go).
	reconciler *Reconciler

	// conv tracks per-scope dirty sets and digest section versions; see
	// convtrack.go. Fed by the intent log's record hook once EnableIntent
	// wires it, plus the non-journaled mutation sites (drift hooks,
	// reconciler repairs, fault-deferred permit landings). digests is the
	// per-section digest memo StateDigest reads through; both are
	// zero-value-usable.
	conv    convTracker
	digests digestCache

	// refMu guards tenantRefs: live address grants per tenant, so the
	// observability planes can evict a fully-released tenant's state
	// (trace ring, SLO shards) instead of growing with tenant churn.
	refMu      sync.Mutex
	tenantRefs map[string]int

	// router is the epoch-keyed path cache in front of qos.PathFor; every
	// Connect/Probe/Explain routes through it.
	router *qos.Router

	// addrEpoch counts address-space mutations (EIP/SIP grant and release,
	// provider add), in the same style as topo.Graph.Epoch. Address
	// resolution itself is exact (the block index above), so the epoch is
	// pure bookkeeping for tests and batch-coalescing accounting.
	addrEpoch atomic.Uint64

	// batchDepth, addrsDirty, and batchEngines implement write batching
	// (see batch.go): while a batch is open, address-epoch bumps coalesce
	// into one advance at the outermost endBatch, and the graph and every
	// permit engine run inside their own batch windows. batchEngines
	// snapshots the engines Begin was called on so End matches them
	// exactly even if a provider is added mid-batch. Batches run under
	// the shard set's global gate.
	batchDepth   int
	addrsDirty   bool
	batchEngines []*permit.Engine

	// adm is the striped admission-verdict cache, striped by the
	// destination's /16 block like every other per-address structure, so
	// a permit storm against one region's endpoints never contends with
	// admission checks in another region.
	adm [addrStripes]admStripe
}

// provIndex is one immutable snapshot of the provider registry.
type provIndex struct {
	byName map[string]*Provider
	list   []*Provider // sorted by name, for deterministic sweeps
	blocks []provBlock // sorted by base address
}

// provBlock maps one carved address block (a region's EIP /16 or a
// provider's SIP base) to its provider.
type provBlock struct {
	base addr.Prefix
	p    *Provider
}

// admStripe is one stripe of the admission-verdict cache.
type admStripe struct {
	mu sync.Mutex
	m  map[admKey]admVal
}

// admKey identifies one admission query.
type admKey struct{ src, dst addr.IP }

// admVal is a cached permit verdict plus the evidence it is still
// current: the exact list object and version the verdict was computed
// against.
type admVal struct {
	allowed bool
	list    *permit.List
	version uint64
}

// fastPathCap bounds the fast-path caches; at the cap they are flushed
// wholesale (simple, and far larger than any working set here). Each
// admission stripe gets an equal share.
const (
	fastPathCap  = 1 << 16
	admStripeCap = fastPathCap / addrStripes
)

// NewCloud wraps a world graph in a simulation. The control plane is
// sharded by (tenant, region); use NewSingleShardCloud for the
// globally-serialized build.
func NewCloud(seed int64, g *topo.Graph) *Cloud {
	return newCloud(seed, g, false)
}

// NewSingleShardCloud is NewCloud with the shard table collapsed to one
// shard: every verb serializes on the same lock, reproducing the
// pre-sharding write plane. The sharded-vs-unsharded parity property
// test replays identical schedules against both builds.
func NewSingleShardCloud(seed int64, g *topo.Graph) *Cloud {
	return newCloud(seed, g, true)
}

func newCloud(seed int64, g *topo.Graph, singleShard bool) *Cloud {
	eng := sim.New(seed)
	c := &Cloud{
		Eng: eng, G: g, Net: netsim.New(g, eng),
		providers:  make(map[string]*Provider),
		shards:     newShardSet(singleShard),
		groups:     make(map[string]map[string][]EIP),
		names:      make(map[string]map[string]addr.IP),
		tenantRefs: make(map[string]int),
		router:     qos.NewRouter(g),
	}
	for i := range c.adm {
		c.adm[i].m = make(map[admKey]admVal)
	}
	c.pidx.Store(&provIndex{byName: map[string]*Provider{}})
	return c
}

// Router returns the epoch-keyed path cache serving this cloud's
// connect/probe/explain path selection.
func (c *Cloud) Router() *qos.Router { return c.router }

// Shards returns the shard table (experiments report its size).
func (c *Cloud) Shards() *ShardSet { return c.shards }

// AddProvider creates a provider control plane for the named cloud.
func (c *Cloud) AddProvider(name string, cfg Config) (*Provider, error) {
	defer c.shards.lockGlobal()()
	if _, ok := c.providers[name]; ok {
		return nil, fmt.Errorf("core: duplicate provider %q", name)
	}
	p, err := NewProvider(name, c.Eng, c.G, c.Net, cfg)
	if err != nil {
		return nil, err
	}
	p.shards = c.shards
	p.resolve = func(tenant, group string) ([]EIP, bool) {
		c.nmMu.RLock()
		members, ok := c.groups[tenant][group]
		c.nmMu.RUnlock()
		return members, ok
	}
	p.faults = c.monitor
	if c.trace != nil {
		p.trace = c.traceEvent
	}
	p.addrsChanged = c.noteAddrsChanged
	p.tenantChanged = c.tenantDelta
	p.slo = c.slo
	p.rec = c.rec
	c.providers[name] = p
	c.rebuildIndex()
	c.noteAddrsChanged()
	if c.reg != nil {
		c.registerProviderMetrics(name, p)
	}
	return p, nil
}

// rebuildIndex publishes a fresh provider index; caller holds the
// global gate.
func (c *Cloud) rebuildIndex() {
	idx := &provIndex{byName: make(map[string]*Provider, len(c.providers))}
	names := make([]string, 0, len(c.providers))
	for n, p := range c.providers {
		idx.byName[n] = p
		names = append(names, n)
	}
	sortStrings(names)
	for _, n := range names {
		p := c.providers[n]
		idx.list = append(idx.list, p)
		for _, b := range p.eipBlocks {
			idx.blocks = append(idx.blocks, provBlock{base: b.base, p: p})
		}
		idx.blocks = append(idx.blocks, provBlock{base: p.cfg.SIPBase, p: p})
	}
	sort.Slice(idx.blocks, func(i, j int) bool { return idx.blocks[i].base.Addr < idx.blocks[j].base.Addr })
	c.pidx.Store(idx)
}

// blockOwner resolves which provider's carved address space contains ip
// (binary search over the sorted disjoint block table).
func (c *Cloud) blockOwner(ip addr.IP) (*Provider, bool) {
	blocks := c.pidx.Load().blocks
	i := sort.Search(len(blocks), func(i int) bool { return blocks[i].base.Addr > ip }) - 1
	if i < 0 || !blocks[i].base.Contains(ip) {
		return nil, false
	}
	return blocks[i].p, true
}

// shardKeyOf derives the shard key the cross-shard connect protocol uses
// for one endpoint of a (tenant, address) pair. The tenant is always the
// connecting tenant — the lock expresses whose activity may contend, and
// a cross-tenant destination's own shard stays free for its owner.
func (c *Cloud) shardKeyOf(tenant string, ip addr.IP) ShardKey {
	if p, ok := c.blockOwner(ip); ok {
		return p.shardKeyFor(tenant, ip)
	}
	return ShardKey{Tenant: tenant}
}

// CreateGroup defines a tenant-scoped endpoint group whose members may
// span providers; any provider resolves it in set_permit_list.
func (c *Cloud) CreateGroup(tenant, name string, members ...EIP) error {
	err := c.createGroup(tenant, name, members...)
	if err == nil && c.rec != nil {
		c.rec.Record(tenant, intent.Op{Verb: intent.OpCreateGroup, Name: name, Members: append([]EIP(nil), members...)})
	}
	return err
}

func (c *Cloud) createGroup(tenant, name string, members ...EIP) error {
	for _, m := range members {
		p, ok := c.providerOfAddr(m)
		if !ok {
			return fmt.Errorf("core: group member %s is not a granted address", m)
		}
		if _, err := p.owned(tenant, m); err != nil {
			return err
		}
	}
	c.nmMu.Lock()
	if c.groups[tenant] == nil {
		c.groups[tenant] = make(map[string][]EIP)
	}
	c.groups[tenant][name] = append([]EIP(nil), members...)
	c.nmMu.Unlock()
	return nil
}

// Provider returns a control plane by name.
func (c *Cloud) Provider(name string) (*Provider, bool) {
	p, ok := c.pidx.Load().byName[name]
	return p, ok
}

// SetBiller attaches usage metering to every provider currently in the
// cloud (call after AddProvider).
func (c *Cloud) SetBiller(b Biller) {
	for _, p := range c.pidx.Load().list {
		p.SetBiller(b)
	}
}

// ProviderOf finds which provider granted an address (EIP or SIP).
func (c *Cloud) ProviderOf(ip addr.IP) (*Provider, bool) {
	return c.providerOfAddr(ip)
}

// providerOfAddr finds which provider granted an address (EIP or SIP).
// Exact and lock-free on the index: the block table names the only
// provider whose pools could have granted ip, and its striped address
// tables answer whether it actually did. (This replaced an epoch-keyed
// result cache: the cache's global invalidation epoch meant churn in one
// shard wiped every shard's entries, and the index lookup is cheap
// enough to skip caching entirely.)
func (c *Cloud) providerOfAddr(ip addr.IP) (*Provider, bool) {
	p, ok := c.blockOwner(ip)
	if !ok {
		return nil, false
	}
	if _, ok := p.addrs.getEndpoint(ip); ok {
		return p, true
	}
	if _, ok := p.addrs.getService(ip); ok {
		return p, true
	}
	return nil, false
}

// admitted is dstProv.Permits.Check(src, dst) behind a verdict cache. A
// hit still counts one Lookups unit — the counter means "admission checks
// enforced", not "trie walks" — and is valid only while dst's list is the
// same object at the same version. The unguarded (no list) case is not
// cached: default-off deny is already a single map probe.
func (c *Cloud) admitted(dstProv *Provider, src, dst addr.IP) bool {
	l, ok := dstProv.Permits.List(dst)
	if !ok {
		return dstProv.Permits.Check(src, dst)
	}
	ver := l.Version()
	key := admKey{src, dst}
	s := &c.adm[stripeOf(dst)]
	s.mu.Lock()
	if v, hit := s.m[key]; hit && v.list == l && v.version == ver {
		s.mu.Unlock()
		dstProv.Permits.Lookups.Add(1)
		return v.allowed
	}
	s.mu.Unlock()
	allowed := dstProv.Permits.Check(src, dst)
	s.mu.Lock()
	if len(s.m) >= admStripeCap {
		clear(s.m)
	}
	s.m[key] = admVal{allowed: allowed, list: l, version: ver}
	s.mu.Unlock()
	// A fill means this destination's current permit list version just
	// became visible to admission — the resolve point of the SLO plane's
	// live permit-propagation-lag sampler. The fill path owns the shard
	// derivation (the stamp side stays one atomic add when sampled out),
	// and the pending gate keeps the idle cost to one atomic load.
	if c.slo.PendingLagSamples() > 0 {
		region := dstProv.Name
		if ep, ok := dstProv.addrs.getEndpoint(dst); ok {
			region = ep.shard
		}
		c.slo.ResolveLag(dst, region)
	}
	return allowed
}

// Conn is one admitted connection: a live flow plus the load-balancer and
// quota bookkeeping needed to tear it down cleanly.
type Conn struct {
	Flow   *netsim.Flow
	Path   topo.Path
	SrcEIP EIP
	DstEIP EIP

	cloud    *Cloud
	adapter  *flowAdapter
	enforcer *qos.Enforcer
	release  func()
	closed   bool

	tenant string
	class  QoSClass
	biller Biller
	billed bool
}

// Close ends the connection, releasing its backend slot and quota share.
func (cn *Conn) Close() {
	if cn.closed {
		return
	}
	cn.closed = true
	if cn.Flow != nil && !cn.Flow.Done() {
		cn.cloud.Net.Stop(cn.Flow)
	}
	if cn.enforcer != nil && cn.adapter != nil {
		cn.enforcer.Detach(cn.adapter)
	}
	if cn.release != nil {
		cn.release()
	}
	cn.bill()
}

// bill records transferred bytes once, at completion or close.
func (cn *Conn) bill() {
	if cn.billed || cn.biller == nil || cn.Flow == nil {
		return
	}
	cn.billed = true
	cn.biller.AddBytes(cn.tenant, cn.cloud.Eng.Now(), cn.Flow.SentBytes(), cn.class == Reserved)
}

// flowAdapter lets the distributed limiter shape a netsim flow.
type flowAdapter struct {
	net    *netsim.Network
	flow   *netsim.Flow
	demand float64
	vmCap  float64
}

// SetCap implements qos.RateSetter, respecting the per-VM egress cap.
func (a *flowAdapter) SetCap(bps float64) {
	if a.vmCap > 0 && (bps == 0 || bps > a.vmCap) {
		bps = a.vmCap
	}
	a.net.SetMaxRate(a.flow, bps)
}

// Demand implements qos.RateSetter.
func (a *flowAdapter) Demand() float64 { return a.demand }

// QoSClass marks which traffic consumes the tenant's reserved regional
// egress bandwidth — the extension the paper's §4 footnote leaves to
// future work ("Extensions might allow the tenant to indicate what
// portions of their traffic should consume this reserved bandwidth").
type QoSClass int

const (
	// Reserved traffic draws on the set_qos regional guarantee (default).
	Reserved QoSClass = iota
	// BestEffort traffic never consumes the reservation; it takes
	// whatever fair share the network gives it under the per-VM cap.
	BestEffort
)

func (c QoSClass) String() string {
	if c == BestEffort {
		return "best-effort"
	}
	return "reserved"
}

// ConnectOpts tunes a connection.
type ConnectOpts struct {
	// SizeBytes < 0 starts a persistent flow.
	SizeBytes float64
	// Demand is the offered load in bits/s for quota accounting;
	// 0 defaults to the path bottleneck.
	Demand float64
	// Class selects whether the flow consumes the regional reservation.
	Class QoSClass
	// OnDone fires for sized flows with the completion time.
	OnDone func(fct time.Duration)
}

// Connect opens a connection from a tenant's EIP to a destination EIP or
// SIP, running the paper's data path: (1) default-off permit admission at
// the destination provider, (2) SIP load balancing when the target is a
// service address, (3) potato-profile path selection, (4) per-VM and
// regional egress enforcement. The returned Conn carries a live netsim
// flow.
//
// Cross-shard protocol: the connect holds read locks on both endpoints'
// shards, taken in deterministic key order (see ShardSet.rlockShards),
// so a mutation storm in an unrelated shard cannot stall it and opposing
// connects cannot deadlock. The flow start itself additionally relies on
// the engine's external serialization (the API layer's write lock), as
// the netsim solver is single-writer; Probe is the fully concurrent
// read-plane variant.
func (c *Cloud) Connect(tenant string, src EIP, dst addr.IP, opts ConnectOpts) (*Conn, error) {
	op := c.slo.Begin(slo.VerbConnect, tenant, "")
	defer c.shards.rlockShards(c.shardKeyOf(tenant, src), c.shardKeyOf(tenant, dst))()
	cn, err := c.connect(&op, tenant, src, dst, opts)
	op.End(err)
	return cn, err
}

// ConnectWith is Connect continuing a caller-owned SLO op (the API
// layer threads its request span through here); the caller Ends it.
func (c *Cloud) ConnectWith(op *slo.Op, tenant string, src EIP, dst addr.IP, opts ConnectOpts) (*Conn, error) {
	defer c.shards.rlockShards(c.shardKeyOf(tenant, src), c.shardKeyOf(tenant, dst))()
	return c.connect(op, tenant, src, dst, opts)
}

func (c *Cloud) connect(op *slo.Op, tenant string, src EIP, dst addr.IP, opts ConnectOpts) (*Conn, error) {
	srcProv, ok := c.providerOfAddr(src)
	if !ok {
		return nil, fmt.Errorf("core: unknown source EIP %s", src)
	}
	srcEp, err := srcProv.owned(tenant, src)
	if err != nil {
		return nil, err
	}
	op.SetRegion(srcEp.shard)
	dstProv, ok := c.providerOfAddr(dst)
	if !ok {
		return nil, fmt.Errorf("core: destination %s is not a granted address", dst)
	}
	// (1) Default-off admission, enforced by the destination's provider
	// against the address the client targeted (EIP or SIP).
	stg := op.StageStart()
	admitOK := c.admitted(dstProv, src, dst)
	op.StageEnd(stg, "permit")
	if !admitOK {
		if c.trace != nil {
			dec := dstProv.Permits.Explain(src, dst)
			cause := obs.Chain("permit-deny:"+dst.String(), "src-not-in-permit-list")
			if !dec.HasList {
				cause = obs.Chain("permit-deny:"+dst.String(), "no-permit-list")
			}
			c.traceEvent(obs.PermitDeny, tenant, src, dst, "deny",
				"entries="+strconv.Itoa(dec.Entries)+" epoch="+strconv.FormatUint(dec.Version, 10), cause)
		}
		c.mConnectsDenied.Inc()
		return nil, fmt.Errorf("core: %s not permitted to reach %s (default-off)", src, dst)
	}
	if c.trace != nil {
		dec := dstProv.Permits.Explain(src, dst)
		c.traceEvent(obs.PermitAllow, tenant, src, dst, "ok",
			"entry="+dec.Matched.String()+" epoch="+strconv.FormatUint(dec.Version, 10), "")
	}
	// (2) Resolve SIP -> backend EIP via the provider's balancer.
	dstEIP := dst
	var release func()
	if svc, isSIP := dstProv.addrs.getService(dst); isSIP {
		stg = op.StageStart()
		be, err := svc.balancer.Pick()
		op.StageEnd(stg, "balance")
		if err != nil {
			c.traceEvent(obs.SIPPick, tenant, src, dst, "fail",
				"healthy=0/"+strconv.Itoa(len(svc.balancer.Backends())),
				"no-healthy-backend:"+dst.String())
			c.mConnectsErr.Inc()
			return nil, fmt.Errorf("core: %s: %w", dst, err)
		}
		c.traceEvent(obs.SIPPick, tenant, src, dst, "ok",
			"backend="+be.EIP.String()+" healthy="+strconv.Itoa(svc.balancer.HealthyCount())+
				"/"+strconv.Itoa(len(svc.balancer.Backends())), "")
		dstEIP = be.EIP
		bal := svc.balancer
		release = func() { bal.Release(be) }
	}
	dstEp, ok := dstProv.addrs.getEndpoint(dstEIP)
	if !ok {
		if release != nil {
			release()
		}
		c.mConnectsErr.Inc()
		return nil, fmt.Errorf("core: backend %s vanished", dstEIP)
	}
	// (3) Path under the tenant's transit profile.
	policy := srcProv.potatoOf(tenant)
	stg = op.StageStart()
	path, err := c.router.PathFor(policy, srcEp.node, dstEp.node)
	op.StageEnd(stg, "path")
	if err != nil {
		if release != nil {
			release()
		}
		c.traceEvent(obs.PathSelect, tenant, src, dstEIP, "fail",
			fmt.Sprintf("policy=%v", policy), fmt.Sprintf("no-path:%v", policy))
		c.mConnectsErr.Inc()
		return nil, err
	}
	c.traceEvent(obs.PathSelect, tenant, src, dstEIP, "ok",
		"policy="+policy.String()+" hops="+strconv.Itoa(len(path))+
			" delay="+time.Duration(path.Delay()).String(), "")
	// (4) Start the flow under the per-VM cap, then attach it to the
	// regional egress limiter when it leaves the source region.
	vmCap := srcEp.egressCap
	if vmCap == 0 {
		vmCap = srcProv.defaultVMEgress
	}
	demand := opts.Demand
	if demand == 0 {
		demand = path.Bottleneck()
	}
	if demand > vmCap {
		demand = vmCap
	}
	cn := &Conn{
		Path: path, SrcEIP: src, DstEIP: dstEIP,
		cloud: c, release: release,
		tenant: tenant, class: opts.Class, biller: srcProv.meter,
	}
	flow, err := c.Net.StartFlow(&netsim.Flow{
		Path:    path,
		Size:    opts.SizeBytes,
		MaxRate: vmCap,
		OnDone: func(fct time.Duration) {
			cn.bill()
			if opts.OnDone != nil {
				opts.OnDone(fct)
			}
		},
	})
	if err != nil {
		if release != nil {
			release()
		}
		return nil, err
	}
	cn.Flow = flow
	stg = op.StageStart()
	if opts.Class == Reserved && (dstEp.provider != srcEp.provider || dstEp.region != srcEp.region) {
		// Cross-region/cloud reserved egress: subject to the tenant's
		// regional quota when one is set. Best-effort traffic bypasses
		// the reservation entirely (§4 footnote extension).
		if tq, ok := srcProv.quotaOf(tenant, srcEp.region); ok {
			tq.mu.Lock()
			quota := tq.quota
			if quota > 0 {
				ad := &flowAdapter{net: c.Net, flow: flow, demand: demand, vmCap: vmCap}
				enf, found := tq.enforcer[srcEp.node]
				if !found {
					enf = qos.NewEnforcer(string(srcEp.node))
					tq.enforcer[srcEp.node] = enf
					tq.limiter.AddEnforcer(enf)
				}
				enf.Attach(ad)
				tq.limiter.Redistribute()
				cn.adapter = ad
				cn.enforcer = enf
			}
			tq.mu.Unlock()
			if quota > 0 {
				c.traceEvent(obs.QoSThrottle, tenant, src, dstEIP, "ok",
					fmt.Sprintf("region=%s quota=%.3gbps demand=%.3gbps", srcEp.region, quota, demand), "")
			}
		}
	}
	op.StageEnd(stg, "qos")
	c.mConnects.Inc()
	return cn, nil
}

// Probe measures a round trip from a tenant EIP to a destination address,
// subject to the same admission and path policy as Connect. It reports
// the sampled RTT and whether the (single-datagram) probe survived loss.
// Probe touches only concurrency-safe structures and is the scale
// harness's connect-latency instrument.
func (c *Cloud) Probe(tenant string, src EIP, dst addr.IP) (time.Duration, bool, error) {
	op := c.slo.Begin(slo.VerbProbe, tenant, "")
	defer c.shards.rlockShards(c.shardKeyOf(tenant, src), c.shardKeyOf(tenant, dst))()
	rtt, delivered, err := c.probe(&op, tenant, src, dst)
	op.End(err)
	return rtt, delivered, err
}

// ProbeWith is Probe with a caller-owned span: the API layer threads its
// request-scoped op through so stage timings land on the HTTP span. The
// caller Ends the op.
func (c *Cloud) ProbeWith(op *slo.Op, tenant string, src EIP, dst addr.IP) (time.Duration, bool, error) {
	defer c.shards.rlockShards(c.shardKeyOf(tenant, src), c.shardKeyOf(tenant, dst))()
	return c.probe(op, tenant, src, dst)
}

func (c *Cloud) probe(op *slo.Op, tenant string, src EIP, dst addr.IP) (time.Duration, bool, error) {
	srcProv, ok := c.providerOfAddr(src)
	if !ok {
		return 0, false, fmt.Errorf("core: unknown source EIP %s", src)
	}
	srcEp, err := srcProv.owned(tenant, src)
	if err != nil {
		return 0, false, err
	}
	op.SetRegion(srcEp.shard)
	dstProv, ok := c.providerOfAddr(dst)
	if !ok {
		return 0, false, fmt.Errorf("core: destination %s is not a granted address", dst)
	}
	stg := op.StageStart()
	admitOK := c.admitted(dstProv, src, dst)
	op.StageEnd(stg, "permit")
	if !admitOK {
		return 0, false, fmt.Errorf("core: %s not permitted to reach %s (default-off)", src, dst)
	}
	dstEIP := dst
	if svc, isSIP := dstProv.addrs.getService(dst); isSIP {
		be, err := svc.balancer.Pick()
		if err != nil {
			return 0, false, err
		}
		dstEIP = be.EIP
		defer svc.balancer.Release(be)
	}
	dstEp, ok := dstProv.addrs.getEndpoint(dstEIP)
	if !ok {
		return 0, false, fmt.Errorf("core: backend %s vanished", dstEIP)
	}
	policy := srcProv.potatoOf(tenant)
	stg = op.StageStart()
	path, err := c.router.PathFor(policy, srcEp.node, dstEp.node)
	op.StageEnd(stg, "path")
	if err != nil {
		return 0, false, err
	}
	rtt := c.Net.RTT(path)
	ok = c.Net.Delivered(path) && c.Net.Delivered(path)
	c.mProbes.Inc()
	return rtt, ok, nil
}

// RegisterName binds a tenant-scoped name to one of the tenant's
// addresses (EIP or SIP). Re-registering a name repoints it — which is
// how a tenant cuts over a service without clients noticing.
func (c *Cloud) RegisterName(tenant, name string, target addr.IP) error {
	err := c.registerName(tenant, name, target)
	if err == nil && c.rec != nil {
		c.rec.Record(tenant, intent.Op{Verb: intent.OpRegisterName, Name: name, Addr: target})
	}
	return err
}

func (c *Cloud) registerName(tenant, name string, target addr.IP) error {
	p, ok := c.providerOfAddr(target)
	if !ok {
		return fmt.Errorf("core: %s is not a granted address", target)
	}
	if err := p.ownsTarget(tenant, target); err != nil {
		return err
	}
	c.nmMu.Lock()
	if c.names[tenant] == nil {
		c.names[tenant] = make(map[string]addr.IP)
	}
	c.names[tenant][name] = target
	c.nmMu.Unlock()
	return nil
}

// ResolveName returns the address behind a tenant's name.
func (c *Cloud) ResolveName(tenant, name string) (addr.IP, bool) {
	c.nmMu.RLock()
	ip, ok := c.names[tenant][name]
	c.nmMu.RUnlock()
	return ip, ok
}

// UnregisterName removes a name binding.
func (c *Cloud) UnregisterName(tenant, name string) bool {
	c.nmMu.Lock()
	_, ok := c.names[tenant][name]
	if ok {
		delete(c.names[tenant], name)
	}
	c.nmMu.Unlock()
	if ok && c.rec != nil {
		c.rec.Record(tenant, intent.Op{Verb: intent.OpUnregisterName, Name: name})
	}
	return ok
}

// ConnectName is Connect with the destination given by name.
func (c *Cloud) ConnectName(tenant string, src EIP, name string, opts ConnectOpts) (*Conn, error) {
	dst, ok := c.ResolveName(tenant, name)
	if !ok {
		return nil, fmt.Errorf("core: tenant %q has no name %q", tenant, name)
	}
	return c.Connect(tenant, src, dst, opts)
}

// Admitted reports whether src may currently reach dst — the pure
// admission decision, used heavily by the security experiment and as
// the scale harness's permit-propagation probe.
func (c *Cloud) Admitted(src EIP, dst addr.IP) bool {
	dstProv, ok := c.providerOfAddr(dst)
	if !ok {
		return false
	}
	return c.admitted(dstProv, src, dst)
}

// Ensure interface satisfaction.
var _ qos.RateSetter = (*flowAdapter)(nil)
var _ = permit.Entry{}
