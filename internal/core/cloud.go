package core

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"declnet/internal/addr"
	"declnet/internal/metrics"
	"declnet/internal/netsim"
	"declnet/internal/obs"
	"declnet/internal/permit"
	"declnet/internal/qos"
	"declnet/internal/sim"
	"declnet/internal/topo"
)

// Cloud is the multi-provider world a tenant sees: several Providers
// exposing the same Table-2 verbs over one shared substrate graph. The
// uniform interface across providers is the §5 claim that "the basic
// interface will be constant between clouds".
type Cloud struct {
	Eng *sim.Engine
	G   *topo.Graph
	Net *netsim.Network

	providers map[string]*Provider
	// groups holds tenant-scoped, cross-provider endpoint groups
	// (the grouping extension of §4): tenant -> group -> members.
	groups map[string]map[string][]EIP
	// names holds tenant-scoped service names — the §6 "abstract above
	// details such as IP addresses entirely?" extension: tenants may
	// address endpoints and services by name and never see an address.
	names map[string]map[string]addr.IP

	// monitor is the fault-reaction loop, nil until EnableFaults.
	monitor *FaultMonitor

	// trace and reg are the observability plane, nil until
	// EnableObservability; see observe.go. The m* fields cache registry
	// instruments so the Connect hot path skips the registry lock (nil
	// instruments no-op).
	trace           *obs.Tracer
	reg             *metrics.Registry
	mConnects       *metrics.RCounter
	mConnectsDenied *metrics.RCounter
	mConnectsErr    *metrics.RCounter
	mProbes         *metrics.RCounter
	mExplains       *metrics.RCounter
	// ipMemo is a two-entry IP→string cache for traceEvent: one traced
	// connection stringifies the same (src, dst) pair three times, so two
	// slots catch nearly every repeat without a map. memoMu keeps it
	// race-clean now that read-only diagnosis (Explain) can trace from
	// concurrent API readers.
	memoMu sync.Mutex
	ipMemo [2]struct {
		ip addr.IP
		s  string
	}

	// router is the epoch-keyed path cache in front of qos.PathFor; every
	// Connect/Probe/Explain routes through it.
	router *qos.Router

	// addrEpoch counts address-space mutations (EIP/SIP grant and release,
	// provider add) — the invalidation key for the provider-of-address
	// cache below, in the same style as topo.Graph.Epoch.
	addrEpoch atomic.Uint64

	// batchDepth, addrsDirty, and batchEngines implement write batching
	// (see batch.go): while a batch is open, address-epoch bumps coalesce
	// into one advance at the outermost endBatch, and the graph and every
	// permit engine run inside their own batch windows. batchEngines
	// snapshots the engines Begin was called on so End matches them
	// exactly even if a provider is added mid-batch.
	batchDepth   int
	addrsDirty   bool
	batchEngines []*permit.Engine

	// fp holds the Connect fast-path caches. Guarded by its own mutex so
	// concurrent read-plane requests (probe, explain) can share it.
	fp struct {
		mu sync.Mutex
		// provEpoch is the addrEpoch the prov cache was filled at.
		provEpoch uint64
		// prov caches providerOfAddr results; nil means "no provider
		// grants this address" (negative entry).
		prov map[addr.IP]*Provider
		// adm caches permit verdicts per (src, dst); an entry is valid
		// only while dst's permit list is the same object at the same
		// version, so any revoke/permit/set/drop invalidates it.
		adm map[admKey]admVal
	}
}

// admKey identifies one admission query.
type admKey struct{ src, dst addr.IP }

// admVal is a cached permit verdict plus the evidence it is still
// current: the exact list object and version the verdict was computed
// against.
type admVal struct {
	allowed bool
	list    *permit.List
	version uint64
}

// fastPathCap bounds the fast-path caches; at the cap they are flushed
// wholesale (simple, and far larger than any working set here).
const fastPathCap = 1 << 16

// NewCloud wraps a world graph in a simulation.
func NewCloud(seed int64, g *topo.Graph) *Cloud {
	eng := sim.New(seed)
	c := &Cloud{
		Eng: eng, G: g, Net: netsim.New(g, eng),
		providers: make(map[string]*Provider),
		groups:    make(map[string]map[string][]EIP),
		names:     make(map[string]map[string]addr.IP),
		router:    qos.NewRouter(g),
	}
	c.fp.prov = make(map[addr.IP]*Provider)
	c.fp.adm = make(map[admKey]admVal)
	return c
}

// Router returns the epoch-keyed path cache serving this cloud's
// connect/probe/explain path selection.
func (c *Cloud) Router() *qos.Router { return c.router }

// AddProvider creates a provider control plane for the named cloud.
func (c *Cloud) AddProvider(name string, cfg Config) (*Provider, error) {
	if _, ok := c.providers[name]; ok {
		return nil, fmt.Errorf("core: duplicate provider %q", name)
	}
	p, err := NewProvider(name, c.Eng, c.G, c.Net, cfg)
	if err != nil {
		return nil, err
	}
	p.resolve = func(tenant, group string) ([]EIP, bool) {
		members, ok := c.groups[tenant][group]
		return members, ok
	}
	p.faults = c.monitor
	if c.trace != nil {
		p.trace = c.traceEvent
	}
	p.addrsChanged = c.noteAddrsChanged
	c.providers[name] = p
	c.noteAddrsChanged()
	if c.reg != nil {
		c.registerProviderMetrics(name, p)
	}
	return p, nil
}

// CreateGroup defines a tenant-scoped endpoint group whose members may
// span providers; any provider resolves it in set_permit_list.
func (c *Cloud) CreateGroup(tenant, name string, members ...EIP) error {
	for _, m := range members {
		p, ok := c.providerOfAddr(m)
		if !ok {
			return fmt.Errorf("core: group member %s is not a granted address", m)
		}
		if _, err := p.owned(tenant, m); err != nil {
			return err
		}
	}
	if c.groups[tenant] == nil {
		c.groups[tenant] = make(map[string][]EIP)
	}
	c.groups[tenant][name] = append([]EIP(nil), members...)
	return nil
}

// Provider returns a control plane by name.
func (c *Cloud) Provider(name string) (*Provider, bool) {
	p, ok := c.providers[name]
	return p, ok
}

// SetBiller attaches usage metering to every provider currently in the
// cloud (call after AddProvider).
func (c *Cloud) SetBiller(b Biller) {
	for _, p := range c.providers {
		p.SetBiller(b)
	}
}

// ProviderOf finds which provider granted an address (EIP or SIP).
func (c *Cloud) ProviderOf(ip addr.IP) (*Provider, bool) {
	return c.providerOfAddr(ip)
}

// providerOfAddr finds which provider granted an address (EIP or SIP),
// through an addrEpoch-keyed cache so repeat lookups skip the per-provider
// map probes. Misses (address granted by nobody) are cached as nil: the
// only way the answer changes is an address grant/release or a provider
// add, each of which bumps addrEpoch.
func (c *Cloud) providerOfAddr(ip addr.IP) (*Provider, bool) {
	ep := c.addrEpoch.Load()
	c.fp.mu.Lock()
	if c.fp.provEpoch != ep {
		clear(c.fp.prov)
		c.fp.provEpoch = ep
	} else if p, ok := c.fp.prov[ip]; ok {
		c.fp.mu.Unlock()
		return p, p != nil
	}
	c.fp.mu.Unlock()
	p, ok := c.scanProviderOfAddr(ip)
	c.fp.mu.Lock()
	if c.fp.provEpoch == ep {
		if len(c.fp.prov) >= fastPathCap {
			clear(c.fp.prov)
		}
		c.fp.prov[ip] = p // nil for a negative entry
	}
	c.fp.mu.Unlock()
	return p, ok
}

// scanProviderOfAddr is the uncached provider scan behind providerOfAddr.
func (c *Cloud) scanProviderOfAddr(ip addr.IP) (*Provider, bool) {
	for _, p := range c.providers {
		if _, ok := p.endpoints[ip]; ok {
			return p, true
		}
		if _, ok := p.services[ip]; ok {
			return p, true
		}
	}
	return nil, false
}

// admitted is dstProv.Permits.Check(src, dst) behind a verdict cache. A
// hit still counts one Lookups unit — the counter means "admission checks
// enforced", not "trie walks" — and is valid only while dst's list is the
// same object at the same version. The unguarded (no list) case is not
// cached: default-off deny is already a single map probe.
func (c *Cloud) admitted(dstProv *Provider, src, dst addr.IP) bool {
	l, ok := dstProv.Permits.List(dst)
	if !ok {
		return dstProv.Permits.Check(src, dst)
	}
	ver := l.Version()
	key := admKey{src, dst}
	c.fp.mu.Lock()
	if v, hit := c.fp.adm[key]; hit && v.list == l && v.version == ver {
		c.fp.mu.Unlock()
		dstProv.Permits.Lookups.Add(1)
		return v.allowed
	}
	c.fp.mu.Unlock()
	allowed := dstProv.Permits.Check(src, dst)
	c.fp.mu.Lock()
	if len(c.fp.adm) >= fastPathCap {
		clear(c.fp.adm)
	}
	c.fp.adm[key] = admVal{allowed: allowed, list: l, version: ver}
	c.fp.mu.Unlock()
	return allowed
}

// Conn is one admitted connection: a live flow plus the load-balancer and
// quota bookkeeping needed to tear it down cleanly.
type Conn struct {
	Flow   *netsim.Flow
	Path   topo.Path
	SrcEIP EIP
	DstEIP EIP

	cloud    *Cloud
	adapter  *flowAdapter
	enforcer *qos.Enforcer
	release  func()
	closed   bool

	tenant string
	class  QoSClass
	biller Biller
	billed bool
}

// Close ends the connection, releasing its backend slot and quota share.
func (cn *Conn) Close() {
	if cn.closed {
		return
	}
	cn.closed = true
	if cn.Flow != nil && !cn.Flow.Done() {
		cn.cloud.Net.Stop(cn.Flow)
	}
	if cn.enforcer != nil && cn.adapter != nil {
		cn.enforcer.Detach(cn.adapter)
	}
	if cn.release != nil {
		cn.release()
	}
	cn.bill()
}

// bill records transferred bytes once, at completion or close.
func (cn *Conn) bill() {
	if cn.billed || cn.biller == nil || cn.Flow == nil {
		return
	}
	cn.billed = true
	cn.biller.AddBytes(cn.tenant, cn.cloud.Eng.Now(), cn.Flow.SentBytes(), cn.class == Reserved)
}

// flowAdapter lets the distributed limiter shape a netsim flow.
type flowAdapter struct {
	net    *netsim.Network
	flow   *netsim.Flow
	demand float64
	vmCap  float64
}

// SetCap implements qos.RateSetter, respecting the per-VM egress cap.
func (a *flowAdapter) SetCap(bps float64) {
	if a.vmCap > 0 && (bps == 0 || bps > a.vmCap) {
		bps = a.vmCap
	}
	a.net.SetMaxRate(a.flow, bps)
}

// Demand implements qos.RateSetter.
func (a *flowAdapter) Demand() float64 { return a.demand }

// QoSClass marks which traffic consumes the tenant's reserved regional
// egress bandwidth — the extension the paper's §4 footnote leaves to
// future work ("Extensions might allow the tenant to indicate what
// portions of their traffic should consume this reserved bandwidth").
type QoSClass int

const (
	// Reserved traffic draws on the set_qos regional guarantee (default).
	Reserved QoSClass = iota
	// BestEffort traffic never consumes the reservation; it takes
	// whatever fair share the network gives it under the per-VM cap.
	BestEffort
)

func (c QoSClass) String() string {
	if c == BestEffort {
		return "best-effort"
	}
	return "reserved"
}

// ConnectOpts tunes a connection.
type ConnectOpts struct {
	// SizeBytes < 0 starts a persistent flow.
	SizeBytes float64
	// Demand is the offered load in bits/s for quota accounting;
	// 0 defaults to the path bottleneck.
	Demand float64
	// Class selects whether the flow consumes the regional reservation.
	Class QoSClass
	// OnDone fires for sized flows with the completion time.
	OnDone func(fct time.Duration)
}

// Connect opens a connection from a tenant's EIP to a destination EIP or
// SIP, running the paper's data path: (1) default-off permit admission at
// the destination provider, (2) SIP load balancing when the target is a
// service address, (3) potato-profile path selection, (4) per-VM and
// regional egress enforcement. The returned Conn carries a live netsim
// flow.
func (c *Cloud) Connect(tenant string, src EIP, dst addr.IP, opts ConnectOpts) (*Conn, error) {
	srcProv, ok := c.providerOfAddr(src)
	if !ok {
		return nil, fmt.Errorf("core: unknown source EIP %s", src)
	}
	srcEp, err := srcProv.owned(tenant, src)
	if err != nil {
		return nil, err
	}
	dstProv, ok := c.providerOfAddr(dst)
	if !ok {
		return nil, fmt.Errorf("core: destination %s is not a granted address", dst)
	}
	// (1) Default-off admission, enforced by the destination's provider
	// against the address the client targeted (EIP or SIP).
	if !c.admitted(dstProv, src, dst) {
		if c.trace != nil {
			dec := dstProv.Permits.Explain(src, dst)
			cause := obs.Chain("permit-deny:"+dst.String(), "src-not-in-permit-list")
			if !dec.HasList {
				cause = obs.Chain("permit-deny:"+dst.String(), "no-permit-list")
			}
			c.traceEvent(obs.PermitDeny, tenant, src, dst, "deny",
				"entries="+strconv.Itoa(dec.Entries)+" epoch="+strconv.FormatUint(dec.Version, 10), cause)
		}
		c.mConnectsDenied.Inc()
		return nil, fmt.Errorf("core: %s not permitted to reach %s (default-off)", src, dst)
	}
	if c.trace != nil {
		dec := dstProv.Permits.Explain(src, dst)
		c.traceEvent(obs.PermitAllow, tenant, src, dst, "ok",
			"entry="+dec.Matched.String()+" epoch="+strconv.FormatUint(dec.Version, 10), "")
	}
	// (2) Resolve SIP -> backend EIP via the provider's balancer.
	dstEIP := dst
	var release func()
	if svc, isSIP := dstProv.services[dst]; isSIP {
		be, err := svc.balancer.Pick()
		if err != nil {
			c.traceEvent(obs.SIPPick, tenant, src, dst, "fail",
				"healthy=0/"+strconv.Itoa(len(svc.balancer.Backends())),
				"no-healthy-backend:"+dst.String())
			c.mConnectsErr.Inc()
			return nil, fmt.Errorf("core: %s: %w", dst, err)
		}
		c.traceEvent(obs.SIPPick, tenant, src, dst, "ok",
			"backend="+be.EIP.String()+" healthy="+strconv.Itoa(svc.balancer.HealthyCount())+
				"/"+strconv.Itoa(len(svc.balancer.Backends())), "")
		dstEIP = be.EIP
		bal := svc.balancer
		release = func() { bal.Release(be) }
	}
	dstEp, ok := dstProv.endpoints[dstEIP]
	if !ok {
		if release != nil {
			release()
		}
		c.mConnectsErr.Inc()
		return nil, fmt.Errorf("core: backend %s vanished", dstEIP)
	}
	// (3) Path under the tenant's transit profile.
	policy, okPol := srcProv.potato[tenant]
	if !okPol {
		policy = qos.HotPotato
	}
	path, err := c.router.PathFor(policy, srcEp.node, dstEp.node)
	if err != nil {
		if release != nil {
			release()
		}
		c.traceEvent(obs.PathSelect, tenant, src, dstEIP, "fail",
			fmt.Sprintf("policy=%v", policy), fmt.Sprintf("no-path:%v", policy))
		c.mConnectsErr.Inc()
		return nil, err
	}
	c.traceEvent(obs.PathSelect, tenant, src, dstEIP, "ok",
		"policy="+policy.String()+" hops="+strconv.Itoa(len(path))+
			" delay="+time.Duration(path.Delay()).String(), "")
	// (4) Start the flow under the per-VM cap, then attach it to the
	// regional egress limiter when it leaves the source region.
	vmCap := srcEp.egressCap
	if vmCap == 0 {
		vmCap = srcProv.defaultVMEgress
	}
	demand := opts.Demand
	if demand == 0 {
		demand = path.Bottleneck()
	}
	if demand > vmCap {
		demand = vmCap
	}
	cn := &Conn{
		Path: path, SrcEIP: src, DstEIP: dstEIP,
		cloud: c, release: release,
		tenant: tenant, class: opts.Class, biller: srcProv.meter,
	}
	flow, err := c.Net.StartFlow(&netsim.Flow{
		Path:    path,
		Size:    opts.SizeBytes,
		MaxRate: vmCap,
		OnDone: func(fct time.Duration) {
			cn.bill()
			if opts.OnDone != nil {
				opts.OnDone(fct)
			}
		},
	})
	if err != nil {
		if release != nil {
			release()
		}
		return nil, err
	}
	cn.Flow = flow
	if opts.Class == Reserved && (dstEp.provider != srcEp.provider || dstEp.region != srcEp.region) {
		// Cross-region/cloud reserved egress: subject to the tenant's
		// regional quota when one is set. Best-effort traffic bypasses
		// the reservation entirely (§4 footnote extension).
		if tq, ok := srcProv.quotas[tenant][srcEp.region]; ok && tq.quota > 0 {
			ad := &flowAdapter{net: c.Net, flow: flow, demand: demand, vmCap: vmCap}
			enf, found := tq.enforcer[srcEp.node]
			if !found {
				enf = qos.NewEnforcer(string(srcEp.node))
				tq.enforcer[srcEp.node] = enf
				tq.limiter.AddEnforcer(enf)
			}
			enf.Attach(ad)
			tq.limiter.Redistribute()
			cn.adapter = ad
			cn.enforcer = enf
			c.traceEvent(obs.QoSThrottle, tenant, src, dstEIP, "ok",
				fmt.Sprintf("region=%s quota=%.3gbps demand=%.3gbps", srcEp.region, tq.quota, demand), "")
		}
	}
	c.mConnects.Inc()
	return cn, nil
}

// Probe measures a round trip from a tenant EIP to a destination address,
// subject to the same admission and path policy as Connect. It reports
// the sampled RTT and whether the (single-datagram) probe survived loss.
func (c *Cloud) Probe(tenant string, src EIP, dst addr.IP) (time.Duration, bool, error) {
	srcProv, ok := c.providerOfAddr(src)
	if !ok {
		return 0, false, fmt.Errorf("core: unknown source EIP %s", src)
	}
	srcEp, err := srcProv.owned(tenant, src)
	if err != nil {
		return 0, false, err
	}
	dstProv, ok := c.providerOfAddr(dst)
	if !ok {
		return 0, false, fmt.Errorf("core: destination %s is not a granted address", dst)
	}
	if !c.admitted(dstProv, src, dst) {
		return 0, false, fmt.Errorf("core: %s not permitted to reach %s (default-off)", src, dst)
	}
	dstEIP := dst
	if svc, isSIP := dstProv.services[dst]; isSIP {
		be, err := svc.balancer.Pick()
		if err != nil {
			return 0, false, err
		}
		dstEIP = be.EIP
		defer svc.balancer.Release(be)
	}
	dstEp := dstProv.endpoints[dstEIP]
	policy, okPol := srcProv.potato[tenant]
	if !okPol {
		policy = qos.HotPotato
	}
	path, err := c.router.PathFor(policy, srcEp.node, dstEp.node)
	if err != nil {
		return 0, false, err
	}
	rtt := c.Net.RTT(path)
	ok = c.Net.Delivered(path) && c.Net.Delivered(path)
	c.mProbes.Inc()
	return rtt, ok, nil
}

// RegisterName binds a tenant-scoped name to one of the tenant's
// addresses (EIP or SIP). Re-registering a name repoints it — which is
// how a tenant cuts over a service without clients noticing.
func (c *Cloud) RegisterName(tenant, name string, target addr.IP) error {
	p, ok := c.providerOfAddr(target)
	if !ok {
		return fmt.Errorf("core: %s is not a granted address", target)
	}
	if err := p.ownsTarget(tenant, target); err != nil {
		return err
	}
	if c.names[tenant] == nil {
		c.names[tenant] = make(map[string]addr.IP)
	}
	c.names[tenant][name] = target
	return nil
}

// ResolveName returns the address behind a tenant's name.
func (c *Cloud) ResolveName(tenant, name string) (addr.IP, bool) {
	ip, ok := c.names[tenant][name]
	return ip, ok
}

// UnregisterName removes a name binding.
func (c *Cloud) UnregisterName(tenant, name string) bool {
	if _, ok := c.names[tenant][name]; !ok {
		return false
	}
	delete(c.names[tenant], name)
	return true
}

// ConnectName is Connect with the destination given by name.
func (c *Cloud) ConnectName(tenant string, src EIP, name string, opts ConnectOpts) (*Conn, error) {
	dst, ok := c.ResolveName(tenant, name)
	if !ok {
		return nil, fmt.Errorf("core: tenant %q has no name %q", tenant, name)
	}
	return c.Connect(tenant, src, dst, opts)
}

// Admitted reports whether src may currently reach dst — the pure
// admission decision, used heavily by the security experiment.
func (c *Cloud) Admitted(src EIP, dst addr.IP) bool {
	dstProv, ok := c.providerOfAddr(dst)
	if !ok {
		return false
	}
	return c.admitted(dstProv, src, dst)
}

// Ensure interface satisfaction.
var _ qos.RateSetter = (*flowAdapter)(nil)
var _ = permit.Entry{}
