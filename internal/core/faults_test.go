package core

import (
	"testing"
	"time"

	"declnet/internal/addr"
	"declnet/internal/permit"
	"declnet/internal/topo"
)

// failoverWorld grants a SIP with two backends in cloud B and a permitted
// client in cloud A, with faults enabled under the given policy.
func failoverWorld(t *testing.T, policy FaultPolicy) (c *Cloud, m *FaultMonitor, client EIP, sip SIP, be1, be2 EIP, n1, n2 topo.NodeID) {
	t.Helper()
	c, w, pa, pb, _ := fig1Cloud(t)
	m = c.EnableFaults(policy)

	var err error
	client, err = pa.RequestEIP("acme", topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1))
	if err != nil {
		t.Fatal(err)
	}
	n1 = topo.HostID(w.CloudB, w.RegionsB[0], "az1", 1)
	n2 = topo.HostID(w.CloudB, w.RegionsB[0], "az2", 1)
	be1, err = pb.RequestEIP("acme", n1)
	if err != nil {
		t.Fatal(err)
	}
	be2, err = pb.RequestEIP("acme", n2)
	if err != nil {
		t.Fatal(err)
	}
	sip, err = pb.RequestSIP("acme")
	if err != nil {
		t.Fatal(err)
	}
	if err := pb.Bind("acme", be1, sip, 1); err != nil {
		t.Fatal(err)
	}
	if err := pb.Bind("acme", be2, sip, 1); err != nil {
		t.Fatal(err)
	}
	if err := pb.SetPermitList("acme", sip, []permit.Entry{addr.NewPrefix(client, 32)}); err != nil {
		t.Fatal(err)
	}
	return c, m, client, sip, be1, be2, n1, n2
}

func TestSIPFailsOverToSurvivingBackend(t *testing.T) {
	policy := FaultPolicy{HealthInterval: 100 * time.Millisecond, DownAfter: 2}
	c, m, client, sip, be1, _, n1, _ := failoverWorld(t, policy)

	c.Eng.Schedule(time.Second, func() {
		if err := m.Inj.FailNode(n1); err != nil {
			t.Error(err)
		}
	})
	// After the detect delay every pick must land on the survivor —
	// with zero tenant API calls in between.
	c.Eng.Schedule(time.Second+policy.DetectDelay()+policy.HealthInterval, func() {
		for i := 0; i < 10; i++ {
			cn, err := c.Connect("acme", client, sip, ConnectOpts{SizeBytes: 1e3})
			if err != nil {
				t.Fatalf("connect during failure: %v", err)
			}
			if cn.DstEIP == be1 {
				t.Fatalf("pick %d served from down backend %s", i, be1)
			}
			cn.Close()
		}
	})
	c.Eng.RunUntil(5 * time.Second)
	if m.Failovers != 1 {
		t.Fatalf("Failovers = %d, want 1", m.Failovers)
	}
	if !m.BackendDown("cloudB", sip, be1) {
		t.Fatal("monitor should hold be1 out of rotation")
	}
}

func TestRecoveredBackendRebindsAfterBackoff(t *testing.T) {
	policy := FaultPolicy{
		HealthInterval: 100 * time.Millisecond,
		DownAfter:      2,
		RebindBackoff:  time.Second,
	}
	c, m, _, sip, be1, _, n1, _ := failoverWorld(t, policy)

	c.Eng.Schedule(time.Second, func() { m.Inj.FailNode(n1) })
	c.Eng.Schedule(3*time.Second, func() { m.Inj.RestoreNode(n1) })
	// Just after recovery the backoff still holds the backend out.
	c.Eng.Schedule(3*time.Second+300*time.Millisecond, func() {
		if !m.BackendDown("cloudB", sip, be1) {
			t.Error("backend re-entered rotation before backoff elapsed")
		}
	})
	c.Eng.RunUntil(6 * time.Second)
	if m.Rebinds != 1 {
		t.Fatalf("Rebinds = %d, want 1", m.Rebinds)
	}
	if m.BackendDown("cloudB", sip, be1) {
		t.Fatal("backend should be back in rotation after backoff")
	}
	if m.LastRebindAt < 4*time.Second {
		t.Fatalf("rebind at %v, want ≥ recovery+backoff (4s)", m.LastRebindAt)
	}
}

func TestRebindBackoffDoublesPerFlap(t *testing.T) {
	policy := FaultPolicy{
		HealthInterval:   100 * time.Millisecond,
		DownAfter:        1,
		RebindBackoff:    200 * time.Millisecond,
		RebindBackoffMax: 300 * time.Millisecond,
	}
	c, m, _, sip, be1, _, n1, _ := failoverWorld(t, policy)

	// Two fail/heal rounds: the second re-bind must wait the doubled
	// (and capped) backoff.
	c.Eng.Schedule(time.Second, func() { m.Inj.FailNode(n1) })
	c.Eng.Schedule(2*time.Second, func() { m.Inj.RestoreNode(n1) })
	c.Eng.Schedule(4*time.Second, func() { m.Inj.FailNode(n1) })
	c.Eng.Schedule(5*time.Second, func() { m.Inj.RestoreNode(n1) })
	c.Eng.Schedule(5*time.Second+200*time.Millisecond, func() {
		if !m.BackendDown("cloudB", sip, be1) {
			t.Error("second re-bind should wait the doubled backoff")
		}
	})
	c.Eng.RunUntil(8 * time.Second)
	if m.Failovers != 2 || m.Rebinds != 2 {
		t.Fatalf("failovers=%d rebinds=%d, want 2/2", m.Failovers, m.Rebinds)
	}
	st := m.backends[backendKey{"cloudB", sip, be1}]
	if st.backoff != policy.RebindBackoffMax {
		t.Fatalf("backoff = %v, want capped at %v", st.backoff, policy.RebindBackoffMax)
	}
}

func TestPermitUpdateRetriesUntilNodeReturns(t *testing.T) {
	policy := FaultPolicy{
		HealthInterval:      100 * time.Millisecond,
		PermitRetryInterval: 500 * time.Millisecond,
		PermitRetryTimeout:  10 * time.Second,
	}
	c, m, client, _, be1, _, n1, _ := failoverWorld(t, policy)
	pb, _ := c.Provider("cloudB")

	c.Eng.Schedule(time.Second, func() { m.Inj.FailNode(n1) })
	// While be1's host is down, a permit update for it defers.
	c.Eng.Schedule(2*time.Second, func() {
		if err := pb.SetPermitList("acme", be1, []permit.Entry{addr.NewPrefix(client, 32)}); err != nil {
			t.Error(err)
		}
		if pb.Permits.Check(client, be1) {
			t.Error("permit landed while enforcement point unreachable")
		}
	})
	c.Eng.Schedule(4*time.Second, func() { m.Inj.RestoreNode(n1) })
	c.Eng.RunUntil(8 * time.Second)
	if !pb.Permits.Check(client, be1) {
		t.Fatal("permit update never landed after the node returned")
	}
	if m.PermitRetries == 0 {
		t.Fatal("expected at least one deferred attempt")
	}
	if m.PermitTimeouts != 0 {
		t.Fatalf("PermitTimeouts = %d, want 0", m.PermitTimeouts)
	}
}

func TestPermitUpdateTimesOut(t *testing.T) {
	policy := FaultPolicy{
		HealthInterval:      100 * time.Millisecond,
		PermitRetryInterval: 500 * time.Millisecond,
		PermitRetryTimeout:  2 * time.Second,
	}
	c, m, client, _, be1, _, n1, _ := failoverWorld(t, policy)
	pb, _ := c.Provider("cloudB")

	c.Eng.Schedule(time.Second, func() { m.Inj.FailNode(n1) })
	c.Eng.Schedule(2*time.Second, func() {
		pb.SetPermitList("acme", be1, []permit.Entry{addr.NewPrefix(client, 32)})
	})
	// Node never heals within the timeout.
	c.Eng.RunUntil(10 * time.Second)
	if m.PermitTimeouts != 1 {
		t.Fatalf("PermitTimeouts = %d, want 1", m.PermitTimeouts)
	}
	if pb.Permits.Check(client, be1) {
		t.Fatal("abandoned permit update must not land")
	}
}

func TestQuotaDegradesWhenRegionPartitions(t *testing.T) {
	policy := FaultPolicy{HealthInterval: 100 * time.Millisecond, DownAfter: 2}
	c, w, pa, pb, _ := fig1Cloud(t)
	m := c.EnableFaults(policy)

	// Two senders in different cloud-A regions, one receiver in cloud B,
	// a tenant-wide quota per region.
	src1, _ := pa.RequestEIP("acme", topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1))
	src2, _ := pa.RequestEIP("acme", topo.HostID(w.CloudA, w.RegionsA[1], "az1", 1))
	dst, _ := pb.RequestEIP("acme", topo.HostID(w.CloudB, w.RegionsB[0], "az1", 1))
	pb.SetPermitList("acme", dst, []permit.Entry{addr.NewPrefix(src1, 32), addr.NewPrefix(src2, 32)})
	pa.SetQoS("acme", w.RegionsA[0], 2e9)
	pa.SetQoS("acme", w.RegionsA[1], 2e9)

	cn1, err := c.Connect("acme", src1, dst, ConnectOpts{SizeBytes: -1, Demand: 2e9})
	if err != nil {
		t.Fatal(err)
	}
	cn2, err := c.Connect("acme", src2, dst, ConnectOpts{SizeBytes: -1, Demand: 2e9})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = cn1, cn2

	// Partition region a-east away: its enforcer must drop out of the
	// limiter's share so the tenant's guarantee survives on a-west.
	c.Eng.Schedule(time.Second, func() { m.Inj.FailRegion(w.CloudA, w.RegionsA[0]) })
	c.Eng.Schedule(2*time.Second, func() {
		tq := pa.quotas["acme"][w.RegionsA[0]]
		for _, enf := range tq.enforcer {
			if enf.Up() {
				t.Error("enforcer in partitioned region should be marked down")
			}
		}
		tq2 := pa.quotas["acme"][w.RegionsA[1]]
		for _, enf := range tq2.enforcer {
			if !enf.Up() {
				t.Error("enforcer in healthy region should stay up")
			}
		}
		if cn2.Flow.Rate() == 0 {
			t.Error("surviving region's flow should keep its rate")
		}
	})
	c.Eng.Schedule(3*time.Second, func() { m.Inj.RestoreRegion(w.CloudA, w.RegionsA[0]) })
	c.Eng.RunUntil(5 * time.Second)
	tq := pa.quotas["acme"][w.RegionsA[0]]
	for _, enf := range tq.enforcer {
		if !enf.Up() {
			t.Fatal("enforcer should recover with its region")
		}
	}
}
