// Desired-state reconciliation: the convergence loop that keeps the
// simulated dataplane (permit engines, SIP balancers, QoS limiters)
// equal to the declared intent in the durable store. Declared state is
// what the journal replays (internal/intent.State); the dataplane can
// drift from it through faults, lost updates, or the chaos hooks in
// intent.go. Each sweep takes the log's copy-on-write view, releases
// the log lock, and then diffs and repairs under ordinary shard locks —
// never holding the log lock and a shard lock together, which keeps the
// reconciler out of the wrappers' shard-lock -> log-lock order.
//
// Two sweep modes share the per-target check helpers. The legacy full
// sweep (AntiEntropyK == 0) walks every declared target every time.
// The incremental sweep (AntiEntropyK == K > 0) checks only targets the
// convergence tracker marked dirty since the last sweep, plus a
// rotating anti-entropy slice — 1/K of the declared world and 1/K of
// the installed permit stripes per sweep — so drift injected behind the
// recorder's back (the Drift* chaos hooks) is still found within K
// sweeps of injection: a bounded detection lag instead of a bounded
// per-sweep cost times the whole world.
package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"declnet/internal/addr"
	"declnet/internal/intent"
	"declnet/internal/metrics"
	"declnet/internal/obs"
)

// ReconcilerConfig tunes the convergence loop.
type ReconcilerConfig struct {
	// Interval is the wall-clock sweep period for Start's background
	// goroutines (default 1s).
	Interval time.Duration
	// RepairBudget caps repairs per sweep; divergence beyond it stays
	// queued for the next sweep (reported as queue depth). Default 256.
	RepairBudget int
	// AntiEntropyK selects the sweep mode. 0 (the default) is the full
	// scan: every declared target diffed every sweep. K > 0 is the
	// incremental sweep: dirty-marked targets plus a rotating 1/K
	// anti-entropy slice, bounding undirtied-drift detection lag to K
	// sweeps. The daemon runs K=8 by default (-anti-entropy-k).
	AntiEntropyK int
	// Gate, when set, brackets each background sweep: it acquires
	// whatever external serialization the embedder needs (the daemon
	// passes the API server's world read lock, which excludes engine
	// advancement) and returns the release. RunSweep itself never calls
	// it — synchronous callers own their serialization.
	Gate func() func()
}

// SweepResult summarizes one reconciliation sweep.
type SweepResult struct {
	DriftPermits int `json:"drift_permits"`
	DriftBinds   int `json:"drift_binds"`
	DriftQuotas  int `json:"drift_quotas"`
	Repaired     int `json:"repaired"`
	// Deferred counts divergences found but left for the next sweep
	// (repair budget exhausted or enforcement point unreachable).
	Deferred int `json:"deferred"`
	// Scanned counts targets examined this sweep, across every surface;
	// the full sweep scans the world, the incremental sweep scans
	// dirty + anti-entropy only — the ratio is the incremental win.
	Scanned int `json:"scanned"`
	// DirtyHits counts dirty-set checks that confirmed real drift.
	DirtyHits int `json:"dirty_hits"`
	// AntiEntropyScanned counts checks driven by the rotation rather
	// than a dirty mark (0 in full sweeps).
	AntiEntropyScanned int `json:"anti_entropy_scanned"`
}

// Reconciler owns the convergence loop over one Cloud. Create it with
// EnableReconciler; drive it synchronously with RunSweep (tests, the
// chaos soak) or in the background with Start (the daemon).
type Reconciler struct {
	cloud *Cloud
	cfg   ReconcilerConfig

	sweeps       atomic.Uint64
	repairs      atomic.Uint64
	driftPermits atomic.Uint64
	driftBinds   atomic.Uint64
	driftQuotas  atomic.Uint64
	scanned      atomic.Uint64
	dirtyHits    atomic.Uint64
	antiScanned  atomic.Uint64
	queueDepth   atomic.Int64
	lastSweepNs  atomic.Int64 // wall clock, UnixNano; 0 = never
	lastSweepDur atomic.Int64 // nanoseconds

	// aeIdx memoizes the anti-entropy bucket partition of one declared
	// view; valid while the log publishes the same view (same Seq), so
	// steady-state sweeps never re-bucket the world.
	aeMu  sync.Mutex
	aeIdx *aeIndex

	mu      sync.Mutex
	running bool
	stop    chan struct{}
	done    sync.WaitGroup
}

// EnableReconciler builds the convergence loop. Requires EnableIntent
// first — without a declared state there is nothing to converge to.
func (c *Cloud) EnableReconciler(cfg ReconcilerConfig) (*Reconciler, error) {
	if c.rec == nil {
		return nil, fmt.Errorf("core: EnableReconciler requires EnableIntent first")
	}
	if c.reconciler != nil {
		return c.reconciler, nil
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.RepairBudget <= 0 {
		cfg.RepairBudget = 256
	}
	r := &Reconciler{cloud: c, cfg: cfg}
	c.reconciler = r
	if c.reg != nil {
		c.reg.GaugeFunc("declnet_reconcile_sweeps_total",
			"Reconciliation sweeps completed.", func() float64 { return float64(r.sweeps.Load()) })
		c.reg.GaugeFunc("declnet_reconcile_repairs_total",
			"Dataplane divergences repaired.", func() float64 { return float64(r.repairs.Load()) })
		c.reg.GaugeFunc("declnet_reconcile_drift_total",
			"Divergences found, by surface.", func() float64 { return float64(r.driftPermits.Load()) },
			metrics.L("surface", "permit"))
		c.reg.GaugeFunc("declnet_reconcile_drift_total",
			"Divergences found, by surface.", func() float64 { return float64(r.driftBinds.Load()) },
			metrics.L("surface", "bind"))
		c.reg.GaugeFunc("declnet_reconcile_drift_total",
			"Divergences found, by surface.", func() float64 { return float64(r.driftQuotas.Load()) },
			metrics.L("surface", "qos"))
		c.reg.GaugeFunc("declnet_reconcile_scanned_total",
			"Targets examined by sweeps, all surfaces.", func() float64 { return float64(r.scanned.Load()) })
		c.reg.GaugeFunc("declnet_reconcile_dirty_hits_total",
			"Dirty-set checks that confirmed drift.", func() float64 { return float64(r.dirtyHits.Load()) })
		c.reg.GaugeFunc("declnet_reconcile_anti_entropy_scanned_total",
			"Targets examined by the anti-entropy rotation.", func() float64 { return float64(r.antiScanned.Load()) })
		c.reg.GaugeFunc("declnet_reconcile_queue_depth",
			"Divergences deferred to the next sweep.", func() float64 { return float64(r.queueDepth.Load()) })
		c.reg.GaugeFunc("declnet_reconcile_lag_seconds",
			"Wall-clock seconds since the last completed sweep.", func() float64 {
				last := r.lastSweepNs.Load()
				if last == 0 {
					return 0
				}
				return time.Since(time.Unix(0, last)).Seconds()
			})
	}
	return r, nil
}

// Reconciler returns the convergence loop, or nil before
// EnableReconciler.
func (c *Cloud) Reconciler() *Reconciler { return c.reconciler }

// RunSweep performs one deterministic sweep. With AntiEntropyK == 0:
// every provider, every region (plus each provider's region-less SIP
// plane), permits then binds then quotas. With K > 0: the dirty sets
// accumulated since the last sweep plus this sweep's anti-entropy
// slice. Safe to call concurrently with API verbs — repairs take the
// ordinary shard locks — but callers that also advance the simulation
// engine must serialize that themselves (see ReconcilerConfig.Gate).
func (r *Reconciler) RunSweep() SweepResult {
	start := time.Now()
	budget := r.cfg.RepairBudget
	var res SweepResult
	if r.cfg.AntiEntropyK <= 0 {
		st := r.cloud.rec.View()
		for _, p := range r.cloud.pidx.Load().list {
			for _, region := range p.sweepScopes() {
				r.sweepScope(p, region, st, &budget, &res)
			}
		}
	} else {
		r.incrementalSweep(&budget, &res)
	}
	r.finishSweep(start, &res)
	return res
}

// finishSweep folds one sweep's result into the running counters.
func (r *Reconciler) finishSweep(start time.Time, res *SweepResult) {
	r.sweeps.Add(1)
	r.repairs.Add(uint64(res.Repaired))
	r.driftPermits.Add(uint64(res.DriftPermits))
	r.driftBinds.Add(uint64(res.DriftBinds))
	r.driftQuotas.Add(uint64(res.DriftQuotas))
	r.scanned.Add(uint64(res.Scanned))
	r.dirtyHits.Add(uint64(res.DirtyHits))
	r.antiScanned.Add(uint64(res.AntiEntropyScanned))
	r.queueDepth.Store(int64(res.Deferred))
	r.lastSweepNs.Store(start.UnixNano())
	r.lastSweepDur.Store(int64(time.Since(start)))
}

// sweepScope reconciles one (provider, region) scope of the full sweep.
// region "" is the provider's SIP plane: service addresses, their
// bindings, and SIP permit lists.
func (r *Reconciler) sweepScope(p *Provider, region string, st *intent.State, budget *int, res *SweepResult) {
	r.sweepPermits(p, region, st, budget, res)
	if region == "" {
		r.sweepBinds(p, st, budget, res)
	}
	r.sweepQuotas(p, region, st, budget, res)
}

// entriesEqual compares two permit entry sets canonically (sorted by
// address then length). Safe on unsorted, deduplicated input; the hot
// path uses permit.Engine.EqualsEntries instead (no copies, no sort),
// and the parity property test uses this as its independent oracle.
func entriesEqual(a, b []addr.Prefix) bool {
	if len(a) != len(b) {
		return false
	}
	a, b = sortedEntries(a), sortedEntries(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortedEntries(in []addr.Prefix) []addr.Prefix {
	out := append([]addr.Prefix(nil), in...)
	// sort.Slice, not an insertion sort: this used to run per target per
	// sweep and went quadratic on large lists.
	sort.Slice(out, func(i, j int) bool {
		return out[i].Addr < out[j].Addr ||
			(out[i].Addr == out[j].Addr && out[i].Len < out[j].Len)
	})
	return out
}

// checkDeclaredPermit diffs one declared permit target against the
// enforcement engine and repairs in place. Reports whether divergence
// was found. Targets with a deferred (fault-pending) permit update are
// skipped — the fault monitor owns them until they land or time out.
func (r *Reconciler) checkDeclaredPermit(p *Provider, t addr.IP, pl *intent.PermitList, budget *int, res *SweepResult) bool {
	c := r.cloud
	if c.monitor != nil {
		if _, pending := c.monitor.PendingPermit(t); pending {
			return false
		}
	}
	// Declared entries are kept canonically sorted and deduplicated at
	// apply time, so the steady-state comparison is a containment probe
	// against the installed set — no clone, no sort, no allocation.
	equal, hasList := p.Permits.EqualsEntries(t, pl.Entries)
	if hasList && equal {
		return false
	}
	res.DriftPermits++
	cause := "drift:entries-mismatch"
	if !hasList {
		cause = "drift:missing-list"
	}
	if *budget <= 0 {
		res.Deferred++
		return true
	}
	// Respect fault-deferral semantics: an endpoint whose enforcement
	// point is unreachable cannot take the repair now.
	if c.monitor != nil {
		if ep, ok := p.addrs.getEndpoint(t); ok && !c.monitor.Inj.Reachable(ep.node) {
			res.Deferred++
			return true
		}
	}
	*budget--
	unlock := p.lockShard(p.shardKeyFor(pl.Tenant, t))
	// Re-check liveness under the lock: the target may have been
	// released since the declared view was taken.
	if _, ok := p.addrs.getEndpoint(t); ok {
		p.Permits.Set(t, pl.Entries)
	} else if _, ok := p.addrs.getService(t); ok {
		p.Permits.Set(t, pl.Entries)
	} else {
		unlock()
		return true
	}
	unlock()
	c.convBumpTarget(p, t)
	res.Repaired++
	c.traceEvent(obs.Reconcile, pl.Tenant, 0, t, "repaired",
		fmt.Sprintf("surface=permit entries=%d", len(pl.Entries)),
		obs.Chain("reconcile:permit:"+t.String(), cause))
	return true
}

// checkUndeclaredPermit drops a list installed for a target the
// declared state no longer guards. The caller established that the
// target is undeclared and a list is installed.
func (r *Reconciler) checkUndeclaredPermit(p *Provider, t addr.IP, budget *int, res *SweepResult) bool {
	c := r.cloud
	if c.monitor != nil {
		if _, pending := c.monitor.PendingPermit(t); pending {
			return false
		}
	}
	res.DriftPermits++
	if *budget <= 0 {
		res.Deferred++
		return true
	}
	*budget--
	tenant := ""
	if ep, ok := p.addrs.getEndpoint(t); ok {
		tenant = ep.tenant
	} else if svc, ok := p.addrs.getService(t); ok {
		tenant = svc.tenant
	}
	unlock := p.lockShard(p.shardKeyFor(tenant, t))
	p.Permits.Drop(t)
	unlock()
	c.convBumpTarget(p, t)
	res.Repaired++
	c.traceEvent(obs.Reconcile, tenant, 0, t, "repaired",
		"surface=permit entries=0",
		obs.Chain("reconcile:permit:"+t.String(), "drift:undeclared-list"))
	return true
}

// sweepPermits is the full sweep over one region scope's permit
// surface: every declared target diffed, every undeclared installed
// list dropped.
func (r *Reconciler) sweepPermits(p *Provider, region string, st *intent.State, budget *int, res *SweepResult) {
	c := r.cloud
	// Declared targets owned by this provider and scope.
	declared := make([]addr.IP, 0, len(st.Permits))
	for t := range st.Permits {
		if owner, ok := c.blockOwner(t); ok && owner == p && p.regionOf(t) == region {
			declared = append(declared, t)
		}
	}
	sortIPs(declared)
	for _, t := range declared {
		res.Scanned++
		r.checkDeclaredPermit(p, t, st.Permits[t], budget, res)
	}
	// Undeclared lists still installed in the engine.
	for _, t := range p.Permits.Targets() {
		if p.regionOf(t) != region {
			continue
		}
		if _, ok := st.Permits[t]; ok {
			continue
		}
		res.Scanned++
		r.checkUndeclaredPermit(p, t, budget, res)
	}
}

// checkBindService converges one declared service's balancer
// membership: missing backends re-bound, weights corrected, undeclared
// backends unbound. Health bits are runtime state owned by the fault
// monitor and are left alone. Reports whether divergence was found.
func (r *Reconciler) checkBindService(p *Provider, sip addr.IP, want *intent.Service, budget *int, res *SweepResult) bool {
	c := r.cloud
	live, ok := p.addrs.getService(sip)
	if !ok {
		return false // released since the view was taken
	}
	actual := make(map[addr.IP]int)
	for _, be := range live.balancer.Backends() {
		actual[be.EIP] = be.Weight
	}
	type fix struct {
		eip    addr.IP
		weight int // 0 = unbind
		cause  string
	}
	var fixes []fix
	seen := make(map[addr.IP]bool, len(want.Binds))
	for _, b := range want.Binds {
		seen[b.EIP] = true
		w := b.Weight
		if w < 1 {
			w = 1
		}
		cur, bound := actual[b.EIP]
		switch {
		case !bound:
			fixes = append(fixes, fix{b.EIP, w, "drift:missing-backend"})
		case cur != w:
			fixes = append(fixes, fix{b.EIP, w, "drift:weight-mismatch"})
		}
	}
	for _, be := range sortedBackends(live.balancer) {
		if !seen[be.EIP] {
			fixes = append(fixes, fix{be.EIP, 0, "drift:undeclared-backend"})
		}
	}
	if len(fixes) == 0 {
		return false
	}
	res.DriftBinds += len(fixes)
	for _, f := range fixes {
		if *budget <= 0 {
			res.Deferred++
			continue
		}
		*budget--
		unlock := p.lockShard(p.regionShardKey(want.Tenant, ""))
		if f.weight > 0 {
			live.balancer.Bind(f.eip, f.weight)
		} else {
			live.balancer.Unbind(f.eip)
		}
		unlock()
		c.conv.bump(sipScope(p.Name))
		res.Repaired++
		c.traceEvent(obs.Reconcile, want.Tenant, f.eip, sip, "repaired",
			fmt.Sprintf("surface=bind weight=%d", f.weight),
			obs.Chain("reconcile:bind:"+sip.String(), f.cause))
	}
	return true
}

// sweepBinds is the full sweep over one provider's bind surface.
func (r *Reconciler) sweepBinds(p *Provider, st *intent.State, budget *int, res *SweepResult) {
	declared := make([]addr.IP, 0, len(st.Services))
	for sip, svc := range st.Services {
		if svc.Provider == p.Name {
			declared = append(declared, sip)
		}
	}
	sortIPs(declared)
	for _, sip := range declared {
		res.Scanned++
		r.checkBindService(p, sip, st.Services[sip], budget, res)
	}
}

// checkQuota converges one declared (tenant, region) egress quota
// against the live limiter. Reports whether divergence was found.
func (r *Reconciler) checkQuota(p *Provider, tenant, reg string, want float64, budget *int, res *SweepResult) bool {
	c := r.cloud
	var got float64
	if tq, live := p.quotaOf(tenant, reg); live {
		tq.mu.Lock()
		got = tq.quota
		tq.mu.Unlock()
	}
	if got == want {
		return false
	}
	res.DriftQuotas++
	if *budget <= 0 {
		res.Deferred++
		return true
	}
	*budget--
	unlock := p.lockShard(p.regionShardKey(tenant, reg))
	err := p.setQoS(tenant, reg, want)
	unlock()
	if err != nil {
		res.Deferred++
		return true
	}
	c.conv.bump(polScope(p.Name))
	res.Repaired++
	c.traceEvent(obs.Reconcile, tenant, 0, 0, "repaired",
		fmt.Sprintf("surface=qos region=%s bps=%g", reg, want),
		obs.Chain("reconcile:qos:"+p.Name+"/"+reg, "drift:quota-mismatch"))
	return true
}

// sweepQuotas is the full sweep over one region scope's quota surface.
func (r *Reconciler) sweepQuotas(p *Provider, region string, st *intent.State, budget *int, res *SweepResult) {
	for _, key := range sortedKeys(st.Quotas) {
		prov, tenant, reg, ok := splitQuotaKey(key)
		if !ok || prov != p.Name || reg != region {
			continue
		}
		res.Scanned++
		r.checkQuota(p, tenant, reg, st.Quotas[key], budget, res)
	}
}

// aeIndex partitions one declared view into K anti-entropy buckets per
// surface. Built once per published view (the log's COW view pointer is
// the identity): in steady state — including drift storms, which never
// touch declared state — consecutive sweeps reuse it, so the 1/K slice
// really is 1/K work, not an O(world) rebucketing per sweep.
type aeIndex struct {
	st      *intent.State
	k       int
	permits [][]addr.IP
	binds   [][]addr.IP
	quotas  [][]string
}

func (r *Reconciler) indexFor(st *intent.State, k int) *aeIndex {
	r.aeMu.Lock()
	defer r.aeMu.Unlock()
	if r.aeIdx != nil && r.aeIdx.st == st && r.aeIdx.k == k {
		return r.aeIdx
	}
	idx := &aeIndex{
		st: st, k: k,
		permits: make([][]addr.IP, k),
		binds:   make([][]addr.IP, k),
		quotas:  make([][]string, k),
	}
	for t := range st.Permits {
		b := int(uint32(t) % uint32(k))
		idx.permits[b] = append(idx.permits[b], t)
	}
	for _, bkt := range idx.permits {
		sortIPs(bkt)
	}
	for s := range st.Services {
		b := int(uint32(s) % uint32(k))
		idx.binds[b] = append(idx.binds[b], s)
	}
	for _, bkt := range idx.binds {
		sortIPs(bkt)
	}
	for key := range st.Quotas {
		b := bucketString(key, k)
		idx.quotas[b] = append(idx.quotas[b], key)
	}
	for _, bkt := range idx.quotas {
		sortStrings(bkt)
	}
	r.aeIdx = idx
	return idx
}

// bucketString is FNV-1a mod k.
func bucketString(s string, k int) int {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return int(h % uint32(k))
}

// incrementalSweep is one dirty + anti-entropy sweep across every
// provider. Dirty sets are consumed before the view is taken: a
// mutation recorded in between is covered by this view and marked for
// the next sweep — at worst one redundant check, never a lost one.
func (r *Reconciler) incrementalSweep(budget *int, res *SweepResult) {
	c := r.cloud
	k := r.cfg.AntiEntropyK
	phase := int(r.sweeps.Load() % uint64(k))
	provs := c.pidx.Load().list
	dirt := make([]*convDirty, len(provs))
	for i, p := range provs {
		dirt[i] = c.conv.take(p.Name)
	}
	st := c.rec.View()
	idx := r.indexFor(st, k)
	for i, p := range provs {
		r.sweepDirty(p, dirt[i], st, budget, res)
		r.sweepAntiEntropy(p, st, idx, phase, budget, res)
	}
}

// sweepDirty checks every target the convergence tracker marked for
// this provider since the last sweep.
func (r *Reconciler) sweepDirty(p *Provider, d *convDirty, st *intent.State, budget *int, res *SweepResult) {
	if d == nil {
		return
	}
	targets := make([]addr.IP, 0, len(d.permits))
	for t := range d.permits {
		targets = append(targets, t)
	}
	sortIPs(targets)
	for _, t := range targets {
		res.Scanned++
		found := false
		if pl, ok := st.Permits[t]; ok {
			found = r.checkDeclaredPermit(p, t, pl, budget, res)
		} else if _, installed := p.Permits.List(t); installed {
			found = r.checkUndeclaredPermit(p, t, budget, res)
		}
		if found {
			res.DirtyHits++
		}
	}
	sips := make([]addr.IP, 0, len(d.binds))
	for s := range d.binds {
		sips = append(sips, s)
	}
	sortIPs(sips)
	for _, sip := range sips {
		want, ok := st.Services[sip]
		if !ok {
			continue // released: the live service went with it
		}
		res.Scanned++
		if r.checkBindService(p, sip, want, budget, res) {
			res.DirtyHits++
		}
	}
	keys := make([]string, 0, len(d.quotas))
	for k := range d.quotas {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, key := range keys {
		want, ok := st.Quotas[key]
		if !ok {
			continue
		}
		prov, tenant, reg, ok := splitQuotaKey(key)
		if !ok || prov != p.Name {
			continue
		}
		res.Scanned++
		if r.checkQuota(p, tenant, reg, want, budget, res) {
			res.DirtyHits++
		}
	}
}

// sweepAntiEntropy checks this sweep's 1/K rotation slice: the phase's
// declared buckets (drift on declared targets) and the phase's permit
// engine stripes (installed-but-undeclared lists). Every declared
// target and every installed stripe is visited once per K sweeps, which
// is the detection-lag bound for drift that never marked a dirty set.
func (r *Reconciler) sweepAntiEntropy(p *Provider, st *intent.State, idx *aeIndex, phase int, budget *int, res *SweepResult) {
	c := r.cloud
	for _, t := range idx.permits[phase] {
		if owner, ok := c.blockOwner(t); !ok || owner != p {
			continue
		}
		res.Scanned++
		res.AntiEntropyScanned++
		r.checkDeclaredPermit(p, t, st.Permits[t], budget, res)
	}
	for _, t := range p.Permits.TargetsOf(phase, idx.k) {
		if _, ok := st.Permits[t]; ok {
			continue
		}
		res.Scanned++
		res.AntiEntropyScanned++
		r.checkUndeclaredPermit(p, t, budget, res)
	}
	for _, sip := range idx.binds[phase] {
		want := st.Services[sip]
		if want.Provider != p.Name {
			continue
		}
		res.Scanned++
		res.AntiEntropyScanned++
		r.checkBindService(p, sip, want, budget, res)
	}
	for _, key := range idx.quotas[phase] {
		prov, tenant, reg, ok := splitQuotaKey(key)
		if !ok || prov != p.Name {
			continue
		}
		res.Scanned++
		res.AntiEntropyScanned++
		r.checkQuota(p, tenant, reg, st.Quotas[key], budget, res)
	}
}

// splitQuotaKey parses intent.QuotaKey's provider|tenant|region form.
func splitQuotaKey(key string) (prov, tenant, region string, ok bool) {
	i := indexByte(key, '|')
	if i < 0 {
		return "", "", "", false
	}
	j := indexByte(key[i+1:], '|')
	if j < 0 {
		return "", "", "", false
	}
	return key[:i], key[i+1 : i+1+j], key[i+1+j+1:], true
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// Start launches the background sweep. In full-scan mode (K == 0) it
// runs one goroutine per (provider, region) scope — plus each
// provider's SIP plane — each sweeping its own slice every Interval.
// In incremental mode the dirty sets are global consumables, so one
// goroutine runs whole incremental sweeps instead. Idempotent.
func (r *Reconciler) Start() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.running {
		return
	}
	r.running = true
	r.stop = make(chan struct{})
	if r.cfg.AntiEntropyK > 0 {
		r.done.Add(1)
		go r.loopIncremental()
		return
	}
	for _, p := range r.cloud.pidx.Load().list {
		for _, region := range p.sweepScopes() {
			p, region := p, region
			r.done.Add(1)
			go r.loop(p, region)
		}
	}
}

// loop is one scope's periodic full sweep.
func (r *Reconciler) loop(p *Provider, region string) {
	defer r.done.Done()
	t := time.NewTicker(r.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case start := <-t.C:
			release := func() {}
			if r.cfg.Gate != nil {
				release = r.cfg.Gate()
			}
			st := r.cloud.rec.View()
			budget := r.cfg.RepairBudget
			var res SweepResult
			r.sweepScope(p, region, st, &budget, &res)
			release()
			r.finishSweep(start, &res)
		}
	}
}

// loopIncremental is the background incremental sweep.
func (r *Reconciler) loopIncremental() {
	defer r.done.Done()
	t := time.NewTicker(r.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case start := <-t.C:
			release := func() {}
			if r.cfg.Gate != nil {
				release = r.cfg.Gate()
			}
			budget := r.cfg.RepairBudget
			var res SweepResult
			r.incrementalSweep(&budget, &res)
			release()
			r.finishSweep(start, &res)
		}
	}
}

// Stop halts the background goroutines and waits for them to exit.
// Idempotent; RunSweep remains usable afterwards.
func (r *Reconciler) Stop() {
	r.mu.Lock()
	if !r.running {
		r.mu.Unlock()
		return
	}
	r.running = false
	close(r.stop)
	r.mu.Unlock()
	r.done.Wait()
}

// ReconcileStatus is the GET /v1/reconcile payload.
type ReconcileStatus struct {
	Enabled        bool    `json:"enabled"`
	Running        bool    `json:"running"`
	IntervalMillis float64 `json:"interval_ms"`
	RepairBudget   int     `json:"repair_budget"`
	// AntiEntropyK is 0 for the full-scan sweep, K for the incremental
	// sweep with a 1/K anti-entropy rotation.
	AntiEntropyK int    `json:"anti_entropy_k"`
	Sweeps       uint64 `json:"sweeps"`
	Repairs      uint64 `json:"repairs"`
	DriftPermits uint64 `json:"drift_permits"`
	DriftBinds   uint64 `json:"drift_binds"`
	DriftQuotas  uint64 `json:"drift_quotas"`
	// Scanned / DirtyHits / AntiEntropyScanned expose sweep cost live:
	// how many targets sweeps examined, how many dirty-set checks found
	// real drift, and how much of the scanning was rotation coverage.
	Scanned            uint64 `json:"scanned"`
	DirtyHits          uint64 `json:"dirty_hits"`
	AntiEntropyScanned uint64 `json:"anti_entropy_scanned"`
	QueueDepth         int64  `json:"queue_depth"`
	// LagSeconds is wall-clock time since the last completed sweep
	// (0 before the first).
	LagSeconds        float64 `json:"lag_seconds"`
	LastSweepMillis   float64 `json:"last_sweep_ms"`
	LastSweepUnixNano int64   `json:"last_sweep_unix_ns,omitempty"`
}

// Status snapshots the loop's counters.
func (r *Reconciler) Status() ReconcileStatus {
	if r == nil {
		return ReconcileStatus{}
	}
	r.mu.Lock()
	running := r.running
	r.mu.Unlock()
	s := ReconcileStatus{
		Enabled:            true,
		Running:            running,
		IntervalMillis:     float64(r.cfg.Interval) / float64(time.Millisecond),
		RepairBudget:       r.cfg.RepairBudget,
		AntiEntropyK:       r.cfg.AntiEntropyK,
		Sweeps:             r.sweeps.Load(),
		Repairs:            r.repairs.Load(),
		DriftPermits:       r.driftPermits.Load(),
		DriftBinds:         r.driftBinds.Load(),
		DriftQuotas:        r.driftQuotas.Load(),
		Scanned:            r.scanned.Load(),
		DirtyHits:          r.dirtyHits.Load(),
		AntiEntropyScanned: r.antiScanned.Load(),
		QueueDepth:         r.queueDepth.Load(),
		LastSweepMillis:    float64(r.lastSweepDur.Load()) / float64(time.Millisecond),
		LastSweepUnixNano:  r.lastSweepNs.Load(),
	}
	if last := r.lastSweepNs.Load(); last != 0 {
		s.LagSeconds = time.Since(time.Unix(0, last)).Seconds()
	}
	return s
}
