// Desired-state reconciliation: the convergence loop that keeps the
// simulated dataplane (permit engines, SIP balancers, QoS limiters)
// equal to the declared intent in the durable store. Declared state is
// what the journal replays (internal/intent.State); the dataplane can
// drift from it through faults, lost updates, or the chaos hooks in
// intent.go. Each sweep clones the declared state under the log's
// lock, releases it, and then diffs and repairs under ordinary shard
// locks — never holding the log lock and a shard lock together, which
// keeps the reconciler out of the wrappers' shard-lock -> log-lock
// order.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"declnet/internal/addr"
	"declnet/internal/intent"
	"declnet/internal/metrics"
	"declnet/internal/obs"
)

// ReconcilerConfig tunes the convergence loop.
type ReconcilerConfig struct {
	// Interval is the wall-clock sweep period for Start's per-region
	// goroutines (default 1s).
	Interval time.Duration
	// RepairBudget caps repairs per sweep; divergence beyond it stays
	// queued for the next sweep (reported as queue depth). Default 256.
	RepairBudget int
	// Gate, when set, brackets each background sweep: it acquires
	// whatever external serialization the embedder needs (the daemon
	// passes the API server's world read lock, which excludes engine
	// advancement) and returns the release. RunSweep itself never calls
	// it — synchronous callers own their serialization.
	Gate func() func()
}

// SweepResult summarizes one reconciliation sweep.
type SweepResult struct {
	DriftPermits int `json:"drift_permits"`
	DriftBinds   int `json:"drift_binds"`
	DriftQuotas  int `json:"drift_quotas"`
	Repaired     int `json:"repaired"`
	// Deferred counts divergences found but left for the next sweep
	// (repair budget exhausted or enforcement point unreachable).
	Deferred int `json:"deferred"`
}

// Reconciler owns the convergence loop over one Cloud. Create it with
// EnableReconciler; drive it synchronously with RunSweep (tests, the
// chaos soak) or in the background with Start (the daemon).
type Reconciler struct {
	cloud *Cloud
	cfg   ReconcilerConfig

	sweeps       atomic.Uint64
	repairs      atomic.Uint64
	driftPermits atomic.Uint64
	driftBinds   atomic.Uint64
	driftQuotas  atomic.Uint64
	queueDepth   atomic.Int64
	lastSweepNs  atomic.Int64 // wall clock, UnixNano; 0 = never
	lastSweepDur atomic.Int64 // nanoseconds

	mu      sync.Mutex
	running bool
	stop    chan struct{}
	done    sync.WaitGroup
}

// EnableReconciler builds the convergence loop. Requires EnableIntent
// first — without a declared state there is nothing to converge to.
func (c *Cloud) EnableReconciler(cfg ReconcilerConfig) (*Reconciler, error) {
	if c.rec == nil {
		return nil, fmt.Errorf("core: EnableReconciler requires EnableIntent first")
	}
	if c.reconciler != nil {
		return c.reconciler, nil
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.RepairBudget <= 0 {
		cfg.RepairBudget = 256
	}
	r := &Reconciler{cloud: c, cfg: cfg}
	c.reconciler = r
	if c.reg != nil {
		c.reg.GaugeFunc("declnet_reconcile_sweeps_total",
			"Reconciliation sweeps completed.", func() float64 { return float64(r.sweeps.Load()) })
		c.reg.GaugeFunc("declnet_reconcile_repairs_total",
			"Dataplane divergences repaired.", func() float64 { return float64(r.repairs.Load()) })
		c.reg.GaugeFunc("declnet_reconcile_drift_total",
			"Divergences found, by surface.", func() float64 { return float64(r.driftPermits.Load()) },
			metrics.L("surface", "permit"))
		c.reg.GaugeFunc("declnet_reconcile_drift_total",
			"Divergences found, by surface.", func() float64 { return float64(r.driftBinds.Load()) },
			metrics.L("surface", "bind"))
		c.reg.GaugeFunc("declnet_reconcile_drift_total",
			"Divergences found, by surface.", func() float64 { return float64(r.driftQuotas.Load()) },
			metrics.L("surface", "qos"))
		c.reg.GaugeFunc("declnet_reconcile_queue_depth",
			"Divergences deferred to the next sweep.", func() float64 { return float64(r.queueDepth.Load()) })
		c.reg.GaugeFunc("declnet_reconcile_lag_seconds",
			"Wall-clock seconds since the last completed sweep.", func() float64 {
				last := r.lastSweepNs.Load()
				if last == 0 {
					return 0
				}
				return time.Since(time.Unix(0, last)).Seconds()
			})
	}
	return r, nil
}

// Reconciler returns the convergence loop, or nil before
// EnableReconciler.
func (c *Cloud) Reconciler() *Reconciler { return c.reconciler }

// RunSweep performs one full deterministic sweep: every provider, every
// region (plus each provider's region-less SIP plane), permits then
// binds then quotas. Safe to call concurrently with API verbs — repairs
// take the ordinary shard locks — but callers that also advance the
// simulation engine must serialize that themselves (see
// ReconcilerConfig.Gate).
func (r *Reconciler) RunSweep() SweepResult {
	start := time.Now()
	st := r.cloud.rec.State()
	budget := r.cfg.RepairBudget
	var res SweepResult
	for _, p := range r.cloud.pidx.Load().list {
		for _, region := range append(p.Regions(), "") {
			r.sweepScope(p, region, st, &budget, &res)
		}
	}
	r.finishSweep(start, &res)
	return res
}

// finishSweep folds one sweep's result into the running counters.
func (r *Reconciler) finishSweep(start time.Time, res *SweepResult) {
	r.sweeps.Add(1)
	r.repairs.Add(uint64(res.Repaired))
	r.driftPermits.Add(uint64(res.DriftPermits))
	r.driftBinds.Add(uint64(res.DriftBinds))
	r.driftQuotas.Add(uint64(res.DriftQuotas))
	r.queueDepth.Store(int64(res.Deferred))
	r.lastSweepNs.Store(start.UnixNano())
	r.lastSweepDur.Store(int64(time.Since(start)))
}

// sweepScope reconciles one (provider, region) scope. region "" is the
// provider's SIP plane: service addresses, their bindings, and SIP
// permit lists.
func (r *Reconciler) sweepScope(p *Provider, region string, st *intent.State, budget *int, res *SweepResult) {
	r.sweepPermits(p, region, st, budget, res)
	if region == "" {
		r.sweepBinds(p, st, budget, res)
	}
	r.sweepQuotas(p, region, st, budget, res)
}

// entriesEqual compares two permit entry sets canonically (sorted by
// address then length).
func entriesEqual(a, b []addr.Prefix) bool {
	if len(a) != len(b) {
		return false
	}
	a, b = sortedEntries(a), sortedEntries(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortedEntries(in []addr.Prefix) []addr.Prefix {
	out := append([]addr.Prefix(nil), in...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && (out[j].Addr < out[j-1].Addr ||
			(out[j].Addr == out[j-1].Addr && out[j].Len < out[j-1].Len)); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// sweepPermits converges the provider's permit engine to the declared
// lists for targets in this region scope: missing or mismatched lists
// are re-installed, undeclared lists dropped. Targets with a deferred
// (fault-pending) permit update are skipped — the fault monitor owns
// them until they land or time out.
func (r *Reconciler) sweepPermits(p *Provider, region string, st *intent.State, budget *int, res *SweepResult) {
	c := r.cloud
	// Declared targets owned by this provider and scope.
	declared := make([]addr.IP, 0, len(st.Permits))
	for t := range st.Permits {
		if owner, ok := c.blockOwner(t); ok && owner == p && p.regionOf(t) == region {
			declared = append(declared, t)
		}
	}
	sortIPs(declared)
	for _, t := range declared {
		if c.monitor != nil {
			if _, pending := c.monitor.PendingPermit(t); pending {
				continue
			}
		}
		pl := st.Permits[t]
		actual := p.Permits.EntriesOf(t)
		_, hasList := p.Permits.List(t)
		if hasList && entriesEqual(pl.Entries, actual) {
			continue
		}
		res.DriftPermits++
		cause := "drift:entries-mismatch"
		if !hasList {
			cause = "drift:missing-list"
		}
		if *budget <= 0 {
			res.Deferred++
			continue
		}
		// Respect fault-deferral semantics: an endpoint whose enforcement
		// point is unreachable cannot take the repair now.
		if c.monitor != nil {
			if ep, ok := p.addrs.getEndpoint(t); ok && !c.monitor.Inj.Reachable(ep.node) {
				res.Deferred++
				continue
			}
		}
		*budget--
		unlock := p.lockShard(p.shardKeyFor(pl.Tenant, t))
		// Re-check liveness under the lock: the target may have been
		// released since the declared state was cloned.
		if _, ok := p.addrs.getEndpoint(t); ok {
			p.Permits.Set(t, pl.Entries)
		} else if _, ok := p.addrs.getService(t); ok {
			p.Permits.Set(t, pl.Entries)
		} else {
			unlock()
			continue
		}
		unlock()
		res.Repaired++
		c.traceEvent(obs.Reconcile, pl.Tenant, 0, t, "repaired",
			fmt.Sprintf("surface=permit entries=%d", len(pl.Entries)),
			obs.Chain("reconcile:permit:"+t.String(), cause))
	}
	// Undeclared lists still installed in the engine.
	for _, t := range p.Permits.Targets() {
		if p.regionOf(t) != region {
			continue
		}
		if _, ok := st.Permits[t]; ok {
			continue
		}
		if c.monitor != nil {
			if _, pending := c.monitor.PendingPermit(t); pending {
				continue
			}
		}
		res.DriftPermits++
		if *budget <= 0 {
			res.Deferred++
			continue
		}
		*budget--
		tenant := ""
		if ep, ok := p.addrs.getEndpoint(t); ok {
			tenant = ep.tenant
		} else if svc, ok := p.addrs.getService(t); ok {
			tenant = svc.tenant
		}
		unlock := p.lockShard(p.shardKeyFor(tenant, t))
		p.Permits.Drop(t)
		unlock()
		res.Repaired++
		c.traceEvent(obs.Reconcile, tenant, 0, t, "repaired",
			"surface=permit entries=0",
			obs.Chain("reconcile:permit:"+t.String(), "drift:undeclared-list"))
	}
}

// sweepBinds converges every declared service's balancer membership:
// missing backends re-bound, weights corrected, undeclared backends
// unbound. Health bits are runtime state owned by the fault monitor and
// are left alone.
func (r *Reconciler) sweepBinds(p *Provider, st *intent.State, budget *int, res *SweepResult) {
	c := r.cloud
	declared := make([]addr.IP, 0, len(st.Services))
	for sip, svc := range st.Services {
		if svc.Provider == p.Name {
			declared = append(declared, sip)
		}
	}
	sortIPs(declared)
	for _, sip := range declared {
		want := st.Services[sip]
		live, ok := p.addrs.getService(sip)
		if !ok {
			continue // released since the clone
		}
		actual := make(map[addr.IP]int)
		for _, be := range live.balancer.Backends() {
			actual[be.EIP] = be.Weight
		}
		type fix struct {
			eip    addr.IP
			weight int // 0 = unbind
			cause  string
		}
		var fixes []fix
		seen := make(map[addr.IP]bool, len(want.Binds))
		for _, b := range want.Binds {
			seen[b.EIP] = true
			w := b.Weight
			if w < 1 {
				w = 1
			}
			cur, bound := actual[b.EIP]
			switch {
			case !bound:
				fixes = append(fixes, fix{b.EIP, w, "drift:missing-backend"})
			case cur != w:
				fixes = append(fixes, fix{b.EIP, w, "drift:weight-mismatch"})
			}
		}
		for _, be := range sortedBackends(live.balancer) {
			if !seen[be.EIP] {
				fixes = append(fixes, fix{be.EIP, 0, "drift:undeclared-backend"})
			}
		}
		if len(fixes) == 0 {
			continue
		}
		res.DriftBinds += len(fixes)
		for _, f := range fixes {
			if *budget <= 0 {
				res.Deferred++
				continue
			}
			*budget--
			unlock := p.lockShard(p.regionShardKey(want.Tenant, ""))
			if f.weight > 0 {
				live.balancer.Bind(f.eip, f.weight)
			} else {
				live.balancer.Unbind(f.eip)
			}
			unlock()
			res.Repaired++
			c.traceEvent(obs.Reconcile, want.Tenant, f.eip, sip, "repaired",
				fmt.Sprintf("surface=bind weight=%d", f.weight),
				obs.Chain("reconcile:bind:"+sip.String(), f.cause))
		}
	}
}

// sweepQuotas converges declared (tenant, region) egress quotas against
// the live limiters.
func (r *Reconciler) sweepQuotas(p *Provider, region string, st *intent.State, budget *int, res *SweepResult) {
	c := r.cloud
	for _, key := range sortedKeys(st.Quotas) {
		prov, tenant, reg, ok := splitQuotaKey(key)
		if !ok || prov != p.Name || reg != region {
			continue
		}
		want := st.Quotas[key]
		var got float64
		if tq, live := p.quotaOf(tenant, reg); live {
			tq.mu.Lock()
			got = tq.quota
			tq.mu.Unlock()
		}
		if got == want {
			continue
		}
		res.DriftQuotas++
		if *budget <= 0 {
			res.Deferred++
			continue
		}
		*budget--
		unlock := p.lockShard(p.regionShardKey(tenant, reg))
		err := p.setQoS(tenant, reg, want)
		unlock()
		if err != nil {
			res.Deferred++
			continue
		}
		res.Repaired++
		c.traceEvent(obs.Reconcile, tenant, 0, 0, "repaired",
			fmt.Sprintf("surface=qos region=%s bps=%g", reg, want),
			obs.Chain("reconcile:qos:"+prov+"/"+reg, "drift:quota-mismatch"))
	}
}

// splitQuotaKey parses intent.QuotaKey's provider|tenant|region form.
func splitQuotaKey(key string) (prov, tenant, region string, ok bool) {
	i := indexByte(key, '|')
	if i < 0 {
		return "", "", "", false
	}
	j := indexByte(key[i+1:], '|')
	if j < 0 {
		return "", "", "", false
	}
	return key[:i], key[i+1 : i+1+j], key[i+1+j+1:], true
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// Start launches one reconciler goroutine per (provider, region) —
// plus each provider's SIP plane — each sweeping its own scope every
// Interval. Scopes share the store clone per firing wave only
// incidentally; each goroutine clones independently, which keeps them
// free of cross-scope coordination. Idempotent.
func (r *Reconciler) Start() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.running {
		return
	}
	r.running = true
	r.stop = make(chan struct{})
	for _, p := range r.cloud.pidx.Load().list {
		for _, region := range append(p.Regions(), "") {
			p, region := p, region
			r.done.Add(1)
			go r.loop(p, region)
		}
	}
}

// loop is one scope's periodic sweep.
func (r *Reconciler) loop(p *Provider, region string) {
	defer r.done.Done()
	t := time.NewTicker(r.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case start := <-t.C:
			release := func() {}
			if r.cfg.Gate != nil {
				release = r.cfg.Gate()
			}
			st := r.cloud.rec.State()
			budget := r.cfg.RepairBudget
			var res SweepResult
			r.sweepScope(p, region, st, &budget, &res)
			release()
			r.finishSweep(start, &res)
		}
	}
}

// Stop halts the background goroutines and waits for them to exit.
// Idempotent; RunSweep remains usable afterwards.
func (r *Reconciler) Stop() {
	r.mu.Lock()
	if !r.running {
		r.mu.Unlock()
		return
	}
	r.running = false
	close(r.stop)
	r.mu.Unlock()
	r.done.Wait()
}

// ReconcileStatus is the GET /v1/reconcile payload.
type ReconcileStatus struct {
	Enabled        bool    `json:"enabled"`
	Running        bool    `json:"running"`
	IntervalMillis float64 `json:"interval_ms"`
	RepairBudget   int     `json:"repair_budget"`
	Sweeps         uint64  `json:"sweeps"`
	Repairs        uint64  `json:"repairs"`
	DriftPermits   uint64  `json:"drift_permits"`
	DriftBinds     uint64  `json:"drift_binds"`
	DriftQuotas    uint64  `json:"drift_quotas"`
	QueueDepth     int64   `json:"queue_depth"`
	// LagSeconds is wall-clock time since the last completed sweep
	// (0 before the first).
	LagSeconds        float64 `json:"lag_seconds"`
	LastSweepMillis   float64 `json:"last_sweep_ms"`
	LastSweepUnixNano int64   `json:"last_sweep_unix_ns,omitempty"`
}

// Status snapshots the loop's counters.
func (r *Reconciler) Status() ReconcileStatus {
	if r == nil {
		return ReconcileStatus{}
	}
	r.mu.Lock()
	running := r.running
	r.mu.Unlock()
	s := ReconcileStatus{
		Enabled:           true,
		Running:           running,
		IntervalMillis:    float64(r.cfg.Interval) / float64(time.Millisecond),
		RepairBudget:      r.cfg.RepairBudget,
		Sweeps:            r.sweeps.Load(),
		Repairs:           r.repairs.Load(),
		DriftPermits:      r.driftPermits.Load(),
		DriftBinds:        r.driftBinds.Load(),
		DriftQuotas:       r.driftQuotas.Load(),
		QueueDepth:        r.queueDepth.Load(),
		LastSweepMillis:   float64(r.lastSweepDur.Load()) / float64(time.Millisecond),
		LastSweepUnixNano: r.lastSweepNs.Load(),
	}
	if last := r.lastSweepNs.Load(); last != 0 {
		s.LagSeconds = time.Since(time.Unix(0, last)).Seconds()
	}
	return s
}
