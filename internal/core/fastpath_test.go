package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"declnet/internal/addr"
	"declnet/internal/fault"
	"declnet/internal/permit"
	"declnet/internal/qos"
	"declnet/internal/topo"
)

// TestPropertyPathCacheParity replays random fault/heal/connect schedules
// and asserts, after every step, that the scope-aware path cache answers
// byte-identically to an uncached Dijkstra over the live graph: the same
// link-ID sequence on success, the same error string on failure (negative
// caching included). The schedule mixes single-link and single-node
// faults (scoped or cross-cut epoch bumps), whole-region faults (batched
// bumps via the injector's coalescing window), and batched permit churn
// through ApplyBatch, so every invalidation path — scoped staleness,
// wholesale flush, and coalesced batch bumps — is exercised against the
// same oracle. Connects ride along so the admission and provider-of-addr
// caches churn under the same schedule. CI runs this under -race.
func TestPropertyPathCacheParity(t *testing.T) {
	var totalInvalidations uint64
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			c, w, pa, pb, _ := fig1Cloud(t)
			inj := fault.NewInjector(c.Eng, c.G, c.Net)

			// Connect traffic: one client in cloud A, a SIP with two
			// backends in cloud B.
			client, err := pa.RequestEIP("acme", topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1))
			if err != nil {
				t.Fatal(err)
			}
			sip, err := pb.RequestSIP("acme")
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range []topo.NodeID{
				topo.HostID(w.CloudB, w.RegionsB[0], "az1", 1),
				topo.HostID(w.CloudB, w.RegionsB[0], "az2", 1),
			} {
				be, err := pb.RequestEIP("acme", n)
				if err != nil {
					t.Fatal(err)
				}
				if err := pb.Bind("acme", be, sip, 1); err != nil {
					t.Fatal(err)
				}
			}
			if err := pb.SetPermitList("acme", sip, []permit.Entry{addr.NewPrefix(client, 32)}); err != nil {
				t.Fatal(err)
			}

			// Fault targets: every link pair, plus fabric/core nodes (never
			// the endpoint hosts, so connects stay meaningful on most steps).
			var pairs []string
			for _, l := range c.G.Links() {
				if strings.HasSuffix(l.ID, ":fwd") {
					pairs = append(pairs, strings.TrimSuffix(l.ID, ":fwd"))
				}
			}
			var mids []topo.NodeID
			for _, n := range c.G.Nodes() {
				if n.Kind == topo.ZoneFabric || n.Kind == topo.RegionRouter {
					mids = append(mids, n.ID)
				}
			}
			if len(pairs) == 0 || len(mids) == 0 {
				t.Fatal("no fault targets in Fig1 graph")
			}
			var regions [][2]string
			for _, r := range w.RegionsA {
				regions = append(regions, [2]string{w.CloudA, r})
			}
			for _, r := range w.RegionsB {
				regions = append(regions, [2]string{w.CloudB, r})
			}

			// Query set: cross-cloud, intra-cloud, self, and an unknown node
			// (the unknown-destination error is negatively cached too).
			hostA := topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1)
			hostA2 := topo.HostID(w.CloudA, w.RegionsA[1], "az1", 1)
			hostB := topo.HostID(w.CloudB, w.RegionsB[0], "az1", 1)
			hostB2 := topo.HostID(w.CloudB, w.RegionsB[1], "az2", 1)
			queries := []struct{ src, dst topo.NodeID }{
				{hostA, hostB}, {hostB, hostA}, {hostA, hostA2},
				{hostB2, hostA2}, {hostA, hostA}, {hostA, "ghost"},
			}
			policies := []qos.PotatoPolicy{qos.HotPotato, qos.ColdPotato}

			check := func(step int) {
				t.Helper()
				for _, p := range policies {
					for _, q := range queries {
						got, gerr := c.Router().PathFor(p, q.src, q.dst)
						want, werr := qos.PathFor(c.G, p, q.src, q.dst)
						if (gerr == nil) != (werr == nil) ||
							(gerr != nil && gerr.Error() != werr.Error()) {
							t.Fatalf("step %d %v %s->%s: cached err %v, uncached err %v",
								step, p, q.src, q.dst, gerr, werr)
						}
						if len(got) != len(want) {
							t.Fatalf("step %d %v %s->%s: cached %d hops, uncached %d",
								step, p, q.src, q.dst, len(got), len(want))
						}
						for i := range got {
							if got[i].ID != want[i].ID {
								t.Fatalf("step %d %v %s->%s hop %d: cached %s, uncached %s",
									step, p, q.src, q.dst, i, got[i].ID, want[i].ID)
							}
						}
					}
				}
			}

			check(0)
			const steps = 50
			for i := 1; i <= steps; i++ {
				// Restore can fail when the target is not currently faulted;
				// that is part of the random schedule, not an error.
				switch rng.Intn(8) {
				case 0, 1:
					inj.FailLink(pairs[rng.Intn(len(pairs))])
				case 2, 3:
					inj.RestoreLink(pairs[rng.Intn(len(pairs))])
				case 4:
					inj.FailNode(mids[rng.Intn(len(mids))])
				case 5:
					inj.RestoreNode(mids[rng.Intn(len(mids))])
				case 6:
					// Whole-region faults run inside the injector's batch
					// window: many link transitions, one coalesced bump.
					reg := regions[rng.Intn(len(regions))]
					inj.FailRegion(reg[0], reg[1])
				case 7:
					reg := regions[rng.Intn(len(regions))]
					inj.RestoreRegion(reg[0], reg[1])
				}
				// Batched permit churn on roughly a third of the steps: the
				// verdict memo must track coalesced version bumps too.
				if rng.Intn(3) == 0 {
					entry := addr.NewPrefix(addr.IP(0x0a000000+uint32(i)), 32)
					if _, err := c.ApplyBatch("acme", []BatchOp{
						{Op: "permit", Target: sip.String(), Entries: []permit.Entry{entry}},
						{Op: "revoke", Target: sip.String(), Entries: []permit.Entry{entry}},
					}); err != nil {
						t.Fatalf("step %d: batched permit churn: %v", i, err)
					}
				}
				if cn, err := c.Connect("acme", client, sip, ConnectOpts{SizeBytes: 1e3}); err == nil {
					cn.Close()
				}
				check(i)
			}
			if c.Router().Hits() == 0 {
				t.Error("parity run never hit the cache")
			}
			if c.Router().Flushes() == 0 {
				t.Error("parity run never flushed the cache despite restores")
			}
			totalInvalidations += c.Router().Invalidations()
		})
	}
	// Across all seeds, some entries must have gone scoped-stale (a scope
	// their path crosses mutated without a wholesale flush) — otherwise
	// the scoped invalidation path was never exercised.
	if totalInvalidations == 0 {
		t.Error("no scoped invalidations across any seed")
	}
}
