package core

import (
	"math"
	"testing"
	"time"

	"declnet/internal/addr"
	"declnet/internal/meter"
	"declnet/internal/permit"
	"declnet/internal/topo"
)

func TestMeteringEndToEnd(t *testing.T) {
	c, w, pa, pb, _ := fig1Cloud(t)
	m := meter.New()
	c.SetBiller(m)

	src, _ := pa.RequestEIP("acme", topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1))
	dst, _ := pb.RequestEIP("acme", topo.HostID(w.CloudB, w.RegionsB[0], "az1", 1))
	sip, _ := pb.RequestSIP("acme")
	pb.Bind("acme", dst, sip, 1)
	pb.SetPermitList("acme", sip, []permit.Entry{addr.NewPrefix(src, 32)})
	pa.SetQoS("acme", w.RegionsA[0], 2e9)

	// Transfer 10 MB reserved, then 5 MB best-effort.
	done := 0
	if _, err := c.Connect("acme", src, sip, ConnectOpts{SizeBytes: 10e6,
		OnDone: func(time.Duration) { done++ }}); err != nil {
		t.Fatal(err)
	}
	c.Eng.Run()
	if _, err := c.Connect("acme", src, sip, ConnectOpts{SizeBytes: 5e6, Class: BestEffort,
		OnDone: func(time.Duration) { done++ }}); err != nil {
		t.Fatal(err)
	}
	c.Eng.Run()
	if done != 2 {
		t.Fatalf("transfers completed = %d", done)
	}

	u := m.Snapshot("acme", c.Eng.Now())
	if math.Abs(u.ReservedBytes-10e6) > 1e3 {
		t.Fatalf("ReservedBytes = %v, want 10e6", u.ReservedBytes)
	}
	if math.Abs(u.BestEffortBytes-5e6) > 1e3 {
		t.Fatalf("BestEffortBytes = %v, want 5e6", u.BestEffortBytes)
	}
	if u.EIPSeconds <= 0 || u.SIPSeconds <= 0 {
		t.Fatalf("address-hours not integrated: %v/%v", u.EIPSeconds, u.SIPSeconds)
	}
	if u.PermitUpdates != 1 {
		t.Fatalf("PermitUpdates = %d, want 1", u.PermitUpdates)
	}
	if u.QuotaGbpsSeconds <= 0 {
		t.Fatalf("QuotaGbpsSeconds = %v", u.QuotaGbpsSeconds)
	}
	// Invoices price it without error and premium beats standard on
	// reserved-heavy usage at these volumes? (Not asserted directionally
	// — just that pricing is finite and positive.)
	inv := meter.Price("acme", u, meter.StandardTier())
	if inv.Total <= 0 {
		t.Fatalf("invoice total = %v", inv.Total)
	}
}

func TestMeteringCloseBillsOnce(t *testing.T) {
	c, w, pa, pb, _ := fig1Cloud(t)
	m := meter.New()
	c.SetBiller(m)
	src, _ := pa.RequestEIP("acme", topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1))
	dst, _ := pb.RequestEIP("acme", topo.HostID(w.CloudB, w.RegionsB[0], "az1", 1))
	pb.SetPermitList("acme", dst, []permit.Entry{addr.NewPrefix(src, 32)})
	conn, err := c.Connect("acme", src, dst, ConnectOpts{SizeBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	c.Eng.RunUntil(c.Eng.Now() + time.Second)
	conn.Close()
	first := m.Snapshot("acme", c.Eng.Now()).ReservedBytes
	if first <= 0 {
		t.Fatal("persistent flow bytes not billed at close")
	}
	conn.Close() // double close must not double-bill
	if again := m.Snapshot("acme", c.Eng.Now()).ReservedBytes; again != first {
		t.Fatalf("double close double-billed: %v -> %v", first, again)
	}
}
