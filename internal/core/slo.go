// SLO plane wiring: attaching a slo.Plane to a Cloud, tenant-lifetime
// refcounting for eviction, and the breach → decision-trace bridge.
//
// The plane itself lives in internal/slo and is verb-agnostic; this
// file is the only place core knows about it. EnableSLO mirrors
// EnableObservability: it runs under the shard set's global gate so
// every provider sees the plane pointer before the next verb, and it
// hooks the plane's breach callback into the decision trace so a
// noisy-neighbor verdict shows up in `declnetctl explain` output with
// a full cause chain.
package core

import (
	"declnet/internal/obs"
	"declnet/internal/slo"
)

// EnableSLO attaches (or detaches, with nil) the latency-accounting
// plane. Instrumentation is nil-safe throughout, so a Cloud without a
// plane pays only a nil check per verb.
func (c *Cloud) EnableSLO(p *slo.Plane) {
	defer c.shards.lockGlobal()()
	c.slo = p
	for _, prov := range c.providers {
		prov.slo = p
	}
	if p != nil {
		p.OnBreach(func(tenant, detail, cause string) {
			c.traceEvent(obs.SLOBreach, tenant, 0, 0, "degraded", detail, cause)
		})
	}
}

// SLO returns the attached plane (nil when disabled).
func (c *Cloud) SLO() *slo.Plane { return c.slo }

// tenantDelta is the provider → cloud tenant-lifetime hook: providers
// report +1 per address granted and -1 per address released. When a
// tenant's count reaches zero it holds no addresses anywhere, so its
// per-tenant observability state — decision-trace ring and SLO shard
// histograms — is evicted. Without this, rings for churned tenants
// accumulate forever (the tracer's rings map only ever grew).
//
// A zero delta is a sweep: release wrappers re-notify after their
// op.End, because End records the release's own service time after the
// body evicted the tenant and would otherwise respawn one orphan shard
// per churned tenant.
func (c *Cloud) tenantDelta(tenant string, delta int) {
	c.refMu.Lock()
	n := c.tenantRefs[tenant] + delta
	if n <= 0 {
		delete(c.tenantRefs, tenant)
	} else {
		c.tenantRefs[tenant] = n
	}
	c.refMu.Unlock()
	if n <= 0 {
		if c.trace != nil {
			c.trace.Drop(tenant)
		}
		c.slo.DropTenant(tenant)
	}
}

// TenantRefs reports the live address count for a tenant (0 when fully
// released). Test hook for the eviction path.
func (c *Cloud) TenantRefs(tenant string) int {
	c.refMu.Lock()
	defer c.refMu.Unlock()
	return c.tenantRefs[tenant]
}
