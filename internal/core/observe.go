package core

import (
	"fmt"

	"declnet/internal/addr"
	"declnet/internal/metrics"
	"declnet/internal/obs"
	"declnet/internal/topo"
)

// This file is the provider side of the paper's §6 diagnosis question
// ("tenants lack visibility — the provider must supply it"): wiring the
// obs.Tracer and metrics.Registry into the control plane, and Explain —
// a read-only replay of the Connect datapath that returns the ordered
// verdict chain for a (tenant, src, dst) probe. Explain is declnet's
// answer to traceroute plus "why is my security group blocking this":
// it takes no decision, mutates nothing (no smooth-WRR counter advances,
// no Lookups increment), and names the injected ground-truth cause.

// EnableObservability attaches a decision tracer and a metrics registry
// to the cloud and every current provider. Either may be nil (tracing
// without metrics, or vice versa); instrumented paths are nil-safe, so
// the disabled arm of experiment E12 pays only nil checks. Idempotent in
// the same sense as EnableFaults: later calls replace the sinks.
func (c *Cloud) EnableObservability(tr *obs.Tracer, reg *metrics.Registry) {
	c.trace = tr
	c.reg = reg
	// Cached instrument handles: hot paths must not pay the registry's
	// get-or-create lock per connection. Nil registry hands out nil
	// instruments whose methods are no-ops.
	c.mConnects = reg.Counter("declnet_connects_total",
		"Connect attempts by outcome.", metrics.L("outcome", "ok"))
	c.mConnectsDenied = reg.Counter("declnet_connects_total",
		"Connect attempts by outcome.", metrics.L("outcome", "denied"))
	c.mConnectsErr = reg.Counter("declnet_connects_total",
		"Connect attempts by outcome.", metrics.L("outcome", "error"))
	c.mProbes = reg.Counter("declnet_probes_total", "Probe calls.")
	c.mExplains = reg.Counter("declnet_explains_total", "Explain replays.")
	for _, p := range c.providers {
		if tr != nil {
			p.trace = c.traceEvent
		} else {
			p.trace = nil
		}
	}
	if reg == nil {
		return
	}
	reg.GaugeFunc("declnet_virtual_time_seconds",
		"Simulated clock.", func() float64 { return c.Eng.Now().Seconds() })
	reg.GaugeFunc("declnet_event_queue_depth",
		"Simulator event-queue depth.", func() float64 { return float64(c.Eng.Pending()) })
	reg.GaugeFunc("declnet_solver_recomputes_total",
		"Fair-share solver recomputations.", func() float64 { return float64(c.Net.Recomputes) })
	reg.GaugeFunc("declnet_solver_flows_touched_total",
		"Flows visited by incremental solves.", func() float64 { return float64(c.Net.FlowsTouched) })
	reg.GaugeFunc("declnet_solver_links_touched_total",
		"Links visited by incremental solves.", func() float64 { return float64(c.Net.LinksTouched) })
	reg.GaugeFunc("declnet_flows_active",
		"Live flows in the network.", func() float64 { return float64(c.Net.Active()) })
	for name, p := range c.providers {
		c.registerProviderMetrics(name, p)
	}
	if c.monitor != nil {
		c.monitor.registerMetrics(reg)
	}
}

// Tracer returns the decision tracer, nil until EnableObservability.
func (c *Cloud) Tracer() *obs.Tracer { return c.trace }

// Registry returns the metrics registry, nil until EnableObservability.
func (c *Cloud) Registry() *metrics.Registry { return c.reg }

// registerProviderMetrics samples one provider's control-plane scale.
func (c *Cloud) registerProviderMetrics(name string, p *Provider) {
	l := metrics.L("provider", name)
	c.reg.GaugeFunc("declnet_endpoints",
		"Granted EIPs.", func() float64 { return float64(p.EndpointCount()) }, l)
	c.reg.GaugeFunc("declnet_services",
		"Granted SIPs.", func() float64 { return float64(p.ServiceCount()) }, l)
	c.reg.GaugeFunc("declnet_permit_entries",
		"Total permit-list entries.", func() float64 { return float64(p.Permits.TotalEntries()) }, l)
	c.reg.GaugeFunc("declnet_permit_lookups_total",
		"Permit admission checks.", func() float64 { return float64(p.Permits.Lookups.Load()) }, l)
	c.reg.GaugeFunc("declnet_permit_updates_total",
		"Permit-list mutations.", func() float64 { return float64(p.Permits.Updates.Load()) }, l)
}

// traceEvent records one decision when tracing is on.
func (c *Cloud) traceEvent(kind obs.Kind, tenant string, src, dst addr.IP, verdict, detail, cause string) {
	if c.trace == nil {
		return
	}
	c.trace.Record(obs.Event{
		At: c.Eng.Now(), Tenant: tenant, Kind: kind,
		Src: c.ipStr(src), Dst: c.ipStr(dst), Verdict: verdict, Detail: detail, Cause: cause,
	})
}

// ipStr stringifies an address through the two-entry memo (0 → "").
func (c *Cloud) ipStr(ip addr.IP) string {
	if ip == 0 {
		return ""
	}
	c.memoMu.Lock()
	defer c.memoMu.Unlock()
	if c.ipMemo[0].ip == ip {
		return c.ipMemo[0].s
	}
	if c.ipMemo[1].ip == ip {
		return c.ipMemo[1].s
	}
	c.ipMemo[1] = c.ipMemo[0]
	c.ipMemo[0].ip, c.ipMemo[0].s = ip, ip.String()
	return c.ipMemo[0].s
}

// ExplainStep is one stage of the replayed datapath decision.
type ExplainStep struct {
	// Stage is the datapath stage: source, admission, balancer,
	// destination, path, qos.
	Stage string `json:"stage"`
	// Verdict is "ok", "deny", "fail", or "info".
	Verdict string `json:"verdict"`
	Detail  string `json:"detail,omitempty"`
	// Cause is the cause chain for negative verdicts (obs.Chain format).
	Cause string `json:"cause,omitempty"`
}

// Explanation is the ordered verdict chain for one (tenant, src, dst).
type Explanation struct {
	Tenant            string        `json:"tenant"`
	Src               string        `json:"src"`
	Dst               string        `json:"dst"`
	VirtualTimeMillis int64         `json:"virtual_time_ms"`
	// Reachable is the overall replay verdict: would Connect admit and
	// route this flow right now?
	Reachable bool `json:"reachable"`
	// RootCause is the first failing stage's cause chain, "" when
	// reachable — the string E12 scores against the injected fault.
	RootCause string        `json:"root_cause,omitempty"`
	Steps     []ExplainStep `json:"steps"`
}

// failStep appends a failing stage and latches the first root cause.
func (ex *Explanation) failStep(stage, detail, cause string) {
	ex.Steps = append(ex.Steps, ExplainStep{Stage: stage, Verdict: "fail", Detail: detail, Cause: cause})
	if ex.RootCause == "" {
		ex.RootCause = cause
	}
	ex.Reachable = false
}

// Explain replays the Connect datapath for a hypothetical flow from a
// tenant's EIP to dst (EIP or SIP), without taking any decision: the
// balancer is previewed, not advanced; the permit engine's lookup counter
// is untouched. Every stage appends a verdict, the first failure sets
// RootCause, and the whole replay is recorded as an obs.Explain event.
// Unknown or foreign addresses return an error (the API maps it to 404).
//
// Like Connect and Probe, Explain holds both endpoints' shard read locks
// (deterministic order), so a mutation storm in an unrelated shard never
// stalls a diagnosis.
func (c *Cloud) Explain(tenant string, src EIP, dst addr.IP) (*Explanation, error) {
	defer c.shards.rlockShards(c.shardKeyOf(tenant, src), c.shardKeyOf(tenant, dst))()
	srcProv, ok := c.providerOfAddr(src)
	if !ok {
		return nil, fmt.Errorf("core: unknown source EIP %s", src)
	}
	srcEp, err := srcProv.owned(tenant, src)
	if err != nil {
		return nil, err
	}
	dstProv, ok := c.providerOfAddr(dst)
	if !ok {
		return nil, fmt.Errorf("core: destination %s is not a granted address", dst)
	}
	c.mExplains.Inc()
	ex := &Explanation{
		Tenant: tenant, Src: src.String(), Dst: dst.String(),
		VirtualTimeMillis: c.Eng.Now().Milliseconds(),
		Reachable:         true,
	}

	// Stage 1 — source: is the tenant's own VM even alive?
	if cause := c.nodeCause(srcEp.node); cause != "" {
		ex.failStep("source", "vm="+string(srcEp.node), cause)
	} else {
		ex.Steps = append(ex.Steps, ExplainStep{Stage: "source", Verdict: "ok",
			Detail: "vm=" + string(srcEp.node)})
	}

	// Stage 2 — admission: default-off permit check at the destination
	// provider, with the matched entry and propagation epoch as evidence.
	dec := dstProv.Permits.Explain(src, dst)
	switch {
	case dec.Allowed:
		ex.Steps = append(ex.Steps, ExplainStep{Stage: "admission", Verdict: "ok",
			Detail: fmt.Sprintf("entry=%s epoch=%d", dec.Matched, dec.Version)})
	default:
		cause := "permit-deny:" + dst.String()
		detail := fmt.Sprintf("entries=%d epoch=%d", dec.Entries, dec.Version)
		if !dec.HasList {
			cause = obs.Chain(cause, "no-permit-list")
			detail = "default-off, no permit list set"
		} else {
			cause = obs.Chain(cause, "src-not-in-permit-list")
		}
		// A deferred set_permit_list explains an unexpected deny better
		// than the list state does: the tenant already issued the update,
		// the enforcement point just can't hear it yet.
		if c.monitor != nil {
			if since, pending := c.monitor.PendingPermit(dst); pending {
				cause = obs.Chain("permit-pending:"+dst.String(),
					fmt.Sprintf("deferred-since=%v", since))
				if nc := c.nodeCause(c.targetNode(dstProv, dst)); nc != "" {
					cause = obs.Chain(cause, nc)
				}
				detail = "update accepted, retrying against unreachable enforcement point"
			}
		}
		ex.failStep("admission", detail, cause)
	}

	// Stage 3 — balancer, only when dst is a service address.
	dstEIP := dst
	if svc, isSIP := dstProv.addrs.getService(dst); isSIP {
		bal := svc.balancer
		healthy, total := bal.HealthyCount(), len(bal.Backends())
		if be, err := bal.Preview(); err == nil {
			dstEIP = be.EIP
			ex.Steps = append(ex.Steps, ExplainStep{Stage: "balancer", Verdict: "ok",
				Detail: fmt.Sprintf("backend=%s healthy=%d/%d", be.EIP, healthy, total)})
		} else {
			cause := "no-healthy-backend:" + dst.String()
			for _, be := range bal.Backends() {
				if node, ok := dstProv.Lookup(be.EIP); ok {
					if nc := c.nodeCause(node); nc != "" {
						cause = obs.Chain(cause, nc)
						break
					}
				}
			}
			ex.failStep("balancer", fmt.Sprintf("healthy=0/%d", total), cause)
			dstEIP = 0
		}
	}

	// Stage 4 — destination endpoint liveness.
	var dstNode topo.NodeID
	if dstEIP != 0 {
		if dstEp, ok := dstProv.addrs.getEndpoint(dstEIP); ok {
			dstNode = dstEp.node
			if cause := c.nodeCause(dstNode); cause != "" {
				ex.failStep("destination", "vm="+string(dstNode), cause)
			} else {
				ex.Steps = append(ex.Steps, ExplainStep{Stage: "destination", Verdict: "ok",
					Detail: "vm=" + string(dstNode)})
			}
		}
	}

	// Stage 5 — path under the tenant's potato profile.
	policy := srcProv.potatoOf(tenant)
	if dstNode != "" {
		path, err := c.router.PathFor(policy, srcEp.node, dstNode)
		if err != nil {
			ex.failStep("path", fmt.Sprintf("policy=%v", policy),
				fmt.Sprintf("no-path:%v", policy))
		} else {
			down := ""
			for _, l := range path {
				if !l.Up() {
					down = "link-down:" + trimDir(l.ID)
					break
				}
			}
			detail := fmt.Sprintf("policy=%v hops=%d delay=%v", policy, len(path), path.Delay())
			if down != "" {
				ex.failStep("path", detail, down)
			} else {
				ex.Steps = append(ex.Steps, ExplainStep{Stage: "path", Verdict: "ok", Detail: detail})
			}
		}
	}

	// Stage 6 — qos: informational; throttling degrades, never blocks.
	vmCap := srcEp.egressCap
	if vmCap == 0 {
		vmCap = srcProv.defaultVMEgress
	}
	qdetail := fmt.Sprintf("vm-cap=%.3gbps", vmCap)
	if tq, ok := srcProv.quotaOf(tenant, srcEp.region); ok {
		tq.mu.Lock()
		if tq.quota > 0 {
			up := 0
			for _, enf := range tq.enforcer {
				if enf.Up() {
					up++
				}
			}
			qdetail += fmt.Sprintf(" region-quota=%.3gbps enforcers-up=%d/%d",
				tq.quota, up, len(tq.enforcer))
		}
		tq.mu.Unlock()
	}
	ex.Steps = append(ex.Steps, ExplainStep{Stage: "qos", Verdict: "info", Detail: qdetail})

	verdict := "reachable"
	if !ex.Reachable {
		verdict = "unreachable"
	}
	c.traceEvent(obs.Explain, tenant, src, dst, verdict, "", ex.RootCause)
	return ex, nil
}

// ResourceCounts summarizes one tenant's declarative footprint across all
// providers, for GET /v1/status.
type ResourceCounts struct {
	EIPs   int `json:"eips"`
	SIPs   int `json:"sips"`
	Quotas int `json:"quotas"`
	Groups int `json:"groups"`
}

// TenantResources aggregates per-tenant resource counts across providers.
func (c *Cloud) TenantResources() map[string]ResourceCounts {
	out := make(map[string]ResourceCounts)
	for _, p := range c.pidx.Load().list {
		for _, ep := range p.addrs.endpointSnapshot() {
			rc := out[ep.tenant]
			rc.EIPs++
			out[ep.tenant] = rc
		}
		for _, svc := range p.addrs.serviceSnapshot() {
			rc := out[svc.tenant]
			rc.SIPs++
			out[svc.tenant] = rc
		}
		p.polMu.RLock()
		for tenant, regions := range p.quotas {
			rc := out[tenant]
			rc.Quotas += len(regions)
			out[tenant] = rc
		}
		for tenant, groups := range p.groups {
			rc := out[tenant]
			rc.Groups += len(groups)
			out[tenant] = rc
		}
		p.polMu.RUnlock()
	}
	c.nmMu.RLock()
	for tenant, groups := range c.groups {
		rc := out[tenant]
		rc.Groups += len(groups)
		out[tenant] = rc
	}
	c.nmMu.RUnlock()
	return out
}

// nodeCause renders a node's unreachability cause chain, "" when the node
// is reachable or fault injection is off.
func (c *Cloud) nodeCause(id topo.NodeID) string {
	if c.monitor == nil || id == "" || c.monitor.Inj.Reachable(id) {
		return ""
	}
	causes := c.monitor.Inj.Cause(id)
	if len(causes) == 0 {
		causes = []string{"unreachable:" + string(id)}
	}
	return obs.Chain(causes...)
}

// targetNode resolves the enforcement node behind a permit target, "" for
// SIPs (enforced at the always-on frontend).
func (c *Cloud) targetNode(p *Provider, target addr.IP) topo.NodeID {
	if ep, ok := p.addrs.getEndpoint(target); ok {
		return ep.node
	}
	return ""
}

// trimDir strips the direction suffix from a directed link ID, yielding
// the pair ID tenants know from the fault API.
func trimDir(id string) string {
	for _, suf := range []string{":fwd", ":rev"} {
		if len(id) > len(suf) && id[len(id)-len(suf):] == suf {
			return id[:len(id)-len(suf)]
		}
	}
	return id
}
