package core

import (
	"math"
	"testing"
	"time"

	"declnet/internal/addr"
	"declnet/internal/permit"
	"declnet/internal/topo"
)

// TestBestEffortBypassesQuota covers the §4-footnote traffic-class
// extension: best-effort flows must not consume the regional reservation.
func TestBestEffortBypassesQuota(t *testing.T) {
	c, w, pa, pb, _ := fig1Cloud(t)
	src1, _ := pa.RequestEIP("acme", topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1))
	src2, _ := pa.RequestEIP("acme", topo.HostID(w.CloudA, w.RegionsA[0], "az2", 1))
	dst, _ := pb.RequestEIP("acme", topo.HostID(w.CloudB, w.RegionsB[0], "az1", 1))
	pb.SetPermitList("acme", dst, []permit.Entry{pfx("100.64.0.0/10")})
	if err := pa.SetQoS("acme", w.RegionsA[0], 100e6); err != nil {
		t.Fatal(err)
	}
	// Reserved flow is shaped to the quota; best-effort is not.
	res, err := c.Connect("acme", src1, dst, ConnectOpts{SizeBytes: -1, Demand: 10e9, Class: Reserved})
	if err != nil {
		t.Fatal(err)
	}
	be, err := c.Connect("acme", src2, dst, ConnectOpts{SizeBytes: -1, Demand: 10e9, Class: BestEffort})
	if err != nil {
		t.Fatal(err)
	}
	c.Eng.RunUntil(c.Eng.Now() + 500*time.Millisecond)
	if got := res.Flow.Rate(); math.Abs(got-100e6) > 2e6 {
		t.Fatalf("reserved flow rate = %v, want ~100Mbps (the whole quota)", got)
	}
	// Best-effort gets the fair share of the path under the per-VM cap,
	// far above the quota it never touched.
	if got := be.Flow.Rate(); got < 1e9 {
		t.Fatalf("best-effort flow rate = %v, want >1Gbps (unreserved)", got)
	}
	res.Close()
	be.Close()
}

func TestQoSClassString(t *testing.T) {
	if Reserved.String() != "reserved" || BestEffort.String() != "best-effort" {
		t.Fatal("class names wrong")
	}
}

// TestNamingExtension covers the §6 "abstract above addresses" extension.
func TestNamingExtension(t *testing.T) {
	c, w, pa, pb, _ := fig1Cloud(t)
	client, _ := pa.RequestEIP("acme", topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1))
	be1, _ := pb.RequestEIP("acme", topo.HostID(w.CloudB, w.RegionsB[0], "az1", 1))
	be2, _ := pb.RequestEIP("acme", topo.HostID(w.CloudB, w.RegionsB[1], "az1", 1))
	sip, _ := pb.RequestSIP("acme")
	pb.Bind("acme", be1, sip, 1)
	pb.SetPermitList("acme", sip, []permit.Entry{addr.NewPrefix(client, 32)})
	pb.SetPermitList("acme", be2, []permit.Entry{addr.NewPrefix(client, 32)})

	if err := c.RegisterName("acme", "db", sip); err != nil {
		t.Fatal(err)
	}
	conn, err := c.ConnectName("acme", client, "db", ConnectOpts{SizeBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	if conn.DstEIP != be1 {
		t.Fatalf("name resolved to %s, want backend %s", conn.DstEIP, be1)
	}
	conn.Close()

	// Cutover: repoint the name at a plain EIP; clients keep working.
	if err := c.RegisterName("acme", "db", be2); err != nil {
		t.Fatal(err)
	}
	conn, err = c.ConnectName("acme", client, "db", ConnectOpts{SizeBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	if conn.DstEIP != be2 {
		t.Fatalf("cutover resolved to %s, want %s", conn.DstEIP, be2)
	}
	conn.Close()

	// Tenancy: another tenant's names are separate; foreign addresses
	// are rejected.
	if err := c.RegisterName("rival", "db", sip); err == nil {
		t.Fatal("rival registered a name over acme's SIP")
	}
	if _, ok := c.ResolveName("rival", "db"); ok {
		t.Fatal("rival resolved acme's name")
	}
	if _, err := c.ConnectName("acme", client, "ghost", ConnectOpts{}); err == nil {
		t.Fatal("unknown name connected")
	}
	if !c.UnregisterName("acme", "db") {
		t.Fatal("unregister failed")
	}
	if c.UnregisterName("acme", "db") {
		t.Fatal("double unregister succeeded")
	}
}
