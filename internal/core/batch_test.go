package core

import (
	"errors"
	"strings"
	"testing"

	"declnet/internal/addr"
	"declnet/internal/permit"
	"declnet/internal/topo"
)

// TestApplyBatchOnboarding drives the headline use case: one batch that
// requests addresses, wires bindings and permits through back-references,
// and names the service — then verifies the datapath works and the whole
// batch cost exactly one address-epoch advance and one permit-version
// bump.
func TestApplyBatchOnboarding(t *testing.T) {
	c, w, _, _, _ := fig1Cloud(t)
	ep0 := c.addrEpoch.Load()
	ge0 := c.G.Epoch()

	be1 := topo.HostID(w.CloudB, w.RegionsB[0], "az1", 1)
	be2 := topo.HostID(w.CloudB, w.RegionsB[0], "az2", 1)
	client := topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1)
	results, err := c.ApplyBatch("acme", []BatchOp{
		{Op: "request_eip", VM: client},         // $0
		{Op: "request_eip", VM: be1},            // $1
		{Op: "request_eip", VM: be2},            // $2
		{Op: "request_sip", Provider: w.CloudB}, // $3
		{Op: "bind", EIP: "$1", SIP: "$3", Weight: 2},
		{Op: "bind", EIP: "$2", SIP: "$3"},
		{Op: "set_permit", Target: "$3", Entries: []permit.Entry{addr.MustParsePrefix("0.0.0.0/0")}},
		{Op: "register_name", Name: "db", Target: "$3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("got %d results, want 8", len(results))
	}
	for i := 0; i < 4; i++ {
		if results[i].Addr == 0 {
			t.Fatalf("op %d granted no address", i)
		}
	}
	if got := c.addrEpoch.Load(); got != ep0+1 {
		t.Fatalf("addrEpoch advanced %d times, want 1", got-ep0)
	}
	if got := c.G.Epoch(); got != ge0 {
		t.Fatalf("graph epoch moved (%d -> %d) on a graph-free batch", ge0, got)
	}
	sip := results[3].Addr
	pb, ok := c.ProviderOf(sip)
	if !ok {
		t.Fatalf("SIP %s has no provider", sip)
	}
	if l, ok := pb.Permits.List(sip); !ok || l.Version() != 1 {
		t.Fatalf("permit list version after batch: %v (ok=%v), want 1", l, ok)
	}
	if ip, ok := c.ResolveName("acme", "db"); !ok || ip != sip {
		t.Fatalf("Resolve(db) = %s/%v, want %s", ip, ok, sip)
	}
	cn, err := c.Connect("acme", results[0].Addr, sip, ConnectOpts{SizeBytes: 1e3})
	if err != nil {
		t.Fatalf("Connect after batch onboarding: %v", err)
	}
	cn.Close()
}

// TestApplyBatchValidationRejectsWholesale: any statically detectable
// defect rejects the batch before anything is applied.
func TestApplyBatchValidationRejectsWholesale(t *testing.T) {
	c, w, pa, _, _ := fig1Cloud(t)
	vm := topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1)
	cases := []struct {
		name string
		ops  []BatchOp
		want string
	}{
		{"unknown op", []BatchOp{{Op: "frobnicate"}}, "unknown op"},
		{"missing vm", []BatchOp{{Op: "request_eip"}}, "missing vm"},
		{"bad address", []BatchOp{{Op: "release_eip", EIP: "not-an-ip"}}, "eip"},
		{"forward ref", []BatchOp{
			{Op: "bind", EIP: "$1", SIP: "$1"},
			{Op: "request_sip", Provider: w.CloudA},
		}, "earlier op"},
		{"ref to non-grant", []BatchOp{
			{Op: "release_eip", EIP: "100.64.0.1"},
			{Op: "bind", EIP: "$1", SIP: "$1"},
		}, "not an address grant"},
		{"unknown provider", []BatchOp{{Op: "request_sip", Provider: "azure"}}, "unknown provider"},
		{"missing entries", []BatchOp{{Op: "permit", Target: "100.64.0.1"}}, "missing entries"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ep0 := c.addrEpoch.Load()
			// Lead with a valid op to prove even it is not applied.
			ops := append([]BatchOp{{Op: "request_eip", VM: vm}}, tc.ops...)
			results, err := c.ApplyBatch("acme", ops)
			if err == nil || results != nil {
				t.Fatalf("ApplyBatch = (%v, %v), want rejection with nil results", results, err)
			}
			var be *BatchError
			if !errors.As(err, &be) {
				t.Fatalf("error %T is not *BatchError", err)
			}
			if be.Index == 0 {
				t.Fatalf("validation blamed op 0 (the valid one): %v", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			if got := c.addrEpoch.Load(); got != ep0 {
				t.Fatalf("rejected batch advanced addrEpoch (%d -> %d)", ep0, got)
			}
			if n := pa.EndpointCount(); n != 0 {
				t.Fatalf("rejected batch granted %d endpoints", n)
			}
		})
	}
}

// TestApplyBatchPartialFailure: a runtime failure mid-batch stops the
// batch, reports the failing index, and leaves earlier ops applied.
func TestApplyBatchPartialFailure(t *testing.T) {
	c, w, pa, _, _ := fig1Cloud(t)
	vm := topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1)
	results, err := c.ApplyBatch("acme", []BatchOp{
		{Op: "request_eip", VM: vm},
		{Op: "request_eip", VM: "ghost"}, // passes validation, fails at apply
		{Op: "request_sip", Provider: w.CloudA},
	})
	if err == nil {
		t.Fatal("batch with unknown VM succeeded")
	}
	var be *BatchError
	if !errors.As(err, &be) || be.Index != 1 || be.Op != "request_eip" {
		t.Fatalf("error %v, want *BatchError at index 1", err)
	}
	if len(results) != 1 || results[0].Addr == 0 {
		t.Fatalf("partial results %v, want the one applied grant", results)
	}
	// The applied prefix stays applied: the EIP resolves and is owned.
	if p, ok := c.ProviderOf(results[0].Addr); !ok || p != pa {
		t.Fatalf("granted EIP %s no longer resolves to its provider", results[0].Addr)
	}
	if n := pa.EndpointCount(); n != 1 {
		t.Fatalf("endpoint count %d, want 1 (op 0 applied, op 2 never ran)", n)
	}
}

// TestApplyBatchMidBatchAddressView: releases inside a batch are visible
// to later ops in the same batch — the provider-of-address cache must
// not serve entries that predate a mid-batch mutation.
func TestApplyBatchMidBatchAddressView(t *testing.T) {
	c, w, _, _, _ := fig1Cloud(t)
	vm := topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1)
	eip, err := c.providers[w.CloudA].RequestEIP("acme", vm)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the provider-of-address cache on the live grant.
	if _, ok := c.ProviderOf(eip); !ok {
		t.Fatalf("EIP %s does not resolve", eip)
	}
	results, err := c.ApplyBatch("acme", []BatchOp{
		{Op: "release_eip", EIP: eip.String()},
		{Op: "register_name", Name: "gone", Target: eip.String()},
	})
	var be *BatchError
	if !errors.As(err, &be) || be.Index != 1 {
		t.Fatalf("op against a just-released address: err %v results %v, want failure at index 1", err, results)
	}
	if !strings.Contains(err.Error(), "not a granted address") {
		t.Fatalf("error %q does not name the stale address", err)
	}
}

// TestCloudBatchNesting: nested Batch windows coalesce into the
// outermost, and an unmatched endBatch panics.
func TestCloudBatchNesting(t *testing.T) {
	c, w, pa, _, _ := fig1Cloud(t)
	vm1 := topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1)
	vm2 := topo.HostID(w.CloudA, w.RegionsA[0], "az2", 1)
	ep0 := c.addrEpoch.Load()
	err := c.Batch(func() error {
		if _, err := pa.RequestEIP("acme", vm1); err != nil {
			return err
		}
		return c.Batch(func() error {
			_, err := pa.RequestEIP("acme", vm2)
			return err
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.addrEpoch.Load(); got != ep0+1 {
		t.Fatalf("nested batches advanced addrEpoch %d times, want 1", got-ep0)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("endBatch without beginBatch did not panic")
		}
	}()
	c.endBatch()
}
