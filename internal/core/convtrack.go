// Convergence tracking: the dirty sets and section versions behind
// incremental reconciliation (reconcile.go) and the incremental state
// digest (intent.go). Every journaled mutation flows through
// Cloud.noteRecorded — the intent log's record hook — which (a) marks
// the mutated (surface, target) dirty for the owning provider, so the
// next incremental sweep checks exactly the touched targets, and (b)
// bumps the digest section version the mutation lands in, so the next
// StateDigest recomputes only that section. Live mutations that bypass
// the journal — reconciler repairs, fault-deferred permit landings, the
// Drift* chaos hooks — bump versions at their own call sites. The Drift*
// hooks deliberately do NOT mark dirty sets: drift injected behind the
// recorder's back must be caught by the anti-entropy rotation alone,
// which is the bounded-detection-lag guarantee the property test pins.
package core

import (
	"crypto/sha256"
	"sync"

	"declnet/internal/addr"
	"declnet/internal/intent"
)

// convScope names one digest/sweep section. kind 'r' is a (provider,
// region) scope: the region's endpoints, its permit lists, and its pool
// cursor. kind 's' is a provider's SIP plane: services, binds, SIP
// permit lists, and the SIP pool cursor. kind 'p' is a provider's
// policy plane: quotas, potato profiles, groups. kind 'c' is the
// cloud-level plane: cross-provider groups and names.
type convScope struct {
	kind   byte
	prov   string
	region string
}

func regionScope(prov, region string) convScope {
	return convScope{kind: 'r', prov: prov, region: region}
}
func sipScope(prov string) convScope { return convScope{kind: 's', prov: prov} }
func polScope(prov string) convScope { return convScope{kind: 'p', prov: prov} }
func cloudScope() convScope          { return convScope{kind: 'c'} }

// convDirty is one provider's accumulated dirty marks since the last
// incremental sweep consumed them.
type convDirty struct {
	permits map[addr.IP]bool
	binds   map[addr.IP]bool
	quotas  map[string]bool // full intent.QuotaKey form
}

// convTracker is the tracker itself. Its mutex is a leaf: taken only
// for map updates, never while holding it calling out, so any caller —
// a verb wrapper under its shard lock, RestoreIntent under the global
// gate, the reconciler mid-repair — may mark or bump freely.
type convTracker struct {
	mu    sync.Mutex
	gen   uint64 // bumped by invalidateAll; part of every cache key
	ver   map[convScope]uint64
	dirty map[string]*convDirty
}

func (t *convTracker) initLocked() {
	if t.ver == nil {
		t.ver = make(map[convScope]uint64)
		t.dirty = make(map[string]*convDirty)
	}
}

func (t *convTracker) dirtyLocked(prov string) *convDirty {
	d := t.dirty[prov]
	if d == nil {
		d = &convDirty{
			permits: make(map[addr.IP]bool),
			binds:   make(map[addr.IP]bool),
			quotas:  make(map[string]bool),
		}
		t.dirty[prov] = d
	}
	return d
}

func (t *convTracker) markPermit(prov string, target addr.IP) {
	t.mu.Lock()
	t.initLocked()
	t.dirtyLocked(prov).permits[target] = true
	t.mu.Unlock()
}

func (t *convTracker) markBind(prov string, sip addr.IP) {
	t.mu.Lock()
	t.initLocked()
	t.dirtyLocked(prov).binds[sip] = true
	t.mu.Unlock()
}

func (t *convTracker) markQuota(prov, key string) {
	t.mu.Lock()
	t.initLocked()
	t.dirtyLocked(prov).quotas[key] = true
	t.mu.Unlock()
}

// take consumes and clears a provider's dirty sets; nil when clean.
func (t *convTracker) take(prov string) *convDirty {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.dirty == nil {
		return nil
	}
	d := t.dirty[prov]
	delete(t.dirty, prov)
	return d
}

func (t *convTracker) bump(s convScope) {
	t.mu.Lock()
	t.initLocked()
	t.ver[s]++
	t.mu.Unlock()
}

// version returns the (generation, version) pair a cached digest of
// scope s is valid against.
func (t *convTracker) version(s convScope) (gen, ver uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.gen, t.ver[s]
}

// invalidateAll retires every outstanding cached section digest at once
// (EnableIntent, RestoreIntent: the world may have changed wholesale
// without per-scope bumps).
func (t *convTracker) invalidateAll() {
	t.mu.Lock()
	t.gen++
	t.mu.Unlock()
}

// digestCache memoizes per-section digest sums keyed by the tracker's
// (generation, version) at compute time.
type digestCache struct {
	mu sync.Mutex
	m  map[convScope]digestEntry
}

type digestEntry struct {
	gen, ver uint64
	sum      [sha256.Size]byte
}

func (dc *digestCache) get(s convScope, gen, ver uint64) ([sha256.Size]byte, bool) {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	e, ok := dc.m[s]
	if !ok || e.gen != gen || e.ver != ver {
		return [sha256.Size]byte{}, false
	}
	return e.sum, true
}

func (dc *digestCache) put(s convScope, gen, ver uint64, sum [sha256.Size]byte) {
	dc.mu.Lock()
	if dc.m == nil {
		dc.m = make(map[convScope]digestEntry)
	}
	dc.m[s] = digestEntry{gen: gen, ver: ver, sum: sum}
	dc.mu.Unlock()
}

// convBumpTarget bumps the digest scope a target address lives in:
// its region scope for EIPs, the owning provider's SIP plane otherwise.
func (c *Cloud) convBumpTarget(p *Provider, ip addr.IP) {
	if region := p.regionOf(ip); region != "" {
		c.conv.bump(regionScope(p.Name, region))
		return
	}
	c.conv.bump(sipScope(p.Name))
}

// convMarkPermit is convBumpTarget's dirty-set twin for permit targets.
func (c *Cloud) convMarkPermit(p *Provider, target addr.IP) {
	c.conv.markPermit(p.Name, target)
}

// noteRecorded is the intent log's record hook (Log.SetOnRecord): it
// runs after each journaled record's in-memory apply, still under the
// recording verb's shard lock (or the batch path's global gate), so a
// concurrent StateDigest — which takes the global gate — always sees
// the bump and the mutation together. Target->provider resolution uses
// the static block carving (blockOwner), which stays correct even for
// release ops whose address is already gone from the live tables.
func (c *Cloud) noteRecorded(tenant string, ops []intent.Op) {
	for i := range ops {
		op := &ops[i]
		switch op.Verb {
		case intent.OpRequestEIP:
			c.conv.bump(regionScope(op.Provider, op.Region))
			c.conv.markPermit(op.Provider, op.Addr)
		case intent.OpReleaseEIP:
			if p, ok := c.blockOwner(op.Addr); ok {
				c.convBumpTarget(p, op.Addr)
				// The release drained the EIP out of every balancer it was
				// bound to, which lives in the SIP-plane section.
				c.conv.bump(sipScope(p.Name))
				c.conv.markPermit(p.Name, op.Addr)
			}
		case intent.OpRequestSIP:
			c.conv.bump(sipScope(op.Provider))
			c.conv.markPermit(op.Provider, op.Addr)
		case intent.OpReleaseSIP:
			if p, ok := c.blockOwner(op.Addr); ok {
				c.conv.bump(sipScope(p.Name))
				c.conv.markPermit(p.Name, op.Addr)
				c.conv.markBind(p.Name, op.Addr)
			}
		case intent.OpBind, intent.OpUnbind:
			if p, ok := c.blockOwner(op.SIP); ok {
				c.conv.bump(sipScope(p.Name))
				c.conv.markBind(p.Name, op.SIP)
			}
		case intent.OpSetPermit, intent.OpPermit, intent.OpRevoke:
			p, ok := c.pidx.Load().byName[op.Provider]
			if !ok {
				p, ok = c.blockOwner(op.Target)
			}
			if ok {
				c.convBumpTarget(p, op.Target)
				c.conv.markPermit(p.Name, op.Target)
			}
		case intent.OpSetQoS:
			c.conv.bump(polScope(op.Provider))
			c.conv.markQuota(op.Provider, intent.QuotaKey(op.Provider, tenant, op.Region))
		case intent.OpSetPotato:
			c.conv.bump(polScope(op.Provider))
		case intent.OpSetVMEgress:
			if p, ok := c.blockOwner(op.EIP); ok {
				c.convBumpTarget(p, op.EIP)
			}
		case intent.OpCreateGroup:
			if op.Provider != "" {
				c.conv.bump(polScope(op.Provider))
			} else {
				c.conv.bump(cloudScope())
			}
		case intent.OpRegisterName, intent.OpUnregisterName:
			c.conv.bump(cloudScope())
		}
	}
}
