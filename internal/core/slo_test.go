package core

import (
	"strings"
	"testing"
	"time"

	"declnet/internal/obs"
	"declnet/internal/slo"
	"declnet/internal/topo"
)

// shardCountFor counts the plane's shards belonging to one tenant.
func shardCountFor(p *slo.Plane, tenant string) int {
	n := 0
	for _, s := range p.Snapshot() {
		if s.Key.Tenant == tenant {
			n++
		}
	}
	return n
}

// TestTenantEvictionOnFullRelease is the observability-lifetime
// regression: a tenant that releases its last address must take its
// decision-trace ring and SLO shard histograms with it — including the
// shard the release verb's own End would respawn after eviction.
func TestTenantEvictionOnFullRelease(t *testing.T) {
	c, w, pa, pb, _ := fig1Cloud(t)
	tr := obs.NewTracer(64)
	c.EnableObservability(tr, nil)
	plane := slo.NewPlane(slo.Config{Window: time.Hour, SampleEvery: 1})
	c.EnableSLO(plane)
	if c.SLO() != plane {
		t.Fatal("SLO() did not return the attached plane")
	}

	eipA, err := pa.RequestEIP("churn", topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1))
	if err != nil {
		t.Fatal(err)
	}
	eipB, err := pb.RequestEIP("churn", topo.HostID(w.CloudB, w.RegionsB[0], "az1", 1))
	if err != nil {
		t.Fatal(err)
	}
	sip, err := pa.RequestSIP("churn")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.TenantRefs("churn"); got != 3 {
		t.Fatalf("TenantRefs = %d, want 3", got)
	}
	tr.Record(obs.Event{Tenant: "churn", Kind: obs.PermitAllow, Detail: "live"})
	if shardCountFor(plane, "churn") == 0 {
		t.Fatal("grants recorded no SLO shards")
	}

	// Partial release keeps everything.
	if err := pa.ReleaseEIP("churn", eipA); err != nil {
		t.Fatal(err)
	}
	if got := c.TenantRefs("churn"); got != 2 {
		t.Fatalf("TenantRefs after partial release = %d, want 2", got)
	}
	if tr.Len("churn") == 0 || shardCountFor(plane, "churn") == 0 {
		t.Fatal("partial release evicted live tenant state")
	}

	// Full release evicts ring and shards, with nothing respawned by the
	// final release's own latency recording.
	if err := pb.ReleaseEIP("churn", eipB); err != nil {
		t.Fatal(err)
	}
	if err := pa.ReleaseSIP("churn", sip); err != nil {
		t.Fatal(err)
	}
	if got := c.TenantRefs("churn"); got != 0 {
		t.Fatalf("TenantRefs after full release = %d, want 0", got)
	}
	if got := tr.Len("churn"); got != 0 {
		t.Fatalf("trace ring survived eviction with %d events", got)
	}
	if got := shardCountFor(plane, "churn"); got != 0 {
		t.Fatalf("%d SLO shards survived eviction", got)
	}

	// Re-onboarding starts fresh.
	if _, err := pa.RequestEIP("churn", topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1)); err != nil {
		t.Fatal(err)
	}
	if got := c.TenantRefs("churn"); got != 1 {
		t.Fatalf("TenantRefs after re-grant = %d, want 1", got)
	}
	if shardCountFor(plane, "churn") == 0 {
		t.Fatal("re-onboarded tenant recorded no shards")
	}
}

// TestTenantEvictionViaBatch covers the batch path: a batch whose ops
// release the tenant's last address must sweep the shard the batch op's
// own End records into.
func TestTenantEvictionViaBatch(t *testing.T) {
	c, w, pa, _, _ := fig1Cloud(t)
	plane := slo.NewPlane(slo.Config{Window: time.Hour})
	c.EnableSLO(plane)

	eip, err := pa.RequestEIP("churn", topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ApplyBatch("churn", []BatchOp{
		{Op: "release_eip", EIP: eip.String()},
	}); err != nil {
		t.Fatal(err)
	}
	if got := c.TenantRefs("churn"); got != 0 {
		t.Fatalf("TenantRefs after batch release = %d, want 0", got)
	}
	if got := shardCountFor(plane, "churn"); got != 0 {
		t.Fatalf("%d SLO shards survived batch eviction", got)
	}
}

// TestBreachLandsInDecisionTrace checks the EnableSLO bridge: a detector
// breach fires the OnBreach callback into the victim tenant's trace ring
// as an slo-breach event carrying the cause chain.
func TestBreachLandsInDecisionTrace(t *testing.T) {
	c, _, _, _, _ := fig1Cloud(t)
	tr := obs.NewTracer(64)
	c.EnableObservability(tr, nil)
	plane := slo.NewPlane(slo.Config{Window: time.Hour, MinWindowSamples: 8})
	c.EnableSLO(plane)

	for i := 0; i < 16; i++ {
		plane.Observe(slo.VerbConnect, "victim", "cloudA/a-east", time.Microsecond)
	}
	plane.AdvanceWindow()
	for i := 0; i < 16; i++ {
		plane.Observe(slo.VerbConnect, "victim", "cloudA/a-east", 100*time.Microsecond)
	}
	for i := 0; i < 100; i++ {
		plane.Observe(slo.VerbPermit, "noisy", "cloudB/b-east", time.Microsecond)
	}
	if rep := plane.Health(); rep.Status != "degraded" {
		t.Fatalf("expected breach, got %+v", rep)
	}
	evs := tr.Recent("victim", 0)
	if len(evs) != 1 || evs[0].Kind != obs.SLOBreach {
		t.Fatalf("victim trace = %v, want one slo-breach event", evs)
	}
	for _, want := range []string{"noisy-neighbor:noisy@cloudB/b-east", "slo-breach:connect-p99"} {
		if !strings.Contains(evs[0].Cause, want) {
			t.Errorf("cause %q missing %q", evs[0].Cause, want)
		}
	}
}
