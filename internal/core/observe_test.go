package core

import (
	"strings"
	"testing"
	"time"

	"declnet/internal/addr"
	"declnet/internal/metrics"
	"declnet/internal/obs"
	"declnet/internal/permit"
	"declnet/internal/topo"
)

// explainStage finds one stage's step in an explanation.
func explainStage(t *testing.T, ex *Explanation, stage string) ExplainStep {
	t.Helper()
	for _, s := range ex.Steps {
		if s.Stage == stage {
			return s
		}
	}
	t.Fatalf("explanation has no %q stage: %+v", stage, ex.Steps)
	return ExplainStep{}
}

func TestExplainHealthyPath(t *testing.T) {
	policy := FaultPolicy{HealthInterval: 100 * time.Millisecond, DownAfter: 2}
	c, _, client, sip, _, _, _, _ := failoverWorld(t, policy)
	c.EnableObservability(obs.NewTracer(0), metrics.NewRegistry())
	c.Eng.RunUntil(500 * time.Millisecond)

	ex, err := c.Explain("acme", client, sip)
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Reachable || ex.RootCause != "" {
		t.Fatalf("healthy path not reachable: cause=%q", ex.RootCause)
	}
	adm := explainStage(t, ex, "admission")
	if adm.Verdict != "ok" || !strings.Contains(adm.Detail, "entry=") || !strings.Contains(adm.Detail, "epoch=") {
		t.Fatalf("admission step lacks matched entry/epoch: %+v", adm)
	}
	bal := explainStage(t, ex, "balancer")
	if bal.Verdict != "ok" || !strings.Contains(bal.Detail, "healthy=2/2") {
		t.Fatalf("balancer step = %+v", bal)
	}
	// Explain must not advance the balancer: Preview twice, same backend.
	ex2, err := c.Explain("acme", client, sip)
	if err != nil {
		t.Fatal(err)
	}
	if explainStage(t, ex2, "balancer").Detail != bal.Detail {
		t.Fatal("Explain mutated the balancer's smooth-WRR state")
	}
	// The replay itself must be traced.
	evs := c.Tracer().Recent("acme", 0)
	var sawExplain bool
	for _, ev := range evs {
		if ev.Kind == obs.Explain {
			sawExplain = true
		}
	}
	if !sawExplain {
		t.Fatal("no obs.Explain event recorded")
	}
}

func TestExplainPermitDeny(t *testing.T) {
	c, w, pa, pb, _ := fig1Cloud(t)
	c.EnableObservability(obs.NewTracer(0), nil)
	client, err := pa.RequestEIP("acme", topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1))
	if err != nil {
		t.Fatal(err)
	}
	dst, err := pb.RequestEIP("acme", topo.HostID(w.CloudB, w.RegionsB[0], "az1", 1))
	if err != nil {
		t.Fatal(err)
	}
	// No permit list at all: pure default-off.
	ex, err := c.Explain("acme", client, dst)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Reachable {
		t.Fatal("default-off dst explained as reachable")
	}
	if !strings.HasPrefix(ex.RootCause, "permit-deny:") || !strings.Contains(ex.RootCause, "no-permit-list") {
		t.Fatalf("RootCause = %q", ex.RootCause)
	}
	// A list that excludes the client: deny with different evidence.
	other := addr.NewPrefix(client+1, 32)
	if err := pb.SetPermitList("acme", dst, []permit.Entry{other}); err != nil {
		t.Fatal(err)
	}
	ex, err = c.Explain("acme", client, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex.RootCause, "src-not-in-permit-list") {
		t.Fatalf("RootCause = %q", ex.RootCause)
	}
}

func TestExplainNamesNodeAndRegionFaults(t *testing.T) {
	policy := FaultPolicy{HealthInterval: 100 * time.Millisecond, DownAfter: 2}
	c, m, client, sip, _, _, n1, n2 := failoverWorld(t, policy)
	c.EnableObservability(obs.NewTracer(0), metrics.NewRegistry())

	// Fail one backend node: SIP still reachable via the survivor, and the
	// destination stage names the survivor.
	c.Eng.Schedule(time.Second, func() {
		if err := m.Inj.FailNode(n1); err != nil {
			t.Error(err)
		}
	})
	c.Eng.RunUntil(time.Second + policy.DetectDelay() + policy.HealthInterval)
	ex, err := c.Explain("acme", client, sip)
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Reachable {
		t.Fatalf("one survivor left but unreachable: %q", ex.RootCause)
	}
	// Fail the whole region: no healthy backend, root cause names it.
	prov, region := "cloudB", strings.Split(string(n2), "/")[1]
	if err := m.Inj.FailRegion(prov, region); err != nil {
		t.Fatal(err)
	}
	c.Eng.RunUntil(c.Eng.Now() + policy.DetectDelay() + policy.HealthInterval)
	ex, err = c.Explain("acme", client, sip)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Reachable {
		t.Fatal("region down but explained reachable")
	}
	if !strings.HasPrefix(ex.RootCause, "no-healthy-backend:") ||
		!strings.Contains(ex.RootCause, "region-down:"+prov+"/"+region) {
		t.Fatalf("RootCause = %q", ex.RootCause)
	}
	if m.Failovers == 0 {
		t.Fatal("monitor recorded no failovers")
	}
}

func TestExplainPendingPermit(t *testing.T) {
	policy := FaultPolicy{HealthInterval: 100 * time.Millisecond, DownAfter: 2}
	c, w, pa, pb, _ := fig1Cloud(t)
	m := c.EnableFaults(policy)
	c.EnableObservability(obs.NewTracer(0), metrics.NewRegistry())
	client, err := pa.RequestEIP("acme", topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1))
	if err != nil {
		t.Fatal(err)
	}
	node := topo.HostID(w.CloudB, w.RegionsB[0], "az1", 1)
	dst, err := pb.RequestEIP("acme", node)
	if err != nil {
		t.Fatal(err)
	}
	// Partition the endpoint, then issue the permit update: it must defer,
	// and Explain must say "pending", not a plain deny.
	if err := m.Inj.FailNode(node); err != nil {
		t.Fatal(err)
	}
	if err := pb.SetPermitList("acme", dst, []permit.Entry{addr.NewPrefix(client, 32)}); err != nil {
		t.Fatal(err)
	}
	ex, err := c.Explain("acme", client, dst)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Reachable {
		t.Fatal("pending permit explained as reachable")
	}
	if !strings.HasPrefix(ex.RootCause, "permit-pending:") ||
		!strings.Contains(ex.RootCause, "node-down:"+string(node)) {
		t.Fatalf("RootCause = %q", ex.RootCause)
	}
	// Heal; the retry lands and the explanation flips to reachable.
	if err := m.Inj.RestoreNode(node); err != nil {
		t.Fatal(err)
	}
	c.Eng.RunUntil(c.Eng.Now() + 3*policy.withDefaults().PermitRetryInterval)
	ex, err = c.Explain("acme", client, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Reachable {
		t.Fatalf("after heal+retry still unreachable: %q", ex.RootCause)
	}
	if reg := c.Registry(); reg.Histogram("declnet_permit_propagation_seconds", "").Count() == 0 {
		t.Fatal("permit propagation lag not observed")
	}
}

func TestExplainUnknownTenant(t *testing.T) {
	c, w, pa, _, _ := fig1Cloud(t)
	client, err := pa.RequestEIP("acme", topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Explain("mallory", client, client); err == nil {
		t.Fatal("foreign tenant could explain another tenant's EIP")
	}
	if _, err := c.Explain("acme", client, addr.IP(1)); err == nil {
		t.Fatal("ungranted destination did not error")
	}
}

func TestConnectTracesDecisions(t *testing.T) {
	policy := FaultPolicy{HealthInterval: 100 * time.Millisecond, DownAfter: 2}
	c, _, client, sip, _, _, _, _ := failoverWorld(t, policy)
	tr := obs.NewTracer(0)
	reg := metrics.NewRegistry()
	c.EnableObservability(tr, reg)
	cn, err := c.Connect("acme", client, sip, ConnectOpts{SizeBytes: 1e3})
	if err != nil {
		t.Fatal(err)
	}
	cn.Close()
	kinds := map[obs.Kind]bool{}
	for _, ev := range tr.Recent("acme", 0) {
		kinds[ev.Kind] = true
	}
	for _, want := range []obs.Kind{obs.PermitAllow, obs.SIPPick, obs.PathSelect} {
		if !kinds[want] {
			t.Errorf("no %s event traced; got %v", want, kinds)
		}
	}
	if got := reg.Counter("declnet_connects_total", "", metrics.L("outcome", "ok")).Value(); got != 1 {
		t.Fatalf("connects ok counter = %d, want 1", got)
	}
	// A denied connect traces the deny with evidence.
	if _, err := c.Connect("acme", client, client, ConnectOpts{}); err == nil {
		t.Fatal("self-connect without permit list should deny")
	}
	var sawDeny bool
	for _, ev := range tr.Recent("acme", 0) {
		if ev.Kind == obs.PermitDeny && strings.Contains(ev.Cause, "no-permit-list") {
			sawDeny = true
		}
	}
	if !sawDeny {
		t.Fatal("deny not traced with no-permit-list cause")
	}
	if got := reg.Counter("declnet_connects_total", "", metrics.L("outcome", "denied")).Value(); got != 1 {
		t.Fatalf("connects denied counter = %d, want 1", got)
	}
}
