package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"declnet/internal/addr"
	"declnet/internal/permit"
	"declnet/internal/topo"
)

// Property: under ANY failure schedule, once a backend's host has been
// continuously unreachable for longer than the health-check detect window,
// the SIP must not serve from it — and as long as at least one backend has
// never failed, the SIP must keep serving. The schedules here are randomly
// generated fail/heal event sequences over every backend node; the ground
// truth is reconstructed from the schedule itself, independent of the
// monitor under test.

// nodeSchedule is the generated fail/heal history for one backend node.
// Times are sorted; entries alternate fail, heal, fail, ... starting from
// an initially-up node.
type nodeSchedule struct {
	node   topo.NodeID
	events []time.Duration
}

// downFor reports whether the node was continuously unreachable during
// the whole window [t-window, t].
func (ns nodeSchedule) downFor(t, window time.Duration) bool {
	// Index of the last event at or before t.
	i := sort.Search(len(ns.events), func(i int) bool { return ns.events[i] > t }) - 1
	if i < 0 {
		return false // no events yet: node has always been up
	}
	// Even index = fail, odd = heal.
	if i%2 != 0 {
		return false // currently up
	}
	return t-ns.events[i] >= window
}

// downAt reports whether the node is unreachable at time t.
func (ns nodeSchedule) downAt(t time.Duration) bool {
	i := sort.Search(len(ns.events), func(i int) bool { return ns.events[i] > t }) - 1
	return i >= 0 && i%2 == 0
}

// everFailedBy reports whether any fail event precedes t.
func (ns nodeSchedule) everFailedBy(t time.Duration) bool {
	return len(ns.events) > 0 && ns.events[0] <= t
}

// genSchedule draws up to maxFlaps fail/heal pairs at random times within
// the horizon. A trailing fail with no heal (node ends the run down) is
// deliberately possible.
func genSchedule(rng *rand.Rand, node topo.NodeID, horizon time.Duration) nodeSchedule {
	n := rng.Intn(4) * 2 // 0, 2, 4, or 6 events
	if rng.Intn(3) == 0 {
		n++ // odd count: ends down
	}
	events := make([]time.Duration, n)
	for i := range events {
		// Events live in [0.5s, horizon-1s] so probes bracket them.
		span := horizon - 1500*time.Millisecond
		events[i] = 500*time.Millisecond + time.Duration(rng.Int63n(int64(span)))
	}
	sort.Slice(events, func(i, j int) bool { return events[i] < events[j] })
	return nodeSchedule{node: node, events: events}
}

func TestPropertySIPNeverServesDownBackend(t *testing.T) {
	const (
		nBackends = 3
		horizon   = 10 * time.Second
	)
	policy := FaultPolicy{
		HealthInterval: 100 * time.Millisecond,
		DownAfter:      2,
		RebindBackoff:  300 * time.Millisecond,
	}
	// The monitor needs one sweep past the detect delay to pull a backend;
	// add two intervals of slack so probe phase never races the sweep phase.
	window := policy.DetectDelay() + 2*policy.HealthInterval

	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			c, w, pa, pb, _ := fig1Cloud(t)
			m := c.EnableFaults(policy)

			client, err := pa.RequestEIP("acme", topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1))
			if err != nil {
				t.Fatal(err)
			}
			sip, err := pb.RequestSIP("acme")
			if err != nil {
				t.Fatal(err)
			}
			nodes := []topo.NodeID{
				topo.HostID(w.CloudB, w.RegionsB[0], "az1", 1),
				topo.HostID(w.CloudB, w.RegionsB[0], "az2", 1),
				topo.HostID(w.CloudB, w.RegionsB[1], "az1", 1),
			}
			byEIP := make(map[EIP]int, nBackends)
			for i := 0; i < nBackends; i++ {
				be, err := pb.RequestEIP("acme", nodes[i])
				if err != nil {
					t.Fatal(err)
				}
				if err := pb.Bind("acme", be, sip, 1); err != nil {
					t.Fatal(err)
				}
				byEIP[be] = i
			}
			if err := pb.SetPermitList("acme", sip, []permit.Entry{addr.NewPrefix(client, 32)}); err != nil {
				t.Fatal(err)
			}

			// Generate and apply the failure schedule, keeping one backend
			// permanently healthy so the liveness half of the property has
			// a witness on every seed.
			schedules := make([]nodeSchedule, nBackends)
			schedules[0] = nodeSchedule{node: nodes[0]}
			for i := 1; i < nBackends; i++ {
				schedules[i] = genSchedule(rng, nodes[i], horizon)
				for j, at := range schedules[i].events {
					node, fail := schedules[i].node, j%2 == 0
					c.Eng.Schedule(at, func() {
						if fail {
							m.Inj.FailNode(node)
						} else {
							m.Inj.RestoreNode(node)
						}
					})
				}
			}

			// Probes at times coprime with both the event grid and the
			// health interval, so ordering at equal timestamps never
			// decides the verdict.
			for at := 503 * time.Millisecond; at < horizon; at += 97 * time.Millisecond {
				at := at
				c.Eng.Schedule(at, func() {
					// Liveness only holds once the schedule is "settled":
					// every down backend has been down past the detect
					// window, so the monitor has pulled it. Inside the
					// window the SIP may still pick a just-failed backend
					// and the connect errors — that transient is the MTTR
					// gap E11 measures, not a property violation.
					settled := true
					for _, ns := range schedules {
						if ns.downAt(at) && !ns.downFor(at, window) {
							settled = false
						}
					}
					cn, err := c.Connect("acme", client, sip, ConnectOpts{SizeBytes: 1e3})
					if err != nil {
						if settled {
							t.Errorf("t=%v: connect failed with all failures past the detect window: %v", at, err)
						}
						return
					}
					i, ok := byEIP[cn.DstEIP]
					if !ok {
						t.Errorf("t=%v: served from unknown endpoint %s", at, cn.DstEIP)
					} else if schedules[i].downFor(at, window) {
						t.Errorf("t=%v: served from backend %d, down since %v (window %v)",
							at, i, at-window, window)
					}
					cn.Close()
				})
			}
			c.Eng.RunUntil(horizon + time.Second)

			// Sanity: seeds that actually failed something must have driven
			// the monitor, or the property ran vacuously.
			anyFailed := false
			for _, ns := range schedules {
				if ns.everFailedBy(horizon) {
					anyFailed = true
				}
			}
			if anyFailed && m.Failovers == 0 {
				t.Fatalf("schedule contained failures but monitor recorded none")
			}
		})
	}
}
