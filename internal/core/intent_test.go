package core

import (
	"testing"
	"time"

	"declnet/internal/addr"
	"declnet/internal/intent"
	"declnet/internal/metrics"
	"declnet/internal/obs"
	"declnet/internal/permit"
	"declnet/internal/qos"
	"declnet/internal/topo"
)

// populate drives a representative mutation history through the public
// verbs (so every one journals) and returns a few addresses for later
// assertions.
func populate(t *testing.T, c *Cloud, w *topo.Fig1World, pa, pb *Provider) (eip1, eip2, dst, sip addr.IP) {
	t.Helper()
	var err error
	if eip1, err = pa.RequestEIP("acme", topo.HostID(w.CloudA, w.RegionsA[0], "az1", 1)); err != nil {
		t.Fatal(err)
	}
	if eip2, err = pa.RequestEIP("acme", topo.HostID(w.CloudA, w.RegionsA[0], "az1", 2)); err != nil {
		t.Fatal(err)
	}
	if dst, err = pb.RequestEIP("acme", topo.HostID(w.CloudB, w.RegionsB[0], "az1", 1)); err != nil {
		t.Fatal(err)
	}
	if sip, err = pa.RequestSIP("acme"); err != nil {
		t.Fatal(err)
	}
	if err := pa.Bind("acme", eip1, sip, 2); err != nil {
		t.Fatal(err)
	}
	if err := pa.Bind("acme", eip2, sip, 1); err != nil {
		t.Fatal(err)
	}
	if err := pa.CreateGroup("acme", "web", eip1, eip2); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateGroup("acme", "fleet", eip1, dst); err != nil {
		t.Fatal(err)
	}
	if err := pb.SetPermitList("acme", dst, []permit.Entry{addr.NewPrefix(eip1, 32)}, "fleet"); err != nil {
		t.Fatal(err)
	}
	if err := pa.SetPermitList("acme", sip, []permit.Entry{pfx("0.0.0.0/0")}); err != nil {
		t.Fatal(err)
	}
	if err := pa.Permit("acme", eip1, addr.NewPrefix(dst, 32)); err != nil {
		t.Fatal(err)
	}
	if err := pa.SetQoS("acme", w.RegionsA[0], 2e9); err != nil {
		t.Fatal(err)
	}
	pa.SetPotato("acme", qos.ColdPotato)
	if err := pa.SetVMEgressCap("acme", eip1, 5e8); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterName("acme", "frontend", sip); err != nil {
		t.Fatal(err)
	}
	// Batch path: one frame with back-references resolved.
	if _, err := c.ApplyBatch("acme", []BatchOp{
		{Op: "request_eip", VM: topo.HostID(w.CloudA, w.RegionsA[1], "az1", 1)},
		{Op: "permit", Target: "$0", Entries: []permit.Entry{pfx("10.0.0.0/8")}},
		{Op: "set_qos", Provider: pa.Name, Region: w.RegionsA[1], Bandwidth: 1e9},
	}); err != nil {
		t.Fatal(err)
	}
	// A release exercises pool free-list replay.
	scratch, err := pa.RequestEIP("acme", topo.HostID(w.CloudA, w.RegionsA[0], "az2", 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := pa.ReleaseEIP("acme", scratch); err != nil {
		t.Fatal(err)
	}
	return eip1, eip2, dst, sip
}

// TestKillAndRestartEquivalence is the recovery contract: abandon the
// live world without any shutdown, reopen the store, rebuild a fresh
// world from the journal, and the canonical state digest must match.
func TestKillAndRestartEquivalence(t *testing.T) {
	dir := t.TempDir()
	c, w, pa, pb, _ := fig1Cloud(t)
	l, err := intent.Open(dir, intent.Options{Meta: map[string]string{"seed": "1"}})
	if err != nil {
		t.Fatal(err)
	}
	c.EnableIntent(l)
	eip1, _, _, sip := populate(t, c, w, pa, pb)
	wantDigest := c.StateDigest()
	if st := l.Stats(); st.AppendErrors != 0 {
		t.Fatalf("journal append errors: %+v", st)
	}
	// Crash: no Close, no Compact — the journal alone must carry it.

	l2, err := intent.Open(dir, intent.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	c2, w2, pa2, _, _ := fig1Cloud(t)
	_ = w2
	if err := c2.RestoreIntent(l2.State()); err != nil {
		t.Fatal(err)
	}
	if got := c2.StateDigest(); got != wantDigest {
		t.Fatalf("digest mismatch after restart\n got %s\nwant %s", got, wantDigest)
	}
	// The recovered world keeps functioning: pools continue where the
	// crashed world's cursor stopped.
	next1, err := pa.RequestEIP("acme", topo.HostID(w.CloudA, w.RegionsA[0], "az2", 2))
	if err != nil {
		t.Fatal(err)
	}
	next2, err := pa2.RequestEIP("acme", topo.HostID(w.CloudA, w.RegionsA[0], "az2", 2))
	if err != nil {
		t.Fatal(err)
	}
	if next1 != next2 {
		t.Fatalf("pool divergence after restart: live grants %s, recovered grants %s", next1, next2)
	}
	// Recovered permit state enforces identically.
	if !c2.Admitted(eip1, sip) {
		t.Error("recovered world rejects a flow the declared permits admit")
	}
}

// TestRestoreIntentThenEnable is the daemon's boot order: restore must
// not re-journal (the store's Seq must not advance).
func TestRestoreIntentThenEnable(t *testing.T) {
	dir := t.TempDir()
	c, w, pa, pb, _ := fig1Cloud(t)
	l, err := intent.Open(dir, intent.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c.EnableIntent(l)
	populate(t, c, w, pa, pb)
	seq := l.Seq()
	l.Close()

	l2, err := intent.Open(dir, intent.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	c2, _, pa2, _, _ := fig1Cloud(t)
	if err := c2.RestoreIntent(l2.State()); err != nil {
		t.Fatal(err)
	}
	if l2.Seq() != seq {
		t.Fatalf("restore advanced the journal: seq %d -> %d", seq, l2.Seq())
	}
	c2.EnableIntent(l2)
	// New mutations journal again from the recovered sequence.
	if _, err := pa2.RequestEIP("acme", topo.HostID("cloudA", "A1", "az2", 2)); err == nil {
		if l2.Seq() != seq+1 {
			t.Fatalf("post-restore mutation got seq %d, want %d", l2.Seq(), seq+1)
		}
	}
}

// sweepWork strips a SweepResult down to its work fields — scanning a
// converged world is free, so tests about "nothing to do" ignore the
// scan-accounting counters.
func sweepWork(res SweepResult) SweepResult {
	res.Scanned, res.DirtyHits, res.AntiEntropyScanned = 0, 0, 0
	return res
}

func TestReconcilerRepairsDrift(t *testing.T) {
	dir := t.TempDir()
	c, w, pa, pb, _ := fig1Cloud(t)
	reg := metrics.NewRegistry()
	c.EnableObservability(obs.NewTracer(0), reg)
	l, err := intent.Open(dir, intent.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	c.EnableIntent(l)
	eip1, eip2, dst, sip := populate(t, c, w, pa, pb)
	r, err := c.EnableReconciler(ReconcilerConfig{})
	if err != nil {
		t.Fatal(err)
	}

	// A converged world has nothing to do (scan accounting aside).
	if res := r.RunSweep(); sweepWork(res) != (SweepResult{}) {
		t.Fatalf("sweep on a converged world found work: %+v", res)
	}

	// Inject one divergence per surface.
	if !c.DriftWipePermit(dst) {
		t.Fatal("DriftWipePermit failed")
	}
	if !c.DriftUnbind(sip, eip2) {
		t.Fatal("DriftUnbind failed")
	}
	if !c.DriftZeroQuota(pa.Name, "acme", w.RegionsA[0]) {
		t.Fatal("DriftZeroQuota failed")
	}
	if c.Admitted(eip1, dst) {
		t.Fatal("drift injection did not break admission")
	}

	res := r.RunSweep()
	if res.DriftPermits != 1 || res.DriftBinds != 1 || res.DriftQuotas != 1 {
		t.Fatalf("sweep drift counts = %+v, want 1 per surface", res)
	}
	if res.Repaired != 3 || res.Deferred != 0 {
		t.Fatalf("sweep repaired %d deferred %d, want 3 and 0", res.Repaired, res.Deferred)
	}
	// Converged again — and actually repaired, not just counted.
	if res := r.RunSweep(); sweepWork(res) != (SweepResult{}) {
		t.Fatalf("second sweep still finds work: %+v", res)
	}
	if !c.Admitted(eip1, dst) {
		t.Error("permit repair did not restore admission")
	}
	found := false
	for _, be := range mustService(t, pa, sip).balancer.Backends() {
		if be.EIP == eip2 {
			found = true
		}
	}
	if !found {
		t.Error("bind repair did not restore the backend")
	}
	if tq, ok := pa.quotaOf("acme", w.RegionsA[0]); !ok || tq.quota != 2e9 {
		t.Error("quota repair did not restore the declared rate")
	}

	// Every repair carries a reconcile trace event with a drift cause.
	var recEvs []obs.Event
	for _, ev := range c.Tracer().Recent("acme", 0) {
		if ev.Kind == obs.Reconcile {
			recEvs = append(recEvs, ev)
		}
	}
	if len(recEvs) != 3 {
		t.Fatalf("got %d reconcile trace events, want 3", len(recEvs))
	}
	for _, ev := range recEvs {
		if ev.Verdict != "repaired" || ev.Cause == "" {
			t.Errorf("trace event %+v lacks verdict/cause", ev)
		}
	}
	if r.Status().Repairs != 3 {
		t.Errorf("Status.Repairs = %d, want 3", r.Status().Repairs)
	}
}

// mustService looks a service up in the provider's address table.
func mustService(t *testing.T, p *Provider, sip addr.IP) *service {
	t.Helper()
	svc, ok := p.addrs.getService(sip)
	if !ok {
		t.Fatalf("service %s not found", sip)
	}
	return svc
}

func TestReconcilerDropsUndeclared(t *testing.T) {
	dir := t.TempDir()
	c, w, pa, pb, _ := fig1Cloud(t)
	l, err := intent.Open(dir, intent.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	c.EnableIntent(l)
	eip1, _, dst, _ := populate(t, c, w, pa, pb)
	_ = dst
	r, err := c.EnableReconciler(ReconcilerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Grant an EIP *without* journaling a permit list for it, then slip a
	// list into the engine directly: an undeclared install, e.g. a stale
	// push that survived a rollback.
	victim, err := pb.RequestEIP("acme", topo.HostID(w.CloudB, w.RegionsB[0], "az2", 1))
	if err != nil {
		t.Fatal(err)
	}
	pb.Permits.Set(victim, []permit.Entry{addr.NewPrefix(eip1, 32)})
	if !c.Admitted(eip1, victim) {
		t.Fatal("setup: direct engine install did not admit")
	}
	res := r.RunSweep()
	if res.DriftPermits != 1 || res.Repaired != 1 {
		t.Fatalf("sweep = %+v, want the undeclared list found and dropped", res)
	}
	if c.Admitted(eip1, victim) {
		t.Error("undeclared permit list survived the sweep")
	}
}

func TestReconcilerBudgetDefers(t *testing.T) {
	dir := t.TempDir()
	c, w, pa, pb, _ := fig1Cloud(t)
	l, err := intent.Open(dir, intent.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	c.EnableIntent(l)
	eip1, eip2, dst, sip := populate(t, c, w, pa, pb)
	_ = eip1
	r, err := c.EnableReconciler(ReconcilerConfig{RepairBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.DriftWipePermit(dst)
	c.DriftUnbind(sip, eip2)
	res := r.RunSweep()
	if res.Repaired != 1 || res.Deferred != 1 {
		t.Fatalf("budget 1 sweep = %+v, want 1 repaired 1 deferred", res)
	}
	if r.Status().QueueDepth != 1 {
		t.Errorf("QueueDepth = %d, want 1", r.Status().QueueDepth)
	}
	// The next sweep drains the queue.
	res = r.RunSweep()
	if res.Repaired != 1 || res.Deferred != 0 {
		t.Fatalf("drain sweep = %+v, want 1 repaired 0 deferred", res)
	}
	if res := r.RunSweep(); sweepWork(res) != (SweepResult{}) {
		t.Fatalf("world not converged after drain: %+v", res)
	}
}

func TestReconcilerStartStop(t *testing.T) {
	dir := t.TempDir()
	c, w, pa, pb, _ := fig1Cloud(t)
	l, err := intent.Open(dir, intent.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	c.EnableIntent(l)
	populate(t, c, w, pa, pb)
	gates := make(chan struct{}, 64)
	r, err := c.EnableReconciler(ReconcilerConfig{
		Interval: time.Millisecond,
		Gate: func() func() {
			select {
			case gates <- struct{}{}:
			default:
			}
			return func() {}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	r.Start() // idempotent
	select {
	case <-gates:
	case <-time.After(5 * time.Second):
		t.Fatal("background sweeps never fired")
	}
	r.Stop()
	r.Stop() // idempotent
	if s := r.Status(); !s.Enabled || s.Running {
		t.Errorf("status after stop = %+v", s)
	}
	if s := r.Status(); s.Sweeps == 0 {
		t.Error("no sweeps counted")
	}
}

func TestEnableReconcilerRequiresIntent(t *testing.T) {
	c, _, _, _, _ := fig1Cloud(t)
	if _, err := c.EnableReconciler(ReconcilerConfig{}); err == nil {
		t.Fatal("EnableReconciler without EnableIntent succeeded")
	}
	if c.Reconciler() != nil {
		t.Fatal("Reconciler() non-nil after failed enable")
	}
}
