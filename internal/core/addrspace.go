// Striped address-space maps. A provider's endpoint and service tables
// are shared by every tenant shard homed on it, so the shard locks above
// them (see shard.go) cannot also be their memory-safety story: two
// tenants mutating the same region run under different shard locks.
// Instead the tables are striped by the address's /16 block — the same
// region-aligned carving NewProvider does, so one region's endpoints
// land in one stripe and a churn storm in region A never touches the
// stripe lock a reader in region B is holding.
package core

import (
	"sync"

	"declnet/internal/addr"
)

// addrStripes is the stripe count; a power of two so the index is a
// mask. 64 comfortably exceeds any provider's region count, giving each
// region's /16 its own stripe in practice.
const addrStripes = 64

func stripeOf(ip addr.IP) uint32 { return (uint32(ip) >> 16) & (addrStripes - 1) }

type epStripe struct {
	mu sync.RWMutex
	m  map[EIP]*endpoint
}

type svcStripe struct {
	mu sync.RWMutex
	m  map[SIP]*service
}

// addrSpace holds one provider's granted addresses.
type addrSpace struct {
	eps  [addrStripes]epStripe
	svcs [addrStripes]svcStripe
}

func newAddrSpace() *addrSpace {
	a := &addrSpace{}
	for i := range a.eps {
		a.eps[i].m = make(map[EIP]*endpoint)
		a.svcs[i].m = make(map[SIP]*service)
	}
	return a
}

func (a *addrSpace) getEndpoint(ip EIP) (*endpoint, bool) {
	s := &a.eps[stripeOf(ip)]
	s.mu.RLock()
	ep, ok := s.m[ip]
	s.mu.RUnlock()
	return ep, ok
}

func (a *addrSpace) putEndpoint(ip EIP, ep *endpoint) {
	s := &a.eps[stripeOf(ip)]
	s.mu.Lock()
	s.m[ip] = ep
	s.mu.Unlock()
}

func (a *addrSpace) delEndpoint(ip EIP) {
	s := &a.eps[stripeOf(ip)]
	s.mu.Lock()
	delete(s.m, ip)
	s.mu.Unlock()
}

func (a *addrSpace) getService(ip SIP) (*service, bool) {
	s := &a.svcs[stripeOf(ip)]
	s.mu.RLock()
	svc, ok := s.m[ip]
	s.mu.RUnlock()
	return svc, ok
}

func (a *addrSpace) putService(ip SIP, svc *service) {
	s := &a.svcs[stripeOf(ip)]
	s.mu.Lock()
	s.m[ip] = svc
	s.mu.Unlock()
}

func (a *addrSpace) delService(ip SIP) {
	s := &a.svcs[stripeOf(ip)]
	s.mu.Lock()
	delete(s.m, ip)
	s.mu.Unlock()
}

// endpointSnapshot copies the endpoint pointers out stripe by stripe, so
// callers can iterate without holding any stripe lock (iteration order
// is unspecified; deterministic consumers sort).
func (a *addrSpace) endpointSnapshot() []*endpoint {
	var out []*endpoint
	for i := range a.eps {
		s := &a.eps[i]
		s.mu.RLock()
		for _, ep := range s.m {
			out = append(out, ep)
		}
		s.mu.RUnlock()
	}
	return out
}

// endpointsWithin returns the endpoints whose EIPs fall inside block.
// Region blocks are /16s and the stripe index is the /16 bits, so a
// region's endpoints live in exactly one stripe; the Contains filter
// handles the (provider count > stripe count) collision case. Blocks
// wider than /16 fall back to the full snapshot scan.
func (a *addrSpace) endpointsWithin(block addr.Prefix) []*endpoint {
	if block.Len < 16 {
		var out []*endpoint
		for _, ep := range a.endpointSnapshot() {
			if block.Contains(ep.eip) {
				out = append(out, ep)
			}
		}
		return out
	}
	s := &a.eps[stripeOf(block.Addr)]
	s.mu.RLock()
	out := make([]*endpoint, 0, len(s.m))
	for ip, ep := range s.m {
		if block.Contains(ip) {
			out = append(out, ep)
		}
	}
	s.mu.RUnlock()
	return out
}

// serviceSnapshot is endpointSnapshot for services.
func (a *addrSpace) serviceSnapshot() []*service {
	var out []*service
	for i := range a.svcs {
		s := &a.svcs[i]
		s.mu.RLock()
		for _, svc := range s.m {
			out = append(out, svc)
		}
		s.mu.RUnlock()
	}
	return out
}

func (a *addrSpace) endpointCount() int {
	n := 0
	for i := range a.eps {
		s := &a.eps[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

func (a *addrSpace) serviceCount() int {
	n := 0
	for i := range a.svcs {
		s := &a.svcs[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}
