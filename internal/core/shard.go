// Sharded write plane. Until this refactor every control-plane mutation
// serialized on one global write lock (the API layer's RWMutex), so a
// tenant onboarding a region's worth of endpoints stalled every other
// tenant's permit updates — the single-writer wall the million-endpoint
// drill (E13) runs straight into. The fix is the arktos-style partition:
// control-plane state is sharded by (tenant, region), each shard carries
// its own RWMutex, and a mutation takes only its shard's lock. Mutations
// in different shards proceed concurrently; a storm confined to one
// (tenant, region) cannot degrade another shard's writes or reads.
//
// Lock hierarchy (outer to inner; never acquire leftward while holding
// rightward):
//
//	ShardSet.global > shard.mu > leaf locks (permit stripes, address
//	stripes, pool/balancer/quota/registry mutexes)
//
//   - Per-shard mutations (the Table-2 verbs) take global.RLock plus
//     their shard's write lock.
//   - Cross-shard reads (Connect, Probe, Explain) take global.RLock
//     plus BOTH endpoint shards' read locks in deterministic key order
//     — sorted by (tenant, region), deduped when the endpoints share a
//     shard — so opposing lock orders cannot deadlock.
//   - Global operations (ApplyBatch's coalescing window, world setup)
//     take global.Lock, excluding every shard at once. Batch windows
//     mutate engine- and graph-wide epoch state that per-shard locks
//     cannot protect.
//
// Underneath the shard locks, the shared structures (permit engine,
// endpoint/service maps, address pools) are independently striped or
// locked, because one region's state is reachable from several tenants'
// shards. The shard lock is the unit of *contention isolation*; the leaf
// locks are the unit of *memory safety*.
package core

import "sync"

// ShardKey names one control-plane shard: a tenant's slice of one
// provider region. Region is "provider/region" for region-scoped state
// and just "provider" for a tenant's region-free state on that provider
// (the SIP plane, potato profiles, provider-level groups).
type ShardKey struct {
	Tenant string
	Region string
}

// less orders shard keys for deterministic multi-shard acquisition.
func (k ShardKey) less(o ShardKey) bool {
	if k.Tenant != o.Tenant {
		return k.Tenant < o.Tenant
	}
	return k.Region < o.Region
}

type shard struct {
	mu sync.RWMutex
}

// ShardSet is the cloud's shard table. Shards materialize lazily on
// first touch; the zero set is sharded, NewSingleShardCloud collapses
// every key onto one shard (the unsharded build the parity property
// test replays against).
type ShardSet struct {
	global sync.RWMutex
	mu     sync.Mutex
	shards map[ShardKey]*shard
	single *shard
}

func newShardSet(single bool) *ShardSet {
	s := &ShardSet{shards: make(map[ShardKey]*shard)}
	if single {
		s.single = &shard{}
	}
	return s
}

// shardOf returns (creating on first use) the shard for k.
func (s *ShardSet) shardOf(k ShardKey) *shard {
	if s.single != nil {
		return s.single
	}
	s.mu.Lock()
	sh, ok := s.shards[k]
	if !ok {
		sh = &shard{}
		s.shards[k] = sh
	}
	s.mu.Unlock()
	return sh
}

// Len reports how many shards have materialized (1 in single mode once
// touched; single mode reports 1 unconditionally).
func (s *ShardSet) Len() int {
	if s.single != nil {
		return 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.shards)
}

// lockShard takes the write lock for one shard (plus the global read
// gate) and returns the unlock.
func (s *ShardSet) lockShard(k ShardKey) func() {
	s.global.RLock()
	sh := s.shardOf(k)
	sh.mu.Lock()
	return func() {
		sh.mu.Unlock()
		s.global.RUnlock()
	}
}

// rlockShards takes the read locks for a pair of shards in deterministic
// key order (plus the global read gate) and returns the unlock. The two
// keys are the cross-shard connect protocol: src's shard and dst's
// shard, sorted by (tenant, region) and deduped by shard identity —
// sync.RWMutex is not reentrant even for readers once a writer queues,
// so the same shard must be locked exactly once.
func (s *ShardSet) rlockShards(a, b ShardKey) func() {
	if b.less(a) {
		a, b = b, a
	}
	s.global.RLock()
	sa, sb := s.shardOf(a), s.shardOf(b)
	sa.mu.RLock()
	if sb != sa {
		sb.mu.RLock()
	}
	return func() {
		if sb != sa {
			sb.mu.RUnlock()
		}
		sa.mu.RUnlock()
		s.global.RUnlock()
	}
}

// lockGlobal takes the exclusive gate: every shard's readers and writers
// drain first, and none may enter until the returned unlock runs.
func (s *ShardSet) lockGlobal() func() {
	s.global.Lock()
	return s.global.Unlock
}
